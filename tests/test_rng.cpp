// Unit and statistical tests for the xoshiro256** RNG and its samplers.
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace mflb {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += (a() == b()) ? 1 : 0;
    }
    EXPECT_LT(equal, 4);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
    Rng parent(7);
    Rng parent2(7);
    Rng child_a = parent.split();
    Rng child_a2 = parent2.split();
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(child_a(), child_a2());
    }
    // Child differs from a fresh parent's continued stream.
    Rng parent3(7);
    Rng child = parent3.split();
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += (child() == parent3()) ? 1 : 0;
    }
    EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIsDeterministicAndLeavesParentUntouched) {
    const Rng parent(7);
    Rng child_a = parent.fork(4);
    Rng child_a2 = parent.fork(4);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(child_a(), child_a2());
    }
    // fork() is const: the parent stream is identical to a never-forked one.
    Rng forked_parent(7);
    (void)forked_parent.fork(0);
    (void)forked_parent.fork(1);
    Rng fresh(7);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(forked_parent(), fresh());
    }
}

TEST(Rng, ForkStreamsDifferByIdAndFromParent) {
    const Rng parent(11);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    Rng c = parent.fork(0xFFFFFFFFFFFFULL);
    Rng parent_stream(11);
    int equal_ab = 0, equal_ac = 0, equal_ap = 0;
    for (int i = 0; i < 64; ++i) {
        const auto xa = a(), xb = b(), xc = c(), xp = parent_stream();
        equal_ab += xa == xb ? 1 : 0;
        equal_ac += xa == xc ? 1 : 0;
        equal_ap += xa == xp ? 1 : 0;
    }
    EXPECT_LT(equal_ab, 4);
    EXPECT_LT(equal_ac, 4);
    EXPECT_LT(equal_ap, 4);
}

TEST(Rng, ForkCrossStreamIndependenceSanity) {
    // Adjacent stream ids (the replication-seeding pattern) must be
    // uncorrelated: Pearson correlation of paired uniforms near zero, and
    // each stream's mean near 1/2.
    const Rng parent(13);
    Rng a = parent.fork(41);
    Rng b = parent.fork(42);
    const int n = 20000;
    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
    for (int i = 0; i < n; ++i) {
        const double x = a.uniform();
        const double y = b.uniform();
        sa += x;
        sb += y;
        saa += x * x;
        sbb += y * y;
        sab += x * y;
    }
    const double mean_a = sa / n, mean_b = sb / n;
    const double cov = sab / n - mean_a * mean_b;
    const double var_a = saa / n - mean_a * mean_a;
    const double var_b = sbb / n - mean_b * mean_b;
    const double corr = cov / std::sqrt(var_a * var_b);
    EXPECT_NEAR(mean_a, 0.5, 0.01);
    EXPECT_NEAR(mean_b, 0.5, 0.01);
    EXPECT_LT(std::abs(corr), 0.03);
}

TEST(Rng, ForkDependsOnParentState) {
    Rng early(17);
    const Rng late_source(17);
    Rng late = late_source;
    (void)late(); // advance one draw: forks must now differ
    Rng child_early = early.fork(5);
    Rng child_late = late.fork(5);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        equal += (child_early() == child_late()) ? 1 : 0;
    }
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformBelowIsUnbiased) {
    Rng rng(5);
    std::vector<int> counts(7, 0);
    const int n = 70000;
    for (int i = 0; i < n; ++i) {
        ++counts[static_cast<std::size_t>(rng.uniform_below(7))];
    }
    for (int c : counts) {
        EXPECT_NEAR(static_cast<double>(c), n / 7.0, 5.0 * std::sqrt(n / 7.0));
    }
}

TEST(Rng, ExponentialMoments) {
    Rng rng(11);
    const double rate = 2.5;
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(rate);
        ASSERT_GT(x, 0.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 1.0 / rate, 0.01);
    EXPECT_NEAR(var, 1.0 / (rate * rate), 0.02);
}

TEST(Rng, NormalMoments) {
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonSmallAndLargeMean) {
    Rng rng(17);
    for (const double mean : {0.3, 4.0, 80.0}) {
        double sum = 0.0, sq = 0.0;
        const int n = 50000;
        for (int i = 0; i < n; ++i) {
            const double x = static_cast<double>(rng.poisson(mean));
            sum += x;
            sq += x * x;
        }
        const double sample_mean = sum / n;
        const double sample_var = sq / n - sample_mean * sample_mean;
        EXPECT_NEAR(sample_mean, mean, 6.0 * std::sqrt(mean / n)) << "mean=" << mean;
        EXPECT_NEAR(sample_var, mean, 0.1 * mean + 0.05) << "mean=" << mean;
    }
}

TEST(Rng, PoissonZeroMean) {
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.poisson(0.0), 0u);
    }
}

TEST(Rng, BinomialMoments) {
    Rng rng(23);
    const std::uint64_t trials = 200;
    const double p = 0.3;
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = static_cast<double>(rng.binomial(trials, p));
        ASSERT_LE(x, static_cast<double>(trials));
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, trials * p, 0.5);
    EXPECT_NEAR(var, trials * p * (1 - p), 2.5);
}

TEST(Rng, BinomialLargeMeanBtrsBranchMatchesExactPmf) {
    // Chi-square-style check of the BTRS sampler: empirical frequencies of
    // Binomial(100, 0.3) vs the exact pmf over a central window.
    Rng rng(101);
    const std::uint64_t n = 100;
    const double p = 0.3;
    const int reps = 200000;
    std::vector<int> counts(101, 0);
    for (int i = 0; i < reps; ++i) {
        ++counts[static_cast<std::size_t>(rng.binomial(n, p))];
    }
    // pmf via logs to avoid overflow.
    auto log_pmf = [&](int k) {
        return std::lgamma(101.0) - std::lgamma(k + 1.0) - std::lgamma(101.0 - k) +
               k * std::log(p) + (100.0 - k) * std::log(1 - p);
    };
    for (int k = 18; k <= 43; ++k) { // central window, pmf >= ~1e-3
        const double expected = std::exp(log_pmf(k)) * reps;
        const double tolerance = 5.0 * std::sqrt(expected) + 2.0;
        EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(k)]), expected,
                    tolerance)
            << "k=" << k;
    }
}

TEST(Rng, BinomialHugeNIsFastAndAccurate) {
    Rng rng(103);
    const std::uint64_t n = 1000000;
    const double p = 0.001;
    double sum = 0.0, sq = 0.0;
    const int reps = 20000;
    for (int i = 0; i < reps; ++i) {
        const double x = static_cast<double>(rng.binomial(n, p));
        sum += x;
        sq += x * x;
    }
    const double mean = sum / reps;
    const double var = sq / reps - mean * mean;
    EXPECT_NEAR(mean, 1000.0, 2.0);
    EXPECT_NEAR(var, 999.0, 60.0);
}

TEST(Rng, BinomialEdgeCases) {
    Rng rng(29);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(10, 0.0), 0u);
    EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, CategoricalFollowsWeights) {
    Rng rng(31);
    const std::vector<double> weights{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
        ++counts[rng.categorical(weights)];
    }
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, MultinomialConservesTrialsAndMatchesMarginals) {
    Rng rng(37);
    const std::vector<double> p{0.2, 0.5, 0.25, 0.05};
    const std::uint64_t n = 10000;
    std::vector<double> totals(4, 0.0);
    const int reps = 300;
    for (int r = 0; r < reps; ++r) {
        const auto counts = rng.multinomial(n, p);
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            sum += counts[i];
            totals[i] += static_cast<double>(counts[i]);
        }
        ASSERT_EQ(sum, n);
    }
    for (std::size_t i = 0; i < p.size(); ++i) {
        EXPECT_NEAR(totals[i] / (reps * static_cast<double>(n)), p[i], 0.005);
    }
}

TEST(Rng, PermutationIsAPermutation) {
    Rng rng(41);
    const auto perm = rng.permutation(257);
    std::vector<bool> seen(257, false);
    for (std::uint32_t v : perm) {
        ASSERT_LT(v, 257u);
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
    std::uint64_t state = 0;
    const std::uint64_t first = splitmix64(state);
    const std::uint64_t second = splitmix64(state);
    EXPECT_NE(first, second);
    std::uint64_t state2 = 0;
    EXPECT_EQ(splitmix64(state2), first);
}

} // namespace
} // namespace mflb
