// Tests for the discrete-event simulation engine (src/des/): the indexed
// future-event-list, conservation/determinism of DesSystem, its statistical
// equivalence to the epoch-synchronous FiniteSystem on registry scenarios,
// single-queue agreement with the transient M/M/1/B oracle, and agreement
// with the mean-field prediction at large M.
#include "des/des_system.hpp"

#include "core/evaluator.hpp"
#include "core/scenarios.hpp"
#include "field/mfc_env.hpp"
#include "policies/fixed.hpp"
#include "queueing/gillespie.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace mflb {
namespace {

// ---------------------------------------------------------------------------
// EventQueue (future event list)
// ---------------------------------------------------------------------------

TEST(EventQueue, PopsInTimeOrderWithIdTieBreak) {
    EventQueue fel(8);
    fel.schedule(3, 2.0);
    fel.schedule(1, 1.0);
    fel.schedule(7, 2.0);
    fel.schedule(0, 5.0);
    EXPECT_EQ(fel.size(), 4u);
    EXPECT_EQ(fel.peek().id, 1u);
    EXPECT_EQ(fel.pop().id, 1u);
    // Equal times resolve by slot id for deterministic replay.
    EXPECT_EQ(fel.pop().id, 3u);
    EXPECT_EQ(fel.pop().id, 7u);
    EXPECT_EQ(fel.pop().id, 0u);
    EXPECT_TRUE(fel.empty());
}

TEST(EventQueue, ScheduleReschedulesPendingSlot) {
    EventQueue fel(4);
    fel.schedule(0, 10.0);
    fel.schedule(1, 5.0);
    EXPECT_DOUBLE_EQ(fel.time_of(0), 10.0);
    fel.schedule(0, 1.0); // move earlier
    EXPECT_EQ(fel.size(), 2u);
    EXPECT_EQ(fel.peek().id, 0u);
    fel.schedule(0, 7.0); // move later again
    EXPECT_EQ(fel.peek().id, 1u);
    EXPECT_DOUBLE_EQ(fel.time_of(0), 7.0);
}

TEST(EventQueue, CancelRemovesOnlyThatSlot) {
    EventQueue fel(4);
    fel.schedule(0, 1.0);
    fel.schedule(1, 2.0);
    fel.schedule(2, 3.0);
    EXPECT_TRUE(fel.cancel(1));
    EXPECT_FALSE(fel.cancel(1)); // already gone
    EXPECT_FALSE(fel.contains(1));
    EXPECT_EQ(fel.size(), 2u);
    EXPECT_EQ(fel.pop().id, 0u);
    EXPECT_EQ(fel.pop().id, 2u);
}

TEST(EventQueue, GuardsMisuse) {
    EXPECT_THROW(EventQueue(0), std::invalid_argument);
    EventQueue fel(2);
    EXPECT_THROW(fel.schedule(2, 1.0), std::invalid_argument);
    EXPECT_THROW(fel.pop(), std::logic_error);
    EXPECT_THROW(fel.peek(), std::logic_error);
    EXPECT_THROW(fel.time_of(0), std::logic_error);
    EXPECT_FALSE(fel.cancel(5)); // out of range is just "not pending"
}

TEST(EventQueue, ClearEmptiesButKeepsCapacity) {
    EventQueue fel(3);
    fel.schedule(0, 1.0);
    fel.schedule(2, 2.0);
    fel.clear();
    EXPECT_TRUE(fel.empty());
    EXPECT_EQ(fel.capacity(), 3u);
    EXPECT_FALSE(fel.contains(0));
    fel.schedule(0, 4.0); // usable again
    EXPECT_EQ(fel.pop().id, 0u);
}

TEST(EventQueue, RandomizedOperationsMatchReferenceOrdering) {
    // Fuzz schedule/reschedule/cancel against a brute-force reference; the
    // drained sequence must come out in exact (time, id) order.
    const std::size_t capacity = 64;
    EventQueue fel(capacity);
    std::vector<double> reference(capacity, -1.0); // -1 = absent
    Rng rng(99);
    for (int op = 0; op < 5000; ++op) {
        const auto id = static_cast<std::size_t>(rng.uniform_below(capacity));
        const double coin = rng.uniform();
        if (coin < 0.6) {
            const double time = rng.uniform(0.0, 100.0);
            fel.schedule(id, time);
            reference[id] = time;
        } else if (coin < 0.8) {
            EXPECT_EQ(fel.cancel(id), reference[id] >= 0.0);
            reference[id] = -1.0;
        } else if (reference[id] >= 0.0) {
            EXPECT_TRUE(fel.contains(id));
            EXPECT_DOUBLE_EQ(fel.time_of(id), reference[id]);
        }
    }
    std::vector<std::pair<double, std::size_t>> expected;
    for (std::size_t id = 0; id < capacity; ++id) {
        if (reference[id] >= 0.0) {
            expected.push_back({reference[id], id});
        }
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(fel.size(), expected.size());
    for (const auto& [time, id] : expected) {
        const EventQueue::Event event = fel.pop();
        EXPECT_DOUBLE_EQ(event.time, time);
        EXPECT_EQ(event.id, id);
    }
}

// ---------------------------------------------------------------------------
// DesSystem mechanics
// ---------------------------------------------------------------------------

FiniteSystemConfig small_config(ClientModel model, double dt = 2.0, int horizon = 40) {
    FiniteSystemConfig config;
    config.num_queues = 30;
    config.num_clients = 900;
    config.dt = dt;
    config.horizon = horizon;
    config.client_model = model;
    return config;
}

TEST(DesSystem, ConservesJobsAndCountsEveryEpoch) {
    for (const ClientModel model :
         {ClientModel::PerClient, ClientModel::Aggregated, ClientModel::InfiniteClients}) {
        SCOPED_TRACE(static_cast<int>(model));
        DesSystem system(small_config(model));
        const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());
        Rng rng(7);
        system.reset(rng);
        while (!system.done()) {
            const auto before = system.queue_states();
            const std::int64_t jobs_before =
                std::accumulate(before.begin(), before.end(), std::int64_t{0});
            const EpochStats stats = system.step_with_rule(h, rng);
            const auto& after = system.queue_states();
            std::int64_t jobs_after = 0;
            for (const int z : after) {
                ASSERT_GE(z, 0);
                ASSERT_LE(z, system.config().queue.buffer);
                jobs_after += z;
            }
            EXPECT_EQ(jobs_after, jobs_before +
                                      static_cast<std::int64_t>(stats.accepted_packets) -
                                      static_cast<std::int64_t>(stats.served_packets));
            // The incremental histogram must match a from-scratch count.
            const std::vector<double> hist = system.empirical_distribution();
            double total = 0.0;
            for (std::size_t z = 0; z < hist.size(); ++z) {
                const auto direct = static_cast<double>(
                    std::count(after.begin(), after.end(), static_cast<int>(z)));
                EXPECT_DOUBLE_EQ(hist[z] * static_cast<double>(after.size()), direct);
                total += hist[z];
            }
            EXPECT_NEAR(total, 1.0, 1e-12);
            EXPECT_GE(stats.server_utilization, 0.0);
            EXPECT_LE(stats.server_utilization, 1.0);
            EXPECT_GE(stats.mean_queue_length, 0.0);
            EXPECT_LE(stats.mean_queue_length,
                      static_cast<double>(system.config().queue.buffer));
        }
        EXPECT_THROW(system.step_with_rule(h, rng), std::logic_error);
    }
}

TEST(DesSystem, DeterministicForFixedSeed) {
    const FiniteSystemConfig config = small_config(ClientModel::Aggregated);
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy policy = make_jsq_policy(space);
    auto run = [&] {
        DesSystem system(config);
        Rng rng(21);
        system.reset(rng);
        return system.run_episode(policy, rng);
    };
    const DesEpisodeStats a = run();
    const DesEpisodeStats b = run();
    EXPECT_EQ(a.dropped_packets, b.dropped_packets);
    EXPECT_EQ(a.accepted_packets, b.accepted_packets);
    EXPECT_DOUBLE_EQ(a.total_drops_per_queue, b.total_drops_per_queue);
    EXPECT_DOUBLE_EQ(a.mean_queue_length, b.mean_queue_length);
    EXPECT_DOUBLE_EQ(a.discounted_return, b.discounted_return);
}

TEST(DesSystem, ConditionedReplayPinsTheLambdaPath) {
    FiniteSystemConfig config = small_config(ClientModel::InfiniteClients);
    config.horizon = 10;
    DesSystem system(config);
    const DecisionRule h = DecisionRule::mf_rnd(system.tuple_space());
    const std::vector<std::size_t> path{0, 1, 1, 0, 1};
    Rng rng(3);
    system.reset_conditioned(path, rng);
    for (int t = 0; t < config.horizon; ++t) {
        const std::size_t expected =
            path[std::min<std::size_t>(static_cast<std::size_t>(t), path.size() - 1)];
        EXPECT_EQ(system.lambda_state(), expected) << "epoch " << t;
        system.step_with_rule(h, rng);
    }
}

TEST(DesSystem, RejectsInvalidConfigsAndRules) {
    FiniteSystemConfig config = small_config(ClientModel::Aggregated);
    config.num_clients = 0;
    EXPECT_THROW(DesSystem{config}, std::invalid_argument);
    config = small_config(ClientModel::InfiniteClients);
    config.nu0 = {0.5, 0.5}; // wrong support size for B = 5
    EXPECT_THROW(DesSystem{config}, std::invalid_argument);

    DesSystem system(small_config(ClientModel::Aggregated));
    Rng rng(1);
    system.reset(rng);
    const DecisionRule wrong = DecisionRule::mf_rnd(TupleSpace(3, 2));
    EXPECT_THROW(system.step_with_rule(wrong, rng), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Exactness: one queue against the transient M/M/1/B oracle
// ---------------------------------------------------------------------------

TEST(DesSystem, SingleQueueFirstEpochMatchesTransientOracle) {
    // With M = 1 every arrival targets queue 0 at rate M·λ = λ, so the first
    // epoch from an empty queue is exactly the birth-death transient the
    // uniformization oracle solves.
    FiniteSystemConfig config;
    config.num_queues = 1;
    config.num_clients = 1;
    config.client_model = ClientModel::InfiniteClients;
    config.arrivals = ArrivalProcess::constant(0.9);
    config.dt = 4.0;
    config.horizon = 1;
    const QueueTransientResult oracle = queue_transient_solution(
        0, 0.9, config.queue.service_rate, config.queue.buffer, config.dt);

    DesSystem system(config);
    const DecisionRule h = DecisionRule::mf_rnd(system.tuple_space());
    Rng rng(13);
    const int reps = 20000;
    std::vector<double> state_freq(static_cast<std::size_t>(config.queue.num_states()), 0.0);
    double drops = 0.0;
    for (int r = 0; r < reps; ++r) {
        system.reset(rng);
        drops += static_cast<double>(system.step_with_rule(h, rng).dropped_packets);
        state_freq[static_cast<std::size_t>(system.queue_states()[0])] += 1.0;
    }
    for (std::size_t z = 0; z < state_freq.size(); ++z) {
        const double p = oracle.state_distribution[z];
        EXPECT_NEAR(state_freq[z] / reps, p, 5.0 * std::sqrt(p * (1 - p) / reps) + 1e-3)
            << "state " << z;
    }
    EXPECT_NEAR(drops / reps, oracle.expected_drops, 0.03);
}

// ---------------------------------------------------------------------------
// Statistical equivalence with FiniteSystem (registry scenarios)
// ---------------------------------------------------------------------------

void expect_backends_agree(FiniteSystemConfig config, std::size_t episodes,
                           std::uint64_t seed) {
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy policy = make_jsq_policy(space);
    const EvaluationResult finite = evaluate_finite(config, policy, episodes, seed);
    const EvaluationResult des = evaluate_des(config, policy, episodes, seed);

    // Identical model, independent randomness: the 95% CIs must overlap (a
    // small slack absorbs the ~5% of seeds where disjoint CIs are expected).
    const double scale = std::max({1.0, finite.total_drops.mean, des.total_drops.mean});
    EXPECT_LE(std::abs(finite.total_drops.mean - des.total_drops.mean),
              finite.total_drops.half_width + des.total_drops.half_width + 0.05 * scale)
        << "finite " << finite.total_drops.mean << " +- " << finite.total_drops.half_width
        << " vs des " << des.total_drops.mean << " +- " << des.total_drops.half_width;
    EXPECT_NEAR(finite.mean_queue_length.mean, des.mean_queue_length.mean,
                finite.mean_queue_length.half_width + des.mean_queue_length.half_width +
                    0.05 * finite.mean_queue_length.mean);
    EXPECT_NEAR(finite.utilization.mean, des.utilization.mean,
                finite.utilization.half_width + des.utilization.half_width + 0.03);
}

TEST(DesVsFinite, Table1ScenarioDropRatesAgree) {
    ExperimentConfig experiment = scenario_or_die("table1").experiment;
    experiment.dt = 5.0;             // the herding-prone delay of Figure 5
    experiment.eval_total_time = 150.0;
    expect_backends_agree(experiment.finite_system(), 24, 101);
}

TEST(DesVsFinite, DelaySweepScenarioDropRatesAgree) {
    ExperimentConfig experiment = scenario_or_die("delay-sweep").experiment;
    experiment.dt = 5.0;
    experiment.eval_total_time = 100.0;
    expect_backends_agree(experiment.finite_system(), 16, 202);
}

TEST(DesVsFinite, InfiniteClientModelAgrees) {
    ExperimentConfig experiment = scenario_or_die("table1").experiment;
    experiment.dt = 3.0;
    experiment.eval_total_time = 120.0;
    experiment.client_model = ClientModel::InfiniteClients;
    expect_backends_agree(experiment.finite_system(), 20, 303);
}

TEST(DesVsFinite, PerClientModelAgrees) {
    ExperimentConfig experiment = scenario_or_die("table1").experiment;
    experiment.dt = 5.0;
    experiment.eval_total_time = 60.0;
    experiment.num_queues = 50;
    experiment.num_clients = 1000;
    experiment.client_model = ClientModel::PerClient;
    expect_backends_agree(experiment.finite_system(), 16, 404);
}

// ---------------------------------------------------------------------------
// Mean-field agreement at large M (Theorem 1 probe beyond FiniteSystem reach)
// ---------------------------------------------------------------------------

TEST(DesVsMeanField, EmpiricalFillingTracksMfcEnvAtLargeM) {
    // M = 10^4 queues on a conditioned λ path: the DES empirical queue
    // filling and per-queue drops must sit on the deterministic mean-field
    // prediction (fluctuations are O(1/sqrt(M))).
    FiniteSystemConfig config;
    config.num_queues = 10000;
    config.num_clients = 1; // unused by InfiniteClients
    config.client_model = ClientModel::InfiniteClients;
    config.dt = 5.0;
    config.horizon = 10;

    MfcConfig mfc;
    mfc.queue = config.queue;
    mfc.d = config.d;
    mfc.dt = config.dt;
    mfc.arrivals = config.arrivals;
    mfc.horizon = config.horizon;

    Rng path_rng(17);
    std::vector<std::size_t> path;
    std::size_t state = config.arrivals.sample_initial(path_rng);
    for (int t = 0; t < config.horizon; ++t) {
        path.push_back(state);
        state = config.arrivals.step(state, path_rng);
    }

    const TupleSpace space(config.queue.num_states(), config.d);
    const DecisionRule h = DecisionRule::mf_jsq(space);

    MfcEnv env(mfc);
    env.reset_conditioned(path);
    Rng unused(1);
    double limit_drops = 0.0;
    while (!env.done()) {
        limit_drops += env.step(h, unused).drops;
    }
    const std::vector<double> nu_final(env.nu().begin(), env.nu().end());

    DesSystem system(config);
    Rng rng(29);
    system.reset_conditioned(path, rng);
    double des_drops = 0.0;
    while (!system.done()) {
        des_drops += system.step_with_rule(h, rng).drops_per_queue;
    }
    const std::vector<double> empirical = system.empirical_distribution();

    ASSERT_EQ(empirical.size(), nu_final.size());
    double l1 = 0.0;
    for (std::size_t z = 0; z < empirical.size(); ++z) {
        l1 += std::abs(empirical[z] - nu_final[z]);
    }
    EXPECT_LT(l1, 0.04) << "final filling far from mean-field prediction";
    const double scale = std::max(1.0, limit_drops);
    EXPECT_LT(std::abs(des_drops - limit_drops) / scale, 0.05);
}

// ---------------------------------------------------------------------------
// Sojourn percentiles (DES-only capability)
// ---------------------------------------------------------------------------

TEST(DesSystem, SojournPercentilesAreOrderedAndPlausible) {
    FiniteSystemConfig config = small_config(ClientModel::Aggregated, 5.0, 60);
    config.track_sojourn = true;
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy policy = make_rnd_policy(space);
    DesSystem system(config);
    Rng rng(31);
    system.reset(rng);
    const DesEpisodeStats stats = system.run_episode(policy, rng);
    ASSERT_GT(stats.completed_jobs, 1000u);
    EXPECT_GT(stats.sojourn_p50, 0.0);
    EXPECT_LE(stats.sojourn_p50, stats.sojourn_p95);
    EXPECT_LE(stats.sojourn_p95, stats.sojourn_p99);
    // Mean must lie between the median and the tail for this skewed law.
    EXPECT_GT(stats.mean_sojourn, 0.0);
    EXPECT_LT(stats.mean_sojourn, stats.sojourn_p99);
    // And the evaluator surfaces the same numbers with CIs.
    SojournSummary summary;
    const EvaluationResult result = evaluate_des(config, policy, 6, 47, 0, &summary);
    EXPECT_EQ(result.episodes, 6u);
    EXPECT_GT(summary.p50.mean, 0.0);
    EXPECT_LE(summary.p50.mean, summary.p95.mean);
    EXPECT_LE(summary.p95.mean, summary.p99.mean);
}

} // namespace
} // namespace mflb
