// Tests for the Z^d tuple enumeration.
#include "field/tuple_space.hpp"

#include <gtest/gtest.h>

namespace mflb {
namespace {

TEST(TupleSpace, SizeIsPower) {
    EXPECT_EQ(TupleSpace(6, 2).size(), 36u);
    EXPECT_EQ(TupleSpace(6, 1).size(), 6u);
    EXPECT_EQ(TupleSpace(6, 3).size(), 216u);
    EXPECT_EQ(TupleSpace(2, 10).size(), 1024u);
}

TEST(TupleSpace, RejectsBadArguments) {
    EXPECT_THROW(TupleSpace(0, 2), std::invalid_argument);
    EXPECT_THROW(TupleSpace(6, 0), std::invalid_argument);
}

TEST(TupleSpace, IndexDecodeRoundTrip) {
    const TupleSpace space(6, 2);
    std::vector<int> tuple(2);
    for (std::size_t idx = 0; idx < space.size(); ++idx) {
        space.decode(idx, tuple);
        EXPECT_EQ(space.index_of(tuple), idx);
    }
}

TEST(TupleSpace, CoordinateMatchesDecode) {
    const TupleSpace space(4, 3);
    std::vector<int> tuple(3);
    for (std::size_t idx = 0; idx < space.size(); ++idx) {
        space.decode(idx, tuple);
        for (int k = 0; k < 3; ++k) {
            EXPECT_EQ(space.coordinate(idx, k), tuple[static_cast<std::size_t>(k)]);
        }
    }
}

TEST(TupleSpace, FirstCoordinateVariesFastest) {
    const TupleSpace space(6, 2);
    const std::vector<int> t0{1, 0};
    const std::vector<int> t1{0, 1};
    EXPECT_EQ(space.index_of(t0), 1u);
    EXPECT_EQ(space.index_of(t1), 6u);
}

TEST(TupleSpace, BoundsChecking) {
    const TupleSpace space(6, 2);
    const std::vector<int> bad_state{6, 0};
    EXPECT_THROW(space.index_of(bad_state), std::out_of_range);
    const std::vector<int> bad_arity{0};
    EXPECT_THROW(space.index_of(bad_arity), std::invalid_argument);
    std::vector<int> out(2);
    EXPECT_THROW(space.decode(space.size(), out), std::out_of_range);
}

TEST(TupleSpace, TupleAtAllocates) {
    const TupleSpace space(3, 2);
    const auto t = space.tuple_at(5); // 5 = 2 + 1*3
    EXPECT_EQ(t[0], 2);
    EXPECT_EQ(t[1], 1);
}

TEST(TupleSpace, Equality) {
    EXPECT_TRUE(TupleSpace(6, 2) == TupleSpace(6, 2));
    EXPECT_FALSE(TupleSpace(6, 2) == TupleSpace(5, 2));
    EXPECT_FALSE(TupleSpace(6, 2) == TupleSpace(6, 3));
}

} // namespace
} // namespace mflb
