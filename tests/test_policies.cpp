// Tests for upper-level policies: fixed rules, tabular parameterizations,
// serialization, and the neural wrapper.
#include "core/neural_policy.hpp"
#include "core/rl_adapter.hpp"
#include "policies/fixed.hpp"
#include "policies/tabular.hpp"

#include <gtest/gtest.h>

namespace mflb {
namespace {

TEST(FixedPolicy, NamesAndRules) {
    const TupleSpace space(6, 2);
    const FixedRulePolicy jsq = make_jsq_policy(space);
    EXPECT_EQ(jsq.name(), "JSQ(2)");
    EXPECT_LT(jsq.rule().max_abs_diff(DecisionRule::mf_jsq(space)), 1e-15);
    const FixedRulePolicy rnd = make_rnd_policy(space);
    EXPECT_EQ(rnd.name(), "RND");
    const FixedRulePolicy soft = make_greedy_softmax_policy(space, 2.0);
    EXPECT_NE(soft.name().find("2"), std::string::npos);
}

TEST(FixedPolicy, DecideIgnoresState) {
    const TupleSpace space(6, 2);
    const FixedRulePolicy jsq = make_jsq_policy(space);
    Rng rng(1);
    const std::vector<double> nu_a{1.0, 0, 0, 0, 0, 0};
    const std::vector<double> nu_b{0, 0, 0, 0, 0, 1.0};
    const DecisionRule ra = jsq.decide(nu_a, 0, rng);
    const DecisionRule rb = jsq.decide(nu_b, 1, rng);
    EXPECT_LT(ra.max_abs_diff(rb), 1e-15);
}

TEST(TabularPolicy, DefaultIsUniform) {
    const TupleSpace space(6, 2);
    const TabularPolicy policy(space, 2);
    Rng rng(2);
    const std::vector<double> nu{1.0, 0, 0, 0, 0, 0};
    const DecisionRule rule = policy.decide(nu, 0, rng);
    EXPECT_LT(rule.max_abs_diff(DecisionRule::mf_rnd(space)), 1e-15);
    EXPECT_EQ(policy.parameter_count(), 2u * 36u * 2u);
}

TEST(TabularPolicy, PerLambdaRulesDiffer) {
    const TupleSpace space(6, 2);
    TabularPolicy policy(space, 2);
    std::vector<double> params(policy.parameter_count(), 0.0);
    // Make λ-state 1 strongly prefer coordinate 0 everywhere.
    const std::size_t per_rule = space.size() * 2;
    for (std::size_t r = 0; r < space.size(); ++r) {
        params[per_rule + r * 2] = 10.0;
    }
    policy.set_parameters(params);
    EXPECT_NEAR(policy.rule_for(0).prob(0, 0), 0.5, 1e-12);
    EXPECT_GT(policy.rule_for(1).prob(0, 0), 0.99);
    EXPECT_THROW(policy.rule_for(2), std::out_of_range);
    EXPECT_THROW(policy.set_parameters(std::vector<double>(3, 0.0)), std::invalid_argument);
}

TEST(TabularPolicy, SimplexParameterizationClamps) {
    const TupleSpace space(6, 2);
    TabularPolicy policy(space, 1, RuleParameterization::Simplex);
    std::vector<double> params(policy.parameter_count(), 0.25);
    params[0] = -1.0; // clamped to zero
    params[1] = 0.5;
    policy.set_parameters(params);
    const DecisionRule rule = policy.rule_for(0);
    EXPECT_TRUE(rule.is_valid());
    EXPECT_DOUBLE_EQ(rule.prob(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(rule.prob(0, 1), 1.0);
}

TEST(TabularPolicy, ArchiveRoundTrip) {
    const TupleSpace space(6, 2);
    TabularPolicy policy(space, 2, RuleParameterization::Logits, "my-policy");
    std::vector<double> params(policy.parameter_count());
    for (std::size_t i = 0; i < params.size(); ++i) {
        params[i] = 0.01 * static_cast<double>(i) - 0.7;
    }
    policy.set_parameters(params);
    const TabularPolicy loaded = TabularPolicy::from_archive(
        Archive::from_string(policy.to_archive().to_string()));
    EXPECT_EQ(loaded.name(), "my-policy");
    EXPECT_EQ(loaded.num_lambda_states(), 2u);
    EXPECT_EQ(loaded.parameterization(), RuleParameterization::Logits);
    for (std::size_t s = 0; s < 2; ++s) {
        EXPECT_LT(loaded.rule_for(s).max_abs_diff(policy.rule_for(s)), 1e-15);
    }
}

TEST(TabularPolicy, FromArchiveRejectsWrongType) {
    Archive archive;
    archive.put("type", std::string("other"));
    EXPECT_THROW(TabularPolicy::from_archive(archive), std::invalid_argument);
}

TEST(NeuralPolicy, ValidatesShapes) {
    const TupleSpace space(6, 2);
    Rng rng(3);
    auto wrong_obs = std::make_shared<rl::GaussianPolicy>(5, 72, std::vector<std::size_t>{8}, rng);
    EXPECT_THROW(NeuralUpperPolicy(space, 2, wrong_obs), std::invalid_argument);
    auto wrong_act = std::make_shared<rl::GaussianPolicy>(8, 10, std::vector<std::size_t>{8}, rng);
    EXPECT_THROW(NeuralUpperPolicy(space, 2, wrong_act), std::invalid_argument);
    EXPECT_THROW(NeuralUpperPolicy(space, 2, nullptr), std::invalid_argument);
}

TEST(NeuralPolicy, ProducesValidRules) {
    const TupleSpace space(6, 2);
    Rng rng(4);
    auto net = std::make_shared<rl::GaussianPolicy>(8, 72, std::vector<std::size_t>{16}, rng);
    const NeuralUpperPolicy policy(space, 2, net);
    const std::vector<double> nu{0.5, 0.2, 0.1, 0.1, 0.05, 0.05};
    Rng decide_rng(5);
    const DecisionRule rule = policy.decide(nu, 1, decide_rng);
    EXPECT_TRUE(rule.is_valid());
    EXPECT_THROW(policy.decide(std::vector<double>{1.0}, 0, decide_rng), std::invalid_argument);
    EXPECT_THROW(policy.decide(nu, 2, decide_rng), std::out_of_range);
}

TEST(NeuralPolicy, DeterministicMeanAction) {
    const TupleSpace space(6, 2);
    Rng rng(6);
    auto net = std::make_shared<rl::GaussianPolicy>(8, 72, std::vector<std::size_t>{16}, rng);
    const NeuralUpperPolicy policy(space, 2, net);
    const std::vector<double> nu{0.3, 0.3, 0.2, 0.1, 0.05, 0.05};
    Rng r1(7), r2(8);
    const DecisionRule a = policy.decide(nu, 0, r1);
    const DecisionRule b = policy.decide(nu, 0, r2);
    EXPECT_LT(a.max_abs_diff(b), 1e-15);
}

TEST(MfcRlEnvAdapter, ActionDecoding) {
    MfcConfig config;
    config.dt = 5.0;
    config.horizon = 5;
    MfcRlEnv env(config, RuleParameterization::Logits);
    EXPECT_EQ(env.observation_dim(), 8u);
    EXPECT_EQ(env.action_dim(), 72u);
    const std::vector<double> zeros(72, 0.0);
    const DecisionRule rule = env.decode_action(zeros);
    EXPECT_LT(rule.max_abs_diff(DecisionRule::mf_rnd(env.env().tuple_space())), 1e-15);
}

TEST(MfcRlEnvAdapter, EpisodeFlow) {
    MfcConfig config;
    config.dt = 5.0;
    config.horizon = 4;
    MfcRlEnv env(config, RuleParameterization::Logits);
    Rng rng(9);
    auto obs = env.reset(rng);
    ASSERT_EQ(obs.size(), 8u);
    const std::vector<double> action(72, 0.0);
    int steps = 0;
    while (true) {
        const auto result = env.step(action, rng);
        ++steps;
        EXPECT_LE(result.reward, 0.0);
        if (result.done) {
            break;
        }
    }
    EXPECT_EQ(steps, 4);
}

TEST(MfcRlEnvAdapter, SimplexParameterization) {
    MfcConfig config;
    config.dt = 5.0;
    config.horizon = 3;
    MfcRlEnv env(config, RuleParameterization::Simplex);
    std::vector<double> action(72, 0.0);
    action[1] = 1.0; // row 0 fully on coordinate 1
    const DecisionRule rule = env.decode_action(action);
    EXPECT_DOUBLE_EQ(rule.prob(0, 1), 1.0);
    EXPECT_TRUE(rule.is_valid());
}

} // namespace
} // namespace mflb
