// Tests for decision rules h : Z^d -> P(U), eqs. (34)-(35) and the
// parameterized families.
#include "field/decision_rule.hpp"
#include "math/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

TEST(DecisionRule, DefaultIsUniform) {
    const TupleSpace space(6, 2);
    const DecisionRule rule(space);
    EXPECT_TRUE(rule.is_valid());
    for (std::size_t r = 0; r < rule.rows(); ++r) {
        EXPECT_DOUBLE_EQ(rule.prob(r, 0), 0.5);
        EXPECT_DOUBLE_EQ(rule.prob(r, 1), 0.5);
    }
}

TEST(DecisionRule, MfJsqPutsMassOnShortest) {
    const TupleSpace space(6, 2);
    const DecisionRule jsq = DecisionRule::mf_jsq(space);
    EXPECT_TRUE(jsq.is_valid());
    // (z0=1, z1=4): all mass on coordinate 0.
    const std::vector<int> t{1, 4};
    const std::size_t idx = space.index_of(t);
    EXPECT_DOUBLE_EQ(jsq.prob(idx, 0), 1.0);
    EXPECT_DOUBLE_EQ(jsq.prob(idx, 1), 0.0);
    // Ties split uniformly.
    const std::vector<int> tie{3, 3};
    const std::size_t tie_idx = space.index_of(tie);
    EXPECT_DOUBLE_EQ(jsq.prob(tie_idx, 0), 0.5);
    EXPECT_DOUBLE_EQ(jsq.prob(tie_idx, 1), 0.5);
}

TEST(DecisionRule, MfJsqThreeWayTies) {
    const TupleSpace space(4, 3);
    const DecisionRule jsq = DecisionRule::mf_jsq(space);
    const std::vector<int> tie{2, 2, 2};
    const std::size_t idx = space.index_of(tie);
    for (int u = 0; u < 3; ++u) {
        EXPECT_NEAR(jsq.prob(idx, u), 1.0 / 3.0, 1e-12);
    }
    const std::vector<int> partial{1, 3, 1};
    const std::size_t pidx = space.index_of(partial);
    EXPECT_DOUBLE_EQ(jsq.prob(pidx, 0), 0.5);
    EXPECT_DOUBLE_EQ(jsq.prob(pidx, 1), 0.0);
    EXPECT_DOUBLE_EQ(jsq.prob(pidx, 2), 0.5);
}

TEST(DecisionRule, GreedySoftmaxInterpolatesJsqAndRnd) {
    const TupleSpace space(6, 2);
    const DecisionRule rnd_like = DecisionRule::greedy_softmax(space, 0.0);
    EXPECT_LT(rnd_like.max_abs_diff(DecisionRule::mf_rnd(space)), 1e-12);

    const DecisionRule jsq_like = DecisionRule::greedy_softmax(space, 60.0);
    EXPECT_LT(jsq_like.max_abs_diff(DecisionRule::mf_jsq(space)), 1e-9);

    const DecisionRule middle = DecisionRule::greedy_softmax(space, 1.0);
    const std::vector<int> t{0, 2};
    const std::size_t idx = space.index_of(t);
    EXPECT_GT(middle.prob(idx, 0), 0.5);
    EXPECT_LT(middle.prob(idx, 0), 1.0);
    EXPECT_THROW(DecisionRule::greedy_softmax(space, -1.0), std::invalid_argument);
}

TEST(DecisionRule, FromLogitsIsRowSoftmax) {
    const TupleSpace space(2, 2);
    std::vector<double> logits(space.size() * 2, 0.0);
    logits[0] = std::log(3.0); // first row: (3, 1)/4
    const DecisionRule rule = DecisionRule::from_logits(space, logits);
    EXPECT_TRUE(rule.is_valid());
    EXPECT_NEAR(rule.prob(0, 0), 0.75, 1e-12);
    EXPECT_NEAR(rule.prob(1, 0), 0.5, 1e-12);
    EXPECT_THROW(DecisionRule::from_logits(space, std::vector<double>(3, 0.0)),
                 std::invalid_argument);
}

TEST(DecisionRule, FromProbabilitiesClampsAndRenormalizes) {
    const TupleSpace space(2, 2);
    std::vector<double> probs(space.size() * 2, 0.0);
    probs[0] = -5.0; // clamped to 0
    probs[1] = 2.0;
    const DecisionRule rule = DecisionRule::from_probabilities(space, probs);
    EXPECT_TRUE(rule.is_valid());
    EXPECT_DOUBLE_EQ(rule.prob(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(rule.prob(0, 1), 1.0);
    // All-zero row becomes uniform.
    EXPECT_DOUBLE_EQ(rule.prob(1, 0), 0.5);
}

TEST(DecisionRule, SetRowValidation) {
    const TupleSpace space(3, 2);
    DecisionRule rule(space);
    const std::vector<double> row{0.3, 0.7};
    rule.set_row(4, row);
    EXPECT_DOUBLE_EQ(rule.prob(4, 1), 0.7);
    EXPECT_THROW(rule.set_row(0, std::vector<double>{1.0}), std::invalid_argument);
}

// Property: every generated rule in the Boltzmann family is row-stochastic.
class BoltzmannValidity : public ::testing::TestWithParam<double> {};

TEST_P(BoltzmannValidity, RowsAreStochastic) {
    const TupleSpace space(6, 3);
    const DecisionRule rule = DecisionRule::greedy_softmax(space, GetParam());
    EXPECT_TRUE(rule.is_valid(1e-9));
    for (std::size_t r = 0; r < rule.rows(); ++r) {
        EXPECT_TRUE(is_probability_vector(rule.row(r), 1e-9));
    }
}

INSTANTIATE_TEST_SUITE_P(Betas, BoltzmannValidity,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 25.0));

} // namespace
} // namespace mflb
