// Tests for the heterogeneous-server mean-field model.
#include "field/hetero_field.hpp"
#include "math/simplex.hpp"
#include "queueing/heterogeneous.hpp"
#include "support/statistics.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mflb {
namespace {

ClassStateSpace two_class_space() {
    return ClassStateSpace({{0.5, 0.5}, {1.5, 0.5}}, 5);
}

TEST(ClassStateSpace, IndexingRoundTrip) {
    const ClassStateSpace space = two_class_space();
    EXPECT_EQ(space.size(), 12u);
    EXPECT_EQ(space.num_classes(), 2);
    EXPECT_EQ(space.fills(), 6);
    for (int c = 0; c < 2; ++c) {
        for (int z = 0; z <= 5; ++z) {
            const std::size_t s = space.index(c, z);
            EXPECT_EQ(space.class_of(s), c);
            EXPECT_EQ(space.fill_of(s), z);
        }
    }
    EXPECT_THROW(space.index(2, 0), std::out_of_range);
    EXPECT_THROW(space.index(0, 6), std::out_of_range);
}

TEST(ClassStateSpace, WeightsNormalized) {
    // Raw counts are accepted and normalized.
    const ClassStateSpace space({{1.0, 30.0}, {2.0, 10.0}}, 3);
    EXPECT_NEAR(space.server_class(0).weight, 0.75, 1e-12);
    EXPECT_NEAR(space.server_class(1).weight, 0.25, 1e-12);
    const auto nu0 = space.initial_distribution();
    EXPECT_NEAR(std::accumulate(nu0.begin(), nu0.end(), 0.0), 1.0, 1e-12);
    EXPECT_NEAR(nu0[space.index(0, 0)], 0.75, 1e-12);
}

TEST(ClassStateSpace, Validation) {
    EXPECT_THROW(ClassStateSpace({}, 5), std::invalid_argument);
    EXPECT_THROW(ClassStateSpace({{0.0, 1.0}}, 5), std::invalid_argument);
    EXPECT_THROW(ClassStateSpace({{1.0, 1.0}}, 0), std::invalid_argument);
}

TEST(HeteroRules, SedPrefersFastServers) {
    const ClassStateSpace space = two_class_space();
    const DecisionRule sed = hetero_sed_rule(space, 2);
    const DecisionRule jsq = hetero_jsq_rule(space, 2);
    EXPECT_TRUE(sed.is_valid());
    EXPECT_TRUE(jsq.is_valid());
    // Tuple: (slow with 1 job, fast with 3 jobs).
    // SED: (1+1)/0.5 = 4 vs (3+1)/1.5 = 2.67 -> fast wins.
    // JSQ: 1 < 3 -> slow wins.
    const TupleSpace tuples = space.tuple_space(2);
    std::vector<int> tuple{static_cast<int>(space.index(0, 1)),
                           static_cast<int>(space.index(1, 3))};
    const std::size_t idx = tuples.index_of(tuple);
    EXPECT_DOUBLE_EQ(sed.prob(idx, 1), 1.0);
    EXPECT_DOUBLE_EQ(jsq.prob(idx, 0), 1.0);
}

TEST(HeteroDiscretization, ConservesClassMarginals) {
    const ClassStateSpace space = two_class_space();
    const HeteroDiscretization disc(space, 5.0);
    const DecisionRule sed = hetero_sed_rule(space, 2);
    std::vector<double> nu = space.initial_distribution();
    for (int t = 0; t < 15; ++t) {
        const MeanFieldStep step = disc.step(nu, sed, 0.9);
        ASSERT_TRUE(is_probability_vector(step.nu_next, 1e-8));
        // Class weights never change (servers do not switch class).
        for (int c = 0; c < 2; ++c) {
            double marginal = 0.0;
            for (int z = 0; z <= 5; ++z) {
                marginal += step.nu_next[space.index(c, z)];
            }
            EXPECT_NEAR(marginal, 0.5, 1e-9) << "t=" << t << " c=" << c;
        }
        EXPECT_GE(step.expected_drops, 0.0);
        nu = step.nu_next;
    }
}

TEST(HeteroDiscretization, ReducesToHomogeneousWhenRatesEqual) {
    // One class with rate alpha must reproduce the homogeneous model.
    const ClassStateSpace space({{1.0, 1.0}}, 5);
    const HeteroDiscretization hetero(space, 5.0);
    const ExactDiscretization homo({5, 1.0}, 5.0);
    const TupleSpace tuples(6, 2);
    const DecisionRule h_homo = DecisionRule::mf_jsq(tuples);
    const DecisionRule h_hetero = hetero_jsq_rule(space, 2);
    std::vector<double> nu{0.3, 0.25, 0.2, 0.1, 0.1, 0.05};
    const MeanFieldStep a = hetero.step(nu, h_hetero, 0.9);
    const MeanFieldStep b = homo.step(nu, h_homo, 0.9);
    for (std::size_t z = 0; z < 6; ++z) {
        EXPECT_NEAR(a.nu_next[z], b.nu_next[z], 1e-12);
    }
    EXPECT_NEAR(a.expected_drops, b.expected_drops, 1e-12);
}

TEST(HeteroMfcEnv, SedBeatsJsqWithUnevenRates) {
    // Strongly uneven rates at small delay: exploiting them must help.
    const ClassStateSpace space({{0.2, 0.5}, {1.8, 0.5}}, 5);
    HeteroMfcEnv::Config config{space, 2, 1.0, ArrivalProcess::constant(0.8), 80, 0.99};
    const DecisionRule sed = hetero_sed_rule(space, 2);
    const DecisionRule jsq = hetero_jsq_rule(space, 2);
    Rng rng(1);
    HeteroMfcEnv env_sed(config);
    env_sed.reset(rng);
    const double sed_drops = hetero_rollout_drops(env_sed, sed, rng);
    HeteroMfcEnv env_jsq(config);
    env_jsq.reset(rng);
    const double jsq_drops = hetero_rollout_drops(env_jsq, jsq, rng);
    EXPECT_LT(sed_drops, jsq_drops);
}

TEST(HeteroMfcEnv, FiniteSystemConvergesToMeanField) {
    // Theorem-1-style check for the heterogeneous extension: the per-client
    // finite system approaches the hetero mean-field value as M grows.
    // Constant arrival rate removes λ-path noise.
    const int horizon = 30;
    const double dt = 2.0;
    const ArrivalProcess arrivals = ArrivalProcess::constant(0.8);

    const ClassStateSpace space({{0.5, 0.5}, {1.5, 0.5}}, 5);
    HeteroMfcEnv::Config mf_config{space, 2, dt, arrivals, horizon, 0.99};
    HeteroMfcEnv env(mf_config);
    Rng mf_rng(1);
    env.reset(mf_rng);
    const double limit = hetero_rollout_drops(env, hetero_sed_rule(space, 2), mf_rng);

    auto finite_drops = [&](std::size_t m, int episodes) {
        HeterogeneousConfig config;
        config.dt = dt;
        config.horizon = horizon;
        config.arrivals = arrivals;
        config.num_clients = static_cast<std::uint64_t>(m) * 30;
        config.service_rates.assign(m, 0.5);
        for (std::size_t j = m / 2; j < m; ++j) {
            config.service_rates[j] = 1.5;
        }
        RunningStat drops;
        for (int rep = 0; rep < episodes; ++rep) {
            HeterogeneousSystem system(config);
            Rng rng(500 + rep);
            system.reset(rng);
            drops.add(system.run_episode(HeteroSedPolicy{}, rng).total_drops_per_queue);
        }
        return drops.mean();
    };
    const double small_gap = std::abs(finite_drops(20, 12) - limit);
    const double large_gap = std::abs(finite_drops(200, 12) - limit);
    EXPECT_LT(large_gap, 0.12 * std::max(1.0, limit));
    EXPECT_LT(large_gap, small_gap + 0.05 * std::max(1.0, limit));
}

TEST(HeteroMfcEnv, ConditionedPathDeterminism) {
    const ClassStateSpace space = two_class_space();
    HeteroMfcEnv::Config config{space, 2, 5.0, ArrivalProcess::paper_two_state(), 10, 0.99};
    const std::vector<std::size_t> path{0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
    auto run = [&] {
        HeteroMfcEnv env(config);
        env.reset_conditioned(path);
        Rng rng(9);
        return hetero_rollout_drops(env, hetero_sed_rule(space, 2), rng);
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

} // namespace
} // namespace mflb
