// Tests for exact sojourn-time tracking and the M/M/1/B oracles — including
// the closing of the loop: the analytic oracle against sojourn times
// *measured* end-to-end by the event-driven system simulator.
#include "queueing/sojourn.hpp"

#include "core/evaluator.hpp"
#include "des/des_system.hpp"
#include "policies/fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

TEST(JobTimestamps, FifoOrder) {
    JobTimestamps jobs(5);
    jobs.push(1.0);
    jobs.push(2.5);
    jobs.push(3.0);
    EXPECT_EQ(jobs.size(), 3);
    EXPECT_DOUBLE_EQ(jobs.pop(4.0), 3.0);  // job from t=1.0
    EXPECT_DOUBLE_EQ(jobs.pop(4.0), 1.5);  // job from t=2.5
    EXPECT_EQ(jobs.size(), 1);
}

TEST(JobTimestamps, WrapAroundRing) {
    JobTimestamps jobs(2);
    for (int round = 0; round < 10; ++round) {
        jobs.push(round);
        jobs.push(round + 0.5);
        EXPECT_DOUBLE_EQ(jobs.pop(round + 1.0), 1.0);
        EXPECT_DOUBLE_EQ(jobs.pop(round + 1.0), 0.5);
    }
}

TEST(JobTimestamps, GuardsMisuse) {
    JobTimestamps jobs(1);
    EXPECT_THROW(jobs.pop(0.0), std::logic_error);
    jobs.push(0.0);
    EXPECT_THROW(JobTimestamps(0), std::invalid_argument);
}

TEST(Mm1bOracles, MatchHandValues) {
    // rho = 1: stationary law uniform over 0..B.
    EXPECT_NEAR(mm1b_blocking_probability(1.0, 1.0, 4), 0.2, 1e-12);
    EXPECT_NEAR(mm1b_mean_length(1.0, 1.0, 4), 2.0, 1e-12);
    // B = 1, rho = 1: pi = (1/2, 1/2); E[T] = E[L]/(lambda(1-P_B)) = 1.
    EXPECT_NEAR(mm1b_mean_sojourn(1.0, 1.0, 1), 1.0, 1e-12);
    EXPECT_THROW(mm1b_mean_length(0.0, 1.0, 4), std::invalid_argument);
}

TEST(Mm1bOracles, LowLoadApproachesMm1) {
    // At rho = 0.2, B = 20 the finite buffer barely matters: E[T] ≈
    // 1/(mu - lambda) = 1.25.
    EXPECT_NEAR(mm1b_mean_sojourn(0.2, 1.0, 20), 1.25, 1e-3);
}

TEST(SojournSimulation, ConservationAndSupport) {
    Rng rng(1);
    JobTimestamps jobs(5);
    double t0 = 0.0;
    for (int epoch = 0; epoch < 50; ++epoch) {
        const int before = jobs.size();
        const SojournEpochResult r =
            simulate_queue_epoch_sojourn(jobs, t0, 0.9, 1.0, 5, 3.0, rng);
        EXPECT_EQ(r.queue.final_state, jobs.size());
        EXPECT_EQ(r.queue.final_state,
                  before + static_cast<int>(r.queue.arrivals) -
                      static_cast<int>(r.queue.services));
        EXPECT_EQ(r.sojourn.count(), r.queue.services);
        if (r.sojourn.count() > 0) {
            EXPECT_GT(r.sojourn.min(), 0.0);
        }
        t0 += 3.0;
    }
}

TEST(SojournSimulation, MatchesLittlesLawAtStationarity) {
    // Long-run mean sojourn of an M/M/1/B queue vs the analytic oracle.
    const double arrival = 0.8, service = 1.0;
    const int buffer = 5;
    Rng rng(2);
    JobTimestamps jobs(buffer);
    RunningStat sojourn;
    double t0 = 0.0;
    const double dt = 10.0;
    // Warm up to stationarity first.
    for (int epoch = 0; epoch < 50; ++epoch) {
        simulate_queue_epoch_sojourn(jobs, t0, arrival, service, buffer, dt, rng);
        t0 += dt;
    }
    for (int epoch = 0; epoch < 3000; ++epoch) {
        const auto r = simulate_queue_epoch_sojourn(jobs, t0, arrival, service, buffer, dt, rng);
        sojourn.merge(r.sojourn);
        t0 += dt;
    }
    const double oracle = mm1b_mean_sojourn(arrival, service, buffer);
    EXPECT_NEAR(sojourn.mean(), oracle, 6.0 * sojourn.standard_error() + 0.02);
}

TEST(SojournSimulation, DesMeasuredSojournMatchesAnalyticOracle) {
    // Cross-validation of the whole sojourn path: under RND routing with a
    // constant arrival level λ, every queue of the event-driven system is an
    // independent M/M/1/B queue with Poisson(λ) input, so the measured mean
    // sojourn must agree with the stationary Little's-law oracle. This is
    // the first *empirical* check of queueing/sojourn's analytic formulas
    // against a full system simulation.
    const double arrival = 0.8, service = 1.0;
    const int buffer = 5;
    FiniteSystemConfig config;
    config.arrivals = ArrivalProcess::constant(arrival);
    config.queue = QueueParams{buffer, service};
    config.num_queues = 50;
    config.num_clients = 2500;
    config.dt = 10.0;
    config.horizon = 150; // 1500 time units: the empty-start transient is negligible
    config.track_sojourn = true;
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy rnd = make_rnd_policy(space);

    SojournSummary sojourn;
    (void)evaluate_des(config, rnd, 8, 61, 0, &sojourn);
    const double oracle = mm1b_mean_sojourn(arrival, service, buffer);
    EXPECT_GT(sojourn.mean.n, 0u);
    EXPECT_NEAR(sojourn.mean.mean, oracle, 3.0 * sojourn.mean.half_width + 0.05)
        << "DES-measured mean sojourn disagrees with the analytic oracle " << oracle;
    // The percentile estimates must bracket the mean of this skewed law.
    EXPECT_LT(sojourn.p50.mean, sojourn.mean.mean);
    EXPECT_GT(sojourn.p95.mean, sojourn.mean.mean);
}

TEST(SojournSimulation, HigherLoadLongerSojourn) {
    auto mean_sojourn = [](double arrival) {
        Rng rng(3);
        JobTimestamps jobs(5);
        RunningStat sojourn;
        double t0 = 0.0;
        for (int epoch = 0; epoch < 1500; ++epoch) {
            sojourn.merge(
                simulate_queue_epoch_sojourn(jobs, t0, arrival, 1.0, 5, 10.0, rng).sojourn);
            t0 += 10.0;
        }
        return sojourn.mean();
    };
    EXPECT_LT(mean_sojourn(0.3), mean_sojourn(0.9));
}

} // namespace
} // namespace mflb
