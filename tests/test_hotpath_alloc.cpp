// Steady-state allocation tests for the simulation hot paths: after a warmup
// step sized every workspace buffer, `FiniteSystem::step_with_rule` and the
// into-variants of `ExactDiscretization::step`/`step_with_rates` must not
// touch the heap. Verified by replacing the global allocator with a counting
// one in this test binary — any hidden vector/matrix construction in the
// step path shows up as a nonzero delta.
#include "field/mfc_env.hpp"
#include "field/transition.hpp"
#include "policies/fixed.hpp"
#include "queueing/finite_system.hpp"
#include "support/counting_allocator.inc"

#include <gtest/gtest.h>

namespace mflb {
namespace {

TEST(HotPathAllocations, FiniteSystemStepWithRuleAggregated) {
    FiniteSystemConfig config;
    config.num_queues = 50;
    config.num_clients = 2500;
    config.dt = 2.0;
    config.horizon = 1 << 20;
    FiniteSystem system(config);
    Rng rng(1);
    system.reset(rng);
    const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());

    (void)system.step_with_rule(h, rng); // warmup sizes every buffer
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 50; ++i) {
        (void)system.step_with_rule(h, rng);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

TEST(HotPathAllocations, FiniteSystemStepWithRulePerClientAndInfinite) {
    for (const ClientModel model : {ClientModel::PerClient, ClientModel::InfiniteClients}) {
        FiniteSystemConfig config;
        config.num_queues = 20;
        config.num_clients = 400;
        config.dt = 2.0;
        config.horizon = 1 << 20;
        config.client_model = model;
        FiniteSystem system(config);
        Rng rng(2);
        system.reset(rng);
        const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());

        (void)system.step_with_rule(h, rng);
        const std::size_t before = counting_allocator::count();
        for (int i = 0; i < 20; ++i) {
            (void)system.step_with_rule(h, rng);
        }
        EXPECT_EQ(counting_allocator::count() - before, 0u)
            << "client model " << static_cast<int>(model);
    }
}

TEST(HotPathAllocations, ExactDiscretizationStepWithRatesInto) {
    const ExactDiscretization disc({5, 1.0}, 5.0);
    const std::vector<double> nu{0.3, 0.25, 0.2, 0.1, 0.1, 0.05};
    const std::vector<double> rates{0.9, 0.9, 0.8, 0.7, 0.6, 0.5};
    MeanFieldStep out;
    disc.step_with_rates(nu, rates, out); // warmup sizes the output vectors
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 100; ++i) {
        disc.step_with_rates(nu, rates, out);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

TEST(HotPathAllocations, ExactDiscretizationFullStepInto) {
    const ExactDiscretization disc({5, 1.0}, 5.0);
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::mf_jsq(space);
    const std::vector<double> nu{0.3, 0.25, 0.2, 0.1, 0.1, 0.05};
    MeanFieldStep out;
    disc.step(nu, h, 0.9, out);
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 100; ++i) {
        disc.step(nu, h, 0.9, out);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

TEST(HotPathAllocations, MfcEnvStepReusesItsBuffer) {
    MfcConfig config;
    config.dt = 5.0;
    config.horizon = 1 << 20;
    MfcEnv env(config);
    const DecisionRule h = DecisionRule::mf_jsq(TupleSpace(config.queue.num_states(), 2));
    Rng rng(3);
    env.reset(rng);
    (void)env.step(h, rng);
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 100; ++i) {
        (void)env.step(h, rng);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

} // namespace
} // namespace mflb
