// Steady-state allocation tests for the simulation hot paths: after a warmup
// step sized every workspace buffer, `FiniteSystem::step_with_rule`, the
// event-driven `DesSystem::step_with_rule` (including its future event list)
// and the into-variants of `ExactDiscretization::step`/`step_with_rates`
// must not touch the heap. Verified by replacing the global allocator with a
// counting one in this test binary — any hidden vector/matrix construction
// in the step path shows up as a nonzero delta.
#include "core/neural_policy.hpp"
#include "des/des_system.hpp"
#include "des/sharded_des_system.hpp"
#include "field/mfc_env.hpp"
#include "field/transition.hpp"
#include "policies/fixed.hpp"
#include "queueing/finite_system.hpp"
#include "rl/gaussian_policy.hpp"
#include "rl/ppo.hpp"
#include "support/counting_allocator.inc"
#include "support/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

namespace mflb {
namespace {

TEST(HotPathAllocations, FiniteSystemStepWithRuleAggregated) {
    FiniteSystemConfig config;
    config.num_queues = 50;
    config.num_clients = 2500;
    config.dt = 2.0;
    config.horizon = 1 << 20;
    FiniteSystem system(config);
    Rng rng(1);
    system.reset(rng);
    const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());

    (void)system.step_with_rule(h, rng); // warmup sizes every buffer
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 50; ++i) {
        (void)system.step_with_rule(h, rng);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

TEST(HotPathAllocations, FiniteSystemStepWithRulePerClientAndInfinite) {
    for (const ClientModel model : {ClientModel::PerClient, ClientModel::InfiniteClients}) {
        FiniteSystemConfig config;
        config.num_queues = 20;
        config.num_clients = 400;
        config.dt = 2.0;
        config.horizon = 1 << 20;
        config.client_model = model;
        FiniteSystem system(config);
        Rng rng(2);
        system.reset(rng);
        const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());

        (void)system.step_with_rule(h, rng);
        const std::size_t before = counting_allocator::count();
        for (int i = 0; i < 20; ++i) {
            (void)system.step_with_rule(h, rng);
        }
        EXPECT_EQ(counting_allocator::count() - before, 0u)
            << "client model " << static_cast<int>(model);
    }
}

TEST(HotPathAllocations, DesSystemStepWithRuleAllClientModels) {
    for (const ClientModel model :
         {ClientModel::Aggregated, ClientModel::PerClient, ClientModel::InfiniteClients}) {
        FiniteSystemConfig config;
        config.num_queues = 50;
        config.num_clients = 2500;
        config.dt = 2.0;
        config.horizon = 1 << 20;
        config.client_model = model;
        config.track_sojourn = true; // cover the per-job timestamp/P² path too
        DesSystem system(config);
        Rng rng(5);
        system.reset(rng);
        const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());

        (void)system.step_with_rule(h, rng); // warmup
        const std::size_t before = counting_allocator::count();
        for (int i = 0; i < 50; ++i) {
            (void)system.step_with_rule(h, rng);
        }
        EXPECT_EQ(counting_allocator::count() - before, 0u)
            << "client model " << static_cast<int>(model);
    }
}

TEST(HotPathAllocations, DesSystemStepAllocationFreeUnderBothFelKinds) {
    // The FEL seam must not change the steady-state allocation contract:
    // heap and calendar (including the calendar's epoch-barrier retunes,
    // whose width-change rebuilds reuse the preallocated scratch buffer)
    // both run the event loop without touching the heap allocator.
    for (const FelKind kind : {FelKind::Heap, FelKind::Calendar}) {
        FiniteSystemConfig config;
        config.num_queues = 50;
        config.num_clients = 2500;
        config.dt = 2.0;
        config.horizon = 1 << 20;
        config.fel = kind;
        DesSystem system(config);
        Rng rng(5);
        system.reset(rng);
        const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());

        (void)system.step_with_rule(h, rng); // warmup
        const std::size_t before = counting_allocator::count();
        for (int i = 0; i < 50; ++i) {
            (void)system.step_with_rule(h, rng);
        }
        EXPECT_EQ(counting_allocator::count() - before, 0u)
            << "fel kind " << static_cast<int>(kind);
    }
}

TEST(HotPathAllocations, DesSystemRouterStepNonExponentialService) {
    // The classical-router epoch path (weight law + prefix sums + arrival
    // reschedule) and the general-service departure path (multi-draw
    // hyperexponential sampling, per-queue speeds) must stay allocation-free
    // in steady state, like the decision-rule path they sit beside.
    for (const RouterKind kind : {RouterKind::Jsq, RouterKind::JsqD,
                                  RouterKind::RoundRobin, RouterKind::SqStale}) {
        FiniteSystemConfig config;
        config.num_queues = 50;
        config.num_clients = 2500;
        config.dt = 2.0;
        config.horizon = 1 << 20;
        config.router.kind = kind;
        config.router.stale_period = 6.0;
        config.service.kind = ServiceDistKind::HyperExp;
        config.server_speeds.assign(50, 1.0);
        config.track_sojourn = true;
        DesSystem system(config);
        Rng rng(7);
        system.reset(rng);

        (void)system.step_router(rng); // warmup sizes every buffer
        const std::size_t before = counting_allocator::count();
        for (int i = 0; i < 50; ++i) {
            (void)system.step_router(rng);
        }
        EXPECT_EQ(counting_allocator::count() - before, 0u)
            << "router " << router_name(kind);
    }
}

TEST(HotPathAllocations, FiniteSystemGeneralServiceKernel) {
    // The carried-completion-time mini-DES kernel that replaces the Gillespie
    // loop for non-exponential laws runs per queue per epoch — it must not
    // allocate either.
    FiniteSystemConfig config;
    config.num_queues = 50;
    config.num_clients = 2500;
    config.dt = 2.0;
    config.horizon = 1 << 20;
    config.service.kind = ServiceDistKind::BoundedPareto;
    FiniteSystem system(config);
    Rng rng(8);
    system.reset(rng);
    const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());

    (void)system.step_with_rule(h, rng);
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 50; ++i) {
        (void)system.step_with_rule(h, rng);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

TEST(HotPathAllocations, NeuralPolicyDecideIntoReusesScratch) {
    // The batched epoch query: decide_into with a caller-owned BatchScratch
    // routes the network through the GEMM batch path and realizes the rule in
    // place — zero heap traffic once the scratch and output rule exist.
    const TupleSpace space(6, 2);
    Rng rng(17);
    auto net = std::make_shared<rl::GaussianPolicy>(8, 72, std::vector<std::size_t>{32}, rng);
    const NeuralUpperPolicy policy(space, 2, net);
    const std::vector<double> nu{0.3, 0.3, 0.2, 0.1, 0.05, 0.05};
    const std::unique_ptr<UpperLevelPolicy::Scratch> scratch = policy.make_scratch();
    DecisionRule out(space);
    policy.decide_into(nu, 1, rng, scratch.get(), out); // warmup sizes the workspace
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 50; ++i) {
        policy.decide_into(nu, i % 2, rng, scratch.get(), out);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
    EXPECT_TRUE(out.is_valid());
}

TEST(HotPathAllocations, ShardedDesStepWithNeuralPolicy) {
    // The full epoch barrier on one thread — observed-distribution snapshot,
    // batched policy query (cached scratch), vectorized destination law,
    // shard epochs, and the pairwise reduction tree — allocation-free in
    // steady state, on both sides of the pipeline seam (the pipelined path
    // adds the eager reduction folds, the completion token, and the fused
    // gather kernels; none may touch the heap). K = 4 keeps a two-level
    // tree in play.
    for (const bool pipeline : {true, false}) {
        FiniteSystemConfig config;
        config.num_queues = 48;
        config.num_clients = 2400;
        config.dt = 2.0;
        config.horizon = 1 << 20;
        config.shards = 4;
        config.threads = 1;
        config.pipeline = pipeline;
        config.track_sojourn = true;
        ShardedDesSystem system(config);
        Rng net_rng(19);
        const std::size_t num_lambda = system.arrivals().num_states();
        const TupleSpace space(config.queue.num_states(), config.d);
        auto net = std::make_shared<rl::GaussianPolicy>(
            config.queue.num_states() + num_lambda,
            static_cast<std::size_t>(space.size()) * static_cast<std::size_t>(config.d),
            std::vector<std::size_t>{32}, net_rng);
        const NeuralUpperPolicy policy(space, num_lambda, net);
        Rng rng(23);
        system.reset(rng);

        (void)system.step(policy, rng); // warmup: builds the policy scratch + buffers
        const std::size_t before = counting_allocator::count();
        for (int i = 0; i < 50; ++i) {
            (void)system.step(policy, rng);
        }
        EXPECT_EQ(counting_allocator::count() - before, 0u)
            << "pipeline " << (pipeline ? "on" : "off");
    }
}

TEST(HotPathAllocations, ShardedDesPolicyAlternationReusesBothScratches) {
    // A/B/A policy alternation (eval-during-train interleaves a candidate and
    // a baseline policy against one system): the scratch cache is keyed by
    // policy identity, so switching *back* to an already-seen policy must
    // reuse its warm scratch instead of rebuilding it every flip.
    FiniteSystemConfig config;
    config.num_queues = 48;
    config.num_clients = 2400;
    config.dt = 2.0;
    config.horizon = 1 << 20;
    config.shards = 4;
    config.threads = 1;
    ShardedDesSystem system(config);
    Rng net_rng(19);
    const std::size_t num_lambda = system.arrivals().num_states();
    const TupleSpace space(config.queue.num_states(), config.d);
    const auto make_policy = [&] {
        auto net = std::make_shared<rl::GaussianPolicy>(
            config.queue.num_states() + num_lambda,
            static_cast<std::size_t>(space.size()) * static_cast<std::size_t>(config.d),
            std::vector<std::size_t>{32}, net_rng);
        return NeuralUpperPolicy(space, num_lambda, net);
    };
    const NeuralUpperPolicy a = make_policy();
    const NeuralUpperPolicy b = make_policy();
    Rng rng(23);
    system.reset(rng);

    (void)system.step(a, rng); // warmup builds one cache entry per policy
    (void)system.step(b, rng);
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 50; ++i) {
        (void)system.step(i % 2 == 0 ? a : b, rng);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

TEST(HotPathAllocations, ShardedEpisodeWithTelemetryAddsNoAllocations) {
    // The sharded epoch loop with a live telemetry session: per-shard counter
    // lanes, the barrier merge, row formatting into the reused line buffer,
    // stdio emission, and tracer spans must all stay off the heap once the
    // warmup episodes have grown every buffer to its high-water mark. The
    // episode accumulator itself allocates per episode, so the contract is
    // pinned as a difference: a telemetry-on episode costs exactly as many
    // allocations as a telemetry-off one.
    const std::string metrics_path = ::testing::TempDir() + "mflb_alloc_metrics.jsonl";
    const std::string trace_path = ::testing::TempDir() + "mflb_alloc_trace.json";
    TelemetryConfig telemetry_config;
    telemetry_config.metrics_out = metrics_path;
    telemetry_config.trace_out = trace_path;
    {
        TelemetrySession session(telemetry_config);
        FiniteSystemConfig config;
        config.num_queues = 48;
        config.num_clients = 2400;
        config.dt = 2.0;
        config.horizon = 64;
        config.shards = 4;
        config.threads = 1;
        config.track_sojourn = true;

        const auto episode_allocations = [&](TelemetrySession* attached) {
            FiniteSystemConfig run_config = config;
            run_config.telemetry = attached;
            ShardedDesSystem system(run_config);
            const FixedRulePolicy policy = make_jsq_policy(system.tuple_space());
            Rng rng(29);
            for (int warmup = 0; warmup < 2; ++warmup) {
                system.reset(rng);
                (void)system.run_episode(policy, rng);
            }
            system.reset(rng);
            const std::size_t before = counting_allocator::count();
            (void)system.run_episode(policy, rng);
            return counting_allocator::count() - before;
        };
        const std::size_t off = episode_allocations(nullptr);
        const std::size_t on = episode_allocations(&session);
        EXPECT_EQ(on, off);
        EXPECT_EQ(session.sink().rows_written(), 3u * 64u);
    }
    std::remove(metrics_path.c_str());
    std::remove(trace_path.c_str());
}

TEST(HotPathAllocations, EventQueueOperationsAfterConstruction) {
    EventQueue fel(128);
    Rng rng(9);
    for (std::size_t id = 0; id < 128; ++id) {
        fel.schedule(id, rng.uniform());
    }
    const std::size_t before = counting_allocator::count();
    for (int round = 0; round < 1000; ++round) {
        const EventQueue::Event event = fel.pop();
        fel.schedule(event.id, event.time + rng.uniform());
        fel.schedule(static_cast<std::size_t>(rng.uniform_below(128)),
                     event.time + rng.uniform()); // reschedule path
        if (round % 7 == 0) {
            const auto victim = static_cast<std::size_t>(rng.uniform_below(128));
            if (fel.cancel(victim)) {
                fel.schedule(victim, event.time + 1.0);
            }
        }
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

TEST(HotPathAllocations, CalendarQueueOperationsAfterConstruction) {
    // Same contract as the heap FEL: pop / schedule / reschedule / cancel —
    // and the epoch-barrier retune, when the day array needs no growth —
    // are allocation-free after construction.
    CalendarQueue fel(128, 2.0);
    Rng rng(9);
    for (std::size_t id = 0; id < 128; ++id) {
        fel.schedule(id, rng.uniform());
    }
    const std::size_t before = counting_allocator::count();
    for (int round = 0; round < 1000; ++round) {
        const CalendarQueue::Event event = fel.pop();
        fel.schedule(event.id, event.time + rng.uniform());
        fel.schedule(static_cast<std::size_t>(rng.uniform_below(128)),
                     event.time + rng.uniform()); // reschedule path
        if (round % 7 == 0) {
            const auto victim = static_cast<std::size_t>(rng.uniform_below(128));
            if (fel.cancel(victim)) {
                fel.pop_and_reschedule(fel.peek().id, event.time + 0.5);
                fel.schedule(victim, event.time + 1.0);
            }
        }
        if (round % 100 == 99) {
            fel.retune(); // width-change rebuilds reuse the scratch buffer.
        }
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

TEST(HotPathAllocations, ExactDiscretizationStepWithRatesInto) {
    const ExactDiscretization disc({5, 1.0}, 5.0);
    const std::vector<double> nu{0.3, 0.25, 0.2, 0.1, 0.1, 0.05};
    const std::vector<double> rates{0.9, 0.9, 0.8, 0.7, 0.6, 0.5};
    MeanFieldStep out;
    disc.step_with_rates(nu, rates, out); // warmup sizes the output vectors
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 100; ++i) {
        disc.step_with_rates(nu, rates, out);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

TEST(HotPathAllocations, ExactDiscretizationFullStepInto) {
    const ExactDiscretization disc({5, 1.0}, 5.0);
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::mf_jsq(space);
    const std::vector<double> nu{0.3, 0.25, 0.2, 0.1, 0.1, 0.05};
    MeanFieldStep out;
    disc.step(nu, h, 0.9, out);
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 100; ++i) {
        disc.step(nu, h, 0.9, out);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

TEST(HotPathAllocations, MfcEnvStepReusesItsBuffer) {
    MfcConfig config;
    config.dt = 5.0;
    config.horizon = 1 << 20;
    MfcEnv env(config);
    const DecisionRule h = DecisionRule::mf_jsq(TupleSpace(config.queue.num_states(), 2));
    Rng rng(3);
    env.reset(rng);
    (void)env.step(h, rng);
    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 100; ++i) {
        (void)env.step(h, rng);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

/// Minimal stochastic env for the training-step sections; reset()/step()
/// may allocate (the Env interface returns vectors by value), which is why
/// only the *update* phase carries the allocation-free contract.
class ProbeEnv final : public rl::Env {
public:
    std::size_t observation_dim() const override { return 3; }
    std::size_t action_dim() const override { return 2; }

    std::vector<double> reset(Rng& rng) override {
        t_ = 0;
        state_ = rng.uniform();
        return {state_, 1.0 - state_, 0.5};
    }

    rl::Env::StepResult step(std::span<const double> action, Rng& rng) override {
        rl::Env::StepResult r;
        r.reward = -(action[0] - state_) * (action[0] - state_) - action[1] * action[1];
        ++t_;
        r.done = t_ >= 4;
        state_ = rng.uniform();
        r.observation = {state_, 1.0 - state_, 0.5};
        return r;
    }

private:
    int t_ = 0;
    double state_ = 0.0;
};

TEST(HotPathAllocations, PpoOptimizePhaseIsAllocationFree) {
    rl::PpoConfig config;
    config.hidden = {32, 32};
    config.train_batch_size = 128;
    config.minibatch_size = 32;
    config.num_epochs = 2;
    config.num_envs = 2;
    config.train_threads = 1;
    rl::PpoTrainer trainer([] { return std::make_unique<ProbeEnv>(); }, config, Rng(11));
    (void)trainer.train_iteration(); // warmup sizes every workspace
    rl::PpoIterationStats stats;
    trainer.collect_phase(stats);
    const std::size_t before = counting_allocator::count();
    trainer.optimize_phase(stats);
    EXPECT_EQ(counting_allocator::count() - before, 0u);
    // A second full update stays allocation-free too (steady state).
    trainer.collect_phase(stats);
    const std::size_t again = counting_allocator::count();
    trainer.optimize_phase(stats);
    EXPECT_EQ(counting_allocator::count() - again, 0u);
}

TEST(HotPathAllocations, BatchedMlpPassesAreAllocationFree) {
    Rng rng(13);
    rl::Mlp net({8, 64, 64, 6}, rng, 1.0);
    const std::size_t batch = 32;
    std::vector<double> inputs(batch * 8);
    for (double& v : inputs) {
        v = rng.normal();
    }
    std::vector<double> grad_out(batch * 6, 0.25);
    std::vector<double> grads(net.parameter_count(), 0.0);
    std::vector<double> grad_inputs(batch * 8, 0.0);
    rl::Mlp::BatchWorkspace ws(net, batch);

    const std::size_t before = counting_allocator::count();
    for (int i = 0; i < 20; ++i) {
        (void)net.forward_cached_batch(inputs, batch, ws);
        net.backward_batch(ws, grad_out, grads, grad_inputs);
    }
    EXPECT_EQ(counting_allocator::count() - before, 0u);
}

} // namespace
} // namespace mflb
