// Tests for probability-simplex utilities.
#include "math/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mflb {
namespace {

TEST(Simplex, IsProbabilityVector) {
    EXPECT_TRUE(is_probability_vector(std::vector<double>{0.5, 0.5}));
    EXPECT_TRUE(is_probability_vector(std::vector<double>{1.0}));
    EXPECT_FALSE(is_probability_vector(std::vector<double>{0.5, 0.6}));
    EXPECT_FALSE(is_probability_vector(std::vector<double>{-0.1, 1.1}));
}

TEST(Simplex, NormalizedSumsToOne) {
    const auto p = normalized(std::vector<double>{2.0, 6.0});
    EXPECT_DOUBLE_EQ(p[0], 0.25);
    EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(Simplex, NormalizedZeroVectorBecomesUniform) {
    const auto p = normalized(std::vector<double>{0.0, 0.0, 0.0, 0.0});
    for (double v : p) {
        EXPECT_DOUBLE_EQ(v, 0.25);
    }
}

TEST(Simplex, SoftmaxMatchesHandComputation) {
    const auto p = softmax(std::vector<double>{0.0, std::log(3.0)});
    EXPECT_NEAR(p[0], 0.25, 1e-12);
    EXPECT_NEAR(p[1], 0.75, 1e-12);
}

TEST(Simplex, SoftmaxIsShiftInvariantAndStable) {
    const auto a = softmax(std::vector<double>{1.0, 2.0, 3.0});
    const auto b = softmax(std::vector<double>{1001.0, 1002.0, 1003.0});
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(a[i], b[i], 1e-12);
    }
    EXPECT_TRUE(is_probability_vector(a));
}

TEST(Simplex, SoftmaxTemperatureLimits) {
    const std::vector<double> logits{0.0, 1.0, 0.5};
    const auto cold = softmax(logits, 0.01);
    EXPECT_GT(cold[1], 0.99);
    const auto hot = softmax(logits, 100.0);
    for (double v : hot) {
        EXPECT_NEAR(v, 1.0 / 3.0, 0.01);
    }
}

TEST(Simplex, L1Distance) {
    const std::vector<double> p{0.5, 0.5};
    const std::vector<double> q{0.25, 0.75};
    EXPECT_DOUBLE_EQ(l1_distance(p, q), 0.5);
    EXPECT_DOUBLE_EQ(l1_distance(p, p), 0.0);
    // Mismatched lengths count the tail mass.
    EXPECT_DOUBLE_EQ(l1_distance(std::vector<double>{1.0}, std::vector<double>{1.0, 0.5}), 0.5);
}

TEST(Simplex, EntropyBounds) {
    EXPECT_DOUBLE_EQ(entropy(std::vector<double>{1.0, 0.0}), 0.0);
    EXPECT_NEAR(entropy(std::vector<double>{0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(Simplex, KlDivergenceProperties) {
    const std::vector<double> p{0.7, 0.3};
    const std::vector<double> q{0.5, 0.5};
    EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-12);
    EXPECT_GT(kl_divergence(p, q), 0.0);
}

TEST(Simplex, ProjectionIsIdempotentAndValid) {
    const std::vector<double> v{0.8, -0.3, 0.9, 0.2};
    const auto p = project_to_simplex(v);
    EXPECT_TRUE(is_probability_vector(p, 1e-9));
    const auto pp = project_to_simplex(p);
    for (std::size_t i = 0; i < p.size(); ++i) {
        EXPECT_NEAR(p[i], pp[i], 1e-12);
    }
}

TEST(Simplex, ProjectionKeepsPointsAlreadyOnSimplex) {
    const std::vector<double> v{0.2, 0.3, 0.5};
    const auto p = project_to_simplex(v);
    for (std::size_t i = 0; i < v.size(); ++i) {
        EXPECT_NEAR(p[i], v[i], 1e-12);
    }
}

TEST(Simplex, ExpectationIsDotProduct) {
    const std::vector<double> p{0.25, 0.75};
    const std::vector<double> f{4.0, 8.0};
    EXPECT_DOUBLE_EQ(expectation(p, f), 7.0);
}

} // namespace
} // namespace mflb
