// Unified telemetry layer: metrics registry merge semantics, P²-histogram
// accuracy against exact sample quantiles, series-sink formats, tracer span
// nesting/ordering, and the end-to-end determinism contract — the sharded
// backend's emitted series is a function of (seed, K) only (bit-identical at
// 1/2/8 worker threads once wall-clock gauges are stripped), and enabling
// telemetry never changes simulation results.
#include "des/sharded_des_system.hpp"
#include "field/decision_rule.hpp"
#include "policies/fixed.hpp"
#include "queueing/finite_system.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace mflb {
namespace {

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
    MetricsRegistry registry;
    const auto a = registry.counter("arrivals");
    const auto b = registry.counter("drops");
    EXPECT_NE(a, b);
    EXPECT_EQ(registry.counter("arrivals"), a);
    EXPECT_EQ(registry.gauge("lambda"), registry.gauge("lambda"));
    EXPECT_EQ(registry.histogram("sojourn"), registry.histogram("sojourn"));
}

TEST(MetricsRegistry, CounterLanesFoldAtMerge) {
    MetricsRegistry registry;
    const auto id = registry.counter("events");
    registry.ensure_slots(4);
    ASSERT_EQ(registry.slots(), 4u);

    registry.add(id, 1.0, 0);
    registry.add(id, 2.0, 1);
    registry.add(id, 3.0, 2);
    registry.add(id, 4.0, 3);
    // Before the merge only the serial lane (slot 0) is visible.
    EXPECT_DOUBLE_EQ(registry.counter_total(id), 1.0);
    registry.merge_slots();
    EXPECT_DOUBLE_EQ(registry.counter_total(id), 10.0);

    // Lanes are zeroed by the merge: a second merge adds nothing.
    registry.merge_slots();
    EXPECT_DOUBLE_EQ(registry.counter_total(id), 10.0);
}

TEST(MetricsRegistry, MergeTotalIndependentOfLaneAssignment) {
    // The same observations distributed over different lane layouts must
    // produce the same totals — this is what makes the series a function of
    // (seed, K) rather than of the thread schedule.
    const std::vector<double> deltas{1.5, 2.25, 0.5, 7.0, 3.125, 0.625};
    const auto total_with_slots = [&](std::size_t slots) {
        MetricsRegistry registry;
        const auto id = registry.counter("events");
        registry.ensure_slots(slots);
        for (std::size_t i = 0; i < deltas.size(); ++i) {
            registry.add(id, deltas[i], i % slots);
        }
        registry.merge_slots();
        return registry.counter_total(id);
    };
    const double serial = total_with_slots(1);
    EXPECT_DOUBLE_EQ(total_with_slots(2), serial);
    EXPECT_DOUBLE_EQ(total_with_slots(4), serial);
}

TEST(MetricsRegistry, HistogramTracksExactQuantiles) {
    MetricsRegistry registry;
    const auto id = registry.histogram("x");
    registry.ensure_slots(4);

    Rng rng(123);
    std::vector<double> samples;
    samples.reserve(20000);
    for (std::size_t i = 0; i < 20000; ++i) {
        const double x = rng.exponential(1.0);
        samples.push_back(x);
        registry.observe(id, x, i % 4); // round-robin over lanes.
    }
    std::sort(samples.begin(), samples.end());
    const auto exact = [&](double p) {
        return samples[static_cast<std::size_t>(p * (static_cast<double>(samples.size()) - 1))];
    };
    EXPECT_EQ(registry.histogram_count(id), 20000u);
    // The cross-lane merge re-derives markers from a mixture of marker CDFs,
    // so tail estimates carry a few extra percent of error on top of P²'s own.
    EXPECT_NEAR(registry.histogram_quantile(id, 0), exact(0.50), 0.05 * exact(0.50));
    EXPECT_NEAR(registry.histogram_quantile(id, 1), exact(0.95), 0.15 * exact(0.95));
    EXPECT_NEAR(registry.histogram_quantile(id, 2), exact(0.99), 0.25 * exact(0.99));
}

TEST(MetricsRegistry, AppendToEmitsRegistrationOrder) {
    MetricsRegistry registry;
    const auto c = registry.counter("arrivals");
    const auto g = registry.gauge("lambda");
    const auto h = registry.histogram("sojourn");
    registry.add(c, 5.0);
    registry.set(g, 0.75);
    registry.observe(h, 1.0);
    registry.merge_slots();

    MetricsRow row;
    row.reset("test", 0);
    registry.append_to(row);
    ASSERT_EQ(row.size(), 6u); // counter + gauge + hist p50/p95/p99/count.
    EXPECT_STREQ(row.field(0).key, "arrivals");
    EXPECT_TRUE(row.field(0).integral);
    EXPECT_STREQ(row.field(1).key, "lambda");
    EXPECT_STREQ(row.field(2).key, "sojourn_p50");
    EXPECT_STREQ(row.field(5).key, "sojourn_count");
}

// --- EpochSeriesSink -------------------------------------------------------

TEST(EpochSeriesSink, JsonlRowsAreSelfDescribing) {
    EpochSeriesSink sink;
    sink.open_memory(SeriesFormat::Jsonl);
    MetricsRow row;
    row.reset("epoch", 3);
    row.push("lambda", 0.9);
    row.push_int("arrivals", 42);
    sink.write_row(row);
    EXPECT_EQ(sink.rows_written(), 1u);
    EXPECT_EQ(sink.buffer(),
              "{\"series\":\"epoch\",\"step\":3,\"lambda\":0.9,\"arrivals\":42}\n");
}

TEST(EpochSeriesSink, CsvFixesColumnsFromFirstRow) {
    EpochSeriesSink sink;
    sink.open_memory(SeriesFormat::Csv);
    MetricsRow row;
    row.reset("epoch", 0);
    row.push("a", 1.0);
    row.push_int("b", 2);
    sink.write_row(row);
    // A mismatched row (different field set) is skipped, not corrupted.
    row.reset("other", 1);
    row.push("c", 3.0);
    sink.write_row(row);
    row.reset("epoch", 1);
    row.push("a", 4.0);
    row.push_int("b", 5);
    sink.write_row(row);

    EXPECT_EQ(sink.rows_written(), 2u);
    EXPECT_EQ(sink.buffer(), "series,step,a,b\nepoch,0,1,2\nepoch,1,4,5\n");
}

// --- Tracer ----------------------------------------------------------------

TEST(Tracer, SpansNestAndRecordInCompletionOrder) {
    trace::Tracer tracer;
    {
        trace::ScopedSpan outer(&tracer, "outer");
        {
            trace::ScopedSpan inner(&tracer, "inner");
        }
    }
    ASSERT_EQ(tracer.event_count(), 2u);
    ASSERT_EQ(tracer.threads_used(), 1u);
    const auto& events = tracer.thread_events(0);
    // Complete-span events land at destruction: inner first, then outer,
    // with the inner interval contained in the outer one.
    EXPECT_STREQ(events[0].name, "inner");
    EXPECT_STREQ(events[1].name, "outer");
    EXPECT_LE(events[1].begin_ns, events[0].begin_ns);
    EXPECT_GE(events[1].end_ns, events[0].end_ns);
    EXPECT_LE(events[0].begin_ns, events[0].end_ns);
}

TEST(Tracer, DropsInsteadOfGrowingWhenBufferIsFull) {
    trace::Tracer tracer(1, 4);
    for (int i = 0; i < 10; ++i) {
        tracer.record("span", trace::now_ns(), trace::now_ns());
    }
    EXPECT_EQ(tracer.event_count(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(Tracer, ToJsonIsChromeTraceShaped) {
    trace::Tracer tracer;
    {
        trace::ScopedSpan span(&tracer, "phase");
    }
    std::string json;
    tracer.to_json(json);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Tracer, NullSpanAndNullSessionAreNoops) {
    EXPECT_EQ(session_tracer(nullptr), nullptr);
    trace::ScopedSpan span(nullptr, "ignored"); // must not crash.
    TelemetrySession disabled;
    EXPECT_FALSE(disabled.metrics_enabled());
    EXPECT_EQ(disabled.tracer(), nullptr);
}

// --- End-to-end determinism ------------------------------------------------

FiniteSystemConfig small_sharded_config() {
    FiniteSystemConfig config;
    config.num_queues = 32;
    config.num_clients = 800;
    config.dt = 2.0;
    config.horizon = 40;
    config.shards = 4;
    config.track_sojourn = true;
    return config;
}

/// Drops the wall-clock gauge fields (barrier timings) from a JSONL series
/// dump; everything left must be a function of (seed, K) only.
std::string strip_timing_fields(std::string text) {
    for (const char* key : {",\"barrier_prologue_seconds\":", ",\"barrier_overlap_seconds\":",
                            ",\"barrier_reduce_seconds\":", ",\"barrier_parallel_seconds\":"}) {
        for (std::size_t pos = text.find(key); pos != std::string::npos;
             pos = text.find(key, pos)) {
            std::size_t end = pos + std::string(key).size();
            while (end < text.size() && text[end] != ',' && text[end] != '}') {
                ++end;
            }
            text.erase(pos, end - pos);
        }
    }
    return text;
}

std::string run_sharded_series(std::size_t threads) {
    FiniteSystemConfig config = small_sharded_config();
    config.threads = threads;
    const auto session = TelemetrySession::in_memory(SeriesFormat::Jsonl, false);
    config.telemetry = session.get();
    ShardedDesSystem system(config);
    Rng rng(7);
    system.reset(rng);
    const FixedRulePolicy policy = make_jsq_policy(system.tuple_space());
    (void)system.run_episode(policy, rng);
    return strip_timing_fields(session->sink().buffer());
}

TEST(TelemetryEndToEnd, ShardedSeriesIsThreadCountInvariant) {
    const std::string serial = run_sharded_series(1);
    EXPECT_GT(serial.size(), 0u);
    EXPECT_NE(serial.find("\"series\":\"sharded_epoch\""), std::string::npos);
    EXPECT_NE(serial.find("\"des_events_total\""), std::string::npos);
    EXPECT_NE(serial.find("\"sojourn_p95\""), std::string::npos);
    EXPECT_EQ(run_sharded_series(2), serial);
    EXPECT_EQ(run_sharded_series(8), serial);
}

TEST(TelemetryEndToEnd, EnablingTelemetryDoesNotPerturbResults) {
    FiniteSystemConfig config = small_sharded_config();

    const auto run = [&](TelemetrySession* session) {
        FiniteSystemConfig run_config = config;
        run_config.telemetry = session;
        ShardedDesSystem system(run_config);
        Rng rng(11);
        system.reset(rng);
        const FixedRulePolicy policy = make_jsq_policy(system.tuple_space());
        return system.run_episode(policy, rng);
    };
    const DesEpisodeStats off = run(nullptr);
    const auto session = TelemetrySession::in_memory(SeriesFormat::Jsonl, true);
    const DesEpisodeStats on = run(session.get());

    EXPECT_EQ(on.dropped_packets, off.dropped_packets);
    EXPECT_EQ(on.accepted_packets, off.accepted_packets);
    EXPECT_EQ(on.completed_jobs, off.completed_jobs);
    EXPECT_EQ(on.total_drops_per_queue, off.total_drops_per_queue);
    EXPECT_EQ(on.discounted_return, off.discounted_return);
    EXPECT_EQ(on.mean_queue_length, off.mean_queue_length);
    EXPECT_EQ(on.mean_sojourn, off.mean_sojourn);
    EXPECT_EQ(on.sojourn_p99, off.sojourn_p99);
    EXPECT_EQ(on.drops_per_epoch, off.drops_per_epoch);
    // And the instrumented run actually produced telemetry.
    EXPECT_EQ(session->sink().rows_written(), static_cast<std::size_t>(config.horizon));
    EXPECT_GT(session->tracer()->event_count(), 0u);
}

TEST(TelemetryEndToEnd, FileSessionWritesSeriesAndTrace) {
    const std::string metrics_path = ::testing::TempDir() + "mflb_metrics.jsonl";
    const std::string trace_path = ::testing::TempDir() + "mflb_trace.json";
    TelemetryConfig telemetry;
    telemetry.metrics_out = metrics_path;
    telemetry.trace_out = trace_path;
    telemetry.metrics_every = 5;
    {
        TelemetrySession session(telemetry);
        FiniteSystemConfig config = small_sharded_config();
        config.telemetry = &session;
        ShardedDesSystem system(config);
        Rng rng(3);
        system.reset(rng);
        const FixedRulePolicy policy = make_jsq_policy(system.tuple_space());
        (void)system.run_episode(policy, rng);
        // metrics_every = 5 thins the 40-epoch series to the epochs = 0 mod 5.
        EXPECT_EQ(session.sink().rows_written(), 8u);
    } // destructor flushes the series and writes the trace file.

    const auto slurp = [](const std::string& path) {
        std::FILE* f = std::fopen(path.c_str(), "rb");
        EXPECT_NE(f, nullptr) << path;
        std::string out;
        if (f != nullptr) {
            char buf[4096];
            std::size_t n = 0;
            while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
                out.append(buf, n);
            }
            std::fclose(f);
        }
        return out;
    };
    const std::string metrics = slurp(metrics_path);
    EXPECT_NE(metrics.find("\"series\":\"sharded_epoch\""), std::string::npos);
    EXPECT_EQ(static_cast<std::size_t>(std::count(metrics.begin(), metrics.end(), '\n')), 8u);
    const std::string trace = slurp(trace_path);
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"shard_advance\""), std::string::npos);
    std::remove(metrics_path.c_str());
    std::remove(trace_path.c_str());
}

} // namespace
} // namespace mflb
