// Tests for the named scenario registry (core/scenarios.hpp).
#include "core/scenarios.hpp"

#include "des/des_system.hpp"
#include "policies/fixed.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mflb {
namespace {

TEST(Scenarios, RegistryHasUniqueNonEmptyNamesAndSummaries) {
    const auto& registry = scenario_registry();
    ASSERT_GE(registry.size(), 7u);
    std::set<std::string> names;
    for (const Scenario& scenario : registry) {
        EXPECT_FALSE(scenario.name.empty());
        EXPECT_FALSE(scenario.summary.empty());
        EXPECT_TRUE(names.insert(scenario.name).second) << "duplicate: " << scenario.name;
    }
}

TEST(Scenarios, FindAndDieSemantics) {
    EXPECT_NE(find_scenario("table1"), nullptr);
    EXPECT_EQ(find_scenario("nope"), nullptr);
    EXPECT_NO_THROW(scenario_or_die("delay-sweep"));
    EXPECT_THROW(scenario_or_die("nope"), std::invalid_argument);
}

TEST(Scenarios, Table1MatchesPaperBaseline) {
    const Scenario& table1 = scenario_or_die("table1");
    EXPECT_EQ(table1.experiment.num_queues, 100u);
    EXPECT_EQ(table1.experiment.num_clients, 10000u);
    EXPECT_EQ(table1.experiment.queue.buffer, 5);
    EXPECT_EQ(table1.experiment.d, 2);
    EXPECT_DOUBLE_EQ(table1.experiment.lambda_high, 0.9);
    EXPECT_DOUBLE_EQ(table1.experiment.lambda_low, 0.6);
}

TEST(Scenarios, EveryScenarioYieldsConstructibleSystems) {
    for (const Scenario& scenario : scenario_registry()) {
        SCOPED_TRACE(scenario.name);
        // The Table-1-style core must resolve into valid finite + MFC configs.
        EXPECT_NO_THROW({
            FiniteSystem system(scenario.experiment.finite_system());
            (void)system;
        });
        EXPECT_NO_THROW({
            MfcEnv env(scenario.experiment.mfc(true));
            (void)env;
        });
        if (scenario.heterogeneous) {
            EXPECT_NO_THROW({
                HeterogeneousSystem system(*scenario.heterogeneous);
                (void)system;
            });
        }
        if (scenario.memory) {
            EXPECT_NO_THROW({
                MemorySystem system(*scenario.memory);
                (void)system;
            });
        }
    }
}

TEST(Scenarios, PartialInfoForwardsSampledHistogram) {
    const Scenario& partial = scenario_or_die("partial-info");
    EXPECT_EQ(partial.experiment.histogram_sample_size, 20u);
    EXPECT_EQ(partial.experiment.finite_system().histogram_sample_size, 20u);
}

TEST(Scenarios, LargeNResolvesToTheDesBackendAtScale) {
    const Scenario& large = scenario_or_die("large-n");
    EXPECT_EQ(large.experiment.backend, SimBackend::Des);
    EXPECT_GE(large.experiment.num_queues, 10000u);
    EXPECT_GE(large.experiment.num_clients, 1000000u);
}

TEST(Scenarios, LargeNSmokeRunsOnTheEventDrivenBackend) {
    // One decision epoch at M = 10^4, N = 10^6 — far beyond what the
    // epoch-synchronous simulator could smoke-test here — must run and
    // produce sane statistics.
    const Scenario& large = scenario_or_die("large-n");
    DesSystem system(large.experiment.finite_system());
    const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());
    Rng rng(5);
    system.reset(rng);
    const EpochStats stats = system.step_with_rule(h, rng);
    EXPECT_GT(stats.accepted_packets, 0u);
    EXPECT_GE(stats.server_utilization, 0.0);
    EXPECT_LE(stats.server_utilization, 1.0);
    EXPECT_EQ(system.time(), 1);
}

TEST(Scenarios, ListTextNamesEveryScenario) {
    const std::string text = scenario_list_text();
    for (const Scenario& scenario : scenario_registry()) {
        EXPECT_NE(text.find(scenario.name), std::string::npos);
    }
}

} // namespace
} // namespace mflb
