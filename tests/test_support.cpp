// Tests for CLI parsing, tables, serialization, logging, and the thread pool.
#include "support/cli.hpp"
#include "support/logging.hpp"
#include "support/serialization.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string_view>
#include <thread>

namespace mflb {
namespace {

TEST(Cli, ParsesValuesAndDefaults) {
    CliParser cli("test");
    cli.flag("m", "100", "queues").flag("dt", "1.0", "delay").flag("fast", "false", "quick mode");
    const char* argv[] = {"prog", "--m", "400", "--fast", "--dt=2.5"};
    ASSERT_TRUE(cli.parse(5, argv));
    EXPECT_EQ(cli.get_int("m"), 400);
    EXPECT_DOUBLE_EQ(cli.get_double("dt"), 2.5);
    EXPECT_TRUE(cli.get_bool("fast"));
    EXPECT_TRUE(cli.provided("m"));
    EXPECT_FALSE(cli.provided("help"));
}

TEST(Cli, RejectsUnknownFlag) {
    CliParser cli("test");
    const char* argv[] = {"prog", "--nope", "1"};
    EXPECT_FALSE(cli.parse(3, argv));
    EXPECT_TRUE(cli.parse_error());
}

TEST(Cli, RejectsPositionalArgument) {
    CliParser cli("test");
    const char* argv[] = {"prog", "stray"};
    EXPECT_FALSE(cli.parse(2, argv));
    EXPECT_TRUE(cli.parse_error());
    EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, RejectsMissingValueForNonBoolFlag) {
    CliParser cli("test");
    cli.flag("seed", "1", "seed").flag("fast", "false", "quick mode");
    const char* at_end[] = {"prog", "--seed"};
    EXPECT_FALSE(cli.parse(2, at_end));
    EXPECT_TRUE(cli.parse_error());

    CliParser cli2("test");
    cli2.flag("seed", "1", "seed").flag("fast", "false", "quick mode");
    const char* before_flag[] = {"prog", "--seed", "--fast"};
    EXPECT_FALSE(cli2.parse(3, before_flag));
    EXPECT_TRUE(cli2.parse_error());
}

TEST(Cli, BoolFlagConsumesExplicitValueToken) {
    CliParser cli("test");
    cli.flag("fast", "false", "quick mode").flag("seed", "1", "seed");
    const char* argv[] = {"prog", "--fast", "false", "--seed", "7"};
    ASSERT_TRUE(cli.parse(5, argv));
    EXPECT_FALSE(cli.get_bool("fast"));
    EXPECT_EQ(cli.get_int("seed"), 7);

    CliParser cli2("test");
    cli2.flag("fast", "false", "quick mode");
    const char* bare[] = {"prog", "--fast"};
    ASSERT_TRUE(cli2.parse(2, bare));
    EXPECT_TRUE(cli2.get_bool("fast"));
}

TEST(Cli, RejectsValuesMismatchingDefaultImpliedType) {
    CliParser cli("test");
    cli.flag("seed", "1", "seed");
    const char* bad_int[] = {"prog", "--seed", "abc"};
    EXPECT_FALSE(cli.parse(3, bad_int));
    EXPECT_TRUE(cli.parse_error());

    CliParser cli2("test");
    cli2.flag("dts", "1,3,5", "delays");
    const char* bad_list[] = {"prog", "--dts", "1,x,3"};
    EXPECT_FALSE(cli2.parse(3, bad_list));
    EXPECT_TRUE(cli2.parse_error());

    CliParser cli3("test");
    cli3.flag("full", "false", "full run");
    const char* bad_bool[] = {"prog", "--full=banana"};
    EXPECT_FALSE(cli3.parse(2, bad_bool));
    EXPECT_TRUE(cli3.parse_error());

    CliParser cli4("test");
    cli4.flag("dt", "5", "delay").flag("dts", "1,3,5", "delays");
    const char* ok[] = {"prog", "--dt", "2.5", "--dts", "7"};
    EXPECT_TRUE(cli4.parse(5, ok));
    EXPECT_DOUBLE_EQ(cli4.get_double("dt"), 2.5);
    ASSERT_EQ(cli4.get_int_list("dts").size(), 1u);
}

TEST(Cli, TypedRegistrationsParseRoundTrip) {
    CliParser cli("test");
    cli.flag_int("m", 100, "queues")
        .flag_double("dt", 1.0, "delay")
        .flag_bool("fast", false, "quick mode")
        .flag_int_list("ms", "100,200", "queue sizes")
        .flag_double_list("dts", "1,2.5", "delays");
    const char* argv[] = {"prog", "--m", "400", "--fast", "--dt=2.5", "--dts", "3,4.5"};
    ASSERT_TRUE(cli.parse(7, argv));
    EXPECT_EQ(cli.get_int("m"), 400);
    EXPECT_DOUBLE_EQ(cli.get_double("dt"), 2.5);
    EXPECT_TRUE(cli.get_bool("fast"));
    ASSERT_EQ(cli.get_int_list("ms").size(), 2u);
    EXPECT_EQ(cli.get_int_list("ms")[1], 200);
    ASSERT_EQ(cli.get_double_list("dts").size(), 2u);
    EXPECT_DOUBLE_EQ(cli.get_double_list("dts")[1], 4.5);
}

TEST(Cli, IntFlagRejectsFloatAtParseTime) {
    // ROADMAP item: the int/float mismatch must fail during parse(), not in
    // the typed-getter backstop.
    CliParser cli("test");
    cli.flag_int("m", 100, "queues");
    const char* argv[] = {"prog", "--m", "2.5"};
    EXPECT_FALSE(cli.parse(3, argv));
    EXPECT_TRUE(cli.parse_error());
    EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, IntListFlagRejectsFloatElementAtParseTime) {
    CliParser cli("test");
    cli.flag_int_list("ms", "100,200", "queue sizes");
    const char* argv[] = {"prog", "--ms", "100,2.5"};
    EXPECT_FALSE(cli.parse(3, argv));
    EXPECT_TRUE(cli.parse_error());

    // An empty default is fine for typed lists, and values stay validated.
    CliParser cli2("test");
    cli2.flag_int_list("ms", "", "queue sizes");
    const char* bad[] = {"prog", "--ms", "1,x"};
    EXPECT_FALSE(cli2.parse(3, bad));
    EXPECT_TRUE(cli2.parse_error());
}

TEST(Cli, TypedBoolFlagKeepsBareAndExplicitForms) {
    CliParser cli("test");
    cli.flag_bool("fast", true, "quick mode").flag_int("seed", 1, "seed");
    const char* argv[] = {"prog", "--fast", "false", "--seed", "7"};
    ASSERT_TRUE(cli.parse(5, argv));
    EXPECT_FALSE(cli.get_bool("fast"));
    EXPECT_EQ(cli.get_int("seed"), 7);
}

TEST(Cli, MalformedTypedListDefaultThrowsAtRegistration) {
    CliParser cli("test");
    EXPECT_THROW(cli.flag_int_list("ms", "1,2.5", "bad default"), std::invalid_argument);
    EXPECT_THROW(cli.flag_double_list("dts", "1,x", "bad default"), std::invalid_argument);
}

TEST(CliDeathTest, GetterBackstopExitsWithCode2OnUntypedFlag) {
    // String-default flags are not validated at parse time; the typed
    // getters remain a last-resort guard.
    CliParser cli("test");
    cli.flag("mode", "sweep", "mode");
    const char* argv[] = {"prog", "--mode", "fast"};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_EXIT(cli.get_int("mode"), ::testing::ExitedWithCode(2), "invalid value for --mode");
}

TEST(Cli, ParsesLists) {
    CliParser cli("test");
    cli.flag("ms", "100,200,400", "queue sizes").flag("dts", "1,2.5", "delays");
    const char* argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    const auto ms = cli.get_int_list("ms");
    ASSERT_EQ(ms.size(), 3u);
    EXPECT_EQ(ms[2], 400);
    const auto dts = cli.get_double_list("dts");
    ASSERT_EQ(dts.size(), 2u);
    EXPECT_DOUBLE_EQ(dts[1], 2.5);
}

TEST(Cli, HelpReturnsFalse) {
    CliParser cli("test");
    const char* argv[] = {"prog", "--help"};
    EXPECT_FALSE(cli.parse(2, argv));
    EXPECT_FALSE(cli.parse_error());
    EXPECT_EQ(cli.exit_code(), 0);
}

TEST(Table, TextAndCsvRendering) {
    Table t({"a", "b"});
    t.row().cell("x").cell(1.23456, 2);
    t.row().cell(std::int64_t{7}).cell_ci(3.0, 0.5, 1);
    const std::string text = t.to_text();
    EXPECT_NE(text.find("1.23"), std::string::npos);
    EXPECT_NE(text.find("3.0 +- 0.5"), std::string::npos);
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("a,b"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Archive, RoundTripsScalarsAndVectors) {
    Archive a;
    a.put("alpha", 1.5);
    a.put("count", std::int64_t{42});
    a.put("name", std::string("mflb"));
    a.put("params", std::vector<double>{0.1, -2.5e-7, 3.0});
    const Archive b = Archive::from_string(a.to_string());
    EXPECT_DOUBLE_EQ(b.get_double("alpha"), 1.5);
    EXPECT_EQ(b.get_int("count"), 42);
    EXPECT_EQ(b.get_string("name"), "mflb");
    const auto params = b.get_vector("params");
    ASSERT_EQ(params.size(), 3u);
    EXPECT_DOUBLE_EQ(params[1], -2.5e-7);
    EXPECT_TRUE(b.contains("alpha"));
    EXPECT_FALSE(b.contains("missing"));
}

TEST(Archive, ThrowsOnMissingKeyAndBadSyntax) {
    Archive a;
    EXPECT_THROW(a.get_double("nope"), std::invalid_argument);
    EXPECT_THROW(Archive::from_string("no equals sign"), std::invalid_argument);
    EXPECT_THROW(Archive::from_string("k = [1, 2"), std::invalid_argument);
}

TEST(Archive, IgnoresCommentsAndBlankLines) {
    const Archive a = Archive::from_string("# comment\n\nkey = 3\n");
    EXPECT_EQ(a.get_int("key"), 3);
}

TEST(Logging, ConcurrentLoggingAndLevelChangesAreSerialized) {
    // Regression guard for the logger's thread-safety contract (atomic level,
    // mutex-serialized emission): concurrent writers and level togglers must
    // produce whole lines, never torn bytes — TSan runs this test in CI.
    const LogLevel before = log_level();
    ::testing::internal::CaptureStderr();
    constexpr int kThreads = 8;
    constexpr int kMessages = 50;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kMessages; ++i) {
                // Both levels pass warn messages, so the line count below is
                // deterministic while the level still changes under load.
                set_log_level(t % 2 == 0 ? LogLevel::Debug : LogLevel::Warn);
                log_warn("logging-race t=", t, " i=", i);
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    const std::string captured = ::testing::internal::GetCapturedStderr();
    set_log_level(before);

    const auto lines = static_cast<int>(std::count(captured.begin(), captured.end(), '\n'));
    EXPECT_EQ(lines, kThreads * kMessages);
    // Every line is a complete "[ts LEVEL] message" record.
    std::size_t pos = 0;
    while (pos < captured.size()) {
        const std::size_t end = captured.find('\n', pos);
        ASSERT_NE(end, std::string::npos);
        const std::string_view line(captured.data() + pos, end - pos);
        EXPECT_EQ(line.front(), '[');
        EXPECT_NE(line.find("WARN ] logging-race t="), std::string_view::npos) << line;
        pos = end + 1;
    }
}

TEST(ThreadPool, RunsAllTasks) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, ZeroAndSingleElement) {
    int calls = 0;
    parallel_for(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallel_for(1, [&](std::size_t) { ++calls; }, 8);
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RethrowsFirstExceptionOnCaller) {
    // Regression: a throwing body used to call std::terminate (exception
    // escaping a worker thread); it must surface on the calling thread.
    try {
        parallel_for(
            100,
            [](std::size_t i) {
                if (i == 13) {
                    throw std::runtime_error("boom at 13");
                }
            },
            4);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& error) {
        EXPECT_STREQ(error.what(), "boom at 13");
    }
}

TEST(ParallelFor, ExceptionStopsSchedulingRemainingIndices) {
    std::atomic<int> executed{0};
    EXPECT_THROW(parallel_for(
                     10000,
                     [&](std::size_t) {
                         executed.fetch_add(1);
                         throw std::runtime_error("always");
                     },
                     4),
                 std::runtime_error);
    // Every worker stops after at most one throwing index.
    EXPECT_LE(executed.load(), 4);
}

TEST(ParallelFor, SerialPathPropagatesException) {
    EXPECT_THROW(parallel_for(
                     5, [](std::size_t) { throw std::logic_error("serial"); }, 1),
                 std::logic_error);
}

TEST(ParallelFor, ReusesThePersistentSharedPool) {
    // Regression for the spawn-per-call era: every parallel_for body must
    // execute on a worker of the process-wide pool (no fresh threads).
    // Enumerate the pool's worker ids by submitting one blocking task per
    // worker, then check parallel_for bodies land only on those ids.
    ThreadPool& pool = shared_thread_pool();
    EXPECT_EQ(&pool, &shared_thread_pool()); // one pool, lazily constructed
    const std::size_t workers = pool.thread_count();
    ASSERT_GE(workers, 1u);

    std::mutex mutex;
    std::set<std::thread::id> pool_ids;
    {
        // Hold every worker until all have checked in, so each distinct
        // worker id is observed exactly once.
        std::condition_variable all_in;
        std::size_t arrived = 0;
        for (std::size_t i = 0; i < workers; ++i) {
            pool.submit([&] {
                std::unique_lock lock(mutex);
                pool_ids.insert(std::this_thread::get_id());
                ++arrived;
                all_in.notify_all();
                all_in.wait(lock, [&] { return arrived == workers; });
            });
        }
        pool.wait_idle();
    }
    ASSERT_EQ(pool_ids.size(), workers);

    std::set<std::thread::id> body_ids;
    for (int round = 0; round < 3; ++round) {
        parallel_for(
            64,
            [&](std::size_t) {
                std::lock_guard lock(mutex);
                body_ids.insert(std::this_thread::get_id());
            },
            4);
    }
    for (const auto& id : body_ids) {
        EXPECT_TRUE(pool_ids.count(id) > 0) << "body ran outside the shared pool";
        EXPECT_NE(id, std::this_thread::get_id());
    }
}

TEST(ParallelFor, NestedCallsRunInlineOnTheOuterWorker) {
    // Nested use (replications x shards): the inner fan-out must degrade to
    // serial inline execution on the *same* worker — no pool re-entry, no
    // deadlock — and still cover every index.
    std::atomic<int> inner_total{0};
    std::atomic<int> mismatched_threads{0};
    parallel_for(
        4,
        [&](std::size_t) {
            const auto outer_id = std::this_thread::get_id();
            EXPECT_TRUE(on_pool_worker());
            parallel_for(
                50,
                [&](std::size_t) {
                    inner_total.fetch_add(1);
                    if (std::this_thread::get_id() != outer_id) {
                        mismatched_threads.fetch_add(1);
                    }
                },
                8);
        },
        4);
    EXPECT_EQ(inner_total.load(), 4 * 50);
    EXPECT_EQ(mismatched_threads.load(), 0);
    EXPECT_FALSE(on_pool_worker()); // caller is not a pool worker
}

TEST(ParallelFor, DirectSubmitTasksAreAlsoGuardedAgainstNestedFanOut) {
    // A task submitted straight to the shared pool (not via parallel_for)
    // must still hit the nested-use guard when it fans out — otherwise it
    // could block on pool capacity it occupies and deadlock a fully busy
    // pool. One task per worker, each fanning out, makes that concrete.
    ThreadPool& pool = shared_thread_pool();
    const std::size_t workers = pool.thread_count();
    std::atomic<int> total{0};
    std::atomic<int> guarded{0};
    for (std::size_t t = 0; t < workers; ++t) {
        pool.submit([&] {
            guarded.fetch_add(on_pool_worker() ? 1 : 0);
            parallel_for(
                10, [&](std::size_t) { total.fetch_add(1); }, 4);
        });
    }
    pool.wait_idle();
    EXPECT_EQ(total.load(), static_cast<int>(workers) * 10);
    EXPECT_EQ(guarded.load(), static_cast<int>(workers));
}

TEST(ParallelFor, NestedExceptionPropagatesThroughBothLevels) {
    EXPECT_THROW(parallel_for(
                     3,
                     [](std::size_t) {
                         parallel_for(
                             10,
                             [](std::size_t i) {
                                 if (i == 7) {
                                     throw std::runtime_error("inner boom");
                                 }
                             },
                             4);
                     },
                     2),
                 std::runtime_error);
}

TEST(Latch, BlocksUntilCountReachesZero) {
    Latch latch(3);
    std::atomic<bool> released{false};
    std::thread waiter([&] {
        latch.wait();
        released.store(true);
    });
    latch.count_down();
    latch.count_down();
    EXPECT_FALSE(released.load());
    latch.count_down();
    waiter.join();
    EXPECT_TRUE(released.load());
    latch.wait(); // already zero: returns immediately
}

TEST(Logging, LevelFiltering) {
    const LogLevel before = log_level();
    set_log_level(LogLevel::Error);
    EXPECT_EQ(log_level(), LogLevel::Error);
    log_info("should be filtered");
    set_log_level(before);
}

} // namespace
} // namespace mflb
