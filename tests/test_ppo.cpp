// PPO end-to-end behaviour on small synthetic environments.
#include "rl/ppo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace mflb::rl {
namespace {

/// Reward = -(a - target)^2 summed over a short episode; the optimal policy
/// outputs `target` deterministically. Observation is a constant.
class TargetEnv final : public Env {
public:
    explicit TargetEnv(double target, int horizon = 8) : target_(target), horizon_(horizon) {}

    std::size_t observation_dim() const override { return 2; }
    std::size_t action_dim() const override { return 1; }

    std::vector<double> reset(Rng& /*rng*/) override {
        t_ = 0;
        return {1.0, 0.5};
    }

    StepResult step(std::span<const double> action, Rng& /*rng*/) override {
        const double a = action[0];
        StepResult r;
        r.reward = -(a - target_) * (a - target_);
        ++t_;
        r.done = t_ >= horizon_;
        r.observation = {1.0, 0.5};
        return r;
    }

private:
    double target_;
    int horizon_;
    int t_ = 0;
};

/// Two-state contextual environment: the optimal action depends on the
/// observation (state 0 wants -1, state 1 wants +1).
class ContextualEnv final : public Env {
public:
    std::size_t observation_dim() const override { return 1; }
    std::size_t action_dim() const override { return 1; }

    std::vector<double> reset(Rng& rng) override {
        t_ = 0;
        state_ = rng.bernoulli(0.5) ? 1.0 : 0.0;
        return {state_};
    }

    StepResult step(std::span<const double> action, Rng& rng) override {
        const double target = state_ > 0.5 ? 1.0 : -1.0;
        StepResult r;
        r.reward = -(action[0] - target) * (action[0] - target);
        ++t_;
        r.done = t_ >= 6;
        state_ = rng.bernoulli(0.5) ? 1.0 : 0.0;
        r.observation = {state_};
        return r;
    }

private:
    int t_ = 0;
    double state_ = 0.0;
};

PpoConfig fast_config() {
    PpoConfig config;
    config.hidden = {32, 32};
    config.train_batch_size = 512;
    config.minibatch_size = 64;
    config.num_epochs = 8;
    config.learning_rate = 5e-3;
    return config;
}

PpoTrainer::EnvFactory target_env(double target) {
    return [target] { return std::make_unique<TargetEnv>(target); };
}

TEST(Ppo, ValidatesConfig) {
    PpoConfig bad = fast_config();
    bad.train_batch_size = 0;
    EXPECT_THROW(PpoTrainer(target_env(0.0), bad, Rng(1)), std::invalid_argument);
    PpoConfig no_envs = fast_config();
    no_envs.num_envs = 0;
    EXPECT_THROW(PpoTrainer(target_env(0.0), no_envs, Rng(1)), std::invalid_argument);
    PpoConfig too_many = fast_config();
    too_many.num_envs = too_many.train_batch_size + 1;
    EXPECT_THROW(PpoTrainer(target_env(0.0), too_many, Rng(1)), std::invalid_argument);
}

TEST(Ppo, IterationProducesStats) {
    PpoTrainer trainer(target_env(0.3), fast_config(), Rng(2));
    const auto stats = trainer.train_iteration();
    EXPECT_EQ(stats.timesteps_total, 512u);
    EXPECT_GT(stats.episodes_completed, 0u);
    EXPECT_GE(stats.mean_kl, 0.0);
    EXPECT_EQ(trainer.history().size(), 1u);
}

TEST(Ppo, LearnsConstantTarget) {
    PpoTrainer trainer(target_env(0.7), fast_config(), Rng(3));
    const double before = trainer.evaluate(20);
    trainer.train(25);
    const double after = trainer.evaluate(20);
    EXPECT_GT(after, before);
    // Deterministic policy should be close to optimal (return 0).
    EXPECT_GT(after, -0.5);
}

TEST(Ppo, LearnsContextualTargets) {
    PpoTrainer trainer([] { return std::make_unique<ContextualEnv>(); }, fast_config(), Rng(4));
    trainer.train(35);
    // Check the mean action is state-dependent with the right signs.
    const auto low = trainer.policy().mean_action(std::vector<double>{0.0});
    const auto high = trainer.policy().mean_action(std::vector<double>{1.0});
    EXPECT_LT(low[0], 0.0);
    EXPECT_GT(high[0], 0.0);
}

TEST(Ppo, KlCoefficientAdapts) {
    PpoConfig config = fast_config();
    config.kl_target = 1e-9; // practically unattainable: coeff must grow
    PpoTrainer trainer(target_env(0.0), config, Rng(5));
    const double initial = trainer.current_kl_coeff();
    trainer.train(3);
    EXPECT_GT(trainer.current_kl_coeff(), initial);
}

TEST(Ppo, TimestepsAccumulateAcrossIterations) {
    PpoTrainer trainer(target_env(0.0), fast_config(), Rng(6));
    trainer.train(3);
    EXPECT_EQ(trainer.history().back().timesteps_total, 3u * 512u);
}

TEST(Ppo, DeterministicGivenSeed) {
    auto run = [] {
        PpoTrainer trainer(target_env(0.4), fast_config(), Rng(77));
        trainer.train(2);
        return trainer.history().back().mean_episode_return;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

} // namespace
} // namespace mflb::rl
