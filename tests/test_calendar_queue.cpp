// Tests for the calendar-queue FEL (src/des/calendar_queue) and the FEL seam
// (src/des/fel): the determinism contract — the calendar pops in the exact
// (time, id) lexicographic order of the pending set, bit-identical to the
// indexed binary heap — via differential fuzzing against EventQueue,
// bucket-boundary / far-future / retune edge cases, the heap's
// pop_and_reschedule fast path, and full-episode bitwise equality of the two
// FEL kinds on both event-driven backends (all client models, 1/2/8-thread
// invariance with the calendar selected explicitly).
#include "des/calendar_queue.hpp"

#include "des/des_system.hpp"
#include "des/fel.hpp"
#include "des/sharded_des_system.hpp"
#include "policies/fixed.hpp"
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mflb {
namespace {

// ---------------------------------------------------------------------------
// CalendarQueue mechanics
// ---------------------------------------------------------------------------

TEST(CalendarQueue, PopsInTimeOrderWithIdTieBreak) {
    CalendarQueue fel(8, 1.0);
    fel.schedule(3, 2.5);
    fel.schedule(1, 1.0);
    fel.schedule(5, 1.0); // same time as id 1: id order breaks the tie.
    fel.schedule(0, 4.0);
    const std::vector<std::pair<double, std::size_t>> expected{
        {1.0, 1}, {1.0, 5}, {2.5, 3}, {4.0, 0}};
    for (const auto& [time, id] : expected) {
        EXPECT_EQ(fel.peek().id, id);
        const CalendarQueue::Event event = fel.pop();
        EXPECT_DOUBLE_EQ(event.time, time);
        EXPECT_EQ(event.id, id);
    }
    EXPECT_TRUE(fel.empty());
}

TEST(CalendarQueue, ScheduleReschedulesPendingSlot) {
    CalendarQueue fel(4, 1.0);
    fel.schedule(0, 5.0);
    fel.schedule(1, 2.0);
    fel.schedule(0, 1.0); // move id 0 ahead of id 1.
    EXPECT_EQ(fel.size(), 2u);
    EXPECT_DOUBLE_EQ(fel.time_of(0), 1.0);
    EXPECT_EQ(fel.pop().id, 0u);
    EXPECT_EQ(fel.pop().id, 1u);
}

TEST(CalendarQueue, CancelRemovesOnlyThatSlot) {
    CalendarQueue fel(4, 1.0);
    fel.schedule(0, 1.0);
    fel.schedule(1, 2.0);
    fel.schedule(2, 3.0);
    EXPECT_TRUE(fel.cancel(1));
    EXPECT_FALSE(fel.cancel(1)); // already gone.
    EXPECT_EQ(fel.size(), 2u);
    EXPECT_EQ(fel.pop().id, 0u);
    EXPECT_EQ(fel.pop().id, 2u);
}

TEST(CalendarQueue, GuardsMisuse) {
    EXPECT_THROW(CalendarQueue(0, 1.0), std::invalid_argument);
    CalendarQueue fel(2, 1.0);
    EXPECT_THROW(fel.schedule(2, 1.0), std::invalid_argument);
    EXPECT_THROW(fel.pop(), std::logic_error);
    EXPECT_THROW(fel.peek(), std::logic_error);
    EXPECT_THROW(fel.time_of(0), std::logic_error);
    EXPECT_THROW(fel.pop_and_reschedule(0, 1.0), std::logic_error);
    EXPECT_FALSE(fel.cancel(5)); // out of range is just "not pending".
}

TEST(CalendarQueue, ClearEmptiesButKeepsCapacity) {
    CalendarQueue fel(3, 1.0);
    fel.schedule(0, 1.0);
    fel.schedule(2, 2.0);
    fel.clear();
    EXPECT_TRUE(fel.empty());
    EXPECT_EQ(fel.capacity(), 3u);
    EXPECT_FALSE(fel.contains(0));
    fel.schedule(0, 4.0); // usable again.
    EXPECT_EQ(fel.pop().id, 0u);
}

TEST(CalendarQueue, BucketBoundaryAndSharedBucketTimesStayOrdered) {
    // Times at exact bucket-width multiples, inside one bucket, and spread
    // far apart must all drain in (time, id) order regardless of which
    // physical bucket they land in (the day array wraps).
    CalendarQueue fel(16, 1.0); // width 1.0.
    fel.schedule(0, 3.0);       // exactly on a boundary.
    fel.schedule(1, 3.0);       // tie on the boundary.
    fel.schedule(2, 2.9999999);
    fel.schedule(3, 3.0000001);
    fel.schedule(4, 0.0);
    fel.schedule(5, 0.5);  // same bucket as id 4.
    fel.schedule(6, 0.25); // same bucket, lands between them.
    fel.schedule(7, 1000.0);
    fel.schedule(8, 999.75); // wraps onto earlier physical buckets.
    const std::vector<std::size_t> expected{4, 6, 5, 2, 0, 1, 3, 8, 7};
    double last = -1.0;
    for (const std::size_t id : expected) {
        const CalendarQueue::Event event = fel.pop();
        EXPECT_EQ(event.id, id);
        EXPECT_GE(event.time, last);
        last = event.time;
    }
}

TEST(CalendarQueue, FarFutureTimesSaturateWithoutLosingOrder) {
    // Events beyond the virtual-index clamp share one saturated bucket but
    // stay sorted inside it; mixing them with near-term events must keep
    // the global order exact.
    CalendarQueue fel(8, 1.0);
    fel.schedule(0, 1e300);
    fel.schedule(1, 1e18);
    fel.schedule(2, 0.5);
    fel.schedule(3, 1e300); // tie at the clamp: id order.
    fel.schedule(4, 4.5e15);
    EXPECT_EQ(fel.pop().id, 2u);
    EXPECT_EQ(fel.pop().id, 4u);
    EXPECT_EQ(fel.pop().id, 1u);
    EXPECT_EQ(fel.pop().id, 0u);
    EXPECT_EQ(fel.pop().id, 3u);
}

TEST(CalendarQueue, PopAndRescheduleMatchesPopPlusSchedule) {
    // The fused fast path must leave the queue in a state indistinguishable
    // from popping and re-inserting: run the same operation stream both ways
    // and compare the full drain.
    CalendarQueue fused(16, 2.0);
    CalendarQueue split(16, 2.0);
    Rng rng_a(7);
    Rng rng_b(7);
    for (std::size_t id = 0; id < 16; ++id) {
        const double t = rng_a.uniform(0.0, 8.0);
        fused.schedule(id, t);
        split.schedule(id, rng_b.uniform(0.0, 8.0));
    }
    for (int round = 0; round < 200; ++round) {
        const CalendarQueue::Event top = fused.peek();
        ASSERT_EQ(split.peek().id, top.id);
        const double next = top.time + rng_a.uniform(0.0, 2.0);
        rng_b.uniform(0.0, 2.0); // keep the streams aligned.
        fused.pop_and_reschedule(top.id, next);
        const CalendarQueue::Event popped = split.pop();
        split.schedule(popped.id, next);
    }
    ASSERT_EQ(fused.size(), split.size());
    while (!fused.empty()) {
        const CalendarQueue::Event a = fused.pop();
        const CalendarQueue::Event b = split.pop();
        EXPECT_EQ(a.id, b.id);
        EXPECT_DOUBLE_EQ(a.time, b.time);
    }
}

TEST(CalendarQueue, RetuneMidStreamPreservesContentAndOrder) {
    // Repeated retunes between bursts (growth + width adaptation + rebuild)
    // must never change the pending set or its drain order.
    CalendarQueue fel(256, 1e6); // absurd rate hint: forces width adaptation.
    std::vector<double> reference(256, -1.0);
    Rng rng(11);
    double clock = 0.0;
    for (int burst = 0; burst < 20; ++burst) {
        for (int i = 0; i < 200; ++i) {
            const auto id = static_cast<std::size_t>(rng.uniform_below(256));
            const double t = clock + rng.uniform(0.0, 50.0);
            fel.schedule(id, t);
            reference[id] = t;
        }
        for (int i = 0; i < 100 && !fel.empty(); ++i) {
            const CalendarQueue::Event event = fel.pop();
            EXPECT_DOUBLE_EQ(event.time, reference[event.id]);
            reference[event.id] = -1.0;
            clock = event.time;
        }
        fel.retune(); // epoch barrier.
    }
    std::vector<std::pair<double, std::size_t>> expected;
    for (std::size_t id = 0; id < reference.size(); ++id) {
        if (reference[id] >= 0.0) {
            expected.push_back({reference[id], id});
        }
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(fel.size(), expected.size());
    for (const auto& [time, id] : expected) {
        const CalendarQueue::Event event = fel.pop();
        EXPECT_DOUBLE_EQ(event.time, time);
        EXPECT_EQ(event.id, id);
    }
}

TEST(CalendarQueue, CountersTrackOperations) {
    CalendarQueue fel(4, 1.0);
    fel.schedule(0, 1.0);
    fel.schedule(1, 2.0);
    EXPECT_EQ(fel.schedules(), 2u);
    fel.pop();
    EXPECT_EQ(fel.pops(), 1u);
    EXPECT_GE(fel.bucket_scans(), 1u); // the pop's min-search probed >= 1 head.
    fel.pop_and_reschedule(1, 3.0);    // counts as one pop plus one schedule.
    EXPECT_EQ(fel.schedules(), 3u);
    EXPECT_EQ(fel.pops(), 2u);
    fel.clear(); // counters are lifetime: clear() keeps them.
    EXPECT_EQ(fel.schedules(), 3u);
    EXPECT_EQ(fel.pops(), 2u);
}

// ---------------------------------------------------------------------------
// Differential fuzz: calendar vs heap, identical operation streams
// ---------------------------------------------------------------------------

TEST(CalendarQueue, DifferentialFuzzMatchesEventQueueExactly) {
    // The determinism contract, adversarially: the same randomized stream of
    // schedule / reschedule / cancel / pop / pop_and_reschedule applied to
    // both FELs must produce the exact same observable sequence. Quantized
    // times force frequent (time, id) ties; retunes are sprinkled in.
    const std::size_t capacity = 96;
    CalendarQueue calendar(capacity, 4.0);
    EventQueue heap(capacity);
    Rng rng(1234);
    for (int op = 0; op < 20000; ++op) {
        const auto id = static_cast<std::size_t>(rng.uniform_below(capacity));
        const double coin = rng.uniform();
        // Quantized to 1/8 so distinct draws collide on exact times often.
        const double time = std::floor(rng.uniform(0.0, 64.0) * 8.0) / 8.0;
        if (coin < 0.45) {
            calendar.schedule(id, time);
            heap.schedule(id, time);
        } else if (coin < 0.55) {
            EXPECT_EQ(calendar.cancel(id), heap.cancel(id));
        } else if (coin < 0.75) {
            ASSERT_EQ(calendar.empty(), heap.empty());
            if (!heap.empty()) {
                const CalendarQueue::Event a = calendar.pop();
                const EventQueue::Event b = heap.pop();
                ASSERT_EQ(a.id, b.id) << "op " << op;
                ASSERT_EQ(a.time, b.time) << "op " << op; // bitwise.
            }
        } else if (coin < 0.85) {
            ASSERT_EQ(calendar.empty(), heap.empty());
            if (!heap.empty()) {
                const CalendarQueue::Event top = calendar.peek();
                ASSERT_EQ(top.id, heap.peek().id);
                calendar.pop_and_reschedule(top.id, top.time + time);
                heap.pop_and_reschedule(top.id, top.time + time);
            }
        } else {
            ASSERT_EQ(calendar.contains(id), heap.contains(id));
            if (heap.contains(id)) {
                ASSERT_EQ(calendar.time_of(id), heap.time_of(id));
            }
        }
        if (op % 1024 == 1023) {
            calendar.retune(); // heap needs none; contents must not change.
        }
        ASSERT_EQ(calendar.size(), heap.size());
    }
    while (!heap.empty()) {
        const CalendarQueue::Event a = calendar.pop();
        const EventQueue::Event b = heap.pop();
        ASSERT_EQ(a.id, b.id);
        ASSERT_EQ(a.time, b.time);
    }
    EXPECT_TRUE(calendar.empty());
}

// ---------------------------------------------------------------------------
// EventQueue::pop_and_reschedule (heap fast path)
// ---------------------------------------------------------------------------

TEST(EventQueuePopAndReschedule, MatchesPopPlusScheduleBitExactly) {
    // The sift-in-place fast path must leave the drain order identical to
    // the historical pop + schedule pair under the same operation stream.
    const std::size_t capacity = 48;
    EventQueue fused(capacity);
    EventQueue split(capacity);
    Rng rng(5);
    for (std::size_t id = 0; id < capacity; ++id) {
        const double t = rng.uniform(0.0, 10.0);
        fused.schedule(id, t);
        split.schedule(id, t);
    }
    for (int round = 0; round < 2000; ++round) {
        const EventQueue::Event top = fused.peek();
        ASSERT_EQ(split.peek().id, top.id);
        const double next = top.time + rng.uniform(0.0, 1.0);
        fused.pop_and_reschedule(top.id, next);
        split.schedule(split.pop().id, next);
    }
    while (!fused.empty()) {
        const EventQueue::Event a = fused.pop();
        const EventQueue::Event b = split.pop();
        ASSERT_EQ(a.id, b.id);
        ASSERT_EQ(a.time, b.time);
    }
    EXPECT_TRUE(split.empty());
}

TEST(EventQueuePopAndReschedule, ThrowsOnAbsentSlotAndWorksOffRoot) {
    EventQueue fel(4);
    EXPECT_THROW(fel.pop_and_reschedule(0, 1.0), std::logic_error);
    fel.schedule(0, 1.0);
    fel.schedule(1, 2.0);
    fel.schedule(2, 3.0);
    fel.pop_and_reschedule(1, 0.5); // non-root pending slot: sift_up path.
    EXPECT_EQ(fel.pop().id, 1u);
    EXPECT_EQ(fel.pop().id, 0u);
    EXPECT_EQ(fel.pop().id, 2u);
}

// ---------------------------------------------------------------------------
// FEL seam: kind parsing and facade counters
// ---------------------------------------------------------------------------

TEST(FutureEventList, KindNamesRoundTrip) {
    EXPECT_EQ(fel_kind_name(FelKind::Heap), "heap");
    EXPECT_EQ(fel_kind_name(FelKind::Calendar), "calendar");
    EXPECT_EQ(parse_fel_kind("heap"), FelKind::Heap);
    EXPECT_EQ(parse_fel_kind("calendar"), FelKind::Calendar);
    EXPECT_THROW(parse_fel_kind("splay"), std::invalid_argument);
}

TEST(FutureEventList, CountsOperationsOnBothKinds) {
    for (const FelKind kind : {FelKind::Heap, FelKind::Calendar}) {
        SCOPED_TRACE(fel_kind_name(kind));
        FutureEventList fel(kind, 8, 1.0);
        fel.schedule(0, 1.0);
        fel.schedule(1, 2.0);
        fel.pop();
        fel.pop_and_reschedule(1, 3.0); // one pop + one schedule.
        const FutureEventList::Stats stats = fel.stats();
        EXPECT_EQ(stats.schedules, 3u);
        EXPECT_EQ(stats.pops, 2u);
        if (kind == FelKind::Heap) {
            EXPECT_EQ(stats.bucket_scans, 0u);
        }
    }
}

// ---------------------------------------------------------------------------
// Episode-level bitwise equality: heap vs calendar on both DES backends
// ---------------------------------------------------------------------------

FiniteSystemConfig episode_config(ClientModel model, FelKind fel) {
    FiniteSystemConfig config;
    config.num_queues = 30;
    config.num_clients = 900;
    config.dt = 2.0;
    config.horizon = 25;
    config.client_model = model;
    config.track_sojourn = true;
    config.fel = fel;
    return config;
}

void expect_bit_identical(const DesEpisodeStats& a, const DesEpisodeStats& b) {
    EXPECT_EQ(a.dropped_packets, b.dropped_packets);
    EXPECT_EQ(a.accepted_packets, b.accepted_packets);
    EXPECT_EQ(a.completed_jobs, b.completed_jobs);
    EXPECT_EQ(a.total_drops_per_queue, b.total_drops_per_queue);
    EXPECT_EQ(a.discounted_return, b.discounted_return);
    EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
    EXPECT_EQ(a.server_utilization, b.server_utilization);
    EXPECT_EQ(a.mean_sojourn, b.mean_sojourn);
    EXPECT_EQ(a.sojourn_p50, b.sojourn_p50);
    EXPECT_EQ(a.sojourn_p95, b.sojourn_p95);
    EXPECT_EQ(a.sojourn_p99, b.sojourn_p99);
    ASSERT_EQ(a.drops_per_epoch.size(), b.drops_per_epoch.size());
    for (std::size_t t = 0; t < a.drops_per_epoch.size(); ++t) {
        EXPECT_EQ(a.drops_per_epoch[t], b.drops_per_epoch[t]) << "epoch " << t;
    }
}

TEST(FelEquivalence, DesSystemEpisodesAreBitIdenticalAcrossKinds) {
    // The tentpole contract: switching the FEL implementation changes cost
    // only — the episode, including every RNG draw, is bitwise unchanged.
    for (const ClientModel model :
         {ClientModel::PerClient, ClientModel::Aggregated, ClientModel::InfiniteClients}) {
        SCOPED_TRACE(static_cast<int>(model));
        const auto run = [&](FelKind kind) {
            const FiniteSystemConfig config = episode_config(model, kind);
            DesSystem system(config);
            const TupleSpace space(config.queue.num_states(), config.d);
            const FixedRulePolicy policy = make_jsq_policy(space);
            Rng rng(91);
            system.reset(rng);
            return system.run_episode(policy, rng);
        };
        expect_bit_identical(run(FelKind::Heap), run(FelKind::Calendar));
    }
}

TEST(FelEquivalence, ShardedDesEpisodesAreBitIdenticalAcrossKinds) {
    for (const ClientModel model :
         {ClientModel::PerClient, ClientModel::Aggregated, ClientModel::InfiniteClients}) {
        SCOPED_TRACE(static_cast<int>(model));
        const auto run = [&](FelKind kind) {
            FiniteSystemConfig config = episode_config(model, kind);
            config.shards = 4;
            ShardedDesSystem system(config);
            const TupleSpace space(config.queue.num_states(), config.d);
            const FixedRulePolicy policy = make_jsq_policy(space);
            Rng rng(91);
            system.reset(rng);
            return system.run_episode(policy, rng);
        };
        expect_bit_identical(run(FelKind::Heap), run(FelKind::Calendar));
    }
}

TEST(FelEquivalence, CalendarShardedEpisodesStayThreadInvariant) {
    // 1/2/8-thread invariance re-pinned with the calendar FEL selected
    // explicitly: the retune/rebuild schedule is per-shard event history,
    // never thread timing.
    const auto run = [&](std::size_t threads) {
        FiniteSystemConfig config = episode_config(ClientModel::Aggregated,
                                                   FelKind::Calendar);
        config.shards = 4;
        config.threads = threads;
        ShardedDesSystem system(config);
        const TupleSpace space(config.queue.num_states(), config.d);
        const FixedRulePolicy policy = make_jsq_policy(space);
        Rng rng(91);
        system.reset(rng);
        return system.run_episode(policy, rng);
    };
    const DesEpisodeStats one = run(1);
    const DesEpisodeStats two = run(2);
    const DesEpisodeStats eight = run(8);
    expect_bit_identical(one, two);
    expect_bit_identical(one, eight);
}

TEST(FelEquivalence, RouterEpisodesAreBitIdenticalAcrossKinds) {
    // The router path exercises the arrival-slot cancel branch (zero-mass
    // shards) and the round-robin cursor; it must honor the same contract.
    for (const RouterKind router : {RouterKind::RoundRobin, RouterKind::Jsq}) {
        SCOPED_TRACE(static_cast<int>(router));
        const auto run = [&](FelKind kind) {
            FiniteSystemConfig config = episode_config(ClientModel::Aggregated, kind);
            config.router.kind = router;
            DesSystem system(config);
            Rng rng(17);
            system.reset(rng);
            return system.run_episode(rng);
        };
        expect_bit_identical(run(FelKind::Heap), run(FelKind::Calendar));
    }
}

} // namespace
} // namespace mflb
