// Classical routers against analytic queueing oracles. A single-queue fleet
// (M = 1, constant arrival level) reduces every router to the same M/M/1/B
// queue, so the end-to-end simulated blocking / mean length / mean sojourn
// must match the mm1b_* closed forms; with a large buffer and non-exponential
// service the same reduction yields M/G/1 against Pollaczek-Khinchine; and
// the bounded-Pareto sampler is checked against its closed-form mean and CDF.
#include "core/mflb.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace mflb {
namespace {

FiniteSystemConfig single_queue(RouterKind kind, double lambda, int buffer, double dt,
                                int horizon) {
    FiniteSystemConfig config;
    config.queue = QueueParams{buffer, 1.0};
    config.arrivals = ArrivalProcess::constant(lambda);
    config.dt = dt;
    config.horizon = horizon;
    config.num_queues = 1;
    config.router.kind = kind;
    config.track_sojourn = true;
    return config;
}

struct Measured {
    double blocking = 0.0;
    double mean_length = 0.0;
    double mean_sojourn = 0.0;
};

template <class System>
Measured run_episodes(const FiniteSystemConfig& config, std::size_t episodes,
                      std::uint64_t seed) {
    const Rng root(seed);
    double dropped = 0.0;
    double offered = 0.0;
    double length = 0.0;
    double sojourn_weighted = 0.0;
    double jobs = 0.0;
    for (std::size_t i = 0; i < episodes; ++i) {
        Rng rng = root.fork(i);
        System system(config);
        system.reset(rng);
        const EpisodeStats ep = system.run_episode(rng);
        dropped += static_cast<double>(ep.dropped_packets);
        offered += static_cast<double>(ep.dropped_packets + ep.accepted_packets);
        length += ep.mean_queue_length;
        sojourn_weighted += ep.mean_sojourn * static_cast<double>(ep.completed_jobs);
        jobs += static_cast<double>(ep.completed_jobs);
    }
    Measured m;
    m.blocking = offered > 0.0 ? dropped / offered : 0.0;
    m.mean_length = length / static_cast<double>(episodes);
    m.mean_sojourn = jobs > 0.0 ? sojourn_weighted / jobs : 0.0;
    return m;
}

TEST(BaselineRouterOracles, SingleQueueMatchesMm1bOnDes) {
    // M = 1: every discipline routes every job to the one queue, which is
    // then exactly M/M/1/B at rate lambda. 24000 simulated time units per
    // router (~19000 arrivals; blocking events cluster in busy periods, so
    // the effective sample is the ~3000 regeneration cycles).
    const double lambda = 0.8;
    const int buffer = 5;
    const double p_block = mm1b_blocking_probability(lambda, 1.0, buffer);
    const double length = mm1b_mean_length(lambda, 1.0, buffer);
    const double sojourn = mm1b_mean_sojourn(lambda, 1.0, buffer);
    for (const RouterKind kind : {RouterKind::Jsq, RouterKind::Random,
                                  RouterKind::RoundRobin, RouterKind::JsqD,
                                  RouterKind::SqStale}) {
        const FiniteSystemConfig config = single_queue(kind, lambda, buffer, 4.0, 1000);
        const Measured m = run_episodes<DesSystem>(config, 6, 20240 + static_cast<int>(kind));
        EXPECT_NEAR(m.blocking, p_block, 0.015) << router_name(kind);
        EXPECT_NEAR(m.mean_length, length, 0.12) << router_name(kind);
        EXPECT_NEAR(m.mean_sojourn / sojourn, 1.0, 0.05) << router_name(kind);
    }
}

TEST(BaselineRouterOracles, SingleQueueMatchesMm1bOnFinite) {
    // Same reduction on the epoch-synchronous backend (no per-job sojourns
    // there; blocking and time-averaged length are observable).
    const double lambda = 0.8;
    const int buffer = 5;
    const FiniteSystemConfig config = single_queue(RouterKind::Jsq, lambda, buffer, 4.0, 500);
    const Measured m = run_episodes<FiniteSystem>(config, 4, 77);
    EXPECT_NEAR(m.blocking, mm1b_blocking_probability(lambda, 1.0, buffer), 0.02);
    EXPECT_NEAR(m.mean_length, mm1b_mean_length(lambda, 1.0, buffer), 0.15);
}

TEST(BaselineRouterOracles, Mg1SojournMatchesPollaczekKhinchine) {
    // Large buffer, rho = 0.6: blocking is negligible (~rho^B), so the DES
    // single queue is effectively M/G/1 and its measured mean sojourn must
    // land on E[T] = E[S] + lambda E[S^2] / (2 (1 - rho)) for laws on both
    // sides of exponential variability. The SCV-4 hyperexponential needs a
    // long run: sojourns autocorrelate within its rare giant busy periods,
    // so ~144k jobs buy roughly a 2% standard error.
    const double lambda = 0.6;
    for (const ServiceDistKind kind :
         {ServiceDistKind::Deterministic, ServiceDistKind::HyperExp}) {
        FiniteSystemConfig config = single_queue(RouterKind::Random, lambda, 60, 5.0, 8000);
        config.service.kind = kind;
        const ServiceDistribution law(config.service, config.queue.service_rate);
        const double oracle = mg1_mean_sojourn(lambda, law);
        const Measured m = run_episodes<DesSystem>(config, 6, 5 + static_cast<int>(kind));
        EXPECT_LT(m.blocking, 1e-4) << service_dist_name(kind);
        EXPECT_NEAR(m.mean_sojourn / oracle, 1.0, 0.08) << service_dist_name(kind);
    }
    // And the ordering the PK formula dictates: deterministic service halves
    // the queueing delay of exponential; hyperexponential inflates it.
    FiniteSystemConfig det = single_queue(RouterKind::Random, lambda, 60, 5.0, 800);
    det.service.kind = ServiceDistKind::Deterministic;
    FiniteSystemConfig h2 = det;
    h2.service.kind = ServiceDistKind::HyperExp;
    const double t_det = run_episodes<DesSystem>(det, 3, 9).mean_sojourn;
    const double t_h2 = run_episodes<DesSystem>(h2, 3, 9).mean_sojourn;
    EXPECT_LT(t_det, t_h2);
}

TEST(BaselineRouterOracles, BoundedParetoSamplerMatchesClosedForm) {
    // KS-style check of the inverse-CDF sampler: empirical mean against the
    // truncated-moment formula, empirical CDF against the closed form on a
    // quantile grid (n = 200k; KS critical value ~0.003, tolerance 0.01).
    ServiceConfig config;
    config.kind = ServiceDistKind::BoundedPareto;
    config.pareto_alpha = 1.5;
    config.pareto_cap = 1000.0;
    const ServiceDistribution dist(config, 1.0);
    const std::size_t n = 200000;
    Rng rng(1234);
    std::vector<double> samples(n);
    double sum = 0.0;
    for (double& s : samples) {
        s = dist.sample(rng);
        sum += s;
    }
    EXPECT_NEAR(sum / static_cast<double>(n) / dist.mean(), 1.0, 0.03);
    std::sort(samples.begin(), samples.end());
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        const double t = samples[static_cast<std::size_t>(q * static_cast<double>(n - 1))];
        EXPECT_NEAR(dist.cdf(t), q, 0.01) << "quantile " << q;
    }
}

} // namespace
} // namespace mflb
