// Tests for the training entry points: Boltzmann warm starts, the coarse
// beta search, and common-random-number CEM training.
#include "core/trainers.hpp"
#include "core/evaluator.hpp"
#include "policies/fixed.hpp"

#include <gtest/gtest.h>

namespace mflb {
namespace {

MfcConfig config_for(double dt, int horizon) {
    MfcConfig config;
    config.dt = dt;
    config.horizon = horizon;
    return config;
}

TEST(BoltzmannParams, ReproduceGreedySoftmaxRule) {
    const TupleSpace space(6, 2);
    for (const double beta : {0.0, 0.7, 3.0}) {
        const std::vector<double> params = boltzmann_initial_params(space, 2, beta);
        TabularPolicy policy(space, 2);
        policy.set_parameters(params);
        const DecisionRule expected = DecisionRule::greedy_softmax(space, beta);
        for (std::size_t s = 0; s < 2; ++s) {
            EXPECT_LT(policy.rule_for(s).max_abs_diff(expected), 1e-12) << "beta=" << beta;
        }
    }
}

TEST(BoltzmannParams, SizeMatchesPolicy) {
    const TupleSpace space(4, 3);
    const std::vector<double> params = boltzmann_initial_params(space, 3, 1.0);
    const TabularPolicy policy(space, 3);
    EXPECT_EQ(params.size(), policy.parameter_count());
}

TEST(BestBeta, GreedyWinsAtSmallDelayUniformAtLarge) {
    // The central crossover property: the optimal greediness decreases in dt.
    const std::vector<double> betas{0.0, 1.0, 16.0};
    const double beta_fresh = best_boltzmann_beta(config_for(1.0, 100), betas, 4, 3);
    const double beta_stale = best_boltzmann_beta(config_for(10.0, 30), betas, 4, 3);
    EXPECT_GE(beta_fresh, 16.0);
    EXPECT_LE(beta_stale, 1.0);
    EXPECT_GT(beta_fresh, beta_stale);
}

TEST(BestBeta, RejectsEmptyGrid) {
    EXPECT_THROW(best_boltzmann_beta(config_for(1.0, 10), {}, 1, 1), std::invalid_argument);
}

TEST(CemTraining, CommonRandomNumbersIsDeterministic) {
    const MfcConfig config = config_for(5.0, 15);
    rl::CemConfig cem;
    cem.population = 12;
    cem.elites = 3;
    cem.generations = 4;
    const CemTrainingResult a = train_tabular_cem(config, cem, 2, 99);
    const CemTrainingResult b = train_tabular_cem(config, cem, 2, 99);
    EXPECT_DOUBLE_EQ(a.best_return, b.best_return);
    for (std::size_t s = 0; s < 2; ++s) {
        EXPECT_LT(a.policy.rule_for(s).max_abs_diff(b.policy.rule_for(s)), 1e-15);
    }
}

TEST(CemTraining, WarmStartAtLeastAsGoodAsItsInit) {
    // Starting from the best Boltzmann rule, CEM must return a policy no
    // worse than that rule on the (deterministic, conditioned) objective.
    const MfcConfig config = config_for(5.0, 20);
    const TupleSpace space(config.queue.num_states(), config.d);
    const std::vector<double> betas{0.0, 0.5, 1.0, 2.0, 4.0};
    const double beta = best_boltzmann_beta(config, betas, 3, 7);
    const std::vector<double> warm = boltzmann_initial_params(space, 2, beta);

    rl::CemConfig cem;
    cem.population = 16;
    cem.elites = 4;
    cem.generations = 8;
    const CemTrainingResult trained = train_tabular_cem(
        config, cem, 3, 7, RuleParameterization::Logits, true, &warm);

    const EvaluationResult learned = evaluate_mfc(config, trained.policy, 30, 21);
    const EvaluationResult init =
        evaluate_mfc(config, make_greedy_softmax_policy(space, beta), 30, 21);
    EXPECT_LE(learned.total_drops.mean,
              init.total_drops.mean + init.total_drops.half_width + 0.2);
}

TEST(CemTraining, NonCrnPathStillWorks) {
    const MfcConfig config = config_for(5.0, 10);
    rl::CemConfig cem;
    cem.population = 8;
    cem.elites = 2;
    cem.generations = 3;
    const CemTrainingResult result = train_tabular_cem(
        config, cem, 1, 5, RuleParameterization::Logits, /*common_random_numbers=*/false);
    EXPECT_EQ(result.history.size(), 3u);
    EXPECT_LE(result.best_return, 0.0);
}

} // namespace
} // namespace mflb
