// Cross-validation of the three exponential-propagation methods: Padé
// scaling-and-squaring, uniformization, and an RK4 ODE oracle.
#include "math/expm.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

/// Birth-death transposed generator (columns sum to zero) extended with a
/// drop-accounting row, exactly as the mean-field discretizer builds it.
Matrix birth_death_extended(double arrival, double service, int buffer) {
    const auto n = static_cast<std::size_t>(buffer + 2);
    Matrix q(n, n);
    for (int i = 1; i <= buffer; ++i) {
        q(static_cast<std::size_t>(i), static_cast<std::size_t>(i - 1)) = arrival;
        q(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(i)) = service;
    }
    for (int i = 0; i <= buffer; ++i) {
        double out = 0.0;
        if (i < buffer) {
            out += arrival;
        }
        if (i > 0) {
            out += service;
        }
        q(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = -out;
    }
    q(static_cast<std::size_t>(buffer + 1), static_cast<std::size_t>(buffer)) = arrival;
    return q;
}

TEST(Expm, ZeroMatrixGivesIdentity) {
    const Matrix z(4, 4);
    const Matrix e = expm(z);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_NEAR(e(i, j), i == j ? 1.0 : 0.0, 1e-14);
        }
    }
}

TEST(Expm, DiagonalMatrix) {
    const std::vector<double> d{-1.0, 0.5, 2.0};
    const Matrix e = expm(Matrix::diagonal(d));
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(e(i, i), std::exp(d[i]), 1e-12);
    }
    EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentMatrixClosedForm) {
    // exp([[0,1],[0,0]]) = [[1,1],[0,1]]
    const Matrix n{{0.0, 1.0}, {0.0, 0.0}};
    const Matrix e = expm(n);
    EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
    EXPECT_NEAR(e(0, 1), 1.0, 1e-14);
    EXPECT_NEAR(e(1, 0), 0.0, 1e-14);
    EXPECT_NEAR(e(1, 1), 1.0, 1e-14);
}

TEST(Expm, RotationMatrixClosedForm) {
    // exp(theta * [[0,-1],[1,0]]) = rotation by theta.
    const double theta = 0.7;
    const Matrix g{{0.0, -theta}, {theta, 0.0}};
    const Matrix e = expm(g);
    EXPECT_NEAR(e(0, 0), std::cos(theta), 1e-12);
    EXPECT_NEAR(e(0, 1), -std::sin(theta), 1e-12);
    EXPECT_NEAR(e(1, 0), std::sin(theta), 1e-12);
}

TEST(Expm, LargeNormTriggersScalingAndStaysAccurate) {
    // exp(a) for a = 30 * rotation generator: still a rotation.
    const double theta = 30.0;
    const Matrix g{{0.0, -theta}, {theta, 0.0}};
    const Matrix e = expm(g);
    EXPECT_NEAR(e(0, 0), std::cos(theta), 1e-9);
    EXPECT_NEAR(e(1, 0), std::sin(theta), 1e-9);
}

TEST(Expm, SemigroupProperty) {
    const Matrix a{{-0.5, 0.2, 0.1}, {0.3, -0.7, 0.0}, {0.2, 0.5, -0.1}};
    const Matrix e1 = expm(a);
    const Matrix e2 = expm(a * 2.0);
    const Matrix e1sq = e1 * e1;
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_NEAR(e2(i, j), e1sq(i, j), 1e-12);
        }
    }
}

TEST(Expm, ThrowsOnNonSquare) {
    EXPECT_THROW(expm(Matrix(2, 3)), std::invalid_argument);
}

TEST(Uniformization, MatchesPadeOnGeneratorAction) {
    const Matrix q = birth_death_extended(0.9, 1.0, 5);
    const double dt = 5.0;
    std::vector<double> e0(q.rows(), 0.0);
    e0[0] = 1.0;
    const auto via_uniform = expm_uniformized_action(q, dt, e0);
    const Matrix big = expm(q * dt);
    const auto via_pade = big.multiply(e0);
    ASSERT_EQ(via_uniform.size(), via_pade.size());
    for (std::size_t i = 0; i < via_uniform.size(); ++i) {
        EXPECT_NEAR(via_uniform[i], via_pade[i], 1e-10);
    }
}

TEST(Uniformization, ZeroTimeIsIdentity) {
    const Matrix q = birth_death_extended(1.0, 1.0, 3);
    std::vector<double> v(q.rows(), 0.0);
    v[2] = 1.0;
    const auto out = expm_uniformized_action(q, 0.0, v);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(Uniformization, ProbabilityBlockStaysNonNegativeAndNormalized) {
    const Matrix q = birth_death_extended(2.0, 0.5, 4);
    std::vector<double> e0(q.rows(), 0.0);
    e0[1] = 1.0;
    const auto out = expm_uniformized_action(q, 10.0, e0);
    double sum = 0.0;
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
        EXPECT_GE(out[i], -1e-12);
        sum += out[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GE(out.back(), 0.0); // accumulated drops are non-negative
}

TEST(Uniformization, RejectsBadInput) {
    const Matrix q = birth_death_extended(1.0, 1.0, 2);
    std::vector<double> wrong(2, 0.0);
    EXPECT_THROW(expm_uniformized_action(q, 1.0, wrong), std::invalid_argument);
    std::vector<double> v(q.rows(), 0.0);
    EXPECT_THROW(expm_uniformized_action(q, -1.0, v), std::invalid_argument);
}

TEST(Rk4Oracle, AgreesWithExpmOnSmoothProblem) {
    const Matrix a{{-1.0, 0.3}, {0.2, -0.6}};
    const std::vector<double> v{0.7, 0.3};
    const auto via_rk4 = integrate_linear_ode_rk4(a, 2.0, v, 2000);
    const auto via_expm = expm(a * 2.0).multiply(v);
    EXPECT_NEAR(via_rk4[0], via_expm[0], 1e-9);
    EXPECT_NEAR(via_rk4[1], via_expm[1], 1e-9);
}

// Property sweep over arrival/service/dt: the three methods agree on the
// exact master-equation solution used by the discretizer.
struct ExpmCase {
    double arrival;
    double service;
    double dt;
    int buffer;
    int start;
};

class ExpmAgreement : public ::testing::TestWithParam<ExpmCase> {};

TEST_P(ExpmAgreement, AllThreeMethodsAgree) {
    const ExpmCase c = GetParam();
    const Matrix q = birth_death_extended(c.arrival, c.service, c.buffer);
    std::vector<double> e0(q.rows(), 0.0);
    e0[static_cast<std::size_t>(c.start)] = 1.0;

    const auto uniformized = expm_uniformized_action(q, c.dt, e0);
    const auto pade = expm(q * c.dt).multiply(e0);
    const auto rk4 = integrate_linear_ode_rk4(q, c.dt, e0, 4000);
    for (std::size_t i = 0; i < e0.size(); ++i) {
        EXPECT_NEAR(uniformized[i], pade[i], 1e-9) << "i=" << i;
        EXPECT_NEAR(uniformized[i], rk4[i], 1e-6) << "i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExpmAgreement,
    ::testing::Values(ExpmCase{0.6, 1.0, 1.0, 5, 0}, ExpmCase{0.9, 1.0, 5.0, 5, 0},
                      ExpmCase{0.9, 1.0, 10.0, 5, 5}, ExpmCase{1.8, 1.0, 3.0, 5, 2},
                      ExpmCase{0.1, 2.0, 7.0, 3, 3}, ExpmCase{3.0, 0.5, 2.0, 8, 4}));

} // namespace
} // namespace mflb
