// Tests for the dense matrix type and the LU linear solver.
#include "math/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

TEST(Matrix, ConstructionAndAccess) {
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
    EXPECT_THROW(m.at(2, 0), std::out_of_range);
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
    const Matrix eye = Matrix::identity(3);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
        }
    }
    const std::vector<double> d{1.0, 2.0, 3.0};
    const Matrix diag = Matrix::diagonal(d);
    EXPECT_DOUBLE_EQ(diag(1, 1), 2.0);
    EXPECT_DOUBLE_EQ(diag(0, 1), 0.0);
}

TEST(Matrix, ArithmeticOperations) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    const Matrix sum = a + b;
    EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
    const Matrix diff = b - a;
    EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
    const Matrix scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
    EXPECT_THROW(a + Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, ProductAgainstKnownResult) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
    EXPECT_THROW(a * Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
    const Matrix a{{1.5, -2.0, 0.25}, {0.0, 3.0, 1.0}, {4.0, 0.5, -1.0}};
    const Matrix eye = Matrix::identity(3);
    EXPECT_TRUE(a * eye == a);
    EXPECT_TRUE(eye * a == a);
}

TEST(Matrix, TransposeInvolution) {
    const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Matrix at = a.transposed();
    EXPECT_EQ(at.rows(), 3u);
    EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
    EXPECT_TRUE(at.transposed() == a);
}

TEST(Matrix, VectorProducts) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const std::vector<double> x{1.0, -1.0};
    const auto y = a.multiply(x);
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
    const auto z = a.multiply_left(x);
    EXPECT_DOUBLE_EQ(z[0], -2.0);
    EXPECT_DOUBLE_EQ(z[1], -2.0);
}

TEST(Matrix, Norms) {
    const Matrix a{{1.0, -2.0}, {-3.0, 4.0}};
    EXPECT_DOUBLE_EQ(a.norm_inf(), 7.0); // row 1: 3+4
    EXPECT_DOUBLE_EQ(a.norm_1(), 6.0);   // col 1: 2+4
    EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(SolveLinear, RecoversKnownSolution) {
    const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    const std::vector<double> b{5.0, 10.0};
    const auto x = solve_linear(a, b);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, MatrixRhsSolvesColumnwise) {
    const Matrix a{{4.0, 1.0}, {2.0, 3.0}};
    const Matrix b = Matrix::identity(2);
    const Matrix inverse = solve_linear(a, b);
    const Matrix check = a * inverse;
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            EXPECT_NEAR(check(i, j), i == j ? 1.0 : 0.0, 1e-12);
        }
    }
}

TEST(SolveLinear, PivotingHandlesZeroDiagonal) {
    const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    const std::vector<double> b{2.0, 3.0};
    const auto x = solve_linear(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, ThrowsOnSingular) {
    const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    const std::vector<double> b{1.0, 2.0};
    EXPECT_THROW(solve_linear(a, b), std::invalid_argument);
}

// Property sweep: A * solve(A, b) == b for random well-conditioned systems.
class SolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolveProperty, ResidualIsTiny) {
    const int n = GetParam();
    std::uint64_t seed = static_cast<std::uint64_t>(n) * 7919;
    auto next_uniform = [&seed]() {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<double>(seed >> 11) * 0x1.0p-53 - 0.5;
    };
    Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            a(i, j) = next_uniform();
        }
        a(i, i) += static_cast<double>(n); // diagonal dominance
    }
    std::vector<double> b(static_cast<std::size_t>(n));
    for (double& v : b) {
        v = next_uniform();
    }
    const auto x = solve_linear(a, b);
    const auto back = a.multiply(x);
    for (std::size_t i = 0; i < b.size(); ++i) {
        EXPECT_NEAR(back[i], b[i], 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveProperty, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

} // namespace
} // namespace mflb
