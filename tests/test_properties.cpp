// Cross-module property sweeps: randomized invariants that tie the whole
// pipeline together. Each TEST_P instance draws seeded-random configurations
// and checks conservation laws that must hold for *every* policy and state,
// not just the curated cases of the per-module tests.
#include "core/mflb.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mflb {
namespace {

/// Deterministic random distribution over n bins from a seed.
std::vector<double> random_distribution(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> weights(n);
    for (double& w : weights) {
        w = rng.uniform() + 1e-4;
    }
    return normalized(weights);
}

/// Deterministic random decision rule from a seed.
DecisionRule random_rule(const TupleSpace& space, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> logits(space.size() * static_cast<std::size_t>(space.d()));
    for (double& l : logits) {
        l = rng.normal() * 2.0;
    }
    return DecisionRule::from_logits(space, logits);
}

// ---------------------------------------------------------------------------
// Routing-flow conservation for arbitrary rules and distributions, d = 2, 3.

struct FlowCase {
    int d;
    std::uint64_t seed;
    double lambda;
};

class FlowConservation : public ::testing::TestWithParam<FlowCase> {};

TEST_P(FlowConservation, PacketsNeitherCreatedNorLost) {
    const auto [d, seed, lambda] = GetParam();
    const TupleSpace space(6, d);
    const std::vector<double> nu = random_distribution(6, seed);
    const DecisionRule h = random_rule(space, seed + 1);
    const ArrivalFlow flow = compute_arrival_flow(nu, h, lambda);

    const double total =
        std::accumulate(flow.inflow_by_state.begin(), flow.inflow_by_state.end(), 0.0);
    EXPECT_NEAR(total, lambda, 1e-10);
    // Per-queue rates reassemble the total: Σ_z ν(z)·λ(z) = λ.
    double reassembled = 0.0;
    for (std::size_t z = 0; z < nu.size(); ++z) {
        reassembled += nu[z] * flow.rate_by_state[z];
    }
    EXPECT_NEAR(reassembled, lambda, 1e-10);
    // The Theorem-1 bound λ(z) ≤ d·λ.
    for (double rate : flow.rate_by_state) {
        EXPECT_LE(rate, d * lambda + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Random, FlowConservation,
                         ::testing::Values(FlowCase{2, 10, 0.9}, FlowCase{2, 20, 0.6},
                                           FlowCase{2, 30, 1.5}, FlowCase{3, 40, 0.9},
                                           FlowCase{3, 50, 0.3}, FlowCase{3, 60, 2.0}));

// ---------------------------------------------------------------------------
// The exact discretizer preserves probability and never over-drops, for
// arbitrary rules, loads, delays.

struct StepPropertyCase {
    double dt;
    double lambda;
    std::uint64_t seed;
};

class DiscretizerInvariants : public ::testing::TestWithParam<StepPropertyCase> {};

TEST_P(DiscretizerInvariants, SimplexAndDropBounds) {
    const auto [dt, lambda, seed] = GetParam();
    const ExactDiscretization disc({5, 1.0}, dt);
    const TupleSpace space(6, 2);
    std::vector<double> nu = random_distribution(6, seed);
    const DecisionRule h = random_rule(space, seed + 7);
    for (int t = 0; t < 8; ++t) {
        const MeanFieldStep step = disc.step(nu, h, lambda);
        ASSERT_TRUE(is_probability_vector(step.nu_next, 1e-8));
        ASSERT_GE(step.expected_drops, -1e-12);
        // Cannot drop more than the entire offered traffic λ·dt per queue
        // scaled by the worst-case rate concentration d·λ.
        ASSERT_LE(step.expected_drops, 2.0 * lambda * dt + 1e-9);
        nu = step.nu_next;
    }
}

INSTANTIATE_TEST_SUITE_P(Random, DiscretizerInvariants,
                         ::testing::Values(StepPropertyCase{1.0, 0.9, 1},
                                           StepPropertyCase{2.5, 0.6, 2},
                                           StepPropertyCase{5.0, 0.9, 3},
                                           StepPropertyCase{5.0, 2.0, 4},
                                           StepPropertyCase{10.0, 0.9, 5},
                                           StepPropertyCase{10.0, 0.1, 6}));

// ---------------------------------------------------------------------------
// Finite-system rate conservation holds for every client model and random
// rule: Σ_j λ^j = M·λ exactly.

struct RateCase {
    ClientModel model;
    std::uint64_t seed;
};

class FiniteRateConservation : public ::testing::TestWithParam<RateCase> {};

TEST_P(FiniteRateConservation, TotalRateIsMLambda) {
    const auto [model, seed] = GetParam();
    FiniteSystemConfig config;
    config.num_queues = 40;
    config.num_clients = 1600;
    config.dt = 3.0;
    config.horizon = 6;
    config.client_model = model;
    FiniteSystem system(config);
    Rng rng(seed);
    system.reset(rng);
    const DecisionRule h = random_rule(system.tuple_space(), seed + 3);
    // Scatter states first.
    for (int t = 0; t < 3; ++t) {
        system.step_with_rule(h, rng);
    }
    const auto rates = system.compute_queue_rates(h, rng);
    const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
    EXPECT_NEAR(total, 40.0 * system.lambda_value(), 1e-9);
    for (double r : rates) {
        EXPECT_GE(r, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Models, FiniteRateConservation,
                         ::testing::Values(RateCase{ClientModel::PerClient, 11},
                                           RateCase{ClientModel::PerClient, 12},
                                           RateCase{ClientModel::Aggregated, 13},
                                           RateCase{ClientModel::Aggregated, 14},
                                           RateCase{ClientModel::InfiniteClients, 15},
                                           RateCase{ClientModel::InfiniteClients, 16}));

// ---------------------------------------------------------------------------
// Upper-level policy implementations always emit valid rules on random
// observations.

class PolicyValidity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyValidity, AllPoliciesEmitRowStochasticRules) {
    const std::uint64_t seed = GetParam();
    const TupleSpace space(6, 2);
    const std::vector<double> nu = random_distribution(6, seed);
    Rng rng(seed);

    std::vector<const UpperLevelPolicy*> policies;
    const FixedRulePolicy jsq = make_jsq_policy(space);
    const FixedRulePolicy rnd = make_rnd_policy(space);
    const FixedRulePolicy soft = make_greedy_softmax_policy(space, 1.3);
    TabularPolicy tabular(space, 2);
    std::vector<double> params(tabular.parameter_count());
    for (double& p : params) {
        p = rng.normal();
    }
    tabular.set_parameters(params);
    auto net = std::make_shared<rl::GaussianPolicy>(8, 72, std::vector<std::size_t>{16}, rng);
    const NeuralUpperPolicy neural(space, 2, net);
    policies = {&jsq, &rnd, &soft, &tabular, &neural};

    for (const UpperLevelPolicy* policy : policies) {
        for (std::size_t l = 0; l < 2; ++l) {
            const DecisionRule rule = policy->decide(nu, l, rng);
            EXPECT_TRUE(rule.is_valid(1e-9)) << policy->name() << " lambda=" << l;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyValidity, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// The heterogeneous model with one class must equal the homogeneous model
// on random inputs (stronger than the single curated case).

class HeteroReduction : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeteroReduction, SingleClassMatchesHomogeneous) {
    const std::uint64_t seed = GetParam();
    const ClassStateSpace hetero_space({{1.0, 1.0}}, 5);
    const HeteroDiscretization hetero(hetero_space, 4.0);
    const ExactDiscretization homo({5, 1.0}, 4.0);
    const TupleSpace space(6, 2);
    const std::vector<double> nu = random_distribution(6, seed);
    const DecisionRule h = random_rule(space, seed + 9);
    const MeanFieldStep a = hetero.step(nu, h, 0.85);
    const MeanFieldStep b = homo.step(nu, h, 0.85);
    for (std::size_t z = 0; z < 6; ++z) {
        EXPECT_NEAR(a.nu_next[z], b.nu_next[z], 1e-12);
    }
    EXPECT_NEAR(a.expected_drops, b.expected_drops, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeteroReduction, ::testing::Values(21u, 22u, 23u, 24u));

// ---------------------------------------------------------------------------
// Simplex-grid projection is a contraction onto the lattice: projecting any
// valid distribution twice equals projecting once, and the projected point
// is within lattice spacing in l1.

class GridProjection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridProjection, IdempotentAndClose) {
    const std::uint64_t seed = GetParam();
    const SimplexGrid grid(6, 8);
    const std::vector<double> nu = random_distribution(6, seed);
    const std::size_t idx = grid.project(nu);
    const std::span<const double> snapped = grid.point(idx);
    EXPECT_EQ(grid.project(snapped), idx);
    EXPECT_LT(l1_distance(nu, snapped), 6.0 / 8.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridProjection, ::testing::Values(31u, 32u, 33u, 34u, 35u));

} // namespace
} // namespace mflb
