// Determinism and equivalence pins for the parallel training pipeline:
//  - PPO losses/returns/parameters are bit-identical for fixed
//    (seed, num_envs) at 1, 2, and 8 worker threads (rollout fan-out +
//    fixed-order merge + batched update);
//  - the batched GEMM update reproduces the legacy per-sample update
//    bit-for-bit;
//  - CEM population evaluation is thread-count-invariant;
//  - evaluate() runs on a dedicated env/stream and never perturbs the
//    training trajectory (regression for the legacy in-flight-episode
//    discard at ppo.cpp:199).
#include "rl/cem.hpp"
#include "rl/ppo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace mflb::rl {
namespace {

/// Stochastic contextual env: the optimal action tracks a random state and
/// both reset() and step() consume rng draws, so every rollout slot's
/// trajectory depends on its stream — exactly what the determinism contract
/// must survive.
class NoisyContextualEnv final : public Env {
public:
    std::size_t observation_dim() const override { return 2; }
    std::size_t action_dim() const override { return 1; }

    std::vector<double> reset(Rng& rng) override {
        t_ = 0;
        state_ = rng.uniform();
        return {state_, 1.0 - state_};
    }

    StepResult step(std::span<const double> action, Rng& rng) override {
        const double target = state_ > 0.5 ? 1.0 : -1.0;
        StepResult r;
        r.reward = -(action[0] - target) * (action[0] - target) + 0.1 * rng.normal();
        ++t_;
        r.done = t_ >= 5;
        state_ = rng.uniform();
        r.observation = {state_, 1.0 - state_};
        return r;
    }

private:
    int t_ = 0;
    double state_ = 0.0;
};

PpoTrainer::EnvFactory make_factory() {
    return [] { return std::make_unique<NoisyContextualEnv>(); };
}

PpoConfig small_config(std::size_t num_envs, std::size_t train_threads,
                       bool batched_update = true) {
    PpoConfig config;
    config.hidden = {16, 16};
    config.train_batch_size = 240;
    config.minibatch_size = 60;
    config.num_epochs = 3;
    config.learning_rate = 1e-3;
    config.num_envs = num_envs;
    config.train_threads = train_threads;
    config.batched_update = batched_update;
    return config;
}

struct RunResult {
    std::vector<PpoIterationStats> history;
    std::vector<double> policy_params;
    std::vector<double> value_params;
};

RunResult run_ppo(const PpoConfig& config, std::uint64_t seed, std::size_t iterations,
                  bool evaluate_between = false) {
    PpoTrainer trainer(make_factory(), config, Rng(seed));
    RunResult result;
    for (std::size_t i = 0; i < iterations; ++i) {
        trainer.train_iteration();
        if (evaluate_between) {
            (void)trainer.evaluate(3);
        }
    }
    result.history = trainer.history();
    const auto p = trainer.policy().network().parameters();
    result.policy_params.assign(p.begin(), p.end());
    const auto v = trainer.value_network().parameters();
    result.value_params.assign(v.begin(), v.end());
    return result;
}

void expect_bit_identical(const RunResult& a, const RunResult& b, const char* what) {
    ASSERT_EQ(a.history.size(), b.history.size()) << what;
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        const PpoIterationStats& x = a.history[i];
        const PpoIterationStats& y = b.history[i];
        EXPECT_EQ(x.timesteps_total, y.timesteps_total) << what << " iter " << i;
        EXPECT_EQ(x.episodes_completed, y.episodes_completed) << what << " iter " << i;
        EXPECT_DOUBLE_EQ(x.mean_episode_return, y.mean_episode_return) << what << " iter " << i;
        EXPECT_DOUBLE_EQ(x.mean_kl, y.mean_kl) << what << " iter " << i;
        EXPECT_DOUBLE_EQ(x.policy_loss, y.policy_loss) << what << " iter " << i;
        EXPECT_DOUBLE_EQ(x.value_loss, y.value_loss) << what << " iter " << i;
        EXPECT_DOUBLE_EQ(x.entropy, y.entropy) << what << " iter " << i;
        EXPECT_DOUBLE_EQ(x.kl_coeff, y.kl_coeff) << what << " iter " << i;
    }
    ASSERT_EQ(a.policy_params.size(), b.policy_params.size());
    for (std::size_t i = 0; i < a.policy_params.size(); ++i) {
        ASSERT_DOUBLE_EQ(a.policy_params[i], b.policy_params[i])
            << what << " policy param " << i;
    }
    ASSERT_EQ(a.value_params.size(), b.value_params.size());
    for (std::size_t i = 0; i < a.value_params.size(); ++i) {
        ASSERT_DOUBLE_EQ(a.value_params[i], b.value_params[i]) << what << " value param " << i;
    }
}

TEST(PpoParallel, BitIdenticalAcrossThreadCounts) {
    // The (seed, K) pair fixes the result; the worker-thread count must not.
    for (const std::size_t num_envs : {2u, 4u}) {
        const RunResult t1 = run_ppo(small_config(num_envs, 1), 99, 3);
        const RunResult t2 = run_ppo(small_config(num_envs, 2), 99, 3);
        const RunResult t8 = run_ppo(small_config(num_envs, 8), 99, 3);
        expect_bit_identical(t1, t2, "threads 1 vs 2");
        expect_bit_identical(t1, t8, "threads 1 vs 8");
    }
}

TEST(PpoParallel, RepeatedRunsAreDeterministic) {
    const RunResult a = run_ppo(small_config(4, 0), 7, 2);
    const RunResult b = run_ppo(small_config(4, 0), 7, 2);
    expect_bit_identical(a, b, "same (seed, K)");
}

TEST(PpoParallel, NumEnvsIsPartOfTheSeedContract) {
    // Different K means different forked streams, hence different (but each
    // individually deterministic) trajectories.
    const RunResult k1 = run_ppo(small_config(1, 1), 7, 1);
    const RunResult k4 = run_ppo(small_config(4, 1), 7, 1);
    EXPECT_NE(k1.history.back().mean_episode_return, k4.history.back().mean_episode_return);
}

TEST(PpoParallel, BatchedUpdateMatchesScalar) {
    // The GEMM kernels accumulate in the scalar path's addition order; the
    // only permitted divergence is FMA contraction (one rounding per
    // multiply-add term instead of two on FMA hardware), so one full update
    // from an identical collected batch agrees far tighter than 1e-12.
    for (const std::size_t num_envs : {1u, 3u}) {
        PpoTrainer batched(make_factory(), small_config(num_envs, 1, true), Rng(42));
        PpoTrainer scalar(make_factory(), small_config(num_envs, 1, false), Rng(42));
        PpoIterationStats batched_stats;
        PpoIterationStats scalar_stats;
        batched.collect_phase(batched_stats);
        scalar.collect_phase(scalar_stats);
        // Collection runs the per-sample path in both trainers: identical.
        ASSERT_EQ(batched_stats.timesteps_total, scalar_stats.timesteps_total);
        ASSERT_DOUBLE_EQ(batched_stats.mean_episode_return, scalar_stats.mean_episode_return);
        batched.optimize_phase(batched_stats);
        scalar.optimize_phase(scalar_stats);
        const auto tol = [](double reference) {
            return 1e-12 * std::max(1.0, std::abs(reference));
        };
        EXPECT_NEAR(batched_stats.policy_loss, scalar_stats.policy_loss,
                    tol(scalar_stats.policy_loss));
        EXPECT_NEAR(batched_stats.value_loss, scalar_stats.value_loss,
                    tol(scalar_stats.value_loss));
        EXPECT_NEAR(batched_stats.entropy, scalar_stats.entropy, tol(scalar_stats.entropy));
        EXPECT_NEAR(batched_stats.mean_kl, scalar_stats.mean_kl, tol(scalar_stats.mean_kl));
        EXPECT_DOUBLE_EQ(batched_stats.kl_coeff, scalar_stats.kl_coeff);
        const auto pb = batched.policy().network().parameters();
        const auto ps = scalar.policy().network().parameters();
        ASSERT_EQ(pb.size(), ps.size());
        for (std::size_t i = 0; i < pb.size(); ++i) {
            ASSERT_NEAR(pb[i], ps[i], 1e-10) << "policy param " << i;
        }
        const auto vb = batched.value_network().parameters();
        const auto vs = scalar.value_network().parameters();
        for (std::size_t i = 0; i < vb.size(); ++i) {
            ASSERT_NEAR(vb[i], vs[i], 1e-10) << "value param " << i;
        }
    }
}

TEST(PpoParallel, EvaluateDoesNotPerturbTraining) {
    // Regression for the legacy trainer discarding the in-flight collection
    // episode on evaluate(): interleaved evaluations must leave the training
    // trajectory bit-identical, for both single- and multi-env trainers.
    for (const std::size_t num_envs : {1u, 4u}) {
        const RunResult plain = run_ppo(small_config(num_envs, 1), 1234, 3, false);
        const RunResult interleaved = run_ppo(small_config(num_envs, 1), 1234, 3, true);
        expect_bit_identical(plain, interleaved, "evaluate interleaving");
    }
}

TEST(PpoParallel, EvaluateIsDeterministicAndFinite) {
    PpoTrainer trainer(make_factory(), small_config(2, 0), Rng(5));
    const double a = trainer.evaluate(4);
    EXPECT_TRUE(std::isfinite(a));
    PpoTrainer clone(make_factory(), small_config(2, 0), Rng(5));
    EXPECT_DOUBLE_EQ(a, clone.evaluate(4));
}

TEST(CemParallel, BitIdenticalAcrossThreadCounts) {
    const auto objective = [](std::span<const double> x, Rng& rng) {
        double loss = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            loss += (x[i] - 1.0) * (x[i] - 1.0);
        }
        return -loss + 0.05 * rng.normal();
    };
    auto run = [&](std::size_t threads) {
        CemConfig config;
        config.population = 16;
        config.elites = 4;
        config.generations = 6;
        config.threads = threads;
        Rng rng(2024);
        const std::vector<double> x0(3, 0.0);
        return cem_maximize(objective, x0, config, rng);
    };
    const CemResult t1 = run(1);
    const CemResult t2 = run(2);
    const CemResult t8 = run(8);
    EXPECT_DOUBLE_EQ(t1.best_score, t2.best_score);
    EXPECT_DOUBLE_EQ(t1.best_score, t8.best_score);
    for (std::size_t i = 0; i < t1.best_parameters.size(); ++i) {
        EXPECT_DOUBLE_EQ(t1.best_parameters[i], t2.best_parameters[i]);
        EXPECT_DOUBLE_EQ(t1.best_parameters[i], t8.best_parameters[i]);
    }
    ASSERT_EQ(t1.history.size(), t8.history.size());
    for (std::size_t g = 0; g < t1.history.size(); ++g) {
        EXPECT_DOUBLE_EQ(t1.history[g].best_score, t8.history[g].best_score);
        EXPECT_DOUBLE_EQ(t1.history[g].population_mean_score,
                         t8.history[g].population_mean_score);
    }
}

} // namespace
} // namespace mflb::rl
