// Tests for the upper-level MFC MDP (eqs. 29-31).
#include "field/mfc_env.hpp"
#include "math/simplex.hpp"
#include "policies/fixed.hpp"

#include <gtest/gtest.h>

namespace mflb {
namespace {

MfcConfig small_config(double dt = 5.0, int horizon = 20) {
    MfcConfig config;
    config.dt = dt;
    config.horizon = horizon;
    return config;
}

TEST(MfcEnv, DefaultInitialDistributionIsAllEmpty) {
    MfcEnv env(small_config());
    Rng rng(1);
    env.reset(rng);
    EXPECT_DOUBLE_EQ(env.nu()[0], 1.0);
    for (std::size_t z = 1; z < env.nu().size(); ++z) {
        EXPECT_DOUBLE_EQ(env.nu()[z], 0.0);
    }
    EXPECT_EQ(env.time(), 0);
    EXPECT_FALSE(env.done());
}

TEST(MfcEnv, ObservationLayout) {
    MfcEnv env(small_config());
    Rng rng(2);
    env.reset(rng);
    const auto obs = env.observation();
    ASSERT_EQ(obs.size(), env.observation_dim());
    ASSERT_EQ(obs.size(), 6u + 2u);
    // One-hot lambda tail.
    const double tail = obs[6] + obs[7];
    EXPECT_DOUBLE_EQ(tail, 1.0);
    EXPECT_TRUE(obs[6] == 1.0 || obs[7] == 1.0);
}

TEST(MfcEnv, EpisodeTerminatesAtHorizon) {
    MfcEnv env(small_config(5.0, 7));
    Rng rng(3);
    env.reset(rng);
    const DecisionRule h = DecisionRule::mf_rnd(env.tuple_space());
    int steps = 0;
    while (!env.done()) {
        const auto outcome = env.step(h, rng);
        ++steps;
        EXPECT_EQ(outcome.done, env.done());
    }
    EXPECT_EQ(steps, 7);
    EXPECT_THROW(env.step(h, rng), std::logic_error);
}

TEST(MfcEnv, RewardIsNegativeDrops) {
    MfcEnv env(small_config());
    Rng rng(4);
    env.reset(rng);
    const DecisionRule h = DecisionRule::mf_rnd(env.tuple_space());
    for (int t = 0; t < 10; ++t) {
        const auto outcome = env.step(h, rng);
        EXPECT_DOUBLE_EQ(outcome.reward, -outcome.drops);
        EXPECT_GE(outcome.drops, 0.0);
    }
}

TEST(MfcEnv, NuStaysOnSimplexUnderRandomPolicies) {
    MfcEnv env(small_config(10.0, 30));
    Rng rng(5);
    env.reset(rng);
    std::vector<double> logits(env.tuple_space().size() * 2);
    while (!env.done()) {
        for (double& l : logits) {
            l = rng.normal();
        }
        const DecisionRule h = DecisionRule::from_logits(env.tuple_space(), logits);
        env.step(h, rng);
        EXPECT_TRUE(is_probability_vector(env.nu(), 1e-8));
    }
}

TEST(MfcEnv, ConditionedLambdaSequenceIsDeterministic) {
    MfcConfig config = small_config(5.0, 5);
    const std::vector<std::size_t> path{0, 1, 1, 0, 1};
    MfcEnv env_a(config);
    MfcEnv env_b(config);
    env_a.reset_conditioned(path);
    env_b.reset_conditioned(path);
    Rng rng_a(6), rng_b(7); // different RNGs: dynamics must not consume them
    const DecisionRule h = DecisionRule::mf_jsq(env_a.tuple_space());
    while (!env_a.done()) {
        EXPECT_EQ(env_a.lambda_state(), env_b.lambda_state());
        const auto oa = env_a.step(h, rng_a);
        const auto ob = env_b.step(h, rng_b);
        EXPECT_DOUBLE_EQ(oa.drops, ob.drops);
    }
    for (std::size_t z = 0; z < env_a.nu().size(); ++z) {
        EXPECT_DOUBLE_EQ(env_a.nu()[z], env_b.nu()[z]);
    }
}

TEST(MfcEnv, ConditionedSequenceValidation) {
    MfcEnv env(small_config());
    EXPECT_THROW(env.reset_conditioned({}), std::invalid_argument);
    EXPECT_THROW(env.reset_conditioned({0, 5}), std::invalid_argument);
}

TEST(MfcEnv, WrongTupleSpaceRejected) {
    MfcEnv env(small_config());
    Rng rng(8);
    env.reset(rng);
    const TupleSpace wrong(6, 3);
    EXPECT_THROW(env.step(DecisionRule::mf_rnd(wrong), rng), std::invalid_argument);
}

TEST(MfcEnv, HorizonForTotalTimeRounding) {
    EXPECT_EQ(MfcConfig::horizon_for_total_time(500.0, 1.0), 500);
    EXPECT_EQ(MfcConfig::horizon_for_total_time(500.0, 3.0), 167);
    EXPECT_EQ(MfcConfig::horizon_for_total_time(500.0, 7.0), 71);
    EXPECT_EQ(MfcConfig::horizon_for_total_time(500.0, 10.0), 50);
    EXPECT_EQ(MfcConfig::horizon_for_total_time(0.4, 1.0), 1); // at least one epoch
}

TEST(MfcEnv, RolloutReturnIsNegativeTotalDrops) {
    MfcEnv env(small_config(5.0, 15));
    Rng rng(9);
    env.reset(rng);
    const FixedRulePolicy rnd = make_rnd_policy(env.tuple_space());
    const double ret = rollout_return(env, rnd, rng, /*discounted=*/false);
    EXPECT_LE(ret, 0.0);
    EXPECT_TRUE(env.done());
}

TEST(MfcEnv, HigherLoadDropsMore) {
    // Same policy, conditioned on all-high vs all-low arrivals.
    MfcConfig config = small_config(5.0, 20);
    const DecisionRule h = DecisionRule::mf_rnd(TupleSpace(6, 2));
    Rng rng(10);
    auto total_drops = [&](std::size_t state) {
        MfcEnv env(config);
        env.reset_conditioned(std::vector<std::size_t>(20, state));
        double total = 0.0;
        while (!env.done()) {
            total += env.step(h, rng).drops;
        }
        return total;
    };
    EXPECT_GT(total_drops(0), total_drops(1)); // λ_h = 0.9 > λ_l = 0.6
}

} // namespace
} // namespace mflb
