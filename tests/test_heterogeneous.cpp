// Tests for the heterogeneous-server extension and the SED(d) rule.
#include "queueing/heterogeneous.hpp"
#include "support/statistics.hpp"

#include <gtest/gtest.h>

namespace mflb {
namespace {

HeterogeneousConfig mixed_config() {
    HeterogeneousConfig config;
    config.service_rates.assign(20, 0.5);
    for (std::size_t j = 10; j < 20; ++j) {
        config.service_rates[j] = 1.5; // half slow, half fast
    }
    config.num_clients = 1000;
    config.horizon = 20;
    config.dt = 2.0;
    return config;
}

TEST(HeteroPolicies, JsqPicksShortest) {
    HeteroJsqPolicy jsq;
    Rng rng(1);
    const std::vector<int> states{3, 1, 2};
    const std::vector<double> rates{1.0, 1.0, 1.0};
    EXPECT_EQ(jsq.choose(states, rates, rng), 1);
}

TEST(HeteroPolicies, SedWeighsServiceRates) {
    HeteroSedPolicy sed;
    Rng rng(2);
    // (3+1)/2.0 = 2.0 beats (1+1)/0.4 = 5.0: SED picks the longer but much
    // faster queue, where JSQ would pick the shorter one.
    const std::vector<int> states{3, 1};
    const std::vector<double> rates{2.0, 0.4};
    EXPECT_EQ(sed.choose(states, rates, rng), 0);
    HeteroJsqPolicy jsq;
    EXPECT_EQ(jsq.choose(states, rates, rng), 1);
}

TEST(HeteroPolicies, TieBreakingIsUniform) {
    HeteroJsqPolicy jsq;
    Rng rng(3);
    const std::vector<int> states{2, 2};
    const std::vector<double> rates{1.0, 1.0};
    int first = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        first += jsq.choose(states, rates, rng) == 0 ? 1 : 0;
    }
    EXPECT_NEAR(first / static_cast<double>(n), 0.5, 0.02);
}

TEST(HeteroPolicies, RndIsUniform) {
    HeteroRndPolicy rnd;
    Rng rng(4);
    const std::vector<int> states{0, 5, 3};
    const std::vector<double> rates{1.0, 1.0, 1.0};
    std::vector<int> counts(3, 0);
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        ++counts[static_cast<std::size_t>(rnd.choose(states, rates, rng))];
    }
    for (int c : counts) {
        EXPECT_NEAR(c / static_cast<double>(n), 1.0 / 3.0, 0.02);
    }
}

TEST(HeterogeneousSystem, ValidatesConfig) {
    HeterogeneousConfig bad = mixed_config();
    bad.service_rates.clear();
    EXPECT_THROW(HeterogeneousSystem{bad}, std::invalid_argument);
    bad = mixed_config();
    bad.service_rates[0] = 0.0;
    EXPECT_THROW(HeterogeneousSystem{bad}, std::invalid_argument);
    bad = mixed_config();
    bad.horizon = 0;
    EXPECT_THROW(HeterogeneousSystem{bad}, std::invalid_argument);
}

TEST(HeterogeneousSystem, EpisodeRunsToHorizon) {
    HeterogeneousSystem system(mixed_config());
    Rng rng(5);
    system.reset(rng);
    const HeteroRndPolicy rnd;
    const auto stats = system.run_episode(rnd, rng);
    EXPECT_TRUE(system.done());
    EXPECT_GE(stats.total_drops_per_queue, 0.0);
    EXPECT_GE(stats.mean_queue_length, 0.0);
    EXPECT_THROW(system.step(rnd, rng), std::logic_error);
}

TEST(HeterogeneousSystem, SedBeatsJsqWithVeryUnevenServers) {
    // With strongly heterogeneous rates and small delay, exploiting the
    // rates (SED) should drop fewer packets than fill-only JSQ.
    HeterogeneousConfig config = mixed_config();
    config.dt = 1.0;
    config.horizon = 60;
    config.service_rates.assign(20, 0.2);
    for (std::size_t j = 10; j < 20; ++j) {
        config.service_rates[j] = 1.8;
    }
    RunningStat sed_drops, jsq_drops;
    for (int rep = 0; rep < 25; ++rep) {
        {
            HeterogeneousSystem system(config);
            Rng rng(100 + rep);
            system.reset(rng);
            sed_drops.add(system.run_episode(HeteroSedPolicy{}, rng).total_drops_per_queue);
        }
        {
            HeterogeneousSystem system(config);
            Rng rng(100 + rep);
            system.reset(rng);
            jsq_drops.add(system.run_episode(HeteroJsqPolicy{}, rng).total_drops_per_queue);
        }
    }
    EXPECT_LT(sed_drops.mean(), jsq_drops.mean());
}

} // namespace
} // namespace mflb
