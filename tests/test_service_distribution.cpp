// Tests for the first-class service-time laws: parsing, the mean-1/rate
// normalization contract, closed-form moments against empirical samples and
// numeric integration, CDF correctness (KS-style), the fixed draw-count
// determinism the sharded backend's draw-order contract relies on, and the
// Pollaczek-Khinchine M/G/1 oracle.
#include "queueing/service_distribution.hpp"

#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace mflb {
namespace {

constexpr ServiceDistKind kAllKinds[] = {
    ServiceDistKind::Exponential,
    ServiceDistKind::Deterministic,
    ServiceDistKind::HyperExp,
    ServiceDistKind::BoundedPareto,
};

ServiceDistribution make(ServiceDistKind kind, double rate = 1.0) {
    ServiceConfig config;
    config.kind = kind;
    return ServiceDistribution(config, rate);
}

TEST(ServiceDistParse, RoundTripsAndAliases) {
    for (const ServiceDistKind kind : kAllKinds) {
        EXPECT_EQ(parse_service_dist(service_dist_name(kind)), kind);
    }
    EXPECT_EQ(parse_service_dist("exp"), ServiceDistKind::Exponential);
    EXPECT_EQ(parse_service_dist("markov"), ServiceDistKind::Exponential);
    EXPECT_EQ(parse_service_dist("det"), ServiceDistKind::Deterministic);
    EXPECT_EQ(parse_service_dist("h2"), ServiceDistKind::HyperExp);
    EXPECT_EQ(parse_service_dist("bounded-pareto"), ServiceDistKind::BoundedPareto);
    EXPECT_THROW(parse_service_dist("weibull"), std::invalid_argument);
}

TEST(ServiceDistMoments, MeanIsOneOverRateForEveryKind) {
    for (const ServiceDistKind kind : kAllKinds) {
        for (const double rate : {0.5, 1.0, 2.0}) {
            const ServiceDistribution dist = make(kind, rate);
            EXPECT_NEAR(dist.mean(), 1.0 / rate, 1e-12) << service_dist_name(kind);
            EXPECT_GE(dist.second_moment(), dist.mean() * dist.mean());
        }
    }
}

TEST(ServiceDistMoments, ScvMatchesEachLaw) {
    EXPECT_NEAR(make(ServiceDistKind::Exponential).scv(), 1.0, 1e-12);
    EXPECT_NEAR(make(ServiceDistKind::Deterministic).scv(), 0.0, 1e-12);
    // The balanced-mean H2 fit hits the configured SCV exactly.
    for (const double target : {1.5, 4.0, 10.0}) {
        ServiceConfig config;
        config.kind = ServiceDistKind::HyperExp;
        config.hyper_scv = target;
        EXPECT_NEAR(ServiceDistribution(config, 2.0).scv(), target, 1e-9);
    }
    // Heavier tail index -> more variability, always above exponential's 1
    // at these parameters.
    ServiceConfig pareto;
    pareto.kind = ServiceDistKind::BoundedPareto;
    pareto.pareto_alpha = 1.2;
    const double heavy = ServiceDistribution(pareto, 1.0).scv();
    pareto.pareto_alpha = 2.5;
    const double light = ServiceDistribution(pareto, 1.0).scv();
    EXPECT_GT(heavy, light);
    EXPECT_GT(light, 0.0);
}

TEST(ServiceDistMoments, ParetoMomentsMatchNumericIntegration) {
    // E[S^k] = integral of k t^(k-1) (1 - F(t)) dt over the bounded support;
    // validates the closed-form truncated moments (including the rescaled
    // lower bound) against the CDF they must be consistent with.
    for (const double alpha : {1.0, 1.5, 2.0, 3.0}) {
        ServiceConfig config;
        config.kind = ServiceDistKind::BoundedPareto;
        config.pareto_alpha = alpha;
        config.pareto_cap = 100.0;
        const ServiceDistribution dist(config, 1.0);
        // The support upper end: cdf reaches 1 there; bisect for it.
        double high = 1.0;
        while (dist.cdf(high) < 1.0) {
            high *= 2.0;
        }
        const std::size_t steps = 400000;
        const double dt = high / static_cast<double>(steps);
        double mean = 0.0;
        double second = 0.0;
        for (std::size_t i = 0; i < steps; ++i) {
            const double t = (static_cast<double>(i) + 0.5) * dt;
            const double tail = 1.0 - dist.cdf(t);
            mean += tail * dt;
            second += 2.0 * t * tail * dt;
        }
        EXPECT_NEAR(mean, dist.mean(), 1e-3) << "alpha=" << alpha;
        EXPECT_NEAR(second / dist.second_moment(), 1.0, 1e-2) << "alpha=" << alpha;
    }
}

TEST(ServiceDistSampler, EmpiricalMomentsMatchClosedForms) {
    const std::size_t n = 200000;
    for (const ServiceDistKind kind : kAllKinds) {
        const ServiceDistribution dist = make(kind, 2.0);
        Rng rng(2024);
        double sum = 0.0;
        double sum_sq = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double s = dist.sample(rng);
            ASSERT_GT(s, 0.0);
            sum += s;
            sum_sq += s * s;
        }
        const double inv_n = 1.0 / static_cast<double>(n);
        EXPECT_NEAR(sum * inv_n / dist.mean(), 1.0, 0.05) << service_dist_name(kind);
        // Second moments are noisier (the Pareto especially); 15% headroom.
        EXPECT_NEAR(sum_sq * inv_n / dist.second_moment(), 1.0, 0.15)
            << service_dist_name(kind);
    }
}

TEST(ServiceDistSampler, CdfMatchesEmpirical) {
    // KS-style check on a fixed grid spanning the bulk of each mean-0.5 law;
    // with n = 100k the KS critical value is ~0.0043, so 0.01 is ample.
    const std::size_t n = 100000;
    const double grid[] = {0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.5, 5.0};
    for (const ServiceDistKind kind :
         {ServiceDistKind::Exponential, ServiceDistKind::HyperExp,
          ServiceDistKind::BoundedPareto}) {
        const ServiceDistribution dist = make(kind, 2.0);
        Rng rng(7);
        std::vector<double> samples(n);
        for (double& s : samples) {
            s = dist.sample(rng);
        }
        for (const double t : grid) {
            const double empirical =
                static_cast<double>(std::count_if(samples.begin(), samples.end(),
                                                  [&](double s) { return s <= t; })) /
                static_cast<double>(n);
            EXPECT_NEAR(empirical, dist.cdf(t), 0.01)
                << service_dist_name(kind) << " at t=" << t;
        }
    }
}

TEST(ServiceDistSampler, SupportAndCdfBounds) {
    ServiceConfig config;
    config.kind = ServiceDistKind::BoundedPareto;
    config.pareto_alpha = 1.5;
    config.pareto_cap = 50.0;
    const ServiceDistribution dist(config, 1.0);
    Rng rng(3);
    double lo = 1e300;
    double hi = 0.0;
    for (int i = 0; i < 50000; ++i) {
        const double s = dist.sample(rng);
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    // The support is [L, 50 L]: the sample range can never exceed the cap
    // ratio, and the CDF is 0 / 1 outside it.
    EXPECT_LE(hi / lo, config.pareto_cap * (1.0 + 1e-9));
    EXPECT_DOUBLE_EQ(dist.cdf(lo * 0.999), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(hi * config.pareto_cap), 1.0);
    EXPECT_DOUBLE_EQ(dist.cdf(-1.0), 0.0);
    // Deterministic: a step at the mean.
    const ServiceDistribution det = make(ServiceDistKind::Deterministic, 2.0);
    EXPECT_DOUBLE_EQ(det.cdf(0.499), 0.0);
    EXPECT_DOUBLE_EQ(det.cdf(0.5), 1.0);
}

TEST(ServiceDistDeterminism, FixedDrawCountPerKind) {
    // The simulators' draw-order contract: each kind consumes a fixed number
    // of 64-bit draws per sample (exponential 1, deterministic 0,
    // hyperexponential 2, bounded Pareto 1), independent of the outcome.
    const std::size_t expected[] = {1, 0, 2, 1};
    for (std::size_t k = 0; k < 4; ++k) {
        const ServiceDistribution dist = make(kAllKinds[k]);
        Rng sampled(99);
        Rng counted(99);
        for (int rep = 0; rep < 64; ++rep) {
            dist.sample(sampled);
            for (std::size_t i = 0; i < expected[k]; ++i) {
                counted.uniform();
            }
            ASSERT_EQ(sampled(), counted())
                << service_dist_name(kAllKinds[k]) << " rep " << rep;
        }
    }
}

TEST(ServiceDistDeterminism, ForkReproducesSequences) {
    for (const ServiceDistKind kind : kAllKinds) {
        const ServiceDistribution dist = make(kind);
        Rng a = Rng(41).fork(5);
        Rng b = Rng(41).fork(5);
        for (int i = 0; i < 100; ++i) {
            ASSERT_EQ(dist.sample(a), dist.sample(b)) << service_dist_name(kind);
        }
    }
}

TEST(Mg1Oracle, ReducesToMm1ForExponentialService) {
    // M/M/1: E[T] = 1 / (mu - lambda).
    EXPECT_NEAR(mg1_mean_sojourn(0.5, make(ServiceDistKind::Exponential, 1.0)), 2.0,
                1e-12);
    EXPECT_NEAR(mg1_mean_sojourn(0.8, make(ServiceDistKind::Exponential, 2.0)), 1.0 / 1.2,
                1e-12);
}

TEST(Mg1Oracle, OrdersByVariabilityAndGuardsStability) {
    // At equal load, mean sojourn is increasing in service variability.
    const double det = mg1_mean_sojourn(0.6, make(ServiceDistKind::Deterministic));
    const double exp = mg1_mean_sojourn(0.6, make(ServiceDistKind::Exponential));
    const double h2 = mg1_mean_sojourn(0.6, make(ServiceDistKind::HyperExp));
    EXPECT_LT(det, exp);
    EXPECT_LT(exp, h2);
    // Deterministic: E[T] = 1 + rho / (2 (1 - rho)).
    EXPECT_NEAR(det, 1.0 + 0.6 / (2.0 * 0.4), 1e-12);
    EXPECT_THROW(mg1_mean_sojourn(1.0, make(ServiceDistKind::Exponential)),
                 std::invalid_argument);
    EXPECT_THROW(mg1_mean_sojourn(0.0, make(ServiceDistKind::Exponential)),
                 std::invalid_argument);
}

TEST(ServiceDistConfig, RejectsBadParameters) {
    EXPECT_THROW(ServiceDistribution(ServiceConfig{}, 0.0), std::invalid_argument);
    ServiceConfig h2;
    h2.kind = ServiceDistKind::HyperExp;
    h2.hyper_scv = 1.0; // SCV must exceed exponential's 1
    EXPECT_THROW(ServiceDistribution(h2, 1.0), std::invalid_argument);
    ServiceConfig pareto;
    pareto.kind = ServiceDistKind::BoundedPareto;
    pareto.pareto_alpha = 0.0;
    EXPECT_THROW(ServiceDistribution(pareto, 1.0), std::invalid_argument);
    pareto.pareto_alpha = 1.5;
    pareto.pareto_cap = 1.0; // truncation ratio must exceed 1
    EXPECT_THROW(ServiceDistribution(pareto, 1.0), std::invalid_argument);
}

} // namespace
} // namespace mflb
