// Statistical exactness tests for the Gillespie queue simulator against the
// transient master-equation solution.
#include "queueing/gillespie.hpp"
#include "support/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

TEST(Gillespie, NoEventsWithZeroRates) {
    Rng rng(1);
    const auto r = simulate_queue_epoch(0, 0.0, 1.0, 5, 10.0, rng);
    EXPECT_EQ(r.final_state, 0);
    EXPECT_EQ(r.drops, 0u);
    EXPECT_EQ(r.arrivals, 0u);
    EXPECT_EQ(r.services, 0u);
    EXPECT_DOUBLE_EQ(r.queue_length_area, 0.0);
}

TEST(Gillespie, PureDrainEmptiesQueue) {
    Rng rng(2);
    int drained = 0;
    for (int rep = 0; rep < 200; ++rep) {
        const auto r = simulate_queue_epoch(5, 0.0, 1.0, 5, 50.0, rng);
        EXPECT_EQ(r.drops, 0u);
        drained += (r.final_state == 0) ? 1 : 0;
    }
    EXPECT_EQ(drained, 200); // P(not drained in 50 time units) ~ 0
}

TEST(Gillespie, StateStaysInBuffer) {
    Rng rng(3);
    for (int rep = 0; rep < 500; ++rep) {
        const auto r = simulate_queue_epoch(rep % 6, 2.5, 0.7, 5, 3.0, rng);
        EXPECT_GE(r.final_state, 0);
        EXPECT_LE(r.final_state, 5);
        EXPECT_LE(r.queue_length_area, 5.0 * 3.0 + 1e-12);
        EXPECT_LE(r.busy_time, 3.0 + 1e-12);
    }
}

TEST(Gillespie, ConservationPerSamplePath) {
    // final = initial + arrivals - services for every path.
    Rng rng(4);
    for (int rep = 0; rep < 1000; ++rep) {
        const int z0 = rep % 6;
        const auto r = simulate_queue_epoch(z0, 1.3, 0.9, 5, 4.0, rng);
        EXPECT_EQ(r.final_state,
                  z0 + static_cast<int>(r.arrivals) - static_cast<int>(r.services));
    }
}

TEST(Gillespie, TransientDistributionMatchesMasterEquation) {
    // Empirical law of z(dt) vs uniformization of the generator. 40k
    // replications give ~0.005 standard error per bin.
    const double arrival = 0.9, service = 1.0, dt = 5.0;
    const int buffer = 5, z0 = 0;
    const auto oracle = queue_transient_solution(z0, arrival, service, buffer, dt);
    Rng rng(5);
    const int n = 40000;
    std::vector<double> counts(static_cast<std::size_t>(buffer) + 1, 0.0);
    RunningStat drops;
    for (int rep = 0; rep < n; ++rep) {
        const auto r = simulate_queue_epoch(z0, arrival, service, buffer, dt, rng);
        counts[static_cast<std::size_t>(r.final_state)] += 1.0;
        drops.add(static_cast<double>(r.drops));
    }
    for (std::size_t z = 0; z <= static_cast<std::size_t>(buffer); ++z) {
        EXPECT_NEAR(counts[z] / n, oracle.state_distribution[z], 0.012) << "z=" << z;
    }
    EXPECT_NEAR(drops.mean(), oracle.expected_drops, 4.0 * drops.standard_error() + 0.01);
}

TEST(Gillespie, OverloadedQueueDropsExpectedMass) {
    // a = 3, alpha = 1, small buffer: long-run drop rate ~ a - alpha once
    // the buffer saturates.
    const double arrival = 3.0, service = 1.0, dt = 30.0;
    Rng rng(6);
    RunningStat drops;
    for (int rep = 0; rep < 3000; ++rep) {
        const auto r = simulate_queue_epoch(5, arrival, service, 5, dt, rng);
        drops.add(static_cast<double>(r.drops));
    }
    const auto oracle = queue_transient_solution(5, arrival, service, 5, dt);
    EXPECT_NEAR(drops.mean(), oracle.expected_drops, 5.0 * drops.standard_error());
    EXPECT_GT(drops.mean(), (arrival - service) * dt * 0.9);
}

TEST(Gillespie, UtilizationMatchesErlangLoss) {
    // For a long epoch the busy fraction converges to 1 - p0 of the
    // stationary M/M/1/B law with rho = a/alpha.
    const double arrival = 0.8, service = 1.0, dt = 400.0;
    const int buffer = 5;
    const double rho = arrival / service;
    double normalizer = 0.0;
    for (int k = 0; k <= buffer; ++k) {
        normalizer += std::pow(rho, k);
    }
    const double p0 = 1.0 / normalizer;
    Rng rng(7);
    RunningStat busy;
    for (int rep = 0; rep < 300; ++rep) {
        const auto r = simulate_queue_epoch(0, arrival, service, buffer, dt, rng);
        busy.add(r.busy_time / dt);
    }
    EXPECT_NEAR(busy.mean(), 1.0 - p0, 0.01);
}

TEST(TransientSolution, RejectsOutOfRangeStart) {
    EXPECT_THROW(queue_transient_solution(-1, 1.0, 1.0, 5, 1.0), std::invalid_argument);
    EXPECT_THROW(queue_transient_solution(6, 1.0, 1.0, 5, 1.0), std::invalid_argument);
}

// Property sweep across the paper's parameter grid: empirical mean state
// matches the master equation within Monte Carlo error.
struct GillespieCase {
    double arrival;
    double dt;
    int z0;
};

class GillespieAgreement : public ::testing::TestWithParam<GillespieCase> {};

TEST_P(GillespieAgreement, MeanFinalStateMatchesOracle) {
    const auto [arrival, dt, z0] = GetParam();
    const double service = 1.0;
    const int buffer = 5;
    const auto oracle = queue_transient_solution(z0, arrival, service, buffer, dt);
    double oracle_mean = 0.0;
    for (std::size_t z = 0; z <= 5; ++z) {
        oracle_mean += static_cast<double>(z) * oracle.state_distribution[z];
    }
    Rng rng(static_cast<std::uint64_t>(z0) * 1000 + static_cast<std::uint64_t>(dt * 10));
    RunningStat final_state;
    for (int rep = 0; rep < 8000; ++rep) {
        final_state.add(static_cast<double>(
            simulate_queue_epoch(z0, arrival, service, buffer, dt, rng).final_state));
    }
    EXPECT_NEAR(final_state.mean(), oracle_mean, 5.0 * final_state.standard_error() + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Grid, GillespieAgreement,
                         ::testing::Values(GillespieCase{0.6, 1.0, 0}, GillespieCase{0.9, 5.0, 0},
                                           GillespieCase{0.9, 10.0, 5},
                                           GillespieCase{1.8, 3.0, 2},
                                           GillespieCase{0.3, 7.0, 4}));

} // namespace
} // namespace mflb
