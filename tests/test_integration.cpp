// End-to-end pipeline tests: train (CEM / PPO) on the MFC MDP, deploy to the
// finite system, serialize and reload.
#include "core/mflb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

namespace mflb {
namespace {

MfcConfig training_config(double dt = 5.0, int horizon = 20) {
    MfcConfig config;
    config.dt = dt;
    config.horizon = horizon;
    return config;
}

TEST(Integration, CemPolicyBeatsBothBaselinesAtIntermediateDelay) {
    // The paper's headline claim (Fig. 5): at Δt = 5 the learned MF policy
    // outperforms both JSQ(2) (optimal at Δt → 0) and RND (optimal at
    // Δt → ∞). CEM on the exact mean-field objective reaches this in a few
    // hundred episodes.
    const MfcConfig config = training_config(5.0, 20);
    rl::CemConfig cem;
    cem.population = 32;
    cem.elites = 6;
    cem.generations = 25;
    const CemTrainingResult trained = train_tabular_cem(config, cem, 2, 1234);

    const TupleSpace space(config.queue.num_states(), config.d);
    const std::size_t eval_episodes = 40;
    const EvaluationResult learned = evaluate_mfc(config, trained.policy, eval_episodes, 99);
    const EvaluationResult jsq = evaluate_mfc(config, make_jsq_policy(space), eval_episodes, 99);
    const EvaluationResult rnd = evaluate_mfc(config, make_rnd_policy(space), eval_episodes, 99);

    EXPECT_LT(learned.total_drops.mean, jsq.total_drops.mean);
    EXPECT_LT(learned.total_drops.mean, rnd.total_drops.mean * 1.02);
}

TEST(Integration, CemPolicyTransfersToFiniteSystem) {
    const MfcConfig config = training_config(5.0, 20);
    rl::CemConfig cem;
    cem.population = 24;
    cem.elites = 5;
    cem.generations = 15;
    const CemTrainingResult trained = train_tabular_cem(config, cem, 2, 777);

    ExperimentConfig experiment;
    experiment.dt = 5.0;
    experiment.num_queues = 60;
    experiment.num_clients = 3600;
    experiment.eval_total_time = 100.0;
    const TupleSpace space(experiment.queue.num_states(), experiment.d);

    const EvaluationResult learned =
        evaluate_finite(experiment.finite_system(), trained.policy, 15, 5);
    const EvaluationResult rnd =
        evaluate_finite(experiment.finite_system(), make_rnd_policy(space), 15, 5);
    // Transfers: the MFC-trained policy is at least as good as RND on the
    // finite system (within CI noise).
    EXPECT_LT(learned.total_drops.mean,
              rnd.total_drops.mean + rnd.total_drops.half_width + 0.5);
}

TEST(Integration, PpoPipelineRunsOnMfcMdp) {
    // Smoke test of the paper-faithful trainer at a tiny budget: training
    // must run, improve numerics must stay finite, and the deployed policy
    // must produce valid decision rules in the finite system.
    MfcConfig config = training_config(5.0, 10);
    rl::PpoConfig ppo;
    ppo.hidden = {16, 16};
    ppo.train_batch_size = 200;
    ppo.minibatch_size = 50;
    ppo.num_epochs = 3;
    ppo.learning_rate = 1e-3;
    const PpoTrainingResult result = train_mfc_ppo(config, ppo, 2, 4, 31337);
    ASSERT_EQ(result.history.size(), 2u);
    EXPECT_TRUE(std::isfinite(result.history.back().mean_episode_return));
    EXPECT_TRUE(std::isfinite(result.final_eval_return));

    const NeuralUpperPolicy policy = make_neural_policy(config, result.network);
    FiniteSystemConfig finite;
    finite.dt = 5.0;
    finite.num_queues = 30;
    finite.num_clients = 900;
    finite.horizon = 5;
    FiniteSystem system(finite);
    Rng rng(1);
    system.reset(rng);
    const EpisodeStats stats = system.run_episode(policy, rng);
    EXPECT_GE(stats.total_drops_per_queue, 0.0);
}

TEST(Integration, PolicySaveLoadPreservesEvaluation) {
    const MfcConfig config = training_config(5.0, 10);
    rl::CemConfig cem;
    cem.population = 16;
    cem.elites = 4;
    cem.generations = 5;
    const CemTrainingResult trained = train_tabular_cem(config, cem, 1, 2024);

    const std::string path = "/tmp/mflb_test_policy.txt";
    ASSERT_TRUE(trained.policy.to_archive().save(path));
    const TabularPolicy loaded = TabularPolicy::from_archive(Archive::load(path));
    std::remove(path.c_str());

    const EvaluationResult a = evaluate_mfc(config, trained.policy, 6, 5);
    const EvaluationResult b = evaluate_mfc(config, loaded, 6, 5);
    EXPECT_DOUBLE_EQ(a.total_drops.mean, b.total_drops.mean);
}

TEST(Integration, SimplexParameterizationTrainsWorseOrEqual) {
    // The paper reports Dirichlet/simplex action parameterization performs
    // significantly worse; at equal small budget the logits version should
    // be at least as good (generous tolerance; both are optimized).
    const MfcConfig config = training_config(5.0, 15);
    rl::CemConfig cem;
    cem.population = 24;
    cem.elites = 5;
    cem.generations = 12;
    const CemTrainingResult logits =
        train_tabular_cem(config, cem, 2, 11, RuleParameterization::Logits);
    const CemTrainingResult simplex =
        train_tabular_cem(config, cem, 2, 11, RuleParameterization::Simplex);
    const EvaluationResult logits_eval = evaluate_mfc(config, logits.policy, 30, 55);
    const EvaluationResult simplex_eval = evaluate_mfc(config, simplex.policy, 30, 55);
    EXPECT_LE(logits_eval.total_drops.mean,
              simplex_eval.total_drops.mean + simplex_eval.total_drops.half_width + 0.3);
}

TEST(Integration, UmbrellaHeaderQuickstartCompiles) {
    // Mirrors the README quickstart.
    ExperimentConfig cfg;
    cfg.dt = 5.0;
    cfg.num_queues = 20;
    cfg.num_clients = 400;
    cfg.eval_total_time = 25.0;
    const TupleSpace space(cfg.queue.num_states(), cfg.d);
    const FixedRulePolicy jsq = make_jsq_policy(space);
    const EvaluationResult r = evaluate_finite(cfg.finite_system(), jsq, 4, 1);
    EXPECT_EQ(r.episodes, 4u);
}

} // namespace
} // namespace mflb
