// Tests for Welford accumulation, merging, and confidence intervals.
#include "support/statistics.hpp"
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace mflb {
namespace {

TEST(RunningStat, MatchesNaiveMeanAndVariance) {
    const std::vector<double> xs{1.0, 2.0, 4.5, -3.0, 0.25, 10.0};
    RunningStat stat;
    for (double x : xs) {
        stat.add(x);
    }
    EXPECT_EQ(stat.count(), xs.size());
    EXPECT_NEAR(stat.mean(), mean_of(xs), 1e-12);
    EXPECT_NEAR(stat.variance(), variance_of(xs), 1e-12);
    EXPECT_DOUBLE_EQ(stat.min(), -3.0);
    EXPECT_DOUBLE_EQ(stat.max(), 10.0);
}

TEST(RunningStat, SingleObservationHasZeroVariance) {
    RunningStat stat;
    stat.add(5.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stat.standard_error(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
    RunningStat all, left, right;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(static_cast<double>(i)) * 3.0 + 1.0;
        all.add(x);
        (i < 20 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmptyIsNoop) {
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    const double mean_before = a.mean();
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), mean_before);
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(ConfidenceInterval, WidthScalesWithSampleSize) {
    RunningStat small, big;
    for (int i = 0; i < 10; ++i) {
        small.add(i % 2 == 0 ? 1.0 : -1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        big.add(i % 2 == 0 ? 1.0 : -1.0);
    }
    const auto ci_small = confidence_interval_95(small);
    const auto ci_big = confidence_interval_95(big);
    EXPECT_GT(ci_small.half_width, ci_big.half_width);
    EXPECT_NEAR(ci_big.mean, 0.0, 1e-12);
    EXPECT_LE(ci_big.lower(), ci_big.mean);
    EXPECT_GE(ci_big.upper(), ci_big.mean);
}

TEST(ConfidenceInterval, CoversTrueMeanApproximately) {
    // Property: over repeated experiments, the 95% CI covers the true mean
    // about 95% of the time (allow generous slack for 200 trials).
    std::uint64_t seed = 12345;
    int covered = 0;
    const int trials = 200;
    for (int trial = 0; trial < trials; ++trial) {
        RunningStat stat;
        for (int i = 0; i < 40; ++i) {
            // Deterministic pseudo-random uniform in [0, 1) via splitmix64.
            const double u =
                static_cast<double>(splitmix64(seed) >> 11) * 0x1.0p-53;
            stat.add(u);
        }
        const auto ci = confidence_interval_95(stat);
        if (ci.lower() <= 0.5 && 0.5 <= ci.upper()) {
            ++covered;
        }
    }
    EXPECT_GE(covered, static_cast<int>(trials * 0.88));
}

TEST(StudentT, CriticalValuesDecreaseToNormal) {
    EXPECT_GT(student_t_975(1), student_t_975(2));
    EXPECT_GT(student_t_975(5), student_t_975(30));
    EXPECT_NEAR(student_t_975(10000), 1.959964, 1e-6);
}

TEST(P2Quantile, RejectsDegenerateTargets) {
    EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
    EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
    EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2Quantile, ExactForFewObservations) {
    P2Quantile median(0.5);
    EXPECT_DOUBLE_EQ(median.value(), 0.0); // empty
    median.add(3.0);
    EXPECT_DOUBLE_EQ(median.value(), 3.0);
    median.add(1.0);
    EXPECT_DOUBLE_EQ(median.value(), 2.0); // interpolated {1, 3}
    median.add(2.0);
    EXPECT_DOUBLE_EQ(median.value(), 2.0); // middle of {1, 2, 3}
    EXPECT_EQ(median.count(), 3u);
    EXPECT_DOUBLE_EQ(median.quantile(), 0.5);
}

double exact_quantile(std::vector<double> xs, double p) {
    std::sort(xs.begin(), xs.end());
    const double rank = p * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    return xs[lo] + (rank - static_cast<double>(lo)) * (xs[hi] - xs[lo]);
}

TEST(P2Quantile, TracksExactQuantilesOfSkewedAndSymmetricSamples) {
    Rng rng(71);
    std::vector<double> exponential, normal;
    P2Quantile e50(0.5), e95(0.95), e99(0.99), n50(0.5), n95(0.95);
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double e = rng.exponential(1.0);
        const double g = rng.normal(10.0, 2.0);
        exponential.push_back(e);
        normal.push_back(g);
        e50.add(e);
        e95.add(e);
        e99.add(e);
        n50.add(g);
        n95.add(g);
    }
    EXPECT_EQ(e50.count(), static_cast<std::size_t>(n));
    // Relative tolerance vs the exact sample quantiles (P² is approximate).
    EXPECT_NEAR(e50.value(), exact_quantile(exponential, 0.5), 0.03);
    EXPECT_NEAR(e95.value(), exact_quantile(exponential, 0.95), 0.12);
    EXPECT_NEAR(e99.value(), exact_quantile(exponential, 0.99), 0.25);
    EXPECT_NEAR(n50.value(), exact_quantile(normal, 0.5), 0.1);
    EXPECT_NEAR(n95.value(), exact_quantile(normal, 0.95), 0.2);
    // Ordering across targets on the same stream.
    EXPECT_LT(e50.value(), e95.value());
    EXPECT_LT(e95.value(), e99.value());
}

TEST(P2Quantile, HandlesConstantAndSortedStreams) {
    P2Quantile q(0.9);
    for (int i = 0; i < 1000; ++i) {
        q.add(5.0);
    }
    EXPECT_DOUBLE_EQ(q.value(), 5.0);
    P2Quantile asc(0.5);
    for (int i = 1; i <= 10001; ++i) {
        asc.add(static_cast<double>(i));
    }
    EXPECT_NEAR(asc.value(), 5001.0, 150.0);
}

TEST(P2QuantileMerge, RejectsMismatchedTargetsAndHandlesEmpties) {
    P2Quantile a(0.5), b(0.95);
    EXPECT_THROW(a.merge(b), std::invalid_argument);

    P2Quantile c(0.5), d(0.5);
    c.merge(d); // both empty: no-op
    EXPECT_EQ(c.count(), 0u);
    d.add(7.0);
    c.merge(d); // empty absorbs other
    EXPECT_EQ(c.count(), 1u);
    EXPECT_DOUBLE_EQ(c.value(), 7.0);
    P2Quantile e(0.5);
    c.merge(e); // merging an empty is a no-op
    EXPECT_EQ(c.count(), 1u);
}

TEST(P2QuantileMerge, ExactWhileCombinedStreamFitsTheBuffer) {
    // 3 + 2 observations: the merged estimator must equal one fed the
    // concatenated stream (both are exact sorted buffers).
    P2Quantile a(0.5), b(0.5), direct(0.5);
    for (const double x : {1.0, 9.0, 4.0}) {
        a.add(x);
        direct.add(x);
    }
    for (const double x : {0.5, 6.0}) {
        b.add(x);
        direct.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_DOUBLE_EQ(a.value(), direct.value());
    EXPECT_DOUBLE_EQ(a.value(), 4.0); // median of {0.5, 1, 4, 6, 9}
}

TEST(P2QuantileMerge, TracksExactQuantilesOfConcatenatedStreams) {
    // Two shards observing *different* distributions (the hard case: the
    // merged quantile is not near either shard's own): the merged estimate
    // must track the exact sample quantile of the concatenation.
    Rng rng(123);
    for (const double p : {0.5, 0.95}) {
        SCOPED_TRACE(p);
        P2Quantile a(p), b(p);
        std::vector<double> all;
        for (int i = 0; i < 4000; ++i) {
            const double x = rng.exponential(1.0);
            a.add(x);
            all.push_back(x);
        }
        for (int i = 0; i < 2000; ++i) {
            const double y = 5.0 + rng.normal(0.0, 0.5);
            b.add(y);
            all.push_back(y);
        }
        a.merge(b);
        EXPECT_EQ(a.count(), all.size());
        const double exact = exact_quantile(all, p);
        EXPECT_NEAR(a.value(), exact, std::max(0.15, 0.08 * exact))
            << "merged " << a.value() << " vs exact " << exact;
    }
}

TEST(P2QuantileMerge, MergingManyShardsOfTheSameLawMatchesTheSingleStream) {
    // The sharded-DES reduction shape: 8 shards of the same sojourn law,
    // merged in order, must agree with the one-stream estimate and with the
    // exact quantile.
    Rng rng(77);
    std::vector<double> all;
    std::vector<P2Quantile> shards(8, P2Quantile(0.95));
    P2Quantile single(0.95);
    for (int i = 0; i < 16000; ++i) {
        const double x = rng.exponential(0.7);
        shards[static_cast<std::size_t>(i % 8)].add(x);
        single.add(x);
        all.push_back(x);
    }
    P2Quantile merged(0.95);
    for (const P2Quantile& shard : shards) {
        merged.merge(shard);
    }
    EXPECT_EQ(merged.count(), all.size());
    const double exact = exact_quantile(all, 0.95);
    EXPECT_NEAR(merged.value(), exact, 0.08 * exact);
    EXPECT_NEAR(merged.value(), single.value(), 0.1 * exact);
    // A merged estimator keeps accepting observations.
    for (int i = 0; i < 1000; ++i) {
        merged.add(rng.exponential(0.7));
    }
    EXPECT_EQ(merged.count(), all.size() + 1000);
    EXPECT_GT(merged.value(), 0.0);
}

TEST(P2QuantileMerge, SmallBufferIntoLargeEstimator) {
    Rng rng(9);
    P2Quantile big(0.5), small(0.5);
    std::vector<double> all;
    for (int i = 0; i < 3000; ++i) {
        const double x = rng.normal(4.0, 1.0);
        big.add(x);
        all.push_back(x);
    }
    for (const double x : {3.5, 4.5, 4.0}) {
        small.add(x);
        all.push_back(x);
    }
    big.merge(small);
    EXPECT_EQ(big.count(), all.size());
    EXPECT_NEAR(big.value(), exact_quantile(all, 0.5), 0.15);
}

TEST(Histogram, BinsAndClamping) {
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0); // clamps to first bin
    h.add(0.5);
    h.add(9.99);
    h.add(42.0); // clamps to last bin
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bin_count(0), 2u);
    EXPECT_EQ(h.bin_count(4), 2u);
    EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_lower(4), 8.0);
    EXPECT_FALSE(h.ascii().empty());
}

} // namespace
} // namespace mflb
