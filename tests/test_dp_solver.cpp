// Tests for the simplex grid and the value-iteration solver.
#include "core/dp_solver.hpp"
#include "core/evaluator.hpp"
#include "math/simplex.hpp"
#include "policies/fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

TEST(SimplexGrid, LatticeSizeIsBinomialCoefficient) {
    EXPECT_EQ(SimplexGrid::lattice_size(2, 4), 5u);   // C(5,1)
    EXPECT_EQ(SimplexGrid::lattice_size(3, 4), 15u);  // C(6,2)
    EXPECT_EQ(SimplexGrid::lattice_size(6, 8), 1287u); // C(13,5)
    const SimplexGrid grid(3, 4);
    EXPECT_EQ(grid.size(), 15u);
}

TEST(SimplexGrid, PointsAreProbabilityVectors) {
    const SimplexGrid grid(4, 5);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_TRUE(is_probability_vector(grid.point(i), 1e-12)) << "i=" << i;
    }
}

TEST(SimplexGrid, ProjectionIsIdentityOnGridPoints) {
    const SimplexGrid grid(5, 6);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(grid.project(grid.point(i)), i);
    }
}

TEST(SimplexGrid, ProjectionIsCloseInL1) {
    const SimplexGrid grid(6, 8);
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<double> weights(6);
        for (double& w : weights) {
            w = rng.uniform() + 1e-6;
        }
        const std::vector<double> nu = normalized(weights);
        const std::size_t idx = grid.project(nu);
        const double distortion = l1_distance(nu, grid.point(idx));
        // Largest-remainder rounding distorts each coordinate by < 1/R.
        EXPECT_LT(distortion, 6.0 / 8.0);
        EXPECT_LT(distortion, 0.5); // typically much tighter
    }
}

TEST(SimplexGrid, Validation) {
    EXPECT_THROW(SimplexGrid(0, 4), std::invalid_argument);
    EXPECT_THROW(SimplexGrid(3, 0), std::invalid_argument);
    const SimplexGrid grid(3, 4);
    EXPECT_THROW(grid.project(std::vector<double>{0.5, 0.5}), std::invalid_argument);
}

TEST(DpSolver, ConvergesAndProducesSaneValues) {
    MfcConfig config;
    config.dt = 5.0;
    config.horizon = 50;
    DpConfig dp;
    dp.resolution = 4; // tiny grid for speed: C(9,5) = 126 points
    dp.betas = {0.0, 1.0, 1e6};
    const auto [policy, stats] = solve_mfc_dp(config, dp);
    EXPECT_GT(stats.sweeps, 10u);
    EXPECT_LT(stats.final_residual, dp.tolerance + 1e-12);
    EXPECT_EQ(stats.states, 126u * 2u);
    EXPECT_EQ(stats.actions, 3u);
    // Values are negative discounted drops, bounded by the all-drop rate.
    const double bound = 2.0 * 0.9 * config.dt / (1.0 - config.discount);
    for (std::size_t p = 0; p < policy.grid().size(); ++p) {
        for (std::size_t l = 0; l < 2; ++l) {
            EXPECT_LE(policy.value(p, l), 1e-9);
            EXPECT_GE(policy.value(p, l), -bound);
        }
    }
}

TEST(DpSolver, GreedyPolicyBeatsBothBaselinesAtIntermediateDelay) {
    MfcConfig config;
    config.dt = 5.0;
    config.horizon = 60;
    DpConfig dp;
    dp.resolution = 6; // C(11,5) = 462 points
    const auto [policy, stats] = solve_mfc_dp(config, dp);

    const TupleSpace space(config.queue.num_states(), config.d);
    const std::size_t episodes = 30;
    const EvaluationResult dp_eval = evaluate_mfc(config, policy, episodes, 77);
    const EvaluationResult jsq = evaluate_mfc(config, make_jsq_policy(space), episodes, 77);
    const EvaluationResult rnd = evaluate_mfc(config, make_rnd_policy(space), episodes, 77);
    EXPECT_LT(dp_eval.total_drops.mean, jsq.total_drops.mean);
    EXPECT_LT(dp_eval.total_drops.mean, rnd.total_drops.mean);
}

TEST(DpSolver, PolicyIsGreedyWithRespectToItsOwnValues) {
    MfcConfig config;
    config.dt = 5.0;
    config.horizon = 30;
    DpConfig dp;
    dp.resolution = 4;
    dp.betas = {0.0, 1e6};
    const auto [policy, stats] = solve_mfc_dp(config, dp);
    (void)stats;
    // The returned action index at each state is one of the provided rules.
    for (std::size_t p = 0; p < std::min<std::size_t>(policy.grid().size(), 20); ++p) {
        for (std::size_t l = 0; l < 2; ++l) {
            EXPECT_LT(policy.greedy_action(p, l), policy.num_actions());
        }
    }
    // decide() projects and returns a valid rule.
    Rng rng(3);
    const std::vector<double> nu{0.35, 0.3, 0.15, 0.1, 0.06, 0.04};
    const DecisionRule rule = policy.decide(nu, 0, rng);
    EXPECT_TRUE(rule.is_valid());
    EXPECT_THROW(policy.decide(nu, 5, rng), std::out_of_range);
}

TEST(DpSolver, GreedierActionsChosenAtSmallDelay) {
    // At dt = 1 the DP policy should mostly pick high-beta (greedy) actions;
    // at dt = 10 mostly low-beta ones. Measure the mean chosen beta index
    // over the grid (weighted by nothing — uniform over grid points).
    DpConfig dp;
    dp.resolution = 4;
    dp.betas = {0.0, 1.0, 1e6};
    auto mean_action_index = [&](double dt) {
        MfcConfig config;
        config.dt = dt;
        config.horizon = 30;
        const auto [policy, stats] = solve_mfc_dp(config, dp);
        (void)stats;
        double total = 0.0;
        std::size_t count = 0;
        for (std::size_t p = 0; p < policy.grid().size(); ++p) {
            for (std::size_t l = 0; l < 2; ++l) {
                total += static_cast<double>(policy.greedy_action(p, l));
                ++count;
            }
        }
        return total / static_cast<double>(count);
    };
    EXPECT_GT(mean_action_index(1.0), mean_action_index(10.0));
}

} // namespace
} // namespace mflb
