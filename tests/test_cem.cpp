// Tests for the cross-entropy method optimizer.
#include "rl/cem.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb::rl {
namespace {

TEST(Cem, ValidatesConfig) {
    CemConfig bad;
    bad.elites = 0;
    Rng rng(1);
    const std::vector<double> x0{0.0};
    const auto objective = [](std::span<const double>, Rng&) { return 0.0; };
    EXPECT_THROW(cem_maximize(objective, x0, bad, rng), std::invalid_argument);
    bad.elites = 100;
    bad.population = 10;
    EXPECT_THROW(cem_maximize(objective, x0, bad, rng), std::invalid_argument);
}

TEST(Cem, MaximizesSmoothQuadratic) {
    const std::vector<double> target{2.0, -1.0, 0.5, 3.0};
    const auto objective = [&](std::span<const double> x, Rng&) {
        double loss = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            loss += (x[i] - target[i]) * (x[i] - target[i]);
        }
        return -loss;
    };
    CemConfig config;
    config.generations = 60;
    Rng rng(2);
    const std::vector<double> x0(4, 0.0);
    const auto result = cem_maximize(objective, x0, config, rng);
    EXPECT_GT(result.best_score, -0.05);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(result.best_parameters[i], target[i], 0.2);
    }
}

TEST(Cem, HandlesNoisyObjective) {
    // Noisy 1-D objective with optimum at 1.5.
    const auto objective = [](std::span<const double> x, Rng& rng) {
        return -(x[0] - 1.5) * (x[0] - 1.5) + 0.05 * rng.normal();
    };
    CemConfig config;
    config.generations = 50;
    Rng rng(3);
    const std::vector<double> x0{-3.0};
    const auto result = cem_maximize(objective, x0, config, rng);
    EXPECT_NEAR(result.best_parameters[0], 1.5, 0.4);
}

TEST(Cem, HistoryIsMonotoneInBestScoreEnvelope) {
    const auto objective = [](std::span<const double> x, Rng&) { return -x[0] * x[0]; };
    CemConfig config;
    config.generations = 20;
    Rng rng(4);
    const std::vector<double> x0{5.0};
    const auto result = cem_maximize(objective, x0, config, rng);
    ASSERT_EQ(result.history.size(), 20u);
    // The running best (envelope) never decreases.
    double best = -1e300;
    for (const auto& g : result.history) {
        best = std::max(best, g.best_score);
        EXPECT_LE(g.elite_mean_score, g.best_score + 1e-12);
        EXPECT_LE(g.population_mean_score, g.best_score + 1e-12);
    }
    EXPECT_GE(result.best_score, best - 1e-12);
}

TEST(Cem, NoiseFloorKeepsStdPositive) {
    const auto objective = [](std::span<const double> x, Rng&) { return -x[0] * x[0]; };
    CemConfig config;
    config.generations = 100;
    config.min_std = 0.05;
    Rng rng(5);
    const std::vector<double> x0{0.0};
    const auto result = cem_maximize(objective, x0, config, rng);
    EXPECT_GE(result.history.back().mean_std, 0.05 - 1e-12);
}

TEST(Cem, DeterministicGivenSeed) {
    const auto objective = [](std::span<const double> x, Rng& rng) {
        return -(x[0] - 2.0) * (x[0] - 2.0) + 0.01 * rng.normal();
    };
    CemConfig config;
    config.generations = 10;
    auto run = [&] {
        Rng rng(42);
        const std::vector<double> x0{0.0};
        return cem_maximize(objective, x0, config, rng).best_score;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

} // namespace
} // namespace mflb::rl
