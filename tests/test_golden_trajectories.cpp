// Golden determinism tests: for fixed seeds, the unified-simulation-core
// refactor must reproduce the episode statistics of the pre-refactor (seed)
// implementations bit for bit. The constants below were recorded by running
// the seed implementation (commit 565c5b6) with exactly these configurations
// and printing every field at %.17g, which round-trips doubles exactly.
//
// If one of these tests fails, the λ-chain draw order, the per-epoch kernels,
// the episode accumulation arithmetic, or the uniformization arithmetic
// changed — all of which silently invalidate every experiment that cites
// earlier numbers. Do not update the constants unless the change is an
// intentional, documented semantics change.
#include "core/mflb.hpp"

#include <gtest/gtest.h>

namespace mflb {
namespace {

TEST(GoldenTrajectories, FiniteSystemAggregatedJsq) {
    FiniteSystemConfig config;
    config.dt = 2.0;
    config.num_queues = 32;
    config.num_clients = 1024;
    config.horizon = 25;
    FiniteSystem system(config);
    const FixedRulePolicy jsq = make_jsq_policy(system.tuple_space());
    Rng rng(42);
    system.reset(rng);
    const EpisodeStats stats = system.run_episode(jsq, rng);
    EXPECT_EQ(stats.total_drops_per_queue, 0.875);
    EXPECT_EQ(stats.discounted_return, -0.76428769636375038);
    EXPECT_EQ(stats.dropped_packets, 28u);
    EXPECT_EQ(stats.accepted_packets, 1190u);
    EXPECT_EQ(stats.mean_queue_length, 1.4836709609789158);
    EXPECT_EQ(stats.server_utilization, 0.68429241238798344);
    EXPECT_EQ(stats.drops_per_epoch.size(), 25u);
}

TEST(GoldenTrajectories, FiniteSystemPerClientRnd) {
    FiniteSystemConfig config;
    config.dt = 3.0;
    config.num_queues = 16;
    config.num_clients = 200;
    config.horizon = 10;
    config.client_model = ClientModel::PerClient;
    FiniteSystem system(config);
    const FixedRulePolicy rnd = make_rnd_policy(system.tuple_space());
    Rng rng(7);
    system.reset(rng);
    const EpisodeStats stats = system.run_episode(rnd, rng);
    EXPECT_EQ(stats.total_drops_per_queue, 2.0);
    EXPECT_EQ(stats.discounted_return, -1.918138342388084);
    EXPECT_EQ(stats.dropped_packets, 32u);
    EXPECT_EQ(stats.accepted_packets, 345u);
    EXPECT_EQ(stats.mean_queue_length, 1.8213789813900392);
    EXPECT_EQ(stats.server_utilization, 0.69627632740769607);
}

TEST(GoldenTrajectories, FiniteSystemInfiniteClientsSojournSampledHistogram) {
    FiniteSystemConfig config;
    config.dt = 2.0;
    config.num_queues = 20;
    config.horizon = 12;
    config.client_model = ClientModel::InfiniteClients;
    config.track_sojourn = true;
    config.histogram_sample_size = 8;
    FiniteSystem system(config);
    const FixedRulePolicy jsq = make_jsq_policy(system.tuple_space());
    Rng rng(11);
    system.reset(rng);
    const EpisodeStats stats = system.run_episode(jsq, rng);
    EXPECT_EQ(stats.total_drops_per_queue, 0.70000000000000007);
    EXPECT_EQ(stats.discounted_return, -0.64604749813255746);
    EXPECT_EQ(stats.dropped_packets, 14u);
    EXPECT_EQ(stats.accepted_packets, 395u);
    EXPECT_EQ(stats.mean_queue_length, 1.8009749698492543);
    EXPECT_EQ(stats.server_utilization, 0.74497660532051346);
    EXPECT_EQ(stats.mean_sojourn, 2.1016641979868171);
    EXPECT_EQ(stats.completed_jobs, 358u);
}

TEST(GoldenTrajectories, FiniteSystemConditionedLambdaReplay) {
    FiniteSystemConfig config;
    config.dt = 2.0;
    config.num_queues = 24;
    config.num_clients = 576;
    config.horizon = 8;
    FiniteSystem system(config);
    const FixedRulePolicy jsq = make_jsq_policy(system.tuple_space());
    Rng rng(13);
    system.reset_conditioned({0, 1, 1, 0, 1, 0, 0, 1}, rng);
    const EpisodeStats stats = system.run_episode(jsq, rng);
    EXPECT_EQ(stats.total_drops_per_queue, 0.25);
    EXPECT_EQ(stats.discounted_return, -0.23816793535424996);
    EXPECT_EQ(stats.dropped_packets, 6u);
    EXPECT_EQ(stats.accepted_packets, 276u);
    EXPECT_EQ(stats.mean_queue_length, 1.0851601332071785);
    EXPECT_EQ(stats.server_utilization, 0.5906059864217259);
}

TEST(GoldenTrajectories, HeterogeneousSystemSedAndJsq) {
    HeterogeneousConfig config;
    config.dt = 2.0;
    config.num_clients = 600;
    config.horizon = 15;
    config.service_rates.assign(24, 0.5);
    for (std::size_t j = 12; j < 24; ++j) {
        config.service_rates[j] = 1.5;
    }
    {
        HeterogeneousSystem system(config);
        Rng rng(7);
        system.reset(rng);
        const HeterogeneousEpisodeStats stats = system.run_episode(HeteroSedPolicy{}, rng);
        EXPECT_EQ(stats.total_drops_per_queue, 0.125);
        EXPECT_EQ(stats.dropped_packets, 3u);
        EXPECT_EQ(stats.mean_queue_length, 0.94291979141716764);
    }
    {
        HeterogeneousSystem system(config);
        Rng rng(7);
        system.reset(rng);
        const HeterogeneousEpisodeStats stats = system.run_episode(HeteroJsqPolicy{}, rng);
        EXPECT_EQ(stats.total_drops_per_queue, 0.41666666666666669);
        EXPECT_EQ(stats.dropped_packets, 10u);
        EXPECT_EQ(stats.mean_queue_length, 1.8354116982129844);
    }
}

TEST(GoldenTrajectories, MemorySystemAllDisciplines) {
    MemorySystemConfig config;
    config.dt = 3.0;
    config.num_queues = 20;
    config.num_clients = 400;
    config.horizon = 12;
    const auto run = [&](MemoryDiscipline discipline) {
        MemorySystem system(config);
        Rng rng(9);
        system.reset(rng);
        return system.run_episode(discipline, rng);
    };
    const MemoryEpisodeStats with_memory = run(MemoryDiscipline::JsqDMemory);
    EXPECT_EQ(with_memory.total_drops_per_queue, 3.1000000000000005);
    EXPECT_EQ(with_memory.dropped_packets, 62u);
    EXPECT_EQ(with_memory.memory_hit_rate, 0.15229166666666666);
    const MemoryEpisodeStats jsq = run(MemoryDiscipline::JsqD);
    EXPECT_EQ(jsq.total_drops_per_queue, 2.5000000000000004);
    EXPECT_EQ(jsq.dropped_packets, 50u);
    EXPECT_EQ(jsq.memory_hit_rate, 0.0);
    const MemoryEpisodeStats rnd = run(MemoryDiscipline::Random);
    EXPECT_EQ(rnd.total_drops_per_queue, 3.7499999999999991);
    EXPECT_EQ(rnd.dropped_packets, 75u);
    EXPECT_EQ(rnd.memory_hit_rate, 0.0);
}

// The DES constants below were recorded immediately before the classical-
// router / service-distribution refactor (PR 6) by running the pre-refactor
// library with exactly these configurations and printing every field at
// %.17g. They pin that making the learned-policy path "just another router"
// and threading `ServiceDistribution` through the departure sampling changed
// no draw order: default-configured (exponential service, homogeneous,
// RouterKind::Policy) trajectories are bit-identical.

TEST(GoldenTrajectories, DesSystemAggregatedJsq) {
    FiniteSystemConfig config;
    config.dt = 2.0;
    config.num_queues = 32;
    config.num_clients = 1024;
    config.horizon = 25;
    DesSystem system(config);
    const FixedRulePolicy jsq = make_jsq_policy(system.tuple_space());
    Rng rng(42);
    system.reset(rng);
    const DesEpisodeStats stats = system.run_episode(jsq, rng);
    EXPECT_EQ(stats.total_drops_per_queue, 1.0);
    EXPECT_EQ(stats.discounted_return, -0.86067758478825251);
    EXPECT_EQ(stats.dropped_packets, 32u);
    EXPECT_EQ(stats.accepted_packets, 1256u);
    EXPECT_EQ(stats.mean_queue_length, 1.6507903627875129);
    EXPECT_EQ(stats.server_utilization, 0.74747060449519764);
}

TEST(GoldenTrajectories, DesSystemInfiniteClientsSojourn) {
    FiniteSystemConfig config;
    config.dt = 2.0;
    config.num_queues = 20;
    config.horizon = 12;
    config.client_model = ClientModel::InfiniteClients;
    config.track_sojourn = true;
    config.histogram_sample_size = 8;
    DesSystem system(config);
    const FixedRulePolicy jsq = make_jsq_policy(system.tuple_space());
    Rng rng(11);
    system.reset(rng);
    const DesEpisodeStats stats = system.run_episode(jsq, rng);
    EXPECT_EQ(stats.total_drops_per_queue, 0.39999999999999997);
    EXPECT_EQ(stats.discounted_return, -0.36636664714822881);
    EXPECT_EQ(stats.dropped_packets, 8u);
    EXPECT_EQ(stats.accepted_packets, 390u);
    EXPECT_EQ(stats.mean_queue_length, 1.8958546041809639);
    EXPECT_EQ(stats.server_utilization, 0.74700190425917834);
    EXPECT_EQ(stats.mean_sojourn, 2.265656641594195);
    EXPECT_EQ(stats.completed_jobs, 344u);
    EXPECT_EQ(stats.sojourn_p50, 2.0447252678176548);
    EXPECT_EQ(stats.sojourn_p95, 6.5737123388702763);
    EXPECT_EQ(stats.sojourn_p99, 8.3995788166603766);
}

TEST(GoldenTrajectories, ShardedDesSystemJsqFourShards) {
    FiniteSystemConfig config;
    config.dt = 2.0;
    config.num_queues = 32;
    config.num_clients = 1024;
    config.horizon = 20;
    config.shards = 4;
    config.threads = 1;
    config.track_sojourn = true;
    ShardedDesSystem system(config);
    const FixedRulePolicy jsq = make_jsq_policy(system.tuple_space());
    Rng rng(17);
    system.reset(rng);
    const DesEpisodeStats stats = system.run_episode(jsq, rng);
    EXPECT_EQ(stats.total_drops_per_queue, 1.40625);
    EXPECT_EQ(stats.discounted_return, -1.285366496445121);
    EXPECT_EQ(stats.dropped_packets, 45u);
    EXPECT_EQ(stats.accepted_packets, 1107u);
    EXPECT_EQ(stats.mean_queue_length, 2.181333954344479);
    EXPECT_EQ(stats.server_utilization, 0.82121935764764054);
    EXPECT_EQ(stats.mean_sojourn, 2.5498712371932548);
    EXPECT_EQ(stats.completed_jobs, 1040u);
    EXPECT_EQ(stats.sojourn_p50, 2.1218704901352634);
    EXPECT_EQ(stats.sojourn_p95, 6.4929983753803757);
    EXPECT_EQ(stats.sojourn_p99, 9.9516727812447687);
}

TEST(GoldenTrajectories, MfcEnvUniformizationArithmetic) {
    // Pins the ExactDiscretization workspace rewrite: a 20-epoch mean-field
    // rollout must match the seed implementation's per-call uniformization
    // exactly, both in the summed stage costs and in the final state ν.
    MfcConfig config;
    config.dt = 5.0;
    config.horizon = 20;
    MfcEnv env(config);
    const DecisionRule jsq = DecisionRule::mf_jsq(TupleSpace(config.queue.num_states(), 2));
    Rng rng(5);
    env.reset(rng);
    double total = 0.0;
    while (!env.done()) {
        total += env.step(jsq, rng).drops;
    }
    EXPECT_EQ(total, 4.6231605630382822);
    const std::vector<double> expected_nu{0.25772971413889179, 0.18440906461857923,
                                          0.16184477448777165, 0.14165750175894212,
                                          0.12619069034436833, 0.12816825465044371};
    ASSERT_EQ(env.nu().size(), expected_nu.size());
    for (std::size_t z = 0; z < expected_nu.size(); ++z) {
        EXPECT_EQ(env.nu()[z], expected_nu[z]) << "z=" << z;
    }
}

} // namespace
} // namespace mflb
