// Tests for the finite N-client/M-queue simulator (Algorithm 1), including
// the exact-equivalence of the aggregated client model.
#include "queueing/finite_system.hpp"
#include "policies/fixed.hpp"
#include "support/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace mflb {
namespace {

FiniteSystemConfig small_config(ClientModel model = ClientModel::Aggregated) {
    FiniteSystemConfig config;
    config.num_queues = 50;
    config.num_clients = 2500;
    config.dt = 5.0;
    config.horizon = 10;
    config.client_model = model;
    return config;
}

TEST(FiniteSystem, ValidatesConfig) {
    FiniteSystemConfig bad = small_config();
    bad.num_queues = 0;
    EXPECT_THROW(FiniteSystem{bad}, std::invalid_argument);
    bad = small_config();
    bad.horizon = 0;
    EXPECT_THROW(FiniteSystem{bad}, std::invalid_argument);
    bad = small_config();
    bad.num_clients = 0;
    EXPECT_THROW(FiniteSystem{bad}, std::invalid_argument);
    bad = small_config(ClientModel::InfiniteClients);
    bad.num_clients = 0; // allowed: client count is irrelevant at N = ∞
    EXPECT_NO_THROW(FiniteSystem{bad});
}

TEST(FiniteSystem, ResetStartsEmptyByDefault) {
    FiniteSystem system(small_config());
    Rng rng(1);
    system.reset(rng);
    for (int z : system.queue_states()) {
        EXPECT_EQ(z, 0);
    }
    const auto hist = system.empirical_distribution();
    EXPECT_DOUBLE_EQ(hist[0], 1.0);
}

TEST(FiniteSystem, EmpiricalDistributionSumsToOne) {
    FiniteSystem system(small_config());
    Rng rng(2);
    system.reset(rng);
    const FixedRulePolicy rnd = make_rnd_policy(system.tuple_space());
    for (int t = 0; t < 5; ++t) {
        system.step(rnd, rng);
        const auto hist = system.empirical_distribution();
        const double sum = std::accumulate(hist.begin(), hist.end(), 0.0);
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(FiniteSystem, RatesConserveTotalArrivalMass) {
    // Σ_j λ^j = M·λ exactly (every client routes somewhere), eq. (5).
    for (const ClientModel model :
         {ClientModel::PerClient, ClientModel::Aggregated, ClientModel::InfiniteClients}) {
        FiniteSystem system(small_config(model));
        Rng rng(3);
        system.reset(rng);
        const FixedRulePolicy jsq = make_jsq_policy(system.tuple_space());
        // Step a few epochs so states spread out.
        for (int t = 0; t < 3; ++t) {
            system.step(jsq, rng);
        }
        const DecisionRule rule = DecisionRule::mf_jsq(system.tuple_space());
        const auto rates = system.compute_queue_rates(rule, rng);
        const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
        const double expected =
            static_cast<double>(system.config().num_queues) * system.lambda_value();
        EXPECT_NEAR(total, expected, 1e-9) << "model=" << static_cast<int>(model);
    }
}

TEST(FiniteSystem, AggregatedMatchesPerClientInDistribution) {
    // The exact multinomial aggregation must give the same drop statistics
    // as literal per-client simulation. 60 episodes each; means must agree
    // within joint CI.
    RunningStat per_client, aggregated;
    for (int rep = 0; rep < 60; ++rep) {
        for (const ClientModel model : {ClientModel::PerClient, ClientModel::Aggregated}) {
            FiniteSystemConfig config = small_config(model);
            FiniteSystem system(config);
            Rng rng(1000 + rep);
            system.reset(rng);
            const FixedRulePolicy jsq = make_jsq_policy(system.tuple_space());
            const EpisodeStats stats = system.run_episode(jsq, rng);
            (model == ClientModel::PerClient ? per_client : aggregated)
                .add(stats.total_drops_per_queue);
        }
    }
    const double joint_err = 3.0 * std::sqrt(per_client.standard_error() *
                                                 per_client.standard_error() +
                                             aggregated.standard_error() *
                                                 aggregated.standard_error());
    EXPECT_NEAR(per_client.mean(), aggregated.mean(), joint_err + 0.05);
}

TEST(FiniteSystem, InfiniteClientRatesEqualMeanFieldFlow) {
    FiniteSystem system(small_config(ClientModel::InfiniteClients));
    Rng rng(4);
    system.reset(rng);
    const FixedRulePolicy rnd = make_rnd_policy(system.tuple_space());
    for (int t = 0; t < 4; ++t) {
        system.step(rnd, rng);
    }
    const DecisionRule rule = DecisionRule::mf_rnd(system.tuple_space());
    const auto rates = system.compute_queue_rates(rule, rng);
    // Under RND at N = ∞ every queue sees exactly λ.
    for (double r : rates) {
        EXPECT_NEAR(r, system.lambda_value(), 1e-12);
    }
}

TEST(FiniteSystem, EpisodeStatsAccumulate) {
    FiniteSystem system(small_config());
    Rng rng(5);
    system.reset(rng);
    const FixedRulePolicy rnd = make_rnd_policy(system.tuple_space());
    const EpisodeStats stats = system.run_episode(rnd, rng);
    EXPECT_EQ(stats.drops_per_epoch.size(), 10u);
    const double sum =
        std::accumulate(stats.drops_per_epoch.begin(), stats.drops_per_epoch.end(), 0.0);
    EXPECT_NEAR(stats.total_drops_per_queue, sum, 1e-12);
    EXPECT_LE(stats.discounted_return, 0.0);
    EXPECT_GE(stats.mean_queue_length, 0.0);
    EXPECT_LE(stats.mean_queue_length, 5.0);
    EXPECT_GE(stats.server_utilization, 0.0);
    EXPECT_LE(stats.server_utilization, 1.0);
    EXPECT_TRUE(system.done());
    EXPECT_THROW(system.step(rnd, rng), std::logic_error);
}

TEST(FiniteSystem, ConditionedLambdaPathIsFollowed) {
    FiniteSystem system(small_config());
    Rng rng(6);
    const std::vector<std::size_t> path{1, 1, 0, 0, 1, 0, 1, 1, 0, 0};
    system.reset_conditioned(path, rng);
    const FixedRulePolicy rnd = make_rnd_policy(system.tuple_space());
    for (std::size_t t = 0; t < path.size(); ++t) {
        EXPECT_EQ(system.lambda_state(), path[t]) << "t=" << t;
        system.step(rnd, rng);
    }
}

TEST(FiniteSystem, SojournTrackingConservation) {
    FiniteSystemConfig config = small_config();
    config.track_sojourn = true;
    FiniteSystem system(config);
    Rng rng(31);
    system.reset(rng);
    const FixedRulePolicy rnd = make_rnd_policy(system.tuple_space());
    std::uint64_t completed = 0, served = 0;
    while (!system.done()) {
        const EpochStats epoch = system.step(rnd, rng);
        completed += epoch.completed_jobs;
        served += epoch.served_packets;
        if (epoch.completed_jobs > 0) {
            EXPECT_GT(epoch.mean_sojourn, 0.0);
        }
    }
    // Every completed service produces exactly one sojourn sample.
    EXPECT_EQ(completed, served);
}

TEST(FiniteSystem, SojournMatchesMm1bOracleUnderRnd) {
    // Under RND with constant λ every queue is an independent M/M/1/B with
    // arrival rate λ, so the long-run mean sojourn matches the closed form.
    FiniteSystemConfig config;
    config.num_queues = 60;
    config.num_clients = 3600;
    config.dt = 5.0;
    config.horizon = 200;
    config.arrivals = ArrivalProcess::constant(0.8);
    config.track_sojourn = true;
    FiniteSystem system(config);
    Rng rng(33);
    system.reset(rng);
    const FixedRulePolicy rnd = make_rnd_policy(system.tuple_space());
    const EpisodeStats stats = system.run_episode(rnd, rng);
    const double oracle = mm1b_mean_sojourn(0.8, 1.0, 5);
    // Includes a warm-up transient from empty, which shortens sojourns
    // slightly; allow a few percent.
    EXPECT_NEAR(stats.mean_sojourn, oracle, 0.08 * oracle);
    EXPECT_GT(stats.completed_jobs, 10000u);
}

TEST(FiniteSystem, SojournJsqShorterThanRndAtSmallDelay) {
    auto mean_sojourn = [&](auto&& factory) {
        FiniteSystemConfig config = small_config();
        config.dt = 1.0;
        config.horizon = 100;
        config.track_sojourn = true;
        FiniteSystem system(config);
        Rng rng(35);
        system.reset(rng);
        const auto policy = factory(system.tuple_space());
        return system.run_episode(policy, rng).mean_sojourn;
    };
    const double jsq = mean_sojourn([](const TupleSpace& s) { return make_jsq_policy(s); });
    const double rnd = mean_sojourn([](const TupleSpace& s) { return make_rnd_policy(s); });
    EXPECT_LT(jsq, rnd);
}

TEST(FiniteSystem, ObservedDistributionExactWhenNotSampling) {
    FiniteSystem system(small_config());
    Rng rng(37);
    system.reset(rng);
    const auto exact = system.empirical_distribution();
    const auto observed = system.observed_distribution(rng);
    for (std::size_t z = 0; z < exact.size(); ++z) {
        EXPECT_DOUBLE_EQ(exact[z], observed[z]);
    }
}

TEST(FiniteSystem, SampledHistogramIsUnbiasedEstimate) {
    FiniteSystemConfig config = small_config();
    config.histogram_sample_size = 10;
    FiniteSystem system(config);
    Rng rng(39);
    system.reset(rng);
    const FixedRulePolicy rnd = make_rnd_policy(system.tuple_space());
    for (int t = 0; t < 4; ++t) {
        system.step(rnd, rng);
    }
    const auto exact = system.empirical_distribution();
    // Average many sampled estimates: must converge to the exact histogram.
    std::vector<double> mean(exact.size(), 0.0);
    const int reps = 4000;
    for (int rep = 0; rep < reps; ++rep) {
        const auto est = system.observed_distribution(rng);
        for (std::size_t z = 0; z < est.size(); ++z) {
            mean[z] += est[z] / reps;
        }
    }
    for (std::size_t z = 0; z < exact.size(); ++z) {
        EXPECT_NEAR(mean[z], exact[z], 0.01) << "z=" << z;
    }
}

TEST(FiniteSystem, PartialInformationStillRunsEpisodes) {
    FiniteSystemConfig config = small_config();
    config.histogram_sample_size = 3; // extremely noisy view
    FiniteSystem system(config);
    Rng rng(41);
    system.reset(rng);
    const FixedRulePolicy jsq = make_jsq_policy(system.tuple_space());
    const EpisodeStats stats = system.run_episode(jsq, rng);
    EXPECT_GE(stats.total_drops_per_queue, 0.0);
    EXPECT_TRUE(system.done());
}

TEST(FiniteSystem, JsqHerdingUnderLargeDelay) {
    // Sanity check of the paper's motivating phenomenon: with a large Δt,
    // JSQ(2) should NOT beat RND (herding hurts it); with tiny Δt it should
    // clearly beat RND. We compare mean drops over replications.
    auto mean_drops = [&](double dt, auto&& policy_factory) {
        FiniteSystemConfig config = small_config();
        config.dt = dt;
        config.horizon = static_cast<int>(std::lround(150.0 / dt));
        RunningStat drops;
        for (int rep = 0; rep < 30; ++rep) {
            FiniteSystem system(config);
            Rng rng(42 + rep);
            system.reset(rng);
            const auto policy = policy_factory(system.tuple_space());
            drops.add(system.run_episode(policy, rng).total_drops_per_queue);
        }
        return drops.mean();
    };
    const double jsq_small_dt = mean_drops(1.0, [](const TupleSpace& s) { return make_jsq_policy(s); });
    const double rnd_small_dt = mean_drops(1.0, [](const TupleSpace& s) { return make_rnd_policy(s); });
    EXPECT_LT(jsq_small_dt, rnd_small_dt);

    const double jsq_large_dt = mean_drops(10.0, [](const TupleSpace& s) { return make_jsq_policy(s); });
    const double rnd_large_dt = mean_drops(10.0, [](const TupleSpace& s) { return make_rnd_policy(s); });
    // Herding: JSQ loses its edge (allow a small tolerance on the compare).
    EXPECT_GT(jsq_large_dt, rnd_large_dt * 0.9);
}

} // namespace
} // namespace mflb
