// Cross-backend equivalence of the classical routers. The weight-law routers
// (random, jsq, jsq-d, sq-stale) feed the identical epoch-barrier law to all
// three backends — frozen Poisson rates on FiniteSystem, thinned aggregated
// streams on DesSystem, per-shard masses on ShardedDesSystem — so their drop
// statistics must agree within Monte Carlo confidence intervals. sq-stale
// with a zero refresh period goes through the same code path as jsq and is
// pinned bit-identical to it; sharded results stay bit-identical across
// thread counts even when the service law consumes multiple draws per sample.
#include "core/mflb.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

FiniteSystemConfig fleet_config(RouterSpec router) {
    FiniteSystemConfig config;
    config.num_queues = 24;
    config.dt = 2.0;
    config.horizon = 60;
    config.shards = 4;
    config.threads = 1;
    config.router = router;
    return config;
}

template <class System>
ConfidenceInterval drops_ci(const FiniteSystemConfig& config, std::size_t episodes,
                            std::uint64_t seed) {
    const auto drops = run_replications(episodes, seed, 0, [&](std::size_t, Rng& rng) {
        System system(config);
        system.reset(rng);
        return system.run_episode(rng).total_drops_per_queue;
    });
    RunningStat stat;
    for (const double d : drops) {
        stat.add(d);
    }
    return confidence_interval_95(stat);
}

void expect_overlap(const ConfidenceInterval& a, const ConfidenceInterval& b,
                    const char* label) {
    // Same distribution => the 95% intervals overlap (tiny slack absorbs the
    // case of two very tight intervals around the same mean).
    const double gap = std::abs(a.mean - b.mean);
    const double reach = a.half_width + b.half_width + 0.05 * std::max(a.mean, b.mean);
    EXPECT_LE(gap, reach) << label << ": " << a.mean << " +- " << a.half_width << " vs "
                          << b.mean << " +- " << b.half_width;
}

TEST(RouterEquivalence, WeightLawRoutersAgreeAcrossBackends) {
    const RouterSpec specs[] = {
        {RouterKind::Random, 2, 0.0},
        {RouterKind::Jsq, 2, 0.0},
        {RouterKind::JsqD, 2, 0.0},
        {RouterKind::SqStale, 2, 6.0},
    };
    for (const RouterSpec& spec : specs) {
        const FiniteSystemConfig config = fleet_config(spec);
        const std::size_t episodes = 12;
        const ConfidenceInterval finite = drops_ci<FiniteSystem>(config, episodes, 11);
        const ConfidenceInterval des = drops_ci<DesSystem>(config, episodes, 11);
        const ConfidenceInterval sharded = drops_ci<ShardedDesSystem>(config, episodes, 11);
        const std::string label(router_name(spec.kind));
        expect_overlap(finite, des, (label + " finite/des").c_str());
        expect_overlap(finite, sharded, (label + " finite/sharded").c_str());
        expect_overlap(des, sharded, (label + " des/sharded").c_str());
    }
}

TEST(RouterEquivalence, RoundRobinAgreesOnEventBackends) {
    // Round-robin is a cyclic cursor, not a weight law: the global cursor of
    // DesSystem and the shard-local cursors of ShardedDesSystem are distinct
    // realizations of the same near-deterministic cycle, so they agree in
    // distribution (FiniteSystem only carries its equal-split mean behavior
    // and is excluded by design — see queueing/router.hpp).
    const FiniteSystemConfig config = fleet_config({RouterKind::RoundRobin, 2, 0.0});
    const ConfidenceInterval des = drops_ci<DesSystem>(config, 12, 23);
    const ConfidenceInterval sharded = drops_ci<ShardedDesSystem>(config, 12, 23);
    expect_overlap(des, sharded, "round-robin des/sharded");
}

template <class System>
void expect_same_episode(const FiniteSystemConfig& a, const FiniteSystemConfig& b,
                         std::uint64_t seed, const char* label) {
    System sys_a(a);
    System sys_b(b);
    Rng rng_a(seed);
    Rng rng_b(seed);
    sys_a.reset(rng_a);
    sys_b.reset(rng_b);
    const EpisodeStats ep_a = sys_a.run_episode(rng_a);
    const EpisodeStats ep_b = sys_b.run_episode(rng_b);
    EXPECT_DOUBLE_EQ(ep_a.total_drops_per_queue, ep_b.total_drops_per_queue) << label;
    EXPECT_DOUBLE_EQ(ep_a.discounted_return, ep_b.discounted_return) << label;
    EXPECT_EQ(ep_a.dropped_packets, ep_b.dropped_packets) << label;
    EXPECT_EQ(ep_a.accepted_packets, ep_b.accepted_packets) << label;
    EXPECT_DOUBLE_EQ(ep_a.mean_queue_length, ep_b.mean_queue_length) << label;
    EXPECT_DOUBLE_EQ(ep_a.server_utilization, ep_b.server_utilization) << label;
}

TEST(RouterEquivalence, SqStaleAtZeroPeriodIsExactlyJsq) {
    // stale_period = 0 refreshes the frozen snapshot every epoch, which must
    // reproduce jsq bit for bit on every backend (identical weight law,
    // identical draw order) — the regression pin for the staleness knob.
    const FiniteSystemConfig jsq = fleet_config({RouterKind::Jsq, 2, 0.0});
    const FiniteSystemConfig sq0 = fleet_config({RouterKind::SqStale, 2, 0.0});
    expect_same_episode<FiniteSystem>(jsq, sq0, 31, "finite");
    expect_same_episode<DesSystem>(jsq, sq0, 31, "des");
    expect_same_episode<ShardedDesSystem>(jsq, sq0, 31, "sharded");
}

TEST(RouterEquivalence, RouterPathIgnoresThePolicyArgument) {
    // With a classical router configured, step(policy) forwards to the
    // router kernel: the policy-taking episode overload must reproduce the
    // router-only overload exactly.
    const FiniteSystemConfig config = fleet_config({RouterKind::Jsq, 2, 0.0});
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy decoy = make_rnd_policy(space);
    DesSystem with_policy(config);
    DesSystem router_only(config);
    Rng rng_a(5);
    Rng rng_b(5);
    with_policy.reset(rng_a);
    router_only.reset(rng_b);
    const EpisodeStats ep_a = with_policy.run_episode(decoy, rng_a);
    const EpisodeStats ep_b = router_only.run_episode(rng_b);
    EXPECT_DOUBLE_EQ(ep_a.total_drops_per_queue, ep_b.total_drops_per_queue);
    EXPECT_EQ(ep_a.accepted_packets, ep_b.accepted_packets);
}

TEST(RouterEquivalence, ShardedThreadCountInvariantWithGeneralService) {
    // The (seed, K) determinism contract must survive multi-draw service
    // sampling: hyperexponential consumes two draws per service time and the
    // bounded Pareto reshapes every departure, so any cross-shard draw-order
    // leak would break bit-equality between thread counts.
    for (const ServiceDistKind kind :
         {ServiceDistKind::HyperExp, ServiceDistKind::BoundedPareto}) {
        FiniteSystemConfig config = fleet_config({RouterKind::Jsq, 2, 0.0});
        config.service.kind = kind;
        config.track_sojourn = true;
        FiniteSystemConfig two = config;
        two.threads = 2;
        FiniteSystemConfig eight = config;
        eight.threads = 8;
        expect_same_episode<ShardedDesSystem>(config, two, 47,
                                              service_dist_name(kind).data());
        expect_same_episode<ShardedDesSystem>(config, eight, 47,
                                              service_dist_name(kind).data());
    }
}

} // namespace
} // namespace mflb
