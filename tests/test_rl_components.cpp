// Tests for the Gaussian policy head and the GAE rollout buffer.
#include "rl/gaussian_policy.hpp"
#include "rl/rollout_buffer.hpp"
#include "support/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb::rl {
namespace {

TEST(GaussianPolicy, MomentsShapeAndClamping) {
    Rng rng(1);
    GaussianPolicy policy(4, 3, {16}, rng);
    EXPECT_EQ(policy.obs_dim(), 4u);
    EXPECT_EQ(policy.action_dim(), 3u);
    const std::vector<double> obs{0.1, 0.2, 0.3, 0.4};
    const auto m = policy.moments(obs);
    ASSERT_EQ(m.mean.size(), 3u);
    ASSERT_EQ(m.log_std.size(), 3u);
    for (double ls : m.log_std) {
        EXPECT_GE(ls, GaussianPolicy::kMinLogStd);
        EXPECT_LE(ls, GaussianPolicy::kMaxLogStd);
    }
}

TEST(GaussianPolicy, SampleLogProbMatchesEvaluate) {
    Rng rng(2);
    GaussianPolicy policy(3, 2, {8, 8}, rng);
    const std::vector<double> obs{0.5, -0.1, 0.7};
    for (int rep = 0; rep < 20; ++rep) {
        const auto sample = policy.sample(obs, rng);
        Mlp::Workspace ws;
        const auto eval = policy.evaluate(obs, sample.action, ws);
        EXPECT_NEAR(sample.log_prob, eval.log_prob, 1e-10);
    }
}

TEST(GaussianPolicy, LogProbIsCorrectDensity) {
    // Against the closed form for a hand-built case: force mean/log_std by
    // evaluating a 1-action policy and recomputing the density.
    Rng rng(3);
    GaussianPolicy policy(2, 1, {4}, rng);
    const std::vector<double> obs{0.3, 0.6};
    const auto m = policy.moments(obs);
    const double action_value = m.mean[0] + 0.37;
    Mlp::Workspace ws;
    const auto eval = policy.evaluate(obs, std::vector<double>{action_value}, ws);
    const double sigma = std::exp(m.log_std[0]);
    const double z = (action_value - m.mean[0]) / sigma;
    const double expected =
        -0.5 * z * z - m.log_std[0] - 0.5 * std::log(2.0 * std::acos(-1.0));
    EXPECT_NEAR(eval.log_prob, expected, 1e-10);
    EXPECT_NEAR(eval.entropy, m.log_std[0] + 0.5 * (1.0 + std::log(2.0 * std::acos(-1.0))),
                1e-10);
}

TEST(GaussianPolicy, SampleMomentsMatchDistribution) {
    Rng rng(4);
    GaussianPolicy policy(2, 2, {8}, rng);
    const std::vector<double> obs{0.1, 0.9};
    const auto m = policy.moments(obs);
    RunningStat a0;
    for (int i = 0; i < 20000; ++i) {
        a0.add(policy.sample(obs, rng).action[0]);
    }
    EXPECT_NEAR(a0.mean(), m.mean[0], 5.0 * a0.standard_error());
    EXPECT_NEAR(a0.stddev(), std::exp(m.log_std[0]), 0.05 * std::exp(m.log_std[0]) + 0.01);
}

TEST(GaussianPolicy, SetInitialLogStdControlsNoise) {
    Rng rng(41);
    GaussianPolicy policy(3, 2, {8}, rng);
    policy.set_initial_log_std(-1.5);
    const std::vector<double> obs{0.1, 0.2, 0.3};
    const auto m = policy.moments(obs);
    // The head weights are ~0.01-scaled, so the bias dominates.
    EXPECT_NEAR(m.log_std[0], -1.5, 0.1);
    EXPECT_NEAR(m.log_std[1], -1.5, 0.1);
}

TEST(GaussianPolicy, SetInitialMeanWarmStartsActions) {
    Rng rng(43);
    GaussianPolicy policy(3, 2, {8}, rng);
    const std::vector<double> target{0.7, -2.0};
    policy.set_initial_mean(target);
    const std::vector<double> obs{0.5, 0.5, 0.5};
    const auto mean = policy.mean_action(obs);
    EXPECT_NEAR(mean[0], 0.7, 0.1);
    EXPECT_NEAR(mean[1], -2.0, 0.1);
    EXPECT_THROW(policy.set_initial_mean(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(GaussianPolicy, KlOfIdenticalIsZeroAndPositiveOtherwise) {
    GaussianPolicy::Moments a{{0.0, 1.0}, {0.0, -1.0}};
    EXPECT_NEAR(GaussianPolicy::kl(a, a), 0.0, 1e-12);
    GaussianPolicy::Moments b{{0.5, 1.0}, {0.0, -1.0}};
    EXPECT_GT(GaussianPolicy::kl(a, b), 0.0);
    GaussianPolicy::Moments c{{0.0, 1.0}, {0.5, -1.0}};
    EXPECT_GT(GaussianPolicy::kl(a, c), 0.0);
}

TEST(GaussianPolicy, BackwardMatchesFiniteDifferenceLogProb) {
    Rng rng(5);
    GaussianPolicy policy(3, 2, {6}, rng);
    const std::vector<double> obs{0.2, -0.4, 0.9};
    const std::vector<double> action{0.15, -0.3};

    Mlp::Workspace ws;
    const auto eval = policy.evaluate(obs, action, ws);
    std::vector<double> analytic(policy.parameter_count(), 0.0);
    policy.backward(ws, eval, action, /*c_logp=*/1.0, /*c_entropy=*/0.0, /*c_kl=*/0.0, nullptr,
                    analytic);

    GaussianPolicy probe = policy;
    std::vector<double> params(policy.network().parameters().begin(),
                               policy.network().parameters().end());
    const double eps = 1e-6;
    for (std::size_t i = 0; i < params.size(); i += 5) {
        std::vector<double> bumped = params;
        bumped[i] += eps;
        probe.network().set_parameters(bumped);
        Mlp::Workspace w1;
        const double up = probe.evaluate(obs, action, w1).log_prob;
        bumped[i] -= 2 * eps;
        probe.network().set_parameters(bumped);
        Mlp::Workspace w2;
        const double down = probe.evaluate(obs, action, w2).log_prob;
        const double numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(analytic[i], numeric, 1e-5 * std::max(1.0, std::abs(numeric)))
            << "param " << i;
    }
}

TEST(GaussianPolicy, BackwardMatchesFiniteDifferenceKl) {
    Rng rng(6);
    GaussianPolicy policy(2, 2, {6}, rng);
    const std::vector<double> obs{0.4, 0.1};
    const std::vector<double> action{0.0, 0.0};
    const GaussianPolicy::Moments old = policy.moments(std::vector<double>{-0.2, 0.3});

    Mlp::Workspace ws;
    const auto eval = policy.evaluate(obs, action, ws);
    std::vector<double> analytic(policy.parameter_count(), 0.0);
    policy.backward(ws, eval, action, 0.0, 0.0, /*c_kl=*/1.0, &old, analytic);

    GaussianPolicy probe = policy;
    std::vector<double> params(policy.network().parameters().begin(),
                               policy.network().parameters().end());
    const double eps = 1e-6;
    auto kl_at = [&](const std::vector<double>& p) {
        probe.network().set_parameters(p);
        return GaussianPolicy::kl(old, probe.moments(obs));
    };
    for (std::size_t i = 0; i < params.size(); i += 5) {
        std::vector<double> bumped = params;
        bumped[i] += eps;
        const double up = kl_at(bumped);
        bumped[i] -= 2 * eps;
        const double down = kl_at(bumped);
        const double numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(analytic[i], numeric, 1e-5 * std::max(1.0, std::abs(numeric)))
            << "param " << i;
    }
}

TEST(RolloutBuffer, GaeMatchesHandComputation) {
    // Two-step episode, gamma=0.5, lambda=1: plain discounted advantages.
    RolloutBuffer buffer(4);
    Transition t1;
    t1.reward = 1.0;
    t1.value = 0.5;
    Transition t2;
    t2.reward = 2.0;
    t2.value = 0.25;
    t2.terminal = true;
    buffer.add(t1);
    buffer.add(t2);
    buffer.compute_gae(0.5, 1.0, /*bootstrap=*/0.0);
    // Returns: R2 = 2, R1 = 1 + 0.5*2 = 2. Advantages: A2 = 2-0.25, A1 = 2-0.5.
    EXPECT_NEAR(buffer.value_target(1), 2.0, 1e-12);
    EXPECT_NEAR(buffer.value_target(0), 2.0, 1e-12);
    EXPECT_NEAR(buffer.advantage(1), 1.75, 1e-12);
    EXPECT_NEAR(buffer.advantage(0), 1.5, 1e-12);
}

TEST(RolloutBuffer, GaeLambdaZeroIsTdError) {
    RolloutBuffer buffer(3);
    Transition t1;
    t1.reward = 1.0;
    t1.value = 0.3;
    Transition t2;
    t2.reward = 0.0;
    t2.value = 0.7;
    t2.terminal = true;
    buffer.add(t1);
    buffer.add(t2);
    buffer.compute_gae(0.9, 0.0, 0.0);
    EXPECT_NEAR(buffer.advantage(0), 1.0 + 0.9 * 0.7 - 0.3, 1e-12);
    EXPECT_NEAR(buffer.advantage(1), 0.0 - 0.7, 1e-12);
}

TEST(RolloutBuffer, BootstrapUsedForTruncation) {
    RolloutBuffer buffer(1);
    Transition t;
    t.reward = 1.0;
    t.value = 0.0;
    t.terminal = false; // truncated, not terminal
    buffer.add(t);
    buffer.compute_gae(1.0, 1.0, /*bootstrap=*/10.0);
    EXPECT_NEAR(buffer.advantage(0), 11.0, 1e-12);
}

TEST(RolloutBuffer, TerminalResetsAccumulation) {
    RolloutBuffer buffer(3);
    Transition a;
    a.reward = 5.0;
    a.value = 0.0;
    a.terminal = true;
    Transition b;
    b.reward = 1.0;
    b.value = 0.0;
    b.terminal = true;
    buffer.add(a);
    buffer.add(b);
    buffer.compute_gae(0.9, 1.0, 0.0);
    // Episode boundary: second episode's return must not leak into first.
    EXPECT_NEAR(buffer.value_target(0), 5.0, 1e-12);
    EXPECT_NEAR(buffer.value_target(1), 1.0, 1e-12);
}

TEST(RolloutBuffer, NormalizeAdvantagesZeroMeanUnitStd) {
    RolloutBuffer buffer(8);
    for (int i = 0; i < 8; ++i) {
        Transition t;
        t.reward = static_cast<double>(i);
        t.value = 0.0;
        t.terminal = true;
        buffer.add(t);
    }
    buffer.compute_gae(1.0, 1.0, 0.0);
    buffer.normalize_advantages();
    double mean = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
        mean += buffer.advantage(i);
        sq += buffer.advantage(i) * buffer.advantage(i);
    }
    mean /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(std::sqrt(sq / 8.0), 1.0, 1e-6);
}

TEST(RolloutBuffer, CapacityEnforced) {
    RolloutBuffer buffer(1);
    buffer.add(Transition{});
    EXPECT_TRUE(buffer.full());
    EXPECT_THROW(buffer.add(Transition{}), std::logic_error);
    buffer.clear();
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_THROW(RolloutBuffer(0), std::invalid_argument);
}

} // namespace
} // namespace mflb::rl
