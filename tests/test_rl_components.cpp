// Tests for the Gaussian policy head and the GAE rollout buffer.
#include "rl/gaussian_policy.hpp"
#include "rl/rollout_buffer.hpp"
#include "support/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb::rl {
namespace {

TEST(GaussianPolicy, MomentsShapeAndClamping) {
    Rng rng(1);
    GaussianPolicy policy(4, 3, {16}, rng);
    EXPECT_EQ(policy.obs_dim(), 4u);
    EXPECT_EQ(policy.action_dim(), 3u);
    const std::vector<double> obs{0.1, 0.2, 0.3, 0.4};
    const auto m = policy.moments(obs);
    ASSERT_EQ(m.mean.size(), 3u);
    ASSERT_EQ(m.log_std.size(), 3u);
    for (double ls : m.log_std) {
        EXPECT_GE(ls, GaussianPolicy::kMinLogStd);
        EXPECT_LE(ls, GaussianPolicy::kMaxLogStd);
    }
}

TEST(GaussianPolicy, SampleLogProbMatchesEvaluate) {
    Rng rng(2);
    GaussianPolicy policy(3, 2, {8, 8}, rng);
    const std::vector<double> obs{0.5, -0.1, 0.7};
    for (int rep = 0; rep < 20; ++rep) {
        const auto sample = policy.sample(obs, rng);
        Mlp::Workspace ws;
        const auto eval = policy.evaluate(obs, sample.action, ws);
        EXPECT_NEAR(sample.log_prob, eval.log_prob, 1e-10);
    }
}

TEST(GaussianPolicy, LogProbIsCorrectDensity) {
    // Against the closed form for a hand-built case: force mean/log_std by
    // evaluating a 1-action policy and recomputing the density.
    Rng rng(3);
    GaussianPolicy policy(2, 1, {4}, rng);
    const std::vector<double> obs{0.3, 0.6};
    const auto m = policy.moments(obs);
    const double action_value = m.mean[0] + 0.37;
    Mlp::Workspace ws;
    const auto eval = policy.evaluate(obs, std::vector<double>{action_value}, ws);
    const double sigma = std::exp(m.log_std[0]);
    const double z = (action_value - m.mean[0]) / sigma;
    const double expected =
        -0.5 * z * z - m.log_std[0] - 0.5 * std::log(2.0 * std::acos(-1.0));
    EXPECT_NEAR(eval.log_prob, expected, 1e-10);
    EXPECT_NEAR(eval.entropy, m.log_std[0] + 0.5 * (1.0 + std::log(2.0 * std::acos(-1.0))),
                1e-10);
}

TEST(GaussianPolicy, SampleMomentsMatchDistribution) {
    Rng rng(4);
    GaussianPolicy policy(2, 2, {8}, rng);
    const std::vector<double> obs{0.1, 0.9};
    const auto m = policy.moments(obs);
    RunningStat a0;
    for (int i = 0; i < 20000; ++i) {
        a0.add(policy.sample(obs, rng).action[0]);
    }
    EXPECT_NEAR(a0.mean(), m.mean[0], 5.0 * a0.standard_error());
    EXPECT_NEAR(a0.stddev(), std::exp(m.log_std[0]), 0.05 * std::exp(m.log_std[0]) + 0.01);
}

TEST(GaussianPolicy, SetInitialLogStdControlsNoise) {
    Rng rng(41);
    GaussianPolicy policy(3, 2, {8}, rng);
    policy.set_initial_log_std(-1.5);
    const std::vector<double> obs{0.1, 0.2, 0.3};
    const auto m = policy.moments(obs);
    // The head weights are ~0.01-scaled, so the bias dominates.
    EXPECT_NEAR(m.log_std[0], -1.5, 0.1);
    EXPECT_NEAR(m.log_std[1], -1.5, 0.1);
}

TEST(GaussianPolicy, SetInitialMeanWarmStartsActions) {
    Rng rng(43);
    GaussianPolicy policy(3, 2, {8}, rng);
    const std::vector<double> target{0.7, -2.0};
    policy.set_initial_mean(target);
    const std::vector<double> obs{0.5, 0.5, 0.5};
    const auto mean = policy.mean_action(obs);
    EXPECT_NEAR(mean[0], 0.7, 0.1);
    EXPECT_NEAR(mean[1], -2.0, 0.1);
    EXPECT_THROW(policy.set_initial_mean(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(GaussianPolicy, KlOfIdenticalIsZeroAndPositiveOtherwise) {
    GaussianPolicy::Moments a{{0.0, 1.0}, {0.0, -1.0}};
    EXPECT_NEAR(GaussianPolicy::kl(a, a), 0.0, 1e-12);
    GaussianPolicy::Moments b{{0.5, 1.0}, {0.0, -1.0}};
    EXPECT_GT(GaussianPolicy::kl(a, b), 0.0);
    GaussianPolicy::Moments c{{0.0, 1.0}, {0.5, -1.0}};
    EXPECT_GT(GaussianPolicy::kl(a, c), 0.0);
}

TEST(GaussianPolicy, BackwardMatchesFiniteDifferenceLogProb) {
    Rng rng(5);
    GaussianPolicy policy(3, 2, {6}, rng);
    const std::vector<double> obs{0.2, -0.4, 0.9};
    const std::vector<double> action{0.15, -0.3};

    Mlp::Workspace ws;
    const auto eval = policy.evaluate(obs, action, ws);
    std::vector<double> analytic(policy.parameter_count(), 0.0);
    policy.backward(ws, eval, action, /*c_logp=*/1.0, /*c_entropy=*/0.0, /*c_kl=*/0.0, nullptr,
                    analytic);

    GaussianPolicy probe = policy;
    std::vector<double> params(policy.network().parameters().begin(),
                               policy.network().parameters().end());
    const double eps = 1e-6;
    for (std::size_t i = 0; i < params.size(); i += 5) {
        std::vector<double> bumped = params;
        bumped[i] += eps;
        probe.network().set_parameters(bumped);
        Mlp::Workspace w1;
        const double up = probe.evaluate(obs, action, w1).log_prob;
        bumped[i] -= 2 * eps;
        probe.network().set_parameters(bumped);
        Mlp::Workspace w2;
        const double down = probe.evaluate(obs, action, w2).log_prob;
        const double numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(analytic[i], numeric, 1e-5 * std::max(1.0, std::abs(numeric)))
            << "param " << i;
    }
}

TEST(GaussianPolicy, BackwardMatchesFiniteDifferenceKl) {
    Rng rng(6);
    GaussianPolicy policy(2, 2, {6}, rng);
    const std::vector<double> obs{0.4, 0.1};
    const std::vector<double> action{0.0, 0.0};
    const GaussianPolicy::Moments old = policy.moments(std::vector<double>{-0.2, 0.3});

    Mlp::Workspace ws;
    const auto eval = policy.evaluate(obs, action, ws);
    std::vector<double> analytic(policy.parameter_count(), 0.0);
    policy.backward(ws, eval, action, 0.0, 0.0, /*c_kl=*/1.0, &old, analytic);

    GaussianPolicy probe = policy;
    std::vector<double> params(policy.network().parameters().begin(),
                               policy.network().parameters().end());
    const double eps = 1e-6;
    auto kl_at = [&](const std::vector<double>& p) {
        probe.network().set_parameters(p);
        return GaussianPolicy::kl(old, probe.moments(obs));
    };
    for (std::size_t i = 0; i < params.size(); i += 5) {
        std::vector<double> bumped = params;
        bumped[i] += eps;
        const double up = kl_at(bumped);
        bumped[i] -= 2 * eps;
        const double down = kl_at(bumped);
        const double numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(analytic[i], numeric, 1e-5 * std::max(1.0, std::abs(numeric)))
            << "param " << i;
    }
}

namespace {
/// Appends a scalar-free transition (the buffer tests exercise only the GAE
/// bookkeeping, so observation/action dimensions are zero).
void add_step(RolloutBuffer& buffer, double reward, double value, bool terminal,
              double log_prob = 0.0) {
    buffer.add({}, {}, reward, value, log_prob, terminal, {}, {});
}
} // namespace

TEST(GaussianPolicy, BatchedEvaluateMatchesScalar) {
    Rng rng(7);
    GaussianPolicy policy(3, 2, {8, 8}, rng);
    const std::size_t batch = 5;
    std::vector<double> obs(batch * 3), actions(batch * 2);
    for (double& v : obs) {
        v = rng.normal();
    }
    for (double& v : actions) {
        v = rng.normal();
    }
    Mlp::BatchWorkspace bws(policy.network(), batch);
    std::vector<double> means(batch * 2), log_stds(batch * 2), log_probs(batch),
        entropies(batch);
    policy.evaluate_batch(obs, actions, batch, bws, means, log_stds, log_probs, entropies);
    for (std::size_t row = 0; row < batch; ++row) {
        Mlp::Workspace ws;
        const auto eval = policy.evaluate(std::span<const double>(obs.data() + row * 3, 3),
                                          std::span<const double>(actions.data() + row * 2, 2),
                                          ws);
        EXPECT_NEAR(log_probs[row], eval.log_prob, 1e-12) << "row " << row;
        EXPECT_NEAR(entropies[row], eval.entropy, 1e-12) << "row " << row;
        for (std::size_t i = 0; i < 2; ++i) {
            EXPECT_NEAR(means[row * 2 + i], eval.moments.mean[i], 1e-12);
            EXPECT_NEAR(log_stds[row * 2 + i], eval.moments.log_std[i], 1e-12);
        }
    }
}

TEST(GaussianPolicy, BatchedBackwardMatchesScalarSum) {
    Rng rng(8);
    GaussianPolicy policy(3, 2, {8}, rng);
    const std::size_t batch = 4;
    std::vector<double> obs(batch * 3), actions(batch * 2), old_means(batch * 2),
        old_log_stds(batch * 2), c_logp(batch);
    for (double& v : obs) {
        v = rng.normal();
    }
    for (double& v : actions) {
        v = rng.normal();
    }
    for (double& v : old_means) {
        v = 0.1 * rng.normal();
    }
    for (double& v : old_log_stds) {
        v = -0.5 + 0.1 * rng.normal();
    }
    for (double& v : c_logp) {
        v = rng.normal();
    }
    const double c_entropy = 0.3;
    const double c_kl = 0.7;

    // Scalar reference: per-row backward() accumulated in row order.
    std::vector<double> scalar_grad(policy.parameter_count(), 0.0);
    for (std::size_t row = 0; row < batch; ++row) {
        Mlp::Workspace ws;
        const std::span<const double> o(obs.data() + row * 3, 3);
        const std::span<const double> a(actions.data() + row * 2, 2);
        const auto eval = policy.evaluate(o, a, ws);
        GaussianPolicy::Moments old;
        old.mean.assign(old_means.begin() + static_cast<std::ptrdiff_t>(row * 2),
                        old_means.begin() + static_cast<std::ptrdiff_t>(row * 2 + 2));
        old.log_std.assign(old_log_stds.begin() + static_cast<std::ptrdiff_t>(row * 2),
                           old_log_stds.begin() + static_cast<std::ptrdiff_t>(row * 2 + 2));
        policy.backward(ws, eval, a, c_logp[row], c_entropy, c_kl, &old, scalar_grad);
    }

    Mlp::BatchWorkspace bws(policy.network(), batch);
    std::vector<double> means(batch * 2), log_stds(batch * 2), log_probs(batch),
        entropies(batch), grad_out(batch * 4);
    policy.evaluate_batch(obs, actions, batch, bws, means, log_stds, log_probs, entropies);
    std::vector<double> batched_grad(policy.parameter_count(), 0.0);
    policy.backward_batch(bws, batch, actions, means, log_stds, c_logp, c_entropy, c_kl,
                          old_means, old_log_stds, grad_out, batched_grad);
    for (std::size_t i = 0; i < scalar_grad.size(); ++i) {
        EXPECT_NEAR(batched_grad[i], scalar_grad[i],
                    1e-12 * std::max(1.0, std::abs(scalar_grad[i])))
            << "param " << i;
    }
}

TEST(RolloutBuffer, GaeMatchesHandComputation) {
    // Two-step episode, gamma=0.5, lambda=1: plain discounted advantages.
    RolloutBuffer buffer(4, 0, 0);
    add_step(buffer, 1.0, 0.5, false);
    add_step(buffer, 2.0, 0.25, true);
    buffer.seal_segment(/*bootstrap=*/0.0);
    buffer.compute_gae(0.5, 1.0);
    // Returns: R2 = 2, R1 = 1 + 0.5*2 = 2. Advantages: A2 = 2-0.25, A1 = 2-0.5.
    EXPECT_NEAR(buffer.value_target(1), 2.0, 1e-12);
    EXPECT_NEAR(buffer.value_target(0), 2.0, 1e-12);
    EXPECT_NEAR(buffer.advantage(1), 1.75, 1e-12);
    EXPECT_NEAR(buffer.advantage(0), 1.5, 1e-12);
}

TEST(RolloutBuffer, GaeLambdaZeroIsTdError) {
    RolloutBuffer buffer(3, 0, 0);
    add_step(buffer, 1.0, 0.3, false);
    add_step(buffer, 0.0, 0.7, true);
    buffer.compute_gae(0.9, 0.0); // open segment auto-sealed with bootstrap 0
    EXPECT_NEAR(buffer.advantage(0), 1.0 + 0.9 * 0.7 - 0.3, 1e-12);
    EXPECT_NEAR(buffer.advantage(1), 0.0 - 0.7, 1e-12);
}

TEST(RolloutBuffer, BootstrapUsedForTruncation) {
    RolloutBuffer buffer(1, 0, 0);
    add_step(buffer, 1.0, 0.0, false); // truncated, not terminal
    buffer.seal_segment(/*bootstrap=*/10.0);
    buffer.compute_gae(1.0, 1.0);
    EXPECT_NEAR(buffer.advantage(0), 11.0, 1e-12);
}

TEST(RolloutBuffer, TerminalResetsAccumulation) {
    RolloutBuffer buffer(3, 0, 0);
    add_step(buffer, 5.0, 0.0, true);
    add_step(buffer, 1.0, 0.0, true);
    buffer.compute_gae(0.9, 1.0);
    // Episode boundary: second episode's return must not leak into first.
    EXPECT_NEAR(buffer.value_target(0), 5.0, 1e-12);
    EXPECT_NEAR(buffer.value_target(1), 1.0, 1e-12);
}

TEST(RolloutBuffer, SegmentsBootstrapIndependently) {
    // Two merged env segments, each truncated mid-episode: the second
    // segment's bootstrap must not leak into the first (and vice versa).
    RolloutBuffer worker_a(2, 0, 0), worker_b(2, 0, 0);
    add_step(worker_a, 1.0, 0.0, false);
    add_step(worker_a, 1.0, 0.0, false);
    add_step(worker_b, 2.0, 0.0, false);
    add_step(worker_b, 2.0, 0.0, false);
    RolloutBuffer merged(4, 0, 0);
    merged.append_segment(worker_a, /*bootstrap=*/10.0);
    merged.append_segment(worker_b, /*bootstrap=*/100.0);
    merged.compute_gae(1.0, 1.0);
    EXPECT_NEAR(merged.value_target(0), 1.0 + 1.0 + 10.0, 1e-12);
    EXPECT_NEAR(merged.value_target(1), 1.0 + 10.0, 1e-12);
    EXPECT_NEAR(merged.value_target(2), 2.0 + 2.0 + 100.0, 1e-12);
    EXPECT_NEAR(merged.value_target(3), 2.0 + 100.0, 1e-12);
}

TEST(RolloutBuffer, AppendSegmentCopiesRows) {
    RolloutBuffer worker(1, 2, 1);
    const std::vector<double> obs{0.25, -0.5};
    const std::vector<double> act{1.5};
    const std::vector<double> mean{0.75};
    const std::vector<double> log_std{-0.25};
    worker.add(obs, act, 3.0, 0.5, -1.25, true, mean, log_std);
    RolloutBuffer merged(2, 2, 1);
    merged.append_segment(worker, 0.0);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged.observation(0)[0], 0.25);
    EXPECT_EQ(merged.observation(0)[1], -0.5);
    EXPECT_EQ(merged.action(0)[0], 1.5);
    EXPECT_EQ(merged.old_mean(0)[0], 0.75);
    EXPECT_EQ(merged.old_log_std(0)[0], -0.25);
    EXPECT_EQ(merged.reward(0), 3.0);
    EXPECT_EQ(merged.value(0), 0.5);
    EXPECT_EQ(merged.log_prob(0), -1.25);
    EXPECT_TRUE(merged.terminal(0));
    // Overflow and dimension mismatches are rejected.
    EXPECT_THROW(merged.append_segment(RolloutBuffer(1, 3, 1), 0.0), std::invalid_argument);
    merged.append_segment(worker, 0.0);
    EXPECT_THROW(merged.append_segment(worker, 0.0), std::logic_error);
}

TEST(RolloutBuffer, NormalizeAdvantagesZeroMeanUnitStd) {
    RolloutBuffer buffer(8, 0, 0);
    for (int i = 0; i < 8; ++i) {
        add_step(buffer, static_cast<double>(i), 0.0, true);
    }
    buffer.compute_gae(1.0, 1.0);
    buffer.normalize_advantages();
    double mean = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
        mean += buffer.advantage(i);
        sq += buffer.advantage(i) * buffer.advantage(i);
    }
    mean /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(std::sqrt(sq / 8.0), 1.0, 1e-6);
}

TEST(RolloutBuffer, CapacityEnforced) {
    RolloutBuffer buffer(1, 0, 0);
    add_step(buffer, 0.0, 0.0, false);
    EXPECT_TRUE(buffer.full());
    EXPECT_THROW(add_step(buffer, 0.0, 0.0, false), std::logic_error);
    buffer.clear();
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_THROW(RolloutBuffer(0, 0, 0), std::invalid_argument);
}

} // namespace
} // namespace mflb::rl
