// Tests for the Markov-modulated arrival process (eq. 1, 32-33) and the
// mean-field routing flow (eqs. 16-19).
#include "field/arrival_flow.hpp"
#include "field/arrival_process.hpp"
#include "math/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

TEST(ArrivalProcess, PaperChainShape) {
    const ArrivalProcess arrivals = ArrivalProcess::paper_two_state();
    EXPECT_EQ(arrivals.num_states(), 2u);
    EXPECT_DOUBLE_EQ(arrivals.level(0), 0.9);
    EXPECT_DOUBLE_EQ(arrivals.level(1), 0.6);
    EXPECT_DOUBLE_EQ(arrivals.transition()(0, 1), 0.2); // P(l | h)
    EXPECT_DOUBLE_EQ(arrivals.transition()(1, 0), 0.5); // P(h | l)
}

TEST(ArrivalProcess, StationaryDistributionMatchesHandComputation) {
    // pi_h * 0.2 = pi_l * 0.5  =>  pi_h = 5/7, pi_l = 2/7.
    const ArrivalProcess arrivals = ArrivalProcess::paper_two_state();
    const auto pi = arrivals.stationary();
    EXPECT_NEAR(pi[0], 5.0 / 7.0, 1e-10);
    EXPECT_NEAR(pi[1], 2.0 / 7.0, 1e-10);
    EXPECT_NEAR(arrivals.mean_rate(), 0.9 * 5.0 / 7.0 + 0.6 * 2.0 / 7.0, 1e-10);
}

TEST(ArrivalProcess, EmpiricalSwitchingMatchesTransitionLaw) {
    const ArrivalProcess arrivals = ArrivalProcess::paper_two_state();
    Rng rng(99);
    std::size_t state = 0; // high
    int high_to_low = 0, high_visits = 0, low_to_high = 0, low_visits = 0;
    for (int t = 0; t < 200000; ++t) {
        const std::size_t next = arrivals.step(state, rng);
        if (state == 0) {
            ++high_visits;
            high_to_low += (next == 1) ? 1 : 0;
        } else {
            ++low_visits;
            low_to_high += (next == 0) ? 1 : 0;
        }
        state = next;
    }
    EXPECT_NEAR(static_cast<double>(high_to_low) / high_visits, 0.2, 0.01);
    EXPECT_NEAR(static_cast<double>(low_to_high) / low_visits, 0.5, 0.01);
}

TEST(ArrivalProcess, ConstantProcessNeverSwitches) {
    const ArrivalProcess arrivals = ArrivalProcess::constant(0.8);
    Rng rng(1);
    EXPECT_EQ(arrivals.sample_initial(rng), 0u);
    EXPECT_EQ(arrivals.step(0, rng), 0u);
    EXPECT_DOUBLE_EQ(arrivals.mean_rate(), 0.8);
}

TEST(ArrivalProcess, ValidatesInput) {
    EXPECT_THROW(ArrivalProcess({}, Matrix(0, 0)), std::invalid_argument);
    EXPECT_THROW(ArrivalProcess({-1.0}, Matrix{{1.0}}), std::invalid_argument);
    EXPECT_THROW(ArrivalProcess({1.0, 2.0}, Matrix{{0.5, 0.4}, {0.5, 0.5}}),
                 std::invalid_argument);
    EXPECT_THROW(ArrivalProcess({1.0}, Matrix{{1.0}}, {0.5}), std::invalid_argument);
}

TEST(ArrivalFlow, TotalInflowIsConserved) {
    // Σ_z λ'(z) = λ: every packet lands in some state class (eq. 18).
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::mf_jsq(space);
    const std::vector<double> nu{0.3, 0.25, 0.2, 0.15, 0.07, 0.03};
    const ArrivalFlow flow = compute_arrival_flow(nu, h, 0.9);
    double total = 0.0;
    for (double v : flow.inflow_by_state) {
        total += v;
    }
    EXPECT_NEAR(total, 0.9, 1e-12);
}

TEST(ArrivalFlow, RndGivesUniformPerQueueRates) {
    // Under MF-RND every queue sees rate λ regardless of its state
    // (destinations are uniform over queues).
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::mf_rnd(space);
    const std::vector<double> nu{0.5, 0.2, 0.1, 0.1, 0.05, 0.05};
    const ArrivalFlow flow = compute_arrival_flow(nu, h, 0.75);
    for (std::size_t z = 0; z < nu.size(); ++z) {
        EXPECT_NEAR(flow.rate_by_state[z], 0.75, 1e-12) << "z=" << z;
    }
}

TEST(ArrivalFlow, JsqSendsEverythingToTheMinimumOccupiedState) {
    // If ν is supported on {0, 3}, JSQ routes a packet to state 3 only when
    // both sampled queues are in state 3 (probability ν(3)^2).
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::mf_jsq(space);
    std::vector<double> nu(6, 0.0);
    nu[0] = 0.7;
    nu[3] = 0.3;
    const ArrivalFlow flow = compute_arrival_flow(nu, h, 1.0);
    EXPECT_NEAR(flow.inflow_by_state[3], 0.3 * 0.3, 1e-12);
    EXPECT_NEAR(flow.inflow_by_state[0], 1.0 - 0.09, 1e-12);
    // Per-queue rate in state 0: λ'(0)/ν(0).
    EXPECT_NEAR(flow.rate_by_state[0], 0.91 / 0.7, 1e-12);
    // Empty state classes get rate 0 by convention.
    EXPECT_DOUBLE_EQ(flow.rate_by_state[1], 0.0);
}

TEST(ArrivalFlow, RateBoundedByDTimesLambda) {
    // λ_t(ν, z) ≤ d·λ (the bound used in the proof of Theorem 1).
    const TupleSpace space(6, 2);
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> weights(6);
        for (double& w : weights) {
            w = rng.uniform() + 1e-3;
        }
        const std::vector<double> nu = normalized(weights);
        std::vector<double> logits(space.size() * 2);
        for (double& l : logits) {
            l = rng.normal();
        }
        const DecisionRule h = DecisionRule::from_logits(space, logits);
        const double lambda = 0.9;
        const ArrivalFlow flow = compute_arrival_flow(nu, h, lambda);
        for (double rate : flow.rate_by_state) {
            EXPECT_LE(rate, 2.0 * lambda + 1e-9);
        }
    }
}

TEST(ArrivalFlow, TupleProbabilityFactorizes) {
    const TupleSpace space(3, 2);
    const std::vector<double> nu{0.5, 0.3, 0.2};
    const std::vector<int> tuple{1, 2};
    const std::size_t idx = space.index_of(tuple);
    EXPECT_NEAR(tuple_probability(space, nu, idx), 0.3 * 0.2, 1e-14);
}

TEST(ArrivalFlow, DestinationDistributionSumsToOne) {
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::greedy_softmax(space, 1.5);
    const std::vector<double> nu{0.4, 0.3, 0.15, 0.1, 0.04, 0.01};
    const auto dist = packet_destination_distribution(nu, h);
    EXPECT_TRUE(is_probability_vector(dist, 1e-9));
}

TEST(ArrivalFlow, SizeMismatchThrows) {
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::mf_rnd(space);
    EXPECT_THROW(compute_arrival_flow(std::vector<double>{1.0}, h, 0.9), std::invalid_argument);
}

} // namespace
} // namespace mflb
