// Tests for the power-of-d-with-memory baseline.
#include "queueing/memory_system.hpp"
#include "support/statistics.hpp"

#include <gtest/gtest.h>

namespace mflb {
namespace {

MemorySystemConfig small_config(double dt = 1.0) {
    MemorySystemConfig config;
    config.num_queues = 50;
    config.num_clients = 2500;
    config.dt = dt;
    config.horizon = 40;
    return config;
}

TEST(MemorySystem, ValidatesConfig) {
    MemorySystemConfig bad = small_config();
    bad.num_queues = 0;
    EXPECT_THROW(MemorySystem{bad}, std::invalid_argument);
    bad = small_config();
    bad.d = 0;
    EXPECT_THROW(MemorySystem{bad}, std::invalid_argument);
}

TEST(MemorySystem, EpisodeRunsAndStops) {
    MemorySystem system(small_config());
    Rng rng(1);
    system.reset(rng);
    const auto stats = system.run_episode(MemoryDiscipline::JsqDMemory, rng);
    EXPECT_TRUE(system.done());
    EXPECT_GE(stats.total_drops_per_queue, 0.0);
    EXPECT_THROW(system.step(MemoryDiscipline::JsqD, rng), std::logic_error);
}

TEST(MemorySystem, MemoryHitRateIsZeroWithoutMemory) {
    MemorySystem system(small_config());
    Rng rng(2);
    system.reset(rng);
    const auto jsq = system.run_episode(MemoryDiscipline::JsqD, rng);
    EXPECT_DOUBLE_EQ(jsq.memory_hit_rate, 0.0);

    system.reset(rng);
    const auto rnd = system.run_episode(MemoryDiscipline::Random, rng);
    EXPECT_DOUBLE_EQ(rnd.memory_hit_rate, 0.0);
}

TEST(MemorySystem, MemoryIsActuallyUsed) {
    MemorySystem system(small_config());
    Rng rng(3);
    system.reset(rng);
    const auto stats = system.run_episode(MemoryDiscipline::JsqDMemory, rng);
    EXPECT_GT(stats.memory_hit_rate, 0.01);
    EXPECT_LT(stats.memory_hit_rate, 0.9);
}

TEST(MemorySystem, MemoryAmplifiesHerdingUnderSynchronizedDelay) {
    // In the asynchronous fluid model of Anselmi & Dufour, memory helps.
    // Under the paper's *synchronized* snapshots it does not: the remembered
    // queue was chosen because it looked short, every rememberer returns to
    // it while the snapshot stays frozen, and the extra concentration costs
    // drops. We pin down that measured behaviour: memory never beats plain
    // JSQ(d) here, and both remain far better than RND at small delay.
    RunningStat with_memory, without, random;
    for (int rep = 0; rep < 25; ++rep) {
        {
            MemorySystem system(small_config(1.0));
            Rng rng(100 + rep);
            system.reset(rng);
            with_memory.add(
                system.run_episode(MemoryDiscipline::JsqDMemory, rng).total_drops_per_queue);
        }
        {
            MemorySystem system(small_config(1.0));
            Rng rng(100 + rep);
            system.reset(rng);
            without.add(system.run_episode(MemoryDiscipline::JsqD, rng).total_drops_per_queue);
        }
        {
            MemorySystem system(small_config(1.0));
            Rng rng(100 + rep);
            system.reset(rng);
            random.add(system.run_episode(MemoryDiscipline::Random, rng).total_drops_per_queue);
        }
    }
    EXPECT_GE(with_memory.mean(), without.mean() * 0.95);
    EXPECT_LT(with_memory.mean(), random.mean());
    EXPECT_LT(without.mean(), random.mean());
}

TEST(MemorySystem, JsqBeatsRandomAtSmallDelay) {
    RunningStat jsq, rnd;
    for (int rep = 0; rep < 15; ++rep) {
        {
            MemorySystem system(small_config(1.0));
            Rng rng(200 + rep);
            system.reset(rng);
            jsq.add(system.run_episode(MemoryDiscipline::JsqD, rng).total_drops_per_queue);
        }
        {
            MemorySystem system(small_config(1.0));
            Rng rng(200 + rep);
            system.reset(rng);
            rnd.add(system.run_episode(MemoryDiscipline::Random, rng).total_drops_per_queue);
        }
    }
    EXPECT_LT(jsq.mean(), rnd.mean());
}

} // namespace
} // namespace mflb
