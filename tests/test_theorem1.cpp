// Numerical verification of Theorem 1: the finite-system performance
// converges to the mean-field value as N, M grow (with N = M^2), on a
// conditioned arrival-rate path — exactly the coupling used in the proof.
#include "core/config.hpp"
#include "core/evaluator.hpp"
#include "policies/fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

FiniteSystemConfig config_for(std::size_t m, double dt, ClientModel model) {
    ExperimentConfig experiment;
    experiment.dt = dt;
    experiment.num_queues = m;
    experiment.num_clients = static_cast<std::uint64_t>(m) * m;
    experiment.eval_total_time = 100.0;
    experiment.client_model = model;
    return experiment.finite_system();
}

double relative_gap(const CoupledEvaluation& coupled) {
    const double scale = std::max(1.0, coupled.mean_field_drops);
    return std::abs(coupled.finite_drops.mean - coupled.mean_field_drops) / scale;
}

TEST(Theorem1, FiniteDropsApproachMeanFieldAsMGrows) {
    const TupleSpace space(6, 2);
    const FixedRulePolicy policy = make_rnd_policy(space);
    const CoupledEvaluation small =
        evaluate_coupled(config_for(16, 5.0, ClientModel::Aggregated), policy, 24, 5);
    const CoupledEvaluation large =
        evaluate_coupled(config_for(256, 5.0, ClientModel::Aggregated), policy, 24, 5);
    // The large system must sit close to the mean-field value and closer
    // than the small one (allowing slack for Monte Carlo noise).
    EXPECT_LT(relative_gap(large), 0.06);
    EXPECT_LT(relative_gap(large), relative_gap(small) + 0.02);
}

TEST(Theorem1, InfiniteClientSystemIsCloserThanFiniteClients) {
    // The proof splits |J - J^{N,M}| <= |J - J^M| + |J^M - J^{N,M}|; the
    // N = ∞ intermediate system should also converge to the limit in M.
    const TupleSpace space(6, 2);
    const FixedRulePolicy policy = make_jsq_policy(space);
    const CoupledEvaluation m_system =
        evaluate_coupled(config_for(256, 5.0, ClientModel::InfiniteClients), policy, 24, 7);
    EXPECT_LT(relative_gap(m_system), 0.06);
}

TEST(Theorem1, HoldsAcrossDelays) {
    const TupleSpace space(6, 2);
    const FixedRulePolicy policy = make_rnd_policy(space);
    for (const double dt : {1.0, 10.0}) {
        const CoupledEvaluation coupled =
            evaluate_coupled(config_for(200, dt, ClientModel::Aggregated), policy, 16,
                             static_cast<std::uint64_t>(dt * 100));
        EXPECT_LT(relative_gap(coupled), 0.08) << "dt=" << dt;
    }
}

TEST(Theorem1, MeanFieldCiContainsLimitForLargeSystem) {
    // For M = 400, N = M^2 the finite 95% CI should (nearly) cover the
    // mean-field value — the visual statement of Figure 4.
    const TupleSpace space(6, 2);
    const FixedRulePolicy policy = make_jsq_policy(space);
    const CoupledEvaluation coupled =
        evaluate_coupled(config_for(400, 5.0, ClientModel::Aggregated), policy, 16, 21);
    const double slack = 2.0 * coupled.finite_drops.half_width + 0.05 * coupled.mean_field_drops;
    EXPECT_NEAR(coupled.finite_drops.mean, coupled.mean_field_drops, slack);
}

} // namespace
} // namespace mflb
