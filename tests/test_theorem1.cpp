// Numerical verification of Theorem 1: the finite-system performance
// converges to the mean-field value as N, M grow (with N = M^2), on a
// conditioned arrival-rate path — exactly the coupling used in the proof.
// The event-driven backend extends the probe to system sizes (M = 10^4) the
// epoch-synchronous simulator cannot reach in test time.
#include "core/config.hpp"
#include "core/evaluator.hpp"
#include "des/des_system.hpp"
#include "policies/fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

FiniteSystemConfig config_for(std::size_t m, double dt, ClientModel model) {
    ExperimentConfig experiment;
    experiment.dt = dt;
    experiment.num_queues = m;
    experiment.num_clients = static_cast<std::uint64_t>(m) * m;
    experiment.eval_total_time = 100.0;
    experiment.client_model = model;
    return experiment.finite_system();
}

double relative_gap(const CoupledEvaluation& coupled) {
    const double scale = std::max(1.0, coupled.mean_field_drops);
    return std::abs(coupled.finite_drops.mean - coupled.mean_field_drops) / scale;
}

TEST(Theorem1, FiniteDropsApproachMeanFieldAsMGrows) {
    const TupleSpace space(6, 2);
    const FixedRulePolicy policy = make_rnd_policy(space);
    const CoupledEvaluation small =
        evaluate_coupled(config_for(16, 5.0, ClientModel::Aggregated), policy, 24, 5);
    const CoupledEvaluation large =
        evaluate_coupled(config_for(256, 5.0, ClientModel::Aggregated), policy, 24, 5);
    // The large system must sit close to the mean-field value and closer
    // than the small one (allowing slack for Monte Carlo noise).
    EXPECT_LT(relative_gap(large), 0.06);
    EXPECT_LT(relative_gap(large), relative_gap(small) + 0.02);
}

TEST(Theorem1, InfiniteClientSystemIsCloserThanFiniteClients) {
    // The proof splits |J - J^{N,M}| <= |J - J^M| + |J^M - J^{N,M}|; the
    // N = ∞ intermediate system should also converge to the limit in M.
    const TupleSpace space(6, 2);
    const FixedRulePolicy policy = make_jsq_policy(space);
    const CoupledEvaluation m_system =
        evaluate_coupled(config_for(256, 5.0, ClientModel::InfiniteClients), policy, 24, 7);
    EXPECT_LT(relative_gap(m_system), 0.06);
}

TEST(Theorem1, HoldsAcrossDelays) {
    const TupleSpace space(6, 2);
    const FixedRulePolicy policy = make_rnd_policy(space);
    for (const double dt : {1.0, 10.0}) {
        const CoupledEvaluation coupled =
            evaluate_coupled(config_for(200, dt, ClientModel::Aggregated), policy, 16,
                             static_cast<std::uint64_t>(dt * 100));
        EXPECT_LT(relative_gap(coupled), 0.08) << "dt=" << dt;
    }
}

TEST(Theorem1, DesBackendConvergesAtTenThousandQueues) {
    // Same coupling, two orders of magnitude beyond the M of the finite
    // backend's tests: at M = 10^4 the event-driven system's drops must sit
    // within 2% of the mean-field value — and strictly closer than a small
    // system on the same paths (fluctuations shrink like 1/sqrt(M)).
    const TupleSpace space(6, 2);
    const FixedRulePolicy policy = make_rnd_policy(space);

    auto des_gap = [&](std::size_t m, std::uint64_t seed) {
        FiniteSystemConfig config = config_for(m, 5.0, ClientModel::InfiniteClients);
        config.horizon = 20;

        Rng path_rng(seed);
        std::vector<std::size_t> path;
        std::size_t state = config.arrivals.sample_initial(path_rng);
        for (int t = 0; t < config.horizon; ++t) {
            path.push_back(state);
            state = config.arrivals.step(state, path_rng);
        }

        MfcConfig mfc;
        mfc.dt = config.dt;
        mfc.horizon = config.horizon;
        MfcEnv env(mfc);
        env.reset_conditioned(path);
        Rng unused(seed);
        double limit = 0.0;
        while (!env.done()) {
            const DecisionRule h = policy.decide(env.nu(), env.lambda_state(), unused);
            limit += env.step(h, unused).drops;
        }

        DesSystem system(config);
        Rng rng(seed + 1);
        system.reset_conditioned(path, rng);
        double drops = 0.0;
        while (!system.done()) {
            drops += system.step(policy, rng).drops_per_queue;
        }
        return std::abs(drops - limit) / std::max(1.0, limit);
    };

    const double small_gap = des_gap(100, 23);
    const double large_gap = des_gap(10000, 23);
    EXPECT_LT(large_gap, 0.02);
    EXPECT_LT(large_gap, small_gap + 0.005);
}

TEST(Theorem1, MeanFieldCiContainsLimitForLargeSystem) {
    // For M = 400, N = M^2 the finite 95% CI should (nearly) cover the
    // mean-field value — the visual statement of Figure 4.
    const TupleSpace space(6, 2);
    const FixedRulePolicy policy = make_jsq_policy(space);
    const CoupledEvaluation coupled =
        evaluate_coupled(config_for(400, 5.0, ClientModel::Aggregated), policy, 16, 21);
    const double slack = 2.0 * coupled.finite_drops.half_width + 0.05 * coupled.mean_field_drops;
    EXPECT_NEAR(coupled.finite_drops.mean, coupled.mean_field_drops, slack);
}

} // namespace
} // namespace mflb
