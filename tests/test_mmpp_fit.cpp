// Tests for the Poisson-HMM (Baum-Welch) arrival-process estimator.
#include "field/mmpp_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mflb {
namespace {

TEST(MmppFit, ValidatesInput) {
    const std::vector<std::uint64_t> one{5};
    EXPECT_THROW(fit_arrival_process(one, 100.0, 1.0), std::invalid_argument);
    const std::vector<std::uint64_t> two{5, 6};
    MmppFitConfig bad;
    bad.num_states = 0;
    EXPECT_THROW(fit_arrival_process(two, 100.0, 1.0, bad), std::invalid_argument);
    EXPECT_THROW(fit_arrival_process(two, 0.0, 1.0), std::invalid_argument);
}

TEST(MmppFit, SampleTraceHasRightScale) {
    const ArrivalProcess truth = ArrivalProcess::paper_two_state();
    Rng rng(1);
    const auto counts = sample_arrival_counts(truth, 100.0, 1.0, 5000, rng);
    ASSERT_EQ(counts.size(), 5000u);
    double mean = 0.0;
    for (auto c : counts) {
        mean += static_cast<double>(c);
    }
    mean /= 5000.0;
    // Long-run mean = M * E[lambda] * dt = 100 * 0.8143.
    EXPECT_NEAR(mean, 100.0 * truth.mean_rate(), 2.0);
}

TEST(MmppFit, LogLikelihoodIsNonDecreasing) {
    const ArrivalProcess truth = ArrivalProcess::paper_two_state();
    Rng rng(2);
    const auto counts = sample_arrival_counts(truth, 100.0, 1.0, 800, rng);
    const MmppFitResult fit = fit_arrival_process(counts, 100.0, 1.0);
    ASSERT_GE(fit.log_likelihood_trace.size(), 2u);
    for (std::size_t i = 1; i < fit.log_likelihood_trace.size(); ++i) {
        EXPECT_GE(fit.log_likelihood_trace[i], fit.log_likelihood_trace[i - 1] - 1e-6)
            << "iteration " << i;
    }
}

TEST(MmppFit, RecoversTwoStateChain) {
    // Recover (0.9, 0.6) levels and the (0.2, 0.5) switching probabilities
    // from a long synthetic trace. M = 500 queues makes the levels easily
    // separable (means 450 vs 300 per epoch).
    const ArrivalProcess truth = ArrivalProcess::paper_two_state();
    Rng rng(3);
    const auto counts = sample_arrival_counts(truth, 500.0, 1.0, 4000, rng);
    const MmppFitResult fit = fit_arrival_process(counts, 500.0, 1.0);

    ASSERT_EQ(fit.levels.size(), 2u);
    EXPECT_NEAR(fit.levels[0], 0.9, 0.02); // sorted descending
    EXPECT_NEAR(fit.levels[1], 0.6, 0.02);
    EXPECT_NEAR(fit.transition(0, 1), 0.2, 0.05); // P(l | h)
    EXPECT_NEAR(fit.transition(1, 0), 0.5, 0.07); // P(h | l)

    // Round-trips into a usable ArrivalProcess.
    const ArrivalProcess fitted = fit.to_arrival_process();
    EXPECT_NEAR(fitted.mean_rate(), truth.mean_rate(), 0.02);
}

TEST(MmppFit, SingleStateDegeneratesToMean) {
    const ArrivalProcess truth = ArrivalProcess::constant(0.7);
    Rng rng(4);
    const auto counts = sample_arrival_counts(truth, 200.0, 2.0, 500, rng);
    MmppFitConfig config;
    config.num_states = 1;
    const MmppFitResult fit = fit_arrival_process(counts, 200.0, 2.0, config);
    ASSERT_EQ(fit.levels.size(), 1u);
    EXPECT_NEAR(fit.levels[0], 0.7, 0.01);
    EXPECT_NEAR(fit.transition(0, 0), 1.0, 1e-9);
}

TEST(MmppFit, ThreeStateModelFitsThreeLevels) {
    const Matrix chain{{0.8, 0.15, 0.05}, {0.2, 0.7, 0.1}, {0.3, 0.2, 0.5}};
    const ArrivalProcess truth({1.2, 0.7, 0.3}, chain);
    Rng rng(5);
    const auto counts = sample_arrival_counts(truth, 400.0, 1.0, 6000, rng);
    MmppFitConfig config;
    config.num_states = 3;
    const MmppFitResult fit = fit_arrival_process(counts, 400.0, 1.0, config);
    ASSERT_EQ(fit.levels.size(), 3u);
    EXPECT_NEAR(fit.levels[0], 1.2, 0.05);
    EXPECT_NEAR(fit.levels[1], 0.7, 0.05);
    EXPECT_NEAR(fit.levels[2], 0.3, 0.05);
}

TEST(MmppFit, DeterministicGivenSeed) {
    const ArrivalProcess truth = ArrivalProcess::paper_two_state();
    Rng rng(6);
    const auto counts = sample_arrival_counts(truth, 100.0, 1.0, 300, rng);
    const MmppFitResult a = fit_arrival_process(counts, 100.0, 1.0);
    const MmppFitResult b = fit_arrival_process(counts, 100.0, 1.0);
    EXPECT_DOUBLE_EQ(a.levels[0], b.levels[0]);
    EXPECT_DOUBLE_EQ(a.log_likelihood_trace.back(), b.log_likelihood_trace.back());
}

} // namespace
} // namespace mflb
