// Agreement contract of the vectorized epoch-barrier kernels (math/vec_ops)
// against their strict left-to-right `_reference` twins: 1e-12 relative error
// for arbitrary doubles, bit-exact for integer-valued inputs below 2^53 (the
// counting client models — this is what keeps the golden sharded trajectories
// pinned). Sizes straddle the scan's serial-fallback threshold (block < 16,
// i.e. n < 64) and the 4-lane tail cases (n mod 4 ≠ 0). The same contract is
// pinned end to end for the composed destination-law kernel and the shard-mass
// partition. Under TSan the target_clones dispatch is compiled out
// (MFLB_SIMD_CLONES is empty there), so these tests also pin that the plain
// build of the 4-lane shapes agrees with the reference.
#include "field/arrival_flow.hpp"
#include "field/decision_rule.hpp"
#include "math/vec_ops.hpp"
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace mflb {
namespace {

// Sizes covering: empty, sub-lane, exact multiples of 4, every tail residue,
// the scan fallback boundary (n = 63 serial, n = 64 segmented), and sizes
// large enough that lane reassociation actually accumulates rounding.
const std::vector<std::size_t> kSizes = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31,
                                         63, 64, 65, 127, 128, 257, 1000, 4099};

std::vector<double> random_doubles(std::size_t n, Rng& rng) {
    std::vector<double> xs(n);
    for (double& x : xs) {
        // Mixed magnitudes and signs so reassociation produces real ulp
        // differences for the tolerance check to be meaningful.
        x = rng.normal() * (1.0 + 1000.0 * rng.uniform());
    }
    return xs;
}

std::vector<std::uint64_t> random_counts(std::size_t n, Rng& rng) {
    std::vector<std::uint64_t> xs(n);
    for (std::uint64_t& x : xs) {
        x = rng.uniform_below(1u << 20);
    }
    return xs;
}

void expect_close(double a, double b, double rel = 1e-12) {
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    EXPECT_NEAR(a, b, rel * scale);
}

TEST(VecKernels, SumMatchesReferenceForDoubles) {
    Rng rng(101);
    for (const std::size_t n : kSizes) {
        const std::vector<double> xs = random_doubles(n, rng);
        expect_close(vec_sum(std::span<const double>(xs)),
                     vec_sum_reference(std::span<const double>(xs)));
    }
}

TEST(VecKernels, SumIsExactForIntegerValuedInputs) {
    Rng rng(102);
    for (const std::size_t n : kSizes) {
        const std::vector<std::uint64_t> counts = random_counts(n, rng);
        // uint64 overload: every reassociation is exact below 2^53.
        EXPECT_EQ(vec_sum(std::span<const std::uint64_t>(counts)),
                  vec_sum_reference(std::span<const std::uint64_t>(counts)));
        // Integer-valued doubles (queue weights of the counting models).
        std::vector<double> xs(counts.begin(), counts.end());
        EXPECT_EQ(vec_sum(std::span<const double>(xs)),
                  vec_sum_reference(std::span<const double>(xs)));
    }
}

TEST(VecKernels, PrefixSumMatchesReferenceForDoubles) {
    Rng rng(103);
    for (const std::size_t n : kSizes) {
        const std::vector<double> xs = random_doubles(n, rng);
        std::vector<double> got(n, -1.0);
        std::vector<double> want(n, -2.0);
        inclusive_prefix_sum(xs, got);
        inclusive_prefix_sum_reference(xs, want);
        for (std::size_t i = 0; i < n; ++i) {
            expect_close(got[i], want[i]);
        }
    }
}

TEST(VecKernels, PrefixSumIsExactForIntegerWeights) {
    Rng rng(104);
    for (const std::size_t n : kSizes) {
        const std::vector<std::uint64_t> counts = random_counts(n, rng);
        std::vector<double> got(n, -1.0);
        std::vector<double> want(n, -2.0);
        inclusive_prefix_sum(std::span<const std::uint64_t>(counts), got);
        inclusive_prefix_sum_reference(std::span<const std::uint64_t>(counts), want);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
        }
    }
}

TEST(VecKernels, PrefixSumInPlaceEqualsOutOfPlace) {
    Rng rng(105);
    for (const std::size_t n : kSizes) {
        const std::vector<double> xs = random_doubles(n, rng);
        std::vector<double> out(n, -1.0);
        inclusive_prefix_sum(xs, out);
        std::vector<double> in_place = xs;
        inclusive_prefix_sum(std::span<const double>(in_place), in_place);
        EXPECT_EQ(in_place, out) << "n=" << n;
    }
}

TEST(VecKernels, GatherScaleIsBitExact) {
    Rng rng(106);
    const std::vector<double> table = random_doubles(32, rng);
    for (const std::size_t n : kSizes) {
        std::vector<int> idx(n);
        for (int& z : idx) {
            z = static_cast<int>(rng.uniform_below(table.size()));
        }
        const double scale = rng.uniform(0.1, 2.0);
        std::vector<double> got(n, -1.0);
        gather_scale(idx, table, scale, got);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(got[i], scale * table[static_cast<std::size_t>(idx[i])]);
        }
    }
}

TEST(VecKernels, GatherSumIsBitEqualToComposedGatherThenSum) {
    // The fused barrier kernel of the pipelined sharded backend: the shard
    // mass over a prescaled table must equal gather_scale(scale = 1) followed
    // by vec_sum *bit for bit* — both instantiate the same 4-lane loop body.
    Rng rng(108);
    const std::vector<double> table = random_doubles(32, rng);
    for (const std::size_t n : kSizes) {
        std::vector<int> idx(n);
        for (int& z : idx) {
            z = static_cast<int>(rng.uniform_below(table.size()));
        }
        std::vector<double> materialized(n, -1.0);
        gather_scale(idx, table, 1.0, materialized);
        const double composed = vec_sum(std::span<const double>(materialized));
        EXPECT_EQ(gather_sum(idx, table), composed) << "n=" << n;
    }
}

TEST(VecKernels, GatherPrefixSumIsBitEqualToComposedGatherThenScan) {
    // Same contract for the thinning prefix sum: the fused gather scan must
    // reproduce the materialize-then-scan composition bit for bit, on both
    // sides of the segmented scan's serial-fallback threshold.
    Rng rng(109);
    const std::vector<double> table = random_doubles(32, rng);
    for (const std::size_t n : kSizes) {
        std::vector<int> idx(n);
        for (int& z : idx) {
            z = static_cast<int>(rng.uniform_below(table.size()));
        }
        std::vector<double> materialized(n, -1.0);
        gather_scale(idx, table, 1.0, materialized);
        std::vector<double> composed(n, -1.0);
        inclusive_prefix_sum(materialized, composed);
        std::vector<double> fused(n, -2.0);
        gather_prefix_sum(idx, table, fused);
        EXPECT_EQ(fused, composed) << "n=" << n;
    }
}

TEST(VecKernels, PrescaledGatherEqualsScaledGather) {
    // prescale_destination_sums folds the 1/M factor into the table; gathers
    // against the prescaled table must match gather_scale(idx, sums, inv_m)
    // per element exactly (one multiply per state, same double product).
    Rng rng(110);
    const std::vector<double> sums = random_doubles(32, rng);
    const double inv_m = 1.0 / 48.0;
    std::vector<double> scaled(sums.size(), 0.0);
    prescale_destination_sums(sums, inv_m, scaled);
    std::vector<int> idx(257);
    for (int& z : idx) {
        z = static_cast<int>(rng.uniform_below(sums.size()));
    }
    std::vector<double> via_scale(idx.size(), -1.0);
    gather_scale(idx, sums, inv_m, via_scale);
    std::vector<double> via_prescaled(idx.size(), -2.0);
    gather_scale(idx, scaled, 1.0, via_prescaled);
    EXPECT_EQ(via_prescaled, via_scale);
    EXPECT_EQ(gather_sum(idx, scaled), vec_sum(std::span<const double>(via_scale)));
}

TEST(VecKernels, SizeMismatchThrows) {
    const std::vector<double> in(8, 1.0);
    const std::vector<std::uint64_t> in_u(8, 1);
    std::vector<double> out(7, 0.0);
    EXPECT_THROW(inclusive_prefix_sum(std::span<const double>(in), out),
                 std::invalid_argument);
    EXPECT_THROW(inclusive_prefix_sum(std::span<const std::uint64_t>(in_u), out),
                 std::invalid_argument);
    EXPECT_THROW(inclusive_prefix_sum_reference(std::span<const double>(in), out),
                 std::invalid_argument);
    const std::vector<int> idx(8, 0);
    EXPECT_THROW(gather_scale(idx, in, 1.0, out), std::invalid_argument);
    EXPECT_THROW(gather_prefix_sum(idx, in, out), std::invalid_argument);
    EXPECT_THROW(prescale_destination_sums(in, 1.0, out), std::invalid_argument);
}

TEST(VecKernels, DestinationLawMatchesScalarReference) {
    // The composed barrier kernel: routing table + row fold + gather vs the
    // historical per-queue O(M·d) scan. M deliberately not a multiple of 4.
    Rng rng(107);
    const std::size_t num_z = 6;
    const int d = 2;
    const TupleSpace space(num_z, d);
    const DecisionRule h = DecisionRule::greedy_softmax(space, 1.5);

    const std::size_t m = 257;
    std::vector<int> queue_states(m);
    std::vector<double> hist(num_z, 0.0);
    for (int& z : queue_states) {
        z = static_cast<int>(rng.uniform_below(num_z));
        hist[static_cast<std::size_t>(z)] += 1.0 / static_cast<double>(m);
    }

    std::vector<int> tuple(static_cast<std::size_t>(d));
    std::vector<double> suffix(static_cast<std::size_t>(d) + 1);
    std::vector<double> g(static_cast<std::size_t>(d) * num_z);
    std::vector<double> want(m, -1.0);
    std::vector<double> got(m, -2.0);
    // Reference first: it leaves `g` untouched; the vectorized path then
    // folds `g`'s rows in place (documented postcondition).
    compute_destination_law_reference_into(queue_states, hist, h, tuple, suffix, g, want);
    compute_destination_law_into(queue_states, hist, h, tuple, suffix, g, got);

    double total_got = 0.0;
    double total_want = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
        expect_close(got[j], want[j]);
        total_got += got[j];
        total_want += want[j];
    }
    // Both realize the same per-packet destination law: mass sums to one.
    expect_close(total_got, 1.0, 1e-9);
    expect_close(total_want, 1.0, 1e-9);
}

TEST(VecKernels, PartitionShardMassMatchesSerialSums) {
    Rng rng(108);
    const std::size_t m = 1003;
    const std::size_t shards = 7;
    std::vector<std::size_t> begin(shards + 1);
    for (std::size_t s = 0; s <= shards; ++s) {
        begin[s] = s * m / shards;
    }

    const std::vector<double> weights = random_doubles(m, rng);
    std::vector<double> mass(shards, -1.0);
    const double total = partition_shard_mass(weights, begin, mass);
    double serial_total = 0.0;
    for (std::size_t s = 0; s < shards; ++s) {
        double want = 0.0;
        for (std::size_t j = begin[s]; j < begin[s + 1]; ++j) {
            want += weights[j];
        }
        expect_close(mass[s], want);
        serial_total += want;
    }
    expect_close(total, serial_total);

    // Integer-weight overload (finite-N counts): exact, bit for bit.
    const std::vector<std::uint64_t> counts = random_counts(m, rng);
    std::vector<double> int_mass(shards, -1.0);
    const double int_total = partition_shard_mass(counts, begin, int_mass);
    double int_serial = 0.0;
    for (std::size_t s = 0; s < shards; ++s) {
        double want = 0.0;
        for (std::size_t j = begin[s]; j < begin[s + 1]; ++j) {
            want += static_cast<double>(counts[j]);
        }
        EXPECT_EQ(int_mass[s], want);
        int_serial += want;
    }
    EXPECT_EQ(int_total, int_serial);
}

} // namespace
} // namespace mflb
