// Tests for the Monte Carlo evaluation harness and experiment config.
#include "core/config.hpp"
#include "core/evaluator.hpp"
#include "policies/fixed.hpp"

#include <gtest/gtest.h>

namespace mflb {
namespace {

ExperimentConfig small_experiment() {
    ExperimentConfig config;
    config.dt = 5.0;
    config.num_queues = 40;
    config.num_clients = 1600;
    config.eval_total_time = 50.0; // 10 epochs
    return config;
}

TEST(ExperimentConfig, DerivedHorizons) {
    ExperimentConfig config;
    config.dt = 3.0;
    EXPECT_EQ(config.eval_horizon(), 167);
    config.dt = 10.0;
    EXPECT_EQ(config.eval_horizon(), 50);
    const MfcConfig train = config.mfc();
    EXPECT_EQ(train.horizon, 500);
    const MfcConfig eval = config.mfc(/*eval_horizon_instead=*/true);
    EXPECT_EQ(eval.horizon, 50);
    const FiniteSystemConfig finite = config.finite_system();
    EXPECT_EQ(finite.horizon, 50);
    EXPECT_EQ(finite.num_queues, 100u);
}

TEST(ExperimentConfig, TableContainsPaperRows) {
    const ExperimentConfig config;
    const std::string table = config.to_table().to_text();
    EXPECT_NE(table.find("Service rate"), std::string::npos);
    EXPECT_NE(table.find("Queue buffer size"), std::string::npos);
    EXPECT_NE(table.find("Monte Carlo simulations"), std::string::npos);
}

TEST(PpoTable, ContainsTable2Rows) {
    const rl::PpoConfig config;
    const std::string table = ppo_config_table(config).to_text();
    EXPECT_NE(table.find("Discount factor"), std::string::npos);
    EXPECT_NE(table.find("0.99"), std::string::npos);
    EXPECT_NE(table.find("4000"), std::string::npos);
    EXPECT_NE(table.find("128"), std::string::npos);
    EXPECT_NE(table.find("30"), std::string::npos);
}

TEST(Evaluator, FiniteEvaluationShapes) {
    const ExperimentConfig config = small_experiment();
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy rnd = make_rnd_policy(space);
    const EvaluationResult result = evaluate_finite(config.finite_system(), rnd, 8, 7);
    EXPECT_EQ(result.episodes, 8u);
    EXPECT_EQ(result.total_drops.n, 8u);
    EXPECT_GE(result.total_drops.mean, 0.0);
    EXPECT_GE(result.total_drops.half_width, 0.0);
    EXPECT_LE(result.discounted_return.mean, 0.0);
    EXPECT_GE(result.utilization.mean, 0.0);
    EXPECT_LE(result.utilization.mean, 1.0);
}

TEST(Evaluator, DeterministicAcrossThreadCounts) {
    const ExperimentConfig config = small_experiment();
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy jsq = make_jsq_policy(space);
    const EvaluationResult serial = evaluate_finite(config.finite_system(), jsq, 6, 11, 1);
    const EvaluationResult parallel = evaluate_finite(config.finite_system(), jsq, 6, 11, 4);
    EXPECT_DOUBLE_EQ(serial.total_drops.mean, parallel.total_drops.mean);
    EXPECT_DOUBLE_EQ(serial.total_drops.half_width, parallel.total_drops.half_width);
}

TEST(Evaluator, MfcEvaluationIsLowVariance) {
    // In the limit model the only randomness is the 2-state λ chain, so the
    // CI must be far tighter than a comparable finite evaluation.
    const ExperimentConfig config = small_experiment();
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy rnd = make_rnd_policy(space);
    const EvaluationResult mfc = evaluate_mfc(config.mfc(true), rnd, 16, 3);
    EXPECT_GT(mfc.total_drops.mean, 0.0);
    EXPECT_LT(mfc.total_drops.half_width, mfc.total_drops.mean);
}

TEST(Evaluator, CoupledEvaluationProducesSharedPath) {
    const ExperimentConfig config = small_experiment();
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy rnd = make_rnd_policy(space);
    const CoupledEvaluation coupled = evaluate_coupled(config.finite_system(), rnd, 6, 13);
    EXPECT_EQ(coupled.lambda_sequence.size(), static_cast<std::size_t>(config.eval_horizon()));
    EXPECT_GT(coupled.mean_field_drops, 0.0);
    EXPECT_GT(coupled.finite_drops.mean, 0.0);
    // Same seed reproduces the same λ path and results.
    const CoupledEvaluation again = evaluate_coupled(config.finite_system(), rnd, 6, 13);
    EXPECT_EQ(coupled.lambda_sequence, again.lambda_sequence);
    EXPECT_DOUBLE_EQ(coupled.finite_drops.mean, again.finite_drops.mean);
    EXPECT_DOUBLE_EQ(coupled.mean_field_drops, again.mean_field_drops);
}

TEST(Evaluator, JsqBeatsRndAtSmallDelay) {
    ExperimentConfig config = small_experiment();
    config.dt = 1.0;
    config.eval_total_time = 100.0;
    const TupleSpace space(config.queue.num_states(), config.d);
    const EvaluationResult jsq =
        evaluate_finite(config.finite_system(), make_jsq_policy(space), 15, 17);
    const EvaluationResult rnd =
        evaluate_finite(config.finite_system(), make_rnd_policy(space), 15, 17);
    EXPECT_LT(jsq.total_drops.mean, rnd.total_drops.mean);
}

} // namespace
} // namespace mflb
