// Tests for the sharded event-driven simulator (src/des/sharded_des_system):
// shard partition sanity, per-epoch conservation, the determinism contract
// (bit-identical results for fixed (seed, K) regardless of thread count, all
// three client models), statistical equivalence to DesSystem on registry
// scenarios (CI overlap), conditioned λ replay, sojourn percentiles, and the
// evaluator/backend dispatch plumbing.
#include "des/sharded_des_system.hpp"

#include "core/evaluator.hpp"
#include "core/scenarios.hpp"
#include "policies/fixed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace mflb {
namespace {

FiniteSystemConfig small_config(ClientModel model, std::size_t shards, double dt = 2.0,
                                int horizon = 40) {
    FiniteSystemConfig config;
    config.num_queues = 30;
    config.num_clients = 900;
    config.dt = dt;
    config.horizon = horizon;
    config.client_model = model;
    config.shards = shards;
    return config;
}

// ---------------------------------------------------------------------------
// Partition and construction
// ---------------------------------------------------------------------------

TEST(ShardedDesSystem, PartitionCoversAllQueuesInContiguousBlocks) {
    FiniteSystemConfig config = small_config(ClientModel::Aggregated, 4);
    config.num_queues = 10;
    ShardedDesSystem system(config);
    ASSERT_EQ(system.num_shards(), 4u);
    // 10 over 4: near-equal blocks {3, 3, 2, 2}, contiguous and exhaustive.
    std::size_t expected_begin = 0;
    const std::size_t sizes[4] = {3, 3, 2, 2};
    for (std::size_t s = 0; s < 4; ++s) {
        const auto [begin, end] = system.shard_range(s);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_EQ(end - begin, sizes[s]);
        expected_begin = end;
    }
    EXPECT_EQ(expected_begin, config.num_queues);
}

TEST(ShardedDesSystem, ShardCountClampsAndDefaults) {
    FiniteSystemConfig config = small_config(ClientModel::Aggregated, 100);
    config.num_queues = 5;
    EXPECT_EQ(ShardedDesSystem(config).num_shards(), 5u); // K clamped to M
    config.shards = 0;
    EXPECT_EQ(ShardedDesSystem(config).num_shards(), 5u); // default min(8, M)
    config.num_queues = 100;
    EXPECT_EQ(ShardedDesSystem(config).num_shards(),
              ShardedDesSystem::kDefaultShards);
}

TEST(ShardedDesSystem, RejectsInvalidConfigsAndRules) {
    FiniteSystemConfig config = small_config(ClientModel::Aggregated, 3);
    config.num_clients = 0;
    EXPECT_THROW(ShardedDesSystem{config}, std::invalid_argument);
    config = small_config(ClientModel::InfiniteClients, 3);
    config.nu0 = {0.5, 0.5}; // wrong support size for B = 5
    EXPECT_THROW(ShardedDesSystem{config}, std::invalid_argument);

    ShardedDesSystem system(small_config(ClientModel::Aggregated, 3));
    Rng rng(1);
    system.reset(rng);
    const DecisionRule wrong = DecisionRule::mf_rnd(TupleSpace(3, 2));
    EXPECT_THROW(system.step_with_rule(wrong, rng), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Mechanics: conservation, histogram, conditioned replay
// ---------------------------------------------------------------------------

TEST(ShardedDesSystem, ConservesJobsAndCountsEveryEpoch) {
    for (const ClientModel model :
         {ClientModel::PerClient, ClientModel::Aggregated, ClientModel::InfiniteClients}) {
        SCOPED_TRACE(static_cast<int>(model));
        ShardedDesSystem system(small_config(model, 4));
        const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());
        Rng rng(7);
        system.reset(rng);
        while (!system.done()) {
            const auto before = system.queue_states();
            const std::int64_t jobs_before =
                std::accumulate(before.begin(), before.end(), std::int64_t{0});
            const EpochStats stats = system.step_with_rule(h, rng);
            const auto& after = system.queue_states();
            std::int64_t jobs_after = 0;
            for (const int z : after) {
                ASSERT_GE(z, 0);
                ASSERT_LE(z, system.config().queue.buffer);
                jobs_after += z;
            }
            EXPECT_EQ(jobs_after, jobs_before +
                                      static_cast<std::int64_t>(stats.accepted_packets) -
                                      static_cast<std::int64_t>(stats.served_packets));
            // The cross-shard histogram reduction must match a direct count.
            const std::vector<double> hist = system.empirical_distribution();
            double total = 0.0;
            for (std::size_t z = 0; z < hist.size(); ++z) {
                const auto direct = static_cast<double>(
                    std::count(after.begin(), after.end(), static_cast<int>(z)));
                EXPECT_DOUBLE_EQ(hist[z] * static_cast<double>(after.size()), direct);
                total += hist[z];
            }
            EXPECT_NEAR(total, 1.0, 1e-12);
            EXPECT_GE(stats.server_utilization, 0.0);
            EXPECT_LE(stats.server_utilization, 1.0);
            EXPECT_GE(stats.mean_queue_length, 0.0);
            EXPECT_LE(stats.mean_queue_length,
                      static_cast<double>(system.config().queue.buffer));
        }
        EXPECT_THROW(system.step_with_rule(h, rng), std::logic_error);
    }
}

TEST(ShardedDesSystem, ConditionedReplayPinsTheLambdaPath) {
    FiniteSystemConfig config = small_config(ClientModel::InfiniteClients, 3);
    config.horizon = 10;
    ShardedDesSystem system(config);
    const DecisionRule h = DecisionRule::mf_rnd(system.tuple_space());
    const std::vector<std::size_t> path{0, 1, 1, 0, 1};
    Rng rng(3);
    system.reset_conditioned(path, rng);
    for (int t = 0; t < config.horizon; ++t) {
        const std::size_t expected =
            path[std::min<std::size_t>(static_cast<std::size_t>(t), path.size() - 1)];
        EXPECT_EQ(system.lambda_state(), expected) << "epoch " << t;
        system.step_with_rule(h, rng);
    }
}

// ---------------------------------------------------------------------------
// Determinism contract: (seed, K) fixes results; thread count never does
// ---------------------------------------------------------------------------

DesEpisodeStats run_sharded_episode(ClientModel model, std::size_t shards,
                                    std::size_t threads, bool sojourn = false,
                                    bool pipeline = true,
                                    FelKind fel = FelKind::Calendar) {
    FiniteSystemConfig config = small_config(model, shards, 2.0, 25);
    config.threads = threads;
    config.track_sojourn = sojourn;
    config.pipeline = pipeline;
    config.fel = fel;
    ShardedDesSystem system(config);
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy policy = make_jsq_policy(space);
    Rng rng(91);
    system.reset(rng);
    return system.run_episode(policy, rng);
}

void expect_bit_identical(const DesEpisodeStats& a, const DesEpisodeStats& b) {
    EXPECT_EQ(a.dropped_packets, b.dropped_packets);
    EXPECT_EQ(a.accepted_packets, b.accepted_packets);
    EXPECT_EQ(a.completed_jobs, b.completed_jobs);
    EXPECT_EQ(a.total_drops_per_queue, b.total_drops_per_queue);
    EXPECT_EQ(a.discounted_return, b.discounted_return);
    EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
    EXPECT_EQ(a.server_utilization, b.server_utilization);
    EXPECT_EQ(a.mean_sojourn, b.mean_sojourn);
    EXPECT_EQ(a.sojourn_p50, b.sojourn_p50);
    EXPECT_EQ(a.sojourn_p95, b.sojourn_p95);
    EXPECT_EQ(a.sojourn_p99, b.sojourn_p99);
    ASSERT_EQ(a.drops_per_epoch.size(), b.drops_per_epoch.size());
    for (std::size_t t = 0; t < a.drops_per_epoch.size(); ++t) {
        EXPECT_EQ(a.drops_per_epoch[t], b.drops_per_epoch[t]) << "epoch " << t;
    }
}

TEST(ShardedDesSystem, ThreadCountNeverChangesResults) {
    // The acceptance contract of the sharded backend: same (seed, K) on 1,
    // 2, and 8 threads is bit-identical, for every client model, including
    // the per-job sojourn path.
    for (const ClientModel model :
         {ClientModel::PerClient, ClientModel::Aggregated, ClientModel::InfiniteClients}) {
        SCOPED_TRACE(static_cast<int>(model));
        const DesEpisodeStats one = run_sharded_episode(model, 4, 1, true);
        const DesEpisodeStats two = run_sharded_episode(model, 4, 2, true);
        const DesEpisodeStats eight = run_sharded_episode(model, 4, 8, true);
        expect_bit_identical(one, two);
        expect_bit_identical(one, eight);
    }
}

TEST(ShardedDesSystem, DeterministicForFixedSeedAndShards) {
    const DesEpisodeStats a = run_sharded_episode(ClientModel::Aggregated, 4, 0);
    const DesEpisodeStats b = run_sharded_episode(ClientModel::Aggregated, 4, 0);
    expect_bit_identical(a, b);
}

TEST(ShardedDesSystem, OddAndSingleShardCountsStayThreadInvariant) {
    // Odd K exercises the pass-through (orphan child) nodes of the pairwise
    // reduction tree at every level; K = 1 bypasses the tree entirely. Both
    // must honor the same bit-identity contract as the power-of-two case.
    for (const std::size_t shards : {std::size_t{1}, std::size_t{5}, std::size_t{7}}) {
        SCOPED_TRACE(shards);
        const DesEpisodeStats one =
            run_sharded_episode(ClientModel::Aggregated, shards, 1, true);
        const DesEpisodeStats two =
            run_sharded_episode(ClientModel::Aggregated, shards, 2, true);
        const DesEpisodeStats eight =
            run_sharded_episode(ClientModel::Aggregated, shards, 8, true);
        expect_bit_identical(one, two);
        expect_bit_identical(one, eight);
    }
}

TEST(ShardedDesSystem, SkewedInitialLoadStaysThreadInvariant) {
    // Nearly-full initial queues start the per-shard high-water marks at the
    // top of the state space and drain them down over the episode, covering
    // the hot_hi raise (arrivals) and shrink (empty-top) paths on both sides
    // of the reduction tree.
    const auto run = [](std::size_t threads) {
        FiniteSystemConfig config = small_config(ClientModel::Aggregated, 5, 2.0, 25);
        config.threads = threads;
        config.track_sojourn = true;
        config.nu0 = {0.1, 0.0, 0.0, 0.0, 0.1, 0.8};
        ShardedDesSystem system(config);
        const TupleSpace space(config.queue.num_states(), config.d);
        const FixedRulePolicy policy = make_jsq_policy(space);
        Rng rng(97);
        system.reset(rng);
        return system.run_episode(policy, rng);
    };
    const DesEpisodeStats one = run(1);
    const DesEpisodeStats eight = run(8);
    EXPECT_GT(one.dropped_packets, 0u); // the skew actually stresses the top states
    expect_bit_identical(one, eight);
}

TEST(ShardedDesSystem, BarrierProfileSplitsEpochTime) {
    FiniteSystemConfig config = small_config(ClientModel::Aggregated, 4, 2.0, 12);
    config.threads = 1;
    ShardedDesSystem system(config);
    const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());
    Rng rng(5);
    system.reset(rng);
    EXPECT_EQ(system.barrier_profile().epochs, 0u);
    while (!system.done()) {
        system.step_with_rule(h, rng);
    }
    const ShardedDesSystem::BarrierProfile& profile = system.barrier_profile();
    EXPECT_EQ(profile.epochs, 12u);
    EXPECT_GT(profile.serial_seconds(), 0.0);
    EXPECT_GE(profile.serial_prologue_seconds, 0.0);
    EXPECT_GE(profile.overlapped_compute_seconds, 0.0);
    EXPECT_GE(profile.reduction_seconds, 0.0);
    EXPECT_GE(profile.parallel_seconds, 0.0);
    EXPECT_GE(profile.total_seconds(), profile.serial_seconds());
    system.reset(rng); // reset clears the profile with the rest of the state
    EXPECT_EQ(system.barrier_profile().epochs, 0u);
    EXPECT_EQ(system.barrier_profile().serial_seconds(), 0.0);
    EXPECT_EQ(system.barrier_profile().overlapped_compute_seconds, 0.0);
}

TEST(ShardedDesSystem, PipelineOnAndOffAreBitIdentical) {
    // The pipelined barrier (eager reduction folds, offloaded epoch compute,
    // fused gather kernels) must reproduce the non-pipelined episode bit for
    // bit — for every client model, both FEL kinds, tree shapes with and
    // without orphan nodes (K = 1 bypasses the tree, K = 5 has pass-through
    // children, K = 8 is the full binary case), on 1, 2, and 8 threads.
    for (const ClientModel model :
         {ClientModel::PerClient, ClientModel::Aggregated, ClientModel::InfiniteClients}) {
        for (const FelKind fel : {FelKind::Heap, FelKind::Calendar}) {
            for (const std::size_t shards : {std::size_t{1}, std::size_t{5}, std::size_t{8}}) {
                SCOPED_TRACE(static_cast<int>(model) * 100 +
                             static_cast<int>(fel) * 10 + static_cast<int>(shards));
                const DesEpisodeStats off =
                    run_sharded_episode(model, shards, 1, true, false, fel);
                for (const std::size_t threads :
                     {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
                    const DesEpisodeStats on =
                        run_sharded_episode(model, shards, threads, true, true, fel);
                    expect_bit_identical(off, on);
                }
            }
        }
    }
}

TEST(ShardedDesSystem, ClassicalRouterPipelineOnAndOffAreBitIdentical) {
    // The router epoch path has its own pipelined flow (weight law on the
    // overlapped task, per-shard vec_sum masses): pin jsq-d and sq-stale
    // router-only episodes across the seam and across thread counts.
    const auto run = [](RouterKind kind, bool pipeline, std::size_t threads) {
        FiniteSystemConfig config = small_config(ClientModel::Aggregated, 5, 2.0, 25);
        config.threads = threads;
        config.pipeline = pipeline;
        config.track_sojourn = true;
        config.router.kind = kind;
        config.router.d = 2;
        config.router.stale_period = 4.0;
        ShardedDesSystem system(config);
        Rng rng(91);
        system.reset(rng);
        return system.run_episode(rng);
    };
    for (const RouterKind kind : {RouterKind::JsqD, RouterKind::SqStale}) {
        SCOPED_TRACE(static_cast<int>(kind));
        const DesEpisodeStats off = run(kind, false, 1);
        expect_bit_identical(off, run(kind, true, 1));
        expect_bit_identical(off, run(kind, true, 8));
    }
}

TEST(ShardedDesSystem, ShardCountIsPartOfTheContract) {
    // K is a modeling choice like the seed: different K re-partitions the
    // RNG streams, so trajectories legitimately differ (while remaining
    // statistically equivalent — covered below).
    const DesEpisodeStats k2 = run_sharded_episode(ClientModel::Aggregated, 2, 1);
    const DesEpisodeStats k5 = run_sharded_episode(ClientModel::Aggregated, 5, 1);
    EXPECT_NE(k2.accepted_packets, k5.accepted_packets);
}

// ---------------------------------------------------------------------------
// Statistical equivalence with DesSystem (registry scenarios)
// ---------------------------------------------------------------------------

void expect_event_backends_agree(FiniteSystemConfig config, std::size_t episodes,
                                 std::uint64_t seed) {
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy policy = make_jsq_policy(space);
    const EvaluationResult des = evaluate_des(config, policy, episodes, seed);
    const EvaluationResult sharded = evaluate_sharded_des(config, policy, episodes, seed);

    // Identical model, independent randomness: the 95% CIs must overlap (a
    // small slack absorbs the ~5% of seeds where disjoint CIs are expected).
    const double scale = std::max({1.0, des.total_drops.mean, sharded.total_drops.mean});
    EXPECT_LE(std::abs(des.total_drops.mean - sharded.total_drops.mean),
              des.total_drops.half_width + sharded.total_drops.half_width + 0.05 * scale)
        << "des " << des.total_drops.mean << " +- " << des.total_drops.half_width
        << " vs sharded " << sharded.total_drops.mean << " +- "
        << sharded.total_drops.half_width;
    EXPECT_NEAR(des.mean_queue_length.mean, sharded.mean_queue_length.mean,
                des.mean_queue_length.half_width + sharded.mean_queue_length.half_width +
                    0.05 * des.mean_queue_length.mean);
    EXPECT_NEAR(des.utilization.mean, sharded.utilization.mean,
                des.utilization.half_width + sharded.utilization.half_width + 0.03);
}

TEST(ShardedVsDes, Table1ScenarioDropRatesAgree) {
    ExperimentConfig experiment = scenario_or_die("table1").experiment;
    experiment.dt = 5.0; // the herding-prone delay of Figure 5
    experiment.eval_total_time = 150.0;
    experiment.shards = 8;
    expect_event_backends_agree(experiment.finite_system(), 24, 111);
}

TEST(ShardedVsDes, DelaySweepScenarioDropRatesAgree) {
    ExperimentConfig experiment = scenario_or_die("delay-sweep").experiment;
    experiment.dt = 5.0;
    experiment.eval_total_time = 100.0;
    experiment.shards = 8;
    expect_event_backends_agree(experiment.finite_system(), 16, 222);
}

TEST(ShardedVsDes, InfiniteClientModelAgrees) {
    ExperimentConfig experiment = scenario_or_die("table1").experiment;
    experiment.dt = 3.0;
    experiment.eval_total_time = 120.0;
    experiment.client_model = ClientModel::InfiniteClients;
    experiment.shards = 6;
    expect_event_backends_agree(experiment.finite_system(), 20, 333);
}

TEST(ShardedVsDes, PerClientModelAgrees) {
    ExperimentConfig experiment = scenario_or_die("table1").experiment;
    experiment.dt = 5.0;
    experiment.eval_total_time = 60.0;
    experiment.num_queues = 50;
    experiment.num_clients = 1000;
    experiment.client_model = ClientModel::PerClient;
    experiment.shards = 4;
    expect_event_backends_agree(experiment.finite_system(), 16, 444);
}

// ---------------------------------------------------------------------------
// Sojourn percentiles (cross-shard P2Quantile merge)
// ---------------------------------------------------------------------------

TEST(ShardedDesSystem, SojournPercentilesAreOrderedAndPlausible) {
    FiniteSystemConfig config = small_config(ClientModel::Aggregated, 5, 5.0, 60);
    config.track_sojourn = true;
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy policy = make_rnd_policy(space);
    ShardedDesSystem system(config);
    Rng rng(31);
    system.reset(rng);
    const DesEpisodeStats stats = system.run_episode(policy, rng);
    ASSERT_GT(stats.completed_jobs, 1000u);
    EXPECT_GT(stats.sojourn_p50, 0.0);
    EXPECT_LE(stats.sojourn_p50, stats.sojourn_p95);
    EXPECT_LE(stats.sojourn_p95, stats.sojourn_p99);
    EXPECT_GT(stats.mean_sojourn, 0.0);
    EXPECT_LT(stats.mean_sojourn, stats.sojourn_p99);
    // And the evaluator surfaces the same pipeline with CIs.
    SojournSummary summary;
    const EvaluationResult result = evaluate_sharded_des(config, policy, 6, 47, 0, &summary);
    EXPECT_EQ(result.episodes, 6u);
    EXPECT_GT(summary.p50.mean, 0.0);
    EXPECT_LE(summary.p50.mean, summary.p95.mean);
    EXPECT_LE(summary.p95.mean, summary.p99.mean);
}

// ---------------------------------------------------------------------------
// Plumbing: backend names, dispatch, scenario registry
// ---------------------------------------------------------------------------

TEST(ShardedDesSystem, BackendNameAndParseRoundTrip) {
    EXPECT_EQ(backend_name(SimBackend::ShardedDes), "sharded-des");
    EXPECT_EQ(parse_backend("sharded-des"), SimBackend::ShardedDes);
    EXPECT_EQ(parse_backend("sharded"), SimBackend::ShardedDes);
    EXPECT_THROW(parse_backend("sharded-dse"), std::invalid_argument);
}

TEST(ShardedDesSystem, EvaluateBackendDispatchesToShardedDes) {
    FiniteSystemConfig config = small_config(ClientModel::Aggregated, 3, 2.0, 10);
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy policy = make_jsq_policy(space);
    const EvaluationResult direct = evaluate_sharded_des(config, policy, 4, 9);
    const EvaluationResult dispatched =
        evaluate_backend(SimBackend::ShardedDes, config, policy, 4, 9);
    EXPECT_EQ(direct.episodes, dispatched.episodes);
    EXPECT_DOUBLE_EQ(direct.total_drops.mean, dispatched.total_drops.mean);
}

TEST(ShardedDesSystem, LargeNShardedScenarioSmokeRuns) {
    // One decision epoch of the registered scenario: M = 10^4, N = 10^6,
    // K = 8 shards — must run and produce sane statistics.
    const Scenario& scenario = scenario_or_die("large-n-sharded");
    EXPECT_EQ(scenario.experiment.backend, SimBackend::ShardedDes);
    EXPECT_EQ(scenario.experiment.shards, 8u);
    ShardedDesSystem system(scenario.experiment.finite_system());
    EXPECT_EQ(system.num_shards(), 8u);
    const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());
    Rng rng(5);
    system.reset(rng);
    const EpochStats stats = system.step_with_rule(h, rng);
    EXPECT_GT(stats.accepted_packets, 0u);
    EXPECT_GE(stats.server_utilization, 0.0);
    EXPECT_LE(stats.server_utilization, 1.0);
    EXPECT_EQ(system.time(), 1);
}

} // namespace
} // namespace mflb
