// Tests for the exact discretization of the master equation (eqs. 20-28).
#include "field/transition.hpp"
#include "math/expm.hpp"
#include "math/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace mflb {
namespace {

TEST(ExactDiscretization, ValidatesConstruction) {
    EXPECT_THROW(ExactDiscretization({0, 1.0}, 1.0), std::invalid_argument);
    EXPECT_THROW(ExactDiscretization({5, 0.0}, 1.0), std::invalid_argument);
    EXPECT_THROW(ExactDiscretization({5, 1.0}, 0.0), std::invalid_argument);
}

TEST(ExactDiscretization, GeneratorColumnsSumToArrivalInDropRow) {
    // Over the probability block, each column of the transposed generator
    // sums to zero except column B, whose dropped outflow is accounted in
    // the bookkeeping row.
    const ExactDiscretization disc({5, 1.0}, 2.0);
    const Matrix q = disc.extended_generator(0.7);
    const std::size_t b = 5;
    for (std::size_t col = 0; col <= b; ++col) {
        double sum = 0.0;
        for (std::size_t row = 0; row <= b + 1; ++row) {
            sum += q(row, col);
        }
        EXPECT_NEAR(sum, col == b ? 0.7 : 0.0, 1e-14) << "col=" << col;
    }
}

TEST(ExactDiscretization, PropagationConservesProbability) {
    const ExactDiscretization disc({5, 1.0}, 5.0);
    for (int z0 = 0; z0 <= 5; ++z0) {
        const auto out = disc.propagate_queue(z0, 0.9);
        double sum = 0.0;
        for (std::size_t i = 0; i < 6; ++i) {
            EXPECT_GE(out[i], -1e-12);
            sum += out[i];
        }
        EXPECT_NEAR(sum, 1.0, 1e-10) << "z0=" << z0;
        EXPECT_GE(out[6], 0.0);
    }
}

TEST(ExactDiscretization, ZeroArrivalsMeansNoDrops) {
    const ExactDiscretization disc({5, 1.0}, 10.0);
    for (int z0 = 0; z0 <= 5; ++z0) {
        EXPECT_NEAR(disc.expected_queue_drops(z0, 0.0), 0.0, 1e-12);
    }
    // With no arrivals and dt = 10, P(drained) = P(Erlang(5, 1) <= 10),
    // which is 1 - sum_{k<5} e^{-10} 10^k / k! ≈ 0.9707.
    const auto out = disc.propagate_queue(5, 0.0);
    EXPECT_NEAR(out[0], 0.970747, 1e-4);
}

TEST(ExactDiscretization, DropsBoundedByArrivalMass) {
    // E[drops] <= a * dt (cannot drop more than arrives).
    const ExactDiscretization disc({5, 1.0}, 4.0);
    for (double a : {0.3, 0.9, 2.0}) {
        for (int z0 : {0, 3, 5}) {
            const double drops = disc.expected_queue_drops(z0, a);
            EXPECT_GE(drops, 0.0);
            EXPECT_LE(drops, a * 4.0 + 1e-12);
        }
    }
}

TEST(ExactDiscretization, HeavyOverloadDropsAlmostEverything) {
    // a >> alpha and full buffer: nearly all of a*dt is lost.
    const ExactDiscretization disc({3, 0.01}, 50.0);
    const double drops = disc.expected_queue_drops(3, 5.0);
    EXPECT_GT(drops, 0.95 * 5.0 * 50.0 - 5.0);
}

TEST(ExactDiscretization, MatchesRk4Oracle) {
    const ExactDiscretization disc({5, 1.0}, 3.0);
    const double arrival = 1.2;
    const Matrix q = disc.extended_generator(arrival);
    std::vector<double> e0(7, 0.0);
    e0[2] = 1.0;
    const auto oracle = integrate_linear_ode_rk4(q * 3.0, 1.0, e0, 5000);
    const auto exact = disc.propagate_queue(2, arrival);
    for (std::size_t i = 0; i < 7; ++i) {
        EXPECT_NEAR(exact[i], oracle[i], 1e-7) << "i=" << i;
    }
}

TEST(MeanFieldStep, NuRemainsDistribution) {
    const QueueParams params{5, 1.0};
    const ExactDiscretization disc(params, 5.0);
    const TupleSpace space(params.num_states(), 2);
    const DecisionRule h = DecisionRule::mf_jsq(space);
    std::vector<double> nu{1.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    for (int t = 0; t < 20; ++t) {
        const MeanFieldStep step = disc.step(nu, h, 0.9);
        EXPECT_TRUE(is_probability_vector(step.nu_next, 1e-8)) << "t=" << t;
        EXPECT_GE(step.expected_drops, 0.0);
        nu = step.nu_next;
    }
}

TEST(MeanFieldStep, StartsEmptyNoDropsInitially) {
    // From ν = δ_0 with moderate load and small dt, drops are tiny (the
    // buffer must fill first).
    const ExactDiscretization disc({5, 1.0}, 0.5);
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::mf_jsq(space);
    const std::vector<double> nu{1.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    const MeanFieldStep step = disc.step(nu, h, 0.9);
    EXPECT_LT(step.expected_drops, 1e-4);
}

TEST(MeanFieldStep, JsqBeatsRndInstantaneouslyAtHighFill) {
    // With a spread distribution, routing to shorter queues must lose fewer
    // packets over one epoch than random routing.
    const ExactDiscretization disc({5, 1.0}, 1.0);
    const TupleSpace space(6, 2);
    const std::vector<double> nu{0.1, 0.1, 0.2, 0.2, 0.2, 0.2};
    const MeanFieldStep jsq = disc.step(nu, DecisionRule::mf_jsq(space), 0.9);
    const MeanFieldStep rnd = disc.step(nu, DecisionRule::mf_rnd(space), 0.9);
    EXPECT_LT(jsq.expected_drops, rnd.expected_drops);
}

TEST(MeanFieldStep, StepWithRatesMatchesStep) {
    const ExactDiscretization disc({5, 1.0}, 2.0);
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::greedy_softmax(space, 1.0);
    const std::vector<double> nu{0.4, 0.3, 0.1, 0.1, 0.05, 0.05};
    const MeanFieldStep via_step = disc.step(nu, h, 0.8);
    const ArrivalFlow flow = compute_arrival_flow(nu, h, 0.8);
    const MeanFieldStep via_rates = disc.step_with_rates(nu, flow.rate_by_state);
    for (std::size_t z = 0; z < nu.size(); ++z) {
        EXPECT_NEAR(via_step.nu_next[z], via_rates.nu_next[z], 1e-14);
    }
    EXPECT_NEAR(via_step.expected_drops, via_rates.expected_drops, 1e-14);
}

TEST(MeanFieldStep, MassBalance) {
    // Per-queue bookkeeping over one epoch: mean fill change equals accepted
    // arrivals minus completed services; accepted = offered - dropped.
    // We verify the weaker corollary: E[fill_{t+1}] - E[fill_t] <= offered - drops.
    const ExactDiscretization disc({5, 1.0}, 2.0);
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::mf_rnd(space);
    const std::vector<double> nu{0.2, 0.2, 0.2, 0.2, 0.1, 0.1};
    const double lambda = 0.9;
    const MeanFieldStep step = disc.step(nu, h, lambda);
    auto mean_fill = [](std::span<const double> dist) {
        double m = 0.0;
        for (std::size_t z = 0; z < dist.size(); ++z) {
            m += static_cast<double>(z) * dist[z];
        }
        return m;
    };
    const double offered = lambda * 2.0; // per queue: λ·dt under RND
    const double delta_fill = mean_fill(step.nu_next) - mean_fill(nu);
    EXPECT_LE(delta_fill, offered - step.expected_drops + 1e-9);
}

// Property sweep: conservation holds across the paper's Δt and λ grid.
struct StepCase {
    double dt;
    double lambda;
    double beta;
};

class StepConservation : public ::testing::TestWithParam<StepCase> {};

TEST_P(StepConservation, DistributionAndDropBounds) {
    const auto [dt, lambda, beta] = GetParam();
    const ExactDiscretization disc({5, 1.0}, dt);
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::greedy_softmax(space, beta);
    std::vector<double> nu{1.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    double total_drops = 0.0;
    for (int t = 0; t < 10; ++t) {
        const MeanFieldStep step = disc.step(nu, h, lambda);
        ASSERT_TRUE(is_probability_vector(step.nu_next, 1e-8));
        ASSERT_GE(step.expected_drops, -1e-12);
        ASSERT_LE(step.expected_drops, 2.0 * lambda * dt + 1e-9);
        total_drops += step.expected_drops;
        nu = step.nu_next;
    }
    EXPECT_LE(total_drops, 10.0 * lambda * dt);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StepConservation,
    ::testing::Values(StepCase{1.0, 0.9, 0.0}, StepCase{1.0, 0.6, 5.0}, StepCase{3.0, 0.9, 1.0},
                      StepCase{5.0, 0.9, 0.5}, StepCase{7.0, 0.6, 2.0}, StepCase{10.0, 0.9, 0.0},
                      StepCase{10.0, 0.9, 50.0}));

} // namespace
} // namespace mflb
