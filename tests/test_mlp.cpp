// Gradient-check and shape tests for the MLP and Adam.
#include "rl/adam.hpp"
#include "rl/mlp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace mflb::rl {
namespace {

TEST(Mlp, ShapeValidation) {
    Rng rng(1);
    EXPECT_THROW(Mlp({4}, rng), std::invalid_argument);
    EXPECT_THROW(Mlp({4, 0, 2}, rng), std::invalid_argument);
    Mlp net({3, 8, 2}, rng);
    EXPECT_EQ(net.input_dim(), 3u);
    EXPECT_EQ(net.output_dim(), 2u);
    EXPECT_EQ(net.parameter_count(), 3u * 8 + 8 + 8 * 2 + 2);
    EXPECT_THROW(net.forward(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Mlp, DeterministicForward) {
    Rng rng(2);
    Mlp net({4, 16, 3}, rng);
    const std::vector<double> x{0.1, -0.5, 0.3, 0.9};
    const auto y1 = net.forward(x);
    const auto y2 = net.forward(x);
    ASSERT_EQ(y1.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(y1[i], y2[i]);
    }
}

TEST(Mlp, OutputScaleShrinksInitialOutputs) {
    Rng rng1(3), rng2(3);
    Mlp small({6, 32, 4}, rng1, 0.01);
    Mlp large({6, 32, 4}, rng2, 1.0);
    const std::vector<double> x{0.5, 0.5, 0.5, 0.5, 0.5, 0.5};
    double small_norm = 0.0, large_norm = 0.0;
    for (double v : small.forward(x)) {
        small_norm += std::abs(v);
    }
    for (double v : large.forward(x)) {
        large_norm += std::abs(v);
    }
    EXPECT_LT(small_norm, large_norm);
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
    Rng rng(4);
    Mlp net({3, 8, 5, 2}, rng, 1.0);
    const std::vector<double> x{0.2, -0.7, 0.5};
    // Scalar loss: L = sum(w_i * y_i) with fixed weights.
    const std::vector<double> loss_weights{1.3, -0.8};

    Mlp::Workspace ws;
    net.forward_cached(x, ws);
    std::vector<double> analytic(net.parameter_count(), 0.0);
    net.backward(ws, loss_weights, analytic);

    auto loss_at = [&](const Mlp& m) {
        const auto y = m.forward(x);
        return loss_weights[0] * y[0] + loss_weights[1] * y[1];
    };
    const double eps = 1e-6;
    Mlp probe = net;
    std::vector<double> params(net.parameters().begin(), net.parameters().end());
    for (std::size_t i = 0; i < params.size(); i += 7) { // sample every 7th
        std::vector<double> bumped = params;
        bumped[i] += eps;
        probe.set_parameters(bumped);
        const double up = loss_at(probe);
        bumped[i] -= 2 * eps;
        probe.set_parameters(bumped);
        const double down = loss_at(probe);
        const double numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(analytic[i], numeric, 1e-5 * std::max(1.0, std::abs(numeric)))
            << "param " << i;
    }
}

TEST(Mlp, GradInputMatchesFiniteDifferences) {
    Rng rng(5);
    Mlp net({4, 6, 1}, rng, 1.0);
    const std::vector<double> x{0.3, 0.1, -0.2, 0.8};
    Mlp::Workspace ws;
    net.forward_cached(x, ws);
    std::vector<double> grad_params(net.parameter_count(), 0.0);
    std::vector<double> grad_input;
    const std::vector<double> grad_out{1.0};
    net.backward(ws, grad_out, grad_params, &grad_input);
    ASSERT_EQ(grad_input.size(), 4u);
    const double eps = 1e-6;
    for (std::size_t i = 0; i < 4; ++i) {
        std::vector<double> xp = x;
        xp[i] += eps;
        const double up = net.forward(xp)[0];
        xp[i] -= 2 * eps;
        const double down = net.forward(xp)[0];
        EXPECT_NEAR(grad_input[i], (up - down) / (2 * eps), 1e-6);
    }
}

TEST(Mlp, BackwardAccumulates) {
    Rng rng(6);
    Mlp net({2, 4, 1}, rng, 1.0);
    const std::vector<double> x{0.5, -0.5};
    Mlp::Workspace ws;
    net.forward_cached(x, ws);
    std::vector<double> grad_once(net.parameter_count(), 0.0);
    const std::vector<double> g{1.0};
    net.backward(ws, g, grad_once);
    std::vector<double> grad_twice(net.parameter_count(), 0.0);
    net.backward(ws, g, grad_twice);
    net.backward(ws, g, grad_twice);
    for (std::size_t i = 0; i < grad_once.size(); ++i) {
        EXPECT_NEAR(grad_twice[i], 2.0 * grad_once[i], 1e-12);
    }
}

TEST(Mlp, BatchedForwardMatchesScalarRows) {
    Rng rng(21);
    Mlp net({4, 16, 9, 3}, rng, 1.0);
    const std::size_t batch = 7;
    std::vector<double> inputs(batch * 4);
    for (double& v : inputs) {
        v = rng.normal();
    }
    Mlp::BatchWorkspace bws(net, batch);
    const std::span<const double> out = net.forward_cached_batch(inputs, batch, bws);
    ASSERT_EQ(out.size(), batch * 3);
    for (std::size_t row = 0; row < batch; ++row) {
        const auto scalar =
            net.forward(std::span<const double>(inputs.data() + row * 4, 4));
        for (std::size_t o = 0; o < 3; ++o) {
            EXPECT_NEAR(out[row * 3 + o], scalar[o], 1e-12) << "row " << row << " out " << o;
        }
    }
    // forward_batch copies the same rows into a caller buffer.
    std::vector<double> copied(batch * 3, 0.0);
    net.forward_batch(inputs, batch, bws, copied);
    for (std::size_t i = 0; i < copied.size(); ++i) {
        EXPECT_DOUBLE_EQ(copied[i], out[i]);
    }
    // A smaller batch through the same constructor-sized workspace.
    const std::span<const double> small = net.forward_cached_batch(
        std::span<const double>(inputs.data(), 2 * 4), 2, bws);
    EXPECT_EQ(small.size(), 2u * 3);
    EXPECT_THROW(net.forward_cached_batch(inputs, batch + 1, bws), std::invalid_argument);
}

TEST(Mlp, BatchedBackwardMatchesScalarSum) {
    Rng rng(22);
    Mlp net({3, 12, 5, 2}, rng, 1.0);
    const std::size_t batch = 6;
    std::vector<double> inputs(batch * 3), grad_out(batch * 2);
    for (double& v : inputs) {
        v = rng.normal();
    }
    for (double& v : grad_out) {
        v = rng.normal();
    }

    // Scalar reference: per-sample backward() accumulated in row order.
    std::vector<double> scalar_grad(net.parameter_count(), 0.0);
    std::vector<std::vector<double>> scalar_grad_inputs(batch);
    for (std::size_t row = 0; row < batch; ++row) {
        Mlp::Workspace ws;
        net.forward_cached(std::span<const double>(inputs.data() + row * 3, 3), ws);
        net.backward(ws, std::span<const double>(grad_out.data() + row * 2, 2), scalar_grad,
                     &scalar_grad_inputs[row]);
    }

    Mlp::BatchWorkspace bws(net, batch);
    net.forward_cached_batch(inputs, batch, bws);
    std::vector<double> batched_grad(net.parameter_count(), 0.0);
    std::vector<double> batched_grad_inputs(batch * 3, 0.0);
    net.backward_batch(bws, grad_out, batched_grad, batched_grad_inputs);

    for (std::size_t i = 0; i < scalar_grad.size(); ++i) {
        EXPECT_NEAR(batched_grad[i], scalar_grad[i],
                    1e-12 * std::max(1.0, std::abs(scalar_grad[i])))
            << "param " << i;
    }
    for (std::size_t row = 0; row < batch; ++row) {
        for (std::size_t i = 0; i < 3; ++i) {
            EXPECT_NEAR(batched_grad_inputs[row * 3 + i], scalar_grad_inputs[row][i], 1e-12)
                << "row " << row << " input " << i;
        }
    }
}

TEST(Mlp, BatchedBackwardAccumulates) {
    Rng rng(23);
    Mlp net({2, 4, 1}, rng, 1.0);
    const std::vector<double> inputs{0.5, -0.5, 0.25, 0.75};
    const std::vector<double> grad_out{1.0, -2.0};
    Mlp::BatchWorkspace bws(net, 2);
    net.forward_cached_batch(inputs, 2, bws);
    std::vector<double> once(net.parameter_count(), 0.0);
    net.backward_batch(bws, grad_out, once);
    std::vector<double> twice(net.parameter_count(), 0.0);
    net.backward_batch(bws, grad_out, twice);
    net.backward_batch(bws, grad_out, twice);
    for (std::size_t i = 0; i < once.size(); ++i) {
        EXPECT_NEAR(twice[i], 2.0 * once[i], 1e-12);
    }
}

TEST(Adam, MinimizesQuadratic) {
    // f(p) = sum (p_i - target_i)^2
    const std::vector<double> target{1.0, -2.0, 0.5};
    std::vector<double> params{0.0, 0.0, 0.0};
    Adam opt(3, 0.05);
    for (int it = 0; it < 2000; ++it) {
        std::vector<double> grads(3);
        for (std::size_t i = 0; i < 3; ++i) {
            grads[i] = 2.0 * (params[i] - target[i]);
        }
        opt.step(params, grads);
    }
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(params[i], target[i], 1e-3);
    }
    EXPECT_EQ(opt.updates(), 2000u);
}

TEST(Adam, GradientClippingLimitsStepSize) {
    std::vector<double> params{0.0};
    Adam opt(1, 1.0);
    const std::vector<double> huge_grad{1e9};
    opt.step(params, huge_grad, /*max_grad_norm=*/1.0);
    // With clipping the first Adam step is bounded by lr (m_hat/sqrt(v_hat) ≈ 1).
    EXPECT_LT(std::abs(params[0]), 1.5);
}

TEST(Adam, SizeMismatchThrows) {
    Adam opt(2, 0.1);
    std::vector<double> params{0.0, 0.0};
    EXPECT_THROW(opt.step(params, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Mlp, TrainsXorWithAdam) {
    // End-to-end sanity: a 2-8-1 tanh net learns XOR.
    Rng rng(7);
    Mlp net({2, 8, 1}, rng, 1.0);
    Adam opt(net.parameter_count(), 0.02);
    const double inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const double targets[4] = {0, 1, 1, 0};
    Mlp::Workspace ws;
    std::vector<double> grads(net.parameter_count());
    for (int epoch = 0; epoch < 3000; ++epoch) {
        std::fill(grads.begin(), grads.end(), 0.0);
        for (int k = 0; k < 4; ++k) {
            const std::vector<double> x{inputs[k][0], inputs[k][1]};
            const auto y = net.forward_cached(x, ws);
            const std::vector<double> grad_out{2.0 * (y[0] - targets[k])};
            net.backward(ws, grad_out, grads);
        }
        opt.step(net.parameters(), grads);
    }
    for (int k = 0; k < 4; ++k) {
        const std::vector<double> x{inputs[k][0], inputs[k][1]};
        EXPECT_NEAR(net.forward(x)[0], targets[k], 0.2) << "case " << k;
    }
}

} // namespace
} // namespace mflb::rl
