/// Quickstart: simulate a delayed-information load-balancing cluster and
/// compare the classic JSQ(2) and RND dispatch policies.
///
/// The setting is the paper's: M finite-buffer queues, N clients that only
/// see queue states refreshed every Δt time units, jobs arriving at a
/// Markov-modulated rate. With Δt = 5 the stale snapshots make JSQ(2) herd
/// onto the momentarily-shortest queues, and random dispatch is already
/// competitive — the motivation for learning a policy in between (see
/// examples/train_and_deploy.cpp).
#include "core/mflb.hpp"

#include <cstdio>

int main() {
    using namespace mflb;

    // 1. Configure the system: resolve the paper's Table 1 baseline from the
    //    scenario registry, then override the knobs this walkthrough varies.
    ExperimentConfig config = scenario_or_die("table1").experiment;
    config.dt = 5.0;          // queue states are broadcast every 5 time units
    config.eval_total_time = 250.0;

    std::printf("System: M=%zu queues (buffer B=%d), N=%llu clients, dt=%.1f\n\n",
                config.num_queues, config.queue.buffer,
                static_cast<unsigned long long>(config.num_clients), config.dt);

    // 2. Build the two baseline dispatch policies over Z^d tuples.
    const TupleSpace space(config.queue.num_states(), config.d);
    const FixedRulePolicy jsq = make_jsq_policy(space);
    const FixedRulePolicy rnd = make_rnd_policy(space);

    // 3. Monte Carlo evaluation with 95% confidence intervals.
    const std::size_t episodes = 20;
    const EvaluationResult jsq_result =
        evaluate_finite(config.finite_system(), jsq, episodes, /*seed=*/1);
    const EvaluationResult rnd_result =
        evaluate_finite(config.finite_system(), rnd, episodes, /*seed=*/1);

    Table table({"policy", "total drops/queue", "mean queue length", "utilization"});
    table.row()
        .cell(jsq.name())
        .cell_ci(jsq_result.total_drops.mean, jsq_result.total_drops.half_width)
        .cell(jsq_result.mean_queue_length.mean, 3)
        .cell(jsq_result.utilization.mean, 3);
    table.row()
        .cell(rnd.name())
        .cell_ci(rnd_result.total_drops.mean, rnd_result.total_drops.half_width)
        .cell(rnd_result.mean_queue_length.mean, 3)
        .cell(rnd_result.utilization.mean, 3);
    std::printf("%s\n", table.to_text().c_str());

    // 4. Peek at one trajectory: empirical queue-state distribution drift.
    FiniteSystem system(config.finite_system());
    Rng rng(7);
    system.reset(rng);
    for (int t = 0; t < 5; ++t) {
        system.step(jsq, rng);
    }
    std::printf("Queue-state histogram after 5 epochs under %s:\n", jsq.name().c_str());
    const auto hist = system.empirical_distribution();
    for (std::size_t z = 0; z < hist.size(); ++z) {
        std::printf("  %zu jobs: %5.1f%%  ", z, 100.0 * hist[z]);
        const int bar = static_cast<int>(hist[z] * 50);
        for (int i = 0; i < bar; ++i) {
            std::printf("#");
        }
        std::printf("\n");
    }
    std::printf("\nNext: examples/train_and_deploy trains a mean-field policy that beats\n"
                "both baselines at this synchronization delay.\n");
    return 0;
}
