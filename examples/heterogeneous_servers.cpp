/// Heterogeneous servers — the extension the paper's discussion names first.
/// A cluster mixes one generation of slow machines with one of fast ones;
/// clients sample d = 2 servers per epoch and see (stale) queue fills plus
/// the servers' advertised service rates. Shortest-Expected-Delay SED(d)
/// exploits the rates; JSQ(d) ignores them; RND ignores everything.
#include "core/mflb.hpp"

#include <cstdio>

int main() {
    using namespace mflb;

    // Start from the registry's "heterogeneous" scenario, then reshape the
    // fleet for this walkthrough's narrative:
    // 200 servers: 60% legacy (0.5 jobs/unit), 40% current-gen (1.75).
    HeterogeneousConfig config = *scenario_or_die("heterogeneous").heterogeneous;
    config.num_clients = 20000;
    config.service_rates.assign(200, 0.5);
    for (std::size_t j = 120; j < 200; ++j) {
        config.service_rates[j] = 1.75;
    }
    double capacity = 0.0;
    for (double r : config.service_rates) {
        capacity += r;
    }
    std::printf("Cluster: 200 servers (120 x 0.5 + 80 x 1.75 = %.0f total capacity),\n"
                "offered load %.1f x lambda, dt=%.1f, d=%d\n\n",
                capacity, 200 * config.arrivals.mean_rate(), config.dt, config.d);

    const HeteroJsqPolicy jsq;
    const HeteroSedPolicy sed;
    const HeteroRndPolicy rnd;

    Table table({"policy", "drops/server (95% CI)", "mean fill"});
    const int episodes = 12;
    for (const HeteroClientPolicy* policy :
         std::initializer_list<const HeteroClientPolicy*>{&sed, &jsq, &rnd}) {
        RunningStat drops, fill;
        for (int rep = 0; rep < episodes; ++rep) {
            HeterogeneousSystem system(config);
            Rng rng(100 + rep);
            system.reset(rng);
            const auto stats = system.run_episode(*policy, rng);
            drops.add(stats.total_drops_per_queue);
            fill.add(stats.mean_queue_length);
        }
        const auto ci = confidence_interval_95(drops);
        table.row().cell(policy->name()).cell_ci(ci.mean, ci.half_width).cell(fill.mean(), 3);
        std::fprintf(stderr, "[hetero] %s done\n", policy->name().c_str());
    }
    std::printf("%s\n", table.to_text().c_str());
    std::printf("Reading: SED(d) routes long-but-fast over short-but-slow queues and\n"
                "drops the fewest jobs; JSQ(d) wastes the fast tier; RND is the floor.\n"
                "Extending the learned mean-field policy to (state, class) tuples is\n"
                "the natural next step the paper sketches in its discussion.\n");
    return 0;
}
