/// End-to-end pipeline from a traffic trace to a deployed policy — the
/// workflow the paper sketches for practice ("modulation rates estimated
/// from a real system"):
///   1. observe per-epoch arrival counts at the cluster ingress (here a
///      synthetic trace whose ground truth we know);
///   2. fit the Markov-modulated arrival process with the Poisson-HMM EM
///      estimator (Baum-Welch);
///   3. train a mean-field policy against the *fitted* model;
///   4. deploy it on the (simulated) real cluster and check it still beats
///      the baselines even though it was trained on estimated dynamics.
#include "core/mflb.hpp"

#include <cstdio>

int main() {
    using namespace mflb;
    const double dt = 5.0;
    const std::size_t m_observed = 200; // queues behind the ingress counter

    // --- 1. the "real" system and its observed trace -----------------------
    // Ground truth the operator does not know: (1.0, 0.55) levels with
    // asymmetric switching.
    const ArrivalProcess truth =
        ArrivalProcess::paper_two_state(1.0, 0.55, /*p_high_to_low=*/0.15,
                                        /*p_low_to_high=*/0.4);
    Rng rng(2026);
    const auto trace =
        sample_arrival_counts(truth, static_cast<double>(m_observed), dt, 2000, rng);
    std::printf("Observed %zu epochs of ingress counts (dt=%.1f, M=%zu).\n", trace.size(), dt,
                m_observed);

    // --- 2. fit the modulation --------------------------------------------
    const MmppFitResult fit =
        fit_arrival_process(trace, static_cast<double>(m_observed), dt);
    std::printf("\nFitted Poisson-HMM (%zu EM iterations):\n", fit.iterations);
    std::printf("  levels:      fitted (%.3f, %.3f)   truth (1.000, 0.550)\n", fit.levels[0],
                fit.levels[1]);
    std::printf("  P(low|high): fitted %.3f           truth 0.150\n", fit.transition(0, 1));
    std::printf("  P(high|low): fitted %.3f           truth 0.400\n", fit.transition(1, 0));

    // --- 3. train against the fitted model --------------------------------
    MfcConfig train_config;
    train_config.dt = dt;
    train_config.horizon = 60;
    train_config.arrivals = fit.to_arrival_process();
    rl::CemConfig cem;
    cem.population = 32;
    cem.elites = 6;
    cem.generations = 25;
    const std::vector<double> beta_grid{0.0, 0.5, 1.0, 2.0, 4.0};
    const double beta = best_boltzmann_beta(train_config, beta_grid, 4, 7);
    const TupleSpace space(train_config.queue.num_states(), train_config.d);
    const std::vector<double> warm = boltzmann_initial_params(space, 2, beta);
    const CemTrainingResult trained = train_tabular_cem(
        train_config, cem, 2, 7, RuleParameterization::Logits, true, &warm);
    std::printf("\nTrained MF policy on the FITTED dynamics (warm start beta=%.2f).\n", beta);

    // --- 4. deploy on the real system --------------------------------------
    FiniteSystemConfig real;
    real.dt = dt;
    real.arrivals = truth; // the actual cluster follows the true process
    real.num_queues = m_observed;
    real.num_clients = m_observed * m_observed;
    real.horizon = 50;
    const std::size_t episodes = 15;
    const EvaluationResult mf = evaluate_finite(real, trained.policy, episodes, 4);
    const EvaluationResult jsq = evaluate_finite(real, make_jsq_policy(space), episodes, 4);
    const EvaluationResult rnd = evaluate_finite(real, make_rnd_policy(space), episodes, 4);

    Table table({"policy", "drops/queue on the REAL system (95% CI)"});
    table.row().cell("MF (trained on fitted model)").cell_ci(mf.total_drops.mean,
                                                             mf.total_drops.half_width);
    table.row().cell("JSQ(2)").cell_ci(jsq.total_drops.mean, jsq.total_drops.half_width);
    table.row().cell("RND").cell_ci(rnd.total_drops.mean, rnd.total_drops.half_width);
    std::printf("\n%s\n", table.to_text().c_str());
    std::printf("Model mismatch (estimated vs true dynamics) costs little: the policy\n"
                "trained purely on the fitted arrival process still beats both baselines.\n");
    return 0;
}
