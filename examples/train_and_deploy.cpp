/// Offline-train / online-deploy workflow (the paper's intended usage):
///  1. train an upper-level mean-field policy on the exact MFC MDP — cheap,
///     no cluster needed, complexity independent of N and M;
///  2. persist it to disk;
///  3. reload and deploy it in a (simulated) finite cluster, where every
///     client evaluates the shared policy on the broadcast queue-state
///     histogram and routes its own jobs through the resulting rule.
#include "core/mflb.hpp"

#include <cstdio>

int main() {
    using namespace mflb;
    const double dt = 5.0;

    // --- 1. offline training on the mean-field MDP -------------------------
    ExperimentConfig experiment = scenario_or_die("table1").experiment;
    experiment.dt = dt;
    MfcConfig train_config = experiment.mfc(/*eval_horizon_instead=*/true);
    train_config.horizon = 60; // keep the example snappy

    std::printf("Training MF policy on the mean-field MDP (dt=%.1f)...\n", dt);
    rl::CemConfig cem;
    cem.population = 32;
    cem.elites = 6;
    cem.generations = 25;
    const CemTrainingResult trained = train_tabular_cem(train_config, cem, 2, /*seed=*/42);
    std::printf("  best mean-field return during search: %.3f\n\n", trained.best_return);

    // --- 2. persist --------------------------------------------------------
    const std::string path = "/tmp/mflb_example_policy.txt";
    trained.policy.to_archive().save(path);
    std::printf("Policy saved to %s\n", path.c_str());

    // --- 3. reload and deploy in the finite cluster ------------------------
    const TabularPolicy deployed = TabularPolicy::from_archive(Archive::load(path));
    experiment.num_queues = 200;
    experiment.num_clients = 40000; // N = M^2
    experiment.eval_total_time = 250.0;
    const FiniteSystemConfig cluster = experiment.finite_system();
    const TupleSpace space(experiment.queue.num_states(), experiment.d);

    const std::size_t episodes = 15;
    const EvaluationResult mf = evaluate_finite(cluster, deployed, episodes, 3);
    const EvaluationResult jsq = evaluate_finite(cluster, make_jsq_policy(space), episodes, 3);
    const EvaluationResult rnd = evaluate_finite(cluster, make_rnd_policy(space), episodes, 3);

    Table table({"policy", "total drops/queue (95% CI)"});
    table.row().cell("MF (learned, deployed)").cell_ci(mf.total_drops.mean,
                                                       mf.total_drops.half_width);
    table.row().cell("JSQ(2)").cell_ci(jsq.total_drops.mean, jsq.total_drops.half_width);
    table.row().cell("RND").cell_ci(rnd.total_drops.mean, rnd.total_drops.half_width);
    std::printf("\nDeployment on M=%zu, N=%llu, dt=%.1f:\n%s\n", experiment.num_queues,
                static_cast<unsigned long long>(experiment.num_clients), dt,
                table.to_text().c_str());

    // Show what the policy actually learned: its routing rule for a few
    // observed state tuples under the high arrival rate.
    std::printf("Learned rule h(u=1 | (z1, z2)) under lambda_high (probability of\n"
                "routing to the FIRST sampled queue):\n");
    const DecisionRule rule = deployed.rule_for(0);
    for (const auto& [a, b] : {std::pair{0, 1}, {0, 3}, {1, 2}, {2, 2}, {4, 5}}) {
        const std::vector<int> tuple{a, b};
        const std::size_t idx = space.index_of(tuple);
        std::printf("  observed (%d, %d): %.3f  (JSQ would say %.1f, RND 0.5)\n", a, b,
                    rule.prob(idx, 0), a < b ? 1.0 : (a == b ? 0.5 : 0.0));
    }
    std::printf("\n(The learned policy hedges between greedy and uniform routing —\n"
                " exactly the paper's point about intermediate synchronization delays.)\n");
    return 0;
}
