/// mflb_cli — a single command-line front end over the library, the kind of
/// tool a downstream operator would actually run:
///
///   mflb_cli --mode train   --dt 5 --out /tmp/policy.txt
///   mflb_cli --mode train   --trainer ppo --num-envs 8 --train-threads 8
///   mflb_cli --mode eval    --dt 5 --policy /tmp/policy.txt --m 200
///   mflb_cli --mode eval    --scenario small-n
///   mflb_cli --mode sweep   --dts 1,3,5,10 --m 100
///   mflb_cli --mode dp      --dt 5 --resolution 6
///   mflb_cli --mode scenarios
///
/// Modes:
///   train     — policy search on the mean-field MDP: CEM (default; save to
///               --out) or the Table 2 PPO pipeline (--trainer ppo, with
///               --num-envs parallel rollout environments).
///   eval      — evaluate a saved policy (or baselines) on the finite system;
///               the baseline configuration resolves from --scenario.
///   sweep     — JSQ/RND/Boltzmann delay sweep table.
///   dp        — discretized value-iteration solve and evaluation.
///   scenarios — list the named scenarios of the registry.
#include "core/mflb.hpp"

#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>

namespace {
using namespace mflb;

/// Telemetry session from --metrics-out/--metrics-every/--trace-out, or null
/// when neither output is requested (the zero-overhead default). The caller
/// keeps it alive across the run; destruction flushes the series file and
/// writes the chrome://tracing JSON.
std::unique_ptr<TelemetrySession> make_telemetry(const CliParser& cli) {
    TelemetryConfig config;
    config.metrics_out = cli.get("metrics-out");
    config.trace_out = cli.get("trace-out");
    const auto every = cli.get_int("metrics-every");
    config.metrics_every = every > 0 ? static_cast<std::size_t>(every) : 1;
    if (!config.any_enabled()) {
        return nullptr;
    }
    return std::make_unique<TelemetrySession>(config);
}

int run_train_ppo(const CliParser& cli, const ExperimentConfig& experiment,
                  const MfcConfig& config) {
    rl::PpoConfig ppo; // defaults ARE Table 2 (cross-checked by bench_table2)
    if (!cli.get_bool("paper")) {
        // Calibrated small-budget configuration (same as bench_fig3's
        // default): finishes in seconds instead of the paper's ~35 h.
        ppo.hidden = {64, 64};
        ppo.train_batch_size = 2000;
        ppo.num_epochs = 10;
        ppo.learning_rate = 1e-3;
        ppo.vf_clip_param = 1e9;
        ppo.initial_log_std = -1.2;
        ppo.kl_target = 0.03;
    }
    ppo.num_envs = experiment.num_envs;
    ppo.train_threads = experiment.train_threads;
    const std::unique_ptr<TelemetrySession> telemetry = make_telemetry(cli);
    ppo.telemetry = telemetry.get();
    const auto iterations = static_cast<std::size_t>(cli.get_int("generations"));
    std::printf("training: dt=%.1f horizon=%d ppo(%s budget, iters=%zu, K=%zu envs, "
                "%zu threads)\n",
                config.dt, config.horizon, cli.get_bool("paper") ? "Table 2" : "reduced",
                iterations, ppo.num_envs, ppo.train_threads);
    const PpoTrainingResult result =
        train_mfc_ppo(config, ppo, iterations, 10, cli.get_int("seed"));
    for (const rl::PpoIterationStats& stats : result.history) {
        std::printf("  steps=%8zu return=%9.3f kl=%.5f\n", stats.timesteps_total,
                    stats.mean_episode_return, stats.mean_kl);
    }
    std::printf("final deterministic-policy return: %.4f\n", result.final_eval_return);
    std::printf("(note: only tabular CEM policies support --out archives; PPO weights "
                "stay in memory)\n");
    return 0;
}

int run_train(const CliParser& cli) {
    if (cli.get_int("train-threads") < 0 || cli.get_int("num-envs") < 1) {
        std::fprintf(stderr, "error: --train-threads must be >= 0 and --num-envs >= 1\n");
        return 2;
    }
    ExperimentConfig experiment;
    experiment.dt = cli.get_double("dt");
    experiment.train_threads = static_cast<std::size_t>(cli.get_int("train-threads"));
    experiment.num_envs = static_cast<std::size_t>(cli.get_int("num-envs"));
    MfcConfig config = experiment.mfc();
    config.horizon = static_cast<int>(cli.get_int("horizon"));
    const std::string trainer = cli.get("trainer");
    if (trainer == "ppo") {
        return run_train_ppo(cli, experiment, config);
    }
    if (trainer != "cem") {
        std::fprintf(stderr, "error: unknown --trainer '%s'; expected 'cem' or 'ppo'\n",
                     trainer.c_str());
        return 2;
    }
    rl::CemConfig cem;
    cem.population = static_cast<std::size_t>(cli.get_int("population"));
    cem.generations = static_cast<std::size_t>(cli.get_int("generations"));
    cem.elites = std::max<std::size_t>(2, cem.population / 5);
    cem.threads = experiment.train_threads;
    const std::unique_ptr<TelemetrySession> telemetry = make_telemetry(cli);
    cem.telemetry = telemetry.get();

    const TupleSpace space(config.queue.num_states(), config.d);
    const std::vector<double> beta_grid{0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
    const double beta = best_boltzmann_beta(config, beta_grid, 4, cli.get_int("seed"));
    const std::vector<double> warm = boltzmann_initial_params(space, 2, beta);
    std::printf("training: dt=%.1f horizon=%d cem(pop=%zu, gens=%zu), warm beta=%.2f\n",
                config.dt, config.horizon, cem.population, cem.generations, beta);
    const CemTrainingResult result =
        train_tabular_cem(config, cem, 2, cli.get_int("seed"), RuleParameterization::Logits,
                          true, &warm);
    std::printf("best mean-field return: %.4f\n", result.best_return);
    const std::string out = cli.get("out");
    if (!result.policy.to_archive().save(out)) {
        std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("policy saved to %s\n", out.c_str());
    return 0;
}

int run_eval(const CliParser& cli) {
    // Base parameters come from the scenario registry (--scenario, default
    // table1); explicitly provided flags override the scenario's values.
    const Scenario* scenario = find_scenario(cli.get("scenario"));
    if (scenario == nullptr) {
        std::fprintf(stderr, "unknown scenario '%s'; known scenarios:\n%s",
                     cli.get("scenario").c_str(), scenario_list_text().c_str());
        return 2;
    }
    ExperimentConfig experiment = scenario->experiment;
    // The --dt default (5) applies to the table1 baseline; any other
    // scenario keeps its own delay unless --dt is given explicitly. Keyed on
    // the resolved name, so `--scenario table1` behaves exactly like the
    // no-flag invocation.
    if (cli.provided("dt") || scenario->name == "table1") {
        experiment.dt = cli.get_double("dt");
    }
    if (cli.provided("m")) {
        experiment.num_queues = static_cast<std::size_t>(cli.get_int("m"));
        experiment.num_clients = experiment.num_queues * experiment.num_queues;
    }
    if (cli.provided("n") && cli.get_int("n") != 0) {
        experiment.num_clients = static_cast<std::uint64_t>(cli.get_int("n"));
    }
    if (cli.get_int("shards") < 0 || cli.get_int("threads") < 0) {
        std::fprintf(stderr, "error: --shards and --threads must be >= 0\n");
        return 2;
    }
    if (cli.provided("shards")) {
        experiment.shards = static_cast<std::size_t>(cli.get_int("shards"));
    }
    const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
    experiment.threads = threads;
    // Simulator backend: the scenario's choice unless --backend overrides
    // (the large-n scenario defaults to the event-driven engine).
    SimBackend backend = experiment.backend;
    try {
        if (cli.provided("backend")) {
            backend = parse_backend(cli.get("backend"));
        }
        // Future-event-list implementation for the DES backends; both kinds
        // produce bit-identical episodes, so this is a pure speed knob.
        if (cli.provided("fel")) {
            experiment.fel = parse_fel_kind(cli.get("fel"));
        }
        // Overlapped sharded barrier; bit-identical either way, so this is
        // the A/B-bench and bisection seam, not a results knob.
        if (cli.provided("pipeline")) {
            const std::string pipeline = cli.get("pipeline");
            if (pipeline != "on" && pipeline != "off") {
                throw std::invalid_argument("--pipeline must be 'on' or 'off'");
            }
            experiment.pipeline = pipeline == "on";
        }
        // Routing discipline and service-time law: scenario values unless
        // overridden (the staleness-sweep / heavy-tail scenarios preset them).
        if (cli.provided("router")) {
            experiment.router.kind = parse_router(cli.get("router"));
        }
        if (cli.provided("router-d")) {
            experiment.router.d = cli.get_int("router-d");
        }
        if (cli.provided("stale-period")) {
            experiment.router.stale_period = cli.get_double("stale-period");
        }
        if (cli.provided("service-dist")) {
            experiment.service.kind = parse_service_dist(cli.get("service-dist"));
        }
        if (cli.provided("pareto-alpha")) {
            experiment.service.pareto_alpha = cli.get_double("pareto-alpha");
        }
        if (cli.provided("pareto-cap")) {
            experiment.service.pareto_cap = cli.get_double("pareto-cap");
        }
        if (cli.provided("hyper-scv")) {
            experiment.service.hyper_scv = cli.get_double("hyper-scv");
        }
    } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }
    const TupleSpace space(experiment.queue.num_states(), experiment.d);
    const std::size_t episodes = static_cast<std::size_t>(cli.get_int("episodes"));

    std::optional<TabularPolicy> learned;
    if (!cli.get("policy").empty()) {
        learned = TabularPolicy::from_archive(Archive::load(cli.get("policy")));
    }

    // Only the event-driven backends see individual jobs, so only they can
    // report sojourn-time percentiles; the finite backend leaves them blank.
    const bool des = backend != SimBackend::Finite;
    // One session shared by every evaluation below: replication 0 of each
    // evaluated policy appends its epoch rows to the same series file.
    const std::unique_ptr<TelemetrySession> telemetry = make_telemetry(cli);
    Table table({"policy", "drops/queue (95% CI)", "mean fill", "utilization",
                 "sojourn p50/p95/p99"});
    auto add = [&](const ExperimentConfig& config, const UpperLevelPolicy& policy,
                   const std::string& label) {
        SojournSummary sojourn;
        FiniteSystemConfig system = config.finite_system();
        system.telemetry = telemetry.get();
        const EvaluationResult r =
            evaluate_backend(backend, system, policy, episodes,
                             cli.get_int("seed"), threads, &sojourn);
        char percentiles[64];
        std::snprintf(percentiles, sizeof(percentiles), "%.2f / %.2f / %.2f",
                      sojourn.p50.mean, sojourn.p95.mean, sojourn.p99.mean);
        table.row()
            .cell(label)
            .cell_ci(r.total_drops.mean, r.total_drops.half_width)
            .cell(r.mean_queue_length.mean, 3)
            .cell(r.utilization.mean, 3)
            .cell(des ? percentiles : "-");
    };
    if (experiment.router.kind != RouterKind::Policy) {
        // A classical router bypasses the upper-level policy; evaluate it
        // first, then the decision-rule baselines on the same system for
        // comparison (router reset to the policy path).
        add(experiment, make_rnd_policy(space),
            std::string(router_name(experiment.router.kind)));
        experiment.router = RouterSpec{};
    }
    if (learned) {
        add(experiment, *learned, learned->name());
    }
    add(experiment, make_jsq_policy(space), "JSQ(d)");
    add(experiment, make_rnd_policy(space), "RND(d)");
    std::printf("M=%zu N=%llu dt=%.1f, %zu episodes, backend=%s, service=%s\n%s",
                experiment.num_queues,
                static_cast<unsigned long long>(experiment.num_clients), experiment.dt,
                episodes, std::string(backend_name(backend)).c_str(),
                std::string(service_dist_name(experiment.service.kind)).c_str(),
                table.to_text().c_str());
    return 0;
}

int run_sweep(const CliParser& cli) {
    Table table({"dt", "JSQ(2)", "RND", "best Boltzmann", "best beta"});
    for (const double dt : cli.get_double_list("dts")) {
        ExperimentConfig experiment;
        experiment.dt = dt;
        const MfcConfig config = experiment.mfc(/*eval_horizon_instead=*/true);
        const TupleSpace space(config.queue.num_states(), config.d);
        const std::vector<double> beta_grid{0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 1e6};
        const double beta = best_boltzmann_beta(config, beta_grid, 6, cli.get_int("seed"));
        const std::size_t episodes = static_cast<std::size_t>(cli.get_int("episodes"));
        const EvaluationResult jsq =
            evaluate_mfc(config, make_jsq_policy(space), episodes, cli.get_int("seed"));
        const EvaluationResult rnd =
            evaluate_mfc(config, make_rnd_policy(space), episodes, cli.get_int("seed"));
        const EvaluationResult boltzmann = evaluate_mfc(
            config, make_greedy_softmax_policy(space, std::min(beta, 1e6)), episodes,
            cli.get_int("seed"));
        table.row()
            .cell(dt, 1)
            .cell(jsq.total_drops.mean, 3)
            .cell(rnd.total_drops.mean, 3)
            .cell(boltzmann.total_drops.mean, 3)
            .cell(beta >= 1e6 ? std::string("inf") : std::to_string(beta));
    }
    std::printf("%s", table.to_text().c_str());
    return 0;
}

int run_dp(const CliParser& cli) {
    MfcConfig config;
    config.dt = cli.get_double("dt");
    config.horizon = static_cast<int>(cli.get_int("horizon"));
    DpConfig dp;
    dp.resolution = static_cast<std::size_t>(cli.get_int("resolution"));
    const auto [policy, stats] = solve_mfc_dp(config, dp);
    std::printf("DP solve: %zu states x %zu actions, %zu sweeps, residual %.2e\n",
                stats.states, stats.actions, stats.sweeps, stats.final_residual);
    const TupleSpace space(config.queue.num_states(), config.d);
    const std::size_t episodes = static_cast<std::size_t>(cli.get_int("episodes"));
    const EvaluationResult dp_eval = evaluate_mfc(config, policy, episodes, cli.get_int("seed"));
    const EvaluationResult jsq =
        evaluate_mfc(config, make_jsq_policy(space), episodes, cli.get_int("seed"));
    const EvaluationResult rnd =
        evaluate_mfc(config, make_rnd_policy(space), episodes, cli.get_int("seed"));
    std::printf("mean-field drops: DP %.3f | JSQ(2) %.3f | RND %.3f\n", dp_eval.total_drops.mean,
                jsq.total_drops.mean, rnd.total_drops.mean);
    return 0;
}
} // namespace

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("mflb_cli: train / evaluate / sweep / dp-solve mean-field load balancers");
    cli.flag("mode", "sweep", "One of: train, eval, sweep, dp, scenarios");
    cli.flag("scenario", "table1",
             "Named scenario from the registry (see --mode scenarios) used as the "
             "eval-mode baseline; other flags override its values");
    cli.flag("backend", "finite",
             "Finite-system simulator for eval mode: 'finite' (epoch-synchronous), "
             "'des' (event-driven, adds sojourn percentiles), or 'sharded-des' "
             "(epoch-parallel event-driven); default = scenario's backend");
    cli.flag_int("threads", 0,
                 "Worker threads for replications / sharded epochs (0 = all cores)");
    cli.flag("metrics-out", "",
             "Per-epoch (eval) / per-iteration (train) time-series output: JSONL, or "
             "CSV when the path ends in .csv; empty = disabled");
    cli.flag_int("metrics-every", 1, "Emit every k-th epoch row (train rows always emit)");
    cli.flag("trace-out", "",
             "chrome://tracing span JSON covering barrier phases, shard event loops, "
             "and trainer phases; empty = disabled");
    cli.flag("trainer", "cem",
             "Train-mode optimizer: 'cem' (tabular policy search, supports --out) or "
             "'ppo' (Table 2 pipeline on the MFC MDP)");
    cli.flag_int("train-threads", 0,
                 "Worker threads for trainer fan-outs (CEM population / PPO rollout "
                 "slots; 0 = all cores; never changes results)");
    cli.flag_int("num-envs", 1,
                 "Parallel PPO rollout environments K (results depend on (seed, K), "
                 "never on thread count)");
    cli.flag_bool("paper", false,
                  "With --trainer ppo: use the exact Table 2 configuration instead of "
                  "the reduced CI-sized budget (paper scale: ~2.5e7 steps, hours)");
    cli.flag_int("shards", 0,
                 "Queue shards K for the sharded-des backend (0 = scenario's, or min(8, M))");
    cli.flag("pipeline", "on",
             "Overlapped epoch pipeline for the sharded-des backend: 'on' (eager "
             "reduction folds + offloaded barrier compute) or 'off' (PR-7 fused "
             "barrier); bit-identical results either way");
    cli.flag("fel", "calendar",
             "Future event list for the des/sharded-des backends: calendar "
             "(amortized O(1) buckets, default) or heap (binary heap); "
             "bit-identical results either way");
    cli.flag("router", "policy",
             "Routing discipline for eval mode: 'policy' (decision-rule path), "
             "'random', 'round-robin', 'jsq', 'jsq-d', or 'sq-stale'; default = "
             "scenario's router");
    cli.flag_int("router-d", 2, "Choices d for the jsq-d router");
    cli.flag_double("stale-period", 10,
                    "Snapshot refresh period (time units) for the sq-stale router; "
                    "0 = refresh every epoch (exact JSQ)");
    cli.flag("service-dist", "exponential",
             "Service-time law: 'exponential', 'deterministic', 'hyperexp', or "
             "'pareto' (bounded); all have mean 1/alpha; default = scenario's");
    cli.flag_double("pareto-alpha", 1.5, "Tail index for --service-dist pareto");
    cli.flag_double("pareto-cap", 1000,
                    "Truncation ratio H/L for --service-dist pareto");
    cli.flag_double("hyper-scv", 4,
                    "Squared coefficient of variation for --service-dist hyperexp");
    cli.flag_double("dt", 5, "Synchronization delay");
    cli.flag_double_list("dts", "1,3,5,10", "Delays for sweep mode");
    cli.flag_int("m", 100, "Queues for eval mode (sets clients to M^2 unless --n is given)");
    cli.flag_int("n", 0, "Clients for eval mode (0 = scenario's count, or M^2 with --m)");
    cli.flag_int("horizon", 60, "Training/DP episode length (epochs)");
    cli.flag_int("episodes", 15, "Evaluation episodes");
    cli.flag_int("population", 32, "CEM population");
    cli.flag_int("generations", 25, "CEM generations");
    cli.flag_int("resolution", 6, "DP simplex-grid resolution");
    cli.flag("policy", "", "Path of a saved policy for eval mode");
    cli.flag("out", "/tmp/mflb_policy.txt", "Output path for train mode");
    cli.flag_int("seed", 1, "Seed");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const std::string mode = cli.get("mode");
    if (mode == "train") {
        return run_train(cli);
    }
    if (mode == "eval") {
        return run_eval(cli);
    }
    if (mode == "sweep") {
        return run_sweep(cli);
    }
    if (mode == "dp") {
        return run_dp(cli);
    }
    if (mode == "scenarios") {
        std::printf("Registered scenarios:\n%s", scenario_list_text().c_str());
        return 0;
    }
    std::fprintf(stderr, "unknown mode '%s'\n%s", mode.c_str(), cli.usage().c_str());
    return 1;
}
