/// The delay crossover, made interpretable: instead of a black-box network,
/// sweep the one-parameter Boltzmann family h(u|z̄) ∝ exp(-β z̄_u) — β = ∞
/// is JSQ, β = 0 is RND — and find the best β for each synchronization delay
/// Δt on the exact mean-field model. The optimal greediness decays as the
/// information gets staler, which is precisely the paper's message about
/// policies "in between" JSQ and RND.
#include "core/mflb.hpp"

#include <cstdio>

int main() {
    using namespace mflb;

    const std::vector<double> betas{0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0, 1e9};
    const std::size_t episodes = 30;

    std::printf("Best Boltzmann greediness beta per synchronization delay (mean-field\n"
                "model, %zu episodes per estimate). beta=inf is JSQ(2), beta=0 is RND.\n\n",
                episodes);

    Table table({"dt", "best beta", "drops(best beta)", "drops(JSQ)", "drops(RND)",
                 "learned vs JSQ", "learned vs RND"});
    for (const double dt : {1.0, 2.0, 3.0, 5.0, 7.0, 10.0}) {
        ExperimentConfig experiment;
        experiment.dt = dt;
        const MfcConfig config = experiment.mfc(/*eval_horizon_instead=*/true);
        const TupleSpace space(config.queue.num_states(), config.d);

        double best_beta = 0.0;
        double best_drops = 1e300;
        double jsq_drops = 0.0;
        double rnd_drops = 0.0;
        for (const double beta : betas) {
            const FixedRulePolicy policy = make_greedy_softmax_policy(space, std::min(beta, 1e6));
            const EvaluationResult result = evaluate_mfc(config, policy, episodes, 17);
            if (result.total_drops.mean < best_drops) {
                best_drops = result.total_drops.mean;
                best_beta = beta;
            }
            if (beta == 0.0) {
                rnd_drops = result.total_drops.mean;
            }
            if (beta == 1e9) {
                jsq_drops = result.total_drops.mean;
            }
        }
        table.row()
            .cell(dt, 1)
            .cell(best_beta >= 1e9 ? std::string("inf (JSQ)") : std::to_string(best_beta))
            .cell(best_drops, 3)
            .cell(jsq_drops, 3)
            .cell(rnd_drops, 3)
            .cell(jsq_drops - best_drops, 3)
            .cell(rnd_drops - best_drops, 3);
        std::fprintf(stderr, "[crossover] dt=%.0f done (best beta %.2f)\n", dt, best_beta);
    }
    std::printf("%s\n", table.to_text().c_str());
    std::printf("Reading: at dt=1 the best beta is large (be greedy, the snapshot is\n"
                "fresh); as dt grows the optimum shifts toward moderate beta — neither\n"
                "JSQ nor RND — matching the crossover of Figure 5.\n");
    return 0;
}
