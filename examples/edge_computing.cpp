/// Edge-computing scenario from the paper's motivation: a metro-area fleet
/// of edge servers fed by a large population of devices (the clients), whose
/// offered load follows a day / night / burst pattern — a 3-level Markov-
/// modulated arrival process. Queue-state broadcasts are periodic, so all
/// devices share the same stale view.
///
/// Demonstrates: custom arrival modulation (beyond the paper's 2 levels),
/// training one decision rule per load level, and inspecting how the
/// learned greediness adapts to load.
#include "core/mflb.hpp"

#include <cstdio>

int main() {
    using namespace mflb;

    // Day (0.85), night (0.4), flash-crowd burst (1.1 — temporarily above
    // service capacity). Bursts are rare but sticky.
    const Matrix modulation{
        {0.90, 0.07, 0.03}, // day -> day/night/burst
        {0.20, 0.79, 0.01}, // night
        {0.50, 0.00, 0.50}, // burst
    };
    const ArrivalProcess arrivals({0.85, 0.40, 1.10}, modulation, {1.0, 0.0, 0.0});
    std::printf("Edge fleet load model: day/night/burst levels (0.85, 0.40, 1.10),\n"
                "stationary mix = (%.2f, %.2f, %.2f), long-run offered load %.3f\n\n",
                arrivals.stationary()[0], arrivals.stationary()[1], arrivals.stationary()[2],
                arrivals.mean_rate());

    MfcConfig mfc;
    mfc.dt = 4.0;      // queue states broadcast every 4 time units
    mfc.horizon = 50;
    mfc.arrivals = arrivals;

    std::printf("Training one routing rule per load level on the mean-field MDP...\n");
    rl::CemConfig cem;
    cem.population = 32;
    cem.elites = 6;
    cem.generations = 25;
    const CemTrainingResult trained = train_tabular_cem(mfc, cem, 2, /*seed=*/11);

    // Deploy on a finite fleet: 150 edge servers, 22500 devices.
    FiniteSystemConfig fleet;
    fleet.dt = mfc.dt;
    fleet.arrivals = arrivals;
    fleet.num_queues = 150;
    fleet.num_clients = 22500;
    fleet.horizon = 60;
    const TupleSpace space(fleet.queue.num_states(), fleet.d);

    const std::size_t episodes = 15;
    const EvaluationResult mf = evaluate_finite(fleet, trained.policy, episodes, 8);
    const EvaluationResult jsq = evaluate_finite(fleet, make_jsq_policy(space), episodes, 8);
    const EvaluationResult rnd = evaluate_finite(fleet, make_rnd_policy(space), episodes, 8);

    Table table({"policy", "drops/server", "mean fill", "utilization"});
    table.row()
        .cell("MF (per-level rules)")
        .cell_ci(mf.total_drops.mean, mf.total_drops.half_width)
        .cell(mf.mean_queue_length.mean, 3)
        .cell(mf.utilization.mean, 3);
    table.row()
        .cell("JSQ(2)")
        .cell_ci(jsq.total_drops.mean, jsq.total_drops.half_width)
        .cell(jsq.mean_queue_length.mean, 3)
        .cell(jsq.utilization.mean, 3);
    table.row()
        .cell("RND")
        .cell_ci(rnd.total_drops.mean, rnd.total_drops.half_width)
        .cell(rnd.mean_queue_length.mean, 3)
        .cell(rnd.utilization.mean, 3);
    std::printf("\nFleet evaluation (M=150 servers, N=22500 devices, dt=4):\n%s\n",
                table.to_text().c_str());

    // How greedy is the learned rule at each load level? Measure the mass it
    // puts on the shorter sampled queue, averaged over unequal tuples.
    std::printf("Learned greediness per load level (mass on the shorter queue):\n");
    for (std::size_t level = 0; level < arrivals.num_states(); ++level) {
        const DecisionRule rule = trained.policy.rule_for(level);
        double greedy_mass = 0.0;
        int count = 0;
        std::vector<int> tuple(2);
        for (std::size_t idx = 0; idx < space.size(); ++idx) {
            space.decode(idx, tuple);
            if (tuple[0] == tuple[1]) {
                continue;
            }
            greedy_mass += rule.prob(idx, tuple[0] < tuple[1] ? 0 : 1);
            ++count;
        }
        static const char* kNames[] = {"day  ", "night", "burst"};
        std::printf("  %s (lambda=%.2f): %.3f  (1.0 = pure JSQ, 0.5 = pure RND)\n",
                    kNames[level], arrivals.level(level), greedy_mass / count);
    }
    return 0;
}
