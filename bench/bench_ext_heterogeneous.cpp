/// Extension bench: heterogeneous service rates (the paper's §5 extension).
/// Compares SED(2), JSQ(2) and RND on the heterogeneous mean-field model
/// across delays, and validates the hetero mean-field limit against the
/// per-client finite simulator.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_ext_heterogeneous: SED vs JSQ vs RND with two server classes");
    cli.flag_bool("full", false, "More replications / larger finite systems");
    cli.flag_double_list("dts", "1,3,5,10", "Delays to sweep");
    cli.flag_double("slow-rate", 0.5, "Service rate of the slow class");
    cli.flag_double("fast-rate", 1.5, "Service rate of the fast class");
    cli.flag_int("seed", 10, "Seed");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const std::size_t episodes = full ? 100 : 30;

    const ClassStateSpace space(
        {{cli.get_double("slow-rate"), 0.5}, {cli.get_double("fast-rate"), 0.5}}, 5);

    bench::print_header(
        "Extension: heterogeneous servers",
        "Mean-field drops of SED(2) / JSQ(2) / RND with half slow, half fast servers", full);

    Table table({"dt", "SED(2)", "JSQ(2)", "RND", "SED gain vs JSQ"});
    const DecisionRule sed = hetero_sed_rule(space, 2);
    const DecisionRule jsq = hetero_jsq_rule(space, 2);
    const DecisionRule rnd = DecisionRule::mf_rnd(space.tuple_space(2));
    for (const double dt : cli.get_double_list("dts")) {
        HeteroMfcEnv::Config config{space, 2, dt, ArrivalProcess::paper_two_state(),
                                    MfcConfig::horizon_for_total_time(500.0, dt), 0.99};
        auto evaluate = [&](const DecisionRule& rule) {
            RunningStat drops;
            Rng base(cli.get_int("seed"));
            for (std::size_t e = 0; e < episodes; ++e) {
                Rng rng = base.split();
                HeteroMfcEnv env(config);
                env.reset(rng);
                drops.add(hetero_rollout_drops(env, rule, rng));
            }
            return confidence_interval_95(drops);
        };
        const auto sed_ci = evaluate(sed);
        const auto jsq_ci = evaluate(jsq);
        const auto rnd_ci = evaluate(rnd);
        table.row()
            .cell(dt, 1)
            .cell(bench::ci_cell(sed_ci))
            .cell(bench::ci_cell(jsq_ci))
            .cell(bench::ci_cell(rnd_ci))
            .cell(jsq_ci.mean - sed_ci.mean, 3);
        std::fprintf(stderr, "[hetero] dt=%.0f done\n", dt);
    }
    std::printf("%s", table.to_text().c_str());

    // Mean-field vs finite cross-check at one configuration: the registry's
    // "heterogeneous" scenario, resized/re-rated per the flags.
    const double dt = 2.0;
    HeteroMfcEnv::Config mf_config{space, 2, dt, ArrivalProcess::constant(0.8), 50, 0.99};
    HeteroMfcEnv env(mf_config);
    Rng rng(1);
    env.reset(rng);
    const double limit = hetero_rollout_drops(env, sed, rng);
    HeterogeneousConfig finite = *scenario_or_die("heterogeneous").heterogeneous;
    finite.dt = dt;
    finite.horizon = 50;
    finite.arrivals = ArrivalProcess::constant(0.8);
    const std::size_t m = full ? 400 : finite.service_rates.size();
    finite.num_clients = static_cast<std::uint64_t>(m) * 40;
    finite.service_rates.assign(m, cli.get_double("slow-rate"));
    for (std::size_t j = m / 2; j < m; ++j) {
        finite.service_rates[j] = cli.get_double("fast-rate");
    }
    const std::vector<EpisodeStats> finite_stats = run_replications(
        full ? 40 : 12, /*seed=*/3000, /*threads=*/0, [&](std::size_t, Rng& sim_rng) {
            HeterogeneousSystem system(finite);
            system.reset(sim_rng);
            return system.run_episode(HeteroSedPolicy{}, sim_rng);
        });
    RunningStat finite_drops;
    for (const EpisodeStats& s : finite_stats) {
        finite_drops.add(s.total_drops_per_queue);
    }
    const auto ci = confidence_interval_95(finite_drops);
    std::printf("\nmean-field vs finite cross-check (SED, dt=2, constant load 0.8):\n"
                "  hetero mean-field limit: %.3f\n"
                "  finite system (M=%zu):   %s\n",
                limit, m, bench::ci_cell(ci).c_str());
    std::printf("\n(expected: SED <= JSQ <= RND at every dt, and the SED advantage WIDENS\n"
                " with dt: queue fills go stale but the advertised service rates never\n"
                " do, so rate-aware routing keeps paying off; finite system sits near\n"
                " the mean-field limit)\n");
    return 0;
}
