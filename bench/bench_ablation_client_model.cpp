/// Ablation of the simulation substrate itself: validates that the exact
/// multinomial client aggregation (cost independent of N) matches literal
/// per-client simulation, and quantifies the speedup that makes the
/// N = 10^6 paper configurations tractable. Also compares against the
/// N = ∞ intermediate system of Section 2.2.
#include "bench_common.hpp"

#include <chrono>

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_ablation_client_model: per-client vs aggregated vs infinite clients");
    cli.flag_bool("full", false, "More replications");
    cli.flag_int("m", 100, "Number of queues");
    cli.flag_double("dt", 5, "Synchronization delay");
    cli.flag_int("seed", 7, "Evaluation seed");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const std::size_t sims = full ? 50 : 10;
    const auto m = static_cast<std::size_t>(cli.get_int("m"));

    bench::print_header("Ablation: client model",
                        "Exact aggregation vs literal per-client simulation vs N = infinity",
                        full);

    Table table({"client model", "N", "drops", "wall time (s)"});
    const TupleSpace space(6, 2);
    const FixedRulePolicy policy = make_jsq_policy(space);

    struct Case {
        ClientModel model;
        std::uint64_t clients;
        const char* name;
    };
    const std::uint64_t n_small = static_cast<std::uint64_t>(m) * m;
    const Case cases[] = {
        {ClientModel::PerClient, n_small, "per-client"},
        {ClientModel::Aggregated, n_small, "aggregated"},
        {ClientModel::Aggregated, 1000000, "aggregated"},
        {ClientModel::InfiniteClients, 0, "infinite-N"},
    };
    for (const Case& c : cases) {
        ExperimentConfig experiment;
        experiment.dt = cli.get_double("dt");
        experiment.num_queues = m;
        experiment.num_clients = c.clients == 0 ? 1 : c.clients;
        experiment.eval_total_time = 200.0;
        experiment.client_model = c.model;
        const auto start = std::chrono::steady_clock::now();
        const EvaluationResult result =
            evaluate_finite(experiment.finite_system(), policy, sims, cli.get_int("seed"));
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        table.row()
            .cell(c.name)
            .cell(c.model == ClientModel::InfiniteClients
                      ? std::string("inf")
                      : std::to_string(c.clients))
            .cell(bench::ci_cell(result.total_drops))
            .cell(elapsed, 3);
        std::fprintf(stderr, "[client-model] %s N=%llu done (%.2fs)\n", c.name,
                     static_cast<unsigned long long>(c.clients), elapsed);
    }
    std::printf("%s", table.to_text().c_str());
    std::printf("\n(expected: per-client and aggregated agree within CI at equal N; the\n"
                " aggregated cost does not grow with N; infinite-N sits near both)\n");
    return 0;
}
