/// Ablation: action parameterization of the learned upper-level policy. The
/// paper notes that Dirichlet-style policies that output simplex points
/// directly trained "significantly worse" than Gaussian logits with manual
/// (softmax) normalization. We reproduce the comparison with CEM at equal
/// budget on the identical objective, plus a PPO run per parameterization at
/// a small budget.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_ablation_parameterization: logits+softmax vs raw-simplex actions");
    cli.flag_bool("full", false, "Larger search/training budget");
    cli.flag_double("dt", 5, "Synchronization delay");
    cli.flag_int("seed", 6, "Training seed");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const double dt = cli.get_double("dt");

    ExperimentConfig experiment;
    experiment.dt = dt;
    MfcConfig config = experiment.mfc(/*eval_horizon_instead=*/true);
    if (!full) {
        config.horizon = std::min(config.horizon, 60);
    }

    bench::print_header("Ablation: parameterization",
                        "Gaussian logits + softmax (paper) vs raw-simplex actions (Dirichlet-"
                        "style)", full);

    const rl::CemConfig cem = bench::default_cem(full);
    Table table({"optimizer", "parameterization", "final drops", "best J during search"});
    for (const auto parameterization :
         {RuleParameterization::Logits, RuleParameterization::Simplex}) {
        const char* name =
            parameterization == RuleParameterization::Logits ? "logits+softmax" : "raw simplex";
        const CemTrainingResult trained = train_tabular_cem(
            config, cem, full ? 4 : 2, cli.get_int("seed"), parameterization);
        const EvaluationResult eval =
            evaluate_mfc(config, trained.policy, full ? 100 : 40, 909);
        table.row()
            .cell("CEM")
            .cell(name)
            .cell(bench::ci_cell(eval.total_drops))
            .cell(trained.best_return, 3);
        std::fprintf(stderr, "[ablation] CEM %s done\n", name);
    }

    // Short PPO comparison (training dynamics, not final optimality).
    rl::PpoConfig ppo;
    ppo.hidden = {64, 64};
    ppo.train_batch_size = 2000;
    ppo.num_epochs = 10;
    ppo.learning_rate = 3e-4;
    const std::size_t iterations = full ? 50 : 4;
    for (const auto parameterization :
         {RuleParameterization::Logits, RuleParameterization::Simplex}) {
        const char* name =
            parameterization == RuleParameterization::Logits ? "logits+softmax" : "raw simplex";
        const PpoTrainingResult result = train_mfc_ppo(config, ppo, iterations, 20,
                                                       cli.get_int("seed"), parameterization);
        double best = -1e300;
        for (const auto& it : result.history) {
            best = std::max(best, it.mean_episode_return);
        }
        table.row().cell("PPO").cell(name).cell(-result.final_eval_return, 3).cell(best, 3);
        std::fprintf(stderr, "[ablation] PPO %s done\n", name);
    }

    std::printf("%s", table.to_text().c_str());
    std::printf("\n(paper observation: the logits+softmax parameterization trains better;\n"
                " raw-simplex actions are no better and typically worse at equal budget)\n");
    return 0;
}
