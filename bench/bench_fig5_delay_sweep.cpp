/// Reproduces Figure 5: total packet drops of MF (learned), JSQ(2) and RND
/// over the synchronization delay Δt ∈ {1..10}, on finite systems with
/// N = M^2 and total running time ≈ 500. The paper's qualitative claims:
///  - JSQ(2) degrades steeply as Δt grows (herding on stale snapshots);
///  - RND is flat-ish in Δt for N >> M;
///  - the learned MF policy beats JSQ(2) from Δt ≈ 3 and always beats RND,
///    with all policies converging as Δt -> ∞.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_fig5_delay_sweep: reproduce Figure 5 (MF vs JSQ(2) vs RND over dt)");
    cli.flag_bool("full", false, "Paper-scale grid (M in {400,600,800,1000}, dt 1..10, n=100)");
    cli.flag_int_list("ms", "", "Queue counts (default depends on --full)");
    cli.flag_double_list("dts", "", "Delays (default depends on --full)");
    cli.flag_int("sims", 0, "Monte Carlo replications per cell (0 = budget default)");
    cli.flag_int("seed", 3, "Evaluation seed");
    bench::register_backend_flag(cli);
    bench::register_threads_flag(cli);
    cli.flag("csv", "", "Optional CSV output path");
    cli.flag("json", "", "Optional JSON timings output path");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const SimBackend backend = bench::backend_from(cli);
    const std::size_t threads = bench::threads_from(cli);
    std::vector<std::int64_t> ms = cli.get_int_list("ms");
    if (ms.empty()) {
        ms = full ? std::vector<std::int64_t>{400, 600, 800, 1000}
                  : std::vector<std::int64_t>{400};
    }
    std::vector<double> dts = cli.get_double_list("dts");
    if (dts.empty()) {
        dts = full ? std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
                   : std::vector<double>{1, 2, 3, 5, 7, 10};
    }
    std::size_t sims = static_cast<std::size_t>(cli.get_int("sims"));
    if (sims == 0) {
        sims = full ? 100 : 10;
    }

    bench::print_header("Figure 5",
                        "Total packet drops vs dt for MF (learned), JSQ(2), RND; N = M^2", full);

    bench::LearnedPolicyCache cache(full, 1234);
    bench::TimingLog timings("fig5_delay_sweep");
    Table table({"M", "dt", "MF-NM", "JSQ(2)", "RND", "winner"});
    for (const std::int64_t m : ms) {
        for (const double dt : dts) {
            // Figure 5 cell = the "delay-sweep" scenario with (M, dt) overridden.
            ExperimentConfig experiment = scenario_or_die("delay-sweep").experiment;
            experiment.dt = dt;
            experiment.num_queues = static_cast<std::size_t>(m);
            experiment.num_clients =
                static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(m);
            experiment.threads = threads;
            const TupleSpace space(experiment.queue.num_states(), experiment.d);
            const FiniteSystemConfig config = experiment.finite_system();

            char cell_label[64];
            std::snprintf(cell_label, sizeof(cell_label), "M=%lld dt=%.0f",
                          static_cast<long long>(m), dt);
            const bench::ScopedTimer timer(timings, cell_label);
            const EvaluationResult mf = evaluate_backend(
                backend, config, cache.policy_for(dt), sims, cli.get_int("seed"), threads);
            const EvaluationResult jsq = evaluate_backend(
                backend, config, make_jsq_policy(space), sims, cli.get_int("seed"), threads);
            const EvaluationResult rnd = evaluate_backend(
                backend, config, make_rnd_policy(space), sims, cli.get_int("seed"), threads);

            const double best =
                std::min({mf.total_drops.mean, jsq.total_drops.mean, rnd.total_drops.mean});
            const char* winner = best == mf.total_drops.mean     ? "MF"
                                 : best == jsq.total_drops.mean ? "JSQ(2)"
                                                                : "RND";
            table.row()
                .cell(m)
                .cell(dt, 1)
                .cell(bench::ci_cell(mf.total_drops))
                .cell(bench::ci_cell(jsq.total_drops))
                .cell(bench::ci_cell(rnd.total_drops))
                .cell(winner);
            std::fprintf(stderr, "[fig5] M=%lld dt=%.0f done\n", static_cast<long long>(m), dt);
        }
    }
    std::printf("%s", table.to_text().c_str());
    std::printf("\n(paper shape: JSQ(2) wins only at dt <= 2; MF wins from dt >= 3;\n"
                " RND stays roughly flat; drops grow with dt for all policies)\n");
    if (!cli.get("csv").empty()) {
        table.write_csv(cli.get("csv"));
    }
    timings.write(cli.get("json"));
    return 0;
}
