/// bench_des_scale — how far each finite-system backend scales.
///
/// The experiment is fleet scale-out at fixed traffic: a client population
/// generating a fixed total job rate (--lambda-total, default 750 jobs/unit
/// — the Table-1 load of a 1000-queue cluster) is spread over ever more
/// queues M. Per-queue load shrinks as 1/M, which is exactly the regime the
/// event-driven backend exists for: the epoch-synchronous simulator pays
/// O(M) RNG/kernel work every Δt no matter how idle the fleet is, while DES
/// cost tracks the (fixed) event count. Three parts:
///
///  1. M-sweep, both backends, one episode each (InfiniteClients — the
///     mean-field client model whose cost is N-independent; DES realizes it
///     by per-job d-sampling). Reports per-episode wall clocks, the speedup
///     at every M including M = 10^5, and the largest M each backend
///     finishes inside --budget seconds.
///  2. N-sweep at M = 10^4 with the exact finite-N Aggregated client model
///     (multinomial client counts) up to N = 10^6 on the DES backend.
///  3. A sojourn showcase: DES per-job p50/p95/p99 at M = 10^4 — numbers
///     the epoch-synchronous backend cannot produce at all.
///  4. Thread/shard scaling of the sharded backend on the `large-n`
///     configuration (M = 10^4, N = 10^6): one episode per thread count in
///     {1, 2, 4, 8} against the single-threaded unsharded DES baseline,
///     with per-point `sharded_speedup_*` rows — and the fused barrier's
///     serial/parallel wall-clock split (`sharded_barrier_*` rows, the
///     Amdahl accounting of the epoch barrier) — in the --json artifact.
///  5. Sharded episodes at M = 10^7 queues (InfiniteClients, short horizon)
///     with the overlapped pipeline on and off, at K = 8 and K = 32 shards:
///     guards that pipelining keeps ten-million-queue epochs tractable
///     (`sharded_pipeline_speedup_*` bigger-is-better rows) and that the
///     barrier's irreducibly serial share stays low
///     (`sharded_barrier_serial_fraction_*`).
///
/// All timings are appended to --json for the CI benchmark artifact.
#include "bench_common.hpp"
#include "des/des_system.hpp"
#include "des/sharded_des_system.hpp"
#include "support/trace.hpp"

#include <cmath>
#include <thread>

namespace {

using namespace mflb;

/// The scale-out configuration at M queues: two-level modulated arrivals
/// whose levels are scaled so the *total* offered load stays fixed.
FiniteSystemConfig scale_config(std::size_t m, double lambda_total, double dt, int horizon,
                                ClientModel model, std::uint64_t n) {
    FiniteSystemConfig config;
    // Table-1 levels are (0.9, 0.6) per queue, mean 0.75; keep their ratio
    // and modulation, scale the magnitude to lambda_total / M.
    const double scale = lambda_total / (0.75 * static_cast<double>(m));
    config.arrivals = ArrivalProcess::paper_two_state(0.9 * scale, 0.6 * scale);
    config.dt = dt;
    config.horizon = horizon;
    config.num_queues = m;
    config.num_clients = n;
    config.client_model = model;
    return config;
}

struct EpisodeRun {
    double seconds = 0.0;
    double drops_per_queue = 0.0;
    std::uint64_t events = 0; ///< arrivals (accepted + dropped) + departures.

    double events_per_second() const {
        return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
    }
};

template <class System>
EpisodeRun run_one_episode(const FiniteSystemConfig& config, const DecisionRule& rule,
                           std::uint64_t seed) {
    System system(config);
    Rng rng(seed);
    system.reset(rng);
    const trace::Stopwatch watch;
    EpisodeRun out;
    while (!system.done()) {
        const EpochStats stats = system.step_with_rule(rule, rng);
        out.drops_per_queue += stats.drops_per_queue;
        out.events += stats.accepted_packets + stats.dropped_packets + stats.served_packets;
    }
    out.seconds = watch.seconds();
    return out;
}

/// Sharded episode with the backend's own barrier accounting attached: how
/// much wall clock the epochs spent in the irreducibly serial barrier phases
/// (RNG prologue + reduction tail) vs the overlappable epoch compute and the
/// parallel shard loops — the Amdahl split that bounds thread scaling.
struct ShardedRun {
    EpisodeRun episode;
    double serial_s = 0.0;  ///< prologue + reduction (cannot overlap shards).
    double overlap_s = 0.0; ///< offloaded epoch compute (pipeline-on only).
    double parallel_s = 0.0;

    double serial_fraction() const {
        const double total = serial_s + overlap_s + parallel_s;
        return total > 0.0 ? serial_s / total : 0.0;
    }
};

ShardedRun run_sharded_episode(const FiniteSystemConfig& config, const DecisionRule& rule,
                               std::uint64_t seed) {
    ShardedDesSystem system(config);
    Rng rng(seed);
    system.reset(rng);
    const trace::Stopwatch watch;
    ShardedRun out;
    while (!system.done()) {
        const EpochStats stats = system.step_with_rule(rule, rng);
        out.episode.drops_per_queue += stats.drops_per_queue;
        out.episode.events +=
            stats.accepted_packets + stats.dropped_packets + stats.served_packets;
    }
    out.episode.seconds = watch.seconds();
    out.serial_s = system.barrier_profile().serial_seconds();
    out.overlap_s = system.barrier_profile().overlapped_compute_seconds;
    out.parallel_s = system.barrier_profile().parallel_seconds;
    return out;
}

} // namespace

int main(int argc, char** argv) {
    CliParser cli("bench_des_scale: event-driven vs epoch-synchronous backend scaling in M and N");
    cli.flag_bool("full", false, "Longer episodes (500 time units instead of 50)");
    cli.flag_double("lambda-total", 750.0, "Total offered load (jobs/unit) spread over M queues");
    cli.flag_double("dt", 1.0, "Synchronization delay");
    cli.flag_double("budget", 0.25, "Per-episode wall-clock budget (s) for the max-M search");
    cli.flag_int("shards", 8, "Queue shards K for the sharded scaling sweep");
    cli.flag_int_list("threads", "1,2,4,8", "Thread counts for the sharded scaling sweep");
    cli.flag_int("seed", 1, "Seed");
    cli.flag("json", "", "Optional JSON timings output path");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const double lambda_total = cli.get_double("lambda-total");
    const double dt = cli.get_double("dt");
    const double budget = cli.get_double("budget");
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const double total_time = full ? 500.0 : 50.0;
    const int horizon = MfcConfig::horizon_for_total_time(total_time, dt);

    bench::print_header("DES scale sweep",
                        "Fixed total load spread over M queues: event count stays constant, "
                        "per-epoch O(M) work does not",
                        full);
    bench::TimingLog timings("des_scale");

    const TupleSpace space(QueueParams{}.num_states(), 2);
    const DecisionRule jsq = DecisionRule::mf_jsq(space);
    char label[96];

    // --- 1. M-sweep at fixed total load, both backends --------------------
    std::printf("M-sweep: lambda_total=%.0f, dt=%.1f, %d epochs, JSQ(2), InfiniteClients\n",
                lambda_total, dt, horizon);
    Table table({"M", "finite (s/episode)", "des (s/episode)", "speedup", "drops/queue des"});
    // Half-decade grid: the DES episode time is nearly flat in M (the event
    // count is fixed by the total load), so it keeps going where the
    // epoch-synchronous backend has long blown the budget. The top point is
    // exactly 10 x 316228 so a one-decade separation reports as 10.0x.
    const std::vector<std::size_t> ms{1000, 10000, 100000, 316228, 1000000, 3162280};
    std::size_t max_m_finite = 0;
    std::size_t max_m_des = 0;
    double speedup_at_1e5 = 0.0;
    bool speedup_at_1e5_is_bound = false;
    bool finite_over_budget = false;
    for (const std::size_t m : ms) {
        const FiniteSystemConfig config =
            scale_config(m, lambda_total, dt, horizon, ClientModel::InfiniteClients, 10 * m);

        // Once the epoch-synchronous backend blows the budget, larger M only
        // gets slower — stop timing it and treat its time as > budget.
        double finite_seconds = std::nan("");
        if (!finite_over_budget) {
            const EpisodeRun finite = run_one_episode<FiniteSystem>(config, jsq, seed);
            finite_seconds = finite.seconds;
            std::snprintf(label, sizeof(label), "finite_episode_M=%zu", m);
            timings.record(label, finite.seconds);
            if (finite.seconds <= budget) {
                max_m_finite = m;
            } else {
                finite_over_budget = true;
            }
        }

        const EpisodeRun des = run_one_episode<DesSystem>(config, jsq, seed);
        std::snprintf(label, sizeof(label), "des_episode_M=%zu", m);
        timings.record(label, des.seconds);
        // Throughput rows (events/sec; "event_rate" rows are bigger-is-better
        // in check-bench-regression.sh): the quantity the calendar FEL buys.
        std::snprintf(label, sizeof(label), "event_rate_des_M=%zu", m);
        timings.record(label, des.events_per_second());
        if (des.seconds <= budget) {
            max_m_des = m;
        }
        // When the finite run was skipped, `budget / des` is a lower bound.
        const double speedup =
            std::isnan(finite_seconds) ? budget / des.seconds : finite_seconds / des.seconds;
        if (m == 100000) {
            speedup_at_1e5 = speedup;
            speedup_at_1e5_is_bound = std::isnan(finite_seconds);
        }
        char cell[32];
        table.row().cell(static_cast<std::int64_t>(m));
        if (std::isnan(finite_seconds)) {
            table.cell(std::string("> budget"));
        } else {
            table.cell(finite_seconds, 4);
        }
        std::snprintf(cell, sizeof(cell), "%s%.1fx", std::isnan(finite_seconds) ? ">= " : "",
                      speedup);
        table.cell(des.seconds, 4).cell(std::string(cell)).cell(des.drops_per_queue, 4);
    }
    std::printf("%s\n", table.to_text().c_str());
    const double m_ratio = max_m_finite > 0 ? static_cast<double>(max_m_des) /
                                                  static_cast<double>(max_m_finite)
                                            : 0.0;
    std::printf("largest M within %.2fs budget: finite %zu, des %zu -> %.1fx more queues %s\n",
                budget, max_m_finite, max_m_des, m_ratio,
                m_ratio >= 10.0 ? "(>= 10x: DES scale goal met)" : "");
    std::printf("speedup at M=10^5: %s%.1fx\n\n", speedup_at_1e5_is_bound ? ">= " : "",
                speedup_at_1e5);

    // --- 1b. FEL A/B: binary-heap vs calendar future event list -----------
    {
        // Same workload, same seed, results bit-identical by the FEL
        // determinism contract — only the event-engine data structure
        // changes. M = 10^5 pending events is deep enough that the heap's
        // O(log n) sift shows; the "speedup" row is bigger-is-better in CI.
        const std::size_t m = 100000;
        FiniteSystemConfig config =
            scale_config(m, lambda_total, dt, horizon, ClientModel::InfiniteClients, 10 * m);
        config.fel = FelKind::Heap;
        const EpisodeRun heap = run_one_episode<DesSystem>(config, jsq, seed);
        timings.record("des_episode_fel=heap_M=100000", heap.seconds);
        config.fel = FelKind::Calendar;
        const EpisodeRun calendar = run_one_episode<DesSystem>(config, jsq, seed);
        timings.record("des_episode_fel=calendar_M=100000", calendar.seconds);
        const double fel_speedup =
            calendar.seconds > 0.0 ? heap.seconds / calendar.seconds : 0.0;
        timings.record("fel_speedup_M=100000", fel_speedup);
        std::printf("FEL A/B at M=10^5: heap %.3f s, calendar %.3f s (%.2fx), "
                    "drops/queue %s\n\n",
                    heap.seconds, calendar.seconds, fel_speedup,
                    heap.drops_per_queue == calendar.drops_per_queue ? "bit-identical"
                                                                     : "MISMATCH");
    }

    // --- 2. N-sweep: exact finite-N client aggregation on DES -------------
    {
        const std::size_t m = 10000;
        std::printf("N-sweep at M=%zu (Aggregated client model, DES backend):\n", m);
        for (const std::uint64_t n : {std::uint64_t{10000}, std::uint64_t{100000},
                                      std::uint64_t{1000000}}) {
            const FiniteSystemConfig config =
                scale_config(m, lambda_total, dt, horizon, ClientModel::Aggregated, n);
            const EpisodeRun des = run_one_episode<DesSystem>(config, jsq, seed);
            std::snprintf(label, sizeof(label), "des_episode_M=%zu_N=%llu", m,
                          static_cast<unsigned long long>(n));
            timings.record(label, des.seconds);
            std::printf("  N=%-8llu %.3f s/episode, drops/queue %.4f\n",
                        static_cast<unsigned long long>(n), des.seconds, des.drops_per_queue);
        }
        std::printf("\n");
    }

    // --- 3. Per-job sojourn percentiles (DES-only capability) -------------
    {
        FiniteSystemConfig config = scale_config(10000, lambda_total, dt, horizon,
                                                 ClientModel::InfiniteClients, 1000000);
        config.track_sojourn = true;
        DesSystem system(config);
        Rng rng(seed);
        system.reset(rng);
        const trace::Stopwatch watch;
        std::uint64_t completed = 0;
        double sojourn_weighted = 0.0;
        while (!system.done()) {
            const EpochStats stats = system.step_with_rule(jsq, rng);
            completed += stats.completed_jobs;
            sojourn_weighted += stats.mean_sojourn * static_cast<double>(stats.completed_jobs);
        }
        timings.record("des_sojourn_episode_M=10000", watch.seconds());
        std::printf("sojourn times at M=10^4 (%llu completed jobs):\n"
                    "  p50 %.3f   p95 %.3f   p99 %.3f   mean %.3f\n",
                    static_cast<unsigned long long>(completed), system.sojourn_p50(),
                    system.sojourn_p95(), system.sojourn_p99(),
                    completed > 0 ? sojourn_weighted / static_cast<double>(completed) : 0.0);
    }

    // --- 4. Sharded backend: thread scaling on the large-n configuration --
    {
        // The acceptance configuration: the registry's `large-n` workload
        // (M = 10^4 queues, N = 10^6 Aggregated clients, dt = 5) — the
        // single-threaded unsharded DES is the baseline every sharded point
        // is measured against.
        FiniteSystemConfig config = scenario_or_die("large-n").experiment.finite_system();
        const auto shards = static_cast<std::size_t>(cli.get_int("shards"));
        std::printf("sharded scaling at M=%zu, N=%llu (large-n config), K=%zu shards:\n",
                    config.num_queues, static_cast<unsigned long long>(config.num_clients),
                    shards);
        const EpisodeRun baseline = run_one_episode<DesSystem>(config, jsq, seed);
        timings.record("sharded_baseline_des_episode", baseline.seconds);
        std::printf("  unsharded DES baseline (1 thread): %.3f s/episode, drops/queue %.4f\n",
                    baseline.seconds, baseline.drops_per_queue);

        config.shards = shards;
        Table scaling({"threads", "sharded (s/episode)", "speedup vs DES", "serial frac",
                       "drops/queue"});
        for (const std::int64_t t : cli.get_int_list("threads")) {
            config.threads = static_cast<std::size_t>(t);
            const ShardedRun run = run_sharded_episode(config, jsq, seed);
            const double speedup = baseline.seconds / run.episode.seconds;
            std::snprintf(label, sizeof(label), "sharded_episode_K=%zu_T=%lld", shards,
                          static_cast<long long>(t));
            timings.record(label, run.episode.seconds);
            // Speedup rows: the value column carries the ratio, not seconds,
            // so the CI artifact tracks scaling directly.
            std::snprintf(label, sizeof(label), "sharded_speedup_K=%zu_T=%lld", shards,
                          static_cast<long long>(t));
            timings.record(label, speedup);
            // Barrier-cost rows: the serial/parallel wall-clock split of the
            // epoch barrier (Amdahl accounting; "fraction" rows are ratios,
            // not seconds, and are skipped by check-bench-regression.sh).
            std::snprintf(label, sizeof(label), "sharded_barrier_serial_s_K=%zu_T=%lld",
                          shards, static_cast<long long>(t));
            timings.record(label, run.serial_s);
            std::snprintf(label, sizeof(label), "sharded_barrier_parallel_s_K=%zu_T=%lld",
                          shards, static_cast<long long>(t));
            timings.record(label, run.parallel_s);
            std::snprintf(label, sizeof(label), "sharded_barrier_overlap_s_K=%zu_T=%lld",
                          shards, static_cast<long long>(t));
            timings.record(label, run.overlap_s);
            std::snprintf(label, sizeof(label),
                          "sharded_barrier_serial_fraction_K=%zu_T=%lld", shards,
                          static_cast<long long>(t));
            timings.record(label, run.serial_fraction());
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.2fx", speedup);
            char frac[32];
            std::snprintf(frac, sizeof(frac), "%.3f", run.serial_fraction());
            scaling.row()
                .cell(t)
                .cell(run.episode.seconds, 4)
                .cell(std::string(cell))
                .cell(std::string(frac))
                .cell(run.episode.drops_per_queue, 4);
        }
        std::printf("%s", scaling.to_text().c_str());
        std::printf("(hardware: %u threads available; results are identical across thread "
                    "counts by the (seed, K) determinism contract)\n\n",
                    std::thread::hardware_concurrency());
    }

    // --- 5. Pipelined-barrier headroom: M = 10^7 queues, pipeline A/B -----
    {
        // Ten million queues under the fixed total load, InfiniteClients (no
        // per-client state), short horizon: the point is that the pipelined
        // barrier — eager reduction folds, offloaded epoch compute, fused
        // destination-law gathers that never materialize the 80 MB per-queue
        // law — keeps the O(M) epoch cost tractable at a fleet size three
        // decades past the epoch-synchronous backend's budget. Both pipeline
        // settings run on the same seed (bit-identical drops by the seam
        // contract); the speedup row is bigger-is-better in CI, and the
        // serial-fraction row tracks how much of the barrier remains
        // irreducibly serial. K = 8 is the default shard count; K = 32
        // repeats the A/B with a deeper reduction tree and shorter shards.
        const std::size_t m = 10000000;
        const int short_horizon = MfcConfig::horizon_for_total_time(5.0, dt);
        FiniteSystemConfig config = scale_config(m, lambda_total, dt, short_horizon,
                                                 ClientModel::InfiniteClients, 0);
        for (const std::size_t k : {std::size_t{8}, std::size_t{32}}) {
            config.shards = k;
            config.pipeline = true;
            const ShardedRun on = run_sharded_episode(config, jsq, seed);
            config.pipeline = false;
            const ShardedRun off = run_sharded_episode(config, jsq, seed);
            const double pipeline_speedup =
                on.episode.seconds > 0.0 ? off.episode.seconds / on.episode.seconds : 0.0;
            const char* suffix = k == 8 ? "M=10000000" : "K=32_M=10000000";
            if (k == 8) {
                // The headline M = 10^7 row stays the pipeline-on default-K
                // episode (same workload PR 7 recorded, now pipelined).
                timings.record("sharded_episode_M=10000000", on.episode.seconds);
                timings.record("event_rate_sharded_M=10000000",
                               on.episode.events_per_second());
            }
            std::snprintf(label, sizeof(label), "sharded_episode_pipeline=on_%s", suffix);
            timings.record(label, on.episode.seconds);
            std::snprintf(label, sizeof(label), "sharded_episode_pipeline=off_%s", suffix);
            timings.record(label, off.episode.seconds);
            std::snprintf(label, sizeof(label), "sharded_pipeline_speedup_%s", suffix);
            timings.record(label, pipeline_speedup);
            std::snprintf(label, sizeof(label), "sharded_barrier_serial_fraction_%s",
                          suffix);
            timings.record(label, on.serial_fraction());
            std::printf("sharded episode at M=10^7 (K=%zu, %d epochs): pipeline on %.3f s / "
                        "off %.3f s (%.2fx, serial fraction %.3f), drops/queue %s\n",
                        k, short_horizon, on.episode.seconds, off.episode.seconds,
                        pipeline_speedup, on.serial_fraction(),
                        on.episode.drops_per_queue == off.episode.drops_per_queue
                            ? "bit-identical"
                            : "MISMATCH");
        }
    }

    timings.write(cli.get("json"));
    if (!cli.get("json").empty()) {
        std::printf("\ntimings written to %s\n", cli.get("json").c_str());
    }
    return 0;
}
