/// Hot-path microbenchmark for the unified simulation core: verifies at run
/// time that the two allocation-free kernels really are allocation-free in
/// steady state (counting global allocator), compares the cached
/// ExactDiscretization workspace against a rebuild-per-call loop
/// (extended_generator + expm_uniformized_action, the shape of the
/// pre-refactor step_with_rates — note the shared series itself got faster
/// too, so the full seed-vs-now win only shows in the end-to-end numbers:
/// evaluate_mfc measured 1.5x faster than the seed library at Table-1 dt=1),
/// and times Table-1-sized evaluate_finite / evaluate_mfc runs. Emits JSON
/// timings via --json so the perf trajectory is trackable across PRs.
#include "bench_common.hpp"
#include "support/counting_allocator.inc"

#include <chrono>
#include <memory>

namespace {

using namespace mflb;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int main(int argc, char** argv) {
    CliParser cli("bench_hotpath: allocation-free hot paths + Table-1 evaluate_finite timing");
    cli.flag_bool("full", false, "More steps / episodes");
    cli.flag_int("seed", 1, "Seed");
    cli.flag("json", "", "Optional JSON timings output path");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    bench::print_header("Hot paths", "Workspace reuse in FiniteSystem and ExactDiscretization",
                        full);
    bench::TimingLog timings("hotpath");
    int failures = 0;

    // --- 1. FiniteSystem::step_with_rule, Table-1-sized, steady state ------
    {
        const ExperimentConfig experiment = scenario_or_die("table1").experiment;
        FiniteSystemConfig config = experiment.finite_system();
        config.dt = 5.0;
        config.horizon = 1 << 20;
        FiniteSystem system(config);
        Rng rng(cli.get_int("seed"));
        system.reset(rng);
        const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());
        (void)system.step_with_rule(h, rng); // warmup sizes the workspace
        const int steps = full ? 2000 : 400;
        const std::size_t allocs_before = counting_allocator::count();
        const auto start = Clock::now();
        for (int i = 0; i < steps; ++i) {
            (void)system.step_with_rule(h, rng);
        }
        const double elapsed = seconds_since(start);
        const std::size_t allocs = counting_allocator::count() - allocs_before;
        timings.record("finite_step_with_rule_table1", elapsed / steps);
        std::printf("FiniteSystem::step_with_rule (M=100, N=10^4, dt=5):\n"
                    "  %.1f us/epoch, %zu heap allocations over %d steady-state steps\n",
                    1e6 * elapsed / steps, allocs, steps);
        if (allocs != 0) {
            std::printf("  FAIL: expected zero steady-state allocations\n");
            ++failures;
        }
    }

    // --- 2. ExactDiscretization: cached workspace vs seed rebuild-per-call -
    {
        const ExactDiscretization disc({5, 1.0}, 5.0);
        const std::vector<double> nu{0.3, 0.25, 0.2, 0.1, 0.1, 0.05};
        const std::vector<double> rates{0.9, 0.9, 0.8, 0.7, 0.6, 0.5};
        const int reps = full ? 20000 : 4000;

        MeanFieldStep out;
        disc.step_with_rates(nu, rates, out); // warmup
        const std::size_t allocs_before = counting_allocator::count();
        const auto start_cached = Clock::now();
        for (int i = 0; i < reps; ++i) {
            disc.step_with_rates(nu, rates, out);
        }
        const double cached = seconds_since(start_cached);
        const std::size_t allocs = counting_allocator::count() - allocs_before;

        // Rebuild-per-call shape of the seed implementation (fresh generator
        // matrix and series output per occupied state; the series arithmetic
        // itself is the shared, already-fast path).
        std::vector<double> e(7, 0.0);
        const auto start_naive = Clock::now();
        for (int i = 0; i < reps; ++i) {
            for (std::size_t z = 0; z < nu.size(); ++z) {
                if (nu[z] == 0.0) {
                    continue;
                }
                const Matrix q = disc.extended_generator(rates[z]);
                std::fill(e.begin(), e.end(), 0.0);
                e[z] = 1.0;
                (void)expm_uniformized_action(q, disc.dt(), e);
            }
        }
        const double naive = seconds_since(start_naive);
        timings.record("mean_field_step_cached", cached / reps);
        timings.record("mean_field_step_rebuild_per_call", naive / reps);
        std::printf("\nExactDiscretization::step_with_rates (B=5, dt=5):\n"
                    "  cached workspace:  %.2f us/step, %zu allocations over %d steps\n"
                    "  rebuild-per-call:  %.2f us/step  ->  %.2fx speedup\n",
                    1e6 * cached / reps, allocs, reps, 1e6 * naive / reps, naive / cached);
        if (allocs != 0) {
            std::printf("  FAIL: expected zero steady-state allocations\n");
            ++failures;
        }
    }

    // --- 3. Table-1-sized end-to-end wall clocks ----------------------------
    // evaluate_finite is event-sampling-bound (the exact Gillespie kernel
    // dominates), so the workspace refactor buys only a few percent there;
    // evaluate_mfc runs the discretizer in its inner loop and shows the
    // cached-workspace win end to end (measured 1.5x vs the seed library).
    {
        ExperimentConfig experiment = scenario_or_die("table1").experiment;
        experiment.dt = 5.0;
        const std::size_t episodes = full ? 50 : 10;
        const TupleSpace space(experiment.queue.num_states(), experiment.d);
        const auto start = Clock::now();
        const EvaluationResult result = evaluate_finite(
            experiment.finite_system(), make_jsq_policy(space), episodes, cli.get_int("seed"));
        const double elapsed = seconds_since(start);
        timings.record("evaluate_finite_table1", elapsed);
        std::printf("\nevaluate_finite (Table 1, dt=5, T_e=%d, %zu episodes, all cores):\n"
                    "  %.3f s wall clock, drops/queue = %s\n",
                    experiment.eval_horizon(), episodes, elapsed,
                    bench::ci_cell(result.total_drops).c_str());
    }
    {
        ExperimentConfig experiment = scenario_or_die("table1").experiment;
        experiment.dt = 1.0; // T_e = 500 epochs of pure discretizer work
        const std::size_t episodes = full ? 100 : 20;
        const TupleSpace space(experiment.queue.num_states(), experiment.d);
        const auto start = Clock::now();
        const EvaluationResult result = evaluate_mfc(
            experiment.mfc(true), make_jsq_policy(space), episodes, cli.get_int("seed"));
        const double elapsed = seconds_since(start);
        timings.record("evaluate_mfc_table1", elapsed);
        std::printf("\nevaluate_mfc (Table 1, dt=1, T_e=500, %zu episodes, all cores):\n"
                    "  %.3f s wall clock, drops/queue = %s\n",
                    episodes, elapsed, bench::ci_cell(result.total_drops).c_str());
    }

    // --- 4. PPO training step: collect + allocation-free batched update ----
    // The update phase shares the hot-path contract with the simulators:
    // after the warmup iteration sizes the GEMM workspaces, the SGD epochs
    // must not touch the heap. Rows feed the CI perf artifact so training
    // throughput is tracked alongside sim throughput.
    {
        ExperimentConfig experiment = scenario_or_die("table1").experiment;
        experiment.dt = 5.0;
        MfcConfig config = experiment.mfc();
        config.horizon = 25;
        rl::PpoConfig ppo;
        ppo.hidden = {64, 64};
        ppo.train_batch_size = full ? 2000 : 500;
        ppo.minibatch_size = 125;
        ppo.num_epochs = full ? 6 : 3;
        ppo.num_envs = 1;
        const auto factory = [&config]() -> std::unique_ptr<rl::Env> {
            return std::make_unique<MfcRlEnv>(config, RuleParameterization::Logits);
        };
        rl::PpoTrainer trainer(factory, ppo, Rng(cli.get_int("seed")));
        (void)trainer.train_iteration(); // warmup sizes every workspace

        rl::PpoIterationStats stats;
        const auto start_collect = Clock::now();
        trainer.collect_phase(stats);
        const double collect_seconds = seconds_since(start_collect);
        const std::size_t allocs_before = counting_allocator::count();
        const auto start_update = Clock::now();
        trainer.optimize_phase(stats);
        const double update_seconds = seconds_since(start_update);
        const std::size_t allocs = counting_allocator::count() - allocs_before;
        timings.record("rollout_collect_mfc", collect_seconds);
        timings.record("ppo_update_batched_mfc", update_seconds);
        std::printf("\nPPO training step (MFC MDP, 64x64 net, batch %zu, %zu epochs):\n"
                    "  collect %.3f s, batched update %.3f s, %zu heap allocations in the "
                    "update\n",
                    ppo.train_batch_size, ppo.num_epochs, collect_seconds, update_seconds,
                    allocs);
        if (allocs != 0) {
            std::printf("  FAIL: expected zero steady-state allocations in the update\n");
            ++failures;
        }

        // Legacy per-sample update on the same net, for the CI speedup trail.
        rl::PpoConfig scalar_ppo = ppo;
        scalar_ppo.batched_update = false;
        rl::PpoTrainer scalar(factory, scalar_ppo, Rng(cli.get_int("seed")));
        (void)scalar.train_iteration();
        rl::PpoIterationStats scalar_stats;
        scalar.collect_phase(scalar_stats);
        const auto start_scalar = Clock::now();
        scalar.optimize_phase(scalar_stats);
        const double scalar_seconds = seconds_since(start_scalar);
        timings.record("ppo_update_scalar_mfc", scalar_seconds);
        std::printf("  per-sample update %.3f s  ->  %.2fx batched speedup\n", scalar_seconds,
                    scalar_seconds / update_seconds);
    }

    // --- 5. Telemetry overhead: epoch loop with the session off vs on ------
    // The telemetry layer's contract is branch-cheap when disabled and
    // allocation-free in steady state when enabled; this section puts a
    // number on the "on" cost per backend. The *_overhead_fraction rows are
    // informational (fraction rows never gate in check-bench-regression.sh);
    // the absolute per-episode times feed the CI perf artifact.
    {
        const ExperimentConfig base_experiment = scenario_or_die("table1").experiment;
        const std::size_t episodes = full ? 6 : 2;
        std::printf("\nTelemetry overhead (Table 1, dt=5, %zu episodes, metrics+trace on):\n",
                    episodes);
        const auto time_backend = [&]<class System>(const char* name) {
            FiniteSystemConfig config = base_experiment.finite_system();
            config.dt = 5.0;
            const TupleSpace space(base_experiment.queue.num_states(), base_experiment.d);
            const FixedRulePolicy policy = make_jsq_policy(space);
            const auto run = [&](TelemetrySession* session) {
                FiniteSystemConfig run_config = config;
                run_config.telemetry = session;
                System system(run_config);
                Rng rng(cli.get_int("seed"));
                system.reset(rng);
                (void)system.run_episode(policy, rng); // warmup sizes workspaces
                const auto start = Clock::now();
                for (std::size_t e = 0; e < episodes; ++e) {
                    system.reset(rng);
                    (void)system.run_episode(policy, rng);
                }
                return seconds_since(start) / static_cast<double>(episodes);
            };
            const double off = run(nullptr);
            const auto session = TelemetrySession::in_memory(SeriesFormat::Jsonl, true);
            const double on = run(session.get());
            const double fraction = off > 0.0 ? (on - off) / off : 0.0;
            timings.record(std::string(name) + "_epoch_telemetry_off", off);
            timings.record(std::string(name) + "_epoch_telemetry_on", on);
            timings.record(std::string(name) + "_telemetry_overhead_fraction", fraction);
            std::printf("  %-8s off %.3f ms/episode, on %.3f ms/episode  ->  %+.2f%%\n", name,
                        1e3 * off, 1e3 * on, 1e2 * fraction);
        };
        time_backend.operator()<FiniteSystem>("finite");
        time_backend.operator()<DesSystem>("des");
        time_backend.operator()<ShardedDesSystem>("sharded");
    }

    timings.write(cli.get("json"));
    if (!cli.get("json").empty()) {
        std::printf("\ntimings written to %s\n", cli.get("json").c_str());
    }
    return failures == 0 ? 0 : 1;
}
