/// Ablation: the power-of-d choice. The paper fixes d = 2 citing [26]
/// (d = 1 -> 2 is an exponential improvement, d = 2 -> 3 marginal). This
/// bench quantifies that on the delayed mean-field model: JSQ(d) and the
/// Boltzmann family for d ∈ {1, 2, 3} across delays.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_ablation_d: power-of-d ablation on the mean-field model");
    cli.flag_bool("full", false, "More episodes per estimate");
    cli.flag_double_list("dts", "1,5,10", "Delays to sweep");
    cli.flag_int("seed", 5, "Evaluation seed");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const std::size_t episodes = full ? 100 : 30;

    bench::print_header("Ablation: power-of-d",
                        "Mean-field drops of JSQ(d) / RND(d) for d in {1, 2, 3}", full);

    Table table({"dt", "d", "JSQ(d) drops", "RND(d) drops", "JSQ gain vs d=1"});
    for (const double dt : cli.get_double_list("dts")) {
        double jsq_d1 = 0.0;
        for (const int d : {1, 2, 3}) {
            ExperimentConfig experiment;
            experiment.dt = dt;
            experiment.d = d;
            const MfcConfig config = experiment.mfc(/*eval_horizon_instead=*/true);
            const TupleSpace space(config.queue.num_states(), d);
            const EvaluationResult jsq =
                evaluate_mfc(config, make_jsq_policy(space), episodes, cli.get_int("seed"));
            const EvaluationResult rnd =
                evaluate_mfc(config, make_rnd_policy(space), episodes, cli.get_int("seed"));
            if (d == 1) {
                jsq_d1 = jsq.total_drops.mean;
            }
            table.row()
                .cell(dt, 1)
                .cell(static_cast<std::int64_t>(d))
                .cell(bench::ci_cell(jsq.total_drops))
                .cell(bench::ci_cell(rnd.total_drops))
                .cell(jsq_d1 - jsq.total_drops.mean, 3);
        }
    }
    std::printf("%s", table.to_text().c_str());
    std::printf("\n(expected: at small dt most of the JSQ(d) gain comes from d=1 -> 2;\n"
                " at large dt extra choices help less because the snapshot is stale;\n"
                " d=1 makes JSQ degenerate to RND, so their columns coincide there)\n");
    return 0;
}
