/// Reproduces Table 2 of the paper: the PPO hyperparameter configuration, as
/// consumed by the from-scratch PPO trainer (rl/ppo.hpp). The defaults of
/// rl::PpoConfig ARE Table 2; this binary prints them and cross-checks each
/// value so a drift in defaults fails loudly.
#include "bench_common.hpp"

#include <cstdlib>

namespace {
void check(bool condition, const char* what) {
    if (!condition) {
        std::fprintf(stderr, "Table 2 drift detected: %s\n", what);
        std::exit(1);
    }
}
} // namespace

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_table2_ppo_config: reproduce Table 2 (PPO hyperparameters)");
    cli.flag_bool("full", false, "No effect here; accepted for harness uniformity");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }

    const rl::PpoConfig config;
    bench::print_header("Table 2", "Hyperparameter configuration for PPO",
                        cli.get_bool("full"));
    std::printf("%s\n", ppo_config_table(config).to_text().c_str());

    check(config.discount == 0.99, "gamma != 0.99");
    check(config.gae_lambda == 1.0, "GAE lambda != 1");
    check(config.kl_coeff == 0.2, "KL coefficient != 0.2");
    check(config.clip_param == 0.3, "clip parameter != 0.3");
    check(config.learning_rate == 5e-5, "learning rate != 0.00005");
    check(config.train_batch_size == 4000, "train batch size != 4000");
    check(config.minibatch_size == 128, "SGD minibatch size != 128");
    check(config.num_epochs == 30, "number of epochs != 30");
    check(config.hidden == std::vector<std::size_t>({256, 256}),
          "policy network != 256x256 tanh");
    // Parallelization knobs are implementation detail, not Table 2 values:
    // defaults must keep the trainer algorithmically identical to the paper
    // (K = 1 reproduces the legacy serial trajectory bit-for-bit).
    check(config.num_envs == 1, "default num_envs != 1 (rollout no longer paper-default)");
    check(config.batched_update, "batched update not the default path");
    std::printf("All Table 2 values match the paper.\n");
    std::printf("(K / W rows are parallel-trainer throughput knobs: results depend on\n"
                " (seed, K) but never on the worker-thread count W.)\n");
    return 0;
}
