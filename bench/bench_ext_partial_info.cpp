/// Extension bench: partial information about the queue-state distribution.
/// The paper (§2.1) notes that in practice clients may "estimate e.g. the
/// empirical queue state distribution by sampling a subset of random
/// queues" — this bench quantifies the cost of that estimate: a ν-dependent
/// policy (the DP greedy policy) is deployed with the histogram estimated
/// from K sampled queues, for K from 2 to exact, alongside ν-independent
/// references (whose performance cannot depend on K).
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_ext_partial_info: sampled-histogram observations for the policy");
    cli.flag_bool("full", false, "More replications and a finer DP grid");
    cli.flag_double("dt", 5, "Synchronization delay");
    cli.flag_int("m", 100, "Number of queues");
    cli.flag_int_list("ks", "2,5,20,0", "Histogram sample sizes (0 = exact H^M)");
    cli.flag_int("seed", 11, "Seed");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const std::size_t sims = full ? 50 : 12;

    // Registry's "partial-info" scenario; the K sweep overrides the sample
    // size per row below.
    ExperimentConfig experiment = scenario_or_die("partial-info").experiment;
    experiment.dt = cli.get_double("dt");
    experiment.num_queues = static_cast<std::size_t>(cli.get_int("m"));
    experiment.num_clients = experiment.num_queues * experiment.num_queues;

    bench::print_header("Extension: partial information",
                        "nu-dependent DP policy fed a K-sample estimate of H^M", full);

    // The DP policy is ν-dependent (it projects the observed histogram onto
    // its grid), so estimation noise actually matters for it.
    DpConfig dp;
    dp.resolution = full ? 8 : 6;
    const auto [dp_policy, dp_stats] = solve_mfc_dp(experiment.mfc(true), dp);
    std::fprintf(stderr, "[partial] DP solved (%zu states, %zu sweeps)\n", dp_stats.states,
                 dp_stats.sweeps);
    const TupleSpace space(experiment.queue.num_states(), experiment.d);
    const FixedRulePolicy jsq = make_jsq_policy(space);

    Table table({"K (sampled queues)", "MF-DP drops", "JSQ(2) drops (reference)"});
    for (const std::int64_t k : cli.get_int_list("ks")) {
        FiniteSystemConfig config = experiment.finite_system();
        config.histogram_sample_size = static_cast<std::size_t>(k);
        const EvaluationResult dp_eval =
            evaluate_finite(config, dp_policy, sims, cli.get_int("seed"));
        const EvaluationResult jsq_eval =
            evaluate_finite(config, jsq, sims, cli.get_int("seed"));
        table.row()
            .cell(k == 0 ? std::string("exact") : std::to_string(k))
            .cell(bench::ci_cell(dp_eval.total_drops))
            .cell(bench::ci_cell(jsq_eval.total_drops));
        std::fprintf(stderr, "[partial] K=%lld done\n", static_cast<long long>(k));
    }
    std::printf("%s", table.to_text().c_str());
    std::printf("\n(expected: the DP policy degrades gracefully as K shrinks — even a\n"
                " handful of sampled queues retains most of the benefit, because the\n"
                " policy mainly needs a coarse sense of how loaded the system is;\n"
                " the nu-independent JSQ reference is flat in K by construction)\n");
    return 0;
}
