/// Microbenchmarks (google-benchmark) of the hot kernels behind every
/// figure: matrix exponentials, the mean-field transition step, Gillespie
/// queue epochs, client aggregation, and network inference.
#include "core/mflb.hpp"

#include <benchmark/benchmark.h>

namespace {
using namespace mflb;

void BM_ExpmPade7x7(benchmark::State& state) {
    const ExactDiscretization disc({5, 1.0}, 5.0);
    const Matrix q = disc.extended_generator(0.9) * 5.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(expm(q));
    }
}
BENCHMARK(BM_ExpmPade7x7);

void BM_ExpmUniformizedAction7x7(benchmark::State& state) {
    const ExactDiscretization disc({5, 1.0}, 5.0);
    const Matrix q = disc.extended_generator(0.9);
    std::vector<double> e0(7, 0.0);
    e0[0] = 1.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(expm_uniformized_action(q, 5.0, e0));
    }
}
BENCHMARK(BM_ExpmUniformizedAction7x7);

void BM_MeanFieldStep(benchmark::State& state) {
    const ExactDiscretization disc({5, 1.0}, static_cast<double>(state.range(0)));
    const TupleSpace space(6, 2);
    const DecisionRule h = DecisionRule::mf_jsq(space);
    const std::vector<double> nu{0.3, 0.25, 0.2, 0.1, 0.1, 0.05};
    for (auto _ : state) {
        benchmark::DoNotOptimize(disc.step(nu, h, 0.9));
    }
}
BENCHMARK(BM_MeanFieldStep)->Arg(1)->Arg(5)->Arg(10);

void BM_GillespieQueueEpoch(benchmark::State& state) {
    Rng rng(1);
    const double dt = static_cast<double>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulate_queue_epoch(2, 0.9, 1.0, 5, dt, rng));
    }
}
BENCHMARK(BM_GillespieQueueEpoch)->Arg(1)->Arg(5)->Arg(10);

// FEL hold model (the classic priority-queue workload and the DES event
// loop's steady state): n pending events; each iteration pops the minimum
// and schedules its successor an exponential increment ahead. The heap pays
// O(log n) per transaction, the calendar amortized O(1) — the gap is the
// tentpole's claim, visible directly in the items/sec column.
void BM_FelHoldHeap(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    EventQueue fel(n);
    Rng rng(7);
    for (std::size_t id = 0; id < n; ++id) {
        fel.schedule(id, rng.exponential(1.0));
    }
    for (auto _ : state) {
        const EventQueue::Event event = fel.pop();
        fel.schedule(event.id, event.time + rng.exponential(1.0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FelHoldHeap)->Arg(100)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_FelHoldCalendar(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    // Rate hint = n: n pending events advancing by mean-1 increments is n
    // events per unit time, the same hint the DES derives from its config.
    CalendarQueue fel(n, static_cast<double>(n));
    Rng rng(7);
    for (std::size_t id = 0; id < n; ++id) {
        fel.schedule(id, rng.exponential(1.0));
    }
    fel.retune(); // the epoch-barrier call: grow the day array to the fill.
    for (auto _ : state) {
        const CalendarQueue::Event event = fel.pop();
        fel.schedule(event.id, event.time + rng.exponential(1.0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FelHoldCalendar)->Arg(100)->Arg(10000)->Arg(100000)->Arg(1000000);

// The fused fast path both DES backends actually run: peek the front event,
// then relocate it in place (one sift / one bucket relocation) instead of a
// pop followed by a fresh insert.
void BM_FelHoldHeapFused(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    EventQueue fel(n);
    Rng rng(7);
    for (std::size_t id = 0; id < n; ++id) {
        fel.schedule(id, rng.exponential(1.0));
    }
    for (auto _ : state) {
        const EventQueue::Event event = fel.peek();
        fel.pop_and_reschedule(event.id, event.time + rng.exponential(1.0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FelHoldHeapFused)->Arg(10000)->Arg(100000);

void BM_FelHoldCalendarFused(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    CalendarQueue fel(n, static_cast<double>(n));
    Rng rng(7);
    for (std::size_t id = 0; id < n; ++id) {
        fel.schedule(id, rng.exponential(1.0));
    }
    fel.retune();
    for (auto _ : state) {
        const CalendarQueue::Event event = fel.peek();
        fel.pop_and_reschedule(event.id, event.time + rng.exponential(1.0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FelHoldCalendarFused)->Arg(10000)->Arg(100000);

// Arrival-pattern mix: 70% hold transactions, 20% reschedules of a random
// slot (the DES's arrival-slot redraw), 10% cancel + re-insert — the FEL's
// full operation surface under one deterministic stream.
template <class Fel>
void fel_mixed_loop(benchmark::State& state, Fel& fel, std::size_t n) {
    Rng rng(7);
    for (auto _ : state) {
        const double coin = rng.uniform();
        if (coin < 0.7) {
            const auto event = fel.pop();
            fel.schedule(event.id, event.time + rng.exponential(1.0));
        } else if (coin < 0.9) {
            const auto id = static_cast<std::size_t>(rng.uniform_below(n));
            fel.schedule(id, fel.peek().time + rng.exponential(1.0));
        } else {
            const auto id = static_cast<std::size_t>(rng.uniform_below(n));
            const double t = fel.peek().time + rng.exponential(1.0);
            fel.cancel(id);
            fel.schedule(id, t);
        }
    }
    state.SetItemsProcessed(state.iterations());
}

void BM_FelMixedHeap(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    EventQueue fel(n);
    Rng fill(3);
    for (std::size_t id = 0; id < n; ++id) {
        fel.schedule(id, fill.exponential(1.0));
    }
    fel_mixed_loop(state, fel, n);
}
BENCHMARK(BM_FelMixedHeap)->Arg(10000)->Arg(100000);

void BM_FelMixedCalendar(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    CalendarQueue fel(n, static_cast<double>(n));
    Rng fill(3);
    for (std::size_t id = 0; id < n; ++id) {
        fel.schedule(id, fill.exponential(1.0));
    }
    fel.retune();
    fel_mixed_loop(state, fel, n);
}
BENCHMARK(BM_FelMixedCalendar)->Arg(10000)->Arg(100000);

void BM_FiniteSystemEpochAggregated(benchmark::State& state) {
    FiniteSystemConfig config;
    config.num_queues = static_cast<std::size_t>(state.range(0));
    config.num_clients = config.num_queues * config.num_queues;
    config.dt = 5.0;
    config.horizon = 1u << 20; // effectively unbounded for this loop
    FiniteSystem system(config);
    Rng rng(2);
    system.reset(rng);
    const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());
    for (auto _ : state) {
        benchmark::DoNotOptimize(system.step_with_rule(h, rng));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FiniteSystemEpochAggregated)->Arg(100)->Arg(400)->Arg(1000);

void BM_FiniteSystemEpochPerClient(benchmark::State& state) {
    FiniteSystemConfig config;
    config.num_queues = 100;
    config.num_clients = static_cast<std::uint64_t>(state.range(0));
    config.dt = 5.0;
    config.horizon = 1u << 20;
    config.client_model = ClientModel::PerClient;
    FiniteSystem system(config);
    Rng rng(3);
    system.reset(rng);
    const DecisionRule h = DecisionRule::mf_jsq(system.tuple_space());
    for (auto _ : state) {
        benchmark::DoNotOptimize(system.step_with_rule(h, rng));
    }
}
BENCHMARK(BM_FiniteSystemEpochPerClient)->Arg(10000)->Arg(100000);

void BM_DecisionRuleFromLogits(benchmark::State& state) {
    const TupleSpace space(6, 2);
    std::vector<double> logits(space.size() * 2);
    Rng rng(4);
    for (double& l : logits) {
        l = rng.normal();
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(DecisionRule::from_logits(space, logits));
    }
}
BENCHMARK(BM_DecisionRuleFromLogits);

void BM_GemmNT(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t batch = 128;
    std::vector<double> a(batch * n), b(n * n), c(batch * n, 0.0);
    Rng rng(7);
    for (double& v : a) {
        v = rng.normal();
    }
    for (double& v : b) {
        v = rng.normal();
    }
    for (auto _ : state) {
        gemm_nt_acc(batch, n, n, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * batch * n * n));
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(256);

void BM_GemmTN(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t batch = 128;
    std::vector<double> a(batch * n), b(batch * n), c(n * n, 0.0);
    Rng rng(8);
    for (double& v : a) {
        v = rng.normal();
    }
    for (double& v : b) {
        v = rng.normal();
    }
    for (auto _ : state) {
        gemm_tn_acc(n, n, batch, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * batch * n * n));
}
BENCHMARK(BM_GemmTN)->Arg(64)->Arg(256);

void BM_MlpForwardBatched(benchmark::State& state) {
    Rng rng(9);
    rl::Mlp net({8, 256, 256, 144}, rng, 1.0);
    const auto batch = static_cast<std::size_t>(state.range(0));
    std::vector<double> inputs(batch * 8);
    for (double& v : inputs) {
        v = rng.normal();
    }
    rl::Mlp::BatchWorkspace ws(net, batch);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.forward_cached_batch(inputs, batch, ws).data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpForwardBatched)->Arg(1)->Arg(32)->Arg(128);

void BM_MlpForwardPerSampleLoop(benchmark::State& state) {
    // The pre-batching shape: one scalar forward per row (same net and rows
    // as BM_MlpForwardBatched for a direct items/sec comparison).
    Rng rng(9);
    rl::Mlp net({8, 256, 256, 144}, rng, 1.0);
    const auto batch = static_cast<std::size_t>(state.range(0));
    std::vector<double> inputs(batch * 8);
    for (double& v : inputs) {
        v = rng.normal();
    }
    rl::Mlp::Workspace ws;
    for (auto _ : state) {
        for (std::size_t row = 0; row < batch; ++row) {
            benchmark::DoNotOptimize(
                net.forward_span(std::span<const double>(inputs.data() + row * 8, 8), ws)
                    .data());
        }
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpForwardPerSampleLoop)->Arg(128);

void BM_MlpBackwardBatched(benchmark::State& state) {
    Rng rng(10);
    rl::Mlp net({8, 256, 256, 144}, rng, 1.0);
    const auto batch = static_cast<std::size_t>(state.range(0));
    std::vector<double> inputs(batch * 8), grad_out(batch * 144, 0.1);
    for (double& v : inputs) {
        v = rng.normal();
    }
    std::vector<double> grads(net.parameter_count(), 0.0);
    rl::Mlp::BatchWorkspace ws(net, batch);
    net.forward_cached_batch(inputs, batch, ws);
    for (auto _ : state) {
        net.forward_cached_batch(inputs, batch, ws);
        net.backward_batch(ws, grad_out, grads);
        benchmark::DoNotOptimize(grads.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpBackwardBatched)->Arg(128);

void BM_PolicyNetworkForward(benchmark::State& state) {
    Rng rng(5);
    rl::GaussianPolicy policy(8, 72, {static_cast<std::size_t>(state.range(0)),
                                      static_cast<std::size_t>(state.range(0))},
                              rng);
    const std::vector<double> obs{0.3, 0.2, 0.2, 0.1, 0.1, 0.1, 1.0, 0.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(policy.mean_action(obs));
    }
}
BENCHMARK(BM_PolicyNetworkForward)->Arg(64)->Arg(256);

void BM_MfcEnvEpisode(benchmark::State& state) {
    MfcConfig config;
    config.dt = 5.0;
    config.horizon = 100;
    const DecisionRule h = DecisionRule::greedy_softmax(TupleSpace(6, 2), 1.0);
    Rng rng(6);
    for (auto _ : state) {
        MfcEnv env(config);
        env.reset(rng);
        double total = 0.0;
        while (!env.done()) {
            total += env.step(h, rng).drops;
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_MfcEnvEpisode);

} // namespace
