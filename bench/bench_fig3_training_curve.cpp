/// Reproduces Figure 3: the PPO learning curve on the MFC MDP for Δt = 5,
/// with the MF-JSQ(2) and MF-RND reference returns as horizontal lines and
/// the final learned-MF performance marker.
///
/// Default budget trains a reduced configuration (smaller network / batch /
/// iteration count) so the binary finishes in ~1 minute on one core; the
/// paper trained Table 2 exactly for ~2.5e7 steps on 20 cores for 35 h.
/// `--full` restores Table 2 and the paper's step budget. The expected shape
/// — curve starts between the RND/JSQ references and climbs toward the CEM
/// optimum — is budget-independent.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_fig3_training_curve: reproduce Figure 3 (PPO learning curve, dt=5)");
    cli.flag_bool("full", false, "Use the paper-scale Table 2 configuration");
    cli.flag_double("dt", 5, "Synchronization delay");
    cli.flag_int("iterations", 25, "PPO training iterations at default budget");
    cli.flag_int("horizon", 30, "Episode length (decision epochs) at default budget");
    cli.flag_int("seed", 1, "Training seed");
    cli.flag_int("num-envs", 1,
                 "Parallel rollout environments K (results depend on (seed, K) but "
                 "never on thread count)");
    cli.flag_int("train-threads", 0,
                 "Worker threads for the rollout fan-out (0 = all cores; never "
                 "changes results)");
    cli.flag_bool("warm-start", false,
             "Initialize the policy mean at the best Boltzmann rule (shows the "
             "pipeline surpassing JSQ(2) within the small default budget)");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const double dt = cli.get_double("dt");

    ExperimentConfig experiment;
    experiment.dt = dt;
    MfcConfig config = experiment.mfc();
    config.horizon = full ? 500 : static_cast<int>(cli.get_int("horizon"));

    rl::PpoConfig ppo; // Table 2 defaults
    std::size_t iterations = 6250;  // ≈ 2.5e7 steps at batch 4000
    if (!full) {
        // Calibrated small-budget configuration: tighter exploration noise
        // for the 72-dimensional decision-rule action space, shorter
        // episodes (less λ-path return variance), unclipped critic loss so
        // the value net actually trains at these return magnitudes.
        ppo.hidden = {64, 64};
        ppo.train_batch_size = 2000;
        ppo.num_epochs = 10;
        ppo.learning_rate = 1e-3;
        ppo.vf_clip_param = 1e9;
        ppo.initial_log_std = -1.2;
        ppo.kl_target = 0.03;
        iterations = static_cast<std::size_t>(cli.get_int("iterations"));
    }
    if (cli.get_int("num-envs") < 1 || cli.get_int("train-threads") < 0) {
        std::fprintf(stderr, "error: --num-envs must be >= 1 and --train-threads >= 0\n");
        return 2;
    }
    experiment.num_envs = static_cast<std::size_t>(cli.get_int("num-envs"));
    experiment.train_threads = static_cast<std::size_t>(cli.get_int("train-threads"));
    ppo.num_envs = experiment.num_envs;
    ppo.train_threads = experiment.train_threads;

    bench::print_header("Figure 3",
                        "PPO training curve on the MFC MDP (episode return = -packet drops)",
                        full);

    // Reference lines: MF-JSQ(2), MF-RND, and the CEM-learned optimum (the
    // "MF final performance" dotted line of the figure).
    const TupleSpace space(config.queue.num_states(), config.d);
    const std::size_t ref_episodes = 40;
    const EvaluationResult jsq_ref =
        evaluate_mfc(config, make_jsq_policy(space), ref_episodes, 99);
    const EvaluationResult rnd_ref =
        evaluate_mfc(config, make_rnd_policy(space), ref_episodes, 99);
    bench::LearnedPolicyCache cache(full, 4242);
    MfcConfig cem_eval_config = config;
    const EvaluationResult cem_ref =
        evaluate_mfc(cem_eval_config, cache.policy_for(dt), ref_episodes, 99);

    std::printf("reference returns (mean over %zu episodes, horizon %d):\n", ref_episodes,
                config.horizon);
    std::printf("  MF-JSQ(2):            %.3f\n", -jsq_ref.total_drops.mean);
    std::printf("  MF-RND:               %.3f\n", -rnd_ref.total_drops.mean);
    std::printf("  MF final (CEM optimum): %.3f\n\n", -cem_ref.total_drops.mean);

    Table curve({"iteration", "timesteps", "mean_episode_return", "mean_KL", "kl_coeff",
                 "policy_loss", "value_loss"});
    const auto make_env = [&config]() -> std::unique_ptr<rl::Env> {
        return std::make_unique<MfcRlEnv>(config, RuleParameterization::Logits);
    };
    rl::PpoTrainer trainer(make_env, ppo, Rng(cli.get_int("seed")));
    if (cli.get_bool("warm-start")) {
        const std::vector<double> beta_grid{0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
        const double beta = best_boltzmann_beta(config, beta_grid, 4, 99);
        trainer.policy().set_initial_mean(boltzmann_initial_params(space, 1, beta));
        std::printf("warm start: Boltzmann beta = %.2f\n\n", beta);
    }
    trainer.train(iterations, [&](const rl::PpoIterationStats& stats) {
        curve.row()
            .cell(static_cast<std::int64_t>(curve.rows() + 1))
            .cell(static_cast<std::int64_t>(stats.timesteps_total))
            .cell(stats.mean_episode_return, 3)
            .cell(stats.mean_kl, 5)
            .cell(stats.kl_coeff, 4)
            .cell(stats.policy_loss, 5)
            .cell(stats.value_loss, 3);
        std::fprintf(stderr, "[fig3] steps=%zu return=%.3f kl=%.5f\n", stats.timesteps_total,
                     stats.mean_episode_return, stats.mean_kl);
    });
    const double final_eval = trainer.evaluate(20);

    std::printf("%s\n", curve.to_text().c_str());
    std::printf("final deterministic-policy return: %.3f\n", final_eval);
    if (full) {
        std::printf("(paper shape: curve starts near MF-RND level and climbs above both\n"
                    " MF-RND and MF-JSQ(2) toward the MF optimum as steps accumulate)\n");
    } else {
        std::printf(
            "(at this reduced budget the curve separates from the MF-RND level but\n"
            " does not yet pass MF-JSQ(2); the paper trained ~2.5e7 steps on 20 cores\n"
            " for ~35h. Run with --full for the Table 2 configuration, or with\n"
            " --warm-start to see the pipeline surpass JSQ(2) within this budget.\n"
            " The CEM line above shows the optimum this MDP admits.)\n");
    }
    return 0;
}
