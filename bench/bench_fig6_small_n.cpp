/// Reproduces Figure 6: the N ≯ M ablation — N = 1000 clients with (a)
/// M = 1000 (N = M) and (b) M = 500 (N = 2M), violating the formal N >> M
/// assumption. The paper finds the qualitative ordering survives: the MF
/// policy still performs best at intermediate/large Δt, while RND is no
/// longer flat in Δt (queues are sampled unequally often and resampling
/// every epoch matters).
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_fig6_small_n: reproduce Figure 6 (N = 1000 with M in {1000, 500})");
    cli.flag_bool("full", false, "Paper-scale (dt 1..10, n=100 sims)");
    cli.flag_int("n", 1000, "Number of clients");
    cli.flag_int_list("ms", "1000,500", "Queue counts");
    cli.flag_double_list("dts", "", "Delays (default depends on --full)");
    cli.flag_int("sims", 0, "Monte Carlo replications per cell (0 = budget default)");
    cli.flag_int("seed", 4, "Evaluation seed");
    bench::register_backend_flag(cli);
    bench::register_threads_flag(cli);
    cli.flag("csv", "", "Optional CSV output path");
    cli.flag("json", "", "Optional JSON timings output path");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const SimBackend backend = bench::backend_from(cli);
    const std::size_t threads = bench::threads_from(cli);
    const auto ms = cli.get_int_list("ms");
    std::vector<double> dts = cli.get_double_list("dts");
    if (dts.empty()) {
        dts = full ? std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
                   : std::vector<double>{1, 3, 5, 7, 10};
    }
    std::size_t sims = static_cast<std::size_t>(cli.get_int("sims"));
    if (sims == 0) {
        sims = full ? 100 : 10;
    }

    bench::print_header("Figure 6",
                        "Drops vs dt when N is NOT >> M (N = 1000; M = 1000 and M = 500)", full);

    bench::LearnedPolicyCache cache(full, 5150);
    bench::TimingLog timings("fig6_small_n");
    Table table({"N", "M", "dt", "MF-NM", "JSQ(2)", "RND", "winner"});
    for (const std::int64_t m : ms) {
        for (const double dt : dts) {
            // Figure 6 cell = the "small-n" scenario with (M, N, dt) overridden.
            ExperimentConfig experiment = scenario_or_die("small-n").experiment;
            experiment.dt = dt;
            experiment.num_queues = static_cast<std::size_t>(m);
            experiment.num_clients = static_cast<std::uint64_t>(cli.get_int("n"));
            experiment.threads = threads;
            const TupleSpace space(experiment.queue.num_states(), experiment.d);
            const FiniteSystemConfig config = experiment.finite_system();

            char cell_label[64];
            std::snprintf(cell_label, sizeof(cell_label), "M=%lld dt=%.0f",
                          static_cast<long long>(m), dt);
            const bench::ScopedTimer timer(timings, cell_label);
            const EvaluationResult mf = evaluate_backend(
                backend, config, cache.policy_for(dt), sims, cli.get_int("seed"), threads);
            const EvaluationResult jsq = evaluate_backend(
                backend, config, make_jsq_policy(space), sims, cli.get_int("seed"), threads);
            const EvaluationResult rnd = evaluate_backend(
                backend, config, make_rnd_policy(space), sims, cli.get_int("seed"), threads);
            const double best =
                std::min({mf.total_drops.mean, jsq.total_drops.mean, rnd.total_drops.mean});
            const char* winner = best == mf.total_drops.mean     ? "MF"
                                 : best == jsq.total_drops.mean ? "JSQ(2)"
                                                                : "RND";
            table.row()
                .cell(static_cast<std::int64_t>(experiment.num_clients))
                .cell(m)
                .cell(dt, 1)
                .cell(bench::ci_cell(mf.total_drops))
                .cell(bench::ci_cell(jsq.total_drops))
                .cell(bench::ci_cell(rnd.total_drops))
                .cell(winner);
            std::fprintf(stderr, "[fig6] M=%lld dt=%.0f done\n", static_cast<long long>(m), dt);
        }
    }
    std::printf("%s", table.to_text().c_str());
    std::printf("\n(paper shape: ordering matches Figure 5 qualitatively even though\n"
                " N !>> M; RND is no longer flat in dt)\n");
    if (!cli.get("csv").empty()) {
        table.write_csv(cli.get("csv"));
    }
    timings.write(cli.get("json"));
    return 0;
}
