/// \file bench_common.hpp
/// Shared helpers for the figure-reproduction binaries: consistent CLI flags,
/// per-Δt learned-policy training (CEM on the exact MFC objective), and
/// uniform table output. Every bench accepts `--full` to switch from the
/// CI-sized default budget to the paper-scale configuration; EXPERIMENTS.md
/// records both.
#pragma once

#include "core/mflb.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <memory>
#include <string>
#include <vector>

namespace mflb::bench {

/// Machine-readable wall-clock timings: every bench that accepts `--json`
/// appends one record per timed unit of work and writes a JSON array, so the
/// perf trajectory can be tracked across PRs (bench_micro gets the same via
/// google-benchmark's native --benchmark_format=json).
class TimingLog {
public:
    explicit TimingLog(std::string bench_name) : bench_(std::move(bench_name)) {}

    void record(const std::string& label, double seconds) {
        entries_.push_back({label, seconds});
    }

    std::string to_json() const {
        std::string out = "[\n";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            char line[256];
            std::snprintf(line, sizeof(line),
                          "  {\"bench\": \"%s\", \"label\": \"%s\", \"seconds\": %.6f}%s\n",
                          bench_.c_str(), entries_[i].label.c_str(), entries_[i].seconds,
                          i + 1 < entries_.size() ? "," : "");
            out += line;
        }
        out += "]\n";
        return out;
    }

    /// Writes the JSON array to `path`; no-op on an empty path. Returns false
    /// (with a diagnostic) if the file cannot be written.
    bool write(const std::string& path) const {
        if (path.empty()) {
            return true;
        }
        std::FILE* file = std::fopen(path.c_str(), "w");
        if (file == nullptr) {
            std::fprintf(stderr, "[bench] cannot write timings to %s\n", path.c_str());
            return false;
        }
        const std::string json = to_json();
        std::fwrite(json.data(), 1, json.size(), file);
        std::fclose(file);
        return true;
    }

private:
    struct Entry {
        std::string label;
        double seconds = 0.0;
    };
    std::string bench_;
    std::vector<Entry> entries_;
};

/// Times one labeled unit of work into a TimingLog.
class ScopedTimer {
public:
    ScopedTimer(TimingLog& log, std::string label)
        : log_(log), label_(std::move(label)), start_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer() {
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        log_.record(label_, std::chrono::duration<double>(elapsed).count());
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    TimingLog& log_;
    std::string label_;
    std::chrono::steady_clock::time_point start_;
};

/// Registers the shared `--backend` flag: every finite-system bench can run
/// its cells on the epoch-synchronous, event-driven, or sharded simulator.
inline void register_backend_flag(CliParser& cli) {
    cli.flag("backend", "finite",
             "Finite-system simulator: 'finite' (epoch-synchronous Gillespie), "
             "'des' (event-driven), or 'sharded-des' (epoch-parallel event-driven)");
}

/// Resolves the registered --backend flag; exits 2 with a diagnostic on an
/// unknown value (consistent with the CLI misuse convention).
inline SimBackend backend_from(const CliParser& cli) {
    try {
        return parse_backend(cli.get("backend"));
    } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        std::exit(2);
    }
}

/// Registers the shared `--threads` flag: worker threads for Monte Carlo
/// replication fan-out (and the sharded backend's epoch-parallel phase).
/// 0 = all hardware threads. Never changes results, only wall clock.
inline void register_threads_flag(CliParser& cli) {
    cli.flag_int("threads", 0,
                 "Worker threads for replications / sharded epochs (0 = all cores)");
}

/// Resolves the registered --threads flag; exits 2 on a negative value.
inline std::size_t threads_from(const CliParser& cli) {
    const long long threads = cli.get_int("threads");
    if (threads < 0) {
        std::fprintf(stderr, "error: --threads must be >= 0\n");
        std::exit(2);
    }
    return static_cast<std::size_t>(threads);
}

/// Standard CEM budget used to obtain the "MF" learned policy per Δt at the
/// default bench scale. The optimized objective is the exact mean-field J.
inline rl::CemConfig default_cem(bool full) {
    rl::CemConfig cem;
    cem.population = full ? 64 : 32;
    cem.elites = full ? 10 : 6;
    cem.generations = full ? 60 : 22;
    cem.threads = 0; // conditioned-rollout objective is thread-safe: use all cores
    return cem;
}

/// Trains (and memoizes) one tabular MF policy per Δt.
class LearnedPolicyCache {
public:
    LearnedPolicyCache(bool full, std::uint64_t seed) : full_(full), seed_(seed) {}

    const TabularPolicy& policy_for(double dt) {
        auto it = cache_.find(dt);
        if (it != cache_.end()) {
            return *it->second;
        }
        ExperimentConfig experiment;
        experiment.dt = dt;
        const MfcConfig config = experiment.mfc(/*eval_horizon_instead=*/true);
        std::fprintf(stderr, "[bench] training MF policy for dt=%.1f (CEM, %s budget)...\n", dt,
                     full_ ? "full" : "default");
        // Warm start the search at the best Boltzmann rule for this delay —
        // a coarse but interpretable initialization that CEM then refines on
        // common-random-number conditioned rollouts.
        const TupleSpace space(config.queue.num_states(), config.d);
        const std::vector<double> beta_grid{0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
        const double beta = best_boltzmann_beta(config, beta_grid, 4, seed_);
        const std::vector<double> warm_start =
            boltzmann_initial_params(space, config.arrivals.num_states(), beta);
        std::fprintf(stderr, "[bench]   warm start: Boltzmann beta=%.2f\n", beta);
        CemTrainingResult trained = train_tabular_cem(
            config, default_cem(full_), full_ ? 4 : 2,
            seed_ + static_cast<std::uint64_t>(dt * 1000), RuleParameterization::Logits,
            /*common_random_numbers=*/true, &warm_start);
        auto stored = std::make_unique<TabularPolicy>(std::move(trained.policy));
        const TabularPolicy& ref = *stored;
        cache_.emplace(dt, std::move(stored));
        return ref;
    }

private:
    bool full_;
    std::uint64_t seed_;
    std::map<double, std::unique_ptr<TabularPolicy>> cache_;
};

/// Formats a confidence interval cell like the paper's "mean ± ci" plots.
inline std::string ci_cell(const ConfidenceInterval& ci, int precision = 3) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f +- %.*f", precision, ci.mean, precision,
                  ci.half_width);
    return buffer;
}

/// Prints a standard bench header naming the reproduced artifact.
inline void print_header(const std::string& artifact, const std::string& description,
                         bool full) {
    std::printf("=== %s ===\n%s\nbudget: %s (use --full for paper scale)\n\n", artifact.c_str(),
                description.c_str(), full ? "FULL (paper scale)" : "default (CI-sized)");
}

} // namespace mflb::bench
