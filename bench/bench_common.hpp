/// \file bench_common.hpp
/// Shared helpers for the figure-reproduction binaries: consistent CLI flags,
/// per-Δt learned-policy training (CEM on the exact MFC objective), and
/// uniform table output. Every bench accepts `--full` to switch from the
/// CI-sized default budget to the paper-scale configuration; EXPERIMENTS.md
/// records both.
#pragma once

#include "core/mflb.hpp"

#include <cstdio>
#include <map>
#include <memory>
#include <string>

namespace mflb::bench {

/// Standard CEM budget used to obtain the "MF" learned policy per Δt at the
/// default bench scale. The optimized objective is the exact mean-field J.
inline rl::CemConfig default_cem(bool full) {
    rl::CemConfig cem;
    cem.population = full ? 64 : 32;
    cem.elites = full ? 10 : 6;
    cem.generations = full ? 60 : 22;
    return cem;
}

/// Trains (and memoizes) one tabular MF policy per Δt.
class LearnedPolicyCache {
public:
    LearnedPolicyCache(bool full, std::uint64_t seed) : full_(full), seed_(seed) {}

    const TabularPolicy& policy_for(double dt) {
        auto it = cache_.find(dt);
        if (it != cache_.end()) {
            return *it->second;
        }
        ExperimentConfig experiment;
        experiment.dt = dt;
        const MfcConfig config = experiment.mfc(/*eval_horizon_instead=*/true);
        std::fprintf(stderr, "[bench] training MF policy for dt=%.1f (CEM, %s budget)...\n", dt,
                     full_ ? "full" : "default");
        // Warm start the search at the best Boltzmann rule for this delay —
        // a coarse but interpretable initialization that CEM then refines on
        // common-random-number conditioned rollouts.
        const TupleSpace space(config.queue.num_states(), config.d);
        const std::vector<double> beta_grid{0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
        const double beta = best_boltzmann_beta(config, beta_grid, 4, seed_);
        const std::vector<double> warm_start =
            boltzmann_initial_params(space, config.arrivals.num_states(), beta);
        std::fprintf(stderr, "[bench]   warm start: Boltzmann beta=%.2f\n", beta);
        CemTrainingResult trained = train_tabular_cem(
            config, default_cem(full_), full_ ? 4 : 2,
            seed_ + static_cast<std::uint64_t>(dt * 1000), RuleParameterization::Logits,
            /*common_random_numbers=*/true, &warm_start);
        auto stored = std::make_unique<TabularPolicy>(std::move(trained.policy));
        const TabularPolicy& ref = *stored;
        cache_.emplace(dt, std::move(stored));
        return ref;
    }

private:
    bool full_;
    std::uint64_t seed_;
    std::map<double, std::unique_ptr<TabularPolicy>> cache_;
};

/// Formats a confidence interval cell like the paper's "mean ± ci" plots.
inline std::string ci_cell(const ConfidenceInterval& ci, int precision = 3) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f +- %.*f", precision, ci.mean, precision,
                  ci.half_width);
    return buffer;
}

/// Prints a standard bench header naming the reproduced artifact.
inline void print_header(const std::string& artifact, const std::string& description,
                         bool full) {
    std::printf("=== %s ===\n%s\nbudget: %s (use --full for paper scale)\n\n", artifact.c_str(),
                description.c_str(), full ? "FULL (paper scale)" : "default (CI-sized)");
}

} // namespace mflb::bench
