/// bench_baselines — the learned mean-field policy against the classical
/// routing fleet (random, round-robin, JSQ, JSQ(d), SQ over a stale
/// snapshot), on the event-driven backend where per-job sojourn percentiles
/// and blocking fractions are observable. Three parts:
///
///  1. Fleet comparison at M = 10^2 .. 10^3 (10^4 with --full): every
///     classical router vs the learned-MFC stand-in (the best Boltzmann-beta
///     greedy-softmax rule on the exact mean-field objective) at the same
///     (dt, load). The headline: classical JSQ herds badly on a dt-stale
///     snapshot, while the learned rule spreads arrivals.
///  2. Staleness sweep: SQ(stale) as its refresh period grows from 0 (exact
///     JSQ) to many epochs, vs the MFC stand-in at fixed dt.
///  3. Heavy-tail sweep: bounded-Pareto service with tail index alpha,
///     comparing routers as variability explodes (alpha -> 1).
///
/// Every cell appends JSON rows (drops/queue, blocking, mean queue length,
/// sojourn p50/p95/p99) to --json for the CI benchmark artifact.
#include "bench_common.hpp"

#include <array>
#include <cmath>

namespace {

using namespace mflb;

/// Per-cell outcome: CI aggregates over the replications.
struct CellStats {
    ConfidenceInterval drops;    ///< total drops per queue (Fig. 4-6 metric)
    ConfidenceInterval blocking; ///< dropped / offered fraction
    ConfidenceInterval fill;     ///< time-averaged queue length
    ConfidenceInterval p50, p95, p99;
};

/// Runs `episodes` independent DES replications of `experiment` under
/// `policy` (the router in `experiment.router` bypasses the policy when it
/// is a classical kind — the policy argument is then inert).
CellStats run_cell(const ExperimentConfig& experiment, const UpperLevelPolicy& policy,
                   std::size_t episodes, std::uint64_t seed, std::size_t threads) {
    FiniteSystemConfig config = experiment.finite_system();
    config.track_sojourn = true;
    const auto rows = run_replications(
        episodes, seed, threads, [&](std::size_t, Rng& rng) -> std::array<double, 6> {
            DesSystem system(config);
            system.reset(rng);
            const DesEpisodeStats ep = system.run_episode(policy, rng);
            const double offered =
                static_cast<double>(ep.dropped_packets + ep.accepted_packets);
            const double blocking =
                offered > 0.0 ? static_cast<double>(ep.dropped_packets) / offered : 0.0;
            return {ep.total_drops_per_queue, blocking,       ep.mean_queue_length,
                    ep.sojourn_p50,           ep.sojourn_p95, ep.sojourn_p99};
        });
    auto ci_of = [&](std::size_t k) {
        RunningStat stat;
        for (const auto& row : rows) {
            stat.add(row[k]);
        }
        return confidence_interval_95(stat);
    };
    return {ci_of(0), ci_of(1), ci_of(2), ci_of(3), ci_of(4), ci_of(5)};
}

/// One comparison row: prints the table cells and appends the JSON rows.
void emit(bench::TimingLog& timings, Table& table, const std::string& cell_label,
          const std::string& json_prefix, const CellStats& s) {
    char percentiles[64];
    std::snprintf(percentiles, sizeof(percentiles), "%.2f / %.2f / %.2f", s.p50.mean,
                  s.p95.mean, s.p99.mean);
    table.row()
        .cell(cell_label)
        .cell(bench::ci_cell(s.drops))
        .cell(s.blocking.mean, 4)
        .cell(s.fill.mean, 3)
        .cell(std::string(percentiles));
    timings.record(json_prefix + "_drops", s.drops.mean);
    timings.record(json_prefix + "_blocking", s.blocking.mean);
    timings.record(json_prefix + "_mean_len", s.fill.mean);
    timings.record(json_prefix + "_sojourn_p50", s.p50.mean);
    timings.record(json_prefix + "_sojourn_p95", s.p95.mean);
    timings.record(json_prefix + "_sojourn_p99", s.p99.mean);
}

/// The classical fleet evaluated in every part; sq-stale uses the given
/// refresh period (time units).
std::vector<RouterSpec> classical_fleet(double stale_period) {
    RouterSpec random{RouterKind::Random, 2, 0.0};
    RouterSpec rr{RouterKind::RoundRobin, 2, 0.0};
    RouterSpec jsq{RouterKind::Jsq, 2, 0.0};
    RouterSpec jsqd{RouterKind::JsqD, 2, 0.0};
    RouterSpec sq_stale{RouterKind::SqStale, 2, stale_period};
    return {random, rr, jsq, jsqd, sq_stale};
}

std::string router_label(const RouterSpec& spec) {
    std::string label(router_name(spec.kind));
    if (spec.kind == RouterKind::SqStale) {
        char suffix[32];
        std::snprintf(suffix, sizeof(suffix), "(%.0f)", spec.stale_period);
        label += suffix;
    }
    return label;
}

} // namespace

int main(int argc, char** argv) {
    CliParser cli("bench_baselines: learned MFC vs the classical routing fleet "
                  "(staleness and heavy-tail sweeps)");
    cli.flag_bool("full", false, "Adds M=10^4 to the fleet sweep and triples episodes");
    cli.flag_double("dt", 2.0, "Synchronization delay (snapshot staleness)");
    cli.flag_int_list("m-list", "100,1000", "Queue counts for the fleet comparison");
    cli.flag_double("stale-period", 10.0, "sq-stale refresh period in parts 1 and 3");
    cli.flag_double_list("stale-periods", "0,2,6,10,20",
                         "Refresh periods for the staleness sweep (part 2)");
    cli.flag_double_list("pareto-alphas", "1.2,1.5,2,3",
                         "Tail indices for the heavy-tail sweep (part 3)");
    cli.flag_int("episodes", 5, "Replications per cell");
    bench::register_threads_flag(cli);
    cli.flag_int("seed", 1, "Seed");
    cli.flag("json", "", "Optional JSON metrics output path");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const double dt = cli.get_double("dt");
    const std::size_t episodes =
        static_cast<std::size_t>(cli.get_int("episodes")) * (full ? 3 : 1);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const std::size_t threads = bench::threads_from(cli);

    bench::print_header("Classical-baseline comparison",
                        "Learned MFC vs random / round-robin / JSQ / JSQ(d) / SQ(stale) "
                        "on the event-driven backend",
                        full);
    bench::TimingLog timings("baselines");
    char prefix[96];

    // The learned-MFC stand-in: the best Boltzmann-beta greedy-softmax rule
    // on the exact mean-field objective at this dt — the same warm start the
    // CEM/PPO trainers refine, cheap enough to fit the CI budget.
    ExperimentConfig base;
    base.dt = dt;
    base.backend = SimBackend::Des;
    const MfcConfig mfc = base.mfc(/*eval_horizon_instead=*/true);
    const TupleSpace space(mfc.queue.num_states(), mfc.d);
    const std::vector<double> beta_grid{0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
    const double beta = best_boltzmann_beta(mfc, beta_grid, 4, seed);
    const FixedRulePolicy mfc_policy = make_greedy_softmax_policy(space, beta);
    std::printf("MFC stand-in: greedy-softmax, best beta=%.2f at dt=%.1f\n\n", beta, dt);

    // --- 1. Fleet comparison across M -------------------------------------
    std::vector<std::int64_t> m_list = cli.get_int_list("m-list");
    if (full) {
        m_list.push_back(10000);
    }
    const double stale_period = cli.get_double("stale-period");
    for (const std::int64_t m : m_list) {
        ExperimentConfig experiment = base;
        experiment.num_queues = static_cast<std::size_t>(m);
        experiment.num_clients =
            static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(m);
        std::printf("fleet at M=%lld, N=M^2, dt=%.1f (%zu episodes):\n",
                    static_cast<long long>(m), dt, episodes);
        Table table({"router", "drops/queue (95% CI)", "blocking", "mean fill",
                     "sojourn p50/p95/p99"});
        std::snprintf(prefix, sizeof(prefix), "fleet_M=%lld_mfc", static_cast<long long>(m));
        emit(timings, table, "mfc (learned)", prefix,
             run_cell(experiment, mfc_policy, episodes, seed, threads));
        for (const RouterSpec& spec : classical_fleet(stale_period)) {
            experiment.router = spec;
            std::snprintf(prefix, sizeof(prefix), "fleet_M=%lld_%s",
                          static_cast<long long>(m),
                          std::string(router_name(spec.kind)).c_str());
            emit(timings, table, router_label(spec), prefix,
                 run_cell(experiment, mfc_policy, episodes, seed, threads));
        }
        std::printf("%s\n", table.to_text().c_str());
    }

    // --- 2. Staleness sweep: SQ(stale) vs MFC ------------------------------
    {
        ExperimentConfig experiment = base;
        std::printf("staleness sweep at M=%zu, dt=%.1f (sq-stale refresh period in time "
                    "units; 0 = exact JSQ):\n",
                    experiment.num_queues, dt);
        Table table({"router", "drops/queue (95% CI)", "blocking", "mean fill",
                     "sojourn p50/p95/p99"});
        emit(timings, table, "mfc (learned)", "stale_mfc",
             run_cell(experiment, mfc_policy, episodes, seed, threads));
        for (const double period : cli.get_double_list("stale-periods")) {
            experiment.router = RouterSpec{RouterKind::SqStale, 2, period};
            std::snprintf(prefix, sizeof(prefix), "stale_period=%g", period);
            emit(timings, table, router_label(experiment.router), prefix,
                 run_cell(experiment, mfc_policy, episodes, seed, threads));
        }
        std::printf("%s\n", table.to_text().c_str());
    }

    // --- 3. Heavy-tail sweep: bounded-Pareto service ------------------------
    {
        std::printf("heavy-tail sweep at M=%zu, dt=%.1f (bounded-Pareto service, cap "
                    "H/L=1000, mean fixed at 1/alpha):\n",
                    base.num_queues, dt);
        Table table({"cell", "drops/queue (95% CI)", "blocking", "mean fill",
                     "sojourn p50/p95/p99"});
        for (const double alpha : cli.get_double_list("pareto-alphas")) {
            ExperimentConfig experiment = base;
            experiment.service.kind = ServiceDistKind::BoundedPareto;
            experiment.service.pareto_alpha = alpha;
            char cell[64];
            std::snprintf(cell, sizeof(cell), "alpha=%.1f mfc", alpha);
            std::snprintf(prefix, sizeof(prefix), "pareto_alpha=%g_mfc", alpha);
            emit(timings, table, cell, prefix,
                 run_cell(experiment, mfc_policy, episodes, seed, threads));
            for (const RouterKind kind : {RouterKind::Jsq, RouterKind::Random}) {
                experiment.router = RouterSpec{kind, 2, 0.0};
                std::snprintf(cell, sizeof(cell), "alpha=%.1f %s", alpha,
                              std::string(router_name(kind)).c_str());
                std::snprintf(prefix, sizeof(prefix), "pareto_alpha=%g_%s", alpha,
                              std::string(router_name(kind)).c_str());
                emit(timings, table, cell, prefix,
                     run_cell(experiment, mfc_policy, episodes, seed, threads));
            }
        }
        std::printf("%s\n", table.to_text().c_str());
    }

    timings.write(cli.get("json"));
    if (!cli.get("json").empty()) {
        std::printf("metrics written to %s\n", cli.get("json").c_str());
    }
    return 0;
}
