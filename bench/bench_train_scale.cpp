/// Training-stack scaling benchmark: throughput and speedup of the batched
/// + multi-threaded PPO/CEM pipeline on the MFC MDP.
///
///   1. Update phase, single thread: the batched GEMM update vs the legacy
///      per-sample update on the identical collected batch (target >= 3x; the
///      two paths are bit-identical in results, verified here).
///   2. Rollout collection: K parallel env slots at 1/2/4/8 worker threads
///      vs the serial single-env baseline (fixed-order merge keeps results
///      (seed, K)-deterministic; scaling with cores lands on CI/real
///      hardware — the dev container is 1-core).
///   3. CEM population evaluation: parallel candidate evaluation vs serial.
///   4. Determinism: PPO training losses bit-identical at 1/2/8 threads for
///      fixed (seed, num_envs), and CEM scores thread-count-invariant —
///      the bench exits nonzero on any mismatch.
///
/// `--json` emits steps/sec and speedup rows (`update_*`, `rollout_*`,
/// `cem_*`) for the CI Release bench artifact.
#include "bench_common.hpp"
#include "support/trace.hpp"

#include <cmath>
#include <memory>
#include <thread>

namespace {

using namespace mflb;

rl::PpoTrainer::EnvFactory mfc_factory(const MfcConfig& config) {
    return [config]() -> std::unique_ptr<rl::Env> {
        return std::make_unique<MfcRlEnv>(config, RuleParameterization::Logits);
    };
}

rl::PpoConfig trainer_config(bool full, std::size_t num_envs, std::size_t train_threads,
                             bool batched) {
    rl::PpoConfig ppo; // Table 2 network (256x256) is the shape that matters
    ppo.train_batch_size = full ? 4000 : 1024;
    ppo.minibatch_size = 128;
    ppo.num_epochs = full ? 4 : 2;
    ppo.num_envs = num_envs;
    ppo.train_threads = train_threads;
    ppo.batched_update = batched;
    return ppo;
}

bool identical(const rl::PpoIterationStats& a, const rl::PpoIterationStats& b) {
    return a.timesteps_total == b.timesteps_total &&
           a.episodes_completed == b.episodes_completed &&
           a.mean_episode_return == b.mean_episode_return && a.mean_kl == b.mean_kl &&
           a.policy_loss == b.policy_loss && a.value_loss == b.value_loss &&
           a.entropy == b.entropy && a.kl_coeff == b.kl_coeff;
}

/// Batched-vs-scalar losses agree to 1e-12 (the only permitted divergence
/// is FMA contraction in the GEMM kernels on FMA hardware).
bool agrees(const rl::PpoIterationStats& a, const rl::PpoIterationStats& b) {
    const auto close = [](double x, double y) {
        return std::abs(x - y) <= 1e-12 * std::max(1.0, std::abs(y));
    };
    return a.timesteps_total == b.timesteps_total &&
           a.mean_episode_return == b.mean_episode_return && close(a.mean_kl, b.mean_kl) &&
           close(a.policy_loss, b.policy_loss) && close(a.value_loss, b.value_loss) &&
           close(a.entropy, b.entropy);
}

} // namespace

int main(int argc, char** argv) {
    CliParser cli("bench_train_scale: batched + multi-threaded training throughput");
    cli.flag_bool("full", false, "Paper-scale batch (4000) and larger budgets");
    cli.flag_int("seed", 1, "Seed");
    cli.flag("json", "", "Optional JSON timings output path");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    bench::print_header("Training scale",
                        "GEMM-batched PPO update, parallel rollout & CEM evaluation", full);
    bench::TimingLog timings("train_scale");
    int failures = 0;

    ExperimentConfig experiment;
    experiment.dt = 5.0;
    MfcConfig config = experiment.mfc();
    config.horizon = 30;

    // --- 1. Update phase: batched GEMM vs legacy per-sample, single thread -
    {
        rl::PpoTrainer batched(mfc_factory(config), trainer_config(full, 1, 1, true),
                               Rng(seed));
        rl::PpoTrainer scalar(mfc_factory(config), trainer_config(full, 1, 1, false),
                              Rng(seed));
        rl::PpoIterationStats batched_stats;
        rl::PpoIterationStats scalar_stats;
        batched.collect_phase(batched_stats);
        scalar.collect_phase(scalar_stats);

        // Best of two runs each: the second update re-times the identical
        // work from warm caches, which is the steady-state cost (the loss
        // comparison below uses the first, equivalent pass of each path).
        auto time_update = [](rl::PpoTrainer& trainer, rl::PpoIterationStats& stats) {
            double best = 1e300;
            for (int rep = 0; rep < 2; ++rep) {
                rl::PpoIterationStats repeat = stats;
                const trace::Stopwatch watch;
                trainer.optimize_phase(rep == 0 ? stats : repeat);
                best = std::min(best, watch.seconds());
            }
            return best;
        };
        const double batched_seconds = time_update(batched, batched_stats);
        const double scalar_seconds = time_update(scalar, scalar_stats);

        const double speedup = scalar_seconds / batched_seconds;
        const auto samples = static_cast<double>(batched_stats.timesteps_total) *
                             static_cast<double>(trainer_config(full, 1, 1, true).num_epochs);
        timings.record("update_scalar_seconds", scalar_seconds);
        timings.record("update_batched_seconds", batched_seconds);
        timings.record("update_speedup_x", speedup);
        timings.record("update_batched_steps_per_sec", samples / batched_seconds);
        std::printf("PPO update phase (Table-2 net 256x256, batch %zu, minibatch 128):\n"
                    "  per-sample: %.3f s   batched GEMM: %.3f s   ->  %.2fx speedup\n",
                    trainer_config(full, 1, 1, true).train_batch_size, scalar_seconds,
                    batched_seconds, speedup);
        if (speedup < 3.0) {
            std::printf("  WARNING: below the 3x target on this host\n");
        }
        if (!agrees(batched_stats, scalar_stats)) {
            std::printf("  FAIL: batched and per-sample updates disagree beyond 1e-12\n");
            ++failures;
        } else {
            std::printf("  batched == per-sample: losses agree to 1e-12\n");
        }
    }

    // --- 2. Rollout collection: K env slots, thread sweep ------------------
    {
        rl::PpoIterationStats stats;
        rl::PpoTrainer serial(mfc_factory(config), trainer_config(full, 1, 1, true), Rng(seed));
        const trace::Stopwatch serial_watch;
        serial.collect_phase(stats);
        const double serial_seconds = serial_watch.seconds();
        timings.record("rollout_collect_serial_seconds", serial_seconds);
        timings.record("rollout_collect_serial_steps_per_sec",
                       static_cast<double>(stats.timesteps_total) / serial_seconds);

        const std::size_t num_envs = 8;
        Table table({"threads", "collect (s)", "steps/s", "speedup vs serial"});
        for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                          std::size_t{8}}) {
            rl::PpoTrainer trainer(mfc_factory(config),
                                   trainer_config(full, num_envs, threads, true), Rng(seed));
            rl::PpoIterationStats collect_stats;
            const trace::Stopwatch watch;
            trainer.collect_phase(collect_stats);
            const double seconds = watch.seconds();
            const double steps_per_sec =
                static_cast<double>(collect_stats.timesteps_total) / seconds;
            char label[64];
            std::snprintf(label, sizeof(label), "rollout_collect_K=%zu_T=%zu_seconds",
                          num_envs, threads);
            timings.record(label, seconds);
            std::snprintf(label, sizeof(label), "rollout_speedup_K=%zu_T=%zu", num_envs,
                          threads);
            timings.record(label, serial_seconds / seconds);
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.2fx", serial_seconds / seconds);
            table.row()
                .cell(static_cast<std::int64_t>(threads))
                .cell(seconds, 3)
                .cell(steps_per_sec, 0)
                .cell(std::string(cell));
        }
        std::printf("\nrollout collection, K=%zu envs (serial 1-env baseline: %.3f s):\n%s",
                    num_envs, serial_seconds, table.to_text().c_str());
        std::printf("(hardware: %u threads available; rollout scaling with cores lands on "
                    "CI/real hardware)\n",
                    std::thread::hardware_concurrency());
    }

    // --- 3. CEM population evaluation: serial vs parallel ------------------
    {
        const TupleSpace space(config.queue.num_states(), config.d);
        rl::CemConfig cem;
        cem.population = full ? 32 : 16;
        cem.elites = 4;
        cem.generations = full ? 6 : 3;

        auto run_cem = [&](std::size_t threads) {
            rl::CemConfig threaded = cem;
            threaded.threads = threads;
            const trace::Stopwatch watch;
            const CemTrainingResult result =
                train_tabular_cem(config, threaded, 2, seed + 17);
            return std::make_pair(watch.seconds(), result.best_return);
        };
        const auto [serial_seconds, serial_best] = run_cem(1);
        const auto [parallel_seconds, parallel_best] = run_cem(0);
        timings.record("cem_eval_serial_seconds", serial_seconds);
        timings.record("cem_eval_parallel_seconds", parallel_seconds);
        timings.record("cem_eval_speedup_x", serial_seconds / parallel_seconds);
        std::printf("\nCEM population evaluation (pop %zu, %zu generations):\n"
                    "  serial: %.3f s   parallel (all cores): %.3f s   ->  %.2fx\n",
                    cem.population, cem.generations, serial_seconds, parallel_seconds,
                    serial_seconds / parallel_seconds);
        if (serial_best != parallel_best) {
            std::printf("  FAIL: CEM result depends on thread count\n");
            ++failures;
        }
    }

    // --- 4. Determinism: bit-identical losses at 1/2/8 threads -------------
    {
        auto run = [&](std::size_t threads) {
            rl::PpoTrainer trainer(mfc_factory(config), trainer_config(false, 4, threads, true),
                                   Rng(seed));
            trainer.train_iteration();
            return trainer.train_iteration();
        };
        const rl::PpoIterationStats t1 = run(1);
        const rl::PpoIterationStats t2 = run(2);
        const rl::PpoIterationStats t8 = run(8);
        if (!identical(t1, t2) || !identical(t1, t8)) {
            std::printf("\nFAIL: PPO training losses differ across thread counts\n");
            ++failures;
        } else {
            std::printf("\nPPO training losses bit-identical at 1/2/8 threads for fixed "
                        "(seed, num_envs=4): return=%.6f policy_loss=%.6f value_loss=%.6f\n",
                        t1.mean_episode_return, t1.policy_loss, t1.value_loss);
        }
    }

    timings.write(cli.get("json"));
    if (!cli.get("json").empty()) {
        std::printf("\ntimings written to %s\n", cli.get("json").c_str());
    }
    return failures == 0 ? 0 : 1;
}
