/// Reproduces Table 1 of the paper: the system parameters used in all
/// experiments, as resolved by the "table1" entry of the scenario registry.
/// Also validates the derived quantities (evaluation horizon per Δt,
/// stationary offered load) and lists every registered scenario.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_table1_config: reproduce Table 1 (system parameters)");
    cli.flag_bool("full", false, "No effect here; accepted for harness uniformity");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }

    const ExperimentConfig config = scenario_or_die("table1").experiment;
    bench::print_header("Table 1", "System parameters used in the experiments",
                        cli.get_bool("full"));
    std::printf("%s\n", config.to_table().to_text().c_str());

    // Derived quantities the other benches rely on.
    Table derived({"dt", "T_e = round(500/dt)", "offered load E[lambda]/alpha"});
    const double mean_rate = config.arrivals().mean_rate();
    for (const double dt : {1.0, 2.0, 3.0, 5.0, 7.0, 10.0}) {
        ExperimentConfig c = config;
        c.dt = dt;
        derived.row()
            .cell(dt, 1)
            .cell(static_cast<std::int64_t>(c.eval_horizon()))
            .cell(mean_rate / config.queue.service_rate, 4);
    }
    std::printf("%s", derived.to_text().c_str());
    std::printf("\nStationary arrival-rate distribution: pi_high = %.4f, pi_low = %.4f\n",
                config.arrivals().stationary()[0], config.arrivals().stationary()[1]);
    std::printf("\nRegistered scenarios (resolvable by name everywhere):\n%s",
                scenario_list_text().c_str());
    return 0;
}
