/// Ablation: how the optimal load-balancing policy is obtained. The paper
/// argues RL is needed because the MFC MDP has continuous states/actions;
/// Proposition 1 nevertheless guarantees a stationary deterministic optimum.
/// This bench compares, on the exact mean-field objective:
///   - the discretized dynamic-programming solution (value iteration on a
///     simplex lattice, Boltzmann action set),
///   - CEM over full tabular decision rules,
///   - the best single Boltzmann rule (1 parameter),
///   - the JSQ(2) / RND endpoints.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_ablation_solver: DP vs CEM vs Boltzmann vs fixed baselines");
    cli.flag_bool("full", false, "Finer DP grid and larger CEM budget");
    cli.flag_double_list("dts", "1,5,10", "Delays to compare");
    cli.flag_int("seed", 8, "Seed");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const std::size_t episodes = full ? 100 : 30;

    bench::print_header("Ablation: solver",
                        "Mean-field drops by solution method (lower is better)", full);

    Table table({"dt", "DP (grid)", "CEM (tabular)", "best Boltzmann", "JSQ(2)", "RND"});
    for (const double dt : cli.get_double_list("dts")) {
        ExperimentConfig experiment;
        experiment.dt = dt;
        const MfcConfig config = experiment.mfc(/*eval_horizon_instead=*/true);
        const TupleSpace space(config.queue.num_states(), config.d);

        DpConfig dp;
        dp.resolution = full ? 10 : 6;
        const auto [dp_policy, dp_stats] = solve_mfc_dp(config, dp);
        std::fprintf(stderr, "[solver] dt=%.0f DP solved: %zu states, %zu sweeps\n", dt,
                     dp_stats.states, dp_stats.sweeps);

        const std::vector<double> beta_grid{0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 1e6};
        const double beta = best_boltzmann_beta(config, beta_grid, 6, cli.get_int("seed"));
        const FixedRulePolicy boltzmann = make_greedy_softmax_policy(space, std::min(beta, 1e6));

        const std::vector<double> warm =
            boltzmann_initial_params(space, config.arrivals.num_states(), beta);
        const CemTrainingResult cem = train_tabular_cem(
            config, bench::default_cem(full), full ? 4 : 2, cli.get_int("seed"),
            RuleParameterization::Logits, true, &warm);

        const std::uint64_t seed = cli.get_int("seed");
        const EvaluationResult dp_eval = evaluate_mfc(config, dp_policy, episodes, seed);
        const EvaluationResult cem_eval = evaluate_mfc(config, cem.policy, episodes, seed);
        const EvaluationResult bz_eval = evaluate_mfc(config, boltzmann, episodes, seed);
        const EvaluationResult jsq_eval =
            evaluate_mfc(config, make_jsq_policy(space), episodes, seed);
        const EvaluationResult rnd_eval =
            evaluate_mfc(config, make_rnd_policy(space), episodes, seed);

        table.row()
            .cell(dt, 1)
            .cell(bench::ci_cell(dp_eval.total_drops))
            .cell(bench::ci_cell(cem_eval.total_drops))
            .cell(bench::ci_cell(bz_eval.total_drops))
            .cell(jsq_eval.total_drops.mean, 3)
            .cell(rnd_eval.total_drops.mean, 3);
    }
    std::printf("%s", table.to_text().c_str());
    std::printf("\n(expected: every learned/planned column beats the losing endpoint at\n"
                " each dt; DP and CEM agree closely despite entirely different machinery,\n"
                " cross-validating the mean-field model; the 1-parameter Boltzmann rule\n"
                " is nearly optimal, explaining why the learned policies look like\n"
                " 'tempered JSQ')\n");
    return 0;
}
