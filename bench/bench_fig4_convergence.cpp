/// Reproduces Figure 4: expected packet drops of the learned MF policy on
/// finite systems (MF-NM) over the number of queues M with N = M^2, for
/// Δt ∈ {1, 3, 5, 7, 10}, against the mean-field MDP value (MF-MFC, the red
/// dotted line). As M grows the finite performance approaches the limit,
/// validating the mean-field formulation.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_fig4_convergence: reproduce Figure 4 (MF-NM -> MF-MFC as M grows)");
    cli.flag_bool("full", false, "Paper-scale grid (M up to 1000, n=100 sims)");
    cli.flag_double_list("dts", "1,3,5,7,10", "Delays to sweep");
    cli.flag_int_list("ms", "", "Queue counts (default depends on --full)");
    cli.flag_int("sims", 0, "Monte Carlo replications per cell (0 = budget default)");
    cli.flag_int("seed", 2, "Evaluation seed");
    bench::register_backend_flag(cli);
    bench::register_threads_flag(cli);
    cli.flag("csv", "", "Optional CSV output path");
    cli.flag("json", "", "Optional JSON timings output path");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const SimBackend backend = bench::backend_from(cli);
    const std::size_t threads = bench::threads_from(cli);
    const auto dts = cli.get_double_list("dts");
    std::vector<std::int64_t> ms = cli.get_int_list("ms");
    if (ms.empty()) {
        ms = full ? std::vector<std::int64_t>{100, 200, 400, 600, 800, 1000}
                  : std::vector<std::int64_t>{50, 100, 200, 400};
    }
    std::size_t sims = static_cast<std::size_t>(cli.get_int("sims"));
    if (sims == 0) {
        sims = full ? 100 : 10;
    }

    bench::print_header(
        "Figure 4",
        "Average packet drops of the MF policy over M (N = M^2) vs the MFC limit value", full);

    bench::LearnedPolicyCache cache(full, 777);
    bench::TimingLog timings("fig4_convergence");
    Table table({"dt", "M", "N", "MF-NM drops (finite)", "MF-MFC drops (limit)", "gap"});
    for (const double dt : dts) {
        const TabularPolicy& policy = cache.policy_for(dt);

        ExperimentConfig experiment = scenario_or_die("table1").experiment;
        experiment.dt = dt;
        experiment.threads = threads;
        const EvaluationResult limit =
            evaluate_mfc(experiment.mfc(/*eval_horizon_instead=*/true), policy,
                         full ? 100 : 30, cli.get_int("seed"), threads);

        for (const std::int64_t m : ms) {
            experiment.num_queues = static_cast<std::size_t>(m);
            experiment.num_clients = static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(m);
            char cell_label[64];
            std::snprintf(cell_label, sizeof(cell_label), "dt=%.0f M=%lld", dt,
                          static_cast<long long>(m));
            const bench::ScopedTimer timer(timings, cell_label);
            const EvaluationResult finite =
                evaluate_backend(backend, experiment.finite_system(), policy, sims,
                                 cli.get_int("seed"), threads);
            table.row()
                .cell(dt, 1)
                .cell(m)
                .cell(static_cast<std::int64_t>(experiment.num_clients))
                .cell(bench::ci_cell(finite.total_drops))
                .cell(limit.total_drops.mean, 3)
                .cell(finite.total_drops.mean - limit.total_drops.mean, 3);
            std::fprintf(stderr, "[fig4] dt=%.0f M=%lld done\n", dt,
                         static_cast<long long>(m));
        }
    }
    std::printf("%s", table.to_text().c_str());
    std::printf("\n(paper shape: |MF-NM - MF-MFC| shrinks as M grows, for every dt)\n");
    if (!cli.get("csv").empty()) {
        table.write_csv(cli.get("csv"));
    }
    timings.write(cli.get("json"));
    return 0;
}
