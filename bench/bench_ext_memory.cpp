/// Extension bench: power-of-d with client memory ([3] in the paper) under
/// synchronized delays. In the asynchronous fluid regime memory provably
/// helps; under the paper's synchronized stale snapshots it concentrates
/// load on remembered queues. This bench sweeps Δt and reports drops and the
/// memory-hit rate (how often the remembered queue wins the comparison).
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace mflb;
    CliParser cli("bench_ext_memory: JSQ(d)+memory vs JSQ(d) vs RND under delays");
    cli.flag_bool("full", false, "More replications");
    cli.flag_int("m", 100, "Number of queues");
    cli.flag_double_list("dts", "1,3,5,10", "Delays to sweep");
    cli.flag_int("seed", 9, "Seed");
    if (!cli.parse(argc, argv)) {
        return cli.exit_code();
    }
    const bool full = cli.get_bool("full");
    const int sims = full ? 50 : 12;

    bench::print_header("Extension: client memory",
                        "JSQ(2)+memory vs JSQ(2) vs RND; memory reuses the last-used queue",
                        full);

    Table table({"dt", "JSQ(2)+mem", "JSQ(2)", "RND", "memory hit rate"});
    for (const double dt : cli.get_double_list("dts")) {
        // Registry's "memory" scenario with (M, dt) overridden per cell.
        MemorySystemConfig config = *scenario_or_die("memory").memory;
        config.num_queues = static_cast<std::size_t>(cli.get_int("m"));
        config.num_clients = config.num_queues * config.num_queues;
        config.dt = dt;
        config.horizon = MfcConfig::horizon_for_total_time(300.0, dt);

        RunningStat memory_drops, jsq_drops, rnd_drops, hits;
        for (int rep = 0; rep < sims; ++rep) {
            const std::uint64_t seed = cli.get_int("seed") * 1000 + rep;
            {
                MemorySystem system(config);
                Rng rng(seed);
                system.reset(rng);
                const auto stats = system.run_episode(MemoryDiscipline::JsqDMemory, rng);
                memory_drops.add(stats.total_drops_per_queue);
                hits.add(stats.memory_hit_rate);
            }
            {
                MemorySystem system(config);
                Rng rng(seed);
                system.reset(rng);
                jsq_drops.add(
                    system.run_episode(MemoryDiscipline::JsqD, rng).total_drops_per_queue);
            }
            {
                MemorySystem system(config);
                Rng rng(seed);
                system.reset(rng);
                rnd_drops.add(
                    system.run_episode(MemoryDiscipline::Random, rng).total_drops_per_queue);
            }
        }
        table.row()
            .cell(dt, 1)
            .cell(bench::ci_cell(confidence_interval_95(memory_drops)))
            .cell(bench::ci_cell(confidence_interval_95(jsq_drops)))
            .cell(bench::ci_cell(confidence_interval_95(rnd_drops)))
            .cell(hits.mean(), 3);
        std::fprintf(stderr, "[memory] dt=%.0f done\n", dt);
    }
    std::printf("%s", table.to_text().c_str());
    std::printf("\n(finding: under synchronized stale snapshots, memory does NOT help —\n"
                " returning clients re-concentrate on queues that looked short at the\n"
                " broadcast, amplifying the herding the learned MF policy avoids)\n");
    return 0;
}
