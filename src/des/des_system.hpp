/// \file des_system.hpp
/// Event-driven simulator of the Section 2.1 finite system — the same model
/// as `FiniteSystem` (N clients routing on stale d-samples every Δt, M
/// finite-buffer M/M/1/B queues, MMPP-modulated arrivals, drops at full
/// buffers), but simulated as a discrete-event system on a future event
/// list instead of per-queue Gillespie epochs.
///
/// Why a second backend: the epoch-synchronous simulator pays O(M) *RNG and
/// kernel work* per decision epoch even when most queues are idle, because
/// every queue runs its own exponential-clock loop each Δt. The DES pays
/// O(log M) per *event* (arrival / departure), so simulation cost is
/// proportional to the actual traffic — which is what makes fleets of 10⁵⁺
/// mostly-idle queues (10⁶ clients spread over many servers) tractable —
/// and, because every job is an individual event, it reports exact per-job
/// sojourn times and their streaming p50/p95/p99 for free.
///
/// Event structure (slot ids in the `EventQueue`):
///  - slots 0..M-1 — *departure* of the job in service at queue j. Scheduled
///    when a queue becomes busy; service is exponential(α) and FIFO.
///  - slot M — the *aggregated arrival stream*. The superposition of all
///    per-queue Poisson arrival streams of eq. (5) is a single Poisson
///    process of rate M·λ_t whose points are thinned onto queues:
///      · Aggregated / PerClient: destination ∝ the epoch's client counts
///        C_j (C ~ Multinomial(N, p) exactly as in `FiniteSystem`, or
///        per-client sampling), via binary search on the count prefix sums;
///      · InfiniteClients: each job samples d queues uniformly, reads their
///        *snapshot* states and applies the decision rule — the exact
///        event-level realization of the deterministic mean-field rates
///        λ_t(H^M, z) of Section 2.2 (Poisson thinning of eq. (18)-(19)).
///    At every decision epoch the stream is *rescheduled* (FEL cancellation
///    path): the modulated rate and the routing change, and memorylessness
///    makes redrawing the next arrival exact.
///
/// The per-epoch decision structure (policy queried on the stale snapshot,
/// λ-chain advanced once per epoch, conditioned replay for the Theorem 1
/// coupling) is inherited from `SystemBase`, so `DesSystem` is statistically
/// equivalent to `FiniteSystem` — pinned by tests/test_des_system.cpp.
///
/// Hot-path invariants: after construction/reset the event loop performs
/// zero heap allocations (all buffers are sized up front; the stale snapshot
/// is maintained by epoch-stamped copy-on-write instead of an O(M) copy per
/// epoch), verified by tests/test_hotpath_alloc.cpp. Instances are not
/// thread-safe; the Monte Carlo harness gives each replication its own.
#pragma once

#include "des/fel.hpp"
#include "queueing/finite_system.hpp"
#include "queueing/sojourn.hpp"
#include "queueing/system_base.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"

#include <cstdint>
#include <vector>

namespace mflb {

/// Episode summary of the event-driven simulator: the shared episode stats
/// plus the streaming sojourn-time percentiles only a per-job simulation can
/// report (0 unless `track_sojourn` is set and jobs completed).
struct DesEpisodeStats : EpisodeStats {
    double sojourn_p50 = 0.0;
    double sojourn_p95 = 0.0;
    double sojourn_p99 = 0.0;
};

/// Discrete-event backend for the finite system; accepts the exact same
/// configuration as `FiniteSystem` (all three client models are supported).
class DesSystem : public SystemBase {
public:
    explicit DesSystem(FiniteSystemConfig config);

    const FiniteSystemConfig& config() const noexcept { return config_; }
    const TupleSpace& tuple_space() const noexcept { return space_; }
    const FutureEventList& event_queue() const noexcept { return fel_; }

    /// Draws initial queue states i.i.d. from ν_0 and samples λ_0 (same RNG
    /// draw order as `FiniteSystem::reset`), then seeds the FEL with the
    /// departure events of initially busy queues.
    void reset(Rng& rng);
    /// Like reset but with a fixed λ-state sequence (Theorem 1 conditioning).
    void reset_conditioned(std::vector<std::size_t> lambda_states, Rng& rng);

    /// Empirical distribution H_t^M over Z, eq. (2) — maintained
    /// incrementally (O(1) per event), so this is O(|Z|) not O(M).
    std::vector<double> empirical_distribution() const;
    /// Exact H_t^M, or a `histogram_sample_size`-queue estimate (§2.1).
    std::vector<double> observed_distribution(Rng& rng) const;

    /// One decision epoch [t·Δt, (t+1)·Δt): rebuilds the epoch's routing
    /// from the frozen snapshot, reschedules the arrival stream, then
    /// processes arrival/departure events in time order. Allocation-free in
    /// steady state.
    EpochStats step_with_rule(const DecisionRule& h, Rng& rng);
    /// One decision epoch under the configured classical router: the weight
    /// law from the epoch-start snapshot feeds the arrival-thinning prefix
    /// sums (round-robin: a cyclic per-arrival cursor instead); requires
    /// `config().router.kind != RouterKind::Policy`.
    EpochStats step_router(Rng& rng);
    /// Queries the policy on (observed H_t^M, λ_t) first. With a classical
    /// router configured the policy is ignored (forwards to step_router).
    EpochStats step(const UpperLevelPolicy& policy, Rng& rng);

    /// Full episode from reset state, with sojourn percentiles attached.
    DesEpisodeStats run_episode(const UpperLevelPolicy& policy, Rng& rng);
    /// Router-only episode (requires a classical router configured).
    DesEpisodeStats run_episode(Rng& rng);

    /// Streaming sojourn percentile estimates so far (track_sojourn only).
    double sojourn_p50() const noexcept { return sojourn_.p50(); }
    double sojourn_p95() const noexcept { return sojourn_.p95(); }
    double sojourn_p99() const noexcept { return sojourn_.p99(); }

protected:
    /// Registers the FEL operation counters (fel_schedules / fel_pops /
    /// fel_bucket_scans) with the session's metrics registry.
    void on_telemetry_attached() override;
    /// Queue-length histogram summary from the incremental state counts plus
    /// the streaming sojourn percentiles (track_sojourn only).
    void append_epoch_telemetry(MetricsRow& row) override;

private:
    static constexpr int kNoEpoch = -1;

    /// Queue j's state at the start of the current epoch — the stale value
    /// clients observe. Copy-on-write: `saved_[j]` is valid iff queue j
    /// already changed during epoch `stamp_[j] == time()`.
    int snapshot_state(std::size_t j) const noexcept {
        return stamp_[j] == t_ ? saved_[j] : queues_[j];
    }
    /// Records queue j's pre-modification state on its first change this
    /// epoch; call before every queues_[j] update.
    void save_snapshot(std::size_t j) noexcept {
        if (stamp_[j] != t_) {
            stamp_[j] = t_;
            saved_[j] = queues_[j];
        }
    }

    /// Rebuilds the epoch's routing (client counts / nothing for
    /// InfiniteClients) and reschedules the arrival-stream event.
    void begin_epoch(const DecisionRule& h, Rng& rng);
    /// Router variant: weight law → thinning prefix sums (see step_router).
    void begin_epoch_router(Rng& rng);
    /// The event loop shared by the policy and router paths; `h` is null on
    /// the router path (only InfiniteClients per-job sampling reads it).
    EpochStats run_events(const DecisionRule* h, Rng& rng);
    /// Destination queue of one arriving job under the epoch's routing.
    std::size_t sample_destination(const DecisionRule* h, Rng& rng);
    /// One service time at queue j: `ServiceDistribution` sample divided by
    /// the queue's speed (1 when homogeneous). Exponential + homogeneous is
    /// exactly the legacy `rng.exponential(α)` draw — goldens stay bit-exact.
    double service_time(std::size_t j, Rng& rng) const noexcept {
        const double s = service_.sample(rng);
        return config_.server_speeds.empty() ? s : s / config_.server_speeds[j];
    }
    /// Advances the piecewise-constant area integrals to absolute time `t`.
    void advance_areas_to(double t) noexcept;

    void handle_arrival(const DecisionRule* h, double t, Rng& rng, EpochStats& stats);
    void handle_departure(std::size_t j, double t, Rng& rng, EpochStats& stats);

    FiniteSystemConfig config_;
    TupleSpace space_;
    EpochRouter router_;
    ServiceDistribution service_;
    FutureEventList fel_;      ///< heap or calendar per config_.fel.
    std::size_t arrival_slot_; ///< = num_queues; slots below are departures.

    // Incremental system state (O(1) per event).
    std::vector<int> state_counts_; ///< M · H_t^M: queue count per state.
    std::int64_t total_jobs_ = 0;   ///< Σ_j z_j.
    std::size_t busy_queues_ = 0;   ///< #{j : z_j > 0}.

    // Stale-snapshot copy-on-write (see snapshot_state).
    std::vector<int> saved_;
    std::vector<int> stamp_;

    // Epoch-scoped routing workspace, sized at construction.
    std::vector<double> hist_;          ///< H over Z at epoch start.
    std::vector<double> g_;             ///< routing table g[k·|Z| + z].
    std::vector<int> tuple_;            ///< decode buffer (d).
    std::vector<double> suffix_;        ///< suffix products (d + 1).
    std::vector<double> dest_p_;        ///< per-queue destination law (M).
    std::vector<std::uint64_t> counts_; ///< per-queue client counts (M).
    std::vector<double> cum_;           ///< count prefix sums (M).
    std::vector<double> weights_;       ///< router weight law (M, router mode).
    std::vector<int> sampled_;          ///< per-job sampled queues (d).
    std::vector<int> states_;           ///< their snapshot states (d).
    double total_weight_ = 0.0;         ///< prefix-sum total (= N).
    double arrival_rate_ = 0.0;         ///< aggregated rate M·λ_t.
    std::size_t rr_next_ = 0;           ///< round-robin arrival cursor.

    // Time accounting.
    double cursor_ = 0.0;     ///< last area-integration time point.
    double job_area_ = 0.0;   ///< ∫ Σ_j z_j dτ within the epoch.
    double busy_area_ = 0.0;  ///< ∫ #busy dτ within the epoch.

    // Per-job sojourn tracking (track_sojourn only).
    std::vector<JobTimestamps> jobs_;
    SojournRecorder sojourn_;

    // FEL telemetry: per-epoch deltas of the facade's lifetime counters,
    // published into the registry's serial lane at each epoch end.
    MetricsRegistry* fel_registry_ = nullptr;
    MetricsRegistry::Id fel_schedules_id_ = 0;
    MetricsRegistry::Id fel_pops_id_ = 0;
    MetricsRegistry::Id fel_scans_id_ = 0;
    FutureEventList::Stats fel_published_{};
};

} // namespace mflb
