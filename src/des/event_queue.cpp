#include "des/event_queue.hpp"

#include <stdexcept>

namespace mflb {

EventQueue::EventQueue(std::size_t capacity) : heap_(capacity), pos_(capacity, kAbsent) {
    if (capacity == 0) {
        throw std::invalid_argument("EventQueue: capacity must be positive");
    }
}

double EventQueue::time_of(std::size_t id) const {
    if (!contains(id)) {
        throw std::logic_error("EventQueue::time_of: slot has no pending event");
    }
    return heap_[pos_[id]].time;
}

void EventQueue::schedule(std::size_t id, double time) {
    if (id >= pos_.size()) {
        throw std::invalid_argument("EventQueue::schedule: id out of range");
    }
    const std::size_t i = pos_[id];
    if (i != kAbsent) {
        // Reschedule in place: move the entry, then restore the heap order
        // in whichever direction the new key requires.
        heap_[i].time = time;
        sift_up(i);
        sift_down(pos_[id]);
        return;
    }
    heap_[size_] = {time, id};
    pos_[id] = size_;
    sift_up(size_);
    ++size_;
}

bool EventQueue::cancel(std::size_t id) noexcept {
    if (!contains(id)) {
        return false;
    }
    remove_at(pos_[id]);
    return true;
}

void EventQueue::pop_and_reschedule(std::size_t id, double time) {
    if (!contains(id)) {
        throw std::logic_error(
            "EventQueue::pop_and_reschedule: slot has no pending event");
    }
    const std::size_t i = pos_[id];
    heap_[i].time = time;
    sift_up(i); // no-op at the root (the intended call site).
    sift_down(pos_[id]);
}

EventQueue::Event EventQueue::peek() const {
    if (empty()) {
        throw std::logic_error("EventQueue::peek: queue is empty");
    }
    return heap_[0];
}

EventQueue::Event EventQueue::pop() {
    if (empty()) {
        throw std::logic_error("EventQueue::pop: queue is empty");
    }
    const Event top = heap_[0];
    remove_at(0);
    return top;
}

void EventQueue::clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
        pos_[heap_[i].id] = kAbsent;
    }
    size_ = 0;
}

void EventQueue::sift_up(std::size_t i) noexcept {
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!before(heap_[i], heap_[parent])) {
            break;
        }
        std::swap(heap_[i], heap_[parent]);
        pos_[heap_[i].id] = i;
        pos_[heap_[parent].id] = parent;
        i = parent;
    }
}

void EventQueue::sift_down(std::size_t i) noexcept {
    while (true) {
        const std::size_t left = 2 * i + 1;
        if (left >= size_) {
            return;
        }
        std::size_t smallest = left;
        const std::size_t right = left + 1;
        if (right < size_ && before(heap_[right], heap_[left])) {
            smallest = right;
        }
        if (!before(heap_[smallest], heap_[i])) {
            return;
        }
        std::swap(heap_[i], heap_[smallest]);
        pos_[heap_[i].id] = i;
        pos_[heap_[smallest].id] = smallest;
        i = smallest;
    }
}

void EventQueue::remove_at(std::size_t i) noexcept {
    pos_[heap_[i].id] = kAbsent;
    --size_;
    if (i == size_) {
        return; // removed the last entry; nothing to re-order.
    }
    heap_[i] = heap_[size_];
    pos_[heap_[i].id] = i;
    sift_up(i);
    sift_down(pos_[heap_[i].id]);
}

} // namespace mflb
