#include "des/calendar_queue.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mflb {

namespace {

std::size_t next_pow2(std::size_t x) noexcept {
    std::size_t p = 1;
    while (p < x) {
        p <<= 1;
    }
    return p;
}

} // namespace

CalendarQueue::CalendarQueue(std::size_t capacity, double rate_hint)
    : nodes_(capacity) {
    if (capacity == 0) {
        throw std::invalid_argument("CalendarQueue: capacity must be positive");
    }
    if (capacity >= static_cast<std::size_t>(kFree)) {
        throw std::invalid_argument("CalendarQueue: capacity exceeds the 32-bit slot range");
    }
    // Day array: start small and grow at retune() against the high-water
    // mark, toward ~0.5 occupancy at the 2·capacity ceiling (the pending
    // set holds at most one event per slot). Floor of 64 buckets so the
    // occupancy bitmap is whole 64-bit words.
    const std::size_t want = std::max<std::size_t>(2 * capacity, 64);
    max_buckets_ = next_pow2(want);
    head_.assign(next_pow2(std::min<std::size_t>(want, 1024)), kNil);
    mask_ = head_.size() - 1;
    occ_.assign(head_.size() / 64, 0);
    width_ = std::isfinite(rate_hint) && rate_hint > 0.0 ? 1.0 / rate_hint : 1.0;
    width_ = std::clamp(width_, 1e-12, 1e12);
    inv_width_ = 1.0 / width_;
    scratch_.reserve(capacity);
}

std::int64_t CalendarQueue::vindex(double time) const noexcept {
    double q = std::floor(time * inv_width_);
    if (!(q >= -kMaxVirtual)) { // also catches NaN
        q = -kMaxVirtual;
    } else if (q > kMaxVirtual) {
        q = kMaxVirtual;
    }
    return static_cast<std::int64_t>(q);
}

void CalendarQueue::link(Idx id) noexcept {
    const double t = nodes_[id].time;
    const std::int64_t v = vindex(t);
    if (v < cur_v_) {
        cur_v_ = v;
    }
    const std::size_t b = static_cast<std::size_t>(v) & mask_;
    // Sorted insert keeps the bucket chain in (time, id) order — the whole
    // determinism contract; O(1) expected at ~1 event per bucket.
    Idx prev = kNil;
    Idx curr = head_[b];
    while (curr != kNil && before(nodes_[curr].time, curr, t, id)) {
        prev = curr;
        curr = nodes_[curr].next;
        ++steps_;
    }
    nodes_[id].next = curr;
    nodes_[id].prev = prev;
    if (curr != kNil) {
        nodes_[curr].prev = id;
    }
    if (prev != kNil) {
        nodes_[prev].next = id;
    } else {
        head_[b] = id;
        occ_[b >> 6] |= std::uint64_t{1} << (b & 63U);
    }
}

void CalendarQueue::unlink(Idx id) noexcept {
    const Idx p = nodes_[id].prev;
    const Idx n = nodes_[id].next;
    if (p != kNil) {
        nodes_[p].next = n;
    } else {
        // Head of its bucket: the bucket index is recomputed from the time
        // (stored nowhere — that is what keeps the node at 16 bytes).
        const std::size_t b = bucket_of(nodes_[id].time);
        head_[b] = n;
        if (n == kNil) {
            occ_[b >> 6] &= ~(std::uint64_t{1} << (b & 63U));
        }
    }
    if (n != kNil) {
        nodes_[n].prev = p;
    }
    nodes_[id].prev = kFree;
}

double CalendarQueue::time_of(std::size_t id) const {
    if (!contains(id)) {
        throw std::logic_error("CalendarQueue::time_of: slot has no pending event");
    }
    return nodes_[id].time;
}

void CalendarQueue::schedule(std::size_t id, double time) {
    if (id >= nodes_.size()) {
        throw std::invalid_argument("CalendarQueue::schedule: id out of range");
    }
    ++schedules_;
    if (nodes_[id].prev != kFree) {
        // Reschedule in place: relocate within/between buckets.
        unlink(static_cast<Idx>(id));
        nodes_[id].time = time;
        link(static_cast<Idx>(id));
        touch_min(id, time);
        return;
    }
    if (size_ == 0) {
        // Re-anchor the cursor: a stale lower bound from before the queue
        // drained would force a long scan toward the first event.
        cur_v_ = vindex(time);
    }
    nodes_[id].time = time;
    link(static_cast<Idx>(id));
    ++size_;
    if (size_ > hwm_) {
        hwm_ = size_;
    }
    touch_min(id, time);
}

bool CalendarQueue::cancel(std::size_t id) noexcept {
    if (!contains(id)) {
        return false;
    }
    unlink(static_cast<Idx>(id));
    --size_;
    if (min_valid_ && id == min_id_) {
        min_valid_ = false;
    }
    return true;
}

void CalendarQueue::ensure_min() const noexcept {
    if (min_valid_) {
        return;
    }
    // Year scan: visit virtual buckets in increasing order from the cursor.
    // Bucket chains are sorted, and all events of one virtual index share a
    // bucket, so the first head whose virtual index matches the probe IS the
    // global (time, id) minimum. The occupancy bitmap turns runs of empty
    // buckets into countr_zero skips; the probe counter still advances one
    // per virtual bucket, so retune() sees the same cost signal (and makes
    // the same width decisions) as a plain linear scan.
    const std::size_t n = head_.size();
    const std::size_t nwords = occ_.size();
    const std::size_t p0 = static_cast<std::size_t>(cur_v_) & mask_;
    std::size_t w = p0 >> 6;
    std::uint64_t bits = occ_[w] & (~std::uint64_t{0} << (p0 & 63U));
    // Word sequence: the start word's high part, the nwords-1 following
    // words (cyclically), then the start word's low part — one full lap.
    for (std::size_t lap_word = 0;;) {
        while (bits != 0) {
            const std::size_t p =
                (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
            const std::size_t k = (p + n - p0) & mask_; // offset within the lap
            const std::int64_t v = cur_v_ + static_cast<std::int64_t>(k);
            const Idx h = head_[p];
            if (vindex(nodes_[h].time) == v) {
                scans_ += k + 1;
                cur_v_ = v;
                min_id_ = h;
                min_time_ = nodes_[h].time;
                min_valid_ = true;
                min_anchored_ = true;
                return;
            }
            bits &= bits - 1; // occupied, but a later lap: keep scanning.
        }
        if (++lap_word > nwords) {
            break;
        }
        w = w + 1 == nwords ? 0 : w + 1;
        bits = occ_[w];
        if (lap_word == nwords) {
            // Back at the start word: only the bits below p0 are in the lap.
            bits &= (p0 & 63U) != 0 ? (std::uint64_t{1} << (p0 & 63U)) - 1 : 0;
        }
    }
    // Full-cycle miss: every pending event is at least one year
    // (nbuckets · width) ahead. Direct min-scan over the occupied bucket
    // heads (each head is its bucket's minimum), then re-anchor the cursor
    // there. Counter parity with the plain scan: a missed lap plus a direct
    // scan probe every bucket once each.
    scans_ += 2 * n;
    Idx best = kNil;
    for (std::size_t wi = 0; wi < nwords; ++wi) {
        std::uint64_t word = occ_[wi];
        while (word != 0) {
            const std::size_t p =
                (wi << 6) + static_cast<std::size_t>(std::countr_zero(word));
            word &= word - 1;
            const Idx h = head_[p];
            if (best == kNil || before(nodes_[h].time, h, nodes_[best].time, best)) {
                best = h;
            }
        }
    }
    min_id_ = best;
    min_time_ = nodes_[best].time;
    min_valid_ = true;
    min_anchored_ = true;
    cur_v_ = vindex(min_time_);
}

CalendarQueue::Event CalendarQueue::peek() const {
    if (empty()) {
        throw std::logic_error("CalendarQueue::peek: queue is empty");
    }
    ensure_min();
    return {min_time_, min_id_};
}

CalendarQueue::Event CalendarQueue::pop() {
    if (empty()) {
        throw std::logic_error("CalendarQueue::pop: queue is empty");
    }
    ensure_min();
    const Event top{min_time_, min_id_};
    // The popped event was the minimum, so its virtual index lower-bounds
    // every remaining event — the cursor never has to back up. When the min
    // came from a scan the cursor is already there.
    if (!min_anchored_) {
        cur_v_ = vindex(top.time);
    }
    // The minimum is always the head of its (sorted) bucket, and its bucket
    // is the cursor's: specialize the unlink.
    const Idx id = static_cast<Idx>(min_id_);
    const Idx n = nodes_[id].next;
    const std::size_t b = static_cast<std::size_t>(cur_v_) & mask_;
    head_[b] = n;
    if (n != kNil) {
        nodes_[n].prev = kNil;
    } else {
        occ_[b >> 6] &= ~(std::uint64_t{1} << (b & 63U));
    }
    nodes_[id].prev = kFree;
    --size_;
    min_valid_ = false;
    ++pops_;
    return top;
}

void CalendarQueue::pop_and_reschedule(std::size_t id, double time) {
    if (!contains(id)) {
        throw std::logic_error(
            "CalendarQueue::pop_and_reschedule: slot has no pending event");
    }
    ++pops_;
    ++schedules_;
    // Advance the cursor when the relocated event is the cached minimum —
    // the intended use: the just-peeked top. That case also skips the
    // generic unlink: the min is the head of the cursor's bucket.
    if (min_valid_ && id == min_id_) {
        if (!min_anchored_) {
            cur_v_ = vindex(min_time_);
        }
        const Idx n = nodes_[id].next;
        const std::size_t b = static_cast<std::size_t>(cur_v_) & mask_;
        head_[b] = n;
        if (n != kNil) {
            nodes_[n].prev = kNil;
        } else {
            occ_[b >> 6] &= ~(std::uint64_t{1} << (b & 63U));
        }
        nodes_[id].prev = kFree;
    } else {
        unlink(static_cast<Idx>(id));
    }
    nodes_[id].time = time;
    link(static_cast<Idx>(id));
    touch_min(id, time);
}

void CalendarQueue::clear() noexcept {
    for (Node& node : nodes_) {
        node.prev = kFree;
    }
    std::fill(head_.begin(), head_.end(), kNil);
    std::fill(occ_.begin(), occ_.end(), 0);
    size_ = 0;
    hwm_ = 0;
    cur_v_ = 0;
    min_valid_ = false;
}

void CalendarQueue::retune() {
    // Day-array growth against the pending-set high-water mark (lazy: only
    // here, never in the event loop), toward ≤ 0.5 occupancy.
    std::size_t target = head_.size();
    while (target < max_buckets_ && hwm_ > target / 2) {
        target *= 2;
    }
    // Width adaptation from the window's probe counters: many empty-bucket
    // probes per pop ⇒ buckets finer than the event spacing (double the
    // width); long in-bucket insert chains ⇒ buckets too coarse (halve it).
    // Powers of two only, clamped — self-correcting and deterministic.
    const std::uint64_t pops = pops_ - window_pops_;
    const std::uint64_t scans = scans_ - window_scans_;
    const std::uint64_t scheds = schedules_ - window_schedules_;
    const std::uint64_t steps = steps_ - window_steps_;
    double new_width = width_;
    if (pops >= 64 && scans > 4 * pops) {
        new_width = std::min(width_ * 2.0, 1e12);
    } else if (scheds >= 64 && steps > 4 * scheds) {
        new_width = std::max(width_ * 0.5, 1e-12);
    }
    if (target != head_.size() || new_width != width_) {
        rebuild(target, new_width);
    }
    hwm_ = size_;
    // Start the next decision window *after* the rebuild so relink steps
    // don't masquerade as insert-chain pressure.
    window_schedules_ = schedules_;
    window_pops_ = pops_;
    window_scans_ = scans_;
    window_steps_ = steps_;
}

void CalendarQueue::rebuild(std::size_t new_buckets, double new_width) {
    scratch_.clear();
    for (std::size_t b = 0; b < head_.size(); ++b) {
        for (Idx id = head_[b]; id != kNil; id = nodes_[id].next) {
            scratch_.push_back(id);
        }
    }
    if (new_buckets > head_.size()) {
        head_.resize(new_buckets); // the only post-construction allocations,
    }                              // together with the occ_ resize below.
    std::fill(head_.begin(), head_.end(), kNil);
    occ_.assign(head_.size() / 64, 0);
    mask_ = head_.size() - 1;
    width_ = new_width;
    inv_width_ = 1.0 / new_width;
    cur_v_ = std::numeric_limits<std::int64_t>::max();
    for (const Idx id : scratch_) {
        link(id); // lowers cur_v_ to the minimum pending virtual index.
    }
    if (scratch_.empty()) {
        cur_v_ = 0;
    }
    min_valid_ = false;
}

} // namespace mflb
