#include "des/des_system.hpp"

#include "field/arrival_flow.hpp"
#include "math/vec_ops.hpp"

#include <algorithm>
#include <stdexcept>

namespace mflb {

DesSystem::DesSystem(FiniteSystemConfig config)
    : SystemBase(config.arrivals, config.dt, config.horizon, config.num_queues),
      config_(std::move(config)), space_(config_.queue.num_states(), config_.d),
      router_(config_.router, config_.num_queues,
              static_cast<std::size_t>(config_.queue.num_states()), config_.dt),
      service_(config_.service, config_.queue.service_rate),
      fel_(config_.fel, config_.num_queues + 1,
           fel_rate_hint(config_, config_.num_queues)),
      arrival_slot_(config_.num_queues) {
    if (config_.num_clients == 0 && config_.client_model != ClientModel::InfiniteClients) {
        throw std::invalid_argument("DesSystem: need at least one client");
    }
    if (!config_.server_speeds.empty()) {
        if (config_.server_speeds.size() != config_.num_queues) {
            throw std::invalid_argument("DesSystem: server_speeds size mismatch");
        }
        for (const double s : config_.server_speeds) {
            if (!(s > 0.0)) {
                throw std::invalid_argument("DesSystem: server speeds must be > 0");
            }
        }
    }
    if (config_.nu0.empty()) {
        config_.nu0.assign(static_cast<std::size_t>(config_.queue.num_states()), 0.0);
        config_.nu0[0] = 1.0;
    }
    if (config_.nu0.size() != static_cast<std::size_t>(config_.queue.num_states())) {
        throw std::invalid_argument("DesSystem: nu0 size mismatch");
    }
    const auto num_z = static_cast<std::size_t>(config_.queue.num_states());
    const auto d = static_cast<std::size_t>(config_.d);
    const std::size_t m = config_.num_queues;
    state_counts_.assign(num_z, 0);
    saved_.assign(m, 0);
    stamp_.assign(m, kNoEpoch);
    sampled_.assign(d, 0);
    states_.assign(d, 0);
    // The O(M) finite-N routing buffers are only needed by the client models
    // that precompute per-queue weights; InfiniteClients routes per job, so
    // allocating (and page-touching) them at M = 10^6+ would be pure waste.
    if (config_.client_model != ClientModel::InfiniteClients) {
        counts_.assign(m, 0);
        cum_.assign(m, 0.0);
    }
    // Classical weight-law routers thin arrivals by prefix-sum search no
    // matter the client model; round-robin routes by cursor and needs none.
    if (router_.active() && router_.kind() != RouterKind::RoundRobin) {
        weights_.assign(m, 0.0);
        if (cum_.empty()) {
            cum_.assign(m, 0.0);
        }
    }
    if (config_.client_model == ClientModel::Aggregated) {
        hist_.assign(num_z, 0.0);
        g_.assign(d * num_z, 0.0);
        tuple_.assign(d, 0);
        suffix_.assign(d + 1, 1.0);
        dest_p_.assign(m, 0.0);
    }
    telemetry_series_ = "des_epoch";
    if (config_.telemetry != nullptr) {
        set_telemetry(config_.telemetry);
    }
}

void DesSystem::on_telemetry_attached() {
    fel_registry_ = nullptr;
    if (telemetry_ != nullptr && telemetry_->metrics_enabled()) {
        MetricsRegistry& registry = telemetry_->registry();
        fel_schedules_id_ = registry.counter("fel_schedules");
        fel_pops_id_ = registry.counter("fel_pops");
        fel_scans_id_ = registry.counter("fel_bucket_scans");
        fel_registry_ = &registry;
    }
}

void DesSystem::append_epoch_telemetry(MetricsRow& row) {
    // state_counts_ is maintained incrementally, so the queue-length
    // histogram summary is O(|Z|) regardless of M.
    const std::size_t num_z = state_counts_.size();
    int max_state = 0;
    for (std::size_t z = 0; z < num_z; ++z) {
        if (state_counts_[z] > 0) {
            max_state = static_cast<int>(z);
        }
    }
    const double inv_m = 1.0 / static_cast<double>(num_queues());
    row.push("qlen_empty_frac", static_cast<double>(state_counts_[0]) * inv_m);
    row.push("qlen_full_frac", static_cast<double>(state_counts_[num_z - 1]) * inv_m);
    row.push_int("qlen_max", max_state);
    if (config_.track_sojourn) {
        row.push("sojourn_p50", sojourn_.p50());
        row.push("sojourn_p95", sojourn_.p95());
        row.push("sojourn_p99", sojourn_.p99());
    }
}

void DesSystem::reset(Rng& rng) {
    for (int& z : queues_) {
        z = static_cast<int>(rng.categorical(config_.nu0));
    }
    reset_base(rng);

    std::fill(state_counts_.begin(), state_counts_.end(), 0);
    std::fill(stamp_.begin(), stamp_.end(), kNoEpoch);
    total_jobs_ = 0;
    busy_queues_ = 0;
    for (int z : queues_) {
        ++state_counts_[static_cast<std::size_t>(z)];
        total_jobs_ += z;
        busy_queues_ += z > 0 ? 1 : 0;
    }
    cursor_ = 0.0;

    // Seed the FEL: initially busy queues have a job in service whose
    // completion time is drawn from the service law from time zero.
    fel_.clear();
    for (std::size_t j = 0; j < queues_.size(); ++j) {
        if (queues_[j] > 0) {
            fel_.schedule(j, service_time(j, rng));
        }
    }
    rr_next_ = 0;
    router_.reset();

    if (config_.track_sojourn) {
        jobs_.clear();
        jobs_.reserve(queues_.size());
        for (int z : queues_) {
            JobTimestamps stamps(config_.queue.buffer);
            // Jobs present at t = 0 get timestamp 0 (their waiting before
            // the simulation started is unknown and counted as zero).
            for (int k = 0; k < z; ++k) {
                stamps.push(0.0);
            }
            jobs_.push_back(std::move(stamps));
        }
        sojourn_.reset();
    }
}

void DesSystem::reset_conditioned(std::vector<std::size_t> lambda_states, Rng& rng) {
    reset(rng);
    condition_on(std::move(lambda_states));
}

std::vector<double> DesSystem::empirical_distribution() const {
    return histogram_from_counts(state_counts_, queues_.size());
}

std::vector<double> DesSystem::observed_distribution(Rng& rng) const {
    if (config_.histogram_sample_size == 0) {
        return empirical_distribution();
    }
    return sampled_histogram(queues_, state_counts_.size(), config_.histogram_sample_size,
                             rng);
}

void DesSystem::begin_epoch(const DecisionRule& h, Rng& rng) {
    const std::size_t m = queues_.size();
    const double inv_m = 1.0 / static_cast<double>(m);
    arrival_rate_ = static_cast<double>(m) * lambda_value();

    switch (config_.client_model) {
    case ClientModel::PerClient:
        // Literal Algorithm 1: every client samples d queues and one choice;
        // the epoch's destination weights are the resulting client counts.
        sample_per_client_counts(queues_, h, config_.num_clients, rng, sampled_, states_,
                                 counts_);
        break;
    case ClientModel::Aggregated: {
        // Exactly FiniteSystem's aggregation: the per-client destination law
        // from the shared routing helper, then C ~ Multinomial(N, p).
        for (std::size_t z = 0; z < hist_.size(); ++z) {
            hist_[z] = inv_m * static_cast<double>(state_counts_[z]);
        }
        compute_destination_law_into(queues_, hist_, h, tuple_, suffix_, g_, dest_p_);
        rng.multinomial(config_.num_clients, dest_p_, counts_);
        break;
    }
    case ClientModel::InfiniteClients:
        // Per-job d-sampling at arrival time realizes the mean-field rates
        // exactly; no per-epoch routing state is needed.
        break;
    }

    if (config_.client_model != ClientModel::InfiniteClients) {
        // Prefix sums of the client counts for O(log M) arrival thinning —
        // the segmented vectorized scan, exact (hence bit-identical to the
        // serial loop it replaced) because the counts are integers below
        // 2^53. The router weight path below stays serial: its weights are
        // arbitrary doubles, where the scan's block reassociation would
        // move bits.
        inclusive_prefix_sum(std::span<const std::uint64_t>(counts_), cum_);
        total_weight_ = m > 0 ? cum_[m - 1] : 0.0;
    }

    // The epoch barrier is the one place the calendar FEL may resize or
    // re-tune its day array — the event loop itself stays allocation-free.
    fel_.retune();
    // The pending next-arrival (drawn under the previous epoch's rate and
    // routing) is stale; memorylessness makes cancel-and-redraw exact. This
    // is the FEL reschedule path, exercised once per epoch.
    fel_.schedule(arrival_slot_, cursor_ + rng.exponential(arrival_rate_));
}

void DesSystem::begin_epoch_router(Rng& rng) {
    const std::size_t m = queues_.size();
    arrival_rate_ = static_cast<double>(m) * lambda_value();
    if (router_.kind() != RouterKind::RoundRobin) {
        // Epoch-barrier weight law from the epoch-start snapshot; arrivals
        // within the epoch thin the aggregated stream over these weights
        // (identical semantics to the finite backend's frozen rates).
        router_.epoch_weights(queues_, time(), weights_);
        double running = 0.0;
        for (std::size_t j = 0; j < m; ++j) {
            running += weights_[j];
            cum_[j] = running;
        }
        total_weight_ = running;
    }
    fel_.retune();
    fel_.schedule(arrival_slot_, cursor_ + rng.exponential(arrival_rate_));
}

std::size_t DesSystem::sample_destination(const DecisionRule* h, Rng& rng) {
    if (router_.active()) {
        if (router_.kind() == RouterKind::RoundRobin) {
            // Per-arrival cyclic cursor — the literal discipline, which a
            // weight law cannot express (Erlang interarrivals per queue).
            const std::size_t j = rr_next_;
            rr_next_ = rr_next_ + 1 == queues_.size() ? 0 : rr_next_ + 1;
            return j;
        }
    } else if (config_.client_model == ClientModel::InfiniteClients) {
        // The arriving job itself samples d queues and applies h to their
        // stale snapshot states (eq. (18)-(19) by Poisson thinning).
        const int d = config_.d;
        for (int k = 0; k < d; ++k) {
            const auto id = static_cast<std::size_t>(rng.uniform_below(queues_.size()));
            sampled_[static_cast<std::size_t>(k)] = static_cast<int>(id);
            states_[static_cast<std::size_t>(k)] = snapshot_state(id);
        }
        const std::size_t row = space_.index_of(states_);
        const std::size_t u = rng.categorical(h->row(row));
        return static_cast<std::size_t>(sampled_[u]);
    }
    const double target = rng.uniform() * total_weight_;
    const auto it = std::upper_bound(cum_.begin(), cum_.end(), target);
    const auto idx = static_cast<std::size_t>(it - cum_.begin());
    return idx < cum_.size() ? idx : cum_.size() - 1;
}

void DesSystem::advance_areas_to(double t) noexcept {
    const double span = t - cursor_;
    if (span > 0.0) {
        job_area_ += static_cast<double>(total_jobs_) * span;
        busy_area_ += static_cast<double>(busy_queues_) * span;
        cursor_ = t;
    }
}

void DesSystem::handle_arrival(const DecisionRule* h, double t, Rng& rng, EpochStats& stats) {
    const std::size_t j = sample_destination(h, rng);
    if (queues_[j] < config_.queue.buffer) {
        save_snapshot(j);
        const auto z = static_cast<std::size_t>(queues_[j]);
        --state_counts_[z];
        ++state_counts_[z + 1];
        ++queues_[j];
        ++total_jobs_;
        ++stats.accepted_packets;
        if (queues_[j] == 1) {
            ++busy_queues_;
            fel_.schedule(j, t + service_time(j, rng));
        }
        if (config_.track_sojourn) {
            jobs_[j].push(t);
        }
    } else {
        ++stats.dropped_packets;
    }
    // The arrival slot is at the FEL front (it was just peeked as the
    // minimum): rescheduling in place is one sift instead of pop + insert.
    fel_.pop_and_reschedule(arrival_slot_, t + rng.exponential(arrival_rate_));
}

void DesSystem::handle_departure(std::size_t j, double t, Rng& rng, EpochStats& stats) {
    save_snapshot(j);
    const auto z = static_cast<std::size_t>(queues_[j]);
    --state_counts_[z];
    ++state_counts_[z - 1];
    --queues_[j];
    --total_jobs_;
    ++stats.served_packets;
    if (config_.track_sojourn) {
        const double sojourn = jobs_[j].pop(t);
        stats.mean_sojourn += sojourn; // running sum; divided at epoch end.
        ++stats.completed_jobs;
        sojourn_.record(sojourn);
    }
    if (queues_[j] > 0) {
        // The departure event is still at the FEL front; move it to the next
        // completion in place instead of pop + insert.
        fel_.pop_and_reschedule(j, t + service_time(j, rng));
    } else {
        fel_.pop();
        --busy_queues_;
    }
}

EpochStats DesSystem::run_events(const DecisionRule* h, Rng& rng) {
    // Drift-free epoch boundary: absolute time of epoch t_ + 1.
    const double epoch_end = epoch_end_time();
    EpochStats stats;
    job_area_ = 0.0;
    busy_area_ = 0.0;
    // Peek-based loop: the handlers relocate (or pop) the front event
    // themselves, so the dominant arrival/still-busy-departure paths pay one
    // in-place reschedule instead of a pop followed by a fresh insert. The
    // pop *sequence* is unchanged — it is the (time, id) sorted order of the
    // pending-event multiset, independent of how entries move internally.
    while (!fel_.empty()) {
        const FutureEventList::Event event = fel_.peek();
        if (event.time > epoch_end) {
            break;
        }
        advance_areas_to(event.time);
        if (event.id == arrival_slot_) {
            handle_arrival(h, event.time, rng, stats);
        } else {
            handle_departure(event.id, event.time, rng, stats);
        }
    }
    advance_areas_to(epoch_end);

    if (fel_registry_ != nullptr) {
        const FutureEventList::Stats s = fel_.stats();
        fel_registry_->add(fel_schedules_id_,
                           static_cast<double>(s.schedules - fel_published_.schedules));
        fel_registry_->add(fel_pops_id_,
                           static_cast<double>(s.pops - fel_published_.pops));
        fel_registry_->add(fel_scans_id_,
                           static_cast<double>(s.bucket_scans - fel_published_.bucket_scans));
        fel_published_ = s;
    }

    const auto m = static_cast<double>(queues_.size());
    const double m_dt = m * config_.dt;
    stats.drops_per_queue = static_cast<double>(stats.dropped_packets) / m;
    stats.mean_queue_length = job_area_ / m_dt;
    stats.server_utilization = busy_area_ / m_dt;
    if (stats.completed_jobs > 0) {
        stats.mean_sojourn /= static_cast<double>(stats.completed_jobs);
    }

    advance_epoch(rng);
    return stats;
}

EpochStats DesSystem::step_with_rule(const DecisionRule& h, Rng& rng) {
    if (done()) {
        throw std::logic_error("DesSystem::step: episode already finished");
    }
    if (!(h.space() == space_)) {
        throw std::invalid_argument("DesSystem::step: decision rule on wrong tuple space");
    }
    trace::Tracer* tracer = session_tracer(telemetry_);
    {
        trace::ScopedSpan span(tracer, "destination_law");
        begin_epoch(h, rng);
    }
    trace::ScopedSpan span(tracer, "event_loop");
    return run_events(&h, rng);
}

EpochStats DesSystem::step_router(Rng& rng) {
    if (!router_.active()) {
        throw std::logic_error("DesSystem::step_router: no classical router configured");
    }
    if (done()) {
        throw std::logic_error("DesSystem::step: episode already finished");
    }
    begin_epoch_router(rng);
    return run_events(nullptr, rng);
}

EpochStats DesSystem::step(const UpperLevelPolicy& policy, Rng& rng) {
    if (router_.active()) {
        return step_router(rng);
    }
    DecisionRule h = [&] {
        trace::ScopedSpan span(session_tracer(telemetry_), "policy_query");
        return policy.decide(observed_distribution(rng), lambda_state(), rng);
    }();
    return step_with_rule(h, rng);
}

DesEpisodeStats DesSystem::run_episode(const UpperLevelPolicy& policy, Rng& rng) {
    DesEpisodeStats stats;
    static_cast<EpisodeStats&>(stats) =
        run_episode_loop(config_.discount, [&] { return step(policy, rng); });
    stats.sojourn_p50 = sojourn_.p50();
    stats.sojourn_p95 = sojourn_.p95();
    stats.sojourn_p99 = sojourn_.p99();
    return stats;
}

DesEpisodeStats DesSystem::run_episode(Rng& rng) {
    DesEpisodeStats stats;
    static_cast<EpisodeStats&>(stats) =
        run_episode_loop(config_.discount, [&] { return step_router(rng); });
    stats.sojourn_p50 = sojourn_.p50();
    stats.sojourn_p95 = sojourn_.p95();
    stats.sojourn_p99 = sojourn_.p99();
    return stats;
}

} // namespace mflb
