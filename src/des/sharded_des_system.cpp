#include "des/sharded_des_system.hpp"

#include "field/arrival_flow.hpp"
#include "math/vec_ops.hpp"
#include "support/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <stdexcept>

namespace mflb {

namespace {

/// Below this many combined histogram entries per tree level the pool
/// fan-out costs more than the adds; the gate depends only on (K, |Z|), so
/// the schedule stays a pure function of the configuration.
constexpr std::size_t kMinParallelReduceWork = std::size_t{1} << 14;

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// out[0, max_hi) = a + b on the shared prefix, then the taller child's
/// tail. Entries at and above max_hi are left stale — both children are
/// all-zero there by the high-water invariant, and readers never look.
void combine_counts(std::vector<int>& out, std::size_t& out_hi, const std::vector<int>& a,
                    std::size_t a_hi, const std::vector<int>& b, std::size_t b_hi) {
    const std::size_t lo = std::min(a_hi, b_hi);
    const std::size_t hi = std::max(a_hi, b_hi);
    for (std::size_t z = 0; z < lo; ++z) {
        out[z] = a[z] + b[z];
    }
    const std::vector<int>& tall = a_hi >= b_hi ? a : b;
    std::copy(tall.begin() + static_cast<std::ptrdiff_t>(lo),
              tall.begin() + static_cast<std::ptrdiff_t>(hi),
              out.begin() + static_cast<std::ptrdiff_t>(lo));
    out_hi = hi;
}

} // namespace

ShardedDesSystem::ShardedDesSystem(FiniteSystemConfig config)
    : SystemBase(config.arrivals, config.dt, config.horizon, config.num_queues),
      config_(std::move(config)), space_(config_.queue.num_states(), config_.d),
      router_(config_.router, config_.num_queues,
              static_cast<std::size_t>(config_.queue.num_states()), config_.dt),
      service_(config_.service, config_.queue.service_rate), threads_(config_.threads),
      pipeline_(config_.pipeline), rule_(space_) {
    if (config_.num_clients == 0 && config_.client_model != ClientModel::InfiniteClients) {
        throw std::invalid_argument("ShardedDesSystem: need at least one client");
    }
    if (!config_.server_speeds.empty()) {
        if (config_.server_speeds.size() != config_.num_queues) {
            throw std::invalid_argument("ShardedDesSystem: server_speeds size mismatch");
        }
        for (const double s : config_.server_speeds) {
            if (!(s > 0.0)) {
                throw std::invalid_argument("ShardedDesSystem: server speeds must be > 0");
            }
        }
    }
    if (config_.nu0.empty()) {
        config_.nu0.assign(static_cast<std::size_t>(config_.queue.num_states()), 0.0);
        config_.nu0[0] = 1.0;
    }
    if (config_.nu0.size() != static_cast<std::size_t>(config_.queue.num_states())) {
        throw std::invalid_argument("ShardedDesSystem: nu0 size mismatch");
    }
    const auto num_z = static_cast<std::size_t>(config_.queue.num_states());
    const auto d = static_cast<std::size_t>(config_.d);
    const std::size_t m = config_.num_queues;

    // Shard partition: K contiguous near-equal blocks (the first M mod K
    // shards get one extra queue). K is clamped to M; the default is fixed
    // (not hardware-derived) so (seed, K) fully determines results.
    std::size_t k = config_.shards == 0 ? kDefaultShards : config_.shards;
    k = std::max<std::size_t>(1, std::min(k, m));
    shard_begin_.resize(k + 1);
    const std::size_t base = m / k;
    const std::size_t extra = m % k;
    shard_begin_[0] = 0;
    for (std::size_t s = 0; s < k; ++s) {
        shard_begin_[s + 1] = shard_begin_[s] + base + (s < extra ? 1 : 0);
    }
    shards_.reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
        const std::size_t n_local = shard_begin_[s + 1] - shard_begin_[s];
        shards_.emplace_back(config_.fel, n_local, fel_rate_hint(config_, n_local),
                             num_z);
        shards_.back().begin = shard_begin_[s];
        shards_.back().end = shard_begin_[s + 1];
    }

    state_counts_.assign(num_z, 0);
    state_hi_ = num_z;
    shard_mass_.assign(k, 0.0);

    // Reduction-tree shape (level widths K, ⌈K/2⌉, …, 1) is fixed by K
    // alone, never by thread count; K == 1 reduces straight off the shard.
    std::size_t width = k;
    while (width > 1) {
        const std::size_t next = (width + 1) / 2;
        tree_off_.push_back(tree_.size());
        level_width_.push_back(width);
        for (std::size_t i = 0; i < next; ++i) {
            tree_.emplace_back(num_z);
        }
        width = next;
    }
    // Eager-fold pending counters, one per node, sized once here (atomics
    // are immovable, so the vector is constructed in place and never grown).
    tree_pending_ = std::vector<PendingCount>(tree_.size());
    // The routing table / destination-law buffers serve both the Aggregated
    // client counts and the InfiniteClients per-job law (unlike the
    // unsharded DES, which realizes InfiniteClients by per-job d-sampling,
    // the sharded backend thins the identical law per shard).
    if (config_.client_model != ClientModel::PerClient) {
        hist_.assign(num_z, 0.0);
        g_.assign(d * num_z, 0.0);
        tuple_.assign(d, 0);
        suffix_.assign(d + 1, 1.0);
        dest_p_.assign(m, 0.0);
    }
    if (config_.client_model == ClientModel::InfiniteClients) {
        scaled_sums_.assign(num_z, 0.0);
    }
    // Classical weight-law routers reuse the destination-law buffer as the
    // barrier-phase weight vector (round-robin needs none).
    if (router_.active() && router_.kind() != RouterKind::RoundRobin && dest_p_.empty()) {
        dest_p_.assign(m, 0.0);
    }
    if (config_.client_model != ClientModel::InfiniteClients) {
        counts_.assign(m, 0);
    }
    if (config_.client_model == ClientModel::PerClient) {
        sampled_.assign(d, 0);
        states_.assign(d, 0);
    }
    if (config_.client_model == ClientModel::Aggregated) {
        shard_clients_.assign(k, 0);
    }
    telemetry_series_ = "sharded_epoch";
    if (config_.telemetry != nullptr) {
        set_telemetry(config_.telemetry);
    }
}

void ShardedDesSystem::on_telemetry_attached() {
    tracer_ = session_tracer(telemetry_);
    shard_registry_ = nullptr;
    if (telemetry_ != nullptr && telemetry_->metrics_enabled()) {
        MetricsRegistry& registry = telemetry_->registry();
        registry.ensure_slots(shards_.size());
        shard_events_id_ = registry.counter("des_events_total");
        barrier_prologue_id_ = registry.gauge("barrier_prologue_seconds");
        barrier_overlap_id_ = registry.gauge("barrier_overlap_seconds");
        barrier_reduce_id_ = registry.gauge("barrier_reduce_seconds");
        barrier_parallel_id_ = registry.gauge("barrier_parallel_seconds");
        fel_schedules_id_ = registry.counter("fel_schedules");
        fel_pops_id_ = registry.counter("fel_pops");
        fel_scans_id_ = registry.counter("fel_bucket_scans");
        shard_registry_ = &registry;
    }
}

void ShardedDesSystem::append_epoch_telemetry(MetricsRow& row) {
    const auto m = static_cast<double>(queues_.size());
    row.push("qlen_empty_frac", static_cast<double>(state_counts_[0]) / m);
    row.push("qlen_full_frac",
             static_cast<double>(state_counts_[state_counts_.size() - 1]) / m);
    std::size_t hi = state_hi_;
    while (hi > 1 && state_counts_[hi - 1] == 0) {
        --hi;
    }
    row.push_int("qlen_max", static_cast<std::int64_t>(hi - 1));
    if (config_.track_sojourn) {
        row.push("sojourn_p50", merged_quantile(0));
        row.push("sojourn_p95", merged_quantile(1));
        row.push("sojourn_p99", merged_quantile(2));
    }
    row.push_int("shards", static_cast<std::int64_t>(shards_.size()));
    // The barrier profile rides the registry (appended after this hook), so
    // the Amdahl split lands in the same row as the queueing metrics.
    shard_registry_->set(barrier_prologue_id_, profile_.serial_prologue_seconds);
    shard_registry_->set(barrier_overlap_id_, profile_.overlapped_compute_seconds);
    shard_registry_->set(barrier_reduce_id_, profile_.reduction_seconds);
    shard_registry_->set(barrier_parallel_id_, profile_.parallel_seconds);
}

void ShardedDesSystem::reset(Rng& rng) {
    for (int& z : queues_) {
        z = static_cast<int>(rng.categorical(config_.nu0));
    }
    reset_base(rng);
    router_.reset();

    if (config_.track_sojourn) {
        jobs_.clear();
        jobs_.reserve(queues_.size());
        for (int z : queues_) {
            JobTimestamps stamps(config_.queue.buffer);
            for (int j = 0; j < z; ++j) {
                stamps.push(0.0);
            }
            jobs_.push_back(std::move(stamps));
        }
    }

    std::fill(state_counts_.begin(), state_counts_.end(), 0);
    state_hi_ = state_counts_.size();
    epochs_run_ = 0;
    merged_for_ = ~std::uint64_t{0};
    profile_ = BarrierProfile{};
    policy_scratches_.clear();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard& shard = shards_[s];
        // One independent O(1)-derived stream per shard: fork(s) never
        // consumes caller draws, and the shard id (not the thread) owns it.
        shard.rng = rng.fork(s);
        shard.fel.clear();
        std::fill(shard.state_counts.begin(), shard.state_counts.end(), 0);
        shard.hot_hi = 1;
        shard.total_jobs = 0;
        shard.busy_queues = 0;
        shard.cursor = 0.0;
        shard.rr_next = 0;
        shard.sojourn.reset();
        for (std::size_t j = shard.begin; j < shard.end; ++j) {
            const int z = queues_[j];
            ++shard.state_counts[static_cast<std::size_t>(z)];
            shard.hot_hi = std::max(shard.hot_hi, static_cast<std::size_t>(z) + 1);
            shard.total_jobs += z;
            if (z > 0) {
                ++shard.busy_queues;
                shard.fel.schedule(j - shard.begin, service_time(j, shard.rng));
            }
        }
        for (std::size_t z = 0; z < state_counts_.size(); ++z) {
            state_counts_[z] += shard.state_counts[z];
        }
    }
}

void ShardedDesSystem::reset_conditioned(std::vector<std::size_t> lambda_states, Rng& rng) {
    reset(rng);
    condition_on(std::move(lambda_states));
}

std::vector<double> ShardedDesSystem::empirical_distribution() const {
    return histogram_from_counts(state_counts_, queues_.size());
}

std::vector<double> ShardedDesSystem::observed_distribution(Rng& rng) const {
    if (config_.histogram_sample_size == 0) {
        return empirical_distribution();
    }
    return sampled_histogram(queues_, state_counts_.size(), config_.histogram_sample_size,
                             rng);
}

void ShardedDesSystem::begin_epoch(const DecisionRule& h, Rng& rng) {
    trace::ScopedSpan span(tracer_, "destination_law");
    const std::size_t m = queues_.size();
    const double total_rate = static_cast<double>(m) * lambda_value();

    switch (config_.client_model) {
    case ClientModel::PerClient: {
        // Literal Algorithm 1 on the epoch-start snapshot (serial: the draw
        // sequence is part of the (seed, K) contract, not the thread count).
        sample_per_client_counts(queues_, h, config_.num_clients, rng, sampled_, states_,
                                 counts_);
        const double total =
            partition_shard_mass(std::span<const std::uint64_t>(counts_), shard_begin_,
                                 shard_mass_);
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            shards_[s].arrival_rate =
                total > 0.0 ? total_rate * shard_mass_[s] / total : 0.0;
        }
        break;
    }
    case ClientModel::Aggregated: {
        // Hierarchical multinomial: the barrier draws the shard totals
        // N_s ~ Multinomial(N, P_s); each shard later draws its own queues'
        // counts Multinomial(N_s, p_j / P_s) from its own stream. Jointly
        // exactly Multinomial(N, p) — FiniteSystem's aggregation.
        const double total = destination_law_shard_masses(h);
        if (total > 0.0) {
            rng.multinomial(config_.num_clients, shard_mass_, total, shard_clients_);
        } else {
            std::fill(shard_clients_.begin(), shard_clients_.end(), 0);
        }
        const double inv_n = 1.0 / static_cast<double>(config_.num_clients);
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            shards_[s].clients = shard_clients_[s];
            shards_[s].arrival_rate =
                total_rate * static_cast<double>(shard_clients_[s]) * inv_n;
        }
        break;
    }
    case ClientModel::InfiniteClients: {
        // The per-job destination law (1/M) Σ_k g(k, z_j) is exactly the law
        // realized by the unsharded DES's per-job d-sampling on the frozen
        // snapshot; thinning it per shard is therefore exact.
        const double total = destination_law_shard_masses(h);
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            shards_[s].arrival_rate =
                total > 0.0 ? total_rate * shard_mass_[s] / total : 0.0;
        }
        break;
    }
    }
}

double ShardedDesSystem::destination_law_shard_masses(const DecisionRule& h) {
    const std::size_t m = queues_.size();
    const double inv_m = 1.0 / static_cast<double>(m);
    for (std::size_t z = 0; z < hist_.size(); ++z) {
        hist_[z] = inv_m * static_cast<double>(state_counts_[z]);
    }
    // The O(d·|Z|^d) routing table and its O(d·|Z|) fold stay serial; the
    // O(M) per-queue gather and the per-shard vec_sum masses fan out over
    // the pool. Each task writes only its own dest_p_ slice and mass slot,
    // and the values match the full-span gather element for element, so the
    // result is identical at any thread count — and bit-identical to the
    // historical compute_destination_law_into + partition_shard_mass pair.
    compute_routing_table_into(hist_, h, tuple_, suffix_, g_);
    const std::span<const double> sums =
        fold_routing_table_rows(g_, hist_.size(), config_.d);
    parallel_for(
        shards_.size(),
        [&](std::size_t s) {
            const std::size_t begin = shard_begin_[s];
            const std::size_t n = shard_begin_[s + 1] - begin;
            gather_scale(std::span<const int>(queues_.data() + begin, n), sums, inv_m,
                         std::span<double>(dest_p_.data() + begin, n));
            shard_mass_[s] =
                vec_sum(std::span<const double>(dest_p_.data() + begin, n));
        },
        threads_);
    double total = 0.0;
    for (const double mass : shard_mass_) { // fixed K-term order, as before.
        total += mass;
    }
    return total;
}

void ShardedDesSystem::begin_epoch_router() {
    trace::ScopedSpan span(tracer_, "destination_law");
    const std::size_t m = queues_.size();
    const double total_rate = static_cast<double>(m) * lambda_value();

    if (router_.kind() == RouterKind::RoundRobin) {
        // Shard-local cyclic cursors over shard-size-proportional thinned
        // streams: each shard's cycle is near-deterministic at rate ∝ its
        // queue count, the epoch-scale equal-split behavior of round-robin.
        const double inv_m = 1.0 / static_cast<double>(m);
        for (Shard& shard : shards_) {
            shard.arrival_rate =
                total_rate * static_cast<double>(shard.end - shard.begin) * inv_m;
        }
        return;
    }
    // Weight law from the epoch-start snapshot, partitioned into shard
    // masses exactly like the policy path's destination law.
    router_.epoch_weights(queues_, time(), dest_p_);
    const double total =
        partition_shard_mass(std::span<const double>(dest_p_), shard_begin_, shard_mass_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        shards_[s].arrival_rate = total > 0.0 ? total_rate * shard_mass_[s] / total : 0.0;
    }
}

void ShardedDesSystem::handle_arrival(Shard& shard, double t) {
    std::size_t local;
    if (router_.kind() == RouterKind::RoundRobin) {
        local = shard.rr_next;
        shard.rr_next = shard.rr_next + 1 == shard.cum.size() ? 0 : shard.rr_next + 1;
    } else {
        // Conditional destination law inside the shard: binary search on the
        // shard-local prefix sums (exact thinning of the global law).
        const double target = shard.rng.uniform() * shard.total_weight;
        const auto it = std::upper_bound(shard.cum.begin(), shard.cum.end(), target);
        local = static_cast<std::size_t>(it - shard.cum.begin());
        if (local >= shard.cum.size()) {
            local = shard.cum.size() - 1;
        }
    }
    const std::size_t j = shard.begin + local;
    if (queues_[j] < config_.queue.buffer) {
        const auto z = static_cast<std::size_t>(queues_[j]);
        --shard.state_counts[z];
        ++shard.state_counts[z + 1];
        shard.hot_hi = std::max(shard.hot_hi, z + 2);
        ++queues_[j];
        ++shard.total_jobs;
        ++shard.stats.accepted_packets;
        if (queues_[j] == 1) {
            ++shard.busy_queues;
            shard.fel.schedule(local, t + service_time(j, shard.rng));
        }
        if (config_.track_sojourn) {
            jobs_[j].push(t);
        }
    } else {
        ++shard.stats.dropped_packets;
    }
    // The arrival slot is at the shard FEL's front (it was just peeked as
    // the minimum): reschedule in place instead of pop + insert.
    shard.fel.pop_and_reschedule(shard.local_arrival_slot(),
                                 t + shard.rng.exponential(shard.arrival_rate));
}

void ShardedDesSystem::handle_departure(Shard& shard, std::size_t local_id, double t) {
    const std::size_t j = shard.begin + local_id;
    const auto z = static_cast<std::size_t>(queues_[j]);
    --shard.state_counts[z];
    ++shard.state_counts[z - 1];
    --queues_[j];
    --shard.total_jobs;
    ++shard.stats.served_packets;
    if (config_.track_sojourn) {
        const double sojourn = jobs_[j].pop(t);
        shard.stats.mean_sojourn += sojourn; // running sum; divided in reduce.
        ++shard.stats.completed_jobs;
        shard.sojourn.record(sojourn);
    }
    if (queues_[j] > 0) {
        // The departure event is still at the FEL front; move it to the next
        // completion in place instead of pop + insert.
        shard.fel.pop_and_reschedule(local_id, t + service_time(j, shard.rng));
    } else {
        shard.fel.pop();
        --shard.busy_queues;
    }
}

void ShardedDesSystem::run_shard_epoch(std::size_t s, double epoch_start, double epoch_end,
                                       bool pipelined) {
    Shard& shard = shards_[s];
    const std::size_t local_n = shard.end - shard.begin;
    const std::uint64_t thin_begin = tracer_ != nullptr ? trace::now_ns() : 0;

    // Epoch boundary: the one place the shard's calendar FEL may resize or
    // re-tune its day array (shard-owned, so this is race-free; the event
    // loop below stays allocation-free). The pipelined barrier hoists the
    // retune sweep so it overlaps the offloaded compute body instead.
    if (!pipelined) {
        shard.fel.retune();
    }

    // Shard-local destination prefix sums for this epoch's routing weights,
    // realized with the vectorized scan (exact for the integer-count client
    // models; block-boundary reassociation only, and thread-count
    // independent, for the probability laws).
    if (router_.active()) {
        if (router_.kind() == RouterKind::RoundRobin) {
            // Cursor-routed: no prefix sums; a positive weight just keeps
            // the thinned arrival stream scheduled below.
            shard.total_weight = static_cast<double>(local_n);
        } else {
            inclusive_prefix_sum(
                std::span<const double>(dest_p_.data() + shard.begin, local_n),
                std::span<double>(shard.cum));
            shard.total_weight = shard.cum.back();
        }
    } else {
        switch (config_.client_model) {
        case ClientModel::Aggregated: {
            const std::span<const double> weights(dest_p_.data() + shard.begin, local_n);
            const std::span<std::uint64_t> counts(counts_.data() + shard.begin, local_n);
            if (shard.clients > 0 && shard_mass_[s] > 0.0) {
                shard.rng.multinomial(shard.clients, weights, shard_mass_[s], counts);
            } else {
                std::fill(counts.begin(), counts.end(), 0);
            }
            inclusive_prefix_sum(std::span<const std::uint64_t>(counts),
                                 std::span<double>(shard.cum));
            break;
        }
        case ClientModel::PerClient:
            inclusive_prefix_sum(
                std::span<const std::uint64_t>(counts_.data() + shard.begin, local_n),
                std::span<double>(shard.cum));
            break;
        case ClientModel::InfiniteClients:
            if (pipelined) {
                // Fused gather-scan against the prescaled per-state table:
                // the same scan shape over the same element values as the
                // materialized dest_p_ path, so shard.cum is bit-identical —
                // with 2·8·n fewer bytes of law traffic per shard.
                gather_prefix_sum(
                    std::span<const int>(queues_.data() + shard.begin, local_n),
                    scaled_sums_, std::span<double>(shard.cum));
            } else {
                inclusive_prefix_sum(
                    std::span<const double>(dest_p_.data() + shard.begin, local_n),
                    std::span<double>(shard.cum));
            }
            break;
        }
        shard.total_weight = shard.cum.back();
    }

    // (Re)schedule the shard's thinned arrival stream: the pending
    // next-arrival was drawn under the previous epoch's rate and routing;
    // memorylessness makes cancel-and-redraw exact. Rate zero (no routing
    // mass in this shard) simply parks the slot.
    if (shard.arrival_rate > 0.0 && shard.total_weight > 0.0) {
        shard.fel.schedule(shard.local_arrival_slot(),
                           epoch_start + shard.rng.exponential(shard.arrival_rate));
    } else {
        shard.fel.cancel(shard.local_arrival_slot());
    }
    if (tracer_ != nullptr) {
        tracer_->record("thinning", thin_begin, trace::now_ns());
    }
    trace::ScopedSpan advance_span(tracer_, "shard_advance");

    shard.cursor = epoch_start;
    shard.job_area = 0.0;
    shard.busy_area = 0.0;
    shard.stats = EpochStats{};
    const auto advance_to = [&shard](double t) {
        const double span = t - shard.cursor;
        if (span > 0.0) {
            shard.job_area += static_cast<double>(shard.total_jobs) * span;
            shard.busy_area += static_cast<double>(shard.busy_queues) * span;
            shard.cursor = t;
        }
    };
    // Peek-based loop: the handlers relocate (or pop) the front event
    // themselves, so the dominant paths pay one in-place reschedule instead
    // of a pop followed by a fresh insert; the pop sequence — the (time, id)
    // sorted order of the pending-event multiset — is unchanged.
    while (!shard.fel.empty()) {
        const FutureEventList::Event event = shard.fel.peek();
        if (event.time > epoch_end) {
            break;
        }
        advance_to(event.time);
        if (event.id == shard.local_arrival_slot()) {
            handle_arrival(shard, event.time);
        } else {
            handle_departure(shard, event.id, event.time);
        }
    }
    advance_to(epoch_end);
    // Lower the high-water mark past any emptied top states so the barrier
    // reduction walks only the occupied prefix next epoch.
    while (shard.hot_hi > 1 && shard.state_counts[shard.hot_hi - 1] == 0) {
        --shard.hot_hi;
    }
    // One lane write per epoch (not per event): the shard owns slot s until
    // the barrier's merge_slots, so this stays wait-free and allocation-free.
    if (shard_registry_ != nullptr) {
        shard_registry_->add(shard_events_id_,
                             static_cast<double>(shard.stats.accepted_packets +
                                                 shard.stats.dropped_packets +
                                                 shard.stats.served_packets),
                             s);
        // FEL operation deltas ride the same shard-owned lane.
        const FutureEventList::Stats fs = shard.fel.stats();
        shard_registry_->add(fel_schedules_id_,
                             static_cast<double>(fs.schedules - shard.fel_last.schedules),
                             s);
        shard_registry_->add(fel_pops_id_,
                             static_cast<double>(fs.pops - shard.fel_last.pops), s);
        shard_registry_->add(
            fel_scans_id_,
            static_cast<double>(fs.bucket_scans - shard.fel_last.bucket_scans), s);
        shard.fel_last = fs;
    }
    // Eager reduction (pipelined): fold this shard's integer payloads into
    // the tree now, concurrently with still-draining shards. Must be the
    // shard task's final action — everything combine_node reads is written
    // above, and the acq_rel pending counters order child writes before the
    // combining thread's reads.
    if (pipelined && shards_.size() > 1) {
        eager_fold_from_shard(s);
    }
}

void ShardedDesSystem::combine_node(std::size_t level, std::size_t i) {
    // Combines node (level, i) from its two children — shards at level 0,
    // level-1 nodes above — or passes an orphan child through at odd widths.
    // The node writes only its own slot and sums integers, so the call order
    // (level-by-level or eager last-child-climbs) is immaterial.
    const std::size_t width = level_width_[level];
    ReduceNode& node = tree_[tree_off_[level] + i];
    const std::size_t a = 2 * i;
    const std::size_t b = a + 1;
    if (level == 0) {
        const Shard& sa = shards_[a];
        if (b < width) {
            const Shard& sb = shards_[b];
            combine_counts(node.counts, node.hi, sa.state_counts, sa.hot_hi,
                           sb.state_counts, sb.hot_hi);
            node.dropped = sa.stats.dropped_packets + sb.stats.dropped_packets;
            node.accepted = sa.stats.accepted_packets + sb.stats.accepted_packets;
            node.served = sa.stats.served_packets + sb.stats.served_packets;
            node.completed = sa.stats.completed_jobs + sb.stats.completed_jobs;
        } else { // odd level width: pass the orphan child through.
            std::copy_n(sa.state_counts.data(), sa.hot_hi, node.counts.data());
            node.hi = sa.hot_hi;
            node.dropped = sa.stats.dropped_packets;
            node.accepted = sa.stats.accepted_packets;
            node.served = sa.stats.served_packets;
            node.completed = sa.stats.completed_jobs;
        }
    } else {
        const ReduceNode* in = tree_.data() + tree_off_[level - 1];
        const ReduceNode& na = in[a];
        if (b < width) {
            const ReduceNode& nb = in[b];
            combine_counts(node.counts, node.hi, na.counts, na.hi, nb.counts, nb.hi);
            node.dropped = na.dropped + nb.dropped;
            node.accepted = na.accepted + nb.accepted;
            node.served = na.served + nb.served;
            node.completed = na.completed + nb.completed;
        } else {
            std::copy_n(na.counts.data(), na.hi, node.counts.data());
            node.hi = na.hi;
            node.dropped = na.dropped;
            node.accepted = na.accepted;
            node.served = na.served;
            node.completed = na.completed;
        }
    }
}

void ShardedDesSystem::fold_tree_levels() {
    // Integer payloads (state counts up to each shard's high-water mark,
    // packet counters) combine through the fixed-shape pairwise tree. Every
    // node writes only its own slot and sums integers, so fanning a level
    // out over the pool cannot perturb results; the size gate below depends
    // only on (K, |Z|), never on the thread count.
    const std::size_t num_z = state_counts_.size();
    for (std::size_t level = 0; level < tree_off_.size(); ++level) {
        const std::size_t next = (level_width_[level] + 1) / 2;
        if (next * num_z >= kMinParallelReduceWork) {
            parallel_for(
                next, [&](std::size_t i) { combine_node(level, i); }, threads_);
        } else {
            for (std::size_t i = 0; i < next; ++i) {
                combine_node(level, i);
            }
        }
    }
}

void ShardedDesSystem::reset_tree_pending() {
    // Serial O(#nodes) re-arm before the shard fan-out; the parallel_for
    // submission provides the happens-before to the shard tasks, so relaxed
    // stores suffice.
    for (std::size_t level = 0; level < tree_off_.size(); ++level) {
        const std::size_t width = level_width_[level];
        const std::size_t next = (width + 1) / 2;
        for (std::size_t i = 0; i < next; ++i) {
            tree_pending_[tree_off_[level] + i].n.store(2 * i + 1 < width ? 2 : 1,
                                                        std::memory_order_relaxed);
        }
    }
}

void ShardedDesSystem::eager_fold_from_shard(std::size_t s) {
    // Arrive at the leaf-level parent; the last child to arrive at each node
    // (acq_rel decrement, so the combiner observes both children's writes)
    // combines it and climbs while it remains last. Exactly one arrival
    // reaches each node per child per epoch, so every node is combined
    // exactly once, inside some shard task — the fan-out join therefore
    // implies the root is folded, and publishes it to the main thread.
    std::size_t level = 0;
    std::size_t i = s / 2;
    while (true) {
        std::atomic<int>& pending = tree_pending_[tree_off_[level] + i].n;
        if (pending.fetch_sub(1, std::memory_order_acq_rel) != 1) {
            return; // a sibling is still running; it will combine this node.
        }
        combine_node(level, i);
        ++level;
        if (level == tree_off_.size()) {
            return; // root combined.
        }
        i /= 2;
    }
}

EpochStats ShardedDesSystem::reduce_epoch() {
    if (shards_.size() > 1) {
        fold_tree_levels();
    }
    return reduce_tail();
}

EpochStats ShardedDesSystem::reduce_tail() {
    EpochStats stats;
    // Root readout: the single shard directly, or the tree root — folded
    // level by level (pipeline off) or eagerly from the shard tasks
    // (pipeline on); identical integer payloads either way.
    std::size_t root_hi;
    if (shards_.size() == 1) {
        const Shard& shard = shards_[0];
        root_hi = shard.hot_hi;
        std::copy_n(shard.state_counts.data(), root_hi, state_counts_.data());
        stats.dropped_packets = shard.stats.dropped_packets;
        stats.accepted_packets = shard.stats.accepted_packets;
        stats.served_packets = shard.stats.served_packets;
        stats.completed_jobs = shard.stats.completed_jobs;
    } else {
        const ReduceNode& root = tree_[tree_off_.back()];
        root_hi = root.hi;
        std::copy_n(root.counts.data(), root_hi, state_counts_.data());
        stats.dropped_packets = root.dropped;
        stats.accepted_packets = root.accepted;
        stats.served_packets = root.served;
        stats.completed_jobs = root.completed;
    }
    // Zero exactly the stale tail left by the previous (possibly taller)
    // histogram; entries at state_hi_ and above are already zero.
    if (state_hi_ > root_hi) {
        std::fill(state_counts_.begin() + static_cast<std::ptrdiff_t>(root_hi),
                  state_counts_.begin() + static_cast<std::ptrdiff_t>(state_hi_), 0);
    }
    state_hi_ = root_hi;

    // The floating-point accumulators keep their fixed serial shard order —
    // part of the determinism contract, and what keeps the golden sharded
    // trajectories bit-exact across this reduction's parallelization.
    double job_area = 0.0;
    double busy_area = 0.0;
    for (const Shard& shard : shards_) {
        stats.mean_sojourn += shard.stats.mean_sojourn;
        job_area += shard.job_area;
        busy_area += shard.busy_area;
    }
    const auto m = static_cast<double>(queues_.size());
    const double m_dt = m * config_.dt;
    stats.drops_per_queue = static_cast<double>(stats.dropped_packets) / m;
    stats.mean_queue_length = job_area / m_dt;
    stats.server_utilization = busy_area / m_dt;
    if (stats.completed_jobs > 0) {
        stats.mean_sojourn /= static_cast<double>(stats.completed_jobs);
    }
    return stats;
}

EpochStats ShardedDesSystem::run_parallel_epoch(Rng& rng) {
    const double epoch_start = epoch_start_time();
    const double epoch_end = epoch_end_time();
    // The lock-free parallel phase: each shard task reads the barrier-phase
    // outputs and touches only its own state. Thread count never changes
    // which shard consumes which draws, only which core runs them.
    const auto t0 = std::chrono::steady_clock::now();
    parallel_for(
        shards_.size(),
        [&](std::size_t s) { run_shard_epoch(s, epoch_start, epoch_end, false); },
        threads_);
    const auto t1 = std::chrono::steady_clock::now();

    EpochStats stats;
    {
        trace::ScopedSpan span(tracer_, "reduction_tree");
        stats = reduce_epoch();
    }
    advance_epoch(rng);
    profile_.parallel_seconds += std::chrono::duration<double>(t1 - t0).count();
    profile_.reduction_seconds += seconds_since(t1);
    ++profile_.epochs;
    ++epochs_run_; // invalidates the merged-quantile cache.
    return stats;
}

EpochStats ShardedDesSystem::step_with_rule(const DecisionRule& h, Rng& rng) {
    if (done()) {
        throw std::logic_error("ShardedDesSystem::step: episode already finished");
    }
    if (!(h.space() == space_)) {
        throw std::invalid_argument("ShardedDesSystem::step: decision rule on wrong tuple space");
    }
    // The pipelined epoch takes over unless a classical router is configured
    // (the legacy rule-with-router combination keeps the historical code
    // path byte for byte).
    if (pipeline_ && !router_.active()) {
        return step_pipelined(nullptr, nullptr, &h, rng);
    }
    const auto t0 = std::chrono::steady_clock::now();
    begin_epoch(h, rng);
    profile_.serial_prologue_seconds += seconds_since(t0);
    return run_parallel_epoch(rng);
}

EpochStats ShardedDesSystem::step_router(Rng& rng) {
    if (!router_.active()) {
        throw std::logic_error(
            "ShardedDesSystem::step_router: no classical router configured");
    }
    if (done()) {
        throw std::logic_error("ShardedDesSystem::step: episode already finished");
    }
    if (pipeline_) {
        return step_pipelined(nullptr, nullptr, nullptr, rng);
    }
    const auto t0 = std::chrono::steady_clock::now();
    begin_epoch_router();
    profile_.serial_prologue_seconds += seconds_since(t0);
    return run_parallel_epoch(rng);
}

EpochStats ShardedDesSystem::step(const UpperLevelPolicy& policy, Rng& rng) {
    if (router_.active()) {
        return step_router(rng);
    }
    // Batched epoch query into persistent buffers: the observation, the
    // policy's cached scratch (e.g. the neural policy's GEMM workspace), and
    // the realized rule are all reused across epochs — the policy query is
    // allocation-free at steady state. Identical draws and rule as the
    // decide() path (decide_into's contract). When the pipeline is on and
    // the query consumes no caller-RNG draws, only the observation build
    // stays here; the query itself rides the overlapped compute task.
    const auto t0 = std::chrono::steady_clock::now();
    UpperLevelPolicy::Scratch* scratch = nullptr;
    const bool offload_query = pipeline_ && !policy.decide_consumes_rng();
    {
        trace::ScopedSpan span(tracer_, "policy_query");
        scratch = scratch_for(policy);
        observed_distribution_into(rng, obs_);
        if (!offload_query) {
            policy.decide_into(obs_, lambda_state(), rng, scratch, rule_);
        }
    }
    profile_.serial_prologue_seconds += seconds_since(t0);
    if (!pipeline_) {
        return step_with_rule(rule_, rng);
    }
    if (done()) {
        throw std::logic_error("ShardedDesSystem::step: episode already finished");
    }
    return offload_query ? step_pipelined(&policy, scratch, nullptr, rng)
                         : step_pipelined(nullptr, nullptr, &rule_, rng);
}

UpperLevelPolicy::Scratch* ShardedDesSystem::scratch_for(const UpperLevelPolicy& policy) {
    // Keyed scratch cache: a linear scan over the handful of policies a
    // caller alternates between (eval-during-train A/B/A), so switching back
    // to an already-seen policy reuses its warm workspace instead of
    // rebuilding it every call. nullptr entries (scratch-free policies) are
    // cached too, so repeated lookups stay allocation-free.
    for (ScratchEntry& entry : policy_scratches_) {
        if (entry.policy == &policy) {
            return entry.scratch.get();
        }
    }
    policy_scratches_.push_back({&policy, policy.make_scratch()});
    return policy_scratches_.back().scratch.get();
}

EpochStats ShardedDesSystem::step_pipelined(const UpperLevelPolicy* policy,
                                            UpperLevelPolicy::Scratch* scratch,
                                            const DecisionRule* h, Rng& rng) {
    const double epoch_start = epoch_start_time();
    const double epoch_end = epoch_end_time();
    const std::size_t m = queues_.size();
    const std::size_t k = shards_.size();
    const double total_rate = static_cast<double>(m) * lambda_value();
    const double inv_m = 1.0 / static_cast<double>(m);

    // ---- Overlapped compute body: every deterministic input of the epoch —
    // the rule (offloaded policy query), the routing table + fold, the
    // prescaled law table or the classical weight law. Runs as a pool task
    // while the main thread sweeps the per-shard FEL retunes. Handing the
    // caller's rng into the task is an exclusive sequential handoff: the
    // main thread does not touch it between launch() and wait(), and the
    // submit/wait pair orders the accesses, so the draw sequence is exactly
    // the serial one (and the offload is gated on !decide_consumes_rng(), so
    // shipped policies draw nothing there anyway).
    const auto t0 = std::chrono::steady_clock::now();
    const bool router_law =
        router_.active() && router_.kind() != RouterKind::RoundRobin;
    const bool dest_law =
        !router_.active() && config_.client_model != ClientModel::PerClient;
    auto body = [&] {
        trace::ScopedSpan span(tracer_, "barrier_overlap");
        if (policy != nullptr) {
            policy->decide_into(obs_, lambda_state(), rng, scratch, rule_);
        }
        if (router_law) {
            router_.epoch_weights(queues_, time(), dest_p_);
        } else if (dest_law) {
            const DecisionRule& rule = policy != nullptr ? rule_ : *h;
            for (std::size_t z = 0; z < hist_.size(); ++z) {
                hist_[z] = inv_m * static_cast<double>(state_counts_[z]);
            }
            compute_routing_table_into(hist_, rule, tuple_, suffix_, g_);
            const std::span<const double> sums =
                fold_routing_table_rows(g_, hist_.size(), config_.d);
            if (config_.client_model == ClientModel::InfiniteClients) {
                // |Z|-sized prescale so the stage-A/B gathers are pure
                // load+add loops over values identical to the materialized
                // inv_m-scaled per-queue law.
                prescale_destination_sums(sums, inv_m, scaled_sums_);
            }
        }
    };
    CompletionToken token;
    const bool have_body = policy != nullptr || router_law || dest_law;
    if (have_body) {
        token.launch(body, threads_);
    }
    // Overlapped with the body: the epoch-boundary FEL retunes (shard-owned,
    // no routing inputs, no RNG) the non-pipelined barrier pays at the head
    // of every shard task.
    parallel_for(
        k, [&](std::size_t s) { shards_[s].fel.retune(); }, threads_);
    token.wait();

    // ---- Stage A: per-shard routing masses from the folded law, fanned out
    // over the pool. InfiniteClients uses the fused gather (the per-queue
    // law is never materialized); Aggregated still writes dest_p_ because
    // its shard multinomials need the per-queue weights.
    if (router_law) {
        parallel_for(
            k,
            [&](std::size_t s) {
                const std::size_t begin = shard_begin_[s];
                const std::size_t n = shard_begin_[s + 1] - begin;
                shard_mass_[s] =
                    vec_sum(std::span<const double>(dest_p_.data() + begin, n));
            },
            threads_);
    } else if (dest_law) {
        if (config_.client_model == ClientModel::InfiniteClients) {
            parallel_for(
                k,
                [&](std::size_t s) {
                    const std::size_t begin = shard_begin_[s];
                    const std::size_t n = shard_begin_[s + 1] - begin;
                    shard_mass_[s] = gather_sum(
                        std::span<const int>(queues_.data() + begin, n), scaled_sums_);
                },
                threads_);
        } else {
            const std::span<const double> sums(g_.data(), hist_.size());
            parallel_for(
                k,
                [&](std::size_t s) {
                    const std::size_t begin = shard_begin_[s];
                    const std::size_t n = shard_begin_[s + 1] - begin;
                    gather_scale(std::span<const int>(queues_.data() + begin, n), sums,
                                 inv_m, std::span<double>(dest_p_.data() + begin, n));
                    shard_mass_[s] =
                        vec_sum(std::span<const double>(dest_p_.data() + begin, n));
                },
                threads_);
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    profile_.overlapped_compute_seconds +=
        std::chrono::duration<double>(t1 - t0).count();

    // ---- Serial prologue: the caller-RNG draws and O(K) bookkeeping that
    // genuinely cannot overlap shard work. Same draw sequence as the
    // non-pipelined begin_epoch / begin_epoch_router.
    {
        trace::ScopedSpan span(tracer_, "barrier_prologue");
        if (router_.active()) {
            if (router_.kind() == RouterKind::RoundRobin) {
                for (Shard& shard : shards_) {
                    shard.arrival_rate = total_rate *
                                         static_cast<double>(shard.end - shard.begin) *
                                         inv_m;
                }
            } else {
                double total = 0.0;
                for (const double mass : shard_mass_) { // fixed K-term order.
                    total += mass;
                }
                for (std::size_t s = 0; s < k; ++s) {
                    shards_[s].arrival_rate =
                        total > 0.0 ? total_rate * shard_mass_[s] / total : 0.0;
                }
            }
        } else {
            switch (config_.client_model) {
            case ClientModel::PerClient: {
                // Literal Algorithm 1 on the snapshot — caller-RNG draws, so
                // never offloaded; the pipelined gain for this model is the
                // retune overlap and the eager reduction.
                const DecisionRule& rule = policy != nullptr ? rule_ : *h;
                sample_per_client_counts(queues_, rule, config_.num_clients, rng,
                                         sampled_, states_, counts_);
                const double total = partition_shard_mass(
                    std::span<const std::uint64_t>(counts_), shard_begin_, shard_mass_);
                for (std::size_t s = 0; s < k; ++s) {
                    shards_[s].arrival_rate =
                        total > 0.0 ? total_rate * shard_mass_[s] / total : 0.0;
                }
                break;
            }
            case ClientModel::Aggregated: {
                double total = 0.0;
                for (const double mass : shard_mass_) { // fixed K-term order.
                    total += mass;
                }
                if (total > 0.0) {
                    rng.multinomial(config_.num_clients, shard_mass_, total,
                                    shard_clients_);
                } else {
                    std::fill(shard_clients_.begin(), shard_clients_.end(), 0);
                }
                const double inv_n = 1.0 / static_cast<double>(config_.num_clients);
                for (std::size_t s = 0; s < k; ++s) {
                    shards_[s].clients = shard_clients_[s];
                    shards_[s].arrival_rate =
                        total_rate * static_cast<double>(shard_clients_[s]) * inv_n;
                }
                break;
            }
            case ClientModel::InfiniteClients: {
                double total = 0.0;
                for (const double mass : shard_mass_) { // fixed K-term order.
                    total += mass;
                }
                for (std::size_t s = 0; s < k; ++s) {
                    shards_[s].arrival_rate =
                        total > 0.0 ? total_rate * shard_mass_[s] / total : 0.0;
                }
                break;
            }
            }
        }
        if (k > 1) {
            reset_tree_pending();
        }
    }
    const auto t2 = std::chrono::steady_clock::now();
    profile_.serial_prologue_seconds += std::chrono::duration<double>(t2 - t1).count();

    // ---- Parallel phase with eager reduction folds.
    parallel_for(
        k, [&](std::size_t s) { run_shard_epoch(s, epoch_start, epoch_end, true); },
        threads_);
    const auto t3 = std::chrono::steady_clock::now();
    profile_.parallel_seconds += std::chrono::duration<double>(t3 - t2).count();

    // ---- Reduction tail: the tree root is already folded (inside whichever
    // shard task arrived last — the fan-out join published it); read it out,
    // run the fixed-order floating-point pass, advance λ.
    EpochStats stats;
    {
        trace::ScopedSpan span(tracer_, "reduction_tree");
        stats = reduce_tail();
    }
    advance_epoch(rng);
    profile_.reduction_seconds += seconds_since(t3);
    ++profile_.epochs;
    ++epochs_run_; // invalidates the merged-quantile cache.
    return stats;
}

DesEpisodeStats ShardedDesSystem::run_episode(const UpperLevelPolicy& policy, Rng& rng) {
    DesEpisodeStats stats;
    static_cast<EpisodeStats&>(stats) =
        run_episode_loop(config_.discount, [&] { return step(policy, rng); });
    stats.sojourn_p50 = sojourn_p50();
    stats.sojourn_p95 = sojourn_p95();
    stats.sojourn_p99 = sojourn_p99();
    return stats;
}

DesEpisodeStats ShardedDesSystem::run_episode(Rng& rng) {
    DesEpisodeStats stats;
    static_cast<EpisodeStats&>(stats) =
        run_episode_loop(config_.discount, [&] { return step_router(rng); });
    stats.sojourn_p50 = sojourn_p50();
    stats.sojourn_p95 = sojourn_p95();
    stats.sojourn_p99 = sojourn_p99();
    return stats;
}

double ShardedDesSystem::merged_quantile(int which) const {
    if (merged_for_ != epochs_run_) {
        // One pass over the shards merges all three percentiles (same
        // per-quantile merge order as the historical per-call loops, so the
        // cached values are identical); re-merged only after a new epoch.
        SojournRecorder merged;
        for (const Shard& shard : shards_) {
            merged.merge(shard.sojourn);
        }
        merged_q_ = {merged.p50(), merged.p95(), merged.p99()};
        merged_for_ = epochs_run_;
    }
    return merged_q_[static_cast<std::size_t>(which)];
}

void ShardedDesSystem::observed_distribution_into(Rng& rng, std::vector<double>& out) const {
    if (config_.histogram_sample_size == 0) {
        histogram_from_counts_into(state_counts_, queues_.size(), out);
        return;
    }
    sampled_histogram_into(queues_, state_counts_.size(), config_.histogram_sample_size, rng,
                           out);
}

} // namespace mflb
