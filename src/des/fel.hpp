/// \file fel.hpp
/// The future-event-list seam of the event-driven backends: one facade over
/// the indexed binary heap (event_queue.hpp) and the calendar queue
/// (calendar_queue.hpp), selected by `FelKind` on `FiniteSystemConfig`.
///
/// Both implementations pop events in the identical (time, id) lexicographic
/// order, so the selection changes cost only — never a single RNG draw.
/// Dispatch is one predictable branch per call (no virtuals on the hot
/// path); only the selected implementation is constructed, so the facade
/// costs no extra per-slot memory.
///
/// The facade also owns the FEL operation counters surfaced through the
/// telemetry layer (`fel_schedules` / `fel_pops` / `fel_bucket_scans`):
/// schedule/pop totals are kind-independent, bucket scans are the calendar's
/// cost proxy (0 on the heap).
#pragma once

#include "des/calendar_queue.hpp"
#include "des/event_queue.hpp"
#include "queueing/finite_system.hpp"

#include <cstdint>
#include <memory>
#include <string_view>

namespace mflb {

/// "heap" / "calendar".
std::string_view fel_kind_name(FelKind kind) noexcept;
/// Inverse of fel_kind_name; throws std::invalid_argument naming the options.
FelKind parse_fel_kind(std::string_view name);

/// Peak event rate of a DES built from `config` over `num_queues` queues —
/// the calendar queue's bucket-width hint: the maximum modulated aggregate
/// arrival rate plus the matched departure flux (bounded by both the
/// arrival flux and the aggregate service capacity). The sharded backend
/// passes each shard's local queue count.
double fel_rate_hint(const FiniteSystemConfig& config, std::size_t num_queues);

/// FEL facade: the `EventQueue` API plus `pop_and_reschedule`, `retune` and
/// the operation counters, dispatched on the configured `FelKind`.
class FutureEventList {
public:
    using Event = EventQueue::Event;

    struct Stats {
        std::uint64_t schedules = 0;
        std::uint64_t pops = 0;
        std::uint64_t bucket_scans = 0; ///< calendar probes; 0 on the heap.
    };

    FutureEventList(FelKind kind, std::size_t capacity, double rate_hint)
        : kind_(kind) {
        if (kind_ == FelKind::Calendar) {
            calendar_ = std::make_unique<CalendarQueue>(capacity, rate_hint);
        } else {
            heap_ = std::make_unique<EventQueue>(capacity);
        }
    }

    FelKind kind() const noexcept { return kind_; }

    std::size_t capacity() const noexcept {
        return kind_ == FelKind::Calendar ? calendar_->capacity() : heap_->capacity();
    }
    std::size_t size() const noexcept {
        return kind_ == FelKind::Calendar ? calendar_->size() : heap_->size();
    }
    bool empty() const noexcept {
        return kind_ == FelKind::Calendar ? calendar_->empty() : heap_->empty();
    }
    bool contains(std::size_t id) const noexcept {
        return kind_ == FelKind::Calendar ? calendar_->contains(id) : heap_->contains(id);
    }
    double time_of(std::size_t id) const {
        return kind_ == FelKind::Calendar ? calendar_->time_of(id) : heap_->time_of(id);
    }

    void schedule(std::size_t id, double time) {
        if (kind_ == FelKind::Calendar) {
            calendar_->schedule(id, time);
        } else {
            ++heap_schedules_;
            heap_->schedule(id, time);
        }
    }
    bool cancel(std::size_t id) noexcept {
        return kind_ == FelKind::Calendar ? calendar_->cancel(id) : heap_->cancel(id);
    }
    Event peek() const {
        return kind_ == FelKind::Calendar ? calendar_->peek() : heap_->peek();
    }
    Event pop() {
        if (kind_ == FelKind::Calendar) {
            return calendar_->pop();
        }
        ++heap_pops_;
        return heap_->pop();
    }
    /// Reschedules the pending slot `id` (typically the just-peeked top) in
    /// one restructuring pass — the arrival slot's fast path on both kinds.
    void pop_and_reschedule(std::size_t id, double time) {
        if (kind_ == FelKind::Calendar) {
            calendar_->pop_and_reschedule(id, time);
        } else {
            ++heap_pops_;
            ++heap_schedules_;
            heap_->pop_and_reschedule(id, time);
        }
    }
    void clear() noexcept {
        if (kind_ == FelKind::Calendar) {
            calendar_->clear();
        } else {
            heap_->clear();
        }
    }
    /// Epoch-barrier re-tuning (day-array growth / width adaptation); no-op
    /// on the heap. Never call from inside the event loop.
    void retune() {
        if (kind_ == FelKind::Calendar) {
            calendar_->retune();
        }
    }

    /// Lifetime operation counters (monotone; survive clear()).
    Stats stats() const noexcept {
        if (kind_ == FelKind::Calendar) {
            return {calendar_->schedules(), calendar_->pops(),
                    calendar_->bucket_scans()};
        }
        return {heap_schedules_, heap_pops_, 0};
    }

private:
    FelKind kind_;
    std::unique_ptr<EventQueue> heap_;
    std::unique_ptr<CalendarQueue> calendar_;
    // The heap predates the counters; count its traffic here so both kinds
    // report comparable fel_* telemetry.
    std::uint64_t heap_schedules_ = 0;
    std::uint64_t heap_pops_ = 0;
};

} // namespace mflb
