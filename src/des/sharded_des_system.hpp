/// \file sharded_des_system.hpp
/// Epoch-barrier-parallel event-driven simulator of the Section 2.1 finite
/// system: the M queues are partitioned into K contiguous shards that run
/// independent event loops in parallel *between* decision epochs and
/// synchronize only at the epoch barrier.
///
/// Why this is exact and not an approximation: the paper's whole premise is
/// that routing decisions are made on Δt-stale information — within a
/// decision epoch every arrival routes on the snapshot frozen at the epoch
/// start, so given the epoch's routing law the M queues evolve as
/// *independent* birth-death processes. Domain decomposition therefore
/// needs no optimistic rollback and no cross-shard event traffic: the only
/// shared state is written at the barrier.
///
/// Arrival-stream sharding (Poisson thinning): the aggregated arrival
/// process of rate M·λ_t with i.i.d. per-job destination law w (client
/// counts for PerClient/Aggregated, the exact per-job destination
/// probabilities of `compute_destination_law_into` for InfiniteClients)
/// splits exactly into K independent Poisson streams — shard s receives
/// rate M·λ_t · W_s / W with W_s its routing mass (`partition_shard_mass`),
/// and each of its arrivals picks a destination inside the shard with the
/// conditional law w_j / W_s (binary search on shard-local prefix sums).
/// For `Aggregated`, the Multinomial(N, p) client counts are drawn
/// hierarchically: shard totals N_s ~ Multinomial(N, P_s) at the barrier,
/// then each shard draws Multinomial(N_s, p_j / P_s) over its own queues
/// from its own stream — the joint law of the per-queue counts is exactly
/// Multinomial(N, p).
///
/// Epoch structure (on `SystemBase`'s clock):
///  1. *Barrier (serial)* — policy query on the observed H_t^M, per-queue
///     routing weights, per-shard masses/rates (and shard client totals),
///     all from the caller's RNG;
///  2. *Parallel phase* — each shard (re)schedules its thinned arrival slot
///     and drains its own `EventQueue` to the epoch end, drawing only from
///     its own `Rng::fork(shard)` stream and touching only its own queue
///     slice — lock-free, no atomics, no cross-shard reads;
///  3. *Barrier (reduction)* — the integer payloads (state counts up to each
///     shard's occupied high-water mark, packet counters) combine through a
///     fixed-shape pairwise tree whose nodes can themselves fan out over the
///     pool, while the few floating-point accumulators (areas, sojourn sums)
///     stay a fixed-order serial pass over the K shards; λ advances.
///
/// Determinism contract: results are a function of (seed, K) only — never
/// of the thread count — because every RNG stream is owned by exactly one
/// shard (or the serial phase), shard work is self-contained, the reduction
/// tree's shape is fixed by K alone (each node writes only its own slot, and
/// its payloads are integers, so the combine order within a level is
/// immaterial), and the floating-point sums keep their fixed serial shard
/// order. tests/test_sharded_des.cpp pins bit-identical episodes across
/// 1/2/8 threads for all three client models, and CI overlap against
/// `DesSystem` (which is itself pinned to `FiniteSystem`).
#pragma once

#include "des/des_system.hpp"
#include "des/fel.hpp"
#include "queueing/finite_system.hpp"
#include "queueing/sojourn.hpp"
#include "queueing/system_base.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace mflb {

/// Sharded event-driven backend; accepts the same `FiniteSystemConfig` as
/// `FiniteSystem`/`DesSystem` plus its `shards` (K, 0 = min(8, M)) and
/// `threads` (parallel workers, 0 = all cores; never affects results).
class ShardedDesSystem : public SystemBase {
public:
    /// Default shard count when `config.shards == 0` (clamped to M). Fixed —
    /// not hardware-derived — so results are machine-independent.
    static constexpr std::size_t kDefaultShards = 8;

    explicit ShardedDesSystem(FiniteSystemConfig config);

    const FiniteSystemConfig& config() const noexcept { return config_; }
    const TupleSpace& tuple_space() const noexcept { return space_; }
    std::size_t num_shards() const noexcept { return shards_.size(); }
    /// Queue index range [first, past-the-end) owned by shard s.
    std::pair<std::size_t, std::size_t> shard_range(std::size_t s) const {
        return {shard_begin_[s], shard_begin_[s + 1]};
    }

    /// Draws initial queue states i.i.d. from ν_0 and samples λ_0 (caller
    /// RNG, same order as the other backends), then forks one independent
    /// stream per shard and seeds each shard's FEL with the departures of
    /// its initially busy queues.
    void reset(Rng& rng);
    /// Like reset but with a fixed λ-state sequence (Theorem 1 conditioning).
    void reset_conditioned(std::vector<std::size_t> lambda_states, Rng& rng);

    /// Empirical distribution H_t^M over Z, eq. (2) — the cross-shard
    /// reduction maintained at the epoch barrier, O(|Z|).
    std::vector<double> empirical_distribution() const;
    /// Exact H_t^M, or a `histogram_sample_size`-queue estimate (§2.1).
    std::vector<double> observed_distribution(Rng& rng) const;

    /// One decision epoch: serial barrier phase, parallel shard event loops,
    /// serial reduction (see file comment).
    EpochStats step_with_rule(const DecisionRule& h, Rng& rng);
    /// One decision epoch under the configured classical router: the weight
    /// law is partitioned into shard masses at the barrier exactly like the
    /// policy path's destination law (round-robin: shard-local cyclic
    /// cursors over shard-size-proportional thinned streams); requires
    /// `config().router.kind != RouterKind::Policy`.
    EpochStats step_router(Rng& rng);
    /// Queries the policy on (observed H_t^M, λ_t) first. With a classical
    /// router configured the policy is ignored (forwards to step_router).
    EpochStats step(const UpperLevelPolicy& policy, Rng& rng);

    /// Full episode from reset state, with cross-shard-merged sojourn
    /// percentiles attached (`P2Quantile::merge` in fixed shard order).
    DesEpisodeStats run_episode(const UpperLevelPolicy& policy, Rng& rng);
    /// Router-only episode (requires a classical router configured).
    DesEpisodeStats run_episode(Rng& rng);

    /// Streaming sojourn percentile estimates so far (track_sojourn only),
    /// merged across shards. One shard pass merges all three percentiles and
    /// is cached per epoch, so reading p50/p95/p99 back to back costs a
    /// single merge instead of three.
    double sojourn_p50() const { return merged_quantile(0); }
    double sojourn_p95() const { return merged_quantile(1); }
    double sojourn_p99() const { return merged_quantile(2); }

    /// Cumulative wall-clock split of the epoch barrier vs the parallel
    /// shard phase since the last reset — the serial-fraction numerator that
    /// `bench_des_scale` reports (Amdahl accounting of the fused barrier).
    struct BarrierProfile {
        double serial_seconds = 0.0;   ///< policy query + barrier phases 1 and 3.
        double parallel_seconds = 0.0; ///< shard event loops (wall clock).
        std::uint64_t epochs = 0;      ///< epochs accumulated.
    };
    const BarrierProfile& barrier_profile() const noexcept { return profile_; }

protected:
    /// Grows the registry's slot lanes to K and registers the per-shard
    /// event counter plus the barrier-profile gauges.
    void on_telemetry_attached() override;
    /// Queue-length summary from the reduced histogram, cross-shard-merged
    /// sojourn percentiles, and the cumulative barrier profile.
    void append_epoch_telemetry(MetricsRow& row) override;

private:
    /// All state one shard touches during the parallel phase. Shards never
    /// read or write each other's `Shard` (nor each other's slices of the
    /// global queue/job arrays), which is what makes the phase lock-free.
    struct Shard {
        std::size_t begin = 0;            ///< first owned queue index.
        std::size_t end = 0;              ///< past-the-end queue index.
        FutureEventList fel;              ///< (end-begin) departures + 1 arrival slot.
        Rng rng{0};                       ///< fork(shard_id) stream, reset-owned.
        std::vector<int> state_counts;    ///< local histogram over Z.
        std::size_t hot_hi = 0;           ///< 1 + highest occupied state index:
                                          ///< state_counts[z] == 0 for z >= hot_hi,
                                          ///< so reductions stop at the high-water
                                          ///< mark instead of walking all of Z.
        std::vector<double> cum;          ///< local destination prefix sums.
        double total_weight = 0.0;        ///< prefix-sum total (= W_s).
        double arrival_rate = 0.0;        ///< thinned Poisson rate M·λ_t·W_s/W.
        std::uint64_t clients = 0;        ///< N_s (Aggregated only).
        std::int64_t total_jobs = 0;      ///< Σ z_j over owned queues.
        std::size_t busy_queues = 0;      ///< #{j owned : z_j > 0}.
        double cursor = 0.0;              ///< last area-integration time.
        double job_area = 0.0;            ///< ∫ Σ z_j dτ within the epoch.
        double busy_area = 0.0;           ///< ∫ #busy dτ within the epoch.
        EpochStats stats;                 ///< this epoch's local counters.
        std::size_t rr_next = 0;          ///< shard-local round-robin cursor.
        SojournRecorder sojourn;          ///< local sojourn percentiles
                                          ///< (track_sojourn only; merged
                                          ///< across shards on demand).
        FutureEventList::Stats fel_last{}; ///< counters at last telemetry publish.

        Shard(FelKind kind, std::size_t num_local_queues, double rate_hint,
              std::size_t num_states)
            : fel(kind, num_local_queues + 1, rate_hint), state_counts(num_states, 0),
              cum(num_local_queues, 0.0) {}

        std::size_t local_arrival_slot() const noexcept { return end - begin; }
    };

    /// Barrier phase 1: routing weights, per-shard masses/rates, shard
    /// client totals — everything the parallel phase consumes read-only.
    void begin_epoch(const DecisionRule& h, Rng& rng);
    /// Shared Aggregated/InfiniteClients barrier piece: realizes the
    /// per-queue destination law (routing table + fold serially, then the
    /// O(M) gather and per-shard `vec_sum` masses fanned out over the pool —
    /// each shard task writes only its own `dest_p_` slice and mass slot)
    /// and returns the total mass as the fixed-order K-term sum,
    /// bit-identical to `partition_shard_mass` over the full law.
    double destination_law_shard_masses(const DecisionRule& h);
    /// Router variant of the barrier phase: weight law → shard masses.
    /// Consumes no RNG draws (the classical weight laws are deterministic
    /// functions of the snapshot).
    void begin_epoch_router();
    /// Parallel shard loops + fixed-order reduction + λ advance — the tail
    /// shared by the policy and router paths.
    EpochStats run_parallel_epoch(Rng& rng);
    /// Parallel phase: shard s's epoch on [epoch_start, epoch_end).
    void run_shard_epoch(std::size_t s, double epoch_start, double epoch_end);
    /// Barrier phase 2: fixed-order reduction into the epoch's EpochStats
    /// and the global state-count histogram.
    EpochStats reduce_epoch();

    void handle_arrival(Shard& shard, double t);
    void handle_departure(Shard& shard, std::size_t local_id, double t);

    /// One service time at queue j from the shard's own stream (see
    /// DesSystem::service_time; identical exponential-homogeneous draws).
    double service_time(std::size_t j, Rng& rng) const noexcept {
        const double s = service_.sample(rng);
        return config_.server_speeds.empty() ? s : s / config_.server_speeds[j];
    }

    double merged_quantile(int which) const;
    /// `observed_distribution` into a reusable buffer (identical draws).
    void observed_distribution_into(Rng& rng, std::vector<double>& out) const;

    /// One node of the pairwise reduction tree. Only integer-exact payloads
    /// travel through the tree (state counts, packet counters) so the combine
    /// order within a level cannot perturb results; `counts` entries at and
    /// above `hi` are stale leftovers from earlier epochs and are never read.
    struct ReduceNode {
        explicit ReduceNode(std::size_t num_states) : counts(num_states, 0) {}
        std::vector<int> counts;
        std::size_t hi = 0;
        std::uint64_t dropped = 0;
        std::uint64_t accepted = 0;
        std::uint64_t served = 0;
        std::uint64_t completed = 0;
    };

    FiniteSystemConfig config_;
    TupleSpace space_;
    EpochRouter router_;
    ServiceDistribution service_;
    std::size_t threads_ = 0;

    std::vector<Shard> shards_;
    std::vector<std::size_t> shard_begin_; ///< K+1 fence posts over [0, M].

    // Fixed-shape pairwise reduction tree over the K shards: level widths
    // K, ⌈K/2⌉, …, 1, flattened into `tree_` with `tree_off_[l]` the offset
    // of level l's first node (empty when K == 1).
    std::vector<ReduceNode> tree_;
    std::vector<std::size_t> tree_off_;
    std::size_t state_hi_ = 0; ///< valid extent of state_counts_; zeros above.

    // Global barrier-phase state.
    std::vector<int> state_counts_;        ///< cross-shard reduction (|Z|).
    std::vector<double> hist_;             ///< H over Z at epoch start.
    std::vector<double> g_;                ///< routing table g[k·|Z| + z].
    std::vector<int> tuple_;               ///< decode buffer (d).
    std::vector<double> suffix_;           ///< suffix products (d + 1).
    std::vector<double> dest_p_;           ///< per-queue destination law (M).
    std::vector<std::uint64_t> counts_;    ///< per-queue client counts (M).
    std::vector<int> sampled_;             ///< PerClient sampled queues (d).
    std::vector<int> states_;              ///< their snapshot states (d).
    std::vector<double> shard_mass_;       ///< per-shard routing mass (K).
    std::vector<std::uint64_t> shard_clients_; ///< per-shard N_s (K).

    // Per-job sojourn tracking (track_sojourn only); jobs_[j] is touched
    // only by the shard owning queue j.
    std::vector<JobTimestamps> jobs_;

    // Epoch-keyed cache of the cross-shard sojourn percentiles: one merge
    // pass fills all three; invalidated by advancing an epoch or resetting.
    std::uint64_t epochs_run_ = 0;
    mutable std::array<double, 3> merged_q_{};
    mutable std::uint64_t merged_for_ = ~std::uint64_t{0};

    BarrierProfile profile_;

    // Telemetry (support/telemetry.hpp). Each shard task feeds the event
    // counter's own slot lane once per epoch (wait-free, no RNG, folded in
    // fixed slot order at the barrier), so enabling metrics never couples
    // shards or perturbs the (seed, K) determinism contract. `tracer_` is
    // null whenever spans are disabled — ScopedSpan then costs one branch.
    trace::Tracer* tracer_ = nullptr;
    MetricsRegistry* shard_registry_ = nullptr;
    MetricsRegistry::Id shard_events_id_ = 0;
    MetricsRegistry::Id barrier_serial_id_ = 0;
    MetricsRegistry::Id barrier_parallel_id_ = 0;
    MetricsRegistry::Id fel_schedules_id_ = 0;
    MetricsRegistry::Id fel_pops_id_ = 0;
    MetricsRegistry::Id fel_scans_id_ = 0;

    // Policy-query hot path: reusable observation / rule buffers plus the
    // policy's opaque scratch (rebuilt when a different policy is passed).
    std::vector<double> obs_;
    DecisionRule rule_;
    std::unique_ptr<UpperLevelPolicy::Scratch> policy_scratch_;
    const UpperLevelPolicy* scratch_policy_ = nullptr;
};

} // namespace mflb
