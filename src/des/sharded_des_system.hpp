/// \file sharded_des_system.hpp
/// Epoch-barrier-parallel event-driven simulator of the Section 2.1 finite
/// system: the M queues are partitioned into K contiguous shards that run
/// independent event loops in parallel *between* decision epochs and
/// synchronize only at the epoch barrier.
///
/// Why this is exact and not an approximation: the paper's whole premise is
/// that routing decisions are made on Δt-stale information — within a
/// decision epoch every arrival routes on the snapshot frozen at the epoch
/// start, so given the epoch's routing law the M queues evolve as
/// *independent* birth-death processes. Domain decomposition therefore
/// needs no optimistic rollback and no cross-shard event traffic: the only
/// shared state is written at the barrier.
///
/// Arrival-stream sharding (Poisson thinning): the aggregated arrival
/// process of rate M·λ_t with i.i.d. per-job destination law w (client
/// counts for PerClient/Aggregated, the exact per-job destination
/// probabilities of `compute_destination_law_into` for InfiniteClients)
/// splits exactly into K independent Poisson streams — shard s receives
/// rate M·λ_t · W_s / W with W_s its routing mass (`partition_shard_mass`),
/// and each of its arrivals picks a destination inside the shard with the
/// conditional law w_j / W_s (binary search on shard-local prefix sums).
/// For `Aggregated`, the Multinomial(N, p) client counts are drawn
/// hierarchically: shard totals N_s ~ Multinomial(N, P_s) at the barrier,
/// then each shard draws Multinomial(N_s, p_j / P_s) over its own queues
/// from its own stream — the joint law of the per-queue counts is exactly
/// Multinomial(N, p).
///
/// Epoch structure (on `SystemBase`'s clock):
///  1. *Barrier (serial)* — policy query on the observed H_t^M, per-queue
///     routing weights, per-shard masses/rates (and shard client totals),
///     all from the caller's RNG;
///  2. *Parallel phase* — each shard (re)schedules its thinned arrival slot
///     and drains its own `EventQueue` to the epoch end, drawing only from
///     its own `Rng::fork(shard)` stream and touching only its own queue
///     slice — lock-free, no atomics, no cross-shard reads;
///  3. *Barrier (reduction)* — the integer payloads (state counts up to each
///     shard's occupied high-water mark, packet counters) combine through a
///     fixed-shape pairwise tree whose nodes can themselves fan out over the
///     pool, while the few floating-point accumulators (areas, sojourn sums)
///     stay a fixed-order serial pass over the K shards; λ advances.
///
/// Overlapped pipeline (`config.pipeline`, default on; see the
/// "Pipelined barrier" section of docs/ARCHITECTURE.md): the barrier is
/// restructured so only the caller-RNG draws and the O(K) bookkeeping stay
/// serial. The deterministic barrier compute (policy GEMM query, routing
/// table + fold) runs as a pool task overlapped with the per-shard FEL
/// retunes; the O(M) destination-law work uses fused gather kernels against
/// a prescaled per-state table (never materializing the per-queue law for
/// InfiniteClients); and each shard folds its integer payloads into the
/// reduction tree the moment its event loop finishes (eager reduction —
/// atomic pending counters pick the last-arriving child to combine each
/// node, which is order-immaterial because only integers travel through the
/// tree). Bit-identical to the non-pipelined barrier by construction; the
/// seam exists for A/B benching and bisection.
///
/// Determinism contract: results are a function of (seed, K) only — never
/// of the thread count — because every RNG stream is owned by exactly one
/// shard (or the serial phase), shard work is self-contained, the reduction
/// tree's shape is fixed by K alone (each node writes only its own slot, and
/// its payloads are integers, so the combine order within a level is
/// immaterial), and the floating-point sums keep their fixed serial shard
/// order. tests/test_sharded_des.cpp pins bit-identical episodes across
/// 1/2/8 threads for all three client models, and CI overlap against
/// `DesSystem` (which is itself pinned to `FiniteSystem`).
#pragma once

#include "des/des_system.hpp"
#include "des/fel.hpp"
#include "queueing/finite_system.hpp"
#include "queueing/sojourn.hpp"
#include "queueing/system_base.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace mflb {

/// Sharded event-driven backend; accepts the same `FiniteSystemConfig` as
/// `FiniteSystem`/`DesSystem` plus its `shards` (K, 0 = min(8, M)) and
/// `threads` (parallel workers, 0 = all cores; never affects results).
class ShardedDesSystem : public SystemBase {
public:
    /// Default shard count when `config.shards == 0` (clamped to M). Fixed —
    /// not hardware-derived — so results are machine-independent.
    static constexpr std::size_t kDefaultShards = 8;

    explicit ShardedDesSystem(FiniteSystemConfig config);

    const FiniteSystemConfig& config() const noexcept { return config_; }
    const TupleSpace& tuple_space() const noexcept { return space_; }
    std::size_t num_shards() const noexcept { return shards_.size(); }
    /// Queue index range [first, past-the-end) owned by shard s.
    std::pair<std::size_t, std::size_t> shard_range(std::size_t s) const {
        return {shard_begin_[s], shard_begin_[s + 1]};
    }

    /// Draws initial queue states i.i.d. from ν_0 and samples λ_0 (caller
    /// RNG, same order as the other backends), then forks one independent
    /// stream per shard and seeds each shard's FEL with the departures of
    /// its initially busy queues.
    void reset(Rng& rng);
    /// Like reset but with a fixed λ-state sequence (Theorem 1 conditioning).
    void reset_conditioned(std::vector<std::size_t> lambda_states, Rng& rng);

    /// Empirical distribution H_t^M over Z, eq. (2) — the cross-shard
    /// reduction maintained at the epoch barrier, O(|Z|).
    std::vector<double> empirical_distribution() const;
    /// Exact H_t^M, or a `histogram_sample_size`-queue estimate (§2.1).
    std::vector<double> observed_distribution(Rng& rng) const;

    /// One decision epoch: serial barrier phase, parallel shard event loops,
    /// serial reduction (see file comment).
    EpochStats step_with_rule(const DecisionRule& h, Rng& rng);
    /// One decision epoch under the configured classical router: the weight
    /// law is partitioned into shard masses at the barrier exactly like the
    /// policy path's destination law (round-robin: shard-local cyclic
    /// cursors over shard-size-proportional thinned streams); requires
    /// `config().router.kind != RouterKind::Policy`.
    EpochStats step_router(Rng& rng);
    /// Queries the policy on (observed H_t^M, λ_t) first. With a classical
    /// router configured the policy is ignored (forwards to step_router).
    EpochStats step(const UpperLevelPolicy& policy, Rng& rng);

    /// Full episode from reset state, with cross-shard-merged sojourn
    /// percentiles attached (`P2Quantile::merge` in fixed shard order).
    DesEpisodeStats run_episode(const UpperLevelPolicy& policy, Rng& rng);
    /// Router-only episode (requires a classical router configured).
    DesEpisodeStats run_episode(Rng& rng);

    /// Streaming sojourn percentile estimates so far (track_sojourn only),
    /// merged across shards. One shard pass merges all three percentiles and
    /// is cached per epoch, so reading p50/p95/p99 back to back costs a
    /// single merge instead of three.
    double sojourn_p50() const { return merged_quantile(0); }
    double sojourn_p95() const { return merged_quantile(1); }
    double sojourn_p99() const { return merged_quantile(2); }

    /// Cumulative wall-clock split of the epoch since the last reset — the
    /// Amdahl accounting that `bench_des_scale` reports. Four components:
    /// the irreducibly serial prologue (caller-RNG draws + O(K) rate/tree
    /// bookkeeping), the overlappable deterministic compute (policy query,
    /// routing table/fold, per-shard mass fan-out — a pool task plus
    /// parallel_for work in pipelined mode, folded into the prologue when
    /// the pipeline is off), the reduction tail (root readout + fixed-order
    /// floating-point pass + λ advance), and the parallel shard event loops.
    /// The serial fraction is serial_seconds() / total_seconds(): prologue
    /// and reduction are the phases that cannot overlap shard work.
    struct BarrierProfile {
        double serial_prologue_seconds = 0.0;    ///< RNG draws + O(K) bookkeeping
                                                 ///< (pipeline off: the whole
                                                 ///< pre-parallel barrier).
        double overlapped_compute_seconds = 0.0; ///< deterministic barrier compute
                                                 ///< (0 when the pipeline is off).
        double reduction_seconds = 0.0;          ///< reduction tail + λ advance.
        double parallel_seconds = 0.0;           ///< shard event loops (wall clock).
        std::uint64_t epochs = 0;                ///< epochs accumulated.

        double serial_seconds() const noexcept {
            return serial_prologue_seconds + reduction_seconds;
        }
        double total_seconds() const noexcept {
            return serial_prologue_seconds + overlapped_compute_seconds +
                   reduction_seconds + parallel_seconds;
        }
    };
    const BarrierProfile& barrier_profile() const noexcept { return profile_; }

protected:
    /// Grows the registry's slot lanes to K and registers the per-shard
    /// event counter plus the barrier-profile gauges.
    void on_telemetry_attached() override;
    /// Queue-length summary from the reduced histogram, cross-shard-merged
    /// sojourn percentiles, and the cumulative barrier profile.
    void append_epoch_telemetry(MetricsRow& row) override;

private:
    /// All state one shard touches during the parallel phase. Shards never
    /// read or write each other's `Shard` (nor each other's slices of the
    /// global queue/job arrays), which is what makes the phase lock-free.
    struct Shard {
        std::size_t begin = 0;            ///< first owned queue index.
        std::size_t end = 0;              ///< past-the-end queue index.
        FutureEventList fel;              ///< (end-begin) departures + 1 arrival slot.
        Rng rng{0};                       ///< fork(shard_id) stream, reset-owned.
        std::vector<int> state_counts;    ///< local histogram over Z.
        std::size_t hot_hi = 0;           ///< 1 + highest occupied state index:
                                          ///< state_counts[z] == 0 for z >= hot_hi,
                                          ///< so reductions stop at the high-water
                                          ///< mark instead of walking all of Z.
        std::vector<double> cum;          ///< local destination prefix sums.
        double total_weight = 0.0;        ///< prefix-sum total (= W_s).
        double arrival_rate = 0.0;        ///< thinned Poisson rate M·λ_t·W_s/W.
        std::uint64_t clients = 0;        ///< N_s (Aggregated only).
        std::int64_t total_jobs = 0;      ///< Σ z_j over owned queues.
        std::size_t busy_queues = 0;      ///< #{j owned : z_j > 0}.
        double cursor = 0.0;              ///< last area-integration time.
        double job_area = 0.0;            ///< ∫ Σ z_j dτ within the epoch.
        double busy_area = 0.0;           ///< ∫ #busy dτ within the epoch.
        EpochStats stats;                 ///< this epoch's local counters.
        std::size_t rr_next = 0;          ///< shard-local round-robin cursor.
        SojournRecorder sojourn;          ///< local sojourn percentiles
                                          ///< (track_sojourn only; merged
                                          ///< across shards on demand).
        FutureEventList::Stats fel_last{}; ///< counters at last telemetry publish.

        Shard(FelKind kind, std::size_t num_local_queues, double rate_hint,
              std::size_t num_states)
            : fel(kind, num_local_queues + 1, rate_hint), state_counts(num_states, 0),
              cum(num_local_queues, 0.0) {}

        std::size_t local_arrival_slot() const noexcept { return end - begin; }
    };

    /// Barrier phase 1: routing weights, per-shard masses/rates, shard
    /// client totals — everything the parallel phase consumes read-only.
    void begin_epoch(const DecisionRule& h, Rng& rng);
    /// Shared Aggregated/InfiniteClients barrier piece: realizes the
    /// per-queue destination law (routing table + fold serially, then the
    /// O(M) gather and per-shard `vec_sum` masses fanned out over the pool —
    /// each shard task writes only its own `dest_p_` slice and mass slot)
    /// and returns the total mass as the fixed-order K-term sum,
    /// bit-identical to `partition_shard_mass` over the full law.
    double destination_law_shard_masses(const DecisionRule& h);
    /// Router variant of the barrier phase: weight law → shard masses.
    /// Consumes no RNG draws (the classical weight laws are deterministic
    /// functions of the snapshot).
    void begin_epoch_router();
    /// Parallel shard loops + fixed-order reduction + λ advance — the tail
    /// shared by the policy and router paths.
    EpochStats run_parallel_epoch(Rng& rng);
    /// Parallel phase: shard s's epoch on [epoch_start, epoch_end).
    /// `pipelined` selects the overlapped-barrier variant: the FEL retune is
    /// already done, InfiniteClients prefix sums come from the fused gather
    /// against the prescaled table, and the shard folds eagerly into the
    /// reduction tree when its loop finishes.
    void run_shard_epoch(std::size_t s, double epoch_start, double epoch_end,
                         bool pipelined);
    /// Barrier phase 2: fixed-order reduction into the epoch's EpochStats
    /// and the global state-count histogram (non-pipelined: folds the tree
    /// level by level first).
    EpochStats reduce_epoch();
    /// Folds the pairwise tree level by level (non-pipelined path; the
    /// pipelined path folds eagerly from the shard tasks instead).
    void fold_tree_levels();
    /// Combines tree node (level, i) from its children (shards at level 0).
    /// Writes only the node's own slot; integer payloads, so the call order
    /// within a level — and eager vs level-by-level folding — is immaterial.
    void combine_node(std::size_t level, std::size_t i);
    /// Reduction tail shared by both paths: reads the folded root (or the
    /// single shard), zeroes the stale histogram tail, runs the fixed-order
    /// floating-point pass, and finalizes the epoch stats.
    EpochStats reduce_tail();
    /// Eager reduction: shard s's task arrives at its leaf-level parent; the
    /// last child to arrive (atomic pending counter) combines the node and
    /// climbs while it remains last. All folding happens inside shard tasks,
    /// so the parallel_for join implies tree completion.
    void eager_fold_from_shard(std::size_t s);
    /// Re-arms the eager-fold pending counters (child counts) for an epoch.
    void reset_tree_pending();
    /// One overlapped-pipeline epoch (`config.pipeline`). Exactly one of
    /// {policy, h} is non-null for the policy/rule paths; both null means
    /// the classical-router path. `policy` non-null offloads the (RNG-free)
    /// epoch query to the compute task; rng-consuming policies are queried
    /// by the caller first and come in through `h`.
    EpochStats step_pipelined(const UpperLevelPolicy* policy,
                              UpperLevelPolicy::Scratch* scratch, const DecisionRule* h,
                              Rng& rng);
    /// Cached per-policy scratch, keyed by policy identity so alternating
    /// policies (eval-during-train A/B/A) reuse both workspaces instead of
    /// rebuilding on every switch. Entries live until reset().
    UpperLevelPolicy::Scratch* scratch_for(const UpperLevelPolicy& policy);

    void handle_arrival(Shard& shard, double t);
    void handle_departure(Shard& shard, std::size_t local_id, double t);

    /// One service time at queue j from the shard's own stream (see
    /// DesSystem::service_time; identical exponential-homogeneous draws).
    double service_time(std::size_t j, Rng& rng) const noexcept {
        const double s = service_.sample(rng);
        return config_.server_speeds.empty() ? s : s / config_.server_speeds[j];
    }

    double merged_quantile(int which) const;
    /// `observed_distribution` into a reusable buffer (identical draws).
    void observed_distribution_into(Rng& rng, std::vector<double>& out) const;

    /// One node of the pairwise reduction tree. Only integer-exact payloads
    /// travel through the tree (state counts, packet counters) so the combine
    /// order within a level cannot perturb results; `counts` entries at and
    /// above `hi` are stale leftovers from earlier epochs and are never read.
    struct ReduceNode {
        explicit ReduceNode(std::size_t num_states) : counts(num_states, 0) {}
        std::vector<int> counts;
        std::size_t hi = 0;
        std::uint64_t dropped = 0;
        std::uint64_t accepted = 0;
        std::uint64_t served = 0;
        std::uint64_t completed = 0;
    };

    FiniteSystemConfig config_;
    TupleSpace space_;
    EpochRouter router_;
    ServiceDistribution service_;
    std::size_t threads_ = 0;
    bool pipeline_ = true;

    std::vector<Shard> shards_;
    std::vector<std::size_t> shard_begin_; ///< K+1 fence posts over [0, M].

    // Fixed-shape pairwise reduction tree over the K shards: level widths
    // K, ⌈K/2⌉, …, 1, flattened into `tree_` with `tree_off_[l]` the offset
    // of level l's first node (empty when K == 1). `level_width_[l]` is the
    // *input* width of level l (K, then ⌈K/2⌉, …). For the eager pipelined
    // fold each node carries a cache-line-padded pending counter, re-armed
    // to its child count every epoch; the counters live in their own array
    // because atomics are not movable and two adjacent nodes' counters must
    // not false-share.
    std::vector<ReduceNode> tree_;
    std::vector<std::size_t> tree_off_;
    std::vector<std::size_t> level_width_;
    struct alignas(64) PendingCount {
        std::atomic<int> n{0};
    };
    std::vector<PendingCount> tree_pending_;
    std::size_t state_hi_ = 0; ///< valid extent of state_counts_; zeros above.

    // Global barrier-phase state.
    std::vector<int> state_counts_;        ///< cross-shard reduction (|Z|).
    std::vector<double> hist_;             ///< H over Z at epoch start.
    std::vector<double> g_;                ///< routing table g[k·|Z| + z].
    std::vector<int> tuple_;               ///< decode buffer (d).
    std::vector<double> suffix_;           ///< suffix products (d + 1).
    std::vector<double> dest_p_;           ///< per-queue destination law (M).
    std::vector<double> scaled_sums_;      ///< (1/M)·folded routing sums (|Z|) —
                                           ///< the prescaled gather table of the
                                           ///< pipelined InfiniteClients path.
    std::vector<std::uint64_t> counts_;    ///< per-queue client counts (M).
    std::vector<int> sampled_;             ///< PerClient sampled queues (d).
    std::vector<int> states_;              ///< their snapshot states (d).
    std::vector<double> shard_mass_;       ///< per-shard routing mass (K).
    std::vector<std::uint64_t> shard_clients_; ///< per-shard N_s (K).

    // Per-job sojourn tracking (track_sojourn only); jobs_[j] is touched
    // only by the shard owning queue j.
    std::vector<JobTimestamps> jobs_;

    // Epoch-keyed cache of the cross-shard sojourn percentiles: one merge
    // pass fills all three; invalidated by advancing an epoch or resetting.
    std::uint64_t epochs_run_ = 0;
    mutable std::array<double, 3> merged_q_{};
    mutable std::uint64_t merged_for_ = ~std::uint64_t{0};

    BarrierProfile profile_;

    // Telemetry (support/telemetry.hpp). Each shard task feeds the event
    // counter's own slot lane once per epoch (wait-free, no RNG, folded in
    // fixed slot order at the barrier), so enabling metrics never couples
    // shards or perturbs the (seed, K) determinism contract. `tracer_` is
    // null whenever spans are disabled — ScopedSpan then costs one branch.
    trace::Tracer* tracer_ = nullptr;
    MetricsRegistry* shard_registry_ = nullptr;
    MetricsRegistry::Id shard_events_id_ = 0;
    MetricsRegistry::Id barrier_prologue_id_ = 0;
    MetricsRegistry::Id barrier_overlap_id_ = 0;
    MetricsRegistry::Id barrier_reduce_id_ = 0;
    MetricsRegistry::Id barrier_parallel_id_ = 0;
    MetricsRegistry::Id fel_schedules_id_ = 0;
    MetricsRegistry::Id fel_pops_id_ = 0;
    MetricsRegistry::Id fel_scans_id_ = 0;

    // Policy-query hot path: reusable observation / rule buffers plus a
    // per-policy scratch cache keyed by policy identity (a linear scan over
    // the handful of policies a caller alternates between), so the A/B/A
    // eval-during-train pattern reuses both GEMM workspaces instead of
    // thrashing them. Entries are dropped on reset(); callers must not
    // destroy a policy mid-episode (same lifetime rule as before).
    std::vector<double> obs_;
    DecisionRule rule_;
    struct ScratchEntry {
        const UpperLevelPolicy* policy = nullptr;
        std::unique_ptr<UpperLevelPolicy::Scratch> scratch;
    };
    std::vector<ScratchEntry> policy_scratches_;
};

} // namespace mflb
