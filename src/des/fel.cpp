#include "des/fel.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mflb {

std::string_view fel_kind_name(FelKind kind) noexcept {
    switch (kind) {
    case FelKind::Heap:
        return "heap";
    case FelKind::Calendar:
        break;
    }
    return "calendar";
}

FelKind parse_fel_kind(std::string_view name) {
    if (name == "heap") {
        return FelKind::Heap;
    }
    if (name == "calendar") {
        return FelKind::Calendar;
    }
    throw std::invalid_argument("unknown FEL kind '" + std::string(name) +
                                "'; expected 'heap' or 'calendar'");
}

double fel_rate_hint(const FiniteSystemConfig& config, std::size_t num_queues) {
    double peak_lambda = 0.0;
    for (std::size_t s = 0; s < config.arrivals.num_states(); ++s) {
        peak_lambda = std::max(peak_lambda, config.arrivals.level(s));
    }
    const auto m = static_cast<double>(num_queues);
    const double arrivals = m * peak_lambda;
    // Departure flux can exceed neither the accepted-arrival flux nor the
    // aggregate service capacity (retune() absorbs any residual mismatch).
    const double departures = std::min(arrivals, m * config.queue.service_rate);
    return arrivals + departures;
}

} // namespace mflb
