/// \file event_queue.hpp
/// Future event list (FEL) of the discrete-event simulation engine: an
/// *indexed* binary min-heap of (time, slot id) pairs. Indexing by a dense
/// slot id — one slot per schedulable event source, e.g. one per queue plus
/// one for the aggregated arrival stream — gives O(log n) scheduling,
/// rescheduling (the DES reschedules the arrival stream at every decision
/// epoch when the modulated rate λ_t and the routing change) and O(log n)
/// cancellation, all with zero heap allocations after construction: every
/// buffer is sized by the fixed slot capacity up front, per the workspace
/// invariants in docs/ARCHITECTURE.md.
///
/// Determinism: ties are broken by slot id, so the event order — and hence
/// every downstream RNG draw — is reproducible across platforms.
#pragma once

#include <cstddef>
#include <vector>

namespace mflb {

/// Indexed binary min-heap keyed by event time; one entry per slot id.
class EventQueue {
public:
    struct Event {
        double time = 0.0;
        std::size_t id = 0;
    };

    /// \param capacity number of event slots (valid ids are 0..capacity-1).
    explicit EventQueue(std::size_t capacity);

    std::size_t capacity() const noexcept { return pos_.size(); }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    /// True if slot `id` currently has a pending event.
    bool contains(std::size_t id) const noexcept {
        return id < pos_.size() && pos_[id] != kAbsent;
    }
    /// Scheduled time of slot `id`; throws std::logic_error if absent.
    double time_of(std::size_t id) const;

    /// Schedules (or, if already pending, *reschedules*) slot `id` at `time`.
    /// Throws std::invalid_argument on an out-of-range id.
    void schedule(std::size_t id, double time);

    /// Removes the pending event of slot `id`; returns false if none.
    bool cancel(std::size_t id) noexcept;

    /// Reschedules the *pending* slot `id` at `time` — the arrival slot's
    /// pop-then-reschedule pattern collapsed into a single sift. When `id`
    /// is at the root (the common case: it was just peeked as the minimum)
    /// this is one sift-down from the root instead of remove_at(0) plus a
    /// fresh insert. Throws std::logic_error if the slot has no pending
    /// event.
    void pop_and_reschedule(std::size_t id, double time);

    /// Earliest pending event; throws std::logic_error when empty.
    Event peek() const;
    /// Removes and returns the earliest pending event.
    Event pop();

    /// Drops every pending event (capacity is unchanged).
    void clear() noexcept;

private:
    static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

    /// (time, id) lexicographic order: deterministic across tie-breaks.
    static bool before(const Event& a, const Event& b) noexcept {
        return a.time < b.time || (a.time == b.time && a.id < b.id);
    }

    void sift_up(std::size_t i) noexcept;
    void sift_down(std::size_t i) noexcept;
    void remove_at(std::size_t i) noexcept;

    std::vector<Event> heap_;      ///< first size_ entries form the heap.
    std::vector<std::size_t> pos_; ///< id -> heap index (kAbsent if none).
    std::size_t size_ = 0;
};

} // namespace mflb
