/// \file calendar_queue.hpp
/// Calendar-queue future event list (Brown 1988): the amortized-O(1)
/// alternative to the indexed binary heap of event_queue.hpp, behind the
/// same indexed-by-slot-id API. Pending events hash into a power-of-two
/// "day" array by virtual bucket index ⌊time / width⌋; each bucket chains
/// its events in exact `(time, id)` lexicographic order through intrusive
/// doubly-linked lists over preallocated per-slot nodes, so every
/// operation is allocation-free after construction.
///
/// Determinism contract (what makes this a drop-in replacement rather than
/// an approximation): buckets partition the time axis and are kept sorted,
/// so the pop sequence is *exactly* the `(time, id)` total order of the
/// pending set — bit-identical to `EventQueue`, hence every downstream RNG
/// draw of the DES backends is unchanged. Pinned by
/// tests/test_calendar_queue.cpp (differential fuzz + golden episodes).
///
/// Complexity: `schedule` inserts into one bucket (O(1) expected at ~1
/// event per bucket); `pop` scans forward from the current virtual bucket
/// until it meets the next event (O(1) expected when the bucket width
/// matches the event spacing); `cancel` unlinks in O(1). A full-cycle scan
/// miss (all pending events more than `nbuckets · width` ahead) falls back
/// to a direct min-scan over the bucket heads and re-anchors the cursor —
/// rare by construction, counted by `bucket_scans()`.
///
/// Memory layout (the constant factor that decides heap-vs-calendar at
/// 10^5+ pending events): one 16-byte node per slot — the pending time and
/// two 32-bit chain links; a slot's bucket is *recomputed* from its time
/// rather than stored, so a hot-path slot touch is one cache line. The day
/// array is 32-bit heads plus a 1-bit-per-bucket occupancy bitmap that
/// min-searches scan with countr_zero instead of probing empty heads.
///
/// Tuning: the width starts at 1 / rate_hint (the configured peak event
/// rate of the DES: aggregated arrivals plus matched departures) and the
/// day array at a small power of two. `retune()` — called by the DES
/// backends only at the epoch barrier — grows the day array against the
/// pending-event high-water mark and nudges the width by powers of two
/// when the observed probe/insert-step counters show buckets too fine or
/// too coarse. Both decisions are pure functions of the event history, so
/// the (seed, shards) determinism contract of the sharded backend is
/// preserved; rebuilds allocate at most once per growth step, never inside
/// the event loop.
#pragma once

#include "des/event_queue.hpp"

#include <cstdint>
#include <vector>

namespace mflb {

/// Calendar-queue FEL; one pending event per slot id, same API and event
/// ordering as `EventQueue`.
class CalendarQueue {
public:
    using Event = EventQueue::Event;

    /// \param capacity  number of event slots (valid ids are 0..capacity-1;
    ///                  at most 2^32 - 2, the 32-bit node link range).
    /// \param rate_hint expected events per unit time; sets the initial
    ///                  bucket width to its reciprocal (non-finite or
    ///                  non-positive hints fall back to width 1).
    explicit CalendarQueue(std::size_t capacity, double rate_hint = 0.0);

    std::size_t capacity() const noexcept { return nodes_.size(); }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    /// True if slot `id` currently has a pending event.
    bool contains(std::size_t id) const noexcept {
        return id < nodes_.size() && nodes_[id].prev != kFree;
    }
    /// Scheduled time of slot `id`; throws std::logic_error if absent.
    double time_of(std::size_t id) const;

    /// Schedules (or, if already pending, *reschedules*) slot `id` at `time`.
    /// Throws std::invalid_argument on an out-of-range id.
    void schedule(std::size_t id, double time);

    /// Removes the pending event of slot `id`; returns false if none.
    bool cancel(std::size_t id) noexcept;

    /// Earliest pending event; throws std::logic_error when empty.
    Event peek() const;
    /// Removes and returns the earliest pending event.
    Event pop();

    /// Reschedules the *pending* slot `id` at `time` — the arrival slot's
    /// pop-then-reschedule pattern collapsed into one bucket relocation.
    /// Counts as one pop plus one schedule. Throws std::logic_error if the
    /// slot has no pending event.
    void pop_and_reschedule(std::size_t id, double time);

    /// Drops every pending event (capacity and tuning are unchanged).
    void clear() noexcept;

    /// Epoch-barrier re-tuning: grow the day array against the pending-set
    /// high-water mark and adapt the bucket width from the probe counters
    /// observed since the last call (see file comment). May allocate (day
    /// array growth); never call from inside the event loop.
    void retune();

    /// Lifetime operation counters (monotone; survive clear()).
    std::uint64_t schedules() const noexcept { return schedules_; }
    std::uint64_t pops() const noexcept { return pops_; }
    /// Bucket-head probes performed by min-searches — the calendar's cost
    /// proxy: ~1 per pop when the width matches the event spacing.
    std::uint64_t bucket_scans() const noexcept { return scans_; }

    std::size_t num_buckets() const noexcept { return head_.size(); }
    double bucket_width() const noexcept { return width_; }

private:
    /// 32-bit intrusive links: kNil terminates a chain; kFree in `prev`
    /// marks a slot with no pending event (a head's prev is kNil).
    using Idx = std::uint32_t;
    static constexpr Idx kNil = 0xFFFFFFFFu;
    static constexpr Idx kFree = 0xFFFFFFFEu;
    /// Virtual-index clamp: exactly representable in double and int64, so
    /// far-future events saturate into one shared (still sorted) bucket
    /// instead of overflowing the index arithmetic.
    static constexpr double kMaxVirtual = 4.5e15;

    static bool before(double ta, std::size_t ia, double tb, std::size_t ib) noexcept {
        return ta < tb || (ta == tb && ia < ib);
    }

    /// Virtual bucket index ⌊time / width⌋, clamped to ±kMaxVirtual. The
    /// same function maps events at insert and probes at pop, so the two
    /// can never disagree about a bucket boundary.
    std::int64_t vindex(double time) const noexcept;
    /// Physical bucket of a pending slot — recomputed from its time (the
    /// width only changes at rebuild(), which relinks every event).
    std::size_t bucket_of(double time) const noexcept {
        return static_cast<std::size_t>(vindex(time)) & mask_;
    }

    /// Links `id` (with nodes_[id].time already set) into its bucket in
    /// (time, id) order and maintains the cursor lower bound; no counters.
    void link(Idx id) noexcept;
    /// Unlinks a pending `id` from its bucket; no counters.
    void unlink(Idx id) noexcept;
    /// Establishes the cached minimum (`min_*`); requires size_ > 0.
    void ensure_min() const noexcept;
    /// Min-cache maintenance for a (re)scheduled event.
    void touch_min(std::size_t id, double time) noexcept {
        if (!min_valid_) {
            return;
        }
        if (id == min_id_) {
            min_valid_ = false; // its key moved; rediscover lazily.
        } else if (before(time, id, min_time_, min_id_)) {
            min_time_ = time;
            min_id_ = id;
            min_anchored_ = false; // cur_v_ may trail the new minimum.
        }
    }
    /// Rebuilds every bucket chain under (nbuckets, width); reuses scratch_.
    void rebuild(std::size_t new_buckets, double new_width);

    // Per-slot intrusive storage (capacity-sized, fixed after construction).
    // 16 bytes, never straddling a cache line: the hot path touches one
    // line per slot where separate time/next/prev/bucket arrays touch four.
    struct Node {
        double time = 0.0; ///< pending time (valid iff prev != kFree).
        Idx next = kNil;   ///< in-bucket chain, (time, id)-sorted.
        Idx prev = kFree;  ///< kNil at the head; kFree when not pending.
    };
    static_assert(sizeof(Node) == 16);
    std::vector<Node> nodes_;

    // Day array: head_[b] = first (minimum) event of bucket b or kNil.
    std::vector<Idx> head_;
    /// Occupancy bitmap over the day array (bit b set iff head_[b] != kNil):
    /// min-searches skip runs of empty buckets with countr_zero over words
    /// that stay L1/L2-resident where the head array does not.
    std::vector<std::uint64_t> occ_;
    std::size_t mask_ = 0;       ///< head_.size() - 1 (power of two).
    std::size_t max_buckets_ = 0;///< growth ceiling ≈ 2 · capacity.
    double width_ = 1.0;
    double inv_width_ = 1.0;

    std::size_t size_ = 0;
    std::size_t hwm_ = 0;            ///< max size_ since the last retune().
    mutable std::int64_t cur_v_ = 0; ///< lower bound on pending vindexes.

    // Cached minimum: one scan serves peek + pop back to back.
    mutable bool min_valid_ = false;
    /// True when the cache came from ensure_min() — then cur_v_ is already
    /// anchored at the min's virtual index and pop() can skip the recompute.
    mutable bool min_anchored_ = false;
    mutable double min_time_ = 0.0;
    mutable std::size_t min_id_ = 0;

    // Operation counters (lifetime) and the retune window markers.
    std::uint64_t schedules_ = 0;
    std::uint64_t pops_ = 0;
    mutable std::uint64_t scans_ = 0;
    std::uint64_t steps_ = 0; ///< in-bucket insert comparisons.
    std::uint64_t window_schedules_ = 0;
    std::uint64_t window_pops_ = 0;
    std::uint64_t window_scans_ = 0;
    std::uint64_t window_steps_ = 0;

    std::vector<Idx> scratch_; ///< rebuild id buffer (capacity).
};

} // namespace mflb
