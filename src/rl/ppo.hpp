/// \file ppo.hpp
/// Proximal Policy Optimization (Schulman et al., 2017) with the RLlib-style
/// combination the paper trains with: clipped surrogate objective *plus* an
/// adaptive KL penalty, a clipped value-function loss, and minibatched SGD
/// epochs over each on-policy batch. Defaults reproduce Table 2 exactly
/// (γ = 0.99, λ_RL = 1, KL coeff 0.2, clip 0.3, lr 5e-5, batch 4000,
/// minibatch 128, 30 epochs).
#pragma once

#include "rl/adam.hpp"
#include "rl/env.hpp"
#include "rl/gaussian_policy.hpp"
#include "rl/rollout_buffer.hpp"

#include <functional>
#include <vector>

namespace mflb::rl {

/// Hyperparameters; defaults are the paper's Table 2.
struct PpoConfig {
    double discount = 0.99;           ///< γ.
    double gae_lambda = 1.0;          ///< λ_RL.
    double kl_coeff = 0.2;            ///< β, adapted toward kl_target.
    double kl_target = 0.01;          ///< RLlib default target KL.
    double clip_param = 0.3;          ///< ε.
    double learning_rate = 5e-5;      ///< lr.
    std::size_t train_batch_size = 4000; ///< B_b environment steps per iteration.
    std::size_t minibatch_size = 128;    ///< B_m.
    std::size_t num_epochs = 30;         ///< T_b SGD passes per batch.
    double vf_loss_coeff = 1.0;
    double vf_clip_param = 10.0;      ///< clip on squared value error (RLlib).
    double entropy_coeff = 0.0;
    double max_grad_norm = 0.0;       ///< 0 disables global-norm clipping.
    bool normalize_advantages = true;
    std::vector<std::size_t> hidden = {256, 256}; ///< tanh layers (Fig. 2).
    /// Initial exploration log-std of the Gaussian head (0 = network
    /// default, sigma ~ 1). Negative values tighten exploration — useful for
    /// high-dimensional decision-rule actions at small step budgets.
    double initial_log_std = 0.0;
};

/// Per-iteration training diagnostics (one row of the Fig. 3 curve).
struct PpoIterationStats {
    std::size_t timesteps_total = 0;     ///< cumulative env steps.
    double mean_episode_return = 0.0;    ///< over episodes completed this iter.
    std::size_t episodes_completed = 0;
    double mean_kl = 0.0;
    double policy_loss = 0.0;
    double value_loss = 0.0;
    double entropy = 0.0;
    double kl_coeff = 0.0;               ///< coefficient after adaptation.
};

/// Single-environment PPO trainer.
class PpoTrainer {
public:
    PpoTrainer(Env& env, PpoConfig config, Rng rng);

    /// Collects one on-policy batch and performs the SGD epochs.
    PpoIterationStats train_iteration();
    /// Convenience: runs `iterations` and returns the full history.
    std::vector<PpoIterationStats> train(std::size_t iterations,
                                         const std::function<void(const PpoIterationStats&)>&
                                             on_iteration = nullptr);

    const GaussianPolicy& policy() const noexcept { return policy_; }
    GaussianPolicy& policy() noexcept { return policy_; }
    const Mlp& value_network() const noexcept { return value_net_; }
    const std::vector<PpoIterationStats>& history() const noexcept { return history_; }
    double current_kl_coeff() const noexcept { return kl_coeff_; }

    /// Mean undiscounted return of the deterministic (mean-action) policy
    /// over `episodes` fresh episodes.
    double evaluate(std::size_t episodes);

private:
    void collect_batch(RolloutBuffer& buffer, PpoIterationStats& stats);
    void optimize_batch(RolloutBuffer& buffer, PpoIterationStats& stats);

    Env& env_;
    PpoConfig config_;
    Rng rng_;
    GaussianPolicy policy_;
    Mlp value_net_;
    Adam policy_opt_;
    Adam value_opt_;
    double kl_coeff_;
    std::vector<PpoIterationStats> history_;
    std::size_t timesteps_total_ = 0;

    // Persistent episode state so batches can cut across episode boundaries.
    std::vector<double> current_obs_;
    bool episode_active_ = false;
    double episode_return_ = 0.0;
};

} // namespace mflb::rl
