/// \file ppo.hpp
/// Proximal Policy Optimization (Schulman et al., 2017) with the RLlib-style
/// combination the paper trains with: clipped surrogate objective *plus* an
/// adaptive KL penalty, a clipped value-function loss, and minibatched SGD
/// epochs over each on-policy batch. Defaults reproduce Table 2 exactly
/// (γ = 0.99, λ_RL = 1, KL coeff 0.2, clip 0.3, lr 5e-5, batch 4000,
/// minibatch 128, 30 epochs).
///
/// The trainer is batch-major and parallel:
///  - rollout collection fans out over `num_envs` independent environment
///    slots (each with its own forked RNG stream) on the shared thread pool
///    and merges slot trajectories into the rollout buffer by a fixed-order
///    serial reduction — results are bit-identical for fixed
///    (seed, num_envs) at any `train_threads` count;
///  - the SGD epochs run whole minibatches through the GEMM-backed batched
///    MLP passes (rl/mlp.hpp), with constructor-sized workspaces so the
///    steady-state update is allocation-free. The legacy per-sample update
///    is kept behind `batched_update = false` as the benchmark baseline; the
///    two paths produce bit-identical results.
#pragma once

#include "rl/adam.hpp"
#include "rl/env.hpp"
#include "rl/gaussian_policy.hpp"
#include "rl/rollout_buffer.hpp"
#include "support/telemetry.hpp"

#include <functional>
#include <memory>
#include <vector>

namespace mflb::rl {

/// Hyperparameters; defaults are the paper's Table 2.
struct PpoConfig {
    double discount = 0.99;           ///< γ.
    double gae_lambda = 1.0;          ///< λ_RL.
    double kl_coeff = 0.2;            ///< β, adapted toward kl_target.
    double kl_target = 0.01;          ///< RLlib default target KL.
    double clip_param = 0.3;          ///< ε.
    double learning_rate = 5e-5;      ///< lr.
    std::size_t train_batch_size = 4000; ///< B_b environment steps per iteration.
    std::size_t minibatch_size = 128;    ///< B_m.
    std::size_t num_epochs = 30;         ///< T_b SGD passes per batch.
    double vf_loss_coeff = 1.0;
    double vf_clip_param = 10.0;      ///< clip on squared value error (RLlib).
    double entropy_coeff = 0.0;
    double max_grad_norm = 0.0;       ///< 0 disables global-norm clipping.
    bool normalize_advantages = true;
    std::vector<std::size_t> hidden = {256, 256}; ///< tanh layers (Fig. 2).
    /// Initial exploration log-std of the Gaussian head (0 = network
    /// default, sigma ~ 1). Negative values tighten exploration — useful for
    /// high-dimensional decision-rule actions at small step budgets.
    double initial_log_std = 0.0;
    /// K independent rollout environments collecting each batch in parallel.
    /// Part of the result-determining (seed, K) pair: results depend on K
    /// but never on the number of worker threads. K = 1 reproduces the
    /// legacy single-stream trajectory exactly.
    std::size_t num_envs = 1;
    /// Worker threads for the rollout fan-out (0 = all hardware threads).
    /// Never changes results, only wall clock.
    std::size_t train_threads = 0;
    /// When false, runs the legacy per-sample update loop instead of the
    /// batched GEMM path (bit-identical results; kept as the benchmark
    /// baseline for bench_train_scale).
    bool batched_update = true;
    /// Optional telemetry session (non-owning; nullptr = fully disabled).
    /// Enables one "ppo_iter" series row per train_iteration (losses, KL,
    /// entropy, returns, collect/update wall-clock) plus collect/update/slot
    /// tracer spans. Never consumes RNG draws or perturbs training results.
    TelemetrySession* telemetry = nullptr;
};

/// Per-iteration training diagnostics (one row of the Fig. 3 curve).
struct PpoIterationStats {
    std::size_t timesteps_total = 0;     ///< cumulative env steps.
    double mean_episode_return = 0.0;    ///< over episodes completed this iter.
    std::size_t episodes_completed = 0;
    double mean_kl = 0.0;
    double policy_loss = 0.0;
    double value_loss = 0.0;
    double entropy = 0.0;
    double kl_coeff = 0.0;               ///< coefficient after adaptation.
};

/// PPO trainer over factory-created environment instances.
class PpoTrainer {
public:
    /// Creates one independent environment per call. Invoked num_envs + 1
    /// times at construction (rollout slots plus the dedicated evaluation
    /// environment); must not share mutable state between instances.
    using EnvFactory = std::function<std::unique_ptr<Env>()>;

    PpoTrainer(const EnvFactory& make_env, PpoConfig config, Rng rng);

    /// Collects one on-policy batch and performs the SGD epochs.
    PpoIterationStats train_iteration();
    /// Convenience: runs `iterations` and returns the full history.
    std::vector<PpoIterationStats> train(std::size_t iterations,
                                         const std::function<void(const PpoIterationStats&)>&
                                             on_iteration = nullptr);

    /// Phase hooks for benches and the allocation tests: train_iteration()
    /// is collect_phase() followed by optimize_phase() on the same stats
    /// object (plus history bookkeeping). optimize_phase() requires a
    /// preceding collect_phase().
    void collect_phase(PpoIterationStats& stats);
    void optimize_phase(PpoIterationStats& stats);

    const GaussianPolicy& policy() const noexcept { return policy_; }
    GaussianPolicy& policy() noexcept { return policy_; }
    const Mlp& value_network() const noexcept { return value_net_; }
    const std::vector<PpoIterationStats>& history() const noexcept { return history_; }
    double current_kl_coeff() const noexcept { return kl_coeff_; }
    std::size_t num_envs() const noexcept { return slots_.size(); }

    /// Mean undiscounted return of the deterministic (mean-action) policy
    /// over `episodes` fresh episodes, on a dedicated evaluation environment
    /// with its own forked RNG stream — interleaved collect/evaluate calls
    /// never perturb the training trajectory.
    double evaluate(std::size_t episodes);

private:
    /// One rollout environment with its trajectory state and private
    /// collection buffer (capacity = this slot's share of the batch).
    struct Slot {
        Slot(std::unique_ptr<Env> env_in, std::size_t quota, std::size_t obs_dim,
             std::size_t act_dim)
            : env(std::move(env_in)),
              buffer(quota, obs_dim, act_dim),
              action(act_dim, 0.0),
              mean(act_dim, 0.0),
              log_std(act_dim, 0.0) {}

        std::unique_ptr<Env> env;
        Rng rng{0};             ///< fork(k) stream (unused when num_envs == 1).
        RolloutBuffer buffer;
        Mlp::Workspace policy_ws;
        Mlp::Workspace value_ws;
        std::vector<double> current_obs;
        std::vector<double> action;  ///< sample_with_moments scratch rows.
        std::vector<double> mean;
        std::vector<double> log_std;
        bool episode_active = false;
        double episode_return = 0.0;
        double bootstrap = 0.0;       ///< V(s_T) of a truncated trajectory.
        double return_sum = 0.0;      ///< per-iteration episode-return total.
        std::size_t episodes_completed = 0;
    };

    void collect_slot(Slot& slot, Rng& rng) const;
    /// Emits the iteration's "ppo_iter" series row (no-op when metrics are
    /// disabled); the step index is the iteration count before this one.
    void record_iteration_telemetry(const PpoIterationStats& stats, double collect_seconds,
                                    double update_seconds);
    void optimize_batched(PpoIterationStats& stats);
    void optimize_scalar(PpoIterationStats& stats);
    void finish_optimize(PpoIterationStats& stats, double kl_sum, double policy_loss_sum,
                         double value_loss_sum, double entropy_sum, std::size_t samples);

    PpoConfig config_;
    std::unique_ptr<Env> eval_env_;
    std::size_t obs_dim_;
    std::size_t act_dim_;
    Rng rng_;
    GaussianPolicy policy_;
    Mlp value_net_;
    Adam policy_opt_;
    Adam value_opt_;
    double kl_coeff_;
    Rng eval_rng_{0};
    std::vector<Slot> slots_;
    RolloutBuffer buffer_; ///< merged batch, capacity train_batch_size.
    std::vector<PpoIterationStats> history_;
    std::size_t timesteps_total_ = 0;
    trace::Tracer* tracer_ = nullptr; ///< null = spans disabled (one branch).
    MetricsRow telemetry_row_;        ///< reused per iteration (allocation-free).

    // Constructor-sized update workspaces (rows = min(minibatch, batch)).
    std::vector<std::uint32_t> order_;
    std::vector<double> obs_batch_;
    std::vector<double> act_batch_;
    std::vector<double> old_mean_batch_;
    std::vector<double> old_log_std_batch_;
    std::vector<double> adv_batch_;
    std::vector<double> target_batch_;
    std::vector<double> logp_old_batch_;
    std::vector<double> mean_batch_;
    std::vector<double> log_std_batch_;
    std::vector<double> logp_new_batch_;
    std::vector<double> entropy_batch_;
    std::vector<double> c_logp_batch_;
    std::vector<double> grad_out_policy_;
    std::vector<double> grad_out_value_;
    Mlp::BatchWorkspace policy_bws_;
    Mlp::BatchWorkspace value_bws_;
    std::vector<double> policy_grad_;
    std::vector<double> value_grad_;
    // Scalar-path scratch (legacy update baseline).
    Mlp::Workspace scalar_policy_ws_;
    Mlp::Workspace scalar_value_ws_;
    GaussianPolicy::Moments old_moments_scratch_;
};

} // namespace mflb::rl
