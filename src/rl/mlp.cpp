#include "rl/mlp.hpp"

#include "math/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mflb::rl {

Mlp::Mlp(std::vector<std::size_t> layer_sizes, Rng& rng, double output_scale)
    : layers_(std::move(layer_sizes)) {
    if (layers_.size() < 2) {
        throw std::invalid_argument("Mlp: need at least input and output layer");
    }
    for (std::size_t n : layers_) {
        if (n == 0) {
            throw std::invalid_argument("Mlp: zero-width layer");
        }
    }
    std::size_t total = 0;
    offsets_.clear();
    for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
        offsets_.push_back(total);                    // weights
        total += layers_[l] * layers_[l + 1];
        offsets_.push_back(total);                    // biases
        total += layers_[l + 1];
    }
    params_.assign(total, 0.0);

    for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
        const std::size_t fan_in = layers_[l];
        const std::size_t fan_out = layers_[l + 1];
        const bool is_output = (l + 2 == layers_.size());
        const double limit =
            std::sqrt(6.0 / static_cast<double>(fan_in + fan_out)) * (is_output ? output_scale : 1.0);
        double* w = params_.data() + offsets_[2 * l];
        for (std::size_t i = 0; i < fan_in * fan_out; ++i) {
            w[i] = rng.uniform(-limit, limit);
        }
        // biases stay zero
    }
}

void Mlp::set_parameters(std::span<const double> params) {
    if (params.size() != params_.size()) {
        throw std::invalid_argument("Mlp::set_parameters: wrong size");
    }
    params_.assign(params.begin(), params.end());
}

std::size_t Mlp::weight_offset(std::size_t layer) const noexcept {
    return offsets_[2 * layer];
}

std::size_t Mlp::bias_offset(std::size_t layer) const noexcept {
    return offsets_[2 * layer + 1];
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
    Workspace ws;
    return forward_cached(input, ws);
}

std::vector<double> Mlp::forward_cached(std::span<const double> input, Workspace& ws) const {
    const std::span<const double> out = forward_span(input, ws);
    return std::vector<double>(out.begin(), out.end());
}

std::span<const double> Mlp::forward_span(std::span<const double> input, Workspace& ws) const {
    if (input.size() != layers_.front()) {
        throw std::invalid_argument("Mlp::forward: wrong input size");
    }
    const std::size_t num_layers = layers_.size();
    ws.activations.resize(num_layers);
    ws.activations[0].assign(input.begin(), input.end());
    for (std::size_t l = 0; l + 1 < num_layers; ++l) {
        const std::size_t in_dim = layers_[l];
        const std::size_t out_dim = layers_[l + 1];
        const double* w = params_.data() + weight_offset(l); // row-major out x in
        const double* b = params_.data() + bias_offset(l);
        const std::vector<double>& x = ws.activations[l];
        std::vector<double>& y = ws.activations[l + 1];
        y.assign(out_dim, 0.0);
        const bool is_output = (l + 2 == num_layers);
        for (std::size_t o = 0; o < out_dim; ++o) {
            const double* row = w + o * in_dim;
            double acc = b[o];
            for (std::size_t i = 0; i < in_dim; ++i) {
                acc += row[i] * x[i];
            }
            y[o] = is_output ? acc : std::tanh(acc);
        }
    }
    return ws.activations.back();
}

void Mlp::backward(const Workspace& ws, std::span<const double> grad_output,
                   std::span<double> grad_params, std::vector<double>* grad_input) const {
    if (grad_output.size() != layers_.back()) {
        throw std::invalid_argument("Mlp::backward: wrong grad_output size");
    }
    if (grad_params.size() != params_.size()) {
        throw std::invalid_argument("Mlp::backward: wrong grad_params size");
    }
    if (ws.activations.size() != layers_.size()) {
        throw std::invalid_argument("Mlp::backward: workspace not from forward_cached");
    }
    std::vector<double> delta(grad_output.begin(), grad_output.end());
    for (std::size_t l = layers_.size() - 1; l-- > 0;) {
        const std::size_t in_dim = layers_[l];
        const std::size_t out_dim = layers_[l + 1];
        const double* w = params_.data() + weight_offset(l);
        double* gw = grad_params.data() + weight_offset(l);
        double* gb = grad_params.data() + bias_offset(l);
        const std::vector<double>& x = ws.activations[l];
        const std::vector<double>& y = ws.activations[l + 1];
        const bool is_output = (l + 2 == layers_.size());

        // For hidden layers y = tanh(pre), so dpre = delta * (1 - y^2).
        if (!is_output) {
            for (std::size_t o = 0; o < out_dim; ++o) {
                delta[o] *= 1.0 - y[o] * y[o];
            }
        }
        for (std::size_t o = 0; o < out_dim; ++o) {
            const double d = delta[o];
            if (d == 0.0) {
                continue;
            }
            gb[o] += d;
            double* grow = gw + o * in_dim;
            for (std::size_t i = 0; i < in_dim; ++i) {
                grow[i] += d * x[i];
            }
        }
        if (l > 0 || grad_input != nullptr) {
            std::vector<double> next_delta(in_dim, 0.0);
            for (std::size_t o = 0; o < out_dim; ++o) {
                const double d = delta[o];
                if (d == 0.0) {
                    continue;
                }
                const double* row = w + o * in_dim;
                for (std::size_t i = 0; i < in_dim; ++i) {
                    next_delta[i] += d * row[i];
                }
            }
            delta = std::move(next_delta);
        }
    }
    if (grad_input != nullptr) {
        *grad_input = std::move(delta);
    }
}

Mlp::BatchWorkspace::BatchWorkspace(const Mlp& net, std::size_t max_batch_rows)
    : max_batch(max_batch_rows) {
    if (max_batch == 0) {
        throw std::invalid_argument("Mlp::BatchWorkspace: max_batch must be positive");
    }
    const std::vector<std::size_t>& layers = net.layer_sizes();
    activations.resize(layers.size());
    std::size_t widest = 0;
    std::size_t largest_weights = 0;
    for (std::size_t l = 0; l < layers.size(); ++l) {
        activations[l].assign(max_batch * layers[l], 0.0);
        widest = std::max(widest, layers[l]);
        if (l + 1 < layers.size()) {
            largest_weights = std::max(largest_weights, layers[l] * layers[l + 1]);
        }
    }
    delta.assign(max_batch * widest, 0.0);
    delta_next.assign(max_batch * widest, 0.0);
    wt.assign(largest_weights, 0.0);
    at.assign(max_batch * widest, 0.0);
}

void Mlp::forward_batch(std::span<const double> inputs, std::size_t batch, BatchWorkspace& ws,
                        std::span<double> outputs) const {
    const std::span<const double> out = forward_cached_batch(inputs, batch, ws);
    if (outputs.size() != out.size()) {
        throw std::invalid_argument("Mlp::forward_batch: wrong outputs size");
    }
    std::copy(out.begin(), out.end(), outputs.begin());
}

std::span<const double> Mlp::forward_cached_batch(std::span<const double> inputs,
                                                  std::size_t batch, BatchWorkspace& ws) const {
    if (ws.activations.size() != layers_.size() || batch > ws.max_batch) {
        throw std::invalid_argument("Mlp::forward_cached_batch: workspace too small");
    }
    if (inputs.size() != batch * layers_.front()) {
        throw std::invalid_argument("Mlp::forward_cached_batch: wrong inputs size");
    }
    ws.batch = batch;
    std::copy(inputs.begin(), inputs.end(), ws.activations[0].begin());
    const std::size_t num_layers = layers_.size();
    for (std::size_t l = 0; l + 1 < num_layers; ++l) {
        const std::size_t in_dim = layers_[l];
        const std::size_t out_dim = layers_[l + 1];
        const double* w = params_.data() + weight_offset(l); // row-major out x in
        const double* b = params_.data() + bias_offset(l);
        const double* x = ws.activations[l].data();
        double* y = ws.activations[l + 1].data();
        // Seed each output row with the bias, then accumulate X · Wᵀ in
        // ascending input order — the same FP addition order as the scalar
        // path (which starts its accumulator at the bias). Both operands are
        // transposed into the workspace so the product runs through the
        // k-major gemm_tn kernel; transposition reorders memory, never the
        // per-element addition sequence.
        for (std::size_t row = 0; row < batch; ++row) {
            std::copy(b, b + out_dim, y + row * out_dim);
        }
        transpose(out_dim, in_dim, w, ws.wt.data());   // -> in x out
        transpose(batch, in_dim, x, ws.at.data());     // -> in x batch
        gemm_tn_acc(batch, out_dim, in_dim, ws.at.data(), ws.wt.data(), y);
        if (l + 2 < num_layers) {
            for (std::size_t idx = 0; idx < batch * out_dim; ++idx) {
                y[idx] = std::tanh(y[idx]);
            }
        }
    }
    return std::span<const double>(ws.activations.back().data(), batch * layers_.back());
}

void Mlp::backward_batch(BatchWorkspace& ws, std::span<const double> grad_outputs,
                         std::span<double> grad_params, std::span<double> grad_inputs) const {
    const std::size_t batch = ws.batch;
    if (batch == 0 || ws.activations.size() != layers_.size()) {
        throw std::invalid_argument("Mlp::backward_batch: workspace not from forward");
    }
    if (grad_outputs.size() != batch * layers_.back()) {
        throw std::invalid_argument("Mlp::backward_batch: wrong grad_outputs size");
    }
    if (grad_params.size() != params_.size()) {
        throw std::invalid_argument("Mlp::backward_batch: wrong grad_params size");
    }
    if (!grad_inputs.empty() && grad_inputs.size() != batch * layers_.front()) {
        throw std::invalid_argument("Mlp::backward_batch: wrong grad_inputs size");
    }
    std::copy(grad_outputs.begin(), grad_outputs.end(), ws.delta.begin());
    for (std::size_t l = layers_.size() - 1; l-- > 0;) {
        const std::size_t in_dim = layers_[l];
        const std::size_t out_dim = layers_[l + 1];
        const double* w = params_.data() + weight_offset(l);
        double* gw = grad_params.data() + weight_offset(l);
        double* gb = grad_params.data() + bias_offset(l);
        const double* x = ws.activations[l].data();
        const double* y = ws.activations[l + 1].data();
        double* delta = ws.delta.data();
        const bool is_output = (l + 2 == layers_.size());

        // For hidden layers y = tanh(pre), so dpre = delta * (1 - y^2).
        if (!is_output) {
            for (std::size_t idx = 0; idx < batch * out_dim; ++idx) {
                delta[idx] *= 1.0 - y[idx] * y[idx];
            }
        }
        // Bias gradient: per-sample contributions in ascending row order.
        for (std::size_t row = 0; row < batch; ++row) {
            const double* d = delta + row * out_dim;
            for (std::size_t o = 0; o < out_dim; ++o) {
                gb[o] += d[o];
            }
        }
        // Weight gradient: Δᵀ · X accumulated in ascending sample order.
        gemm_tn_acc(out_dim, in_dim, batch, delta, x, gw);
        if (l > 0 || !grad_inputs.empty()) {
            // Input deltas Δ · W as Δᵀᵀ · W: transpose Δ to out × batch so
            // the product is k-major too (o-ascending accumulation, exactly
            // the scalar path's order).
            double* next = ws.delta_next.data();
            std::fill(next, next + batch * in_dim, 0.0);
            transpose(batch, out_dim, delta, ws.at.data()); // -> out x batch
            gemm_tn_acc(batch, in_dim, out_dim, ws.at.data(), w, next);
            std::swap(ws.delta, ws.delta_next);
        }
    }
    if (!grad_inputs.empty()) {
        std::copy(ws.delta.begin(), ws.delta.begin() + static_cast<std::ptrdiff_t>(
                                                           batch * layers_.front()),
                  grad_inputs.begin());
    }
}

std::span<double> Mlp::output_bias() noexcept {
    const std::size_t last = layers_.size() - 2;
    return std::span<double>(params_.data() + bias_offset(last), layers_.back());
}

} // namespace mflb::rl
