/// \file env.hpp
/// Generic episodic environment interface for the RL stack. The MFC MDP
/// (Section 2.5) is exposed to PPO through an adapter implementing this
/// interface (see core/rl_adapter.hpp); the RL library itself is agnostic of
/// queuing, which keeps the rl/ layer reusable for future workloads.
#pragma once

#include "support/rng.hpp"

#include <span>
#include <vector>

namespace mflb::rl {

/// Continuous-observation, continuous-action episodic environment.
class Env {
public:
    virtual ~Env() = default;

    virtual std::size_t observation_dim() const = 0;
    virtual std::size_t action_dim() const = 0;

    /// Starts a new episode, returning the initial observation.
    virtual std::vector<double> reset(Rng& rng) = 0;

    struct StepResult {
        std::vector<double> observation;
        double reward = 0.0;
        bool done = false;
    };
    /// Applies a raw (unconstrained) action vector.
    virtual StepResult step(std::span<const double> action, Rng& rng) = 0;
};

} // namespace mflb::rl
