/// \file gaussian_policy.hpp
/// Diagonal-Gaussian stochastic policy over a continuous action vector. The
/// network (tanh MLP, Fig. 2 of the paper) outputs mean and log-std for each
/// action dimension; the raw sampled actions are the *logits* of the decision
/// rule, which the environment adapter normalizes per row ("manual
/// normalization" in the paper's Section 4).
#pragma once

#include "rl/mlp.hpp"
#include "support/rng.hpp"

#include <span>
#include <vector>

namespace mflb::rl {

/// π_θ(a|s) = N(μ_θ(s), diag(σ_θ(s)^2)); log-std is clamped to a stable
/// range before exponentiation.
class GaussianPolicy {
public:
    /// \param hidden e.g. {256, 256}.
    GaussianPolicy(std::size_t obs_dim, std::size_t action_dim,
                   const std::vector<std::size_t>& hidden, Rng& rng);

    std::size_t obs_dim() const noexcept { return obs_dim_; }
    std::size_t action_dim() const noexcept { return action_dim_; }
    Mlp& network() noexcept { return net_; }
    const Mlp& network() const noexcept { return net_; }
    std::size_t parameter_count() const noexcept { return net_.parameter_count(); }

    /// Distribution parameters at a state.
    struct Moments {
        std::vector<double> mean;
        std::vector<double> log_std; ///< clamped.
    };
    Moments moments(std::span<const double> obs) const;

    struct Sample {
        std::vector<double> action;
        double log_prob = 0.0;
    };
    /// Samples an action and returns its log-density.
    Sample sample(std::span<const double> obs, Rng& rng) const;
    /// Deterministic (mean) action for evaluation.
    std::vector<double> mean_action(std::span<const double> obs) const;

    /// Log-density and entropy of `action` at `obs`, with activations cached
    /// for a subsequent backward().
    struct Eval {
        double log_prob = 0.0;
        double entropy = 0.0;
        Moments moments;
    };
    Eval evaluate(std::span<const double> obs, std::span<const double> action,
                  Mlp::Workspace& ws) const;

    /// Accumulates into `grad_params` the gradient of
    ///   loss = c_logp * log π(a|s) + c_entropy * H(π(·|s))
    ///        + c_kl * KL(N(old) || π(·|s))
    /// using the workspace cached by evaluate(). `old` may be null when
    /// c_kl == 0.
    void backward(const Mlp::Workspace& ws, const Eval& eval, std::span<const double> action,
                  double c_logp, double c_entropy, double c_kl, const Moments* old,
                  std::span<double> grad_params) const;

    /// Analytic KL(N(old) || N(current at obs)). Used for the adaptive KL
    /// penalty coefficient of RLlib-style PPO.
    static double kl(const Moments& old_moments, const Moments& new_moments) noexcept;

    /// Sets the log-std head bias so the initial exploration noise is
    /// exp(log_std) regardless of observation (the head weights are near
    /// zero at init). Tighter noise helps in high-dimensional action spaces.
    void set_initial_log_std(double log_std) noexcept;

    /// Sets the mean head bias, i.e. the (state-independent) initial mean
    /// action — used to warm-start training from a known-good rule.
    void set_initial_mean(std::span<const double> mean);

    static constexpr double kMinLogStd = -5.0;
    static constexpr double kMaxLogStd = 2.0;

private:
    std::size_t obs_dim_;
    std::size_t action_dim_;
    Mlp net_;
};

} // namespace mflb::rl
