/// \file gaussian_policy.hpp
/// Diagonal-Gaussian stochastic policy over a continuous action vector. The
/// network (tanh MLP, Fig. 2 of the paper) outputs mean and log-std for each
/// action dimension; the raw sampled actions are the *logits* of the decision
/// rule, which the environment adapter normalizes per row ("manual
/// normalization" in the paper's Section 4).
#pragma once

#include "rl/mlp.hpp"
#include "support/rng.hpp"

#include <span>
#include <vector>

namespace mflb::rl {

/// π_θ(a|s) = N(μ_θ(s), diag(σ_θ(s)^2)); log-std is clamped to a stable
/// range before exponentiation.
class GaussianPolicy {
public:
    /// \param hidden e.g. {256, 256}.
    GaussianPolicy(std::size_t obs_dim, std::size_t action_dim,
                   const std::vector<std::size_t>& hidden, Rng& rng);

    std::size_t obs_dim() const noexcept { return obs_dim_; }
    std::size_t action_dim() const noexcept { return action_dim_; }
    Mlp& network() noexcept { return net_; }
    const Mlp& network() const noexcept { return net_; }
    std::size_t parameter_count() const noexcept { return net_.parameter_count(); }

    /// Distribution parameters at a state.
    struct Moments {
        std::vector<double> mean;
        std::vector<double> log_std; ///< clamped.
    };
    Moments moments(std::span<const double> obs) const;

    struct Sample {
        std::vector<double> action;
        double log_prob = 0.0;
    };
    /// Samples an action and returns its log-density.
    Sample sample(std::span<const double> obs, Rng& rng) const;
    /// Sampling variant for rollout workers: reuses `ws` for the forward
    /// pass, writes the action and the clamped distribution moments into
    /// caller buffers (each sized action_dim()), and returns the
    /// log-density. Draws the same rng sequence as sample().
    double sample_with_moments(std::span<const double> obs, Rng& rng, Mlp::Workspace& ws,
                               std::span<double> action, std::span<double> mean,
                               std::span<double> log_std) const;
    /// Deterministic (mean) action for evaluation.
    std::vector<double> mean_action(std::span<const double> obs) const;
    /// Batched deterministic (mean) actions over `batch` row-major
    /// observation rows through the GEMM batch path: writes batch ×
    /// action_dim() mean rows into `means`, dropping the log-std half of the
    /// network output. Allocation-free once `ws` is warm; agrees with
    /// mean_action() per row within the GEMM kernels' 1e-12 FMA-contraction
    /// contract. This is the epoch-inference path of the deployed policy
    /// (core/neural_policy.hpp).
    void mean_action_batch(std::span<const double> obs, std::size_t batch,
                           Mlp::BatchWorkspace& ws, std::span<double> means) const;

    /// Log-density and entropy of `action` at `obs`, with activations cached
    /// for a subsequent backward().
    struct Eval {
        double log_prob = 0.0;
        double entropy = 0.0;
        Moments moments;
    };
    Eval evaluate(std::span<const double> obs, std::span<const double> action,
                  Mlp::Workspace& ws) const;

    /// Accumulates into `grad_params` the gradient of
    ///   loss = c_logp * log π(a|s) + c_entropy * H(π(·|s))
    ///        + c_kl * KL(N(old) || π(·|s))
    /// using the workspace cached by evaluate(). `old` may be null when
    /// c_kl == 0.
    void backward(const Mlp::Workspace& ws, const Eval& eval, std::span<const double> action,
                  double c_logp, double c_entropy, double c_kl, const Moments* old,
                  std::span<double> grad_params) const;

    /// Batched evaluate over `batch` row-major (obs, action) rows: writes the
    /// clamped moments (batch × action_dim each), per-row log-densities and
    /// entropies, and caches activations in `ws` for backward_batch(). Row b
    /// is bit-identical to evaluate() on that row. Allocation-free.
    void evaluate_batch(std::span<const double> obs, std::span<const double> actions,
                        std::size_t batch, Mlp::BatchWorkspace& ws, std::span<double> means,
                        std::span<double> log_stds, std::span<double> log_probs,
                        std::span<double> entropies) const;

    /// Batched counterpart of backward(): accumulates into `grad_params` the
    /// gradient of Σ_b c_logp[b]·log π(a_b|s_b) + c_entropy·H + c_kl·KL(old_b‖·),
    /// reusing the activations cached by evaluate_batch(). `grad_out` is
    /// caller scratch sized batch × 2·action_dim; `old_means`/`old_log_stds`
    /// may be empty when c_kl == 0. Bit-identical to per-row backward()
    /// calls in ascending row order. Allocation-free.
    void backward_batch(Mlp::BatchWorkspace& ws, std::size_t batch,
                        std::span<const double> actions, std::span<const double> means,
                        std::span<const double> log_stds, std::span<const double> c_logp,
                        double c_entropy, double c_kl, std::span<const double> old_means,
                        std::span<const double> old_log_stds, std::span<double> grad_out,
                        std::span<double> grad_params) const;

    /// Analytic KL(N(old) || N(current at obs)). Used for the adaptive KL
    /// penalty coefficient of RLlib-style PPO.
    static double kl(const Moments& old_moments, const Moments& new_moments) noexcept;
    /// Span overload over raw moment rows (same arithmetic, same order).
    static double kl(std::span<const double> old_mean, std::span<const double> old_log_std,
                     std::span<const double> new_mean,
                     std::span<const double> new_log_std) noexcept;

    /// Sets the log-std head bias so the initial exploration noise is
    /// exp(log_std) regardless of observation (the head weights are near
    /// zero at init). Tighter noise helps in high-dimensional action spaces.
    void set_initial_log_std(double log_std) noexcept;

    /// Sets the mean head bias, i.e. the (state-independent) initial mean
    /// action — used to warm-start training from a known-good rule.
    void set_initial_mean(std::span<const double> mean);

    static constexpr double kMinLogStd = -5.0;
    static constexpr double kMaxLogStd = 2.0;

private:
    std::size_t obs_dim_;
    std::size_t action_dim_;
    Mlp net_;
};

} // namespace mflb::rl
