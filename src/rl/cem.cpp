#include "rl/cem.hpp"

#include "support/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace mflb::rl {

CemResult cem_maximize(const std::function<double(std::span<const double>, Rng&)>& objective,
                       std::span<const double> initial_mean, const CemConfig& config, Rng& rng) {
    if (config.population == 0 || config.elites == 0 || config.elites > config.population) {
        throw std::invalid_argument("cem_maximize: bad population/elite sizes");
    }
    const std::size_t dim = initial_mean.size();
    std::vector<double> mean(initial_mean.begin(), initial_mean.end());
    std::vector<double> stddev(dim, config.initial_std);
    double extra_std = config.initial_std;

    CemResult result;
    result.best_parameters = mean;
    result.best_score = -std::numeric_limits<double>::infinity();

    std::vector<std::vector<double>> population(config.population);
    std::vector<double> scores(config.population);
    std::vector<Rng> eval_rngs(config.population, Rng(0));
    std::vector<std::size_t> order(config.population);

    trace::Tracer* tracer = session_tracer(config.telemetry);
    const bool emit_rows = config.telemetry != nullptr && config.telemetry->metrics_enabled();
    MetricsRow row;

    for (std::size_t gen = 0; gen < config.generations; ++gen) {
        trace::ScopedSpan gen_span(tracer, "cem_generation");
        const trace::Stopwatch gen_watch;
        double eval_seconds = 0.0;
        // Candidates and their evaluation streams are drawn serially (the
        // exact draw sequence of the legacy serial loop); only the objective
        // calls fan out, so scores are thread-count-invariant.
        for (std::size_t c = 0; c < config.population; ++c) {
            population[c].resize(dim);
            for (std::size_t i = 0; i < dim; ++i) {
                population[c][i] = mean[i] + stddev[i] * rng.normal();
            }
            eval_rngs[c] = rng.split();
        }
        {
            const trace::Stopwatch eval_watch;
            if (config.threads == 1) {
                for (std::size_t c = 0; c < config.population; ++c) {
                    scores[c] = objective(population[c], eval_rngs[c]);
                }
            } else {
                parallel_for(
                    config.population,
                    [&](std::size_t c) { scores[c] = objective(population[c], eval_rngs[c]); },
                    config.threads);
            }
            eval_seconds = eval_watch.seconds();
        }
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

        if (scores[order[0]] > result.best_score) {
            result.best_score = scores[order[0]];
            result.best_parameters = population[order[0]];
        }

        // Refit the sampling distribution to the elites, plus decaying
        // additive noise to avoid premature collapse (Szita & Lörincz 2006).
        std::vector<double> new_mean(dim, 0.0);
        for (std::size_t e = 0; e < config.elites; ++e) {
            const std::vector<double>& candidate = population[order[e]];
            for (std::size_t i = 0; i < dim; ++i) {
                new_mean[i] += candidate[i];
            }
        }
        for (double& v : new_mean) {
            v /= static_cast<double>(config.elites);
        }
        std::vector<double> new_var(dim, 0.0);
        for (std::size_t e = 0; e < config.elites; ++e) {
            const std::vector<double>& candidate = population[order[e]];
            for (std::size_t i = 0; i < dim; ++i) {
                const double diff = candidate[i] - new_mean[i];
                new_var[i] += diff * diff;
            }
        }
        extra_std *= config.extra_std_decay;
        double std_sum = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            const double variance =
                new_var[i] / static_cast<double>(config.elites) + extra_std * extra_std;
            stddev[i] = std::max(config.min_std, std::sqrt(variance));
            std_sum += stddev[i];
        }
        mean = std::move(new_mean);

        CemGenerationStats stats;
        stats.generation = gen;
        stats.best_score = scores[order[0]];
        double elite_sum = 0.0;
        for (std::size_t e = 0; e < config.elites; ++e) {
            elite_sum += scores[order[e]];
        }
        stats.elite_mean_score = elite_sum / static_cast<double>(config.elites);
        stats.population_mean_score =
            std::accumulate(scores.begin(), scores.end(), 0.0) /
            static_cast<double>(config.population);
        stats.mean_std = dim > 0 ? std_sum / static_cast<double>(dim) : 0.0;
        if (emit_rows) {
            row.reset("cem_gen", static_cast<std::int64_t>(gen));
            row.push("best_score", stats.best_score);
            row.push("elite_mean_score", stats.elite_mean_score);
            row.push("population_mean_score", stats.population_mean_score);
            row.push("best_score_so_far", result.best_score);
            row.push("mean_std", stats.mean_std);
            row.push("eval_seconds", eval_seconds);
            row.push("gen_seconds", gen_watch.seconds());
            config.telemetry->sink().write_row(row);
        }
        result.history.push_back(stats);
    }
    return result;
}

} // namespace mflb::rl
