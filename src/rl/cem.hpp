/// \file cem.hpp
/// Cross-Entropy Method: derivative-free optimizer over a flat parameter
/// vector. Used as the fast offline trainer for tabular upper-level policies
/// — it optimizes the *same* MFC objective J(π̃) as PPO but converges in
/// seconds on the small decision-rule parameter space, which is what the
/// benchmark harness uses at its default (CI-sized) budget. PPO remains the
/// paper-faithful trainer (bench_fig3 runs it, per Table 2).
/// \see core/trainers.hpp for the entry points wrapping both.
#pragma once

#include "support/rng.hpp"
#include "support/telemetry.hpp"

#include <functional>
#include <span>
#include <vector>

namespace mflb::rl {

/// CEM hyperparameters.
struct CemConfig {
    std::size_t population = 64;      ///< candidates per generation.
    std::size_t elites = 8;           ///< top candidates kept.
    std::size_t generations = 40;
    double initial_std = 1.0;         ///< exploration noise at generation 0.
    double min_std = 0.02;            ///< noise floor (keeps exploring).
    double extra_std_decay = 0.9;     ///< decay of additive exploration noise.
    /// Worker threads for the per-generation population evaluation
    /// (1 = serial, the default; 0 = all hardware threads). Candidates and
    /// their evaluation RNG streams are derived serially before the fan-out,
    /// so results are bit-identical at any thread count — including to the
    /// serial path. Parallel evaluation is opt-in because it requires the
    /// objective to be thread-safe.
    std::size_t threads = 1;
    /// Optional telemetry session (non-owning; nullptr = fully disabled).
    /// Enables one "cem_gen" series row per generation (scores, noise,
    /// evaluation wall-clock) plus a "cem_generation" tracer span. Never
    /// consumes RNG draws or perturbs the optimization.
    TelemetrySession* telemetry = nullptr;
};

/// One generation's diagnostics.
struct CemGenerationStats {
    std::size_t generation = 0;
    double best_score = 0.0;
    double elite_mean_score = 0.0;
    double population_mean_score = 0.0;
    double mean_std = 0.0;
};

/// Maximizes `objective` over R^n starting from `initial_mean`.
/// `objective` is called once per candidate per generation and receives a
/// split RNG so evaluations can be stochastic yet reproducible; the
/// population is evaluated in parallel on the shared thread pool
/// (CemConfig::threads).
struct CemResult {
    std::vector<double> best_parameters;
    double best_score = 0.0;
    std::vector<CemGenerationStats> history;
};

CemResult cem_maximize(const std::function<double(std::span<const double>, Rng&)>& objective,
                       std::span<const double> initial_mean, const CemConfig& config, Rng& rng);

} // namespace mflb::rl
