#include "rl/adam.hpp"

#include <cmath>
#include <stdexcept>

// The update sweep is element-independent (no reductions), so SIMD lanes
// map one-to-one onto parameters and the sweep stays deterministic for a
// fixed machine at any thread count. The haswell clone (4-wide
// mul/div/sqrt + FMA contraction) is selected once by the loader; both the
// batched and the per-sample PPO update run through this same sweep, so the
// two paths remain mutually consistent on every ISA.
// (Disabled under ThreadSanitizer: TSan's interceptors are not ifunc-safe —
// the resolver would run before the TSan runtime is initialized.)
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    defined(__ELF__) && !defined(__SANITIZE_THREAD__)
#define MFLB_ADAM_CLONES __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define MFLB_ADAM_CLONES
#endif

namespace mflb::rl {

namespace {
/// The fused Adam sweep over the flat parameter vector: moment updates,
/// bias correction, and the parameter step in one pass, with no per-sample
/// or per-layer loops left (the gradients already arrive batched).
MFLB_ADAM_CLONES
void adam_sweep(double* __restrict params, const double* __restrict grads,
                double* __restrict m, double* __restrict v, std::size_t count, double scale,
                double lr, double beta1, double beta2, double eps, double bias1,
                double bias2) noexcept {
    for (std::size_t i = 0; i < count; ++i) {
        const double g = grads[i] * scale;
        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
        v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
        const double m_hat = m[i] / bias1;
        const double v_hat = v[i] / bias2;
        params[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
}
} // namespace

Adam::Adam(std::size_t parameter_count, double learning_rate, double beta1, double beta2,
           double epsilon)
    : lr_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      eps_(epsilon),
      m_(parameter_count, 0.0),
      v_(parameter_count, 0.0) {}

void Adam::step(std::span<double> params, std::span<const double> grads, double max_grad_norm) {
    if (params.size() != m_.size() || grads.size() != m_.size()) {
        throw std::invalid_argument("Adam::step: size mismatch");
    }
    double scale = 1.0;
    if (max_grad_norm > 0.0) {
        double norm_sq = 0.0;
        for (double g : grads) {
            norm_sq += g * g;
        }
        const double norm = std::sqrt(norm_sq);
        if (norm > max_grad_norm) {
            scale = max_grad_norm / norm;
        }
    }
    ++t_;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    adam_sweep(params.data(), grads.data(), m_.data(), v_.data(), params.size(), scale, lr_,
               beta1_, beta2_, eps_, bias1, bias2);
}

} // namespace mflb::rl
