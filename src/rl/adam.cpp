#include "rl/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace mflb::rl {

Adam::Adam(std::size_t parameter_count, double learning_rate, double beta1, double beta2,
           double epsilon)
    : lr_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      eps_(epsilon),
      m_(parameter_count, 0.0),
      v_(parameter_count, 0.0) {}

void Adam::step(std::span<double> params, std::span<const double> grads, double max_grad_norm) {
    if (params.size() != m_.size() || grads.size() != m_.size()) {
        throw std::invalid_argument("Adam::step: size mismatch");
    }
    double scale = 1.0;
    if (max_grad_norm > 0.0) {
        double norm_sq = 0.0;
        for (double g : grads) {
            norm_sq += g * g;
        }
        const double norm = std::sqrt(norm_sq);
        if (norm > max_grad_norm) {
            scale = max_grad_norm / norm;
        }
    }
    ++t_;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t i = 0; i < params.size(); ++i) {
        const double g = grads[i] * scale;
        m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * g;
        v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * g * g;
        const double m_hat = m_[i] / bias1;
        const double v_hat = v_[i] / bias2;
        params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
}

} // namespace mflb::rl
