#include "rl/ppo.hpp"

#include "support/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mflb::rl {

namespace {
std::vector<std::size_t> value_layers(std::size_t obs_dim,
                                      const std::vector<std::size_t>& hidden) {
    std::vector<std::size_t> layers;
    layers.push_back(obs_dim);
    layers.insert(layers.end(), hidden.begin(), hidden.end());
    layers.push_back(1);
    return layers;
}

std::unique_ptr<Env> make_checked_env(const PpoTrainer::EnvFactory& make_env) {
    if (!make_env) {
        throw std::invalid_argument("PpoTrainer: null environment factory");
    }
    std::unique_ptr<Env> env = make_env();
    if (env == nullptr) {
        throw std::invalid_argument("PpoTrainer: environment factory returned null");
    }
    return env;
}

/// Stream id of the dedicated evaluation RNG, distinct from every rollout
/// slot id so evaluation never shares draws with collection.
constexpr std::uint64_t kEvalStream = ~std::uint64_t{0};
} // namespace

PpoTrainer::PpoTrainer(const EnvFactory& make_env, PpoConfig config, Rng rng)
    : config_(std::move(config)),
      eval_env_(make_checked_env(make_env)),
      obs_dim_(eval_env_->observation_dim()),
      act_dim_(eval_env_->action_dim()),
      rng_(rng),
      policy_(obs_dim_, act_dim_, config_.hidden, rng_),
      value_net_(value_layers(obs_dim_, config_.hidden), rng_, 1.0),
      policy_opt_(policy_.parameter_count(), config_.learning_rate),
      value_opt_(value_net_.parameter_count(), config_.learning_rate),
      kl_coeff_(config_.kl_coeff),
      buffer_(std::max<std::size_t>(config_.train_batch_size, 1), obs_dim_, act_dim_) {
    if (config_.train_batch_size == 0 || config_.minibatch_size == 0 || config_.num_epochs == 0) {
        throw std::invalid_argument("PpoTrainer: batch sizes and epochs must be positive");
    }
    if (config_.num_envs == 0) {
        throw std::invalid_argument("PpoTrainer: num_envs must be positive");
    }
    if (config_.train_batch_size < config_.num_envs) {
        throw std::invalid_argument("PpoTrainer: train_batch_size must be >= num_envs");
    }
    if (config_.initial_log_std != 0.0) {
        policy_.set_initial_log_std(config_.initial_log_std);
    }
    eval_rng_ = rng_.fork(kEvalStream);
    tracer_ = session_tracer(config_.telemetry);

    // Rollout slots: slot k collects a fixed quota of ⌈B/K⌉ or ⌊B/K⌋ steps
    // on its own environment and fork(k) stream (slot 0 of a single-env
    // trainer draws from the main stream instead, reproducing the legacy
    // serial trajectory exactly).
    const std::size_t num_envs = config_.num_envs;
    const std::size_t base = config_.train_batch_size / num_envs;
    const std::size_t extra = config_.train_batch_size % num_envs;
    slots_.reserve(num_envs);
    for (std::size_t k = 0; k < num_envs; ++k) {
        const std::size_t quota = base + (k < extra ? 1 : 0);
        std::unique_ptr<Env> env = make_checked_env(make_env);
        if (env->observation_dim() != obs_dim_ || env->action_dim() != act_dim_) {
            throw std::invalid_argument("PpoTrainer: factory environments disagree on dims");
        }
        slots_.emplace_back(std::move(env), quota, obs_dim_, act_dim_);
        slots_.back().rng = rng_.fork(k);
    }

    // Update-phase workspaces, sized once for the largest minibatch.
    const std::size_t rows = std::min(config_.minibatch_size, config_.train_batch_size);
    order_.assign(config_.train_batch_size, 0);
    obs_batch_.assign(rows * obs_dim_, 0.0);
    act_batch_.assign(rows * act_dim_, 0.0);
    old_mean_batch_.assign(rows * act_dim_, 0.0);
    old_log_std_batch_.assign(rows * act_dim_, 0.0);
    adv_batch_.assign(rows, 0.0);
    target_batch_.assign(rows, 0.0);
    logp_old_batch_.assign(rows, 0.0);
    mean_batch_.assign(rows * act_dim_, 0.0);
    log_std_batch_.assign(rows * act_dim_, 0.0);
    logp_new_batch_.assign(rows, 0.0);
    entropy_batch_.assign(rows, 0.0);
    c_logp_batch_.assign(rows, 0.0);
    grad_out_policy_.assign(rows * 2 * act_dim_, 0.0);
    grad_out_value_.assign(rows, 0.0);
    policy_bws_ = Mlp::BatchWorkspace(policy_.network(), rows);
    value_bws_ = Mlp::BatchWorkspace(value_net_, rows);
    policy_grad_.assign(policy_.parameter_count(), 0.0);
    value_grad_.assign(value_net_.parameter_count(), 0.0);
    old_moments_scratch_.mean.assign(act_dim_, 0.0);
    old_moments_scratch_.log_std.assign(act_dim_, 0.0);
}

void PpoTrainer::collect_slot(Slot& slot, Rng& rng) const {
    slot.buffer.clear();
    slot.return_sum = 0.0;
    slot.episodes_completed = 0;
    while (!slot.buffer.full()) {
        if (!slot.episode_active) {
            slot.current_obs = slot.env->reset(rng);
            slot.episode_return = 0.0;
            slot.episode_active = true;
        }
        const double log_prob = policy_.sample_with_moments(
            slot.current_obs, rng, slot.policy_ws, slot.action, slot.mean, slot.log_std);
        const double value = value_net_.forward_span(slot.current_obs, slot.value_ws)[0];
        Env::StepResult step = slot.env->step(slot.action, rng);
        slot.buffer.add(slot.current_obs, slot.action, step.reward, value, log_prob, step.done,
                        slot.mean, slot.log_std);
        slot.episode_return += step.reward;
        slot.current_obs = std::move(step.observation);
        if (step.done) {
            slot.episode_active = false;
            slot.return_sum += slot.episode_return;
            ++slot.episodes_completed;
        }
    }
    slot.bootstrap = slot.episode_active
                         ? value_net_.forward_span(slot.current_obs, slot.value_ws)[0]
                         : 0.0;
}

void PpoTrainer::collect_phase(PpoIterationStats& stats) {
    buffer_.clear();
    if (slots_.size() == 1) {
        // Single-env path draws from the main stream (legacy trajectory).
        collect_slot(slots_[0], rng_);
    } else {
        parallel_for(
            slots_.size(),
            [this](std::size_t k) {
                trace::ScopedSpan span(tracer_, "rollout_slot");
                collect_slot(slots_[k], slots_[k].rng);
            },
            config_.train_threads);
    }
    double return_sum = 0.0;
    std::size_t episodes = 0;
    for (Slot& slot : slots_) { // fixed slot order: the serial merge reduction
        buffer_.append_segment(slot.buffer, slot.bootstrap);
        return_sum += slot.return_sum;
        episodes += slot.episodes_completed;
    }
    buffer_.compute_gae(config_.discount, config_.gae_lambda);
    if (config_.normalize_advantages) {
        buffer_.normalize_advantages();
    }
    timesteps_total_ += buffer_.size();
    stats.timesteps_total = timesteps_total_;
    stats.episodes_completed = episodes;
    stats.mean_episode_return =
        episodes > 0 ? return_sum / static_cast<double>(episodes) : 0.0;
}

void PpoTrainer::finish_optimize(PpoIterationStats& stats, double kl_sum,
                                 double policy_loss_sum, double value_loss_sum,
                                 double entropy_sum, std::size_t samples) {
    const double inv = samples > 0 ? 1.0 / static_cast<double>(samples) : 0.0;
    stats.mean_kl = kl_sum * inv;
    stats.policy_loss = policy_loss_sum * inv;
    stats.value_loss = value_loss_sum * inv;
    stats.entropy = entropy_sum * inv;

    // Adaptive KL coefficient (RLlib's update_kl rule).
    if (stats.mean_kl > 2.0 * config_.kl_target) {
        kl_coeff_ *= 1.5;
    } else if (stats.mean_kl < 0.5 * config_.kl_target) {
        kl_coeff_ *= 0.5;
    }
    stats.kl_coeff = kl_coeff_;
}

void PpoTrainer::optimize_batched(PpoIterationStats& stats) {
    const std::size_t n = buffer_.size();
    const std::size_t a_dim = act_dim_;
    double kl_sum = 0.0;
    double policy_loss_sum = 0.0;
    double value_loss_sum = 0.0;
    double entropy_sum = 0.0;
    std::size_t sample_count = 0;

    for (std::size_t epoch = 0; epoch < config_.num_epochs; ++epoch) {
        rng_.permutation(std::span<std::uint32_t>(order_.data(), n));
        for (std::size_t start = 0; start < n; start += config_.minibatch_size) {
            const std::size_t end = std::min(n, start + config_.minibatch_size);
            const std::size_t rows = end - start;
            const double inv_batch = 1.0 / static_cast<double>(rows);

            // Gather the minibatch rows into the batch-major workspaces.
            for (std::size_t r = 0; r < rows; ++r) {
                const std::size_t idx = order_[start + r];
                const std::span<const double> obs = buffer_.observation(idx);
                std::copy(obs.begin(), obs.end(), obs_batch_.begin() +
                                                      static_cast<std::ptrdiff_t>(r * obs_dim_));
                const std::span<const double> act = buffer_.action(idx);
                std::copy(act.begin(), act.end(),
                          act_batch_.begin() + static_cast<std::ptrdiff_t>(r * a_dim));
                const std::span<const double> om = buffer_.old_mean(idx);
                std::copy(om.begin(), om.end(),
                          old_mean_batch_.begin() + static_cast<std::ptrdiff_t>(r * a_dim));
                const std::span<const double> ol = buffer_.old_log_std(idx);
                std::copy(ol.begin(), ol.end(),
                          old_log_std_batch_.begin() + static_cast<std::ptrdiff_t>(r * a_dim));
                adv_batch_[r] = buffer_.advantage(idx);
                target_batch_[r] = buffer_.value_target(idx);
                logp_old_batch_[r] = buffer_.log_prob(idx);
            }

            // --- policy terms: one batched pass over the minibatch ---
            policy_.evaluate_batch(
                std::span<const double>(obs_batch_.data(), rows * obs_dim_),
                std::span<const double>(act_batch_.data(), rows * a_dim), rows, policy_bws_,
                std::span<double>(mean_batch_.data(), rows * a_dim),
                std::span<double>(log_std_batch_.data(), rows * a_dim),
                std::span<double>(logp_new_batch_.data(), rows),
                std::span<double>(entropy_batch_.data(), rows));
            for (std::size_t r = 0; r < rows; ++r) {
                const double advantage = adv_batch_[r];
                const double ratio = std::exp(logp_new_batch_[r] - logp_old_batch_[r]);
                const double clipped =
                    std::clamp(ratio, 1.0 - config_.clip_param, 1.0 + config_.clip_param);
                const double surrogate = std::min(ratio * advantage, clipped * advantage);
                const double kl = GaussianPolicy::kl(
                    std::span<const double>(old_mean_batch_.data() + r * a_dim, a_dim),
                    std::span<const double>(old_log_std_batch_.data() + r * a_dim, a_dim),
                    std::span<const double>(mean_batch_.data() + r * a_dim, a_dim),
                    std::span<const double>(log_std_batch_.data() + r * a_dim, a_dim));
                // d(-surrogate)/d logp: active only when the unclipped branch
                // is the binding one.
                const bool unclipped_active = ratio * advantage <= clipped * advantage;
                c_logp_batch_[r] = unclipped_active ? -advantage * ratio * inv_batch : 0.0;
                policy_loss_sum += -surrogate;
                entropy_sum += entropy_batch_[r];
                kl_sum += kl;
                ++sample_count;
            }
            std::fill(policy_grad_.begin(), policy_grad_.end(), 0.0);
            policy_.backward_batch(
                policy_bws_, rows, std::span<const double>(act_batch_.data(), rows * a_dim),
                std::span<const double>(mean_batch_.data(), rows * a_dim),
                std::span<const double>(log_std_batch_.data(), rows * a_dim),
                std::span<const double>(c_logp_batch_.data(), rows),
                -config_.entropy_coeff * inv_batch, kl_coeff_ * inv_batch,
                std::span<const double>(old_mean_batch_.data(), rows * a_dim),
                std::span<const double>(old_log_std_batch_.data(), rows * a_dim),
                std::span<double>(grad_out_policy_.data(), rows * 2 * a_dim), policy_grad_);

            // --- value term (clipped squared error, RLlib-style) ---
            const std::span<const double> values = value_net_.forward_cached_batch(
                std::span<const double>(obs_batch_.data(), rows * obs_dim_), rows, value_bws_);
            for (std::size_t r = 0; r < rows; ++r) {
                const double error = values[r] - target_batch_[r];
                const double sq = error * error;
                grad_out_value_[r] = sq <= config_.vf_clip_param
                                         ? config_.vf_loss_coeff * 2.0 * error * inv_batch
                                         : 0.0;
                value_loss_sum += std::min(sq, config_.vf_clip_param);
            }
            std::fill(value_grad_.begin(), value_grad_.end(), 0.0);
            value_net_.backward_batch(value_bws_,
                                      std::span<const double>(grad_out_value_.data(), rows),
                                      value_grad_);

            policy_opt_.step(policy_.network().parameters(), policy_grad_,
                             config_.max_grad_norm);
            value_opt_.step(value_net_.parameters(), value_grad_, config_.max_grad_norm);
        }
    }
    finish_optimize(stats, kl_sum, policy_loss_sum, value_loss_sum, entropy_sum, sample_count);
}

void PpoTrainer::optimize_scalar(PpoIterationStats& stats) {
    // Legacy per-sample update (the pre-batching implementation), retained
    // as the bench_train_scale baseline and as an equivalence oracle: it
    // produces bit-identical results to optimize_batched().
    const std::size_t n = buffer_.size();
    double kl_sum = 0.0;
    double policy_loss_sum = 0.0;
    double value_loss_sum = 0.0;
    double entropy_sum = 0.0;
    std::size_t sample_count = 0;

    for (std::size_t epoch = 0; epoch < config_.num_epochs; ++epoch) {
        rng_.permutation(std::span<std::uint32_t>(order_.data(), n));
        for (std::size_t start = 0; start < n; start += config_.minibatch_size) {
            const std::size_t end = std::min(n, start + config_.minibatch_size);
            const double inv_batch = 1.0 / static_cast<double>(end - start);
            std::fill(policy_grad_.begin(), policy_grad_.end(), 0.0);
            std::fill(value_grad_.begin(), value_grad_.end(), 0.0);

            for (std::size_t pos = start; pos < end; ++pos) {
                const std::size_t idx = order_[pos];
                const std::span<const double> obs = buffer_.observation(idx);
                const std::span<const double> action = buffer_.action(idx);
                const double advantage = buffer_.advantage(idx);
                const double value_target = buffer_.value_target(idx);

                // --- policy terms ---
                const GaussianPolicy::Eval eval =
                    policy_.evaluate(obs, action, scalar_policy_ws_);
                const double ratio = std::exp(eval.log_prob - buffer_.log_prob(idx));
                const double clipped =
                    std::clamp(ratio, 1.0 - config_.clip_param, 1.0 + config_.clip_param);
                const double surrogate = std::min(ratio * advantage, clipped * advantage);
                const double kl =
                    GaussianPolicy::kl(buffer_.old_mean(idx), buffer_.old_log_std(idx),
                                       eval.moments.mean, eval.moments.log_std);

                const bool unclipped_active = ratio * advantage <= clipped * advantage;
                const double d_logp =
                    unclipped_active ? -advantage * ratio * inv_batch : 0.0;
                const double d_entropy = -config_.entropy_coeff * inv_batch;
                const double d_kl = kl_coeff_ * inv_batch;
                const std::span<const double> om = buffer_.old_mean(idx);
                const std::span<const double> ol = buffer_.old_log_std(idx);
                old_moments_scratch_.mean.assign(om.begin(), om.end());
                old_moments_scratch_.log_std.assign(ol.begin(), ol.end());
                policy_.backward(scalar_policy_ws_, eval, action, d_logp, d_entropy, d_kl,
                                 &old_moments_scratch_, policy_grad_);

                // --- value term (clipped squared error, RLlib-style) ---
                const double value = value_net_.forward_cached(obs, scalar_value_ws_)[0];
                const double error = value - value_target;
                const double sq = error * error;
                double d_value = 0.0;
                if (sq <= config_.vf_clip_param) {
                    d_value = config_.vf_loss_coeff * 2.0 * error * inv_batch;
                }
                const std::array<double, 1> grad_out{d_value};
                value_net_.backward(scalar_value_ws_, grad_out, value_grad_);

                policy_loss_sum += -surrogate;
                value_loss_sum += std::min(sq, config_.vf_clip_param);
                entropy_sum += eval.entropy;
                kl_sum += kl;
                ++sample_count;
            }
            policy_opt_.step(policy_.network().parameters(), policy_grad_,
                             config_.max_grad_norm);
            value_opt_.step(value_net_.parameters(), value_grad_, config_.max_grad_norm);
        }
    }
    finish_optimize(stats, kl_sum, policy_loss_sum, value_loss_sum, entropy_sum, sample_count);
}

void PpoTrainer::optimize_phase(PpoIterationStats& stats) {
    if (config_.batched_update) {
        optimize_batched(stats);
    } else {
        optimize_scalar(stats);
    }
}

void PpoTrainer::record_iteration_telemetry(const PpoIterationStats& stats,
                                            double collect_seconds, double update_seconds) {
    TelemetrySession* session = config_.telemetry;
    if (session == nullptr || !session->metrics_enabled()) {
        return;
    }
    MetricsRow& row = telemetry_row_;
    row.reset("ppo_iter", static_cast<std::int64_t>(history_.size()));
    row.push_int("timesteps_total", static_cast<std::int64_t>(stats.timesteps_total));
    row.push_int("episodes_completed", static_cast<std::int64_t>(stats.episodes_completed));
    row.push("mean_episode_return", stats.mean_episode_return);
    row.push("mean_kl", stats.mean_kl);
    row.push("policy_loss", stats.policy_loss);
    row.push("value_loss", stats.value_loss);
    row.push("entropy", stats.entropy);
    row.push("kl_coeff", stats.kl_coeff);
    row.push("collect_seconds", collect_seconds);
    row.push("update_seconds", update_seconds);
    session->sink().write_row(row);
}

PpoIterationStats PpoTrainer::train_iteration() {
    PpoIterationStats stats;
    trace::Stopwatch watch;
    {
        trace::ScopedSpan span(tracer_, "ppo_collect");
        collect_phase(stats);
    }
    const double collect_seconds = watch.seconds();
    watch.restart();
    {
        trace::ScopedSpan span(tracer_, "ppo_update");
        optimize_phase(stats);
    }
    record_iteration_telemetry(stats, collect_seconds, watch.seconds());
    history_.push_back(stats);
    return stats;
}

std::vector<PpoIterationStats> PpoTrainer::train(
    std::size_t iterations, const std::function<void(const PpoIterationStats&)>& on_iteration) {
    for (std::size_t i = 0; i < iterations; ++i) {
        const PpoIterationStats stats = train_iteration();
        if (on_iteration) {
            on_iteration(stats);
        }
    }
    return history_;
}

double PpoTrainer::evaluate(std::size_t episodes) {
    double total = 0.0;
    for (std::size_t e = 0; e < episodes; ++e) {
        std::vector<double> obs = eval_env_->reset(eval_rng_);
        double episode_return = 0.0;
        while (true) {
            const std::vector<double> action = policy_.mean_action(obs);
            Env::StepResult step = eval_env_->step(action, eval_rng_);
            episode_return += step.reward;
            if (step.done) {
                break;
            }
            obs = std::move(step.observation);
        }
        total += episode_return;
    }
    return total / static_cast<double>(episodes);
}

} // namespace mflb::rl
