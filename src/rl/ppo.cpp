#include "rl/ppo.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace mflb::rl {

namespace {
std::vector<std::size_t> value_layers(std::size_t obs_dim,
                                      const std::vector<std::size_t>& hidden) {
    std::vector<std::size_t> layers;
    layers.push_back(obs_dim);
    layers.insert(layers.end(), hidden.begin(), hidden.end());
    layers.push_back(1);
    return layers;
}
} // namespace

PpoTrainer::PpoTrainer(Env& env, PpoConfig config, Rng rng)
    : env_(env),
      config_(config),
      rng_(rng),
      policy_(env.observation_dim(), env.action_dim(), config.hidden, rng_),
      value_net_(value_layers(env.observation_dim(), config.hidden), rng_, 1.0),
      policy_opt_(policy_.parameter_count(), config.learning_rate),
      value_opt_(value_net_.parameter_count(), config.learning_rate),
      kl_coeff_(config.kl_coeff) {
    if (config_.train_batch_size == 0 || config_.minibatch_size == 0 || config_.num_epochs == 0) {
        throw std::invalid_argument("PpoTrainer: batch sizes and epochs must be positive");
    }
    if (config_.initial_log_std != 0.0) {
        policy_.set_initial_log_std(config_.initial_log_std);
    }
}

void PpoTrainer::collect_batch(RolloutBuffer& buffer, PpoIterationStats& stats) {
    buffer.clear();
    double return_sum = 0.0;
    std::size_t episodes = 0;
    while (!buffer.full()) {
        if (!episode_active_) {
            current_obs_ = env_.reset(rng_);
            episode_return_ = 0.0;
            episode_active_ = true;
        }
        Transition t;
        t.observation = current_obs_;
        const GaussianPolicy::Sample sample = policy_.sample(current_obs_, rng_);
        t.action = sample.action;
        t.log_prob = sample.log_prob;
        t.moments = policy_.moments(current_obs_);
        t.value = value_net_.forward(current_obs_)[0];

        const Env::StepResult step = env_.step(sample.action, rng_);
        t.reward = step.reward;
        t.terminal = step.done;
        episode_return_ += step.reward;
        current_obs_ = step.observation;
        if (step.done) {
            episode_active_ = false;
            return_sum += episode_return_;
            ++episodes;
        }
        buffer.add(std::move(t));
    }
    const double bootstrap =
        episode_active_ ? value_net_.forward(current_obs_)[0] : 0.0;
    buffer.compute_gae(config_.discount, config_.gae_lambda, bootstrap);
    if (config_.normalize_advantages) {
        buffer.normalize_advantages();
    }
    timesteps_total_ += buffer.size();
    stats.timesteps_total = timesteps_total_;
    stats.episodes_completed = episodes;
    stats.mean_episode_return = episodes > 0 ? return_sum / static_cast<double>(episodes) : 0.0;
}

void PpoTrainer::optimize_batch(RolloutBuffer& buffer, PpoIterationStats& stats) {
    const std::size_t n = buffer.size();
    std::vector<double> policy_grad(policy_.parameter_count(), 0.0);
    std::vector<double> value_grad(value_net_.parameter_count(), 0.0);
    Mlp::Workspace policy_ws;
    Mlp::Workspace value_ws;

    double kl_sum = 0.0;
    double policy_loss_sum = 0.0;
    double value_loss_sum = 0.0;
    double entropy_sum = 0.0;
    std::size_t sample_count = 0;

    for (std::size_t epoch = 0; epoch < config_.num_epochs; ++epoch) {
        const std::vector<std::uint32_t> order = rng_.permutation(n);
        for (std::size_t start = 0; start < n; start += config_.minibatch_size) {
            const std::size_t end = std::min(n, start + config_.minibatch_size);
            const double inv_batch = 1.0 / static_cast<double>(end - start);
            std::fill(policy_grad.begin(), policy_grad.end(), 0.0);
            std::fill(value_grad.begin(), value_grad.end(), 0.0);

            for (std::size_t pos = start; pos < end; ++pos) {
                const Transition& t = buffer[order[pos]];
                const double advantage = buffer.advantage(order[pos]);
                const double value_target = buffer.value_target(order[pos]);

                // --- policy terms ---
                const GaussianPolicy::Eval eval =
                    policy_.evaluate(t.observation, t.action, policy_ws);
                const double ratio = std::exp(eval.log_prob - t.log_prob);
                const double clipped =
                    std::clamp(ratio, 1.0 - config_.clip_param, 1.0 + config_.clip_param);
                const double surrogate = std::min(ratio * advantage, clipped * advantage);
                const double kl = GaussianPolicy::kl(t.moments, eval.moments);

                // d(-surrogate)/d logp: active only when the unclipped branch
                // is the binding one.
                const bool unclipped_active = ratio * advantage <= clipped * advantage;
                const double d_logp =
                    unclipped_active ? -advantage * ratio * inv_batch : 0.0;
                const double d_entropy = -config_.entropy_coeff * inv_batch;
                const double d_kl = kl_coeff_ * inv_batch;
                policy_.backward(policy_ws, eval, t.action, d_logp, d_entropy, d_kl, &t.moments,
                                 policy_grad);

                // --- value term (clipped squared error, RLlib-style) ---
                const double value = value_net_.forward_cached(t.observation, value_ws)[0];
                const double error = value - value_target;
                const double sq = error * error;
                double d_value = 0.0;
                if (sq <= config_.vf_clip_param) {
                    d_value = config_.vf_loss_coeff * 2.0 * error * inv_batch;
                }
                const std::array<double, 1> grad_out{d_value};
                value_net_.backward(value_ws, grad_out, value_grad);

                policy_loss_sum += -surrogate;
                value_loss_sum += std::min(sq, config_.vf_clip_param);
                entropy_sum += eval.entropy;
                kl_sum += kl;
                ++sample_count;
            }
            policy_opt_.step(policy_.network().parameters(), policy_grad,
                             config_.max_grad_norm);
            value_opt_.step(value_net_.parameters(), value_grad, config_.max_grad_norm);
        }
    }

    const double inv = sample_count > 0 ? 1.0 / static_cast<double>(sample_count) : 0.0;
    stats.mean_kl = kl_sum * inv;
    stats.policy_loss = policy_loss_sum * inv;
    stats.value_loss = value_loss_sum * inv;
    stats.entropy = entropy_sum * inv;

    // Adaptive KL coefficient (RLlib's update_kl rule).
    if (stats.mean_kl > 2.0 * config_.kl_target) {
        kl_coeff_ *= 1.5;
    } else if (stats.mean_kl < 0.5 * config_.kl_target) {
        kl_coeff_ *= 0.5;
    }
    stats.kl_coeff = kl_coeff_;
}

PpoIterationStats PpoTrainer::train_iteration() {
    RolloutBuffer buffer(config_.train_batch_size);
    PpoIterationStats stats;
    collect_batch(buffer, stats);
    optimize_batch(buffer, stats);
    history_.push_back(stats);
    return stats;
}

std::vector<PpoIterationStats> PpoTrainer::train(
    std::size_t iterations, const std::function<void(const PpoIterationStats&)>& on_iteration) {
    for (std::size_t i = 0; i < iterations; ++i) {
        const PpoIterationStats stats = train_iteration();
        if (on_iteration) {
            on_iteration(stats);
        }
    }
    return history_;
}

double PpoTrainer::evaluate(std::size_t episodes) {
    double total = 0.0;
    for (std::size_t e = 0; e < episodes; ++e) {
        std::vector<double> obs = env_.reset(rng_);
        double episode_return = 0.0;
        while (true) {
            const std::vector<double> action = policy_.mean_action(obs);
            const Env::StepResult step = env_.step(action, rng_);
            episode_return += step.reward;
            if (step.done) {
                break;
            }
            obs = step.observation;
        }
        total += episode_return;
    }
    // Evaluation interrupts any in-flight collection episode.
    episode_active_ = false;
    return total / static_cast<double>(episodes);
}

} // namespace mflb::rl
