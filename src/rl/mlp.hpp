/// \file mlp.hpp
/// Fully-connected network with tanh hidden activations and a linear output
/// layer — the paper's policy/value architecture (Fig. 2 shows 256-256 tanh).
/// Implements manual reverse-mode differentiation; parameters and gradients
/// are flat vectors so a single Adam instance optimizes the whole model.
#pragma once

#include "support/rng.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace mflb::rl {

/// Multi-layer perceptron with tanh hidden units.
class Mlp {
public:
    /// \param layer_sizes e.g. {8, 256, 256, 144}: input, hidden..., output.
    /// Weights use Xavier-uniform init; final layer is scaled down by 0.01
    /// (standard policy-head practice so the initial policy is near-uniform).
    Mlp(std::vector<std::size_t> layer_sizes, Rng& rng, double output_scale = 0.01);

    std::size_t input_dim() const noexcept { return layers_.front(); }
    std::size_t output_dim() const noexcept { return layers_.back(); }
    std::size_t parameter_count() const noexcept { return params_.size(); }
    std::span<double> parameters() noexcept { return params_; }
    std::span<const double> parameters() const noexcept { return params_; }
    void set_parameters(std::span<const double> params);
    const std::vector<std::size_t>& layer_sizes() const noexcept { return layers_; }

    /// Scratch space reused across forward/backward calls; owning it outside
    /// the network keeps the network const-thread-safe for rollouts.
    struct Workspace {
        std::vector<std::vector<double>> activations; ///< act[0] = input, act[L] = output.
    };

    /// Plain inference.
    std::vector<double> forward(std::span<const double> input) const;
    /// Forward pass that records activations for a later backward().
    std::vector<double> forward_cached(std::span<const double> input, Workspace& ws) const;
    /// Accumulates dLoss/dparams into `grad_params` (size parameter_count())
    /// given dLoss/doutput; optionally also returns dLoss/dinput.
    void backward(const Workspace& ws, std::span<const double> grad_output,
                  std::span<double> grad_params, std::vector<double>* grad_input = nullptr) const;

    /// Mutable view of the output layer's bias vector (size output_dim()).
    /// Used to initialize policy heads (e.g. the log-std bias).
    std::span<double> output_bias() noexcept;

private:
    std::size_t weight_offset(std::size_t layer) const noexcept;
    std::size_t bias_offset(std::size_t layer) const noexcept;

    std::vector<std::size_t> layers_;
    std::vector<double> params_;
    std::vector<std::size_t> offsets_; ///< per layer: [w_offset, b_offset]...
};

} // namespace mflb::rl
