/// \file mlp.hpp
/// Fully-connected network with tanh hidden activations and a linear output
/// layer — the paper's policy/value architecture (Fig. 2 shows 256-256 tanh).
/// Implements manual reverse-mode differentiation; parameters and gradients
/// are flat vectors so a single Adam instance optimizes the whole model.
///
/// Two compute paths share the same parameters:
///  - the per-sample path (`forward`/`forward_cached`/`backward`) used by
///    rollout collection and policy inference (core/neural_policy.hpp), and
///  - the batch-major path (`forward_batch`/`forward_cached_batch`/
///    `backward_batch`) over row-major (batch × dim) buffers, built on the
///    cache-blocked GEMM kernels of math/gemm.hpp. The GEMM kernels
///    accumulate every reduction in ascending order, so the batched passes
///    are bit-identical to running the per-sample path row by row.
/// The `BatchWorkspace` is constructor-sized for a maximum batch, making the
/// steady-state training step allocation-free.
#pragma once

#include "support/rng.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace mflb::rl {

/// Multi-layer perceptron with tanh hidden units.
class Mlp {
public:
    /// \param layer_sizes e.g. {8, 256, 256, 144}: input, hidden..., output.
    /// Weights use Xavier-uniform init; final layer is scaled down by 0.01
    /// (standard policy-head practice so the initial policy is near-uniform).
    Mlp(std::vector<std::size_t> layer_sizes, Rng& rng, double output_scale = 0.01);

    std::size_t input_dim() const noexcept { return layers_.front(); }
    std::size_t output_dim() const noexcept { return layers_.back(); }
    std::size_t parameter_count() const noexcept { return params_.size(); }
    std::span<double> parameters() noexcept { return params_; }
    std::span<const double> parameters() const noexcept { return params_; }
    void set_parameters(std::span<const double> params);
    const std::vector<std::size_t>& layer_sizes() const noexcept { return layers_; }

    /// Scratch space reused across forward/backward calls; owning it outside
    /// the network keeps the network const-thread-safe for rollouts.
    struct Workspace {
        std::vector<std::vector<double>> activations; ///< act[0] = input, act[L] = output.
    };

    /// Plain inference (batch-of-1 semantics; equals `forward_batch` row 0).
    std::vector<double> forward(std::span<const double> input) const;
    /// Forward pass that records activations for a later backward().
    std::vector<double> forward_cached(std::span<const double> input, Workspace& ws) const;
    /// Forward pass reusing `ws` without copying the output: returns a view
    /// of the output activations, valid until the next call with this
    /// workspace. Allocation-free once `ws` is warm.
    std::span<const double> forward_span(std::span<const double> input, Workspace& ws) const;
    /// Accumulates dLoss/dparams into `grad_params` (size parameter_count())
    /// given dLoss/doutput; optionally also returns dLoss/dinput.
    void backward(const Workspace& ws, std::span<const double> grad_output,
                  std::span<double> grad_params, std::vector<double>* grad_input = nullptr) const;

    /// Batch-major scratch, constructor-sized so the steady-state training
    /// step never touches the heap. Buffers hold up to `max_batch` rows; a
    /// forward with `batch` ≤ max_batch packs its rows contiguously.
    struct BatchWorkspace {
        BatchWorkspace() = default;
        BatchWorkspace(const Mlp& net, std::size_t max_batch);

        std::size_t max_batch = 0;
        std::size_t batch = 0; ///< rows of the last forward_cached_batch.
        std::vector<std::vector<double>> activations; ///< act[l]: batch × layers[l].
        std::vector<double> delta;      ///< batch × widest layer scratch.
        std::vector<double> delta_next; ///< second delta buffer (ping-pong).
        std::vector<double> wt;         ///< largest layer's weights, transposed (in × out).
        std::vector<double> at;         ///< batch-major operand transposed (dim × batch).
    };

    /// Batched forward over `batch` row-major input rows (batch × input_dim),
    /// writing `batch × output_dim` rows into `outputs`. Pure inference
    /// convenience over forward_cached_batch.
    void forward_batch(std::span<const double> inputs, std::size_t batch, BatchWorkspace& ws,
                       std::span<double> outputs) const;
    /// Batched forward recording all activations for backward_batch; returns
    /// a view of the output rows (batch × output_dim) inside `ws`.
    std::span<const double> forward_cached_batch(std::span<const double> inputs,
                                                 std::size_t batch, BatchWorkspace& ws) const;
    /// Accumulates dLoss/dparams over the whole batch into `grad_params`
    /// given per-row output gradients (batch × output_dim). Optionally writes
    /// per-row input gradients (batch × input_dim) into `grad_inputs`.
    /// Bit-identical to summing per-sample backward() calls in row order.
    void backward_batch(BatchWorkspace& ws, std::span<const double> grad_outputs,
                        std::span<double> grad_params,
                        std::span<double> grad_inputs = {}) const;

    /// Mutable view of the output layer's bias vector (size output_dim()).
    /// Used to initialize policy heads (e.g. the log-std bias).
    std::span<double> output_bias() noexcept;

private:
    std::size_t weight_offset(std::size_t layer) const noexcept;
    std::size_t bias_offset(std::size_t layer) const noexcept;

    std::vector<std::size_t> layers_;
    std::vector<double> params_;
    std::vector<std::size_t> offsets_; ///< per layer: [w_offset, b_offset]...
};

} // namespace mflb::rl
