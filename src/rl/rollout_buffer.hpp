/// \file rollout_buffer.hpp
/// On-policy trajectory storage with Generalized Advantage Estimation
/// (Schulman et al., 2016). The paper trains with GAE λ_RL = 1 (Table 2),
/// i.e. plain discounted-return advantages; the general λ implementation is
/// kept for ablations.
#pragma once

#include "rl/gaussian_policy.hpp"

#include <cstddef>
#include <vector>

namespace mflb::rl {

/// One environment transition, with the sampling distribution's moments
/// recorded for the PPO KL penalty.
struct Transition {
    std::vector<double> observation;
    std::vector<double> action;
    double reward = 0.0;
    double value = 0.0;    ///< V(s) under the critic at collection time.
    double log_prob = 0.0; ///< log π_old(a|s).
    bool terminal = false; ///< true if the episode ended at this step.
    GaussianPolicy::Moments moments; ///< π_old moments at s.
};

/// Fixed-capacity on-policy buffer with GAE post-processing.
class RolloutBuffer {
public:
    explicit RolloutBuffer(std::size_t capacity);

    void clear();
    bool full() const noexcept { return transitions_.size() >= capacity_; }
    std::size_t size() const noexcept { return transitions_.size(); }
    const Transition& operator[](std::size_t i) const { return transitions_[i]; }

    void add(Transition transition);

    /// Computes advantages and returns-to-go. `bootstrap_value` is V(s_T)
    /// for a trajectory truncated (not terminated) at the buffer boundary.
    void compute_gae(double discount, double gae_lambda, double bootstrap_value);

    /// Standardizes advantages to zero mean / unit std (RLlib default).
    void normalize_advantages() noexcept;

    double advantage(std::size_t i) const { return advantages_[i]; }
    double value_target(std::size_t i) const { return returns_[i]; }

private:
    std::size_t capacity_;
    std::vector<Transition> transitions_;
    std::vector<double> advantages_;
    std::vector<double> returns_;
};

} // namespace mflb::rl
