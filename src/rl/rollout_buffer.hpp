/// \file rollout_buffer.hpp
/// On-policy trajectory storage with Generalized Advantage Estimation
/// (Schulman et al., 2016). The paper trains with GAE λ_RL = 1 (Table 2),
/// i.e. plain discounted-return advantages; the general λ implementation is
/// kept for ablations.
///
/// Storage is structure-of-arrays with fixed observation/action dimensions:
/// every field lives in one contiguous row-major buffer sized at
/// construction, so steady-state collection and the batched PPO update never
/// touch the heap, and minibatch gathers are plain row copies into the GEMM
/// batch workspaces. Transitions are grouped into *trajectory segments* —
/// one per rollout environment — each carrying its own bootstrap value for
/// the GAE truncation at the segment boundary; parallel rollout workers fill
/// private buffers that are merged with `append_segment` in fixed env order
/// (the determinism contract of the parallel trainer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mflb::rl {

/// Fixed-capacity on-policy buffer with GAE post-processing.
class RolloutBuffer {
public:
    /// `obs_dim`/`action_dim` fix the row widths of all per-transition
    /// vector fields (old policy moments included).
    RolloutBuffer(std::size_t capacity, std::size_t obs_dim, std::size_t action_dim);

    void clear();
    bool full() const noexcept { return size_ >= capacity_; }
    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t obs_dim() const noexcept { return obs_dim_; }
    std::size_t action_dim() const noexcept { return act_dim_; }

    /// Appends one transition to the currently open segment. `old_mean`/
    /// `old_log_std` are the sampling distribution's (clamped) moments,
    /// recorded for the PPO KL penalty.
    void add(std::span<const double> observation, std::span<const double> action, double reward,
             double value, double log_prob, bool terminal, std::span<const double> old_mean,
             std::span<const double> old_log_std);

    /// Closes the currently open segment, recording V(s_T) for a trajectory
    /// truncated (not terminated) at the segment boundary. No-op when the
    /// open segment is empty.
    void seal_segment(double bootstrap_value);

    /// Copies all of `other`'s transitions as one sealed segment with the
    /// given bootstrap. This is the fixed-order serial reduction step of the
    /// parallel rollout merge; `other` must have matching dimensions and no
    /// open segment state is required of it (its transitions form exactly
    /// one segment here).
    void append_segment(const RolloutBuffer& other, double bootstrap_value);

    /// Computes advantages and returns-to-go per sealed segment (reverse
    /// scan within each segment, using its bootstrap at the boundary). Any
    /// still-open segment is sealed with bootstrap 0 first.
    void compute_gae(double discount, double gae_lambda);

    /// Standardizes advantages to zero mean / unit std (RLlib default).
    void normalize_advantages() noexcept;

    // Row accessors.
    std::span<const double> observation(std::size_t i) const {
        return {observations_.data() + i * obs_dim_, obs_dim_};
    }
    std::span<const double> action(std::size_t i) const {
        return {actions_.data() + i * act_dim_, act_dim_};
    }
    std::span<const double> old_mean(std::size_t i) const {
        return {old_means_.data() + i * act_dim_, act_dim_};
    }
    std::span<const double> old_log_std(std::size_t i) const {
        return {old_log_stds_.data() + i * act_dim_, act_dim_};
    }
    double reward(std::size_t i) const { return rewards_[i]; }
    double value(std::size_t i) const { return values_[i]; }
    double log_prob(std::size_t i) const { return log_probs_[i]; }
    bool terminal(std::size_t i) const { return terminals_[i] != 0; }
    double advantage(std::size_t i) const { return advantages_[i]; }
    double value_target(std::size_t i) const { return returns_[i]; }

private:
    struct Segment {
        std::size_t begin = 0;
        std::size_t end = 0;
        double bootstrap = 0.0;
    };

    std::size_t capacity_;
    std::size_t obs_dim_;
    std::size_t act_dim_;
    std::size_t size_ = 0;
    std::size_t open_begin_ = 0; ///< start of the currently open segment.
    std::vector<double> observations_; ///< capacity × obs_dim.
    std::vector<double> actions_;      ///< capacity × action_dim.
    std::vector<double> old_means_;    ///< capacity × action_dim.
    std::vector<double> old_log_stds_; ///< capacity × action_dim.
    std::vector<double> rewards_;
    std::vector<double> values_;
    std::vector<double> log_probs_;
    std::vector<std::uint8_t> terminals_;
    std::vector<double> advantages_;
    std::vector<double> returns_;
    std::vector<Segment> segments_;
};

} // namespace mflb::rl
