/// \file adam.hpp
/// Adam optimizer (Kingma & Ba, 2015) over a flat parameter vector, with
/// optional global-norm gradient clipping as used by RLlib's PPO trainer.
/// \see rl/ppo.hpp, whose Table 2 defaults set the learning rate consumed
/// here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mflb::rl {

/// First-order optimizer state for a fixed-size parameter vector.
class Adam {
public:
    Adam(std::size_t parameter_count, double learning_rate, double beta1 = 0.9,
         double beta2 = 0.999, double epsilon = 1e-8);

    /// Applies one update in place; `grads` is dLoss/dparams (minimized).
    /// If `max_grad_norm` > 0 the gradient is rescaled to that global norm
    /// when it exceeds it.
    void step(std::span<double> params, std::span<const double> grads,
              double max_grad_norm = 0.0);

    double learning_rate() const noexcept { return lr_; }
    void set_learning_rate(double lr) noexcept { lr_ = lr; }
    std::size_t updates() const noexcept { return t_; }

private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    std::size_t t_ = 0;
    std::vector<double> m_;
    std::vector<double> v_;
};

} // namespace mflb::rl
