#include "rl/rollout_buffer.hpp"

#include <cmath>
#include <stdexcept>

namespace mflb::rl {

RolloutBuffer::RolloutBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
        throw std::invalid_argument("RolloutBuffer: capacity must be positive");
    }
    transitions_.reserve(capacity);
}

void RolloutBuffer::clear() {
    transitions_.clear();
    advantages_.clear();
    returns_.clear();
}

void RolloutBuffer::add(Transition transition) {
    if (full()) {
        throw std::logic_error("RolloutBuffer::add: buffer full");
    }
    transitions_.push_back(std::move(transition));
}

void RolloutBuffer::compute_gae(double discount, double gae_lambda, double bootstrap_value) {
    const std::size_t n = transitions_.size();
    advantages_.assign(n, 0.0);
    returns_.assign(n, 0.0);
    double advantage = 0.0;
    double next_value = bootstrap_value;
    for (std::size_t i = n; i-- > 0;) {
        const Transition& t = transitions_[i];
        if (t.terminal) {
            next_value = 0.0;
            advantage = 0.0;
        }
        const double delta = t.reward + discount * next_value - t.value;
        advantage = delta + discount * gae_lambda * advantage;
        advantages_[i] = advantage;
        returns_[i] = advantage + t.value;
        next_value = t.value;
    }
}

void RolloutBuffer::normalize_advantages() noexcept {
    const std::size_t n = advantages_.size();
    if (n < 2) {
        return;
    }
    double mean = 0.0;
    for (double a : advantages_) {
        mean += a;
    }
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double a : advantages_) {
        var += (a - mean) * (a - mean);
    }
    var /= static_cast<double>(n);
    const double stddev = std::sqrt(var) + 1e-8;
    for (double& a : advantages_) {
        a = (a - mean) / stddev;
    }
}

} // namespace mflb::rl
