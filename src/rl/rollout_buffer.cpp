#include "rl/rollout_buffer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mflb::rl {

RolloutBuffer::RolloutBuffer(std::size_t capacity, std::size_t obs_dim, std::size_t action_dim)
    : capacity_(capacity), obs_dim_(obs_dim), act_dim_(action_dim) {
    if (capacity == 0) {
        throw std::invalid_argument("RolloutBuffer: capacity must be positive");
    }
    observations_.assign(capacity * obs_dim_, 0.0);
    actions_.assign(capacity * act_dim_, 0.0);
    old_means_.assign(capacity * act_dim_, 0.0);
    old_log_stds_.assign(capacity * act_dim_, 0.0);
    rewards_.assign(capacity, 0.0);
    values_.assign(capacity, 0.0);
    log_probs_.assign(capacity, 0.0);
    terminals_.assign(capacity, 0);
    advantages_.assign(capacity, 0.0);
    returns_.assign(capacity, 0.0);
    segments_.reserve(8);
}

void RolloutBuffer::clear() {
    size_ = 0;
    open_begin_ = 0;
    segments_.clear();
}

void RolloutBuffer::add(std::span<const double> observation, std::span<const double> action,
                        double reward, double value, double log_prob, bool terminal,
                        std::span<const double> old_mean,
                        std::span<const double> old_log_std) {
    if (full()) {
        throw std::logic_error("RolloutBuffer::add: buffer full");
    }
    if (observation.size() != obs_dim_ || action.size() != act_dim_ ||
        old_mean.size() != act_dim_ || old_log_std.size() != act_dim_) {
        throw std::invalid_argument("RolloutBuffer::add: row size mismatch");
    }
    std::copy(observation.begin(), observation.end(),
              observations_.begin() + static_cast<std::ptrdiff_t>(size_ * obs_dim_));
    std::copy(action.begin(), action.end(),
              actions_.begin() + static_cast<std::ptrdiff_t>(size_ * act_dim_));
    std::copy(old_mean.begin(), old_mean.end(),
              old_means_.begin() + static_cast<std::ptrdiff_t>(size_ * act_dim_));
    std::copy(old_log_std.begin(), old_log_std.end(),
              old_log_stds_.begin() + static_cast<std::ptrdiff_t>(size_ * act_dim_));
    rewards_[size_] = reward;
    values_[size_] = value;
    log_probs_[size_] = log_prob;
    terminals_[size_] = terminal ? 1 : 0;
    ++size_;
}

void RolloutBuffer::seal_segment(double bootstrap_value) {
    if (size_ == open_begin_) {
        return;
    }
    segments_.push_back({open_begin_, size_, bootstrap_value});
    open_begin_ = size_;
}

void RolloutBuffer::append_segment(const RolloutBuffer& other, double bootstrap_value) {
    if (other.obs_dim_ != obs_dim_ || other.act_dim_ != act_dim_) {
        throw std::invalid_argument("RolloutBuffer::append_segment: dimension mismatch");
    }
    if (size_ != open_begin_) {
        throw std::logic_error("RolloutBuffer::append_segment: open segment in progress");
    }
    const std::size_t n = other.size_;
    if (size_ + n > capacity_) {
        throw std::logic_error("RolloutBuffer::append_segment: capacity exceeded");
    }
    if (n == 0) {
        return;
    }
    auto copy_rows = [n](const std::vector<double>& src, std::vector<double>& dst,
                         std::size_t dim, std::size_t at) {
        std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(n * dim),
                  dst.begin() + static_cast<std::ptrdiff_t>(at * dim));
    };
    copy_rows(other.observations_, observations_, obs_dim_, size_);
    copy_rows(other.actions_, actions_, act_dim_, size_);
    copy_rows(other.old_means_, old_means_, act_dim_, size_);
    copy_rows(other.old_log_stds_, old_log_stds_, act_dim_, size_);
    copy_rows(other.rewards_, rewards_, 1, size_);
    copy_rows(other.values_, values_, 1, size_);
    copy_rows(other.log_probs_, log_probs_, 1, size_);
    std::copy(other.terminals_.begin(), other.terminals_.begin() + static_cast<std::ptrdiff_t>(n),
              terminals_.begin() + static_cast<std::ptrdiff_t>(size_));
    segments_.push_back({size_, size_ + n, bootstrap_value});
    size_ += n;
    open_begin_ = size_;
}

void RolloutBuffer::compute_gae(double discount, double gae_lambda) {
    seal_segment(0.0);
    for (const Segment& segment : segments_) {
        double advantage = 0.0;
        double next_value = segment.bootstrap;
        for (std::size_t i = segment.end; i-- > segment.begin;) {
            if (terminals_[i] != 0) {
                next_value = 0.0;
                advantage = 0.0;
            }
            const double delta = rewards_[i] + discount * next_value - values_[i];
            advantage = delta + discount * gae_lambda * advantage;
            advantages_[i] = advantage;
            returns_[i] = advantage + values_[i];
            next_value = values_[i];
        }
    }
}

void RolloutBuffer::normalize_advantages() noexcept {
    const std::size_t n = size_;
    if (n < 2) {
        return;
    }
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mean += advantages_[i];
    }
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        var += (advantages_[i] - mean) * (advantages_[i] - mean);
    }
    var /= static_cast<double>(n);
    const double stddev = std::sqrt(var) + 1e-8;
    for (std::size_t i = 0; i < n; ++i) {
        advantages_[i] = (advantages_[i] - mean) / stddev;
    }
}

} // namespace mflb::rl
