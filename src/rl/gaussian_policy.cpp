#include "rl/gaussian_policy.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mflb::rl {

namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727; // 0.5 * ln(2π)

std::vector<std::size_t> layer_spec(std::size_t obs_dim, const std::vector<std::size_t>& hidden,
                                    std::size_t action_dim) {
    std::vector<std::size_t> layers;
    layers.push_back(obs_dim);
    layers.insert(layers.end(), hidden.begin(), hidden.end());
    layers.push_back(2 * action_dim); // mean and log-std heads
    return layers;
}
} // namespace

GaussianPolicy::GaussianPolicy(std::size_t obs_dim, std::size_t action_dim,
                               const std::vector<std::size_t>& hidden, Rng& rng)
    : obs_dim_(obs_dim), action_dim_(action_dim), net_(layer_spec(obs_dim, hidden, action_dim), rng) {}

GaussianPolicy::Moments GaussianPolicy::moments(std::span<const double> obs) const {
    const std::vector<double> out = net_.forward(obs);
    Moments m;
    m.mean.assign(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(action_dim_));
    m.log_std.resize(action_dim_);
    for (std::size_t i = 0; i < action_dim_; ++i) {
        m.log_std[i] = std::clamp(out[action_dim_ + i], kMinLogStd, kMaxLogStd);
    }
    return m;
}

GaussianPolicy::Sample GaussianPolicy::sample(std::span<const double> obs, Rng& rng) const {
    const Moments m = moments(obs);
    Sample s;
    s.action.resize(action_dim_);
    for (std::size_t i = 0; i < action_dim_; ++i) {
        const double sigma = std::exp(m.log_std[i]);
        s.action[i] = m.mean[i] + sigma * rng.normal();
        const double zscore = (s.action[i] - m.mean[i]) / sigma;
        s.log_prob += -0.5 * zscore * zscore - m.log_std[i] - kHalfLog2Pi;
    }
    return s;
}

double GaussianPolicy::sample_with_moments(std::span<const double> obs, Rng& rng,
                                           Mlp::Workspace& ws, std::span<double> action,
                                           std::span<double> mean,
                                           std::span<double> log_std) const {
    if (action.size() != action_dim_ || mean.size() != action_dim_ ||
        log_std.size() != action_dim_) {
        throw std::invalid_argument("GaussianPolicy::sample_with_moments: size mismatch");
    }
    const std::span<const double> out = net_.forward_span(obs, ws);
    double log_prob = 0.0;
    for (std::size_t i = 0; i < action_dim_; ++i) {
        mean[i] = out[i];
        log_std[i] = std::clamp(out[action_dim_ + i], kMinLogStd, kMaxLogStd);
        const double sigma = std::exp(log_std[i]);
        action[i] = mean[i] + sigma * rng.normal();
        const double zscore = (action[i] - mean[i]) / sigma;
        log_prob += -0.5 * zscore * zscore - log_std[i] - kHalfLog2Pi;
    }
    return log_prob;
}

std::vector<double> GaussianPolicy::mean_action(std::span<const double> obs) const {
    return moments(obs).mean;
}

void GaussianPolicy::mean_action_batch(std::span<const double> obs, std::size_t batch,
                                       Mlp::BatchWorkspace& ws, std::span<double> means) const {
    if (obs.size() != batch * obs_dim_ || means.size() != batch * action_dim_) {
        throw std::invalid_argument("GaussianPolicy::mean_action_batch: size mismatch");
    }
    const std::span<const double> out = net_.forward_cached_batch(obs, batch, ws);
    const std::size_t out_dim = net_.output_dim(); // 2 * action_dim_: [mean | log-std]
    for (std::size_t b = 0; b < batch; ++b) {
        std::copy_n(out.data() + b * out_dim, action_dim_, means.data() + b * action_dim_);
    }
}

GaussianPolicy::Eval GaussianPolicy::evaluate(std::span<const double> obs,
                                              std::span<const double> action,
                                              Mlp::Workspace& ws) const {
    if (action.size() != action_dim_) {
        throw std::invalid_argument("GaussianPolicy::evaluate: action size mismatch");
    }
    const std::vector<double> out = net_.forward_cached(obs, ws);
    Eval eval;
    eval.moments.mean.assign(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(action_dim_));
    eval.moments.log_std.resize(action_dim_);
    for (std::size_t i = 0; i < action_dim_; ++i) {
        const double ls = std::clamp(out[action_dim_ + i], kMinLogStd, kMaxLogStd);
        eval.moments.log_std[i] = ls;
        const double sigma = std::exp(ls);
        const double zscore = (action[i] - eval.moments.mean[i]) / sigma;
        eval.log_prob += -0.5 * zscore * zscore - ls - kHalfLog2Pi;
        eval.entropy += ls + 0.5 + kHalfLog2Pi;
    }
    return eval;
}

void GaussianPolicy::backward(const Mlp::Workspace& ws, const Eval& eval,
                              std::span<const double> action, double c_logp, double c_entropy,
                              double c_kl, const Moments* old,
                              std::span<double> grad_params) const {
    const std::vector<double>& raw = ws.activations.back();
    std::vector<double> grad_out(2 * action_dim_, 0.0);
    for (std::size_t i = 0; i < action_dim_; ++i) {
        const double mu = eval.moments.mean[i];
        const double ls = eval.moments.log_std[i];
        const double sigma = std::exp(ls);
        const double var = sigma * sigma;
        const double diff = action[i] - mu;

        double g_mu = c_logp * diff / var;
        // log-prob: d/dls = z^2 - 1; entropy: d/dls = 1.
        double g_ls = c_logp * (diff * diff / var - 1.0) + c_entropy;
        if (c_kl != 0.0 && old != nullptr) {
            const double mu_o = old->mean[i];
            const double sigma_o = std::exp(old->log_std[i]);
            const double delta = mu - mu_o;
            g_mu += c_kl * delta / var;
            g_ls += c_kl * (1.0 - (sigma_o * sigma_o + delta * delta) / var);
        }
        grad_out[i] = g_mu;
        // Straight-through clamp: no gradient where the raw log-std output
        // sits outside the clamp range.
        const double raw_ls = raw[action_dim_ + i];
        grad_out[action_dim_ + i] =
            (raw_ls > kMinLogStd && raw_ls < kMaxLogStd) ? g_ls : 0.0;
    }
    net_.backward(ws, grad_out, grad_params);
}

void GaussianPolicy::evaluate_batch(std::span<const double> obs, std::span<const double> actions,
                                    std::size_t batch, Mlp::BatchWorkspace& ws,
                                    std::span<double> means, std::span<double> log_stds,
                                    std::span<double> log_probs,
                                    std::span<double> entropies) const {
    if (actions.size() != batch * action_dim_ || means.size() != batch * action_dim_ ||
        log_stds.size() != batch * action_dim_ || log_probs.size() != batch ||
        entropies.size() != batch) {
        throw std::invalid_argument("GaussianPolicy::evaluate_batch: size mismatch");
    }
    const std::span<const double> out = net_.forward_cached_batch(obs, batch, ws);
    for (std::size_t row = 0; row < batch; ++row) {
        const double* raw = out.data() + row * 2 * action_dim_;
        const double* a = actions.data() + row * action_dim_;
        double* mu = means.data() + row * action_dim_;
        double* ls = log_stds.data() + row * action_dim_;
        double log_prob = 0.0;
        double entropy = 0.0;
        for (std::size_t i = 0; i < action_dim_; ++i) {
            mu[i] = raw[i];
            ls[i] = std::clamp(raw[action_dim_ + i], kMinLogStd, kMaxLogStd);
            const double sigma = std::exp(ls[i]);
            const double zscore = (a[i] - mu[i]) / sigma;
            log_prob += -0.5 * zscore * zscore - ls[i] - kHalfLog2Pi;
            entropy += ls[i] + 0.5 + kHalfLog2Pi;
        }
        log_probs[row] = log_prob;
        entropies[row] = entropy;
    }
}

void GaussianPolicy::backward_batch(Mlp::BatchWorkspace& ws, std::size_t batch,
                                    std::span<const double> actions,
                                    std::span<const double> means,
                                    std::span<const double> log_stds,
                                    std::span<const double> c_logp, double c_entropy,
                                    double c_kl, std::span<const double> old_means,
                                    std::span<const double> old_log_stds,
                                    std::span<double> grad_out,
                                    std::span<double> grad_params) const {
    const bool with_kl = c_kl != 0.0 && !old_means.empty();
    if (actions.size() != batch * action_dim_ || means.size() != batch * action_dim_ ||
        log_stds.size() != batch * action_dim_ || c_logp.size() != batch ||
        grad_out.size() != batch * 2 * action_dim_ ||
        (with_kl && (old_means.size() != batch * action_dim_ ||
                     old_log_stds.size() != batch * action_dim_))) {
        throw std::invalid_argument("GaussianPolicy::backward_batch: size mismatch");
    }
    const std::span<const double> raw_rows(ws.activations.back().data(),
                                           batch * 2 * action_dim_);
    for (std::size_t row = 0; row < batch; ++row) {
        const double* a = actions.data() + row * action_dim_;
        const double* mu_row = means.data() + row * action_dim_;
        const double* ls_row = log_stds.data() + row * action_dim_;
        const double* raw = raw_rows.data() + row * 2 * action_dim_;
        double* g = grad_out.data() + row * 2 * action_dim_;
        const double cp = c_logp[row];
        for (std::size_t i = 0; i < action_dim_; ++i) {
            const double mu = mu_row[i];
            const double ls = ls_row[i];
            const double sigma = std::exp(ls);
            const double var = sigma * sigma;
            const double diff = a[i] - mu;

            double g_mu = cp * diff / var;
            // log-prob: d/dls = z^2 - 1; entropy: d/dls = 1.
            double g_ls = cp * (diff * diff / var - 1.0) + c_entropy;
            if (with_kl) {
                const double mu_o = old_means[row * action_dim_ + i];
                const double sigma_o = std::exp(old_log_stds[row * action_dim_ + i]);
                const double delta = mu - mu_o;
                g_mu += c_kl * delta / var;
                g_ls += c_kl * (1.0 - (sigma_o * sigma_o + delta * delta) / var);
            }
            g[i] = g_mu;
            // Straight-through clamp: no gradient where the raw log-std
            // output sits outside the clamp range.
            const double raw_ls = raw[action_dim_ + i];
            g[action_dim_ + i] = (raw_ls > kMinLogStd && raw_ls < kMaxLogStd) ? g_ls : 0.0;
        }
    }
    net_.backward_batch(ws, grad_out, grad_params);
}

void GaussianPolicy::set_initial_mean(std::span<const double> mean) {
    if (mean.size() != action_dim_) {
        throw std::invalid_argument("GaussianPolicy::set_initial_mean: size mismatch");
    }
    std::span<double> bias = net_.output_bias();
    for (std::size_t i = 0; i < action_dim_; ++i) {
        bias[i] = mean[i];
    }
}

void GaussianPolicy::set_initial_log_std(double log_std) noexcept {
    std::span<double> bias = net_.output_bias();
    for (std::size_t i = action_dim_; i < 2 * action_dim_; ++i) {
        bias[i] = log_std;
    }
}

double GaussianPolicy::kl(const Moments& old_moments, const Moments& new_moments) noexcept {
    return kl(old_moments.mean, old_moments.log_std, new_moments.mean, new_moments.log_std);
}

double GaussianPolicy::kl(std::span<const double> old_mean,
                          std::span<const double> old_log_std,
                          std::span<const double> new_mean,
                          std::span<const double> new_log_std) noexcept {
    double total = 0.0;
    const std::size_t n = old_mean.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double ls_o = old_log_std[i];
        const double ls_n = new_log_std[i];
        const double var_o = std::exp(2.0 * ls_o);
        const double var_n = std::exp(2.0 * ls_n);
        const double delta = old_mean[i] - new_mean[i];
        total += ls_n - ls_o + (var_o + delta * delta) / (2.0 * var_n) - 0.5;
    }
    return total;
}

} // namespace mflb::rl
