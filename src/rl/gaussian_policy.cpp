#include "rl/gaussian_policy.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mflb::rl {

namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727; // 0.5 * ln(2π)

std::vector<std::size_t> layer_spec(std::size_t obs_dim, const std::vector<std::size_t>& hidden,
                                    std::size_t action_dim) {
    std::vector<std::size_t> layers;
    layers.push_back(obs_dim);
    layers.insert(layers.end(), hidden.begin(), hidden.end());
    layers.push_back(2 * action_dim); // mean and log-std heads
    return layers;
}
} // namespace

GaussianPolicy::GaussianPolicy(std::size_t obs_dim, std::size_t action_dim,
                               const std::vector<std::size_t>& hidden, Rng& rng)
    : obs_dim_(obs_dim), action_dim_(action_dim), net_(layer_spec(obs_dim, hidden, action_dim), rng) {}

GaussianPolicy::Moments GaussianPolicy::moments(std::span<const double> obs) const {
    const std::vector<double> out = net_.forward(obs);
    Moments m;
    m.mean.assign(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(action_dim_));
    m.log_std.resize(action_dim_);
    for (std::size_t i = 0; i < action_dim_; ++i) {
        m.log_std[i] = std::clamp(out[action_dim_ + i], kMinLogStd, kMaxLogStd);
    }
    return m;
}

GaussianPolicy::Sample GaussianPolicy::sample(std::span<const double> obs, Rng& rng) const {
    const Moments m = moments(obs);
    Sample s;
    s.action.resize(action_dim_);
    for (std::size_t i = 0; i < action_dim_; ++i) {
        const double sigma = std::exp(m.log_std[i]);
        s.action[i] = m.mean[i] + sigma * rng.normal();
        const double zscore = (s.action[i] - m.mean[i]) / sigma;
        s.log_prob += -0.5 * zscore * zscore - m.log_std[i] - kHalfLog2Pi;
    }
    return s;
}

std::vector<double> GaussianPolicy::mean_action(std::span<const double> obs) const {
    return moments(obs).mean;
}

GaussianPolicy::Eval GaussianPolicy::evaluate(std::span<const double> obs,
                                              std::span<const double> action,
                                              Mlp::Workspace& ws) const {
    if (action.size() != action_dim_) {
        throw std::invalid_argument("GaussianPolicy::evaluate: action size mismatch");
    }
    const std::vector<double> out = net_.forward_cached(obs, ws);
    Eval eval;
    eval.moments.mean.assign(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(action_dim_));
    eval.moments.log_std.resize(action_dim_);
    for (std::size_t i = 0; i < action_dim_; ++i) {
        const double ls = std::clamp(out[action_dim_ + i], kMinLogStd, kMaxLogStd);
        eval.moments.log_std[i] = ls;
        const double sigma = std::exp(ls);
        const double zscore = (action[i] - eval.moments.mean[i]) / sigma;
        eval.log_prob += -0.5 * zscore * zscore - ls - kHalfLog2Pi;
        eval.entropy += ls + 0.5 + kHalfLog2Pi;
    }
    return eval;
}

void GaussianPolicy::backward(const Mlp::Workspace& ws, const Eval& eval,
                              std::span<const double> action, double c_logp, double c_entropy,
                              double c_kl, const Moments* old,
                              std::span<double> grad_params) const {
    const std::vector<double>& raw = ws.activations.back();
    std::vector<double> grad_out(2 * action_dim_, 0.0);
    for (std::size_t i = 0; i < action_dim_; ++i) {
        const double mu = eval.moments.mean[i];
        const double ls = eval.moments.log_std[i];
        const double sigma = std::exp(ls);
        const double var = sigma * sigma;
        const double diff = action[i] - mu;

        double g_mu = c_logp * diff / var;
        // log-prob: d/dls = z^2 - 1; entropy: d/dls = 1.
        double g_ls = c_logp * (diff * diff / var - 1.0) + c_entropy;
        if (c_kl != 0.0 && old != nullptr) {
            const double mu_o = old->mean[i];
            const double sigma_o = std::exp(old->log_std[i]);
            const double delta = mu - mu_o;
            g_mu += c_kl * delta / var;
            g_ls += c_kl * (1.0 - (sigma_o * sigma_o + delta * delta) / var);
        }
        grad_out[i] = g_mu;
        // Straight-through clamp: no gradient where the raw log-std output
        // sits outside the clamp range.
        const double raw_ls = raw[action_dim_ + i];
        grad_out[action_dim_ + i] =
            (raw_ls > kMinLogStd && raw_ls < kMaxLogStd) ? g_ls : 0.0;
    }
    net_.backward(ws, grad_out, grad_params);
}

void GaussianPolicy::set_initial_mean(std::span<const double> mean) {
    if (mean.size() != action_dim_) {
        throw std::invalid_argument("GaussianPolicy::set_initial_mean: size mismatch");
    }
    std::span<double> bias = net_.output_bias();
    for (std::size_t i = 0; i < action_dim_; ++i) {
        bias[i] = mean[i];
    }
}

void GaussianPolicy::set_initial_log_std(double log_std) noexcept {
    std::span<double> bias = net_.output_bias();
    for (std::size_t i = action_dim_; i < 2 * action_dim_; ++i) {
        bias[i] = log_std;
    }
}

double GaussianPolicy::kl(const Moments& old_moments, const Moments& new_moments) noexcept {
    double total = 0.0;
    const std::size_t n = old_moments.mean.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double ls_o = old_moments.log_std[i];
        const double ls_n = new_moments.log_std[i];
        const double var_o = std::exp(2.0 * ls_o);
        const double var_n = std::exp(2.0 * ls_n);
        const double delta = old_moments.mean[i] - new_moments.mean[i];
        total += ls_n - ls_o + (var_o + delta * delta) / (2.0 * var_n) - 0.5;
    }
    return total;
}

} // namespace mflb::rl
