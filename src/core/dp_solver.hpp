/// \file dp_solver.hpp
/// Approximate dynamic programming for the MFC MDP — the classical route the
/// paper invokes via Proposition 1 (a stationary deterministic optimal
/// policy exists, found in principle by the Bellman equation) before turning
/// to RL because the state/action spaces are continuous.
///
/// We make the Bellman route concrete at small scale: discretize P(Z) to the
/// lattice of compositions ν = k/R (k ∈ N^{|Z|}, Σk = R), restrict actions
/// to a finite set of candidate decision rules, precompute the deterministic
/// transition ν' = proj_grid(T_ν(ν, λ, h)) and stage cost once per
/// (point, λ, rule), and run value iteration to the discounted fixed point.
/// The induced greedy policy is directly deployable as an UpperLevelPolicy
/// and serves as an independent check on what CEM / PPO learn
/// (bench/bench_ablation_solver.cpp runs the three-way comparison).
#pragma once

#include "field/mfc_env.hpp"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mflb {

/// Lattice of probability vectors with coordinates in {0, 1/R, ..., 1}.
class SimplexGrid {
public:
    /// \param dimension  number of bins (|Z| = B + 1).
    /// \param resolution R: coordinates are multiples of 1/R.
    SimplexGrid(std::size_t dimension, std::size_t resolution);

    std::size_t dimension() const noexcept { return dimension_; }
    std::size_t resolution() const noexcept { return resolution_; }
    std::size_t size() const noexcept { return points_.size(); }

    /// The grid point with the given index (a probability vector).
    std::span<const double> point(std::size_t index) const;
    /// Index of the closest grid point (largest-remainder rounding of ν·R,
    /// which minimizes l1 distortion among sum-preserving roundings).
    std::size_t project(std::span<const double> nu) const;

    /// Number of lattice points: C(R + n - 1, n - 1).
    static std::size_t lattice_size(std::size_t dimension, std::size_t resolution);

private:
    std::size_t dimension_;
    std::size_t resolution_;
    std::vector<std::vector<double>> points_;
    std::map<std::vector<int>, std::size_t> index_; ///< counts -> point index.
};

/// Configuration of the DP solve.
struct DpConfig {
    std::size_t resolution = 8;        ///< simplex lattice resolution R.
    std::vector<double> betas{0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 1e6};
                                       ///< Boltzmann action set (1e6 ≈ JSQ).
    double tolerance = 1e-6;           ///< sup-norm stopping threshold.
    std::size_t max_sweeps = 2000;
};

/// Value-iteration result: value table + greedy rule per (grid point, λ).
class DpPolicy final : public UpperLevelPolicy {
public:
    DpPolicy(SimplexGrid grid, std::vector<DecisionRule> actions,
             std::vector<std::size_t> greedy_action, std::vector<double> values,
             std::size_t num_lambda_states);

    DecisionRule decide(std::span<const double> nu, std::size_t lambda_state,
                        Rng& rng) const override;
    std::string name() const override { return "MF-DP"; }

    const SimplexGrid& grid() const noexcept { return grid_; }
    double value(std::size_t point, std::size_t lambda_state) const;
    std::size_t greedy_action(std::size_t point, std::size_t lambda_state) const;
    std::size_t num_actions() const noexcept { return actions_.size(); }

private:
    SimplexGrid grid_;
    std::vector<DecisionRule> actions_;
    std::vector<std::size_t> greedy_;
    std::vector<double> values_;
    std::size_t num_lambda_states_;
};

/// Diagnostics of the solve.
struct DpSolveStats {
    std::size_t sweeps = 0;
    double final_residual = 0.0;
    std::size_t states = 0;
    std::size_t actions = 0;
};

/// Runs value iteration for the discounted objective (31) on the discretized
/// MDP and returns the greedy policy. Deterministic; cost is dominated by
/// the one-off transition precomputation O(states · |Λ| · actions).
std::pair<DpPolicy, DpSolveStats> solve_mfc_dp(const MfcConfig& config, const DpConfig& dp);

} // namespace mflb
