/// \file mflb.hpp
/// Umbrella header: the public API of the mean-field load-balancing library.
///
/// Quickstart:
/// \code
///   #include "core/mflb.hpp"
///   using namespace mflb;
///
///   ExperimentConfig cfg;          // Table 1 defaults
///   cfg.dt = 5.0;
///   cfg.num_queues = 100;
///   cfg.num_clients = 10000;
///
///   const TupleSpace space(cfg.queue.num_states(), cfg.d);
///   const FixedRulePolicy jsq = make_jsq_policy(space);
///   const EvaluationResult r = evaluate_finite(cfg.finite_system(), jsq,
///                                              /*episodes=*/20, /*seed=*/1);
///   // r.total_drops.mean ± r.total_drops.half_width
/// \endcode
#pragma once

#include "core/config.hpp"
#include "core/dp_solver.hpp"
#include "core/evaluator.hpp"
#include "core/neural_policy.hpp"
#include "core/rl_adapter.hpp"
#include "core/scenarios.hpp"
#include "core/trainers.hpp"
#include "des/calendar_queue.hpp"
#include "des/des_system.hpp"
#include "des/event_queue.hpp"
#include "des/fel.hpp"
#include "des/sharded_des_system.hpp"
#include "field/arrival_flow.hpp"
#include "field/arrival_process.hpp"
#include "field/decision_rule.hpp"
#include "field/hetero_field.hpp"
#include "field/mfc_env.hpp"
#include "field/mmpp_fit.hpp"
#include "field/transition.hpp"
#include "field/tuple_space.hpp"
#include "math/expm.hpp"
#include "math/gemm.hpp"
#include "math/matrix.hpp"
#include "math/simplex.hpp"
#include "policies/fixed.hpp"
#include "policies/tabular.hpp"
#include "queueing/finite_system.hpp"
#include "queueing/gillespie.hpp"
#include "queueing/heterogeneous.hpp"
#include "queueing/memory_system.hpp"
#include "queueing/router.hpp"
#include "queueing/service_distribution.hpp"
#include "queueing/sojourn.hpp"
#include "queueing/system_base.hpp"
#include "rl/cem.hpp"
#include "rl/ppo.hpp"
#include "support/cli.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
