/// \file config.hpp
/// Experiment configuration mirroring the paper's Table 1 (system) and
/// Table 2 (PPO). One struct resolves into the per-module configs so every
/// bench/example derives its setup from the same source of truth.
#pragma once

#include "field/arrival_process.hpp"
#include "field/mfc_env.hpp"
#include "queueing/finite_system.hpp"
#include "rl/ppo.hpp"
#include "support/table.hpp"

#include <cstdint>
#include <string>
#include <string_view>

namespace mflb {

/// Which finite-system simulator realizes the model (same statistics, very
/// different cost profiles — see docs/ARCHITECTURE.md "Event-driven
/// backend" / "Sharded event-driven backend"):
///  - `Finite`     — epoch-synchronous `FiniteSystem`: per-queue Gillespie
///    loop every Δt; cost O(M) per epoch even when queues are idle.
///  - `Des`        — event-driven `DesSystem`: future-event-list simulation;
///    cost proportional to traffic, reports per-job sojourn percentiles.
///  - `ShardedDes` — `ShardedDesSystem`: the DES model partitioned into K
///    queue shards running lock-free in parallel between decision epochs;
///    deterministic for fixed (seed, K) regardless of thread count.
enum class SimBackend {
    Finite,
    Des,
    ShardedDes,
};

/// "finite" / "des" / "sharded-des".
std::string_view backend_name(SimBackend backend) noexcept;
/// Inverse of backend_name; throws std::invalid_argument naming the options.
SimBackend parse_backend(std::string_view name);

/// Table 1 of the paper; defaults are the paper's values.
struct ExperimentConfig {
    double dt = 1.0;                  ///< Δt ∈ [1, 10].
    QueueParams queue{5, 1.0};        ///< B = 5, α = 1.
    double lambda_high = 0.9;         ///< λ_h.
    double lambda_low = 0.6;          ///< λ_l.
    std::uint64_t num_clients = 10000;///< N ∈ [10^3, 10^6].
    std::size_t num_queues = 100;     ///< M ∈ [10^2, 10^3].
    int d = 2;                        ///< accessible queues per client.
    std::size_t monte_carlo_runs = 100; ///< n.
    /// D, cost per dropped job (Table 1). The objective counts drops
    /// directly (unit penalty); other values uniformly scale reported costs
    /// and never change policy orderings, so this field is informational.
    double drop_penalty = 1.0;
    int train_horizon = 500;          ///< T (training episode length).
    double eval_total_time = 500.0;   ///< T_e · Δt ≈ 500 time units.
    double discount = 0.99;           ///< γ (Table 2, used by both).
    ClientModel client_model = ClientModel::Aggregated;
    /// Partial information (paper §2.1 remark): K sampled queues used to
    /// estimate H^M for the upper-level policy; 0 = exact histogram.
    std::size_t histogram_sample_size = 0;
    /// Simulator realizing the finite system (`evaluate_backend` dispatches
    /// on this; the `--backend` CLI/bench flag overrides it).
    SimBackend backend = SimBackend::Finite;
    /// Queue shards K for the sharded-des backend (0 = min(8, M)); part of
    /// the result-determining (seed, K) pair. Ignored by the other backends.
    std::size_t shards = 0;
    /// Future-event-list implementation for the DES backends (heap or
    /// calendar; both yield bit-identical episodes — the `--fel` CLI/bench
    /// flag overrides it). Ignored by the finite backend.
    FelKind fel = FelKind::Calendar;
    /// Worker threads for the sharded-des epoch-parallel phase and the
    /// default for Monte Carlo replication fan-out (0 = all hardware
    /// threads). Never changes results (`--threads` CLI/bench flag).
    std::size_t threads = 0;
    /// Overlapped epoch pipeline for the sharded-des backend; bit-identical
    /// either way, off = the pre-pipeline barrier for A/B benching
    /// (`--pipeline` CLI flag).
    bool pipeline = true;
    /// Worker threads for the training fan-outs — PPO rollout slots and CEM
    /// population evaluation (0 = all hardware threads). Never changes
    /// results (`--train-threads` CLI/bench flag).
    std::size_t train_threads = 0;
    /// K parallel rollout environments for PPO training; part of the
    /// result-determining (seed, K) pair (`--num-envs` CLI/bench flag).
    std::size_t num_envs = 1;
    /// Routing discipline: `Policy` (default) is the decision-rule path;
    /// classical kinds (random, round-robin, jsq, jsq-d, sq-stale) bypass
    /// the upper-level policy entirely (`--router` CLI/bench flag).
    RouterSpec router{};
    /// Service-time law (exponential, deterministic, hyperexp, pareto), mean
    /// 1/α for every kind (`--service-dist` CLI/bench flag).
    ServiceConfig service{};
    /// Per-queue relative server speeds (empty = homogeneous). Resolved
    /// verbatim into `FiniteSystemConfig::server_speeds`.
    std::vector<double> server_speeds;
    /// Telemetry outputs (--metrics-out/--metrics-every/--trace-out CLI
    /// flags): the entry point builds one `TelemetrySession` from this and
    /// hands its pointer to the simulator/trainer configs. Both paths empty
    /// (the default) = telemetry fully disabled.
    TelemetryConfig telemetry{};

    /// T_e = nearest integer to eval_total_time / Δt (paper, Section 4).
    int eval_horizon() const noexcept;

    ArrivalProcess arrivals() const;
    /// MFC MDP with the *training* horizon T.
    MfcConfig mfc(bool eval_horizon_instead = false) const;
    /// Finite-system simulation with the evaluation horizon T_e.
    FiniteSystemConfig finite_system() const;

    /// Renders the resolved parameters as the paper's Table 1.
    Table to_table() const;
};

/// Renders PPO hyperparameters as the paper's Table 2.
Table ppo_config_table(const rl::PpoConfig& config);

} // namespace mflb
