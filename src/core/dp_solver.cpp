#include "core/dp_solver.hpp"

#include "field/transition.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace mflb {

namespace {
/// Recursively enumerates compositions of `remaining` into the tail bins.
void enumerate_compositions(std::vector<int>& counts, std::size_t bin, int remaining,
                            const std::function<void(const std::vector<int>&)>& emit) {
    if (bin + 1 == counts.size()) {
        counts[bin] = remaining;
        emit(counts);
        return;
    }
    for (int k = 0; k <= remaining; ++k) {
        counts[bin] = k;
        enumerate_compositions(counts, bin + 1, remaining - k, emit);
    }
}
} // namespace

SimplexGrid::SimplexGrid(std::size_t dimension, std::size_t resolution)
    : dimension_(dimension), resolution_(resolution) {
    if (dimension == 0 || resolution == 0) {
        throw std::invalid_argument("SimplexGrid: dimension and resolution must be positive");
    }
    const std::size_t expected = lattice_size(dimension, resolution);
    points_.reserve(expected);
    std::vector<int> counts(dimension, 0);
    enumerate_compositions(counts, 0, static_cast<int>(resolution),
                           [&](const std::vector<int>& c) {
                               std::vector<double> p(dimension_);
                               for (std::size_t i = 0; i < dimension_; ++i) {
                                   p[i] = static_cast<double>(c[i]) /
                                          static_cast<double>(resolution_);
                               }
                               index_.emplace(c, points_.size());
                               points_.push_back(std::move(p));
                           });
}

std::size_t SimplexGrid::lattice_size(std::size_t dimension, std::size_t resolution) {
    // C(R + n - 1, n - 1) computed multiplicatively.
    std::size_t result = 1;
    for (std::size_t i = 1; i < dimension; ++i) {
        result = result * (resolution + i) / i;
    }
    return result;
}

std::span<const double> SimplexGrid::point(std::size_t index) const {
    return points_.at(index);
}

std::size_t SimplexGrid::project(std::span<const double> nu) const {
    if (nu.size() != dimension_) {
        throw std::invalid_argument("SimplexGrid::project: dimension mismatch");
    }
    // Largest-remainder rounding of nu * R.
    std::vector<int> counts(dimension_);
    std::vector<std::pair<double, std::size_t>> remainders(dimension_);
    int total = 0;
    for (std::size_t i = 0; i < dimension_; ++i) {
        const double scaled = std::max(0.0, nu[i]) * static_cast<double>(resolution_);
        counts[i] = static_cast<int>(std::floor(scaled));
        remainders[i] = {scaled - std::floor(scaled), i};
        total += counts[i];
    }
    int deficit = static_cast<int>(resolution_) - total;
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t i = 0; deficit > 0 && i < dimension_; ++i, --deficit) {
        ++counts[remainders[i].second];
    }
    // Over-allocation can only arise from unnormalized input; trim from the
    // smallest remainders.
    for (std::size_t i = dimension_; deficit < 0 && i-- > 0;) {
        if (counts[remainders[i].second] > 0) {
            --counts[remainders[i].second];
            ++deficit;
        }
    }
    const auto it = index_.find(counts);
    if (it == index_.end()) {
        throw std::logic_error("SimplexGrid::project: rounding left the lattice");
    }
    return it->second;
}

DpPolicy::DpPolicy(SimplexGrid grid, std::vector<DecisionRule> actions,
                   std::vector<std::size_t> greedy_action, std::vector<double> values,
                   std::size_t num_lambda_states)
    : grid_(std::move(grid)),
      actions_(std::move(actions)),
      greedy_(std::move(greedy_action)),
      values_(std::move(values)),
      num_lambda_states_(num_lambda_states) {
    if (greedy_.size() != grid_.size() * num_lambda_states_ ||
        values_.size() != greedy_.size()) {
        throw std::invalid_argument("DpPolicy: table size mismatch");
    }
}

DecisionRule DpPolicy::decide(std::span<const double> nu, std::size_t lambda_state,
                              Rng& /*rng*/) const {
    if (lambda_state >= num_lambda_states_) {
        throw std::out_of_range("DpPolicy::decide: lambda state out of range");
    }
    const std::size_t point = grid_.project(nu);
    return actions_[greedy_[point * num_lambda_states_ + lambda_state]];
}

double DpPolicy::value(std::size_t point, std::size_t lambda_state) const {
    return values_.at(point * num_lambda_states_ + lambda_state);
}

std::size_t DpPolicy::greedy_action(std::size_t point, std::size_t lambda_state) const {
    return greedy_.at(point * num_lambda_states_ + lambda_state);
}

std::pair<DpPolicy, DpSolveStats> solve_mfc_dp(const MfcConfig& config, const DpConfig& dp) {
    const auto dim = static_cast<std::size_t>(config.queue.num_states());
    SimplexGrid grid(dim, dp.resolution);
    const TupleSpace space(config.queue.num_states(), config.d);
    const ExactDiscretization disc(config.queue, config.dt);

    std::vector<DecisionRule> actions;
    actions.reserve(dp.betas.size());
    for (const double beta : dp.betas) {
        actions.push_back(DecisionRule::greedy_softmax(space, beta));
    }

    const std::size_t num_lambda = config.arrivals.num_states();
    const std::size_t states = grid.size() * num_lambda;
    const std::size_t num_actions = actions.size();

    // Precompute deterministic transitions and stage costs.
    std::vector<std::size_t> next_point(states * num_actions);
    std::vector<double> stage_cost(states * num_actions);
    for (std::size_t p = 0; p < grid.size(); ++p) {
        const std::span<const double> nu = grid.point(p);
        for (std::size_t l = 0; l < num_lambda; ++l) {
            const double lambda = config.arrivals.level(l);
            for (std::size_t a = 0; a < num_actions; ++a) {
                const MeanFieldStep step = disc.step(nu, actions[a], lambda);
                const std::size_t flat = (p * num_lambda + l) * num_actions + a;
                next_point[flat] = grid.project(step.nu_next);
                stage_cost[flat] = step.expected_drops;
            }
        }
    }

    // Value iteration: V(p, l) = max_a [-cost + γ Σ_{l'} P(l'|l) V(p', l')].
    std::vector<double> values(states, 0.0);
    std::vector<double> updated(states, 0.0);
    std::vector<std::size_t> greedy(states, 0);
    const Matrix& chain = config.arrivals.transition();
    DpSolveStats stats;
    stats.states = states;
    stats.actions = num_actions;
    for (std::size_t sweep = 0; sweep < dp.max_sweeps; ++sweep) {
        double residual = 0.0;
        for (std::size_t p = 0; p < grid.size(); ++p) {
            for (std::size_t l = 0; l < num_lambda; ++l) {
                const std::size_t state = p * num_lambda + l;
                double best = -1e300;
                std::size_t best_action = 0;
                for (std::size_t a = 0; a < num_actions; ++a) {
                    const std::size_t flat = state * num_actions + a;
                    double continuation = 0.0;
                    for (std::size_t l2 = 0; l2 < num_lambda; ++l2) {
                        continuation +=
                            chain(l, l2) * values[next_point[flat] * num_lambda + l2];
                    }
                    const double q = -stage_cost[flat] + config.discount * continuation;
                    if (q > best) {
                        best = q;
                        best_action = a;
                    }
                }
                updated[state] = best;
                greedy[state] = best_action;
                residual = std::max(residual, std::abs(best - values[state]));
            }
        }
        values.swap(updated);
        stats.sweeps = sweep + 1;
        stats.final_residual = residual;
        if (residual < dp.tolerance) {
            break;
        }
    }

    DpPolicy policy(std::move(grid), std::move(actions), std::move(greedy), std::move(values),
                    num_lambda);
    return {std::move(policy), stats};
}

} // namespace mflb
