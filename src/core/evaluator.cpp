#include "core/evaluator.hpp"

namespace mflb {

std::vector<Rng> split_replication_rngs(std::uint64_t seed, std::size_t count) {
    const Rng base(seed);
    std::vector<Rng> rngs;
    rngs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        rngs.push_back(base.fork(i));
    }
    return rngs;
}

namespace {

MfcConfig mfc_from_finite(const FiniteSystemConfig& config) {
    MfcConfig mfc;
    mfc.queue = config.queue;
    mfc.d = config.d;
    mfc.dt = config.dt;
    mfc.arrivals = config.arrivals;
    mfc.horizon = config.horizon;
    mfc.discount = config.discount;
    mfc.nu0 = config.nu0;
    return mfc;
}

/// Replication i's config: telemetry stays attached on replication 0 only.
/// The registry/sink belong to one serially-stepped system at a time; with
/// every replication attached, concurrent epoch barriers would race on the
/// slot merge. Replication 0 is seed-stable, so the emitted series is too.
FiniteSystemConfig replication_config(const FiniteSystemConfig& config, std::size_t i) {
    FiniteSystemConfig rep = config;
    if (i != 0) {
        rep.telemetry = nullptr;
    }
    return rep;
}

} // namespace

EvaluationResult evaluate_finite(const FiniteSystemConfig& config, const UpperLevelPolicy& policy,
                                 std::size_t episodes, std::uint64_t seed, std::size_t threads) {
    const std::vector<EpisodeStats> stats =
        run_replications(episodes, seed, threads, [&](std::size_t i, Rng& rng) {
            FiniteSystem system(replication_config(config, i));
            system.reset(rng);
            return system.run_episode(policy, rng);
        });

    RunningStat drops, ret, length, util;
    for (const EpisodeStats& s : stats) {
        drops.add(s.total_drops_per_queue);
        ret.add(s.discounted_return);
        length.add(s.mean_queue_length);
        util.add(s.server_utilization);
    }
    EvaluationResult result;
    result.total_drops = confidence_interval_95(drops);
    result.discounted_return = confidence_interval_95(ret);
    result.mean_queue_length = confidence_interval_95(length);
    result.utilization = confidence_interval_95(util);
    result.episodes = episodes;
    return result;
}

namespace {

/// Shared replication harness of the two event-driven backends: identical
/// statistics pipeline, different simulator type.
template <class System>
EvaluationResult evaluate_event_driven(const FiniteSystemConfig& config,
                                       const UpperLevelPolicy& policy, std::size_t episodes,
                                       std::uint64_t seed, std::size_t threads,
                                       SojournSummary* sojourn) {
    FiniteSystemConfig des_config = config;
    if (sojourn != nullptr) {
        des_config.track_sojourn = true;
    }
    const std::vector<DesEpisodeStats> stats =
        run_replications(episodes, seed, threads, [&](std::size_t i, Rng& rng) {
            System system(replication_config(des_config, i));
            system.reset(rng);
            return system.run_episode(policy, rng);
        });

    RunningStat drops, ret, length, util;
    RunningStat sojourn_mean, sojourn_p50, sojourn_p95, sojourn_p99;
    for (const DesEpisodeStats& s : stats) {
        drops.add(s.total_drops_per_queue);
        ret.add(s.discounted_return);
        length.add(s.mean_queue_length);
        util.add(s.server_utilization);
        if (s.completed_jobs > 0) {
            sojourn_mean.add(s.mean_sojourn);
            sojourn_p50.add(s.sojourn_p50);
            sojourn_p95.add(s.sojourn_p95);
            sojourn_p99.add(s.sojourn_p99);
        }
    }
    if (sojourn != nullptr) {
        sojourn->mean = confidence_interval_95(sojourn_mean);
        sojourn->p50 = confidence_interval_95(sojourn_p50);
        sojourn->p95 = confidence_interval_95(sojourn_p95);
        sojourn->p99 = confidence_interval_95(sojourn_p99);
    }
    EvaluationResult result;
    result.total_drops = confidence_interval_95(drops);
    result.discounted_return = confidence_interval_95(ret);
    result.mean_queue_length = confidence_interval_95(length);
    result.utilization = confidence_interval_95(util);
    result.episodes = episodes;
    return result;
}

} // namespace

EvaluationResult evaluate_des(const FiniteSystemConfig& config, const UpperLevelPolicy& policy,
                              std::size_t episodes, std::uint64_t seed, std::size_t threads,
                              SojournSummary* sojourn) {
    return evaluate_event_driven<DesSystem>(config, policy, episodes, seed, threads, sojourn);
}

EvaluationResult evaluate_sharded_des(const FiniteSystemConfig& config,
                                      const UpperLevelPolicy& policy, std::size_t episodes,
                                      std::uint64_t seed, std::size_t threads,
                                      SojournSummary* sojourn) {
    return evaluate_event_driven<ShardedDesSystem>(config, policy, episodes, seed, threads,
                                                   sojourn);
}

EvaluationResult evaluate_backend(SimBackend backend, const FiniteSystemConfig& config,
                                  const UpperLevelPolicy& policy, std::size_t episodes,
                                  std::uint64_t seed, std::size_t threads,
                                  SojournSummary* sojourn) {
    switch (backend) {
    case SimBackend::Des:
        return evaluate_des(config, policy, episodes, seed, threads, sojourn);
    case SimBackend::ShardedDes:
        return evaluate_sharded_des(config, policy, episodes, seed, threads, sojourn);
    case SimBackend::Finite:
        break;
    }
    if (sojourn != nullptr) {
        *sojourn = SojournSummary{};
    }
    return evaluate_finite(config, policy, episodes, seed, threads);
}

EvaluationResult evaluate_mfc(const MfcConfig& config, const UpperLevelPolicy& policy,
                              std::size_t episodes, std::uint64_t seed, std::size_t threads) {
    struct MfcOutcome {
        double drops = 0.0;
        double discounted = 0.0;
    };
    const auto outcomes = run_replications(episodes, seed, threads, [&](std::size_t, Rng& rng) {
        MfcEnv env(config);
        env.reset(rng);
        MfcOutcome outcome;
        double weight = 1.0;
        while (!env.done()) {
            const DecisionRule h = policy.decide(env.nu(), env.lambda_state(), rng);
            const MfcEnv::Outcome step = env.step(h, rng);
            outcome.drops += step.drops;
            outcome.discounted += weight * step.reward;
            weight *= config.discount;
        }
        return outcome;
    });

    RunningStat drops, ret;
    for (const MfcOutcome& o : outcomes) {
        drops.add(o.drops);
        ret.add(o.discounted);
    }
    EvaluationResult result;
    result.total_drops = confidence_interval_95(drops);
    result.discounted_return = confidence_interval_95(ret);
    result.episodes = episodes;
    return result;
}

CoupledEvaluation evaluate_coupled(const FiniteSystemConfig& finite_config,
                                   const UpperLevelPolicy& policy, std::size_t episodes,
                                   std::uint64_t seed, std::size_t threads) {
    CoupledEvaluation result;

    // Draw one λ path shared by the mean-field model and every finite run.
    Rng path_rng(seed ^ 0xABCDEF12345ULL);
    std::size_t lambda_state = finite_config.arrivals.sample_initial(path_rng);
    result.lambda_sequence.reserve(static_cast<std::size_t>(finite_config.horizon));
    for (int t = 0; t < finite_config.horizon; ++t) {
        result.lambda_sequence.push_back(lambda_state);
        lambda_state = finite_config.arrivals.step(lambda_state, path_rng);
    }

    // Deterministic mean-field value on the conditioned path.
    {
        MfcEnv env(mfc_from_finite(finite_config));
        env.reset_conditioned(result.lambda_sequence);
        Rng unused(seed);
        double total = 0.0;
        while (!env.done()) {
            const DecisionRule h = policy.decide(env.nu(), env.lambda_state(), unused);
            total += env.step(h, unused).drops;
        }
        result.mean_field_drops = total;
    }

    // Finite-system replications on the same path.
    const std::vector<double> drops_by_episode =
        run_replications(episodes, seed, threads, [&](std::size_t i, Rng& rng) {
            FiniteSystem system(replication_config(finite_config, i));
            system.reset_conditioned(result.lambda_sequence, rng);
            double total = 0.0;
            while (!system.done()) {
                total += system.step(policy, rng).drops_per_queue;
            }
            return total;
        });

    RunningStat drops;
    for (double v : drops_by_episode) {
        drops.add(v);
    }
    result.finite_drops = confidence_interval_95(drops);
    return result;
}

} // namespace mflb
