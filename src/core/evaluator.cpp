#include "core/evaluator.hpp"

#include "support/thread_pool.hpp"

#include <mutex>

namespace mflb {

namespace {
/// Pre-splits one RNG per replication so results are thread-count invariant.
std::vector<Rng> split_rngs(std::uint64_t seed, std::size_t count) {
    Rng base(seed);
    std::vector<Rng> rngs;
    rngs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        rngs.push_back(base.split());
    }
    return rngs;
}

MfcConfig mfc_from_finite(const FiniteSystemConfig& config) {
    MfcConfig mfc;
    mfc.queue = config.queue;
    mfc.d = config.d;
    mfc.dt = config.dt;
    mfc.arrivals = config.arrivals;
    mfc.horizon = config.horizon;
    mfc.discount = config.discount;
    mfc.nu0 = config.nu0;
    return mfc;
}
} // namespace

EvaluationResult evaluate_finite(const FiniteSystemConfig& config, const UpperLevelPolicy& policy,
                                 std::size_t episodes, std::uint64_t seed, std::size_t threads) {
    std::vector<Rng> rngs = split_rngs(seed, episodes);
    std::vector<EpisodeStats> stats(episodes);
    parallel_for(
        episodes,
        [&](std::size_t i) {
            FiniteSystem system(config);
            system.reset(rngs[i]);
            stats[i] = system.run_episode(policy, rngs[i]);
        },
        threads);

    RunningStat drops, ret, length, util;
    for (const EpisodeStats& s : stats) {
        drops.add(s.total_drops_per_queue);
        ret.add(s.discounted_return);
        length.add(s.mean_queue_length);
        util.add(s.server_utilization);
    }
    EvaluationResult result;
    result.total_drops = confidence_interval_95(drops);
    result.discounted_return = confidence_interval_95(ret);
    result.mean_queue_length = confidence_interval_95(length);
    result.utilization = confidence_interval_95(util);
    result.episodes = episodes;
    return result;
}

EvaluationResult evaluate_mfc(const MfcConfig& config, const UpperLevelPolicy& policy,
                              std::size_t episodes, std::uint64_t seed, std::size_t threads) {
    std::vector<Rng> rngs = split_rngs(seed, episodes);
    std::vector<double> drops_by_episode(episodes, 0.0);
    std::vector<double> return_by_episode(episodes, 0.0);
    parallel_for(
        episodes,
        [&](std::size_t i) {
            MfcEnv env(config);
            env.reset(rngs[i]);
            double total_drops = 0.0;
            double discounted = 0.0;
            double weight = 1.0;
            while (!env.done()) {
                const DecisionRule h = policy.decide(env.nu(), env.lambda_state(), rngs[i]);
                const MfcEnv::Outcome outcome = env.step(h, rngs[i]);
                total_drops += outcome.drops;
                discounted += weight * outcome.reward;
                weight *= config.discount;
            }
            drops_by_episode[i] = total_drops;
            return_by_episode[i] = discounted;
        },
        threads);

    RunningStat drops, ret;
    for (std::size_t i = 0; i < episodes; ++i) {
        drops.add(drops_by_episode[i]);
        ret.add(return_by_episode[i]);
    }
    EvaluationResult result;
    result.total_drops = confidence_interval_95(drops);
    result.discounted_return = confidence_interval_95(ret);
    result.episodes = episodes;
    return result;
}

CoupledEvaluation evaluate_coupled(const FiniteSystemConfig& finite_config,
                                   const UpperLevelPolicy& policy, std::size_t episodes,
                                   std::uint64_t seed, std::size_t threads) {
    CoupledEvaluation result;

    // Draw one λ path shared by the mean-field model and every finite run.
    Rng path_rng(seed ^ 0xABCDEF12345ULL);
    std::size_t lambda_state = finite_config.arrivals.sample_initial(path_rng);
    result.lambda_sequence.reserve(static_cast<std::size_t>(finite_config.horizon));
    for (int t = 0; t < finite_config.horizon; ++t) {
        result.lambda_sequence.push_back(lambda_state);
        lambda_state = finite_config.arrivals.step(lambda_state, path_rng);
    }

    // Deterministic mean-field value on the conditioned path.
    {
        MfcEnv env(mfc_from_finite(finite_config));
        env.reset_conditioned(result.lambda_sequence);
        Rng unused(seed);
        double total = 0.0;
        while (!env.done()) {
            const DecisionRule h = policy.decide(env.nu(), env.lambda_state(), unused);
            total += env.step(h, unused).drops;
        }
        result.mean_field_drops = total;
    }

    // Finite-system replications on the same path.
    std::vector<Rng> rngs = split_rngs(seed, episodes);
    std::vector<double> drops_by_episode(episodes, 0.0);
    parallel_for(
        episodes,
        [&](std::size_t i) {
            FiniteSystem system(finite_config);
            system.reset_conditioned(result.lambda_sequence, rngs[i]);
            double total = 0.0;
            while (!system.done()) {
                total += system.step(policy, rngs[i]).drops_per_queue;
            }
            drops_by_episode[i] = total;
        },
        threads);

    RunningStat drops;
    for (double v : drops_by_episode) {
        drops.add(v);
    }
    result.finite_drops = confidence_interval_95(drops);
    return result;
}

} // namespace mflb
