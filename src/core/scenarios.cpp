#include "core/scenarios.hpp"

#include <sstream>
#include <stdexcept>

namespace mflb {

namespace {

Scenario make_table1() {
    Scenario s;
    s.name = "table1";
    s.summary = "Paper Table 1 baseline: M=100, N=10^4, B=5, d=2, two-level arrivals";
    return s; // ExperimentConfig defaults *are* Table 1.
}

Scenario make_delay_sweep() {
    Scenario s;
    s.name = "delay-sweep";
    s.summary = "Figure 5 delay sweep cell: M=400, N=M^2; caller sets dt in [1,10]";
    s.experiment.num_queues = 400;
    s.experiment.num_clients = 400ULL * 400ULL;
    return s;
}

Scenario make_small_n() {
    Scenario s;
    s.name = "small-n";
    s.summary = "Figure 6 ablation: N=1000 clients with M=1000 (violates N >> M)";
    s.experiment.num_queues = 1000;
    s.experiment.num_clients = 1000;
    return s;
}

Scenario make_heterogeneous() {
    Scenario s;
    s.name = "heterogeneous";
    s.summary = "Section 5 extension: half slow (0.5) / half fast (1.5) servers, SED vs JSQ";
    HeterogeneousConfig hetero;
    hetero.dt = 2.0;
    hetero.horizon = 100;
    hetero.num_clients = 120ULL * 40ULL;
    hetero.service_rates.assign(120, 0.5);
    for (std::size_t j = 60; j < 120; ++j) {
        hetero.service_rates[j] = 1.5;
    }
    s.experiment.dt = hetero.dt;
    s.experiment.num_queues = hetero.service_rates.size();
    s.experiment.num_clients = hetero.num_clients;
    s.heterogeneous = std::move(hetero);
    return s;
}

Scenario make_memory() {
    Scenario s;
    s.name = "memory";
    s.summary = "Power-of-d-with-memory extension ([3]): JSQ(2)+memory under stale snapshots";
    MemorySystemConfig memory;
    memory.num_queues = 100;
    memory.num_clients = 100ULL * 100ULL;
    memory.horizon = 100;
    s.experiment.num_queues = memory.num_queues;
    s.experiment.num_clients = memory.num_clients;
    s.memory = std::move(memory);
    return s;
}

Scenario make_partial_info() {
    Scenario s;
    s.name = "partial-info";
    s.summary = "Paper §2.1 remark: policy observes a K-sample estimate of H^M (K=20)";
    s.experiment.dt = 5.0;
    s.experiment.eval_total_time = 300.0;
    s.experiment.histogram_sample_size = 20;
    return s;
}

Scenario make_large_n() {
    Scenario s;
    s.name = "large-n";
    s.summary = "Event-driven scale: M=10^4 queues, N=10^6 clients on the DES backend";
    s.experiment.num_queues = 10000;
    s.experiment.num_clients = 1000000;
    s.experiment.dt = 5.0;
    // Keep full episodes tractable at this size: 20 decision epochs.
    s.experiment.eval_total_time = 100.0;
    s.experiment.backend = SimBackend::Des;
    // Calendar FEL (the default, pinned here for clarity): at M=10^4 the
    // event loop is exactly the regime where O(1) buckets beat the heap.
    s.experiment.fel = FelKind::Calendar;
    return s;
}

Scenario make_large_n_sharded() {
    Scenario s;
    s.name = "large-n-sharded";
    s.summary = "large-n on the sharded DES: K=8 queue shards, epoch-barrier parallel";
    s.experiment = make_large_n().experiment;
    s.experiment.backend = SimBackend::ShardedDes;
    s.experiment.shards = 8;
    return s;
}

Scenario make_staleness_sweep() {
    Scenario s;
    s.name = "staleness-sweep";
    s.summary = "Classical-baseline staleness cell: SQ(stale) vs JSQ at dt=2; sweep "
                "--stale-period (router defaults to sq-stale, 10 time units)";
    s.experiment.dt = 2.0;
    s.experiment.backend = SimBackend::Des;
    s.experiment.router.kind = RouterKind::SqStale;
    s.experiment.router.stale_period = 10.0;
    return s;
}

Scenario make_heavy_tail() {
    Scenario s;
    s.name = "heavy-tail";
    s.summary = "Bounded-Pareto service (alpha=1.5, cap=10^3, mean 1/alpha): stresses the "
                "exponential-service assumption; sweep --pareto-alpha";
    s.experiment.dt = 2.0;
    s.experiment.backend = SimBackend::Des;
    s.experiment.service.kind = ServiceDistKind::BoundedPareto;
    s.experiment.service.pareto_alpha = 1.5;
    s.experiment.service.pareto_cap = 1000.0;
    return s;
}

Scenario make_hetero_speeds() {
    Scenario s;
    s.name = "hetero-speeds";
    s.summary = "Two-class server speeds (half 0.5x, half 1.5x) on the event-driven "
                "backends: speed-blind classical routing vs learned MFC";
    s.experiment.dt = 2.0;
    s.experiment.backend = SimBackend::Des;
    s.experiment.server_speeds.assign(s.experiment.num_queues, 0.5);
    for (std::size_t j = s.experiment.num_queues / 2; j < s.experiment.num_queues; ++j) {
        s.experiment.server_speeds[j] = 1.5;
    }
    return s;
}

std::vector<Scenario> build_registry() {
    std::vector<Scenario> registry;
    registry.push_back(make_table1());
    registry.push_back(make_delay_sweep());
    registry.push_back(make_small_n());
    registry.push_back(make_heterogeneous());
    registry.push_back(make_memory());
    registry.push_back(make_partial_info());
    registry.push_back(make_large_n());
    registry.push_back(make_large_n_sharded());
    registry.push_back(make_staleness_sweep());
    registry.push_back(make_heavy_tail());
    registry.push_back(make_hetero_speeds());
    return registry;
}

} // namespace

const std::vector<Scenario>& scenario_registry() {
    static const std::vector<Scenario> registry = build_registry();
    return registry;
}

const Scenario* find_scenario(std::string_view name) {
    for (const Scenario& scenario : scenario_registry()) {
        if (scenario.name == name) {
            return &scenario;
        }
    }
    return nullptr;
}

const Scenario& scenario_or_die(std::string_view name) {
    if (const Scenario* scenario = find_scenario(name)) {
        return *scenario;
    }
    std::ostringstream message;
    message << "unknown scenario '" << name << "'; known scenarios:\n" << scenario_list_text();
    throw std::invalid_argument(message.str());
}

std::string scenario_list_text() {
    std::ostringstream out;
    for (const Scenario& scenario : scenario_registry()) {
        out << "  " << scenario.name << " - " << scenario.summary << "\n";
    }
    return out.str();
}

} // namespace mflb
