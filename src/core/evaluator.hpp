/// \file evaluator.hpp
/// Monte Carlo evaluation harness: runs n independent replications of an
/// episode (finite system or MFC limit), in parallel, and reports means with
/// the 95% confidence intervals plotted in Figures 4-6. Seeding is
/// deterministic per replication index, so results are independent of the
/// thread count.
#pragma once

#include "core/config.hpp"
#include "des/des_system.hpp"
#include "des/sharded_des_system.hpp"
#include "field/mfc_env.hpp"
#include "queueing/finite_system.hpp"
#include "support/statistics.hpp"
#include "support/thread_pool.hpp"

#include <cstdint>
#include <type_traits>
#include <vector>

namespace mflb {

/// One deterministically derived RNG per replication index (`Rng::fork`, an
/// O(1) random-access stream per index), so Monte Carlo results are
/// identical regardless of the thread count — and shardable by index.
std::vector<Rng> split_replication_rngs(std::uint64_t seed, std::size_t count);

/// Generic parallel rollout driver — the single replication harness behind
/// every evaluate_* entry point (and reusable by benches over any of the
/// SystemBase simulators): runs `episodes` independent replications of
/// `body(index, rng)` across `threads` workers (0 = all cores) and returns
/// the per-replication results in index order.
template <class Body>
auto run_replications(std::size_t episodes, std::uint64_t seed, std::size_t threads,
                      Body&& body) {
    std::vector<Rng> rngs = split_replication_rngs(seed, episodes);
    using Result = std::invoke_result_t<Body&, std::size_t, Rng&>;
    std::vector<Result> results(episodes);
    parallel_for(
        episodes, [&](std::size_t i) { results[i] = body(i, rngs[i]); }, threads);
    return results;
}

/// Aggregated outcome of repeated episode simulations.
struct EvaluationResult {
    ConfidenceInterval total_drops;        ///< Σ_t D_t per queue (Fig. 4-6 metric).
    ConfidenceInterval discounted_return;  ///< -Σ_t γ^t D_t.
    ConfidenceInterval mean_queue_length;  ///< time-averaged fill.
    ConfidenceInterval utilization;        ///< server busy fraction.
    std::size_t episodes = 0;
};

/// Evaluates `policy` on the finite N-client/M-queue system over `episodes`
/// independent replications. `threads` = 0 uses all cores.
EvaluationResult evaluate_finite(const FiniteSystemConfig& config, const UpperLevelPolicy& policy,
                                 std::size_t episodes, std::uint64_t seed,
                                 std::size_t threads = 0);

/// Per-job sojourn-time summary across DES replications: episode-level
/// means/percentiles (each episode's streaming P² estimate) aggregated into
/// 95% CIs. Only the event-driven backend can report these.
struct SojournSummary {
    ConfidenceInterval mean;
    ConfidenceInterval p50;
    ConfidenceInterval p95;
    ConfidenceInterval p99;
};

/// Evaluates `policy` on the *event-driven* backend (`DesSystem`) — same
/// model and statistics as evaluate_finite, different simulator. When
/// `sojourn` is non-null, per-job sojourn tracking is enabled (regardless of
/// config.track_sojourn) and the percentile summary is filled in.
EvaluationResult evaluate_des(const FiniteSystemConfig& config, const UpperLevelPolicy& policy,
                              std::size_t episodes, std::uint64_t seed, std::size_t threads = 0,
                              SojournSummary* sojourn = nullptr);

/// Same contract on the *sharded* event-driven backend (`ShardedDesSystem`):
/// each replication runs its K shards epoch-parallel (config.threads), while
/// `threads` still fans out the replications themselves — the nested-use
/// guard of `parallel_for` serializes the inner level when both are active.
/// Per-episode sojourn percentiles are the cross-shard `P2Quantile` merges.
EvaluationResult evaluate_sharded_des(const FiniteSystemConfig& config,
                                      const UpperLevelPolicy& policy, std::size_t episodes,
                                      std::uint64_t seed, std::size_t threads = 0,
                                      SojournSummary* sojourn = nullptr);

/// Dispatches to evaluate_finite / evaluate_des / evaluate_sharded_des — the
/// `--backend` switch of mflb_cli and the figure benches. `sojourn` is
/// forwarded to the event-driven backends (and zero-filled by the finite
/// one, which cannot observe individual jobs).
EvaluationResult evaluate_backend(SimBackend backend, const FiniteSystemConfig& config,
                                  const UpperLevelPolicy& policy, std::size_t episodes,
                                  std::uint64_t seed, std::size_t threads = 0,
                                  SojournSummary* sojourn = nullptr);

/// Evaluates `policy` on the mean-field MDP (deterministic ν dynamics;
/// randomness only from the λ chain). Returns undiscounted total drops and
/// the discounted return of objective (31).
EvaluationResult evaluate_mfc(const MfcConfig& config, const UpperLevelPolicy& policy,
                              std::size_t episodes, std::uint64_t seed,
                              std::size_t threads = 0);

/// Evaluates both systems on *identical conditioned λ sequences* — the
/// coupling used to verify Theorem 1 numerically: returns the pairs
/// (J^{N,M}, J) so tests/benches can inspect |J - J^{N,M}| directly.
struct CoupledEvaluation {
    ConfidenceInterval finite_drops;
    double mean_field_drops = 0.0; ///< deterministic given the λ sequence.
    std::vector<std::size_t> lambda_sequence;
};
CoupledEvaluation evaluate_coupled(const FiniteSystemConfig& finite_config,
                                   const UpperLevelPolicy& policy, std::size_t episodes,
                                   std::uint64_t seed, std::size_t threads = 0);

} // namespace mflb
