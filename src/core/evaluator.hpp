/// \file evaluator.hpp
/// Monte Carlo evaluation harness: runs n independent replications of an
/// episode (finite system or MFC limit), in parallel, and reports means with
/// the 95% confidence intervals plotted in Figures 4-6. Seeding is
/// deterministic per replication index, so results are independent of the
/// thread count.
#pragma once

#include "core/config.hpp"
#include "field/mfc_env.hpp"
#include "queueing/finite_system.hpp"
#include "support/statistics.hpp"

#include <cstdint>
#include <vector>

namespace mflb {

/// Aggregated outcome of repeated episode simulations.
struct EvaluationResult {
    ConfidenceInterval total_drops;        ///< Σ_t D_t per queue (Fig. 4-6 metric).
    ConfidenceInterval discounted_return;  ///< -Σ_t γ^t D_t.
    ConfidenceInterval mean_queue_length;  ///< time-averaged fill.
    ConfidenceInterval utilization;        ///< server busy fraction.
    std::size_t episodes = 0;
};

/// Evaluates `policy` on the finite N-client/M-queue system over `episodes`
/// independent replications. `threads` = 0 uses all cores.
EvaluationResult evaluate_finite(const FiniteSystemConfig& config, const UpperLevelPolicy& policy,
                                 std::size_t episodes, std::uint64_t seed,
                                 std::size_t threads = 0);

/// Evaluates `policy` on the mean-field MDP (deterministic ν dynamics;
/// randomness only from the λ chain). Returns undiscounted total drops and
/// the discounted return of objective (31).
EvaluationResult evaluate_mfc(const MfcConfig& config, const UpperLevelPolicy& policy,
                              std::size_t episodes, std::uint64_t seed,
                              std::size_t threads = 0);

/// Evaluates both systems on *identical conditioned λ sequences* — the
/// coupling used to verify Theorem 1 numerically: returns the pairs
/// (J^{N,M}, J) so tests/benches can inspect |J - J^{N,M}| directly.
struct CoupledEvaluation {
    ConfidenceInterval finite_drops;
    double mean_field_drops = 0.0; ///< deterministic given the λ sequence.
    std::vector<std::size_t> lambda_sequence;
};
CoupledEvaluation evaluate_coupled(const FiniteSystemConfig& finite_config,
                                   const UpperLevelPolicy& policy, std::size_t episodes,
                                   std::uint64_t seed, std::size_t threads = 0);

} // namespace mflb
