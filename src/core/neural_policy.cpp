#include "core/neural_policy.hpp"

#include <stdexcept>

namespace mflb {

NeuralUpperPolicy::NeuralUpperPolicy(const TupleSpace& space, std::size_t num_lambda_states,
                                     std::shared_ptr<const rl::GaussianPolicy> policy,
                                     RuleParameterization parameterization, std::string name)
    : space_(space),
      num_lambda_states_(num_lambda_states),
      policy_(std::move(policy)),
      parameterization_(parameterization),
      name_(std::move(name)) {
    if (!policy_) {
        throw std::invalid_argument("NeuralUpperPolicy: null policy");
    }
    const std::size_t expected_obs =
        static_cast<std::size_t>(space_.num_states()) + num_lambda_states_;
    if (policy_->obs_dim() != expected_obs) {
        throw std::invalid_argument("NeuralUpperPolicy: network obs dim mismatch");
    }
    const std::size_t expected_action = space_.size() * static_cast<std::size_t>(space_.d());
    if (policy_->action_dim() != expected_action) {
        throw std::invalid_argument("NeuralUpperPolicy: network action dim mismatch");
    }
}

DecisionRule NeuralUpperPolicy::decide(std::span<const double> nu, std::size_t lambda_state,
                                       Rng& /*rng*/) const {
    if (nu.size() != static_cast<std::size_t>(space_.num_states())) {
        throw std::invalid_argument("NeuralUpperPolicy::decide: nu size mismatch");
    }
    if (lambda_state >= num_lambda_states_) {
        throw std::out_of_range("NeuralUpperPolicy::decide: lambda state out of range");
    }
    std::vector<double> obs;
    obs.reserve(nu.size() + num_lambda_states_);
    obs.insert(obs.end(), nu.begin(), nu.end());
    for (std::size_t s = 0; s < num_lambda_states_; ++s) {
        obs.push_back(s == lambda_state ? 1.0 : 0.0);
    }
    const std::vector<double> raw = policy_->mean_action(obs);
    switch (parameterization_) {
    case RuleParameterization::Logits:
        return DecisionRule::from_logits(space_, raw);
    case RuleParameterization::Simplex:
        return DecisionRule::from_probabilities(space_, raw);
    }
    return DecisionRule(space_);
}

} // namespace mflb
