#include "core/neural_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace mflb {

NeuralUpperPolicy::NeuralUpperPolicy(const TupleSpace& space, std::size_t num_lambda_states,
                                     std::shared_ptr<const rl::GaussianPolicy> policy,
                                     RuleParameterization parameterization, std::string name)
    : space_(space),
      num_lambda_states_(num_lambda_states),
      policy_(std::move(policy)),
      parameterization_(parameterization),
      name_(std::move(name)) {
    if (!policy_) {
        throw std::invalid_argument("NeuralUpperPolicy: null policy");
    }
    const std::size_t expected_obs =
        static_cast<std::size_t>(space_.num_states()) + num_lambda_states_;
    if (policy_->obs_dim() != expected_obs) {
        throw std::invalid_argument("NeuralUpperPolicy: network obs dim mismatch");
    }
    const std::size_t expected_action = space_.size() * static_cast<std::size_t>(space_.d());
    if (policy_->action_dim() != expected_action) {
        throw std::invalid_argument("NeuralUpperPolicy: network action dim mismatch");
    }
}

NeuralUpperPolicy::BatchScratch::BatchScratch(const rl::GaussianPolicy& policy)
    : obs(policy.obs_dim(), 0.0), raw(policy.action_dim(), 0.0), ws(policy.network(), 1) {}

std::unique_ptr<UpperLevelPolicy::Scratch> NeuralUpperPolicy::make_scratch() const {
    return std::make_unique<BatchScratch>(*policy_);
}

void NeuralUpperPolicy::decide_impl(std::span<const double> nu, std::size_t lambda_state,
                                    BatchScratch& scratch, DecisionRule& out) const {
    if (nu.size() != static_cast<std::size_t>(space_.num_states())) {
        throw std::invalid_argument("NeuralUpperPolicy::decide: nu size mismatch");
    }
    if (lambda_state >= num_lambda_states_) {
        throw std::out_of_range("NeuralUpperPolicy::decide: lambda state out of range");
    }
    std::copy(nu.begin(), nu.end(), scratch.obs.begin());
    for (std::size_t s = 0; s < num_lambda_states_; ++s) {
        scratch.obs[nu.size() + s] = s == lambda_state ? 1.0 : 0.0;
    }
    policy_->mean_action_batch(scratch.obs, 1, scratch.ws, scratch.raw);
    switch (parameterization_) {
    case RuleParameterization::Logits:
        out.set_from_logits(scratch.raw);
        break;
    case RuleParameterization::Simplex:
        out.set_from_probabilities(scratch.raw);
        break;
    }
}

DecisionRule NeuralUpperPolicy::decide(std::span<const double> nu, std::size_t lambda_state,
                                       Rng& /*rng*/) const {
    BatchScratch scratch(*policy_);
    DecisionRule out(space_);
    decide_impl(nu, lambda_state, scratch, out);
    return out;
}

void NeuralUpperPolicy::decide_into(std::span<const double> nu, std::size_t lambda_state,
                                    Rng& /*rng*/, Scratch* scratch, DecisionRule& out) const {
    if (auto* batch = dynamic_cast<BatchScratch*>(scratch)) {
        decide_impl(nu, lambda_state, *batch, out);
        return;
    }
    BatchScratch local(*policy_);
    decide_impl(nu, lambda_state, local, out);
}

} // namespace mflb
