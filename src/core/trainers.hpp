/// \file trainers.hpp
/// High-level training entry points.
///
///  - `train_tabular_cem` — derivative-free optimization of a tabular
///    upper-level policy (one decision rule per λ-state) directly on the MFC
///    objective J(π̃). This is the fast offline trainer the bench harness
///    uses at its default budget; it converges in seconds on the
///    |Λ|·|Z|^d·d-dimensional rule space.
///  - `train_mfc_ppo` — the paper-faithful PPO pipeline (Table 2): trains a
///    Gaussian-logits network on the MFC MDP and returns both the trainer
///    history (the Fig. 3 learning curve) and a deployable upper policy.
#pragma once

#include "core/config.hpp"
#include "core/neural_policy.hpp"
#include "core/rl_adapter.hpp"
#include "policies/tabular.hpp"
#include "rl/cem.hpp"
#include "rl/ppo.hpp"

#include <memory>

namespace mflb {

/// Result of CEM policy search on the mean-field objective.
struct CemTrainingResult {
    TabularPolicy policy;                       ///< best policy found.
    double best_return = 0.0;                   ///< J estimate of that policy.
    std::vector<rl::CemGenerationStats> history;
};

/// Trains a TabularPolicy on the MFC MDP with CEM. `episodes_per_candidate`
/// controls the Monte Carlo averaging of J (randomness: the λ chain only).
///
/// With `common_random_numbers` (default), the λ paths are sampled once and
/// shared by every candidate via conditioned rollouts — the mean-field
/// dynamics are deterministic given the path, so the search objective
/// becomes noise-free and CEM converges markedly faster. `initial_params`
/// optionally warm-starts the search mean (e.g. from a Boltzmann rule).
CemTrainingResult train_tabular_cem(const MfcConfig& config, const rl::CemConfig& cem,
                                    std::size_t episodes_per_candidate, std::uint64_t seed,
                                    RuleParameterization parameterization =
                                        RuleParameterization::Logits,
                                    bool common_random_numbers = true,
                                    const std::vector<double>* initial_params = nullptr);

/// Logit parameters reproducing the Boltzmann rule h(u|z̄) ∝ exp(-β z̄_u) in
/// every λ-state — the natural warm start for CEM (β = 0 is MF-RND, large β
/// approaches MF-JSQ).
std::vector<double> boltzmann_initial_params(const TupleSpace& space,
                                             std::size_t num_lambda_states, double beta);

/// Coarse search over the Boltzmann family on conditioned λ paths: returns
/// the β minimizing total drops. Cheap (|betas| × episodes rollouts) and a
/// strong interpretable baseline by itself.
double best_boltzmann_beta(const MfcConfig& config, std::span<const double> betas,
                           std::size_t episodes, std::uint64_t seed);

/// Result of PPO training on the MFC MDP.
struct PpoTrainingResult {
    std::shared_ptr<rl::GaussianPolicy> network;
    std::vector<rl::PpoIterationStats> history; ///< the Fig. 3 learning curve.
    double final_eval_return = 0.0;             ///< deterministic-policy J.
};

/// Trains PPO per Table 2 for `iterations` on the MFC MDP and evaluates the
/// deterministic policy on `eval_episodes` fresh episodes.
PpoTrainingResult train_mfc_ppo(const MfcConfig& config, const rl::PpoConfig& ppo,
                                std::size_t iterations, std::size_t eval_episodes,
                                std::uint64_t seed,
                                RuleParameterization parameterization =
                                    RuleParameterization::Logits,
                                const std::function<void(const rl::PpoIterationStats&)>&
                                    on_iteration = nullptr);

/// Wraps a trained network as an upper-level policy for system evaluation.
NeuralUpperPolicy make_neural_policy(const MfcConfig& config,
                                     std::shared_ptr<const rl::GaussianPolicy> network,
                                     RuleParameterization parameterization =
                                         RuleParameterization::Logits);

} // namespace mflb
