/// \file scenarios.hpp
/// Named, paper-anchored experiment scenarios — the single source of the
/// workload configurations used across benches, examples, and mflb_cli.
///
/// Each registry entry bundles the Table-1-style system parameters
/// (`ExperimentConfig`) with, where applicable, the extension configs of the
/// heterogeneous-server and client-memory simulators. Callers resolve a
/// scenario by name and then override the swept dimension (dt, M, ...), so a
/// new workload is one registry entry instead of a new binary.
///
/// Adding a scenario: append one `Scenario` in `scenario_registry()`
/// (src/core/scenarios.cpp) with a unique kebab-case name and a one-line
/// summary naming the paper artifact or extension it anchors to; every entry
/// is automatically covered by tests/test_scenarios.cpp (unique names,
/// constructible systems) and listed by `mflb_cli --mode scenarios`.
#pragma once

#include "core/config.hpp"
#include "queueing/heterogeneous.hpp"
#include "queueing/memory_system.hpp"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mflb {

/// One named workload: Table-1-style parameters plus optional extension
/// configs for the simulators whose knobs ExperimentConfig does not cover.
struct Scenario {
    std::string name;    ///< unique kebab-case id, e.g. "table1".
    std::string summary; ///< one line: which paper artifact / extension.
    ExperimentConfig experiment;
    std::optional<HeterogeneousConfig> heterogeneous;
    std::optional<MemorySystemConfig> memory;
};

/// All registered scenarios, in presentation order.
const std::vector<Scenario>& scenario_registry();

/// Looks a scenario up by name; nullptr if unknown.
const Scenario* find_scenario(std::string_view name);

/// Looks a scenario up by name; throws std::invalid_argument naming the
/// known scenarios if it does not exist.
const Scenario& scenario_or_die(std::string_view name);

/// "name - summary" lines for --help texts and the CLI listing.
std::string scenario_list_text();

} // namespace mflb
