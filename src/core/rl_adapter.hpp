/// \file rl_adapter.hpp
/// Bridges the MFC MDP (field/mfc_env.hpp) to the generic RL environment
/// interface. The continuous RL action vector of length |Z|^d · d is mapped
/// to a row-stochastic decision rule either by per-row softmax (the paper's
/// Gaussian-logits + "manual normalization" approach) or by clamping and
/// renormalizing raw values (the Dirichlet-style simplex parameterization the
/// paper reports as significantly worse — exposed for the ablation bench,
/// bench/bench_ablation_parameterization.cpp).
/// \see core/trainers.hpp for the Table 2 PPO pipeline built on this
/// adapter.
#pragma once

#include "field/mfc_env.hpp"
#include "policies/tabular.hpp"
#include "rl/env.hpp"

namespace mflb {

/// RL view of the mean-field control MDP.
class MfcRlEnv final : public rl::Env {
public:
    MfcRlEnv(MfcConfig config, RuleParameterization parameterization);

    std::size_t observation_dim() const override { return env_.observation_dim(); }
    std::size_t action_dim() const override;

    std::vector<double> reset(Rng& rng) override;
    StepResult step(std::span<const double> action, Rng& rng) override;

    const MfcEnv& env() const noexcept { return env_; }
    RuleParameterization parameterization() const noexcept { return parameterization_; }

    /// Decodes a raw action vector into the decision rule it induces.
    DecisionRule decode_action(std::span<const double> action) const;

private:
    MfcEnv env_;
    RuleParameterization parameterization_;
};

} // namespace mflb
