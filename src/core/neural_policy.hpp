/// \file neural_policy.hpp
/// Upper-level policy backed by a trained Gaussian network: the deployment
/// path of Figure 2 — each epoch, all clients evaluate the shared network on
/// (H_t^M, λ_t) to obtain the decision rule h_t, then act on their own
/// sampled queue states. Uses the deterministic mean action (the paper's
/// final learned policies are deterministic per Proposition 1).
#pragma once

#include "field/mfc_env.hpp"
#include "policies/tabular.hpp"
#include "rl/gaussian_policy.hpp"

#include <memory>
#include <string>

namespace mflb {

/// Wraps a trained rl::GaussianPolicy as an UpperLevelPolicy.
class NeuralUpperPolicy final : public UpperLevelPolicy {
public:
    /// \param space               tuple space of the decision rules.
    /// \param num_lambda_states   |Λ| (for the one-hot observation tail).
    /// \param policy              trained network (shared ownership so the
    ///                            trainer can keep improving it online).
    /// \param parameterization    how raw outputs map to rules.
    NeuralUpperPolicy(const TupleSpace& space, std::size_t num_lambda_states,
                      std::shared_ptr<const rl::GaussianPolicy> policy,
                      RuleParameterization parameterization = RuleParameterization::Logits,
                      std::string name = "MF-PPO");

    DecisionRule decide(std::span<const double> nu, std::size_t lambda_state,
                        Rng& rng) const override;

    /// Workspace for the batched (GEMM) epoch query. One per calling system,
    /// never shared: the policy itself stays const and thread-safe.
    struct BatchScratch final : UpperLevelPolicy::Scratch {
        explicit BatchScratch(const rl::GaussianPolicy& policy);
        std::vector<double> obs;    ///< 1 × obs_dim observation row.
        std::vector<double> raw;    ///< 1 × action_dim mean-action row.
        rl::Mlp::BatchWorkspace ws; ///< batch-of-1 forward workspace.
    };
    std::unique_ptr<UpperLevelPolicy::Scratch> make_scratch() const override;

    /// Batched epoch inference: runs the network through the GEMM batch path
    /// (rl::GaussianPolicy::mean_action_batch) and realizes the rule in place
    /// via DecisionRule::set_from_*. Allocation-free once warm; bit-identical
    /// to decide(), which routes through the same path.
    void decide_into(std::span<const double> nu, std::size_t lambda_state, Rng& rng,
                     Scratch* scratch, DecisionRule& out) const override;

    std::string name() const override { return name_; }

private:
    void decide_impl(std::span<const double> nu, std::size_t lambda_state, BatchScratch& scratch,
                     DecisionRule& out) const;

    TupleSpace space_;
    std::size_t num_lambda_states_;
    std::shared_ptr<const rl::GaussianPolicy> policy_;
    RuleParameterization parameterization_;
    std::string name_;
};

} // namespace mflb
