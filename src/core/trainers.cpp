#include "core/trainers.hpp"

#include "field/mfc_env.hpp"
#include "policies/fixed.hpp"

#include <stdexcept>

namespace mflb {

namespace {
/// Pre-samples `count` λ-state paths of the episode length for conditioned
/// (common-random-number) rollouts.
std::vector<std::vector<std::size_t>> sample_lambda_paths(const MfcConfig& config,
                                                          std::size_t count,
                                                          std::uint64_t seed) {
    Rng rng(seed ^ 0x5DEECE66DULL);
    std::vector<std::vector<std::size_t>> paths(count);
    for (auto& path : paths) {
        path.reserve(static_cast<std::size_t>(config.horizon));
        std::size_t state = config.arrivals.sample_initial(rng);
        for (int t = 0; t < config.horizon; ++t) {
            path.push_back(state);
            state = config.arrivals.step(state, rng);
        }
    }
    return paths;
}

double conditioned_return(const MfcConfig& config, const UpperLevelPolicy& policy,
                          const std::vector<std::size_t>& path) {
    MfcEnv env(config);
    env.reset_conditioned(path);
    Rng unused(0);
    double total = 0.0;
    while (!env.done()) {
        const DecisionRule h = policy.decide(env.nu(), env.lambda_state(), unused);
        total += env.step(h, unused).reward;
    }
    return total;
}
} // namespace

std::vector<double> boltzmann_initial_params(const TupleSpace& space,
                                             std::size_t num_lambda_states, double beta) {
    const std::size_t d = static_cast<std::size_t>(space.d());
    const std::size_t per_rule = space.size() * d;
    std::vector<double> params(num_lambda_states * per_rule, 0.0);
    for (std::size_t s = 0; s < num_lambda_states; ++s) {
        for (std::size_t idx = 0; idx < space.size(); ++idx) {
            for (std::size_t u = 0; u < d; ++u) {
                params[s * per_rule + idx * d + u] =
                    -beta * static_cast<double>(space.coordinate(idx, static_cast<int>(u)));
            }
        }
    }
    return params;
}

double best_boltzmann_beta(const MfcConfig& config, std::span<const double> betas,
                           std::size_t episodes, std::uint64_t seed) {
    if (betas.empty()) {
        throw std::invalid_argument("best_boltzmann_beta: empty beta grid");
    }
    const TupleSpace space(config.queue.num_states(), config.d);
    const auto paths = sample_lambda_paths(config, episodes, seed);
    double best_beta = betas[0];
    double best_return = -1e300;
    for (const double beta : betas) {
        const FixedRulePolicy policy = make_greedy_softmax_policy(space, beta);
        double total = 0.0;
        for (const auto& path : paths) {
            total += conditioned_return(config, policy, path);
        }
        if (total > best_return) {
            best_return = total;
            best_beta = beta;
        }
    }
    return best_beta;
}

CemTrainingResult train_tabular_cem(const MfcConfig& config, const rl::CemConfig& cem,
                                    std::size_t episodes_per_candidate, std::uint64_t seed,
                                    RuleParameterization parameterization,
                                    bool common_random_numbers,
                                    const std::vector<double>* initial_params) {
    const TupleSpace space(config.queue.num_states(), config.d);
    TabularPolicy prototype(space, config.arrivals.num_states(), parameterization, "MF-CEM");
    if (initial_params != nullptr) {
        prototype.set_parameters(*initial_params);
    }

    const auto shared_paths = common_random_numbers
                                  ? sample_lambda_paths(config, episodes_per_candidate, seed)
                                  : std::vector<std::vector<std::size_t>>{};

    const auto objective = [&](std::span<const double> params, Rng& rng) {
        TabularPolicy candidate = prototype;
        candidate.set_parameters(params);
        double total = 0.0;
        if (common_random_numbers) {
            for (const auto& path : shared_paths) {
                total += conditioned_return(config, candidate, path);
            }
        } else {
            for (std::size_t e = 0; e < episodes_per_candidate; ++e) {
                MfcEnv env(config);
                env.reset(rng);
                total += rollout_return(env, candidate, rng, /*discounted=*/false);
            }
        }
        return total / static_cast<double>(episodes_per_candidate);
    };

    Rng rng(seed);
    const rl::CemResult search = rl::cem_maximize(objective, prototype.parameters(), cem, rng);

    CemTrainingResult result{prototype, search.best_score, search.history};
    result.policy.set_parameters(search.best_parameters);
    return result;
}

PpoTrainingResult train_mfc_ppo(const MfcConfig& config, const rl::PpoConfig& ppo,
                                std::size_t iterations, std::size_t eval_episodes,
                                std::uint64_t seed, RuleParameterization parameterization,
                                const std::function<void(const rl::PpoIterationStats&)>&
                                    on_iteration) {
    const auto make_env = [&config, parameterization]() -> std::unique_ptr<rl::Env> {
        return std::make_unique<MfcRlEnv>(config, parameterization);
    };
    rl::PpoTrainer trainer(make_env, ppo, Rng(seed));
    trainer.train(iterations, on_iteration);

    PpoTrainingResult result;
    result.history = trainer.history();
    result.final_eval_return = eval_episodes > 0 ? trainer.evaluate(eval_episodes) : 0.0;
    result.network = std::make_shared<rl::GaussianPolicy>(trainer.policy());
    return result;
}

NeuralUpperPolicy make_neural_policy(const MfcConfig& config,
                                     std::shared_ptr<const rl::GaussianPolicy> network,
                                     RuleParameterization parameterization) {
    const TupleSpace space(config.queue.num_states(), config.d);
    return NeuralUpperPolicy(space, config.arrivals.num_states(), std::move(network),
                             parameterization);
}

} // namespace mflb
