#include "core/rl_adapter.hpp"

namespace mflb {

MfcRlEnv::MfcRlEnv(MfcConfig config, RuleParameterization parameterization)
    : env_(std::move(config)), parameterization_(parameterization) {}

std::size_t MfcRlEnv::action_dim() const {
    return env_.tuple_space().size() * static_cast<std::size_t>(env_.tuple_space().d());
}

DecisionRule MfcRlEnv::decode_action(std::span<const double> action) const {
    switch (parameterization_) {
    case RuleParameterization::Logits:
        return DecisionRule::from_logits(env_.tuple_space(), action);
    case RuleParameterization::Simplex:
        return DecisionRule::from_probabilities(env_.tuple_space(), action);
    }
    return DecisionRule(env_.tuple_space());
}

std::vector<double> MfcRlEnv::reset(Rng& rng) {
    env_.reset(rng);
    return env_.observation();
}

rl::Env::StepResult MfcRlEnv::step(std::span<const double> action, Rng& rng) {
    const DecisionRule rule = decode_action(action);
    const MfcEnv::Outcome outcome = env_.step(rule, rng);
    StepResult result;
    result.reward = outcome.reward;
    result.done = outcome.done;
    result.observation = env_.observation();
    return result;
}

} // namespace mflb
