#include "core/config.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mflb {

std::string_view backend_name(SimBackend backend) noexcept {
    switch (backend) {
    case SimBackend::Des:
        return "des";
    case SimBackend::ShardedDes:
        return "sharded-des";
    case SimBackend::Finite:
        break;
    }
    return "finite";
}

SimBackend parse_backend(std::string_view name) {
    if (name == "finite") {
        return SimBackend::Finite;
    }
    if (name == "des") {
        return SimBackend::Des;
    }
    if (name == "sharded-des" || name == "sharded") {
        return SimBackend::ShardedDes;
    }
    throw std::invalid_argument("unknown backend '" + std::string(name) +
                                "'; expected 'finite', 'des', or 'sharded-des'");
}

int ExperimentConfig::eval_horizon() const noexcept {
    return MfcConfig::horizon_for_total_time(eval_total_time, dt);
}

ArrivalProcess ExperimentConfig::arrivals() const {
    return ArrivalProcess::paper_two_state(lambda_high, lambda_low);
}

MfcConfig ExperimentConfig::mfc(bool eval_horizon_instead) const {
    MfcConfig config;
    config.queue = queue;
    config.d = d;
    config.dt = dt;
    config.arrivals = arrivals();
    config.horizon = eval_horizon_instead ? eval_horizon() : train_horizon;
    config.discount = discount;
    return config;
}

FiniteSystemConfig ExperimentConfig::finite_system() const {
    FiniteSystemConfig config;
    config.queue = queue;
    config.d = d;
    config.dt = dt;
    config.arrivals = arrivals();
    config.num_clients = num_clients;
    config.num_queues = num_queues;
    config.horizon = eval_horizon();
    config.discount = discount;
    config.client_model = client_model;
    config.histogram_sample_size = histogram_sample_size;
    config.shards = shards;
    config.fel = fel;
    config.threads = threads;
    config.pipeline = pipeline;
    config.router = router;
    config.service = service;
    config.server_speeds = server_speeds;
    return config;
}

Table ExperimentConfig::to_table() const {
    Table table({"Symbol", "Name", "Value"});
    table.row().cell("dt").cell("Time step size").cell(dt, 2);
    table.row().cell("alpha").cell("Service rate").cell(queue.service_rate, 2);
    std::ostringstream rates;
    rates << "(" << lambda_high << ", " << lambda_low << ")";
    table.row().cell("(lambda_h, lambda_l)").cell("Arrival rates").cell(rates.str());
    table.row().cell("N").cell("Number of clients").cell(static_cast<std::int64_t>(num_clients));
    table.row().cell("M").cell("Number of queues").cell(static_cast<std::int64_t>(num_queues));
    table.row().cell("d").cell("Number of accessible queues").cell(static_cast<std::int64_t>(d));
    table.row().cell("n").cell("Monte Carlo simulations").cell(
        static_cast<std::int64_t>(monte_carlo_runs));
    table.row().cell("B").cell("Queue buffer size").cell(static_cast<std::int64_t>(queue.buffer));
    table.row().cell("nu_0").cell("Queue starting state distribution").cell("[1, 0, 0, ...]");
    table.row().cell("D").cell("Drop penalty per job").cell(drop_penalty, 2);
    table.row().cell("T").cell("Training episode length").cell(
        static_cast<std::int64_t>(train_horizon));
    table.row().cell("T_e").cell("Evaluation episode length").cell(
        static_cast<std::int64_t>(eval_horizon()));
    return table;
}

Table ppo_config_table(const rl::PpoConfig& config) {
    Table table({"Symbol", "Name", "Value"});
    table.row().cell("gamma").cell("Discount factor").cell(config.discount, 4);
    table.row().cell("lambda_RL").cell("GAE lambda").cell(config.gae_lambda, 2);
    table.row().cell("beta").cell("KL coefficient").cell(config.kl_coeff, 2);
    table.row().cell("epsilon").cell("Clip parameter").cell(config.clip_param, 2);
    table.row().cell("lr").cell("Learning rate").cell(config.learning_rate, 6);
    table.row().cell("B_b").cell("Training batch size").cell(
        static_cast<std::int64_t>(config.train_batch_size));
    table.row().cell("B_m").cell("SGD mini batch size").cell(
        static_cast<std::int64_t>(config.minibatch_size));
    table.row().cell("T_b").cell("Number of epochs").cell(
        static_cast<std::int64_t>(config.num_epochs));
    // Implementation knobs of the parallel trainer — not Table 2 values;
    // they scale throughput without changing the algorithm.
    table.row().cell("K").cell("Parallel rollout environments").cell(
        static_cast<std::int64_t>(config.num_envs));
    table.row().cell("W").cell("Trainer worker threads (0 = all cores)").cell(
        static_cast<std::int64_t>(config.train_threads));
    return table;
}

} // namespace mflb
