/// \file rng.hpp
/// Deterministic, splittable pseudo-random number generation for simulations.
///
/// All stochastic components of the library take an explicit `Rng&` so that
/// every experiment is reproducible from a single seed. The generator is
/// xoshiro256** (Blackman & Vigna), seeded through splitmix64; `split()`
/// derives statistically independent child streams, which is how the Monte
/// Carlo sweep hands one generator to each replication (and each worker
/// thread) without sharing state.
/// \see core/evaluator.hpp, whose thread-count-independent results rest on
/// this per-replication seeding contract.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mflb {

/// xoshiro256** engine. Satisfies std::uniform_random_bit_generator, so it
/// can drive the standard <random> distributions as well as the bespoke
/// samplers below.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the state via splitmix64 so that low-entropy seeds (0, 1, 2...)
    /// still yield well-mixed streams.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~result_type{0}; }

    /// Next 64 uniformly random bits.
    result_type operator()() noexcept;

    /// Derives an independent child generator. Implemented as the xoshiro
    /// long-jump applied to a copy, then perturbed by a fresh draw, so parent
    /// and child streams do not overlap for any practical horizon.
    Rng split() noexcept;

    /// Derives the `stream_id`-th independent child stream *without*
    /// consuming draws from the parent: the current state and the stream id
    /// are hashed through splitmix64 into a fresh, well-mixed seed state.
    /// Unlike repeated `split()`, fork is O(1) random access — fork(i) from
    /// the same parent state always yields the same child, and distinct ids
    /// yield statistically independent streams — which is what lets Monte
    /// Carlo replications and sharded runs be seeded by index instead of by
    /// a sequential dependency chain (or ad-hoc `seed + i` offsets).
    Rng fork(std::uint64_t stream_id) const noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;
    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;
    /// Uniform integer in {0, ..., n-1}; n must be > 0.
    std::uint64_t uniform_below(std::uint64_t n) noexcept;
    /// Exponential variate with the given rate (mean 1/rate); rate must be > 0.
    double exponential(double rate) noexcept;
    /// Standard normal variate (Box-Muller with cached spare).
    double normal() noexcept;
    /// Normal variate with the given mean and standard deviation.
    double normal(double mean, double stddev) noexcept;
    /// Poisson variate; uses inversion for small means and PTRS for large.
    std::uint64_t poisson(double mean) noexcept;
    /// Binomial variate over n trials with success probability p in [0,1].
    std::uint64_t binomial(std::uint64_t n, double p) noexcept;
    /// Bernoulli trial with success probability p.
    bool bernoulli(double p) noexcept;

    /// Samples an index from an unnormalized non-negative weight vector.
    /// Returns weights.size()-1 if rounding pushes the scan past the end.
    std::size_t categorical(std::span<const double> weights) noexcept;

    /// Multinomial sample: distributes n trials over `probs` (which must sum
    /// to ~1) by sequential conditional binomials. O(probs.size()).
    std::vector<std::uint64_t> multinomial(std::uint64_t n, std::span<const double> probs) noexcept;
    /// Allocation-free variant writing into `counts` (same size as `probs`);
    /// used by the simulation hot paths.
    void multinomial(std::uint64_t n, std::span<const double> probs,
                     std::span<std::uint64_t> counts) noexcept;
    /// Multinomial over *unnormalized* non-negative weights summing to
    /// `total_weight` (> 0). This is how the sharded DES draws each shard's
    /// client counts from its un-renormalized slice of the global
    /// destination law: Multinomial(N_s, w_j / W_s) without materializing
    /// the normalized vector.
    void multinomial(std::uint64_t n, std::span<const double> weights, double total_weight,
                     std::span<std::uint64_t> counts) noexcept;

    /// Fisher-Yates shuffle of an index permutation [0, n).
    std::vector<std::uint32_t> permutation(std::size_t n) noexcept;
    /// Allocation-free variant filling `out` with a shuffled [0, out.size())
    /// permutation; consumes the same draw sequence as permutation(n). Used
    /// by the minibatch shuffle of the batched PPO update.
    void permutation(std::span<std::uint32_t> out) noexcept;

private:
    std::array<std::uint64_t, 4> state_{};
    double spare_normal_ = 0.0;
    bool has_spare_normal_ = false;

    void long_jump() noexcept;
};

/// splitmix64 step; exposed for seeding utilities and tests.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

} // namespace mflb
