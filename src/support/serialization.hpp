/// \file serialization.hpp
/// Human-readable key/value archive used to persist trained policies and
/// experiment configurations. The format is line-oriented:
///
///     key = scalar
///     key = [v0, v1, ...]
///
/// Doubles round-trip exactly (hex-float free, max_digits10 precision), which
/// is enough to reload a policy and reproduce evaluation numbers bit-for-bit
/// (the offline-train / online-deploy split of examples/train_and_deploy.cpp
/// depends on this).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mflb {

/// In-memory archive of named scalars and vectors.
class Archive {
public:
    void put(const std::string& key, double value);
    void put(const std::string& key, std::int64_t value);
    void put(const std::string& key, const std::string& value);
    void put(const std::string& key, const std::vector<double>& values);

    bool contains(const std::string& key) const;
    double get_double(const std::string& key) const;
    std::int64_t get_int(const std::string& key) const;
    std::string get_string(const std::string& key) const;
    std::vector<double> get_vector(const std::string& key) const;

    /// Serializes all entries in key order.
    std::string to_string() const;
    /// Parses the textual form; throws std::invalid_argument on bad syntax.
    static Archive from_string(const std::string& text);

    bool save(const std::string& path) const;
    static Archive load(const std::string& path);

private:
    std::map<std::string, std::string> scalars_;
    std::map<std::string, std::vector<double>> vectors_;
};

} // namespace mflb
