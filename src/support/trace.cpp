#include "support/trace.hpp"

#include "support/logging.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace mflb::trace {

namespace {

std::uint64_t steady_now_raw() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Process-wide clock origin so every tracer/stopwatch shares a timeline.
std::uint64_t clock_origin() noexcept {
    static const std::uint64_t origin = steady_now_raw();
    return origin;
}

std::atomic<std::uint64_t> g_next_tracer_id{1};
std::atomic<Tracer*> g_active_tracer{nullptr};

/// Per-thread buffer cache, keyed by the owning tracer's process-unique id
/// (never reused, so a freed-and-reallocated Tracer cannot alias a stale
/// cache entry).
struct SlotCache {
    std::uint64_t tracer_id = 0;
    void* buffer = nullptr;
    bool overflowed = false;
};
thread_local SlotCache t_slot_cache;

/// Appends `name` JSON-escaped (quotes, backslashes, control chars).
void append_escaped(std::string& out, const char* name) {
    for (const char* p = name; *p != '\0'; ++p) {
        const char c = *p;
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
            out.append(buf);
        } else {
            out.push_back(c);
        }
    }
}

} // namespace

std::uint64_t now_ns() noexcept {
    // Capture the origin before reading the clock: with unspecified operand
    // order, `steady_now_raw() - clock_origin()` could read the clock first
    // on the origin-initializing call and wrap negative.
    const std::uint64_t origin = clock_origin();
    return steady_now_raw() - origin;
}

Tracer::Tracer(std::size_t max_threads, std::size_t events_per_thread)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      buffers_(max_threads == 0 ? 1 : max_threads) {
    for (ThreadBuffer& buf : buffers_) {
        buf.events.reserve(events_per_thread == 0 ? 1 : events_per_thread);
    }
}

const char* Tracer::intern(std::string_view name) {
    std::lock_guard lock(intern_mutex_);
    for (const std::string& existing : interned_) {
        if (existing == name) {
            return existing.c_str();
        }
    }
    interned_.emplace_back(name);
    return interned_.back().c_str();
}

Tracer::ThreadBuffer* Tracer::local_buffer() noexcept {
    SlotCache& cache = t_slot_cache;
    if (cache.tracer_id != id_) {
        const std::size_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
        cache.tracer_id = id_;
        cache.overflowed = slot >= buffers_.size();
        cache.buffer = cache.overflowed ? nullptr : &buffers_[slot];
    }
    return static_cast<ThreadBuffer*>(cache.buffer);
}

void Tracer::record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) noexcept {
    ThreadBuffer* buf = local_buffer();
    if (buf == nullptr || buf->events.size() == buf->events.capacity()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf->events.push_back(Event{name, begin_ns, end_ns});
}

std::size_t Tracer::threads_used() const noexcept {
    const std::size_t claimed = next_slot_.load(std::memory_order_relaxed);
    return claimed < buffers_.size() ? claimed : buffers_.size();
}

std::size_t Tracer::event_count() const noexcept {
    std::size_t total = 0;
    for (const ThreadBuffer& buf : buffers_) {
        total += buf.events.size();
    }
    return total;
}

const std::vector<Tracer::Event>& Tracer::thread_events(std::size_t tid) const {
    return buffers_.at(tid).events;
}

void Tracer::to_json(std::string& out) const {
    out.clear();
    out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    bool first = true;
    char buf[160];
    for (std::size_t tid = 0; tid < buffers_.size(); ++tid) {
        for (const Event& event : buffers_[tid].events) {
            if (!first) {
                out.push_back(',');
            }
            first = false;
            out.append("{\"name\":\"");
            append_escaped(out, event.name);
            // Timestamps are microseconds in the trace event format;
            // fractional values keep the ns resolution.
            std::snprintf(buf, sizeof(buf),
                          "\",\"cat\":\"mflb\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                          "\"pid\":1,\"tid\":%zu}",
                          static_cast<double>(event.begin_ns) * 1e-3,
                          static_cast<double>(event.end_ns - event.begin_ns) * 1e-3, tid);
            out.append(buf);
        }
    }
    out.append("]}");
}

bool Tracer::write(const std::string& path) const {
    std::string json;
    to_json(json);
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        log_error("trace: cannot open ", path, " for writing");
        return false;
    }
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
    const bool closed = std::fclose(file) == 0;
    const bool ok = written == json.size() && closed;
    if (!ok) {
        log_error("trace: short write to ", path);
    }
    if (dropped() > 0) {
        log_warn("trace: ", dropped(), " event(s) dropped (buffers full); ", path,
                 " is truncated");
    }
    return ok;
}

void set_active_tracer(Tracer* tracer) noexcept {
    g_active_tracer.store(tracer, std::memory_order_release);
}

Tracer* active_tracer() noexcept { return g_active_tracer.load(std::memory_order_acquire); }

} // namespace mflb::trace
