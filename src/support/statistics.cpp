#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace mflb {

void RunningStat::add(double x) noexcept {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept {
    return std::sqrt(variance());
}

double RunningStat::standard_error() const noexcept {
    if (count_ < 2) {
        return 0.0;
    }
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double student_t_975(std::size_t dof) noexcept {
    // Two-sided 95% critical values; the tail of the table converges quickly.
    static constexpr double kTable[] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201,  2.179,  2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
        2.074,  2.069,  2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
    if (dof == 0) {
        return std::numeric_limits<double>::infinity();
    }
    if (dof < std::size(kTable)) {
        return kTable[dof];
    }
    if (dof < 60) {
        return 2.00;
    }
    if (dof < 120) {
        return 1.98;
    }
    return 1.959964;
}

ConfidenceInterval confidence_interval_95(const RunningStat& stat) noexcept {
    ConfidenceInterval ci;
    ci.mean = stat.mean();
    ci.n = stat.count();
    if (stat.count() >= 2) {
        ci.half_width = student_t_975(stat.count() - 1) * stat.standard_error();
    }
    return ci;
}

double mean_of(std::span<const double> xs) noexcept {
    RunningStat s;
    for (double x : xs) {
        s.add(x);
    }
    return s.mean();
}

double variance_of(std::span<const double> xs) noexcept {
    RunningStat s;
    for (double x : xs) {
        s.add(x);
    }
    return s.variance();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
    const double span = hi_ - lo_;
    std::ptrdiff_t idx = 0;
    if (span > 0.0) {
        idx = static_cast<std::ptrdiff_t>((x - lo_) / span * static_cast<double>(counts_.size()));
    }
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double Histogram::bin_lower(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
    std::size_t peak = 1;
    for (std::size_t c : counts_) {
        peak = std::max(peak, c);
    }
    std::ostringstream out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t bar = counts_[i] * width / peak;
        out << "[" << bin_lower(i) << ", " << bin_lower(i + 1) << ") ";
        for (std::size_t j = 0; j < bar; ++j) {
            out << '#';
        }
        out << ' ' << counts_[i] << '\n';
    }
    return out.str();
}

} // namespace mflb
