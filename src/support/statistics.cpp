#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace mflb {

void RunningStat::add(double x) noexcept {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept {
    return std::sqrt(variance());
}

double RunningStat::standard_error() const noexcept {
    if (count_ < 2) {
        return 0.0;
    }
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double student_t_975(std::size_t dof) noexcept {
    // Two-sided 95% critical values; the tail of the table converges quickly.
    static constexpr double kTable[] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201,  2.179,  2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
        2.074,  2.069,  2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
    if (dof == 0) {
        return std::numeric_limits<double>::infinity();
    }
    if (dof < std::size(kTable)) {
        return kTable[dof];
    }
    if (dof < 60) {
        return 2.00;
    }
    if (dof < 120) {
        return 1.98;
    }
    return 1.959964;
}

ConfidenceInterval confidence_interval_95(const RunningStat& stat) noexcept {
    ConfidenceInterval ci;
    ci.mean = stat.mean();
    ci.n = stat.count();
    if (stat.count() >= 2) {
        ci.half_width = student_t_975(stat.count() - 1) * stat.standard_error();
    }
    return ci;
}

double mean_of(std::span<const double> xs) noexcept {
    RunningStat s;
    for (double x : xs) {
        s.add(x);
    }
    return s.mean();
}

double variance_of(std::span<const double> xs) noexcept {
    RunningStat s;
    for (double x : xs) {
        s.add(x);
    }
    return s.variance();
}

P2Quantile::P2Quantile(double p) : p_(p) {
    if (!(p > 0.0) || !(p < 1.0)) {
        throw std::invalid_argument("P2Quantile: p must be in (0, 1)");
    }
    for (double& h : heights_) {
        h = 0.0;
    }
    for (int i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
    }
    desired_[0] = 1.0;
    desired_[1] = 1.0 + 2.0 * p;
    desired_[2] = 1.0 + 4.0 * p;
    desired_[3] = 3.0 + 2.0 * p;
    desired_[4] = 5.0;
    rate_[0] = 0.0;
    rate_[1] = p / 2.0;
    rate_[2] = p;
    rate_[3] = (1.0 + p) / 2.0;
    rate_[4] = 1.0;
}

void P2Quantile::add(double x) noexcept {
    if (count_ < 5) {
        // Exact phase: keep the first five observations sorted.
        std::size_t i = count_;
        while (i > 0 && heights_[i - 1] > x) {
            heights_[i] = heights_[i - 1];
            --i;
        }
        heights_[i] = x;
        ++count_;
        return;
    }

    // Find the cell containing x, extending the extreme markers if needed.
    int k;
    if (x < heights_[0]) {
        heights_[0] = x;
        k = 0;
    } else if (x >= heights_[4]) {
        heights_[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= heights_[k + 1]) {
            ++k;
        }
    }
    for (int i = k + 1; i < 5; ++i) {
        positions_[i] += 1.0;
    }
    for (int i = 0; i < 5; ++i) {
        desired_[i] += rate_[i];
    }
    ++count_;

    // Nudge the three interior markers toward their desired positions using
    // the piecewise-parabolic (P²) height prediction, falling back to linear
    // interpolation when the parabola would break marker monotonicity.
    for (int i = 1; i <= 3; ++i) {
        const double gap = desired_[i] - positions_[i];
        const bool move_right = gap >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
        const bool move_left = gap <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
        if (!move_right && !move_left) {
            continue;
        }
        const double d = move_right ? 1.0 : -1.0;
        const double np = positions_[i + 1];
        const double nc = positions_[i];
        const double nm = positions_[i - 1];
        const double qp = heights_[i + 1];
        const double qc = heights_[i];
        const double qm = heights_[i - 1];
        double candidate = qc + d / (np - nm) *
                                    ((nc - nm + d) * (qp - qc) / (np - nc) +
                                     (np - nc - d) * (qc - qm) / (nc - nm));
        if (!(qm < candidate && candidate < qp)) {
            // Linear fallback toward the neighbor in the move direction.
            const int j = i + static_cast<int>(d);
            candidate = qc + d * (heights_[j] - qc) / (positions_[j] - nc);
        }
        heights_[i] = candidate;
        positions_[i] += d;
    }
}

namespace {

/// A piecewise-linear quantile curve: points (u, q) with u the cumulative
/// fraction in [0, 1] and q the value, both non-decreasing. This is the
/// continuous reading of a P² marker set (or of an exact small-sample
/// buffer) that merge() mixes and inverts. At most 5 points, held inline so
/// merge() stays allocation-free (it runs on the telemetry barrier path
/// every epoch).
struct QuantileCurve {
    std::pair<double, double> pts[5];
    std::size_t n = 0;

    void push_back(const std::pair<double, double>& p) noexcept { pts[n++] = p; }
    std::size_t size() const noexcept { return n; }
    const std::pair<double, double>* begin() const noexcept { return pts; }
    const std::pair<double, double>* end() const noexcept { return pts + n; }
    const std::pair<double, double>& operator[](std::size_t i) const noexcept { return pts[i]; }
    const std::pair<double, double>& front() const noexcept { return pts[0]; }
    const std::pair<double, double>& back() const noexcept { return pts[n - 1]; }
};

/// CDF of the curve at value x: the largest fraction u with Q(u) <= x,
/// linearly interpolated inside segments, clamped to [0, 1] outside.
double curve_cdf(const QuantileCurve& curve, double x) noexcept {
    if (x < curve.front().second) {
        return 0.0;
    }
    if (x >= curve.back().second) {
        return 1.0;
    }
    for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
        const auto& [u0, q0] = curve[i];
        const auto& [u1, q1] = curve[i + 1];
        if (x < q1) {
            // q0 <= x < q1; a zero-width segment never satisfies x < q1.
            return u0 + (u1 - u0) * (x - q0) / (q1 - q0);
        }
    }
    return 1.0;
}

} // namespace

void P2Quantile::merge(const P2Quantile& other) {
    if (p_ != other.p_) {
        throw std::invalid_argument("P2Quantile::merge: mismatched target quantiles");
    }
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    if (count_ + other.count_ <= 5) {
        // Both sides are still exact sorted buffers; so is the union.
        const P2Quantile snapshot = *this;
        *this = P2Quantile(p_);
        for (std::size_t i = 0; i < snapshot.count_; ++i) {
            add(snapshot.heights_[i]);
        }
        for (std::size_t i = 0; i < other.count_; ++i) {
            add(other.heights_[i]);
        }
        return;
    }

    // General case: each side defines a piecewise-linear quantile curve —
    // the five markers at their normalized rank positions, or the exact
    // sorted buffer below five samples. The concatenated stream's CDF is the
    // count-weighted mixture of the two side CDFs; invert it at the P²
    // desired fractions {0, p/2, p, (1+p)/2, 1} to re-seed the marker state.
    const auto curve_of = [](const P2Quantile& src) {
        QuantileCurve curve;
        if (src.count_ < 5) {
            if (src.count_ == 1) {
                curve.push_back({0.0, src.heights_[0]});
                curve.push_back({1.0, src.heights_[0]});
            } else {
                for (std::size_t i = 0; i < src.count_; ++i) {
                    curve.push_back({static_cast<double>(i) /
                                         static_cast<double>(src.count_ - 1),
                                     src.heights_[i]});
                }
            }
        } else {
            const double span = static_cast<double>(src.count_ - 1);
            for (int i = 0; i < 5; ++i) {
                curve.push_back({(src.positions_[i] - 1.0) / span, src.heights_[i]});
            }
        }
        return curve;
    };
    const QuantileCurve a = curve_of(*this);
    const QuantileCurve b = curve_of(other);
    const double wa = static_cast<double>(count_);
    const double wb = static_cast<double>(other.count_);
    const auto mixture_cdf = [&](double x) {
        return (wa * curve_cdf(a, x) + wb * curve_cdf(b, x)) / (wa + wb);
    };

    // Invert the mixture by scanning its breakpoints (the union of both
    // sides' marker heights): between consecutive breakpoints the mixture is
    // linear, so one interpolation per target fraction is exact.
    double knots[10];
    std::size_t num_knots = 0;
    for (const auto& [u, q] : a) {
        knots[num_knots++] = q;
    }
    for (const auto& [u, q] : b) {
        knots[num_knots++] = q;
    }
    std::sort(knots, knots + num_knots);
    const auto invert = [&](double f) {
        if (f <= 0.0) {
            return knots[0];
        }
        if (f >= 1.0) {
            return knots[num_knots - 1];
        }
        double x0 = knots[0];
        double f0 = mixture_cdf(x0);
        for (std::size_t i = 1; i < num_knots; ++i) {
            const double x1 = knots[i];
            const double f1 = mixture_cdf(x1);
            if (f1 >= f) {
                return f1 > f0 ? x0 + (x1 - x0) * (f - f0) / (f1 - f0) : x1;
            }
            x0 = x1;
            f0 = f1;
        }
        return knots[num_knots - 1];
    };

    const std::size_t n = count_ + other.count_;
    const double fractions[5] = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
    for (int i = 0; i < 5; ++i) {
        heights_[i] = invert(fractions[i]);
        desired_[i] = 1.0 + static_cast<double>(n - 1) * fractions[i];
    }
    heights_[0] = std::min(a.front().second, b.front().second);
    heights_[4] = std::max(a.back().second, b.back().second);
    for (int i = 1; i < 5; ++i) {
        heights_[i] = std::max(heights_[i], heights_[i - 1]);
    }
    // Re-seed integer marker positions near their desired ranks, keeping the
    // strict ordering the update step relies on (n >= 6 leaves room).
    positions_[0] = 1.0;
    positions_[4] = static_cast<double>(n);
    for (int i = 1; i < 4; ++i) {
        positions_[i] = std::max(positions_[i - 1] + 1.0, std::round(desired_[i]));
    }
    for (int i = 3; i >= 1; --i) {
        positions_[i] = std::min(positions_[i], positions_[i + 1] - 1.0);
    }
    count_ = n;
}

double P2Quantile::value() const noexcept {
    if (count_ == 0) {
        return 0.0;
    }
    if (count_ < 5) {
        // Nearest-rank quantile of the sorted exact buffer.
        const double rank = p_ * static_cast<double>(count_ - 1);
        const auto lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min(lo + 1, count_ - 1);
        const double frac = rank - static_cast<double>(lo);
        return heights_[lo] + frac * (heights_[hi] - heights_[lo]);
    }
    return heights_[2];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
    const double span = hi_ - lo_;
    std::ptrdiff_t idx = 0;
    if (span > 0.0) {
        idx = static_cast<std::ptrdiff_t>((x - lo_) / span * static_cast<double>(counts_.size()));
    }
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double Histogram::bin_lower(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
    std::size_t peak = 1;
    for (std::size_t c : counts_) {
        peak = std::max(peak, c);
    }
    std::ostringstream out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t bar = counts_[i] * width / peak;
        out << "[" << bin_lower(i) << ", " << bin_lower(i + 1) << ") ";
        for (std::size_t j = 0; j < bar; ++j) {
            out << '#';
        }
        out << ' ' << counts_[i] << '\n';
    }
    return out.str();
}

} // namespace mflb
