#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mflb {

void RunningStat::add(double x) noexcept {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept {
    return std::sqrt(variance());
}

double RunningStat::standard_error() const noexcept {
    if (count_ < 2) {
        return 0.0;
    }
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double student_t_975(std::size_t dof) noexcept {
    // Two-sided 95% critical values; the tail of the table converges quickly.
    static constexpr double kTable[] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201,  2.179,  2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
        2.074,  2.069,  2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
    if (dof == 0) {
        return std::numeric_limits<double>::infinity();
    }
    if (dof < std::size(kTable)) {
        return kTable[dof];
    }
    if (dof < 60) {
        return 2.00;
    }
    if (dof < 120) {
        return 1.98;
    }
    return 1.959964;
}

ConfidenceInterval confidence_interval_95(const RunningStat& stat) noexcept {
    ConfidenceInterval ci;
    ci.mean = stat.mean();
    ci.n = stat.count();
    if (stat.count() >= 2) {
        ci.half_width = student_t_975(stat.count() - 1) * stat.standard_error();
    }
    return ci;
}

double mean_of(std::span<const double> xs) noexcept {
    RunningStat s;
    for (double x : xs) {
        s.add(x);
    }
    return s.mean();
}

double variance_of(std::span<const double> xs) noexcept {
    RunningStat s;
    for (double x : xs) {
        s.add(x);
    }
    return s.variance();
}

P2Quantile::P2Quantile(double p) : p_(p) {
    if (!(p > 0.0) || !(p < 1.0)) {
        throw std::invalid_argument("P2Quantile: p must be in (0, 1)");
    }
    for (double& h : heights_) {
        h = 0.0;
    }
    for (int i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
    }
    desired_[0] = 1.0;
    desired_[1] = 1.0 + 2.0 * p;
    desired_[2] = 1.0 + 4.0 * p;
    desired_[3] = 3.0 + 2.0 * p;
    desired_[4] = 5.0;
    rate_[0] = 0.0;
    rate_[1] = p / 2.0;
    rate_[2] = p;
    rate_[3] = (1.0 + p) / 2.0;
    rate_[4] = 1.0;
}

void P2Quantile::add(double x) noexcept {
    if (count_ < 5) {
        // Exact phase: keep the first five observations sorted.
        std::size_t i = count_;
        while (i > 0 && heights_[i - 1] > x) {
            heights_[i] = heights_[i - 1];
            --i;
        }
        heights_[i] = x;
        ++count_;
        return;
    }

    // Find the cell containing x, extending the extreme markers if needed.
    int k;
    if (x < heights_[0]) {
        heights_[0] = x;
        k = 0;
    } else if (x >= heights_[4]) {
        heights_[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= heights_[k + 1]) {
            ++k;
        }
    }
    for (int i = k + 1; i < 5; ++i) {
        positions_[i] += 1.0;
    }
    for (int i = 0; i < 5; ++i) {
        desired_[i] += rate_[i];
    }
    ++count_;

    // Nudge the three interior markers toward their desired positions using
    // the piecewise-parabolic (P²) height prediction, falling back to linear
    // interpolation when the parabola would break marker monotonicity.
    for (int i = 1; i <= 3; ++i) {
        const double gap = desired_[i] - positions_[i];
        const bool move_right = gap >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
        const bool move_left = gap <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
        if (!move_right && !move_left) {
            continue;
        }
        const double d = move_right ? 1.0 : -1.0;
        const double np = positions_[i + 1];
        const double nc = positions_[i];
        const double nm = positions_[i - 1];
        const double qp = heights_[i + 1];
        const double qc = heights_[i];
        const double qm = heights_[i - 1];
        double candidate = qc + d / (np - nm) *
                                    ((nc - nm + d) * (qp - qc) / (np - nc) +
                                     (np - nc - d) * (qc - qm) / (nc - nm));
        if (!(qm < candidate && candidate < qp)) {
            // Linear fallback toward the neighbor in the move direction.
            const int j = i + static_cast<int>(d);
            candidate = qc + d * (heights_[j] - qc) / (positions_[j] - nc);
        }
        heights_[i] = candidate;
        positions_[i] += d;
    }
}

double P2Quantile::value() const noexcept {
    if (count_ == 0) {
        return 0.0;
    }
    if (count_ < 5) {
        // Nearest-rank quantile of the sorted exact buffer.
        const double rank = p_ * static_cast<double>(count_ - 1);
        const auto lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min(lo + 1, count_ - 1);
        const double frac = rank - static_cast<double>(lo);
        return heights_[lo] + frac * (heights_[hi] - heights_[lo]);
    }
    return heights_[2];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
    const double span = hi_ - lo_;
    std::ptrdiff_t idx = 0;
    if (span > 0.0) {
        idx = static_cast<std::ptrdiff_t>((x - lo_) / span * static_cast<double>(counts_.size()));
    }
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double Histogram::bin_lower(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
    std::size_t peak = 1;
    for (std::size_t c : counts_) {
        peak = std::max(peak, c);
    }
    std::ostringstream out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t bar = counts_[i] * width / peak;
        out << "[" << bin_lower(i) << ", " << bin_lower(i + 1) << ") ";
        for (std::size_t j = 0; j < bar; ++j) {
            out << '#';
        }
        out << ' ' << counts_[i] << '\n';
    }
    return out.str();
}

} // namespace mflb
