#include "support/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mflb {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {
    flag("help", "false", "Print this help text");
}

CliParser& CliParser::flag(const std::string& name, const std::string& default_value,
                           const std::string& help) {
    flags_[name] = Flag{default_value, help, std::nullopt};
    return *this;
}

bool CliParser::parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr, "unexpected positional argument: %s\n%s", arg.c_str(),
                         usage().c_str());
            return false;
        }
        arg = arg.substr(2);
        std::string name = arg;
        std::optional<std::string> value;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        }
        auto it = flags_.find(name);
        if (it == flags_.end()) {
            std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(), usage().c_str());
            return false;
        }
        if (!value) {
            const bool is_bool_flag =
                it->second.default_value == "true" || it->second.default_value == "false";
            if (!is_bool_flag && i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true"; // boolean-style flag
            }
        }
        it->second.value = value;
    }
    if (get_bool("help")) {
        std::fputs(usage().c_str(), stdout);
        return false;
    }
    return true;
}

std::string CliParser::get(const std::string& name) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) {
        throw std::invalid_argument("unregistered flag: " + name);
    }
    return it->second.value.value_or(it->second.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
    return std::stoll(get(name));
}

double CliParser::get_double(const std::string& name) const {
    return std::stod(get(name));
}

bool CliParser::get_bool(const std::string& name) const {
    const std::string v = get(name);
    return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::int64_t> CliParser::get_int_list(const std::string& name) const {
    std::vector<std::int64_t> values;
    std::stringstream ss(get(name));
    std::string token;
    while (std::getline(ss, token, ',')) {
        if (!token.empty()) {
            values.push_back(std::stoll(token));
        }
    }
    return values;
}

std::vector<double> CliParser::get_double_list(const std::string& name) const {
    std::vector<double> values;
    std::stringstream ss(get(name));
    std::string token;
    while (std::getline(ss, token, ',')) {
        if (!token.empty()) {
            values.push_back(std::stod(token));
        }
    }
    return values;
}

bool CliParser::provided(const std::string& name) const {
    auto it = flags_.find(name);
    return it != flags_.end() && it->second.value.has_value();
}

std::string CliParser::usage() const {
    std::ostringstream out;
    out << description_ << "\n\nFlags:\n";
    for (const auto& [name, f] : flags_) {
        out << "  --" << name << " (default: " << f.default_value << ")\n      " << f.help
            << "\n";
    }
    return out.str();
}

} // namespace mflb
