#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace mflb {

namespace {

void print_bad_value(const std::string& name, const std::string& value, const char* expected) {
    std::fprintf(stderr, "invalid value for --%s: '%s' (expected %s)\n", name.c_str(),
                 value.c_str(), expected);
}

[[noreturn]] void die_bad_value(const std::string& name, const std::string& value,
                                const char* expected) {
    print_bad_value(name, value, expected);
    std::exit(2);
}

std::int64_t parse_int_or_die(const std::string& name, const std::string& value) {
    try {
        std::size_t pos = 0;
        const std::int64_t parsed = std::stoll(value, &pos);
        if (pos == value.size()) {
            return parsed;
        }
    } catch (const std::exception&) {
    }
    die_bad_value(name, value, "an integer");
}

double parse_double_or_die(const std::string& name, const std::string& value) {
    try {
        std::size_t pos = 0;
        const double parsed = std::stod(value, &pos);
        if (pos == value.size()) {
            return parsed;
        }
    } catch (const std::exception&) {
    }
    die_bad_value(name, value, "a number");
}

bool is_bool_token(const std::string& token) {
    return token == "true" || token == "false" || token == "1" || token == "0" ||
           token == "yes" || token == "no" || token == "on" || token == "off";
}

bool is_integer(const std::string& s) {
    try {
        std::size_t pos = 0;
        (void)std::stoll(s, &pos);
        return pos == s.size();
    } catch (const std::exception&) {
        return false;
    }
}

bool is_number(const std::string& s) {
    try {
        std::size_t pos = 0;
        (void)std::stod(s, &pos);
        return pos == s.size();
    } catch (const std::exception&) {
        return false;
    }
}

template <class Pred>
bool is_list_of(const std::string& s, Pred&& element_ok) {
    std::stringstream ss(s);
    std::string token;
    while (std::getline(ss, token, ',')) {
        if (!token.empty() && !element_ok(token)) {
            return false;
        }
    }
    return true;
}

/// Validates a provided value against the flag's declared type. String flags
/// fall back to the historical shape inference from the default (bool /
/// number / number list); defaults that fit none (paths, mode names, empty
/// strings) stay unvalidated. Returns the expected-type description on
/// mismatch, nullptr if the value is acceptable.
const char* value_type_mismatch(FlagType type, const std::string& default_value,
                                const std::string& value) {
    switch (type) {
    case FlagType::Bool:
        return is_bool_token(value) ? nullptr : "a boolean (true/false)";
    case FlagType::Int:
        return is_integer(value) ? nullptr : "an integer";
    case FlagType::Double:
        return is_number(value) ? nullptr : "a number";
    case FlagType::IntList:
        return is_list_of(value, is_integer) ? nullptr : "a comma-separated list of integers";
    case FlagType::DoubleList:
        return is_list_of(value, is_number) ? nullptr : "a comma-separated list of numbers";
    case FlagType::String:
        break;
    }
    if (default_value == "true" || default_value == "false") {
        return is_bool_token(value) ? nullptr : "a boolean (true/false)";
    }
    if (is_number(default_value)) {
        return is_number(value) ? nullptr : "a number";
    }
    if (default_value.find(',') != std::string::npos && is_list_of(default_value, is_number)) {
        return is_list_of(value, is_number) ? nullptr : "a comma-separated list of numbers";
    }
    return nullptr;
}

const char* type_tag(FlagType type) {
    switch (type) {
    case FlagType::Bool:
        return "bool";
    case FlagType::Int:
        return "int";
    case FlagType::Double:
        return "number";
    case FlagType::IntList:
        return "int list";
    case FlagType::DoubleList:
        return "number list";
    case FlagType::String:
        break;
    }
    return "string";
}

std::string format_double_default(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%g", value);
    return buffer;
}

} // namespace

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {
    flag_bool("help", false, "Print this help text");
}

CliParser& CliParser::register_flag(const std::string& name, std::string default_value,
                                    const std::string& help, FlagType type) {
    flags_[name] = Flag{std::move(default_value), help, type, std::nullopt};
    return *this;
}

CliParser& CliParser::flag(const std::string& name, const std::string& default_value,
                           const std::string& help) {
    return register_flag(name, default_value, help, FlagType::String);
}

CliParser& CliParser::flag_bool(const std::string& name, bool default_value,
                                const std::string& help) {
    return register_flag(name, default_value ? "true" : "false", help, FlagType::Bool);
}

CliParser& CliParser::flag_int(const std::string& name, std::int64_t default_value,
                               const std::string& help) {
    return register_flag(name, std::to_string(default_value), help, FlagType::Int);
}

CliParser& CliParser::flag_double(const std::string& name, double default_value,
                                  const std::string& help) {
    return register_flag(name, format_double_default(default_value), help, FlagType::Double);
}

CliParser& CliParser::flag_int_list(const std::string& name, const std::string& default_value,
                                    const std::string& help) {
    if (!is_list_of(default_value, is_integer)) {
        throw std::invalid_argument("flag_int_list: malformed default for --" + name);
    }
    return register_flag(name, default_value, help, FlagType::IntList);
}

CliParser& CliParser::flag_double_list(const std::string& name, const std::string& default_value,
                                       const std::string& help) {
    if (!is_list_of(default_value, is_number)) {
        throw std::invalid_argument("flag_double_list: malformed default for --" + name);
    }
    return register_flag(name, default_value, help, FlagType::DoubleList);
}

bool CliParser::parse(int argc, const char* const* argv) {
    parse_error_ = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr, "unexpected positional argument: %s\n%s", arg.c_str(),
                         usage().c_str());
            parse_error_ = true;
            return false;
        }
        arg = arg.substr(2);
        std::string name = arg;
        std::optional<std::string> value;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        }
        auto it = flags_.find(name);
        if (it == flags_.end()) {
            std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(), usage().c_str());
            parse_error_ = true;
            return false;
        }
        if (!value) {
            const bool is_bool_flag =
                it->second.type == FlagType::Bool ||
                (it->second.type == FlagType::String &&
                 (it->second.default_value == "true" || it->second.default_value == "false"));
            if (is_bool_flag) {
                // `--flag` alone means true; an explicit `--flag false` etc.
                // consumes the value token.
                if (i + 1 < argc && is_bool_token(argv[i + 1])) {
                    value = argv[++i];
                } else {
                    value = "true";
                }
            } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                std::fprintf(stderr, "flag --%s requires a value\n%s", name.c_str(),
                             usage().c_str());
                parse_error_ = true;
                return false;
            }
        }
        if (const char* expected =
                value_type_mismatch(it->second.type, it->second.default_value, *value)) {
            print_bad_value(name, *value, expected);
            std::fputs(usage().c_str(), stderr);
            parse_error_ = true;
            return false;
        }
        it->second.value = value;
    }
    if (get_bool("help")) {
        std::fputs(usage().c_str(), stdout);
        return false;
    }
    return true;
}

std::string CliParser::get(const std::string& name) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) {
        throw std::invalid_argument("unregistered flag: " + name);
    }
    return it->second.value.value_or(it->second.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
    return parse_int_or_die(name, get(name));
}

double CliParser::get_double(const std::string& name) const {
    return parse_double_or_die(name, get(name));
}

bool CliParser::get_bool(const std::string& name) const {
    const std::string v = get(name);
    return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::int64_t> CliParser::get_int_list(const std::string& name) const {
    std::vector<std::int64_t> values;
    std::stringstream ss(get(name));
    std::string token;
    while (std::getline(ss, token, ',')) {
        if (!token.empty()) {
            values.push_back(parse_int_or_die(name, token));
        }
    }
    return values;
}

std::vector<double> CliParser::get_double_list(const std::string& name) const {
    std::vector<double> values;
    std::stringstream ss(get(name));
    std::string token;
    while (std::getline(ss, token, ',')) {
        if (!token.empty()) {
            values.push_back(parse_double_or_die(name, token));
        }
    }
    return values;
}

bool CliParser::provided(const std::string& name) const {
    auto it = flags_.find(name);
    return it != flags_.end() && it->second.value.has_value();
}

std::string CliParser::usage() const {
    std::ostringstream out;
    out << description_ << "\n\nFlags:\n";
    for (const auto& [name, f] : flags_) {
        out << "  --" << name << " <" << type_tag(f.type) << "> (default: "
            << (f.default_value.empty() ? "\"\"" : f.default_value) << ")\n      " << f.help
            << "\n";
    }
    return out.str();
}

} // namespace mflb
