/// \file table.hpp
/// Aligned text tables and CSV export for the benchmark harness. Every bench
/// binary prints the rows/series of the corresponding paper figure through
/// this writer so output is uniform and machine-parsable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mflb {

/// Column-aligned table accumulating string cells; renders as padded text or
/// CSV. Numeric helpers format with fixed precision.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Starts a new row; subsequent cell() calls append to it.
    Table& row();
    Table& cell(const std::string& value);
    Table& cell(double value, int precision = 4);
    Table& cell(std::int64_t value);
    /// Formats "mean ± half_width".
    Table& cell_ci(double mean, double half_width, int precision = 3);

    std::string to_text() const;
    std::string to_csv() const;
    /// Writes CSV to a file path; returns false on I/O failure.
    bool write_csv(const std::string& path) const;

    std::size_t rows() const noexcept { return cells_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> cells_;
};

} // namespace mflb
