/// \file cli.hpp
/// Tiny declarative command-line flag parser for the bench and example
/// binaries. Supports `--name value`, `--name=value` and boolean `--name`;
/// every registered flag is listed by the auto-generated `--help`.
/// \see support/table.hpp for the matching stdout table rendering.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mflb {

/// Declarative flag registry; register flags, then parse argv.
class CliParser {
public:
    explicit CliParser(std::string program_description);

    /// Registers a flag with a default value and help text. Returns *this
    /// for chaining.
    CliParser& flag(const std::string& name, const std::string& default_value,
                    const std::string& help);

    /// Parses argv. Returns false (and prints usage) on `--help` or an
    /// unknown/malformed flag; parse_error() distinguishes the two so
    /// binaries can exit non-zero on misuse. Provided values are validated
    /// against the shape the flag's default implies (bool, number, or
    /// comma-separated number list), so non-numeric typos fail here; finer
    /// mismatches (e.g. a float for an integer flag) fail at the typed
    /// getter, which exits with the same code-2 diagnostic.
    bool parse(int argc, const char* const* argv);

    /// True if the last parse() failed on bad input (as opposed to --help).
    bool parse_error() const noexcept { return parse_error_; }

    /// Process exit code after a failed parse(): 2 on misuse, 0 for --help.
    int exit_code() const noexcept { return parse_error_ ? 2 : 0; }

    std::string get(const std::string& name) const;
    /// Typed getters exit(2) with a diagnostic on malformed values, keeping
    /// the misuse exit-code contract instead of aborting on an exception.
    std::int64_t get_int(const std::string& name) const;
    double get_double(const std::string& name) const;
    bool get_bool(const std::string& name) const;
    /// Parses a comma-separated list of integers, e.g. "100,200,400".
    std::vector<std::int64_t> get_int_list(const std::string& name) const;
    /// Parses a comma-separated list of doubles.
    std::vector<double> get_double_list(const std::string& name) const;

    /// True if the user supplied the flag explicitly (vs. default).
    bool provided(const std::string& name) const;

    std::string usage() const;

private:
    struct Flag {
        std::string default_value;
        std::string help;
        std::optional<std::string> value;
    };

    std::string description_;
    std::map<std::string, Flag> flags_;
    bool parse_error_ = false;
};

} // namespace mflb
