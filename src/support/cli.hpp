/// \file cli.hpp
/// Tiny declarative command-line flag parser for the bench and example
/// binaries. Supports `--name value`, `--name=value` and boolean `--name`;
/// every registered flag is listed by the auto-generated `--help`.
///
/// Flags carry an explicit type chosen at registration (`flag_int`,
/// `flag_double`, `flag_bool`, `flag_int_list`, `flag_double_list`), so
/// provided values are validated at parse time — an integer flag rejects
/// `2.5` right away instead of relying on the typed-getter backstop. The
/// string `flag()` remains for paths and mode names (and, for backward
/// compatibility, still infers bool/number validation from the shape of its
/// default).
/// \see support/table.hpp for the matching stdout table rendering.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mflb {

/// Value type of a registered flag; drives parse-time validation.
enum class FlagType {
    String,     ///< free-form (paths, mode names); shape-inferred validation.
    Bool,       ///< true/false/1/0/yes/no/on/off; bare `--flag` means true.
    Int,        ///< integer; rejects floats and non-numeric tokens.
    Double,     ///< real number.
    IntList,    ///< comma-separated integers, e.g. "100,200,400".
    DoubleList, ///< comma-separated reals, e.g. "1,2.5,10".
};

/// Declarative flag registry; register flags, then parse argv.
class CliParser {
public:
    explicit CliParser(std::string program_description);

    /// Registers a string flag with a default value and help text. Returns
    /// *this for chaining.
    CliParser& flag(const std::string& name, const std::string& default_value,
                    const std::string& help);
    /// Typed registrations: values are validated against the declared type
    /// during parse(), not only at the typed getter.
    CliParser& flag_bool(const std::string& name, bool default_value, const std::string& help);
    CliParser& flag_int(const std::string& name, std::int64_t default_value,
                        const std::string& help);
    CliParser& flag_double(const std::string& name, double default_value,
                           const std::string& help);
    /// List defaults are given in their textual form (e.g. "1,3,5"; "" = empty).
    CliParser& flag_int_list(const std::string& name, const std::string& default_value,
                             const std::string& help);
    CliParser& flag_double_list(const std::string& name, const std::string& default_value,
                                const std::string& help);

    /// Parses argv. Returns false (and prints usage) on `--help` or an
    /// unknown/malformed flag; parse_error() distinguishes the two so
    /// binaries can exit non-zero on misuse. Provided values are validated
    /// against the flag's declared type (or, for string flags, the shape the
    /// default implies), so mismatches — including a float passed to an
    /// integer flag — fail here with a diagnostic.
    bool parse(int argc, const char* const* argv);

    /// True if the last parse() failed on bad input (as opposed to --help).
    bool parse_error() const noexcept { return parse_error_; }

    /// Process exit code after a failed parse(): 2 on misuse, 0 for --help.
    int exit_code() const noexcept { return parse_error_ ? 2 : 0; }

    std::string get(const std::string& name) const;
    /// Typed getters exit(2) with a diagnostic on malformed values, keeping
    /// the misuse exit-code contract instead of aborting on an exception
    /// (the backstop for string-typed flags read as numbers).
    std::int64_t get_int(const std::string& name) const;
    double get_double(const std::string& name) const;
    bool get_bool(const std::string& name) const;
    /// Parses a comma-separated list of integers, e.g. "100,200,400".
    std::vector<std::int64_t> get_int_list(const std::string& name) const;
    /// Parses a comma-separated list of doubles.
    std::vector<double> get_double_list(const std::string& name) const;

    /// True if the user supplied the flag explicitly (vs. default).
    bool provided(const std::string& name) const;

    std::string usage() const;

private:
    struct Flag {
        std::string default_value;
        std::string help;
        FlagType type = FlagType::String;
        std::optional<std::string> value;
    };

    CliParser& register_flag(const std::string& name, std::string default_value,
                             const std::string& help, FlagType type);

    std::string description_;
    std::map<std::string, Flag> flags_;
    bool parse_error_ = false;
};

} // namespace mflb
