/// \file cli.hpp
/// Tiny declarative command-line flag parser for the bench and example
/// binaries. Supports `--name value`, `--name=value` and boolean `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mflb {

/// Declarative flag registry; register flags, then parse argv.
class CliParser {
public:
    explicit CliParser(std::string program_description);

    /// Registers a flag with a default value and help text. Returns *this
    /// for chaining.
    CliParser& flag(const std::string& name, const std::string& default_value,
                    const std::string& help);

    /// Parses argv. Returns false (and prints usage) on `--help` or an
    /// unknown/malformed flag.
    bool parse(int argc, const char* const* argv);

    std::string get(const std::string& name) const;
    std::int64_t get_int(const std::string& name) const;
    double get_double(const std::string& name) const;
    bool get_bool(const std::string& name) const;
    /// Parses a comma-separated list of integers, e.g. "100,200,400".
    std::vector<std::int64_t> get_int_list(const std::string& name) const;
    /// Parses a comma-separated list of doubles.
    std::vector<double> get_double_list(const std::string& name) const;

    /// True if the user supplied the flag explicitly (vs. default).
    bool provided(const std::string& name) const;

    std::string usage() const;

private:
    struct Flag {
        std::string default_value;
        std::string help;
        std::optional<std::string> value;
    };

    std::string description_;
    std::map<std::string, Flag> flags_;
};

} // namespace mflb
