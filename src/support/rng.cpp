#include "support/rng.hpp"

#include <cmath>
#include <numbers>

namespace mflb {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
} // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = splitmix64(s);
    }
}

Rng::result_type Rng::operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

void Rng::long_jump() noexcept {
    static constexpr std::uint64_t kJump[] = {0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                                              0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump & (std::uint64_t{1} << b)) {
                s0 ^= state_[0];
                s1 ^= state_[1];
                s2 ^= state_[2];
                s3 ^= state_[3];
            }
            (*this)();
        }
    }
    state_ = {s0, s1, s2, s3};
}

Rng Rng::split() noexcept {
    Rng child = *this;
    child.long_jump();
    // Perturb the child with a fresh draw so repeated splits from the same
    // parent state yield distinct streams.
    std::uint64_t salt = (*this)();
    child.state_[0] ^= splitmix64(salt);
    child.has_spare_normal_ = false;
    return child;
}

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
    // Absorb the parent state and the stream id into one splitmix64 chain,
    // then expand it into the child's four state words. The chain position
    // after absorbing each word depends on every bit absorbed so far, so
    // (state, id) pairs that differ anywhere yield unrelated child states.
    std::uint64_t chain = 0x8febc107889b2f35ULL ^ stream_id;
    for (std::uint64_t word : state_) {
        chain ^= splitmix64(chain) ^ word;
    }
    Rng child(0);
    for (auto& word : child.state_) {
        word = splitmix64(chain);
    }
    return child;
}

double Rng::uniform() noexcept {
    // 53-bit mantissa method: uniform in [0,1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * n;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double rate) noexcept {
    // Inversion on (0,1]: avoids log(0).
    double u = 1.0 - uniform();
    return -std::log(u) / rate;
}

double Rng::normal() noexcept {
    if (has_spare_normal_) {
        has_spare_normal_ = false;
        return spare_normal_;
    }
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_normal_ = r * std::sin(theta);
    has_spare_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

std::uint64_t Rng::poisson(double mean) noexcept {
    if (mean <= 0.0) {
        return 0;
    }
    if (mean < 30.0) {
        // Knuth inversion via products of uniforms.
        const double limit = std::exp(-mean);
        std::uint64_t count = 0;
        double product = uniform();
        while (product > limit) {
            ++count;
            product *= uniform();
        }
        return count;
    }
    // Split recursively: Pois(m) = Pois(m/2) + Pois(m/2). Depth is
    // logarithmic, so even huge means stay in the accurate small-mean branch.
    return poisson(mean * 0.5) + poisson(mean * 0.5);
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) noexcept {
    if (n == 0 || p <= 0.0) {
        return 0;
    }
    if (p >= 1.0) {
        return n;
    }
    if (p > 0.5) {
        return n - binomial(n, 1.0 - p);
    }
    const double mean = static_cast<double>(n) * p;
    if (n < 64 || mean < 12.0) {
        // BG (geometric skip) algorithm: expected cost O(np) draws.
        const double log_q = std::log1p(-p);
        std::uint64_t successes = 0;
        double sum = 0.0;
        while (true) {
            sum += std::log(1.0 - uniform()) / static_cast<double>(n - successes);
            if (sum < log_q || successes >= n) {
                break;
            }
            ++successes;
        }
        return successes > n ? n : successes;
    }
    // BTRS transformed-rejection sampler (Hormann 1993): exact and O(1)
    // expected draws for np >= 10, which makes the multinomial client
    // aggregation independent of N even at N = 10^6.
    const double nd = static_cast<double>(n);
    const double q = 1.0 - p;
    const double spq = std::sqrt(nd * p * q);
    const double b = 1.15 + 2.53 * spq;
    const double a = -0.0873 + 0.0248 * b + 0.01 * p;
    const double c = nd * p + 0.5;
    const double v_r = 0.92 - 4.2 / b;
    const double alpha = (2.83 + 5.1 / b) * spq;
    const double lpq = std::log(p / q);
    const double m = std::floor((nd + 1.0) * p);
    const double h = std::lgamma(m + 1.0) + std::lgamma(nd - m + 1.0);
    while (true) {
        const double u = uniform() - 0.5;
        double v = uniform();
        const double us = 0.5 - std::abs(u);
        const double kd = std::floor((2.0 * a / us + b) * u + c);
        if (kd < 0.0 || kd > nd) {
            continue;
        }
        if (us >= 0.07 && v <= v_r) {
            return static_cast<std::uint64_t>(kd);
        }
        v = std::log(v * alpha / (a / (us * us) + b));
        const double bound =
            h - std::lgamma(kd + 1.0) - std::lgamma(nd - kd + 1.0) + (kd - m) * lpq;
        if (v <= bound) {
            return static_cast<std::uint64_t>(kd);
        }
    }
}

bool Rng::bernoulli(double p) noexcept {
    return uniform() < p;
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
    double total = 0.0;
    for (double w : weights) {
        total += w;
    }
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0) {
            return i;
        }
    }
    return weights.empty() ? 0 : weights.size() - 1;
}

std::vector<std::uint64_t> Rng::multinomial(std::uint64_t n,
                                            std::span<const double> probs) noexcept {
    std::vector<std::uint64_t> counts(probs.size(), 0);
    multinomial(n, probs, counts);
    return counts;
}

void Rng::multinomial(std::uint64_t n, std::span<const double> probs,
                      std::span<std::uint64_t> counts) noexcept {
    multinomial(n, probs, 1.0, counts);
}

void Rng::multinomial(std::uint64_t n, std::span<const double> weights, double total_weight,
                      std::span<std::uint64_t> counts) noexcept {
    std::fill(counts.begin(), counts.end(), 0);
    double remaining_mass = total_weight;
    std::uint64_t remaining_trials = n;
    for (std::size_t i = 0; i + 1 < weights.size() && remaining_trials > 0; ++i) {
        const double conditional =
            remaining_mass > 0.0 ? std::min(1.0, std::max(0.0, weights[i] / remaining_mass))
                                 : 0.0;
        const std::uint64_t draw = binomial(remaining_trials, conditional);
        counts[i] = draw;
        remaining_trials -= draw;
        remaining_mass -= weights[i];
    }
    if (!weights.empty()) {
        counts.back() += remaining_trials;
    }
}

std::vector<std::uint32_t> Rng::permutation(std::size_t n) noexcept {
    std::vector<std::uint32_t> perm(n);
    permutation(std::span<std::uint32_t>(perm));
    return perm;
}

void Rng::permutation(std::span<std::uint32_t> out) noexcept {
    const std::size_t n = out.size();
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(uniform_below(i));
        std::swap(out[i - 1], out[j]);
    }
}

} // namespace mflb
