/// \file logging.hpp
/// Leveled stderr logger with wall-clock timestamps. Benches log progress at
/// Info; tests silence everything below Warn via set_level(). Kept on
/// stderr so bench/example stdout stays machine-parseable result tables.
#pragma once

#include <sstream>
#include <string>

namespace mflb {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
    std::ostringstream out;
    (out << ... << std::forward<Args>(args));
    return out.str();
}
} // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
    if (log_level() <= LogLevel::Debug) {
        log_message(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
    }
}

template <typename... Args>
void log_info(Args&&... args) {
    if (log_level() <= LogLevel::Info) {
        log_message(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
    }
}

template <typename... Args>
void log_warn(Args&&... args) {
    if (log_level() <= LogLevel::Warn) {
        log_message(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
    }
}

template <typename... Args>
void log_error(Args&&... args) {
    if (log_level() <= LogLevel::Error) {
        log_message(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
    }
}

} // namespace mflb
