/// \file thread_pool.hpp
/// Minimal task-based thread pool plus a `parallel_for` used to fan out
/// independent Monte Carlo replications — and, since the sharded DES
/// backend, per-epoch shard work — across cores.
///
/// `parallel_for` runs on a lazily-constructed process-wide pool
/// (`shared_thread_pool`) instead of spawning and joining workers per call:
/// the sharded simulator issues one fan-out per decision epoch, so thread
/// churn would otherwise dominate short epochs. Calls from inside a pool
/// worker (nested use — e.g. sharded epochs inside parallel replications)
/// degrade to inline serial execution, which keeps results identical and
/// cannot deadlock the fixed-size pool.
///
/// The evaluation harness gives every loop index its own forked RNG stream,
/// so results are identical regardless of the number of worker threads. On a
/// single-core host the pool degrades to near-serial execution with no
/// change in results.
/// \see support/rng.hpp for the fork() contract that makes this safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <latch>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace mflb {

/// Single-use count-down barrier: `count_down()` once per unit of work,
/// `wait()` blocks until the count reaches zero. This is the epoch-barrier
/// primitive of the sharded DES backend (each decision epoch fans shard
/// work out to the pool and waits on a latch), and how `parallel_for`
/// tracks completion of *its own* tasks on the shared pool while other
/// callers' tasks are in flight. std::latch already is exactly this
/// (and lock-free on mainstream platforms), so the name is an alias.
using Latch = std::latch;

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
public:
    /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task for asynchronous execution.
    void submit(std::function<void()> task);
    /// Blocks until all submitted tasks have finished.
    void wait_idle();

    std::size_t thread_count() const noexcept { return workers_.size(); }

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable all_done_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

/// The process-wide worker pool behind `parallel_for`, constructed on first
/// use with one worker per hardware thread and reused for every subsequent
/// fan-out (replications, sharded epochs, benches).
ThreadPool& shared_thread_pool();

/// True when called from any `ThreadPool` worker thread (the shared pool's
/// or a private one's). Forward declaration for CompletionToken; the full
/// doc comment sits on the definition below.
bool on_pool_worker() noexcept;

/// One-shot completion token for a single offloaded task — the overlap
/// primitive of the pipelined sharded DES barrier, sitting alongside `Latch`
/// (which tracks a *fan-out*; this tracks one continuation). `launch(f)`
/// runs `f()` on the shared pool so the caller can do independent work, and
/// `wait()` joins with acquire semantics, so everything `f` wrote is visible
/// after `wait()` returns.
///
/// Like `IndexFnRef`, the callable is held by reference (one object pointer
/// + one function pointer, no allocation) and must outlive `wait()` — true
/// for the local-lambda call sites. The pool submit closure captures a
/// single pointer, so it fits std::function's small-buffer optimization; a
/// single-thread request or a nested (worker-thread) caller runs the task
/// inline before `launch` returns, keeping the threads<=1 hot path
/// allocation-free and deadlock-free. The token is reusable after `wait()`
/// but tracks at most one task at a time.
class CompletionToken {
public:
    template <typename F>
        requires std::is_invocable_v<F&>
    void launch(F& f, std::size_t threads = 0) {
        obj_ = const_cast<void*>(static_cast<const void*>(std::addressof(f)));
        call_ = [](void* obj) { (*static_cast<std::remove_reference_t<F>*>(obj))(); };
        if (threads == 0) {
            threads = std::thread::hardware_concurrency();
        }
        if (threads <= 1 || on_pool_worker()) {
            call_(obj_);
            state_.store(kIdle, std::memory_order_relaxed);
            return;
        }
        state_.store(kPending, std::memory_order_relaxed);
        submit_to_pool();
    }

    /// Blocks until the launched task has finished (no-op when it ran inline
    /// or nothing was launched) and resets the token for reuse. The task's
    /// release store paired with this acquire load orders its writes before
    /// the caller's subsequent reads.
    void wait() noexcept {
        int s = state_.load(std::memory_order_acquire);
        while (s == kPending) {
            state_.wait(kPending, std::memory_order_acquire);
            s = state_.load(std::memory_order_acquire);
        }
        state_.store(kIdle, std::memory_order_relaxed);
    }

private:
    static constexpr int kIdle = 0;    ///< no task outstanding (or ran inline)
    static constexpr int kPending = 1; ///< submitted, not yet finished
    static constexpr int kDone = 2;    ///< finished on a worker

    /// Out-of-line so the header does not need the pool definition order.
    void submit_to_pool();

    std::atomic<int> state_{kIdle};
    void* obj_ = nullptr;
    void (*call_)(void*) = nullptr;
};

/// True when called from any `ThreadPool` worker thread (the shared pool's
/// or a private one's) — e.g. from inside a `parallel_for` body or a
/// `submit()`ed task. Used as the nested-use guard: a nested fan-out runs
/// inline instead of blocking on pool capacity the caller may itself be
/// occupying.
bool on_pool_worker() noexcept;

/// Non-owning reference to a callable `void(std::size_t)` — the
/// `parallel_for` body type. Unlike `std::function` it never allocates or
/// copies the target, so the serial fast path (single-thread request or the
/// nested-use guard) costs one indirect call per index and zero heap
/// traffic — which is what keeps the sharded DES epoch hot paths
/// allocation-free. The referenced callable must outlive the `parallel_for`
/// call; that is trivially true for the inline-lambda call sites.
class IndexFnRef {
public:
    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, IndexFnRef> &&
                 std::is_invocable_v<F&, std::size_t>)
    // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, so
    // lambda call sites read as plain parallel_for(n, [&](i) {...}).
    IndexFnRef(F&& f) noexcept
        : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj, std::size_t i) {
              (*static_cast<std::remove_reference_t<F>*>(obj))(i);
          }) {}

    void operator()(std::size_t i) const { call_(obj_, i); }

private:
    void* obj_;
    void (*call_)(void*, std::size_t);
};

/// Runs body(i) for i in [0, n), distributed over up to `threads` workers
/// (0 = hardware concurrency) of the shared pool. Indices are pre-split
/// into per-worker strips claimed in cache-friendly chunks (≈8 per worker);
/// a worker that drains its own strip steals chunks from the others
/// round-robin, so one slow strip cannot serialize the epoch tail. The
/// schedule only decides *where* each index runs — bodies must not depend
/// on execution order, which the per-index RNG-stream contract already
/// guarantees; results stay thread-count independent. If `body` throws, the
/// first exception is captured, remaining un-started chunks are skipped,
/// and the exception is rethrown on the calling thread once this call's
/// work has drained — so a throwing replication surfaces as a normal
/// exception instead of std::terminate. Indices already in flight still run
/// to completion. Nested calls (from inside a body) execute serially inline.
void parallel_for(std::size_t n, IndexFnRef body, std::size_t threads = 0);

} // namespace mflb
