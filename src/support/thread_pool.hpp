/// \file thread_pool.hpp
/// Minimal task-based thread pool plus a `parallel_for` used to fan out
/// independent Monte Carlo replications across cores.
///
/// The evaluation harness gives every loop index its own split RNG stream, so
/// results are identical regardless of the number of worker threads. On a
/// single-core host the pool degrades to near-serial execution with no
/// change in results.
/// \see support/rng.hpp for the split() contract that makes this safe.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mflb {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
public:
    /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task for asynchronous execution.
    void submit(std::function<void()> task);
    /// Blocks until all submitted tasks have finished.
    void wait_idle();

    std::size_t thread_count() const noexcept { return workers_.size(); }

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable all_done_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

/// Runs body(i) for i in [0, n), distributed over `threads` workers
/// (0 = hardware concurrency). If `body` throws, the first exception is
/// captured, remaining un-started indices are skipped, and the exception is
/// rethrown on the calling thread once all workers have joined — so a
/// throwing replication surfaces as a normal exception instead of
/// std::terminate. Indices already in flight still run to completion.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

} // namespace mflb
