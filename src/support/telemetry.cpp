#include "support/telemetry.hpp"

#include "support/logging.hpp"

#include <cmath>
#include <cstdio>

namespace mflb {

namespace {

/// Formats `value` into `out` without allocating: integral fields print as
/// integers, non-finite values as null (JSON has no NaN/Inf literal).
void append_value(std::string& out, double value, bool integral, SeriesFormat format) {
    char buf[40];
    if (!std::isfinite(value)) {
        out.append(format == SeriesFormat::Jsonl ? "null" : "nan");
        return;
    }
    if (integral) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%.10g", value);
    }
    out.append(buf);
}

} // namespace

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
    std::lock_guard lock(register_mutex_);
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (counters_[i].name == name) {
            return static_cast<Id>(i);
        }
    }
    Counter c;
    c.name.assign(name);
    c.lanes.assign(slots_, 0.0);
    counters_.push_back(std::move(c));
    return static_cast<Id>(counters_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
    std::lock_guard lock(register_mutex_);
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
        if (gauges_[i].name == name) {
            return static_cast<Id>(i);
        }
    }
    gauges_.push_back(Gauge{std::string(name), 0.0});
    return static_cast<Id>(gauges_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name) {
    std::lock_guard lock(register_mutex_);
    for (std::size_t i = 0; i < hists_.size(); ++i) {
        if (hists_[i].name == name) {
            return static_cast<Id>(i);
        }
    }
    Hist h;
    h.name.assign(name);
    h.key_p50 = h.name + "_p50";
    h.key_p95 = h.name + "_p95";
    h.key_p99 = h.name + "_p99";
    h.key_count = h.name + "_count";
    h.p50.assign(slots_, P2Quantile(0.50));
    h.p95.assign(slots_, P2Quantile(0.95));
    h.p99.assign(slots_, P2Quantile(0.99));
    hists_.push_back(std::move(h));
    return static_cast<Id>(hists_.size() - 1);
}

void MetricsRegistry::ensure_slots(std::size_t slots) {
    std::lock_guard lock(register_mutex_);
    if (slots <= slots_) {
        return;
    }
    slots_ = slots;
    for (Counter& c : counters_) {
        c.lanes.resize(slots_, 0.0);
    }
    for (Hist& h : hists_) {
        h.p50.resize(slots_, P2Quantile(0.50));
        h.p95.resize(slots_, P2Quantile(0.95));
        h.p99.resize(slots_, P2Quantile(0.99));
    }
}

void MetricsRegistry::add(Id counter, double delta, std::size_t slot) noexcept {
    counters_[counter].lanes[slot] += delta;
}

void MetricsRegistry::set(Id gauge, double value) noexcept { gauges_[gauge].value = value; }

void MetricsRegistry::observe(Id histogram, double x, std::size_t slot) noexcept {
    Hist& h = hists_[histogram];
    h.p50[slot].add(x);
    h.p95[slot].add(x);
    h.p99[slot].add(x);
}

void MetricsRegistry::merge_slots() noexcept {
    for (Counter& c : counters_) {
        for (double& lane : c.lanes) { // lane 0 first: fixed serial order.
            c.total += lane;
            lane = 0.0;
        }
    }
}

double MetricsRegistry::counter_total(Id counter) const noexcept {
    const Counter& c = counters_[counter];
    return c.total + c.lanes[0];
}

double MetricsRegistry::gauge_value(Id gauge) const noexcept { return gauges_[gauge].value; }

double MetricsRegistry::histogram_quantile(Id histogram, int which) const {
    const Hist& h = hists_[histogram];
    const std::vector<P2Quantile>& lanes = which == 0 ? h.p50 : which == 1 ? h.p95 : h.p99;
    P2Quantile merged = lanes[0];
    for (std::size_t s = 1; s < lanes.size(); ++s) { // ascending slots: fixed order.
        merged.merge(lanes[s]);
    }
    return merged.value();
}

std::uint64_t MetricsRegistry::histogram_count(Id histogram) const noexcept {
    std::uint64_t total = 0;
    for (const P2Quantile& lane : hists_[histogram].p50) {
        total += lane.count();
    }
    return total;
}

void MetricsRegistry::append_to(MetricsRow& row) const {
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        row.push_int(counters_[i].name.c_str(),
                     static_cast<std::int64_t>(counter_total(static_cast<Id>(i))));
    }
    for (const Gauge& g : gauges_) {
        row.push(g.name.c_str(), g.value);
    }
    for (std::size_t i = 0; i < hists_.size(); ++i) {
        const Hist& h = hists_[i];
        const Id id = static_cast<Id>(i);
        row.push(h.key_p50.c_str(), histogram_quantile(id, 0));
        row.push(h.key_p95.c_str(), histogram_quantile(id, 1));
        row.push(h.key_p99.c_str(), histogram_quantile(id, 2));
        row.push_int(h.key_count.c_str(), static_cast<std::int64_t>(histogram_count(id)));
    }
}

// ---------------------------------------------------------------------------
// EpochSeriesSink

EpochSeriesSink::~EpochSeriesSink() { close(); }

bool EpochSeriesSink::open_file(const std::string& path) {
    std::lock_guard lock(mutex_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
    format_ = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0
                  ? SeriesFormat::Csv
                  : SeriesFormat::Jsonl;
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
        log_error("telemetry: cannot open ", path, " for writing");
        return false;
    }
    line_.reserve(1024);
    return true;
}

void EpochSeriesSink::open_memory(SeriesFormat format) {
    std::lock_guard lock(mutex_);
    memory_ = true;
    format_ = format;
    line_.reserve(1024);
}

void EpochSeriesSink::format_row(const MetricsRow& row) {
    line_.clear();
    if (format_ == SeriesFormat::Jsonl) {
        char buf[40];
        line_.append("{\"series\":\"");
        line_.append(row.series());
        std::snprintf(buf, sizeof(buf), "\",\"step\":%lld",
                      static_cast<long long>(row.step()));
        line_.append(buf);
        for (std::size_t i = 0; i < row.size(); ++i) {
            const MetricsRow::Field& f = row.field(i);
            line_.append(",\"");
            line_.append(f.key);
            line_.append("\":");
            append_value(line_, f.value, f.integral, format_);
        }
        line_.append("}\n");
        return;
    }
    // CSV: fix the column set from the first row, skip mismatched rows.
    if (!csv_header_written_) {
        csv_columns_.clear();
        csv_columns_.reserve(row.size());
        line_.append("series,step");
        for (std::size_t i = 0; i < row.size(); ++i) {
            csv_columns_.emplace_back(row.field(i).key);
            line_.push_back(',');
            line_.append(row.field(i).key);
        }
        line_.push_back('\n');
        csv_header_written_ = true;
    }
    bool matches = row.size() == csv_columns_.size();
    for (std::size_t i = 0; matches && i < row.size(); ++i) {
        matches = csv_columns_[i] == row.field(i).key;
    }
    if (!matches) {
        if (!csv_mismatch_warned_) {
            log_warn("telemetry: CSV sink fixed its columns from the first row; "
                     "skipping rows of series '",
                     row.series(), "' (use JSONL for mixed series)");
            csv_mismatch_warned_ = true;
        }
        line_.clear();
        return;
    }
    line_.append(row.series());
    char buf[40];
    std::snprintf(buf, sizeof(buf), ",%lld", static_cast<long long>(row.step()));
    line_.append(buf);
    for (std::size_t i = 0; i < row.size(); ++i) {
        line_.push_back(',');
        append_value(line_, row.field(i).value, row.field(i).integral, format_);
    }
    line_.push_back('\n');
}

void EpochSeriesSink::emit_line() {
    if (memory_) {
        memory_buffer_.append(line_);
    }
    if (file_ != nullptr) {
        std::fwrite(line_.data(), 1, line_.size(), file_);
    }
}

void EpochSeriesSink::write_row(const MetricsRow& row) {
    std::lock_guard lock(mutex_);
    if (!enabled()) {
        return;
    }
    format_row(row);
    if (line_.empty()) {
        return; // skipped CSV row.
    }
    emit_line();
    ++rows_written_;
}

void EpochSeriesSink::flush() {
    std::lock_guard lock(mutex_);
    if (file_ != nullptr) {
        std::fflush(file_);
    }
}

void EpochSeriesSink::close() {
    std::lock_guard lock(mutex_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

// ---------------------------------------------------------------------------
// TelemetrySession

TelemetrySession::TelemetrySession(const TelemetryConfig& config)
    : config_(config), metrics_every_(config.metrics_every == 0 ? 1 : config.metrics_every) {
    if (!config_.metrics_out.empty()) {
        sink_.open_file(config_.metrics_out);
    }
    if (!config_.trace_out.empty()) {
        tracer_ = std::make_unique<trace::Tracer>(config_.trace_max_threads,
                                                  config_.trace_events_per_thread);
        trace::set_active_tracer(tracer_.get());
        tracer_installed_ = true;
    }
}

std::unique_ptr<TelemetrySession> TelemetrySession::in_memory(SeriesFormat format,
                                                              bool with_trace) {
    auto session = std::make_unique<TelemetrySession>();
    session->sink_.open_memory(format);
    if (with_trace) {
        session->tracer_ = std::make_unique<trace::Tracer>();
        trace::set_active_tracer(session->tracer_.get());
        session->tracer_installed_ = true;
    }
    return session;
}

void TelemetrySession::flush() {
    sink_.flush();
    if (tracer_ != nullptr && !config_.trace_out.empty() && !trace_written_) {
        trace_written_ = tracer_->write(config_.trace_out);
    }
}

TelemetrySession::~TelemetrySession() {
    flush();
    if (tracer_installed_ && trace::active_tracer() == tracer_.get()) {
        trace::set_active_tracer(nullptr);
    }
}

} // namespace mflb
