#include "support/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace mflb {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty()) {
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) {
                all_done_.notify_all();
            }
        }
    }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
    if (n == 0) {
        return;
    }
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    threads = std::min(threads, n);
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            body(i);
        }
        return;
    }
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
                if (failed.load(std::memory_order_relaxed)) {
                    return;
                }
                try {
                    body(i);
                } catch (...) {
                    {
                        std::lock_guard lock(error_mutex);
                        if (!first_error) {
                            first_error = std::current_exception();
                        }
                    }
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }
    for (auto& worker : workers) {
        worker.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

} // namespace mflb
