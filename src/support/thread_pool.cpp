#include "support/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace mflb {

namespace {
thread_local bool t_on_pool_worker = false;
} // namespace

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    // Mark the thread for the nested-use guard the moment it becomes a
    // worker (not merely when it first runs a parallel_for strip): any task
    // on any pool — including direct submit() callers — that fans out again
    // must run that fan-out inline rather than block on pool capacity it
    // may itself be occupying.
    t_on_pool_worker = true;
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty()) {
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) {
                all_done_.notify_all();
            }
        }
    }
}

ThreadPool& shared_thread_pool() {
    // One worker per hardware thread, built on first use and reused for the
    // rest of the process.
    static ThreadPool pool(0);
    return pool;
}

bool on_pool_worker() noexcept {
    return t_on_pool_worker;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
    if (n == 0) {
        return;
    }
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    threads = std::min(threads, n);
    // Serial path: explicit single-thread request, or the nested-use guard —
    // a body running on the pool must not wait for pool capacity it may
    // itself be occupying (replications x shards nesting would deadlock a
    // fixed-size pool, and would reorder nothing anyway: results are
    // thread-count independent by the per-index RNG contract).
    if (threads <= 1 || on_pool_worker()) {
        for (std::size_t i = 0; i < n; ++i) {
            body(i);
        }
        return;
    }

    // Fan out `threads` strips onto the persistent pool; each strip claims
    // indices from a shared atomic cursor. Completion is tracked by a
    // per-call latch (not wait_idle) so concurrent parallel_for calls from
    // different threads never wait on each other's tasks.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    Latch done(threads);
    ThreadPool& pool = shared_thread_pool();
    for (std::size_t t = 0; t < threads; ++t) {
        pool.submit([&] {
            for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
                if (failed.load(std::memory_order_relaxed)) {
                    break;
                }
                try {
                    body(i);
                } catch (...) {
                    {
                        std::lock_guard lock(error_mutex);
                        if (!first_error) {
                            first_error = std::current_exception();
                        }
                    }
                    failed.store(true, std::memory_order_relaxed);
                    break;
                }
            }
            done.count_down();
        });
    }
    done.wait();
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

} // namespace mflb
