#include "support/thread_pool.hpp"

#include "support/trace.hpp"

#include <atomic>
#include <exception>

namespace mflb {

namespace {
thread_local bool t_on_pool_worker = false;
} // namespace

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    // Mark the thread for the nested-use guard the moment it becomes a
    // worker (not merely when it first runs a parallel_for strip): any task
    // on any pool — including direct submit() callers — that fans out again
    // must run that fan-out inline rather than block on pool capacity it
    // may itself be occupying.
    t_on_pool_worker = true;
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty()) {
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        // The ambient tracer (installed by the owning TelemetrySession) spans
        // each task so pool occupancy shows up on the chrome://tracing
        // timeline; with no tracer installed this is one predicted branch.
        if (trace::Tracer* tracer = trace::active_tracer(); tracer != nullptr) {
            const std::uint64_t begin = trace::now_ns();
            task();
            tracer->record("pool_task", begin, trace::now_ns());
        } else {
            task();
        }
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) {
                all_done_.notify_all();
            }
        }
    }
}

ThreadPool& shared_thread_pool() {
    // One worker per hardware thread, built on first use and reused for the
    // rest of the process.
    static ThreadPool pool(0);
    return pool;
}

bool on_pool_worker() noexcept {
    return t_on_pool_worker;
}

void CompletionToken::submit_to_pool() {
    // The closure captures one pointer (fits std::function's small buffer).
    // The release store pairs with wait()'s acquire load: everything the
    // task wrote happens-before the waiter's reads.
    shared_thread_pool().submit([this] {
        call_(obj_);
        state_.store(kDone, std::memory_order_release);
        state_.notify_one();
    });
}

namespace {

/// One worker's contiguous index strip; `next` is the strip's claim cursor,
/// bumped by the owner and by stealers alike. Cache-line aligned so two
/// workers hammering adjacent cursors never false-share.
struct alignas(64) StripCursor {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
};

/// Shared state of one parallel_for call, stack-owned by the caller. Tasks
/// capture a single pointer to it so the submit() closures fit
/// std::function's small-buffer optimization.
struct ForContext {
    ForContext(std::size_t threads_, std::size_t chunk_, IndexFnRef body_,
               StripCursor* cursors_)
        : threads(threads_), chunk(chunk_), body(body_), cursors(cursors_),
          done(static_cast<std::ptrdiff_t>(threads_)) {}

    std::size_t threads;
    std::size_t chunk;
    IndexFnRef body;
    StripCursor* cursors;
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    Latch done;
};

/// Worker t drains its own strip in `chunk`-sized claims, then steals
/// chunks from the other strips round-robin (t+1, t+2, …).
void run_strips(ForContext& ctx, std::size_t t) {
    bool stop = false;
    for (std::size_t off = 0; off < ctx.threads && !stop; ++off) {
        StripCursor& cur = ctx.cursors[(t + off) % ctx.threads];
        while (!stop) {
            const std::size_t begin = cur.next.fetch_add(ctx.chunk, std::memory_order_relaxed);
            if (begin >= cur.end) {
                break;
            }
            const std::size_t last = std::min(begin + ctx.chunk, cur.end);
            for (std::size_t i = begin; i < last; ++i) {
                if (ctx.failed.load(std::memory_order_relaxed)) {
                    stop = true;
                    break;
                }
                try {
                    ctx.body(i);
                } catch (...) {
                    {
                        std::lock_guard lock(ctx.error_mutex);
                        if (!ctx.first_error) {
                            ctx.first_error = std::current_exception();
                        }
                    }
                    ctx.failed.store(true, std::memory_order_relaxed);
                    stop = true;
                    break;
                }
            }
        }
    }
    ctx.done.count_down();
}

} // namespace

void parallel_for(std::size_t n, IndexFnRef body, std::size_t threads) {
    if (n == 0) {
        return;
    }
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    threads = std::min(threads, n);
    // Serial path: explicit single-thread request, or the nested-use guard —
    // a body running on the pool must not wait for pool capacity it may
    // itself be occupying (replications x shards nesting would deadlock a
    // fixed-size pool, and would reorder nothing anyway: results are
    // thread-count independent by the per-index RNG contract). IndexFnRef
    // keeps this path free of heap traffic.
    if (threads <= 1 || on_pool_worker()) {
        for (std::size_t i = 0; i < n; ++i) {
            body(i);
        }
        return;
    }

    // Chunked work-stealing fan-out onto the persistent pool: indices are
    // pre-split into per-worker strips, claimed in ~8 chunks per worker so
    // an unlucky strip (one shard with most of the events) is stolen from
    // rather than waited on. Completion is tracked by a per-call latch (not
    // wait_idle) so concurrent parallel_for calls from different threads
    // never wait on each other's tasks. The schedule decides placement
    // only, never results (per-index RNG-stream contract).
    std::vector<StripCursor> cursors(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        cursors[t].next.store(t * n / threads, std::memory_order_relaxed);
        cursors[t].end = (t + 1) * n / threads;
    }
    ForContext ctx(threads, std::max<std::size_t>(1, n / (threads * 8)), body,
                   cursors.data());
    ThreadPool& pool = shared_thread_pool();
    for (std::size_t t = 0; t < threads; ++t) {
        pool.submit([&ctx, t] { run_strips(ctx, t); });
    }
    ctx.done.wait();
    if (ctx.first_error) {
        std::rethrow_exception(ctx.first_error);
    }
}

} // namespace mflb
