#include "support/table.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace mflb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
    cells_.emplace_back();
    return *this;
}

Table& Table::cell(const std::string& value) {
    if (cells_.empty()) {
        row();
    }
    cells_.back().push_back(value);
    return *this;
}

Table& Table::cell(double value, int precision) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return cell(out.str());
}

Table& Table::cell(std::int64_t value) {
    return cell(std::to_string(value));
}

Table& Table::cell_ci(double mean, double half_width, int precision) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << mean << " +- " << half_width;
    return cell(out.str());
}

std::string Table::to_text() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& r : cells_) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], r[c].size());
        }
    }
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& r) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& v = c < r.size() ? r[c] : std::string{};
            out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << v;
        }
        out << '\n';
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < widths.size(); ++c) {
        out << std::string(widths[c], '-') << "  ";
    }
    out << '\n';
    for (const auto& r : cells_) {
        emit_row(r);
    }
    return out.str();
}

std::string Table::to_csv() const {
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& r) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            if (c > 0) {
                out << ',';
            }
            out << r[c];
        }
        out << '\n';
    };
    emit(headers_);
    for (const auto& r : cells_) {
        emit(r);
    }
    return out.str();
}

bool Table::write_csv(const std::string& path) const {
    std::ofstream file(path);
    if (!file) {
        return false;
    }
    file << to_csv();
    return static_cast<bool>(file);
}

} // namespace mflb
