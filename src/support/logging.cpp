#include "support/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace mflb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) noexcept {
    switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
    }
    return "?";
}
} // namespace

void set_log_level(LogLevel level) noexcept {
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
    return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
    if (level < log_level()) {
        return;
    }
    using clock = std::chrono::system_clock;
    const auto now = clock::now();
    const auto secs = std::chrono::duration_cast<std::chrono::seconds>(now.time_since_epoch());
    const auto millis =
        std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch()) -
        std::chrono::duration_cast<std::chrono::milliseconds>(secs);
    std::lock_guard lock(g_log_mutex);
    std::fprintf(stderr, "[%lld.%03lld %s] %s\n", static_cast<long long>(secs.count()),
                 static_cast<long long>(millis.count()), level_name(level), message.c_str());
}

} // namespace mflb
